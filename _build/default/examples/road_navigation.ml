(* Landmark routing on a road network — and why the paper's SSSP runs
   died on RoadNet-*.

   Shortest paths to landmarks on a lattice-shaped road network take a
   number of BSP supersteps proportional to the road diameter (hundreds
   of supersteps), which blows up GraphX's unbounded Pregel lineage: the
   paper reports Spark out-of-memory failures on all three road
   networks. This example shows the failure at paper scale, then
   completes the query on a smaller district map where the superstep
   count stays inside the memory budget.

   Run with: dune exec examples/road_navigation.exe *)

let run_sssp ~name ~scale g =
  let p =
    Cutfit.Pipeline.prepare ~scale
      ~partitioner:(Cutfit.Partitioner.Hash Cutfit.Strategy.Two_d)
      ~algorithm:Cutfit.Advisor.Shortest_paths g
  in
  let landmarks = Cutfit.Sssp.pick_landmarks ~seed:8L ~count:3 g in
  let distances, trace = Cutfit.Pipeline.shortest_paths ~landmarks p in
  Fmt.pr "%s: %a@." name Cutfit.Trace.pp_summary trace;
  if Cutfit.Trace.completed trace then begin
    let reachable = ref 0 and total_d = ref 0 in
    Array.iter
      (fun row ->
        if row.(0) < max_int then begin
          incr reachable;
          total_d := !total_d + row.(0)
        end)
      distances;
    Fmt.pr "  %d vertices reach landmark 0, mean distance %.1f hops@." !reachable
      (float_of_int !total_d /. float_of_int (max 1 !reachable))
  end
  else
    Fmt.pr "  -> the run died like the paper's RoadNet SSSP: lineage outgrew driver memory@."

let () =
  (* A state-sized road network, simulated at the scale of the paper's
     RoadNet-CA (~2M intersections -> scale factor ~100). *)
  let state =
    Cutfit.Grid.generate
      { Cutfit.Grid.default with Cutfit.Grid.width = 140; height = 140; seed = 33L }
  in
  let c = Cutfit.Characterize.compute state in
  Fmt.pr "state road network: %a@.@." Cutfit.Characterize.pp c;
  run_sssp ~name:"state-scale SSSP (like RoadNet-CA)" ~scale:100.0 state;

  Fmt.pr "@.";
  (* A city district: an order of magnitude smaller, so the BFS frontier
     reaches everything within the lineage budget. *)
  let district =
    Cutfit.Grid.generate
      { Cutfit.Grid.default with Cutfit.Grid.width = 40; height = 40; seed = 34L }
  in
  run_sssp ~name:"district-scale SSSP" ~scale:1.0 district;

  (* PageRank and CC iterate a fixed 10 supersteps, so they complete
     even at state scale — exactly the paper's experience. *)
  Fmt.pr "@.";
  let p =
    Cutfit.Pipeline.prepare ~scale:100.0
      ~partitioner:(Cutfit.Partitioner.Hash Cutfit.Strategy.Dc)
      ~algorithm:Cutfit.Advisor.Connected_components state
  in
  let _, trace = Cutfit.Pipeline.connected_components p in
  Fmt.pr "state-scale CC (10 iterations): %a@." Cutfit.Trace.pp_summary trace
