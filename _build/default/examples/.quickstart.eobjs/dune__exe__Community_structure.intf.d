examples/community_structure.mli:
