examples/influencer_ranking.mli:
