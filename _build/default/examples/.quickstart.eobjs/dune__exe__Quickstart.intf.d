examples/quickstart.mli:
