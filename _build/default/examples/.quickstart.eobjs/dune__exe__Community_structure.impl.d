examples/community_structure.ml: Array Cutfit Cutfit_experiments Fmt Hashtbl Option
