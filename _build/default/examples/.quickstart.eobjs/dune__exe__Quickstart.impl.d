examples/quickstart.ml: Array Cutfit Fmt List
