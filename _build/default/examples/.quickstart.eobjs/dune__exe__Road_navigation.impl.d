examples/road_navigation.ml: Array Cutfit Fmt
