examples/influencer_ranking.ml: Array Cutfit Fmt Fun List
