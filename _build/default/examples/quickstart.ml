(* Quickstart: generate a social graph, let the advisor pick a
   partitioning for PageRank, run it on the simulated cluster, and see
   how much the partitioner choice mattered.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. A 10k-vertex power-law social graph (deterministic seed). *)
  let g =
    Cutfit.Social.generate
      { Cutfit.Social.default with Cutfit.Social.vertices = 10_000; edges = 80_000; seed = 42L }
  in
  Fmt.pr "graph: %d vertices, %d edges@." (Cutfit.Graph.num_vertices g)
    (Cutfit.Graph.num_edges g);

  (* 2. Prepare for PageRank: the advisor measures all six strategies
     and picks the one minimizing CommCost. *)
  let p = Cutfit.Pipeline.prepare ~algorithm:Cutfit.Advisor.Pagerank g in
  Fmt.pr "advisor chose: %s@." (Cutfit.Partitioner.name p.Cutfit.Pipeline.partitioner);
  let m = Cutfit.Pipeline.metrics p in
  Fmt.pr "partitioning:  %a@." Cutfit.Metrics.pp m;

  (* 3. Run PageRank on the simulated 4-executor cluster. *)
  let ranks, trace = Cutfit.Pipeline.pagerank p in
  let top = ref 0 in
  Array.iteri (fun v r -> if r > ranks.(!top) then top := v) ranks;
  Fmt.pr "highest-ranked vertex: %d (rank %.3f)@." !top ranks.(!top);
  Fmt.pr "simulated job: %a@." Cutfit.Trace.pp_summary trace;

  (* 4. Would a different partitioner have been slower? *)
  Fmt.pr "@.job time by partitioner:@.";
  List.iter
    (fun (name, t) -> Fmt.pr "  %-6s %.2fs@." name t)
    (Cutfit.Pipeline.compare_partitioners ~algorithm:Cutfit.Advisor.Pagerank g)
