(* Community structure of a YouTube-like network: connected components
   plus triangle counting — and a demonstration of the paper's headline
   claim that the best partitioner for one algorithm (PageRank) is not
   the best for another (Triangle Count) on the very same graph.

   Run with: dune exec examples/community_structure.exe *)

let () =
  let g =
    Cutfit.Social.generate
      {
        Cutfit.Social.default with
        Cutfit.Social.vertices = 12_000;
        edges = 60_000;
        alpha_out = 2.1;
        alpha_in = 2.1;
        symmetry = 1.0;
        islands = 6;
        seed = 2008L;
      }
  in
  Fmt.pr "community graph: %a@.@." Cutfit.Characterize.pp (Cutfit.Characterize.compute g);

  (* Components: the islands plus the giant community. *)
  let p = Cutfit.Pipeline.prepare ~algorithm:Cutfit.Advisor.Connected_components g in
  let labels, trace = Cutfit.Pipeline.connected_components ~iterations:50 p in
  let sizes = Hashtbl.create 16 in
  Array.iter
    (fun l ->
      Hashtbl.replace sizes l (1 + Option.value ~default:0 (Hashtbl.find_opt sizes l)))
    labels;
  Fmt.pr "components: %d (largest %d vertices), %a@." (Hashtbl.length sizes)
    (Hashtbl.fold (fun _ s acc -> max s acc) sizes 0)
    Cutfit.Trace.pp_summary trace;

  (* Triangles and clustering: how tightly knit is the community? *)
  let pt = Cutfit.Pipeline.prepare ~algorithm:Cutfit.Advisor.Triangle_count g in
  let per_vertex, total, ttrace = Cutfit.Pipeline.triangles pt in
  Fmt.pr "triangles: %s (clustering coefficient %.4f), %a@."
    (Cutfit_experiments.Report.commas total)
    (Cutfit.Triangles.global_clustering g)
    Cutfit.Trace.pp_summary ttrace;
  let busiest = ref 0 in
  Array.iteri (fun v c -> if c > per_vertex.(!busiest) then busiest := v) per_vertex;
  Fmt.pr "most clustered vertex: %d (%d triangles, degree %d)@.@." !busiest
    per_vertex.(!busiest)
    (Cutfit.Graph.out_degree g !busiest);

  (* Cut to fit: the cheapest partitioner depends on the computation. *)
  let best algorithm =
    match Cutfit.Pipeline.compare_partitioners ~algorithm g with
    | (name, t) :: _ -> (name, t)
    | [] -> assert false
  in
  let pr_best, pr_t = best Cutfit.Advisor.Pagerank in
  let tr_best, tr_t = best Cutfit.Advisor.Triangle_count in
  Fmt.pr "best partitioner for PageRank:       %-6s (%.2fs)@." pr_best pr_t;
  Fmt.pr "best partitioner for Triangle Count: %-6s (%.2fs)@." tr_best tr_t;
  if pr_best <> tr_best then
    Fmt.pr "-> same graph, different computation, different cut: tailor the partitioning!@."
  else
    Fmt.pr "-> on this graph the same strategy wins both; the paper shows that is not the rule.@."
