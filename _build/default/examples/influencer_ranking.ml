(* Influencer ranking on a Twitter-like follow graph — the workload the
   paper's follow-jul/follow-dec crawls motivate.

   A crawl-shaped graph (megahub celebrities, ~47% zero-in leaf
   accounts, 38% reciprocated edges) is ranked with PageRank under every
   partitioning strategy at both granularities, showing (a) how the
   hub structure wrecks source-hashing partitioners (1D/SC) and (b) that
   the strategy choice is worth double-digit percentages of runtime.

   Run with: dune exec examples/influencer_ranking.exe *)

let () =
  let g =
    Cutfit.Social.generate
      {
        Cutfit.Social.default with
        Cutfit.Social.vertices = 40_000;
        edges = 320_000;
        alpha_out = 1.8;
        alpha_in = 2.1;
        symmetry = 0.38;
        zero_in_frac = 0.45;
        zero_out_frac = 0.25;
        superstar_share = 0.15;
        seed = 2016L;
      }
  in
  let c = Cutfit.Characterize.compute g in
  Fmt.pr "follow-style crawl: %a@.@." Cutfit.Characterize.pp c;

  List.iter
    (fun cluster ->
      Fmt.pr "-- cluster %s (%d partitions) --@." cluster.Cutfit.Cluster.name
        cluster.Cutfit.Cluster.num_partitions;
      let num_partitions = cluster.Cutfit.Cluster.num_partitions in
      List.iter
        (fun strategy ->
          let partitioner = Cutfit.Partitioner.Hash strategy in
          let p =
            Cutfit.Pipeline.prepare ~cluster ~partitioner ~algorithm:Cutfit.Advisor.Pagerank g
          in
          let m = Cutfit.Pipeline.metrics p in
          let _, trace = Cutfit.Pipeline.pagerank p in
          Fmt.pr "  %-6s balance=%5.2f commcost=%9d time=%7.2fs@."
            (Cutfit.Strategy.to_string strategy)
            m.Cutfit.Metrics.balance m.Cutfit.Metrics.comm_cost
            trace.Cutfit.Trace.total_s)
        Cutfit.Strategy.all;
      let advised = Cutfit.Advisor.advise Cutfit.Advisor.Pagerank ~scale:1.0 ~num_partitions g in
      Fmt.pr "  advisor picks: %s@.@." (Cutfit.Strategy.to_string advised))
    [ Cutfit.Cluster.config_i; Cutfit.Cluster.config_ii ];

  (* Who are the influencers? The megahubs get followed by everyone the
     crawl saw, so they dominate the ranking. *)
  let p = Cutfit.Pipeline.prepare ~algorithm:Cutfit.Advisor.Pagerank g in
  let ranks, _ = Cutfit.Pipeline.pagerank p in
  let order = Array.init (Array.length ranks) Fun.id in
  Array.sort (fun a b -> compare ranks.(b) ranks.(a)) order;
  Fmt.pr "top 5 influencers:@.";
  for i = 0 to 4 do
    let v = order.(i) in
    Fmt.pr "  vertex %5d rank %8.2f in-degree %d@." v ranks.(v) (Cutfit.Graph.in_degree g v)
  done
