lib/algo/sssp.ml: Array Cutfit_bsp Cutfit_graph Cutfit_prng Hashtbl Queue
