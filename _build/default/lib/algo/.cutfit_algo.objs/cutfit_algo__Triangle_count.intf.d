lib/algo/triangle_count.mli: Cutfit_bsp Cutfit_graph
