lib/algo/pagerank.mli: Cutfit_bsp Cutfit_graph
