lib/algo/connected_components.ml: Cutfit_bsp Cutfit_graph
