lib/algo/sssp.mli: Cutfit_bsp Cutfit_graph
