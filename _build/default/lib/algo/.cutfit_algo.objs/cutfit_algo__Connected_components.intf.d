lib/algo/connected_components.mli: Cutfit_bsp Cutfit_graph
