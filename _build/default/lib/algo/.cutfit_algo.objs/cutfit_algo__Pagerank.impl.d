lib/algo/pagerank.ml: Array Cutfit_bsp Cutfit_graph
