lib/algo/triangle_count.ml: Array Cutfit_bsp Cutfit_graph Float List
