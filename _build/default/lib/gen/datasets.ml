type kind = Road | Social_undirected | Social_directed

type spec = {
  name : string;
  display : string;
  kind : kind;
  params : [ `Grid of Grid.params | `Social of Social.params ];
  paper_vertices : int;
  paper_edges : int;
}

let road name display ~width ~height ~keep ~diag ~seed ~paper_vertices ~paper_edges =
  {
    name;
    display;
    kind = Road;
    params =
      `Grid
        { Grid.width; height; hole_prob = 0.03; keep_prob = keep; diagonal_prob = diag; seed };
    paper_vertices;
    paper_edges;
  }

let social name display ~kind ~params ~paper_vertices ~paper_edges =
  { name; display; kind; params = `Social params; paper_vertices; paper_edges }

(* Scaled ~100x down from Table 1 (the follow crawls ~170x, Orkut ~150x,
   to keep the full evaluation matrix laptop-sized). Degree exponents,
   symmetry, leaf fractions and island counts target the Table 1 /
   Figure 1-2 shapes of each original. *)
let all =
  [
    road "roadnet_pa" "RoadNet-PA" ~width:103 ~height:103 ~keep:0.76 ~diag:0.06 ~seed:101L
      ~paper_vertices:1_088_092 ~paper_edges:3_083_796;
    social "youtube" "YouTube" ~kind:Social_undirected
      ~params:
        {
          Social.default with
          vertices = 11_340;
          edges = 29_000;
          alpha_out = 2.1;
          alpha_in = 2.1;
          symmetry = 1.0;
          weight_cap_ratio = 60.0;
          seed = 102L;
        }
      ~paper_vertices:1_134_890 ~paper_edges:2_987_624;
    road "roadnet_tx" "RoadNet-TX" ~width:118 ~height:118 ~keep:0.74 ~diag:0.06 ~seed:103L
      ~paper_vertices:1_379_917 ~paper_edges:3_843_320;
    social "pocek" "Pocek" ~kind:Social_directed
      ~params:
        {
          Social.default with
          vertices = 16_300;
          edges = 306_000;
          alpha_out = 2.3;
          alpha_in = 2.3;
          symmetry = 0.5434;
          zero_in_frac = 0.0694;
          zero_out_frac = 0.1225;
          weight_cap_ratio = 12.0;
          seed = 104L;
        }
      ~paper_vertices:1_632_803 ~paper_edges:30_622_564;
    road "roadnet_ca" "RoadNet-CA" ~width:142 ~height:142 ~keep:0.74 ~diag:0.06 ~seed:105L
      ~paper_vertices:1_965_206 ~paper_edges:5_533_214;
    social "orkut" "Orkut" ~kind:Social_undirected
      ~params:
        {
          Social.default with
          vertices = 20_480;
          edges = 780_000;
          alpha_out = 2.0;
          alpha_in = 2.0;
          symmetry = 1.0;
          weight_cap_ratio = 12.0;
          seed = 106L;
        }
      ~paper_vertices:3_072_441 ~paper_edges:117_185_083;
    social "soclivejournal" "socLiveJournal" ~kind:Social_directed
      ~params:
        {
          Social.default with
          vertices = 48_570;
          edges = 689_000;
          alpha_out = 2.15;
          alpha_in = 2.15;
          symmetry = 0.7503;
          zero_in_frac = 0.0739;
          zero_out_frac = 0.1112;
          weight_cap_ratio = 12.0;
          islands = 18;
          seed = 107L;
        }
      ~paper_vertices:4_847_571 ~paper_edges:68_993_773;
    social "follow_jul" "follow-jul" ~kind:Social_directed
      ~params:
        {
          vertices = 100_000;
          edges = 800_000;
          alpha_out = 1.75;
          alpha_in = 2.05;
          symmetry = 0.3757;
          zero_in_frac = 0.4694;
          zero_out_frac = 0.2565;
          superstar_share = 0.15;
          weight_cap_ratio = infinity;
          islands = 5;
          seed = 108L;
        }
      ~paper_vertices:17_172_142 ~paper_edges:136_725_781;
    social "follow_dec" "follow-dec" ~kind:Social_directed
      ~params:
        {
          vertices = 154_000;
          edges = 1_200_000;
          alpha_out = 1.75;
          alpha_in = 2.05;
          symmetry = 0.3757;
          zero_in_frac = 0.5505;
          zero_out_frac = 0.1834;
          superstar_share = 0.15;
          weight_cap_ratio = infinity;
          islands = 5;
          seed = 109L;
        }
      ~paper_vertices:26_339_971 ~paper_edges:204_912_093;
  ]

let small =
  List.filter
    (fun s -> List.mem s.name [ "roadnet_pa"; "youtube"; "roadnet_tx"; "pocek"; "roadnet_ca" ])
    all

let large =
  List.filter
    (fun s -> List.mem s.name [ "orkut"; "soclivejournal"; "follow_jul"; "follow_dec" ])
    all

let find name =
  match List.find_opt (fun s -> s.name = name) all with
  | Some s -> s
  | None -> raise Not_found

let names = List.map (fun s -> s.name) all

let cache : (string, Cutfit_graph.Graph.t) Hashtbl.t = Hashtbl.create 16

let generate spec =
  match Hashtbl.find_opt cache spec.name with
  | Some g -> g
  | None ->
      let g =
        match spec.params with
        | `Grid p -> Grid.generate p
        | `Social p -> Social.generate p
      in
      Hashtbl.replace cache spec.name g;
      g

let clear_cache () = Hashtbl.reset cache
