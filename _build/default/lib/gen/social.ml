module Graph = Cutfit_graph.Graph
module Edge_list = Cutfit_graph.Edge_list
module Union_find = Cutfit_graph.Union_find
module Xoshiro = Cutfit_prng.Xoshiro
module Dist = Cutfit_prng.Dist

type params = {
  vertices : int;
  edges : int;
  alpha_out : float;
  alpha_in : float;
  symmetry : float;
  zero_in_frac : float;
  zero_out_frac : float;
  superstar_share : float;
  weight_cap_ratio : float;
  islands : int;
  seed : int64;
}

let default =
  {
    vertices = 10_000;
    edges = 50_000;
    alpha_out = 2.2;
    alpha_in = 2.2;
    symmetry = 1.0;
    zero_in_frac = 0.0;
    zero_out_frac = 0.0;
    superstar_share = 0.0;
    weight_cap_ratio = infinity;
    islands = 0;
    seed = 1L;
  }

let validate p =
  if p.vertices <= 0 then invalid_arg "Social.generate: vertices <= 0";
  if p.edges <= 0 then invalid_arg "Social.generate: edges <= 0";
  if p.symmetry < 0.0 || p.symmetry > 1.0 then invalid_arg "Social.generate: symmetry out of [0,1]";
  if p.zero_in_frac < 0.0 || p.zero_out_frac < 0.0 then
    invalid_arg "Social.generate: negative leaf fraction";
  if p.superstar_share < 0.0 || p.superstar_share >= 1.0 then
    invalid_arg "Social.generate: superstar share out of [0,1)";
  if p.weight_cap_ratio <= 1.0 then invalid_arg "Social.generate: weight cap ratio <= 1";
  if p.islands < 0 then invalid_arg "Social.generate: negative islands";
  if p.symmetry = 1.0 && (p.zero_in_frac > 0.0 || p.zero_out_frac > 0.0) then
    invalid_arg "Social.generate: an undirected graph cannot have zero-degree leaves";
  let n_zi = int_of_float (p.zero_in_frac *. float_of_int p.vertices) in
  let n_zo = int_of_float (p.zero_out_frac *. float_of_int p.vertices) in
  let n_core = p.vertices - n_zi - n_zo - (2 * p.islands) in
  if n_core < 2 then invalid_arg "Social.generate: leaf fractions/islands leave no core";
  (n_core, n_zi, n_zo)

(* Sample [target] distinct non-loop core edges from the product of the
   out/in alias samplers, with a bounded number of attempts so malformed
   parameters cannot loop forever. *)
let sample_core rng ~out_alias ~in_alias ~target ~seen ~add =
  let attempts = ref 0 in
  let max_attempts = (10 * target) + 1000 in
  let produced = ref 0 in
  while !produced < target && !attempts < max_attempts do
    incr attempts;
    let s = Dist.Alias.sample out_alias rng in
    let d = Dist.Alias.sample in_alias rng in
    if s <> d then begin
      let k = (s, d) in
      if not (Hashtbl.mem seen k) then begin
        Hashtbl.add seen k ();
        add s d;
        incr produced
      end
    end
  done

let generate p =
  let n_core, n_zi, n_zo = validate p in
  let rng = Xoshiro.create p.seed in
  let el = Edge_list.create ~capacity:(p.edges + (p.edges / 4)) () in
  let seen = Hashtbl.create (4 * p.edges) in
  let add_edge s d =
    if not (Hashtbl.mem seen (s, d)) then begin
      Hashtbl.add seen (s, d) ();
      Edge_list.add el ~src:s ~dst:d
    end
  in

  (* Edge budget: leaves draw small degrees; the rest goes to the core.
     Reciprocation multiplies the core base edges by (1 + p_rev) where
     symmetry s = 2*p_rev/(1+p_rev), i.e. p_rev = s/(2-s); a fully
     symmetric graph instead doubles every base edge. *)
  let leaf_budget = 2 * (n_zi + n_zo) in
  let island_budget = 2 * p.islands in
  let core_budget = max 1 (p.edges - leaf_budget - island_budget) in
  let p_rev = if p.symmetry >= 1.0 then 1.0 else p.symmetry /. (2.0 -. p.symmetry) in
  let base_target = int_of_float (float_of_int core_budget /. (1.0 +. p_rev)) in

  let w_out = Dist.power_law_weights ~n:n_core ~alpha:p.alpha_out ~min_weight:1.0 in
  let w_in = Dist.power_law_weights ~n:n_core ~alpha:p.alpha_in ~min_weight:1.0 in
  (* Scaling a graph down ~100x keeps hub degrees relatively too large
     (they shrink like the tail exponent, not linearly), which would
     exaggerate 1D/SC imbalance; datasets whose Table 2 balance is ~1.0
     get their weight tail capped at a multiple of the mean. *)
  let cap ws =
    if p.weight_cap_ratio < infinity then begin
      let mean = Array.fold_left ( +. ) 0.0 ws /. float_of_int (Array.length ws) in
      let limit = p.weight_cap_ratio *. mean in
      Array.iteri (fun i w -> if w > limit then ws.(i) <- limit) ws
    end
  in
  cap w_out;
  cap w_in;
  (* Superstar hubs: vertex 0 (and a fading tail of the next few ids)
     absorbs a fixed share of the out-edge mass, reproducing the
     megahub-driven 1D/SC imbalance of the follow crawls. *)
  if p.superstar_share > 0.0 then begin
    let total = Array.fold_left ( +. ) 0.0 w_out in
    let boost = p.superstar_share *. total /. (1.0 -. p.superstar_share) in
    w_out.(0) <- w_out.(0) +. (boost /. 2.0);
    if n_core > 1 then w_out.(1) <- w_out.(1) +. (boost /. 3.0);
    if n_core > 2 then w_out.(2) <- w_out.(2) +. (boost /. 6.0)
  end;
  let out_alias = Dist.Alias.create w_out in
  let in_alias = Dist.Alias.create w_in in

  let core_base = Edge_list.create ~capacity:base_target () in
  let base_seen = Hashtbl.create (4 * base_target) in
  sample_core rng ~out_alias ~in_alias ~target:base_target ~seen:base_seen ~add:(fun s d ->
      Edge_list.add core_base ~src:s ~dst:d);
  Edge_list.iter core_base (fun ~src ~dst ->
      add_edge src dst;
      if p.symmetry >= 1.0 then add_edge dst src
      else if Xoshiro.next_bool rng p_rev then add_edge dst src);

  (* Stitch core components into one weak component. Each stray vertex
     attaches preferentially (like a late crawl edge into a popular
     account): stitch degree spreads across the hubs without creating
     an artificial megahub or a long path appendage. *)
  let uf = Union_find.create n_core in
  Edge_list.iter el (fun ~src ~dst ->
      if src < n_core && dst < n_core then ignore (Union_find.union uf src dst));
  for v = 1 to n_core - 1 do
    if not (Union_find.same uf 0 v) then begin
      let sampled = Dist.Alias.sample in_alias rng in
      let target = if Union_find.same uf v sampled then 0 else sampled in
      ignore (Union_find.union uf v target);
      add_edge v target;
      if p.symmetry >= 1.0 || Xoshiro.next_bool rng p_rev then add_edge target v
    end
  done;

  (* Crawl-artifact leaves. Zero-in leaves only emit edges (into popular
     core vertices); zero-out leaves only receive them. Leaf degrees are
     1 + Geometric so most leaves are degree-1 or -2, like the shallow
     frontier of a forest-fire crawl. *)
  let leaf_degree () = 1 + Dist.geometric rng ~p:0.55 in
  for leaf = n_core to n_core + n_zi - 1 do
    let d = leaf_degree () in
    for _ = 1 to d do
      add_edge leaf (Dist.Alias.sample in_alias rng)
    done
  done;
  for leaf = n_core + n_zi to n_core + n_zi + n_zo - 1 do
    let d = leaf_degree () in
    for _ = 1 to d do
      add_edge (Dist.Alias.sample out_alias rng) leaf
    done
  done;

  (* Island components: mutual pairs so they disturb neither the
     zero-in nor the zero-out census. *)
  let island_base = n_core + n_zi + n_zo in
  for i = 0 to p.islands - 1 do
    let a = island_base + (2 * i) and b = island_base + (2 * i) + 1 in
    add_edge a b;
    add_edge b a
  done;

  Graph.of_edge_list ~n:p.vertices el
