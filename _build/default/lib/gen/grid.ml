module Graph = Cutfit_graph.Graph
module Edge_list = Cutfit_graph.Edge_list
module Xoshiro = Cutfit_prng.Xoshiro

type params = {
  width : int;
  height : int;
  hole_prob : float;
  keep_prob : float;
  diagonal_prob : float;
  seed : int64;
}

let default =
  { width = 100; height = 100; hole_prob = 0.03; keep_prob = 0.78; diagonal_prob = 0.02; seed = 7L }

let generate p =
  if p.width <= 0 || p.height <= 0 then invalid_arg "Grid.generate: empty lattice";
  let rng = Xoshiro.create p.seed in
  let n0 = p.width * p.height in
  let present = Array.init n0 (fun _ -> not (Xoshiro.next_bool rng p.hole_prob)) in
  let at row col = (row * p.width) + col in
  let el = Edge_list.create ~capacity:(4 * n0) () in
  let add_undirected a b =
    Edge_list.add el ~src:a ~dst:b;
    Edge_list.add el ~src:b ~dst:a
  in
  for row = 0 to p.height - 1 do
    for col = 0 to p.width - 1 do
      let v = at row col in
      if present.(v) then begin
        (* Streets to the east and south keep each lattice edge
           considered exactly once. *)
        if col + 1 < p.width && present.(at row (col + 1)) && Xoshiro.next_bool rng p.keep_prob
        then add_undirected v (at row (col + 1));
        if row + 1 < p.height && present.(at (row + 1) col) && Xoshiro.next_bool rng p.keep_prob
        then add_undirected v (at (row + 1) col);
        (* A diagonal shortcut closes a triangle with the two streets of
           its cell when they both survived. *)
        if
          row + 1 < p.height
          && col + 1 < p.width
          && present.(at (row + 1) (col + 1))
          && Xoshiro.next_bool rng p.diagonal_prob
        then add_undirected v (at (row + 1) (col + 1))
      end
    done
  done;
  (* Compact ids over holes and isolated intersections, preserving
     row-major order so id distance tracks geographic distance. *)
  let touched = Array.make n0 false in
  Edge_list.iter el (fun ~src ~dst ->
      touched.(src) <- true;
      touched.(dst) <- true);
  let remap = Array.make n0 (-1) in
  let next = ref 0 in
  for v = 0 to n0 - 1 do
    if touched.(v) then begin
      remap.(v) <- !next;
      incr next
    end
  done;
  let compact = Edge_list.create ~capacity:(Edge_list.length el) () in
  Edge_list.iter el (fun ~src ~dst -> Edge_list.add compact ~src:remap.(src) ~dst:remap.(dst));
  Graph.of_edge_list ~n:!next (Edge_list.dedup compact)
