(** Registry of the paper's nine datasets as scaled synthetic analogues.

    The paper's datasets total ~0.5 billion edges and include two
    proprietary Twitter crawls, so each is replaced here by a generator
    configuration roughly 100x smaller that preserves the structural
    features Table 1 and Figures 1–2 report (degree-distribution shape,
    symmetry, leaf fractions, component count, diameter class). The
    mapping is documented per dataset in DESIGN.md / EXPERIMENTS.md. *)

type kind = Road | Social_undirected | Social_directed

type spec = {
  name : string;  (** machine name, e.g. ["roadnet_pa"] *)
  display : string;  (** paper name, e.g. ["RoadNet-PA"] *)
  kind : kind;
  params : [ `Grid of Grid.params | `Social of Social.params ];
  paper_vertices : int;  (** Table 1 vertex count of the original *)
  paper_edges : int;  (** Table 1 edge count of the original *)
}

val all : spec list
(** The nine datasets, in Table 1 order (ascending vertex count). *)

val small : spec list
(** The five smaller datasets ("DC for smaller datasets" bucket in the
    paper's PageRank discussion). *)

val large : spec list
(** The four larger datasets (Orkut, socLiveJournal and the two follow
    crawls). *)

val find : string -> spec
(** Look up by machine [name]. @raise Not_found if unknown. *)

val names : string list

val generate : spec -> Cutfit_graph.Graph.t
(** Generate (or return the memoized) graph for a spec. Deterministic:
    two calls return the same structure. *)

val clear_cache : unit -> unit
(** Drop memoized graphs (tests / memory pressure). *)
