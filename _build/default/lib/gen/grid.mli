(** Road-network generator.

    Synthetic stand-in for the SNAP RoadNet-{PA,TX,CA} datasets: a 2-D
    lattice with random holes (missing intersections), randomly dropped
    street segments, and occasional diagonal shortcuts. The result
    reproduces the properties that matter to partitioning: 100% edge
    symmetry, near-constant degree around 3, a small triangle count, no
    zero-degree vertices, many connected components (hence infinite
    diameter) and huge effective diameter within the main component. *)

type params = {
  width : int;  (** lattice columns *)
  height : int;  (** lattice rows *)
  hole_prob : float;  (** probability an intersection is absent *)
  keep_prob : float;  (** probability a lattice street survives *)
  diagonal_prob : float;  (** probability of a diagonal shortcut per cell *)
  seed : int64;
}

val default : params
(** 100 x 100, 3% holes, 78% street survival, 2% diagonals. *)

val generate : params -> Cutfit_graph.Graph.t
(** Deterministic for a given [params]. Vertex ids are row-major lattice
    positions compacted over removed/isolated intersections, so nearby
    ids are geographically close — exactly the locality that the paper's
    SC/DC partitioners are designed to pick up. *)
