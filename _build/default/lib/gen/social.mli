(** Social-graph generator.

    Synthetic stand-in for the paper's six social datasets (YouTube,
    Pocek, Orkut, socLiveJournal, follow-jul, follow-dec). A directed
    Chung–Lu core with separately tunable in/out power-law exponents is
    decorated with the crawl artifacts Table 1 documents:

    - a target reciprocated-edge percentage (edge symmetry);
    - "superstar" hubs holding a fixed share of all out-edges, which
      drive the extreme 1D/SC partition imbalance the paper measures on
      the follow graphs;
    - zero-in / zero-out leaf vertices produced by forest-fire crawling;
    - a prescribed number of extra connected components (islands).

    Vertex ids are assigned in crawl order (hubs first, leaves last), so
    id arithmetic carries degree information — the assumption behind the
    paper's SC/DC modulo partitioners. *)

type params = {
  vertices : int;  (** total vertex count, leaves and islands included *)
  edges : int;  (** target directed edge count (approximate, +-a few %) *)
  alpha_out : float;  (** out-degree power-law exponent (> 1) *)
  alpha_in : float;  (** in-degree power-law exponent (> 1) *)
  symmetry : float;  (** target reciprocated fraction in [0, 1]; 1 = undirected *)
  zero_in_frac : float;  (** fraction of vertices with no incoming edge *)
  zero_out_frac : float;  (** fraction of vertices with no outgoing edge *)
  superstar_share : float;  (** share of core edges emitted by the top hub *)
  weight_cap_ratio : float;
      (** cap on any vertex's expected degree, as a multiple of the mean
          degree; [infinity] leaves the power-law tail uncapped *)
  islands : int;  (** extra 2-vertex components appended at the end *)
  seed : int64;
}

val default : params
(** A small undirected power-law graph: 10k vertices, 50k edges. *)

val generate : params -> Cutfit_graph.Graph.t
(** Deterministic for a given [params]. The core (non-leaf, non-island)
    part is stitched into a single weak component, so the graph has
    exactly [1 + islands] weak components.
    @raise Invalid_argument on inconsistent parameters (e.g. leaf
    fractions that leave no core). *)
