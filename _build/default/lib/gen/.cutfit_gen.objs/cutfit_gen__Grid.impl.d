lib/gen/grid.ml: Array Cutfit_graph Cutfit_prng
