lib/gen/datasets.ml: Cutfit_graph Grid Hashtbl List Social
