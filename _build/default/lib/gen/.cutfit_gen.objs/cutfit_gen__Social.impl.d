lib/gen/social.ml: Array Cutfit_graph Cutfit_prng Hashtbl
