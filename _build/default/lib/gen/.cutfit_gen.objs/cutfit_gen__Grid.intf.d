lib/gen/grid.mli: Cutfit_graph
