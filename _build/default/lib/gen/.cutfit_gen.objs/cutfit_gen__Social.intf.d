lib/gen/social.mli: Cutfit_graph
