lib/gen/datasets.mli: Cutfit_graph Grid Social
