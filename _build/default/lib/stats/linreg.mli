(** Ordinary least-squares line fit.

    Used to overlay trend lines on the time-vs-metric scatter data of
    Figures 3–6 and to report goodness of fit alongside the correlation
    coefficient. *)

type t = { slope : float; intercept : float; r2 : float }

val fit : float array -> float array -> t
(** [fit xs ys] fits [y = slope * x + intercept].
    @raise Invalid_argument on length mismatch or fewer than 2 points;
    a vertical (constant-x) sample yields slope 0 through the mean. *)

val predict : t -> float -> float
