type t = { slope : float; intercept : float; r2 : float }

let fit xs ys =
  if Array.length xs <> Array.length ys then invalid_arg "Linreg.fit: length mismatch";
  if Array.length xs < 2 then invalid_arg "Linreg.fit: need at least 2 points";
  let n = float_of_int (Array.length xs) in
  let mx = Array.fold_left ( +. ) 0.0 xs /. n and my = Array.fold_left ( +. ) 0.0 ys /. n in
  let sxy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 in
  Array.iteri
    (fun i x ->
      let dx = x -. mx and dy = ys.(i) -. my in
      sxy := !sxy +. (dx *. dy);
      sxx := !sxx +. (dx *. dx);
      syy := !syy +. (dy *. dy))
    xs;
  if !sxx = 0.0 then { slope = 0.0; intercept = my; r2 = 0.0 }
  else begin
    let slope = !sxy /. !sxx in
    let intercept = my -. (slope *. mx) in
    let r2 = if !syy = 0.0 then 1.0 else !sxy *. !sxy /. (!sxx *. !syy) in
    { slope; intercept; r2 }
  end

let predict t x = (t.slope *. x) +. t.intercept
