type series = { label : string; glyph : char; points : (float * float) list }

let transform ~log v = if log then log10 v else v

let plottable ~log_x ~log_y (x, y) =
  (not (Float.is_nan x || Float.is_nan y))
  && ((not log_x) || x > 0.0)
  && ((not log_y) || y > 0.0)

let scatter ?(width = 72) ?(height = 20) ?(log_x = false) ?(log_y = false) ?(x_label = "x")
    ?(y_label = "y") series =
  let width = max 8 width and height = max 4 height in
  let all_points =
    List.concat_map
      (fun s ->
        List.filter_map
          (fun p ->
            if plottable ~log_x ~log_y p then
              Some (transform ~log:log_x (fst p), transform ~log:log_y (snd p))
            else None)
          s.points)
      series
  in
  let buf = Buffer.create 4096 in
  (match all_points with
  | [] -> Buffer.add_string buf "(no plottable points)\n"
  | (x0, y0) :: rest ->
      let min_x, max_x, min_y, max_y =
        List.fold_left
          (fun (a, b, c, d) (x, y) -> (Float.min a x, Float.max b x, Float.min c y, Float.max d y))
          (x0, x0, y0, y0) rest
      in
      let span v lo hi = if hi = lo then 0.5 else (v -. lo) /. (hi -. lo) in
      let grid = Array.make_matrix height width ' ' in
      List.iter
        (fun s ->
          List.iter
            (fun p ->
              if plottable ~log_x ~log_y p then begin
                let x = transform ~log:log_x (fst p) and y = transform ~log:log_y (snd p) in
                let cx =
                  min (width - 1) (int_of_float (span x min_x max_x *. float_of_int (width - 1)))
                in
                let cy =
                  min (height - 1)
                    (int_of_float (span y min_y max_y *. float_of_int (height - 1)))
                in
                let row = height - 1 - cy in
                grid.(row).(cx) <- (if grid.(row).(cx) = ' ' then s.glyph else '*')
              end)
            s.points)
        series;
      let fmt v ~log = if log then Printf.sprintf "1e%.1f" v else Printf.sprintf "%.3g" v in
      let y_hi = fmt max_y ~log:log_y and y_lo = fmt min_y ~log:log_y in
      let margin = max (String.length y_hi) (String.length y_lo) in
      let pad s = String.make (margin - String.length s) ' ' ^ s in
      Array.iteri
        (fun i row ->
          let label =
            if i = 0 then pad y_hi
            else if i = height - 1 then pad y_lo
            else String.make margin ' '
          in
          Buffer.add_string buf label;
          Buffer.add_string buf " |";
          Buffer.add_string buf (String.init width (fun j -> row.(j)));
          Buffer.add_char buf '\n')
        grid;
      Buffer.add_string buf (String.make margin ' ');
      Buffer.add_string buf " +";
      Buffer.add_string buf (String.make width '-');
      Buffer.add_char buf '\n';
      let x_lo = fmt min_x ~log:log_x and x_hi = fmt max_x ~log:log_x in
      let gap = max 1 (width - String.length x_lo - String.length x_hi) in
      Buffer.add_string buf (String.make (margin + 2) ' ');
      Buffer.add_string buf x_lo;
      Buffer.add_string buf (String.make gap ' ');
      Buffer.add_string buf x_hi;
      Buffer.add_char buf '\n';
      Buffer.add_string buf
        (Printf.sprintf "%s vs %s%s@glyphs: " y_label x_label
           (if log_x || log_y then " (log scale)" else ""));
      List.iter
        (fun s ->
          let has =
            List.exists (fun p -> plottable ~log_x ~log_y p) s.points
          in
          Buffer.add_string buf
            (Printf.sprintf "%c=%s%s " s.glyph s.label (if has then "" else "(no points)")))
        series;
      Buffer.add_char buf '\n');
  Buffer.contents buf
