(** Terminal scatter plots.

    Minimal plotting for the experiment harness: Figures 3–6 of the
    paper are log-log scatters of execution time against a partitioning
    metric; this renders them in a terminal grid with one glyph per
    series (dataset) and a legend. *)

type series = { label : string; glyph : char; points : (float * float) list }

val scatter :
  ?width:int ->
  ?height:int ->
  ?log_x:bool ->
  ?log_y:bool ->
  ?x_label:string ->
  ?y_label:string ->
  series list ->
  string
(** Render a scatter of all series into a [width] x [height] character
    grid (defaults 72 x 20) with min/max tick labels and a legend.
    Non-positive values are dropped when the corresponding axis is
    logarithmic; series without plottable points are listed in the
    legend as "(no points)". Returns the multi-line string. *)
