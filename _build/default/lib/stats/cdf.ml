type t = { sorted : float array }

let of_samples xs =
  if Array.length xs = 0 then invalid_arg "Cdf.of_samples: empty sample";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  { sorted }

(* Number of elements <= x, by binary search for the upper bound. *)
let count_le t x =
  let a = t.sorted in
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) <= x then lo := mid + 1 else hi := mid
  done;
  !lo

let eval t x = float_of_int (count_le t x) /. float_of_int (Array.length t.sorted)

let quantile t q =
  if q <= 0.0 || q > 1.0 then invalid_arg "Cdf.quantile: q out of (0,1]";
  let n = Array.length t.sorted in
  let k = int_of_float (ceil (q *. float_of_int n)) - 1 in
  t.sorted.(max 0 (min (n - 1) k))

let support t = (t.sorted.(0), t.sorted.(Array.length t.sorted - 1))

let curve ?(points = 32) t =
  let lo, hi = support t in
  if lo = hi then [| (lo, 1.0) |]
  else begin
    let step = (hi -. lo) /. float_of_int points in
    Array.init (points + 1) (fun i ->
        let x = lo +. (float_of_int i *. step) in
        (x, eval t x))
  end
