(** Discrete power-law exponent estimation.

    The paper's Figure 1 shows the degree distributions of the nine
    datasets and notes that "although all datasets exhibit fat-tailed
    distributions... not all seem to be power-law distributions". The
    maximum-likelihood estimator of Clauset, Shalizi & Newman quantifies
    that: the fitted exponent (and how much of the sample lies in the
    fitted tail) distinguishes the social graphs' heavy tails from the
    road networks' near-constant degrees. *)

type fit = {
  alpha : float;  (** estimated exponent of P(x) proportional to x^-alpha *)
  x_min : int;  (** smallest value included in the tail fit *)
  tail_fraction : float;  (** fraction of samples with value >= x_min *)
}

val fit_alpha : ?x_min:int -> int array -> fit option
(** [fit_alpha values] estimates the exponent over samples [>= x_min]
    (default 2) with the discrete MLE
    [alpha = 1 + n / sum (ln (x / (x_min - 0.5)))].
    [None] when fewer than 10 samples reach the tail. *)

val is_heavy_tailed : int array -> bool
(** Crude classifier: a fit exists with [alpha < 3.5] and at least 1% of
    the mass in the tail — true for the social analogues, false for road
    lattices. *)
