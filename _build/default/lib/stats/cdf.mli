(** Empirical cumulative distribution functions.

    Figure 2 of the paper plots the CDF of the out-degree/in-degree
    ratio over all vertices of each dataset; this module produces that
    curve and evaluates it at chosen points. *)

type t

val of_samples : float array -> t
(** Build the empirical CDF of a non-empty sample.
    @raise Invalid_argument on an empty sample. *)

val eval : t -> float -> float
(** [eval t x] is P(X <= x), a step function in [\[0, 1\]]. *)

val quantile : t -> float -> float
(** [quantile t q] is the smallest sample value [x] with
    [eval t x >= q], for [0 < q <= 1]. *)

val support : t -> float * float
(** Smallest and largest sample values. *)

val curve : ?points:int -> t -> (float * float) array
(** [(x, F(x))] pairs suitable for plotting; [points] samples spread
    over the support (default 32) plus the extremes. *)
