type fit = { alpha : float; x_min : int; tail_fraction : float }

let fit_alpha ?(x_min = 2) values =
  if x_min < 1 then invalid_arg "Powerlaw.fit_alpha: x_min < 1";
  let n_total = Array.length values in
  let log_offset = float_of_int x_min -. 0.5 in
  let n = ref 0 and log_sum = ref 0.0 in
  Array.iter
    (fun x ->
      if x >= x_min then begin
        incr n;
        log_sum := !log_sum +. log (float_of_int x /. log_offset)
      end)
    values;
  if !n < 10 || !log_sum <= 0.0 then None
  else
    Some
      {
        alpha = 1.0 +. (float_of_int !n /. !log_sum);
        x_min;
        tail_fraction = float_of_int !n /. float_of_int (max 1 n_total);
      }

let is_heavy_tailed values =
  (* The tail must exist well past the mode: fit from the 90th
     percentile of positive values, at least 4. *)
  let positives = Array.of_list (List.filter (fun x -> x > 0) (Array.to_list values)) in
  if Array.length positives < 20 then false
  else begin
    let sorted = Array.copy positives in
    Array.sort compare sorted;
    let p90 = sorted.(9 * (Array.length sorted - 1) / 10) in
    let x_min = max 4 p90 in
    match fit_alpha ~x_min positives with
    | Some f -> f.alpha < 3.5 && f.tail_fraction >= 0.01
    | None -> false
  end
