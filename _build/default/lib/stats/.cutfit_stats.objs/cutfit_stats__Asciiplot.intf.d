lib/stats/asciiplot.mli:
