lib/stats/correlation.mli:
