lib/stats/asciiplot.ml: Array Buffer Float List Printf String
