lib/stats/powerlaw.ml: Array List
