lib/stats/cdf.mli:
