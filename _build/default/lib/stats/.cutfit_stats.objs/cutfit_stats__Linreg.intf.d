lib/stats/linreg.mli:
