lib/stats/cdf.ml: Array
