lib/stats/histogram.ml: Array Format List Summary
