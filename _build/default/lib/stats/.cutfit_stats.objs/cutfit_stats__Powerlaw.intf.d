lib/stats/powerlaw.mli:
