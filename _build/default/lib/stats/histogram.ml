type bin = { lo : int; hi : int; count : int }

let log2_bins values =
  let max_v = Array.fold_left max 0 values in
  let nbins =
    let rec go b acc = if acc > max_v then b else go (b + 1) (acc * 2) in
    go 1 1
  in
  let counts = Array.make (nbins + 1) 0 in
  Array.iter
    (fun v ->
      if v < 0 then invalid_arg "Histogram.log2_bins: negative value";
      let b =
        if v = 0 then 0
        else begin
          let rec go b acc = if acc * 2 > v then b else go (b + 1) (acc * 2) in
          1 + go 0 1
        end
      in
      counts.(b) <- counts.(b) + 1)
    values;
  let bins = ref [] in
  for b = Array.length counts - 1 downto 0 do
    if counts.(b) > 0 then begin
      let lo = if b = 0 then 0 else 1 lsl (b - 1) in
      let hi = if b = 0 then 1 else 1 lsl b in
      bins := { lo; hi; count = counts.(b) } :: !bins
    end
  done;
  !bins

let linear_bins ?(bins = 20) values =
  if Array.length values = 0 then invalid_arg "Histogram.linear_bins: empty sample";
  if bins <= 0 then invalid_arg "Histogram.linear_bins: bins <= 0";
  let lo, hi = Summary.min_max values in
  if lo = hi then [ (lo, hi, Array.length values) ]
  else begin
    let width = (hi -. lo) /. float_of_int bins in
    let counts = Array.make bins 0 in
    Array.iter
      (fun v ->
        let b = min (bins - 1) (int_of_float ((v -. lo) /. width)) in
        counts.(b) <- counts.(b) + 1)
      values;
    List.init bins (fun b ->
        (lo +. (float_of_int b *. width), lo +. (float_of_int (b + 1) *. width), counts.(b)))
  end

let pp_log2 ppf bins =
  List.iter (fun { lo; hi; count } -> Format.fprintf ppf "[%d,%d): %d@." lo hi count) bins
