let check xs ys =
  if Array.length xs <> Array.length ys then invalid_arg "Correlation: length mismatch";
  if Array.length xs < 2 then invalid_arg "Correlation: need at least 2 points"

let pearson xs ys =
  check xs ys;
  let n = float_of_int (Array.length xs) in
  let mx = Array.fold_left ( +. ) 0.0 xs /. n and my = Array.fold_left ( +. ) 0.0 ys /. n in
  let sxy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 in
  Array.iteri
    (fun i x ->
      let dx = x -. mx and dy = ys.(i) -. my in
      sxy := !sxy +. (dx *. dy);
      sxx := !sxx +. (dx *. dx);
      syy := !syy +. (dy *. dy))
    xs;
  if !sxx = 0.0 || !syy = 0.0 then 0.0
  else begin
    (* Clamp the rounding residue so callers can rely on [-1, 1]. *)
    let c = !sxy /. sqrt (!sxx *. !syy) in
    Float.min 1.0 (Float.max (-1.0) c)
  end

(* Average ranks so tied values do not bias the coefficient. *)
let ranks xs =
  let n = Array.length xs in
  let idx = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare xs.(a) xs.(b)) idx;
  let rank = Array.make n 0.0 in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && xs.(idx.(!j + 1)) = xs.(idx.(!i)) do
      incr j
    done;
    let avg = float_of_int (!i + !j) /. 2.0 in
    for k = !i to !j do
      rank.(idx.(k)) <- avg
    done;
    i := !j + 1
  done;
  rank

let spearman xs ys =
  check xs ys;
  pearson (ranks xs) (ranks ys)

let pearson_pct xs ys = 100.0 *. pearson xs ys
