type t = Rvc | One_d | Two_d | Crvc | Sc | Dc

let all = [ Rvc; One_d; Two_d; Crvc; Sc; Dc ]

let to_string = function
  | Rvc -> "RVC"
  | One_d -> "1D"
  | Two_d -> "2D"
  | Crvc -> "CRVC"
  | Sc -> "SC"
  | Dc -> "DC"

let of_string s =
  match String.uppercase_ascii s with
  | "RVC" -> Some Rvc
  | "1D" -> Some One_d
  | "2D" -> Some Two_d
  | "CRVC" -> Some Crvc
  | "SC" -> Some Sc
  | "DC" -> Some Dc
  | _ -> None

let pp ppf t = Format.pp_print_string ppf (to_string t)

let ceil_sqrt n =
  let r = int_of_float (sqrt (float_of_int n)) in
  if r * r >= n then r else r + 1

let edge_partition t ~num_partitions ~src ~dst =
  if num_partitions <= 0 then invalid_arg "Strategy.edge_partition: num_partitions <= 0";
  if src < 0 || dst < 0 then invalid_arg "Strategy.edge_partition: negative vertex id";
  match t with
  | Rvc -> Hashing.hash2 src dst ~num_partitions
  | One_d -> Hashing.hash1 src ~num_partitions
  | Two_d ->
      (* GraphX's grid. Perfect squares get the clean sqrt x sqrt grid;
         otherwise GraphX falls back to a cols x rows rectangle with a
         short last column, which is where the "potentially creates
         imbalanced partitioning" caveat of the paper comes from. *)
      let side = ceil_sqrt num_partitions in
      if side * side = num_partitions then begin
        let col = Hashing.mix src mod side and row = Hashing.mix dst mod side in
        (col * side) + row
      end
      else begin
        let cols = side in
        let rows = (num_partitions + cols - 1) / cols in
        let last_col_rows = num_partitions - (rows * (cols - 1)) in
        let col = Hashing.mix src mod num_partitions / rows in
        let row = Hashing.mix dst mod (if col < cols - 1 then rows else last_col_rows) in
        (col * rows) + row
      end
  | Crvc ->
      if src < dst then Hashing.hash2 src dst ~num_partitions
      else Hashing.hash2 dst src ~num_partitions
  | Sc -> src mod num_partitions
  | Dc -> dst mod num_partitions
