lib/partition/hashing.mli:
