lib/partition/strategy.ml: Format Hashing String
