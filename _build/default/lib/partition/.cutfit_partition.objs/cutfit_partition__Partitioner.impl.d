lib/partition/partitioner.ml: Array Cutfit_graph Format List Strategy Streaming
