lib/partition/hashing.ml: Cutfit_prng Int32 Int64
