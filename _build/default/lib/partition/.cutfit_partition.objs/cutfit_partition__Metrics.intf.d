lib/partition/metrics.mli: Cutfit_graph Format
