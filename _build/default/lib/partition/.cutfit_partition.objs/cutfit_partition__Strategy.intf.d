lib/partition/strategy.mli: Format
