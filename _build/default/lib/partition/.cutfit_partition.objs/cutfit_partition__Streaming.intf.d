lib/partition/streaming.mli: Cutfit_graph Format
