lib/partition/streaming.ml: Array Cutfit_graph Format Fun Hashing List Printf String
