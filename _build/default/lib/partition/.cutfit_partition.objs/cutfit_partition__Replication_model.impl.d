lib/partition/replication_model.ml: Cutfit_graph Float List Strategy
