lib/partition/replication_model.mli: Cutfit_graph Strategy
