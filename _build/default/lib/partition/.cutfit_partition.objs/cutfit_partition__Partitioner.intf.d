lib/partition/partitioner.mli: Cutfit_graph Format Strategy Streaming
