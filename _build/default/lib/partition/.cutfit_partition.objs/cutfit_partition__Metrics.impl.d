lib/partition/metrics.ml: Array Cutfit_graph Cutfit_stats Format
