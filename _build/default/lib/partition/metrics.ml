module Graph = Cutfit_graph.Graph

type t = {
  num_partitions : int;
  edges_per_partition : int array;
  vertices_per_partition : int array;
  balance : float;
  non_cut : int;
  cut : int;
  comm_cost : int;
  part_stdev : float;
  replication_factor : float;
  vertices_to_same : int;
  vertices_to_other : int;
}

(* Presence bitset: one bit per (vertex, partition) pair, packed in
   int words. 256 partitions over 154k vertices is ~5 MB. *)
let presence_words num_partitions = (num_partitions + 62) / 63

let replica_count g ~num_partitions assignment =
  let n = Graph.num_vertices g and m = Graph.num_edges g in
  if Array.length assignment <> m then invalid_arg "Metrics: assignment length mismatch";
  let words = presence_words num_partitions in
  let bits = Array.make (n * words) 0 in
  let mark v p =
    let w = (v * words) + (p / 63) and b = p mod 63 in
    bits.(w) <- bits.(w) lor (1 lsl b)
  in
  for i = 0 to m - 1 do
    let p = assignment.(i) in
    if p < 0 || p >= num_partitions then invalid_arg "Metrics: partition id out of range";
    mark (Graph.edge_src g i) p;
    mark (Graph.edge_dst g i) p
  done;
  let popcount x =
    let c = ref 0 and v = ref x in
    while !v <> 0 do
      v := !v land (!v - 1);
      incr c
    done;
    !c
  in
  Array.init n (fun v ->
      let acc = ref 0 in
      for w = 0 to words - 1 do
        acc := !acc + popcount bits.((v * words) + w)
      done;
      !acc)

let compute g ~num_partitions assignment =
  if num_partitions <= 0 then invalid_arg "Metrics.compute: num_partitions <= 0";
  let m = Graph.num_edges g in
  if Array.length assignment <> m then invalid_arg "Metrics.compute: assignment length mismatch";
  let edges_per_partition = Array.make num_partitions 0 in
  Array.iter
    (fun p ->
      if p < 0 || p >= num_partitions then invalid_arg "Metrics.compute: partition id out of range";
      edges_per_partition.(p) <- edges_per_partition.(p) + 1)
    assignment;
  let replicas = replica_count g ~num_partitions assignment in
  let vertices_per_partition = Array.make num_partitions 0 in
  (* Count local vertex-table sizes with a second presence sweep folded
     into replica counting would save a pass; clarity wins here. *)
  let words = presence_words num_partitions in
  let bits = Array.make (Graph.num_vertices g * words) 0 in
  for i = 0 to m - 1 do
    let p = assignment.(i) in
    let mark v =
      let w = (v * words) + (p / 63) and b = p mod 63 in
      if bits.(w) land (1 lsl b) = 0 then begin
        bits.(w) <- bits.(w) lor (1 lsl b);
        vertices_per_partition.(p) <- vertices_per_partition.(p) + 1
      end
    in
    mark (Graph.edge_src g i);
    mark (Graph.edge_dst g i)
  done;
  let non_cut = ref 0 and cut = ref 0 and comm_cost = ref 0 and present = ref 0 in
  let to_same = ref 0 and to_other = ref 0 in
  Array.iteri
    (fun v r ->
      if r = 1 then incr non_cut
      else if r > 1 then begin
        incr cut;
        comm_cost := !comm_cost + r
      end;
      if r > 0 then begin
        incr present;
        (* A replica collocated with the vertex's (identity-hash) master
           partition syncs locally; the rest need shipping. *)
        let mp = v mod num_partitions in
        let w = (v * words) + (mp / 63) and b = mp mod 63 in
        let at_master = bits.(w) land (1 lsl b) <> 0 in
        if at_master then begin
          incr to_same;
          to_other := !to_other + (r - 1)
        end
        else to_other := !to_other + r
      end)
    replicas;
  let avg = float_of_int m /. float_of_int num_partitions in
  let max_edges = Array.fold_left max 0 edges_per_partition in
  let balance = if avg = 0.0 then 1.0 else float_of_int max_edges /. avg in
  let part_stdev =
    Cutfit_stats.Summary.stdev (Array.map float_of_int edges_per_partition)
  in
  let replication_factor =
    if !present = 0 then 0.0
    else float_of_int (Array.fold_left ( + ) 0 replicas) /. float_of_int !present
  in
  {
    num_partitions;
    edges_per_partition;
    vertices_per_partition;
    balance;
    non_cut = !non_cut;
    cut = !cut;
    comm_cost = !comm_cost;
    part_stdev;
    replication_factor;
    vertices_to_same = !to_same;
    vertices_to_other = !to_other;
  }

let metric_names = [ "Balance"; "NonCut"; "Cut"; "CommCost"; "PartStDev" ]

let extended_metric_names = metric_names @ [ "VtxToSame"; "VtxToOther"; "Replication" ]

let metric_value t = function
  | "Balance" -> t.balance
  | "NonCut" -> float_of_int t.non_cut
  | "Cut" -> float_of_int t.cut
  | "CommCost" -> float_of_int t.comm_cost
  | "PartStDev" -> t.part_stdev
  | "VtxToSame" -> float_of_int t.vertices_to_same
  | "VtxToOther" -> float_of_int t.vertices_to_other
  | "Replication" -> t.replication_factor
  | name -> invalid_arg ("Metrics.metric_value: unknown metric " ^ name)

let pp ppf t =
  Format.fprintf ppf "Balance=%.2f NonCut=%d Cut=%d CommCost=%d PartStDev=%.2f" t.balance t.non_cut
    t.cut t.comm_cost t.part_stdev
