(** Analytic replication model for hash-family vertex cuts.

    For a partitioner that places each edge independently and uniformly
    at random over [p] targets (RVC/CRVC in the limit), a vertex of
    degree [d] is expected to be present in

    [E(replicas) = p * (1 - (1 - 1/p)^d)]

    partitions — the standard balls-in-bins bound used by PowerGraph
    and the partitioning-comparison literature the paper builds on. For
    2D the same formula applies with the per-endpoint target count
    [ceil(sqrt p)], and for 1D/SC/DC each vertex's out- (or in-) edges
    collapse into a single target while the opposite side scatters.

    These closed forms let the advisor estimate CommCost without
    materializing a partitioning — an O(V) prediction instead of an
    O(E) pass per candidate. Predictions are exact in expectation for
    the random cuts and upper-bound approximations for the modulo cuts
    (which is what the property tests check). *)

val expected_replicas : degree:int -> targets:int -> float
(** [expected_replicas ~degree ~targets] is [t * (1 - (1 - 1/t)^d)];
    0 for degree 0. @raise Invalid_argument if [targets <= 0]. *)

val predict_comm_cost :
  Strategy.t -> num_partitions:int -> Cutfit_graph.Graph.t -> float
(** Expected CommCost (total replicas of cut vertices, approximated by
    total expected replicas minus expected non-cut singletons) for a
    strategy on a graph. O(V). *)

val predict_replication_factor :
  Strategy.t -> num_partitions:int -> Cutfit_graph.Graph.t -> float
(** Expected mean replicas per non-isolated vertex. *)

val rank_strategies :
  num_partitions:int -> Cutfit_graph.Graph.t -> (Strategy.t * float) list
(** All six strategies ordered by predicted CommCost, cheapest first. *)
