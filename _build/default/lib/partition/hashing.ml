(* GraphX mixes a vertex id by multiplying with a large prime and taking
   Scala's Long.hashCode (upper 32 bits XOR lower 32), then abs. We
   reproduce that exactly: its partial structure (as opposed to a full
   avalanche) is part of why the paper's 1D behaves like SC on hubby
   graphs. *)
let mixing_prime = 1125899906842597L

let mix v =
  let x = Int64.mul (Int64.of_int v) mixing_prime in
  let h32 = Int64.to_int32 (Int64.logxor x (Int64.shift_right_logical x 32)) in
  abs (Int32.to_int h32)

let hash1 v ~num_partitions =
  if num_partitions <= 0 then invalid_arg "Hashing.hash1: num_partitions <= 0";
  mix v mod num_partitions

(* The pair hash stands in for Scala's Tuple2 hashCode (a MurmurHash3
   mix of both components). *)
let hash2 u v ~num_partitions =
  if num_partitions <= 0 then invalid_arg "Hashing.hash2: num_partitions <= 0";
  let h =
    Cutfit_prng.Splitmix64.mix64
      (Int64.logxor
         (Int64.mul (Int64.of_int u) mixing_prime)
         (Int64.add (Int64.of_int v) 0x9E3779B97F4A7C15L))
  in
  Int64.to_int (Int64.shift_right_logical h 2) mod num_partitions
