(** Hash functions for the vertex-cut partitioners.

    Faithful to GraphX: a vertex id is mixed as
    [abs((v * 1125899906842597L).hashCode)] where Long.hashCode XORs the
    upper and lower 32 bits. This is deliberately not a full-avalanche
    hash — its residual structure is part of the behaviour the paper
    measures (1D tracking SC on hub-heavy graphs). *)

val mix : int -> int
(** [mix v] is a non-negative avalanche-mixed image of [v]. *)

val hash1 : int -> num_partitions:int -> int
(** Partition index from one vertex id (the 1D partitioner's hash). *)

val hash2 : int -> int -> num_partitions:int -> int
(** Partition index from an ordered vertex pair (the RVC hash). The
    order of arguments matters: [hash2 u v <> hash2 v u] in general. *)
