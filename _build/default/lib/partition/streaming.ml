module Graph = Cutfit_graph.Graph

type t = Dbh | Greedy | Hdrf of float | Hybrid of int

let to_string = function
  | Dbh -> "DBH"
  | Greedy -> "Greedy"
  | Hdrf lambda -> Printf.sprintf "HDRF(%.2g)" lambda
  | Hybrid threshold -> Printf.sprintf "Hybrid(%d)" threshold

let of_string s =
  match String.lowercase_ascii s with
  | "dbh" -> Some Dbh
  | "greedy" -> Some Greedy
  | "hdrf" -> Some (Hdrf 1.0)
  | "hybrid" -> Some (Hybrid 100)
  | _ -> None

let pp ppf t = Format.pp_print_string ppf (to_string t)

(* Shared streaming state: which partitions each vertex already touches
   and how loaded each partition is. Replica lists stay tiny (bounded by
   the replication factor), so linear scans beat sets here. *)
type state = {
  replicas : int list array;  (* vertex -> partitions seen so far *)
  load : int array;  (* partition -> edges placed *)
  degree : int array;  (* running (streamed) degree per vertex *)
}

let make_state n num_partitions =
  { replicas = Array.make n []; load = Array.make num_partitions 0; degree = Array.make n 0 }

let has_replica st v p = List.mem p st.replicas.(v)

let place st v p = if not (has_replica st v p) then st.replicas.(v) <- p :: st.replicas.(v)

let record st ~src ~dst p =
  place st src p;
  place st dst p;
  st.load.(p) <- st.load.(p) + 1;
  st.degree.(src) <- st.degree.(src) + 1;
  st.degree.(dst) <- st.degree.(dst) + 1

let least_loaded st candidates =
  match candidates with
  | [] -> invalid_arg "Streaming.least_loaded: no candidates"
  | first :: rest ->
      List.fold_left (fun best p -> if st.load.(p) < st.load.(best) then p else best) first rest

let intersect a b = List.filter (fun p -> List.mem p b) a

let greedy_choice st ~src ~dst ~num_partitions =
  (* PowerGraph's rules: both endpoints share a partition -> use it;
     one endpoint placed -> follow it; otherwise least loaded overall. *)
  let rs = st.replicas.(src) and rd = st.replicas.(dst) in
  match (rs, rd) with
  | [], [] -> least_loaded st (List.init num_partitions Fun.id)
  | [], _ -> least_loaded st rd
  | _, [] -> least_loaded st rs
  | _, _ -> (
      match intersect rs rd with
      | [] -> least_loaded st (rs @ rd)
      | common -> least_loaded st common)

let hdrf_choice st ~lambda ~src ~dst ~num_partitions =
  (* Petroni et al. (2015): score(p) = C_rep(p) + lambda * C_bal(p).
     The replication term prefers partitions already holding the
     endpoint with the lower partial degree, so high-degree vertices
     get replicated first. *)
  let d_src = float_of_int (st.degree.(src) + 1) and d_dst = float_of_int (st.degree.(dst) + 1) in
  let theta_src = d_src /. (d_src +. d_dst) in
  let theta_dst = 1.0 -. theta_src in
  let max_load = Array.fold_left max 0 st.load and min_load = Array.fold_left min max_int st.load in
  let spread = float_of_int (max_load - min_load) +. 1.0 in
  let score p =
    let g v theta = if has_replica st v p then 1.0 +. (1.0 -. theta) else 0.0 in
    let c_rep = g src theta_src +. g dst theta_dst in
    let c_bal = lambda *. (float_of_int (max_load - st.load.(p)) /. spread) in
    c_rep +. c_bal
  in
  let best = ref 0 and best_score = ref neg_infinity in
  for p = 0 to num_partitions - 1 do
    let s = score p in
    if s > !best_score then begin
      best := p;
      best_score := s
    end
  done;
  !best

let assign t ~num_partitions g =
  if num_partitions <= 0 then invalid_arg "Streaming.assign: num_partitions <= 0";
  let n = Graph.num_vertices g and m = Graph.num_edges g in
  let out = Array.make m 0 in
  (match t with
  | Hybrid threshold ->
      (* PowerLyra's hybrid-cut: edges into a low-in-degree vertex are
         grouped by destination (locality for the many cheap vertices);
         edges into high-in-degree hubs are spread by source so no
         single partition absorbs a hub's whole in-neighbourhood. *)
      for i = 0 to m - 1 do
        let src = Graph.edge_src g i and dst = Graph.edge_dst g i in
        let key = if Graph.in_degree g dst <= threshold then dst else src in
        out.(i) <- Hashing.hash1 key ~num_partitions
      done
  | Dbh ->
      for i = 0 to m - 1 do
        let src = Graph.edge_src g i and dst = Graph.edge_dst g i in
        let total_deg v = Graph.out_degree g v + Graph.in_degree g v in
        let key = if total_deg src <= total_deg dst then src else dst in
        out.(i) <- Hashing.hash1 key ~num_partitions
      done
  | Greedy ->
      let st = make_state n num_partitions in
      for i = 0 to m - 1 do
        let src = Graph.edge_src g i and dst = Graph.edge_dst g i in
        let p = greedy_choice st ~src ~dst ~num_partitions in
        record st ~src ~dst p;
        out.(i) <- p
      done
  | Hdrf lambda ->
      let st = make_state n num_partitions in
      for i = 0 to m - 1 do
        let src = Graph.edge_src g i and dst = Graph.edge_dst g i in
        let p = hdrf_choice st ~lambda ~src ~dst ~num_partitions in
        record st ~src ~dst p;
        out.(i) <- p
      done);
  out
