module Graph = Cutfit_graph.Graph

let expected_replicas ~degree ~targets =
  if targets <= 0 then invalid_arg "Replication_model.expected_replicas: targets <= 0";
  if degree <= 0 then 0.0
  else begin
    let t = float_of_int targets in
    t *. (1.0 -. (((t -. 1.0) /. t) ** float_of_int degree))
  end

let ceil_sqrt n =
  let r = int_of_float (sqrt (float_of_int n)) in
  if r * r >= n then r else r + 1

(* Per-vertex expected presence under each strategy. A vertex appears
   once per distinct partition its incident edges land in; the models
   differ in how many independent targets each incidence can hit. *)
let per_vertex_replicas strategy ~num_partitions g v =
  let dout = Graph.out_degree g v and din = Graph.in_degree g v in
  let d = dout + din in
  if d = 0 then 0.0
  else begin
    match strategy with
    | Strategy.Rvc | Strategy.Crvc ->
        (* Every incidence is an independent uniform draw. CRVC merges
           reciprocated pairs, which only lowers the effective degree;
           we ignore that second-order effect. *)
        expected_replicas ~degree:d ~targets:num_partitions
    | Strategy.One_d | Strategy.Sc ->
        (* All out-edges collapse into one partition; in-edges scatter
           by the (hashed or raw) source of the other endpoint. *)
        let scatter = expected_replicas ~degree:din ~targets:num_partitions in
        if dout > 0 then begin
          (* The out-partition may coincide with one of the scattered
             in-partitions with probability ~ covered/num_partitions. *)
          let p = float_of_int num_partitions in
          scatter +. 1.0 -. (scatter /. p)
        end
        else scatter
    | Strategy.Dc ->
        let scatter = expected_replicas ~degree:dout ~targets:num_partitions in
        if din > 0 then begin
          let p = float_of_int num_partitions in
          scatter +. 1.0 -. (scatter /. p)
        end
        else scatter
    | Strategy.Two_d ->
        (* The vertex's out-edges stay inside one column (sqrt p cells)
           and its in-edges inside one row. *)
        let side = ceil_sqrt num_partitions in
        let col = expected_replicas ~degree:dout ~targets:side in
        let row = expected_replicas ~degree:din ~targets:side in
        Float.min (col +. row) (float_of_int num_partitions)
  end

let totals strategy ~num_partitions g =
  let n = Graph.num_vertices g in
  let total = ref 0.0 and singletons = ref 0.0 and present = ref 0 in
  for v = 0 to n - 1 do
    let r = per_vertex_replicas strategy ~num_partitions g v in
    if r > 0.0 then begin
      incr present;
      total := !total +. r;
      (* P(all incidences in one partition) ~ exp model: a vertex is a
         singleton when the expected replica count stays ~1. *)
      if r <= 1.0 +. 1e-9 then singletons := !singletons +. 1.0
    end
  done;
  (!total, !singletons, !present)

let predict_comm_cost strategy ~num_partitions g =
  let total, singletons, _ = totals strategy ~num_partitions g in
  Float.max 0.0 (total -. singletons)

let predict_replication_factor strategy ~num_partitions g =
  let total, _, present = totals strategy ~num_partitions g in
  if present = 0 then 0.0 else total /. float_of_int present

let rank_strategies ~num_partitions g =
  Strategy.all
  |> List.map (fun s -> (s, predict_comm_cost s ~num_partitions g))
  |> List.sort (fun (_, a) (_, b) -> compare a b)
