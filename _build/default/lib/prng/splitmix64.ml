type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy t = { state = t.state }

let mix64 x =
  let x = Int64.(mul (logxor x (shift_right_logical x 30)) 0xBF58476D1CE4E5B9L) in
  let x = Int64.(mul (logxor x (shift_right_logical x 27)) 0x94D049BB133111EBL) in
  Int64.(logxor x (shift_right_logical x 31))

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let next_float t =
  (* 53 high bits -> [0,1) *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let next_int t bound =
  if bound <= 0 then invalid_arg "Splitmix64.next_int: bound <= 0";
  (* Rejection-free for practical purposes: take the high bits modulo bound.
     Bias is < bound / 2^62, negligible for the bounds we use (< 2^32). *)
  let r = Int64.shift_right_logical (next_int64 t) 2 in
  Int64.to_int (Int64.rem r (Int64.of_int bound))

let next_bool t p = next_float t < p

let split t =
  let seed = next_int64 t in
  create (mix64 seed)
