(** Random distributions on top of {!Xoshiro}.

    Everything needed by the synthetic dataset generators: Zipf /
    power-law sampling (degree sequences of social graphs), alias tables
    for arbitrary discrete distributions (Chung–Lu edge sampling),
    permutations and reservoir sampling. *)

type rng = Xoshiro.t

val exponential : rng -> rate:float -> float
(** [exponential rng ~rate] samples Exp(rate). @raise Invalid_argument if
    [rate <= 0]. *)

val geometric : rng -> p:float -> int
(** [geometric rng ~p] is the number of failures before the first success
    of a Bernoulli(p); requires [0 < p <= 1]. *)

val zipf : rng -> n:int -> s:float -> int
(** [zipf rng ~n ~s] samples a rank in [\[1, n\]] with P(k) proportional to
    [k ** -. s], by inversion of the truncated zeta CDF approximated with
    rejection (Hörmann's rejection-inversion).  Exact for [s > 0]. *)

val power_law_weights : n:int -> alpha:float -> min_weight:float -> float array
(** [power_law_weights ~n ~alpha ~min_weight] is a deterministic expected
    degree sequence [w.(i) = min_weight *. ((n /. (i+1)) ** (1. /. (alpha -. 1.)))],
    the standard Chung–Lu construction producing a degree distribution
    with power-law exponent [alpha]. *)

module Alias : sig
  (** Walker alias method: O(n) preprocessing, O(1) sampling from an
      arbitrary discrete distribution. *)

  type t

  val create : float array -> t
  (** [create weights] builds a sampler over indices [0 .. n-1] with
      probabilities proportional to [weights]. Weights must be
      non-negative with a positive sum. *)

  val sample : t -> rng -> int
  (** Draw an index. *)

  val size : t -> int
  (** Number of outcomes. *)
end

val shuffle : rng -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_distinct : rng -> n:int -> k:int -> int array
(** [sample_distinct rng ~n ~k] draws [k] distinct integers uniformly from
    [\[0, n)], in random order. @raise Invalid_argument if [k > n]. *)
