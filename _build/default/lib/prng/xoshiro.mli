(** xoshiro256** pseudo-random number generator (Blackman & Vigna).

    The workhorse generator for dataset synthesis: better statistical
    quality than {!Splitmix64} over long streams, still fully
    deterministic from its seed. *)

type t
(** Mutable generator state (256 bits). *)

val create : int64 -> t
(** [create seed] seeds the four state words from a SplitMix64 stream,
    as recommended by the authors. *)

val copy : t -> t
(** Independent generator with the same current state. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val next_int : t -> int -> int
(** [next_int t bound] is a uniform integer in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val next_float : t -> float
(** Uniform float in [\[0, 1)]. *)

val next_bool : t -> float -> bool
(** [next_bool t p] is [true] with probability [p]. *)

val jump : t -> unit
(** Advance the state by 2^128 steps; used to carve independent
    sub-streams out of one seed. *)
