type rng = Xoshiro.t

let exponential rng ~rate =
  if rate <= 0.0 then invalid_arg "Dist.exponential: rate <= 0";
  let u = 1.0 -. Xoshiro.next_float rng in
  -.log u /. rate

let geometric rng ~p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Dist.geometric: p out of (0,1]";
  if p = 1.0 then 0
  else
    let u = 1.0 -. Xoshiro.next_float rng in
    int_of_float (floor (log u /. log (1.0 -. p)))

(* Rejection-inversion sampling for the Zipf distribution, after
   W. Hörmann & G. Derflinger, "Rejection-inversion to generate variates
   from monotone discrete distributions" (1996). *)
let zipf rng ~n ~s =
  if n <= 0 then invalid_arg "Dist.zipf: n <= 0";
  if s <= 0.0 then invalid_arg "Dist.zipf: s <= 0";
  if n = 1 then 1
  else begin
    let h x = if s = 1.0 then log x else (x ** (1.0 -. s)) /. (1.0 -. s) in
    let h_inv x = if s = 1.0 then exp x else ((1.0 -. s) *. x) ** (1.0 /. (1.0 -. s)) in
    let hx0 = h 0.5 -. 1.0 in
    let hn = h (float_of_int n +. 0.5) in
    let rec draw () =
      let u = hx0 +. (Xoshiro.next_float rng *. (hn -. hx0)) in
      let x = h_inv u in
      let k = int_of_float (floor (x +. 0.5)) in
      let k = if k < 1 then 1 else if k > n then n else k in
      if u >= h (float_of_int k +. 0.5) -. (float_of_int k ** -.s) then k else draw ()
    in
    draw ()
  end

let power_law_weights ~n ~alpha ~min_weight =
  if n <= 0 then invalid_arg "Dist.power_law_weights: n <= 0";
  if alpha <= 1.0 then invalid_arg "Dist.power_law_weights: alpha <= 1";
  let exponent = 1.0 /. (alpha -. 1.0) in
  Array.init n (fun i ->
      min_weight *. ((float_of_int n /. float_of_int (i + 1)) ** exponent))

module Alias = struct
  type t = { prob : float array; alias : int array }

  let create weights =
    let n = Array.length weights in
    if n = 0 then invalid_arg "Alias.create: empty weights";
    let sum = Array.fold_left ( +. ) 0.0 weights in
    if sum <= 0.0 then invalid_arg "Alias.create: non-positive total weight";
    Array.iter (fun w -> if w < 0.0 then invalid_arg "Alias.create: negative weight") weights;
    let scaled = Array.map (fun w -> w *. float_of_int n /. sum) weights in
    let prob = Array.make n 0.0 and alias = Array.make n 0 in
    let small = Stack.create () and large = Stack.create () in
    Array.iteri (fun i p -> Stack.push i (if p < 1.0 then small else large)) scaled;
    while (not (Stack.is_empty small)) && not (Stack.is_empty large) do
      let s = Stack.pop small and l = Stack.pop large in
      prob.(s) <- scaled.(s);
      alias.(s) <- l;
      scaled.(l) <- scaled.(l) +. scaled.(s) -. 1.0;
      Stack.push l (if scaled.(l) < 1.0 then small else large)
    done;
    Stack.iter (fun i -> prob.(i) <- 1.0) small;
    Stack.iter (fun i -> prob.(i) <- 1.0) large;
    { prob; alias }

  let sample t rng =
    let n = Array.length t.prob in
    let i = Xoshiro.next_int rng n in
    if Xoshiro.next_float rng < t.prob.(i) then i else t.alias.(i)

  let size t = Array.length t.prob
end

let shuffle rng a =
  for i = Array.length a - 1 downto 1 do
    let j = Xoshiro.next_int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_distinct rng ~n ~k =
  if k > n then invalid_arg "Dist.sample_distinct: k > n";
  if k < 0 then invalid_arg "Dist.sample_distinct: k < 0";
  (* Floyd's algorithm keeps memory at O(k) even for huge n. *)
  let seen = Hashtbl.create (2 * k) in
  let out = Array.make k 0 in
  let idx = ref 0 in
  for j = n - k to n - 1 do
    let t = Xoshiro.next_int rng (j + 1) in
    let v = if Hashtbl.mem seen t then j else t in
    Hashtbl.add seen v ();
    out.(!idx) <- v;
    incr idx
  done;
  shuffle rng out;
  out
