lib/prng/dist.mli: Xoshiro
