lib/prng/xoshiro.mli:
