lib/prng/dist.ml: Array Hashtbl Stack Xoshiro
