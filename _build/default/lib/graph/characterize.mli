(** Dataset characterization — the columns of the paper's Table 1.

    For each dataset the paper reports vertex and edge counts, edge
    symmetry (reciprocated fraction), the share of vertices with no
    incoming / outgoing edges, triangle count, number of connected
    components (strongly connected for directed graphs), diameter and
    on-disk size. *)

type t = {
  vertices : int;
  edges : int;
  symmetry_pct : float;  (** percentage of edges whose reverse also exists *)
  zero_in_pct : float;  (** percentage of vertices with in-degree 0 *)
  zero_out_pct : float;  (** percentage of vertices with out-degree 0 *)
  triangles : int;
  components : int;  (** weak connected components *)
  diameter : Diameter.t;
  size_bytes : int;
}

val symmetry_pct : Graph.t -> float
(** Reciprocated-edge percentage in isolation. *)

val compute : ?exact_diameter:bool -> Graph.t -> t
(** Measure every column. Diameter is estimated by double sweeps unless
    [exact_diameter] is set (small graphs only). *)

val pp : Format.formatter -> t -> unit
(** One human-readable line, matching Table 1's column order. *)
