type t = {
  n : int;
  src : int array;
  dst : int array;
  out_off : int array;
  out_adj : int array;
  in_off : int array;
  in_adj : int array;
}

(* Build one direction of CSR adjacency with a counting sort, then sort
   each bucket so membership tests can binary-search. *)
let build_csr n keys values =
  let m = Array.length keys in
  let off = Array.make (n + 1) 0 in
  for i = 0 to m - 1 do
    off.(keys.(i) + 1) <- off.(keys.(i) + 1) + 1
  done;
  for v = 1 to n do
    off.(v) <- off.(v) + off.(v - 1)
  done;
  let adj = Array.make m 0 in
  let cursor = Array.copy off in
  for i = 0 to m - 1 do
    let k = keys.(i) in
    adj.(cursor.(k)) <- values.(i);
    cursor.(k) <- cursor.(k) + 1
  done;
  for v = 0 to n - 1 do
    let lo = off.(v) and hi = off.(v + 1) in
    if hi - lo > 1 then begin
      let slice = Array.sub adj lo (hi - lo) in
      Array.sort compare slice;
      Array.blit slice 0 adj lo (hi - lo)
    end
  done;
  (off, adj)

let create ~n ~src ~dst =
  if Array.length src <> Array.length dst then
    invalid_arg "Graph.create: src/dst length mismatch";
  if n < 0 then invalid_arg "Graph.create: negative vertex count";
  Array.iter (fun v -> if v < 0 || v >= n then invalid_arg "Graph.create: src out of range") src;
  Array.iter (fun v -> if v < 0 || v >= n then invalid_arg "Graph.create: dst out of range") dst;
  let out_off, out_adj = build_csr n src dst in
  let in_off, in_adj = build_csr n dst src in
  { n; src; dst; out_off; out_adj; in_off; in_adj }

let of_edge_list ~n el =
  let src, dst = Edge_list.to_arrays el in
  create ~n ~src ~dst

let num_vertices t = t.n
let num_edges t = Array.length t.src
let edge_src t i = t.src.(i)
let edge_dst t i = t.dst.(i)
let src_array t = t.src
let dst_array t = t.dst
let out_degree t v = t.out_off.(v + 1) - t.out_off.(v)
let in_degree t v = t.in_off.(v + 1) - t.in_off.(v)

let iter_out t v f =
  for i = t.out_off.(v) to t.out_off.(v + 1) - 1 do
    f t.out_adj.(i)
  done

let iter_in t v f =
  for i = t.in_off.(v) to t.in_off.(v + 1) - 1 do
    f t.in_adj.(i)
  done

let fold_out t v f init =
  let acc = ref init in
  iter_out t v (fun u -> acc := f !acc u);
  !acc

let fold_in t v f init =
  let acc = ref init in
  iter_in t v (fun u -> acc := f !acc u);
  !acc

let out_neighbors t v = Array.sub t.out_adj t.out_off.(v) (out_degree t v)
let in_neighbors t v = Array.sub t.in_adj t.in_off.(v) (in_degree t v)

let has_edge t ~src ~dst =
  let lo = ref t.out_off.(src) and hi = ref (t.out_off.(src + 1) - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let x = t.out_adj.(mid) in
    if x = dst then found := true else if x < dst then lo := mid + 1 else hi := mid - 1
  done;
  !found

let iter_edges t f =
  for i = 0 to num_edges t - 1 do
    f ~src:t.src.(i) ~dst:t.dst.(i)
  done

let symmetrize t =
  let el = Edge_list.create ~capacity:(max 1 (num_edges t)) () in
  iter_edges t (fun ~src ~dst -> Edge_list.add el ~src ~dst);
  of_edge_list ~n:t.n (Edge_list.symmetrize el)

let is_symmetric t =
  let ok = ref true in
  (try
     iter_edges t (fun ~src ~dst ->
         if src <> dst && not (has_edge t ~src:dst ~dst:src) then begin
           ok := false;
           raise Exit
         end)
   with Exit -> ());
  !ok
