(** Breadth-first search.

    Distance computations used by the diameter estimator and as the
    sequential reference implementation that the BSP SSSP is validated
    against in the test suite. *)

val distances : ?undirected:bool -> Graph.t -> int -> int array
(** [distances g src] is the array of hop distances from [src] along out
    edges; unreachable vertices get [max_int]. With [~undirected:true]
    edges are traversed in both directions. *)

val multi_source : ?undirected:bool -> Graph.t -> int list -> int array
(** Distances to the nearest of several sources. *)

val eccentricity : ?undirected:bool -> Graph.t -> int -> int
(** Greatest finite distance from the vertex; 0 for an isolated vertex. *)

val farthest : ?undirected:bool -> Graph.t -> int -> int * int
(** [farthest g v] is [(u, d)] where [u] is a vertex at the greatest
    finite distance [d] from [v]. *)
