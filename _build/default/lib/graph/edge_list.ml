type t = { mutable srcs : int array; mutable dsts : int array; mutable len : int }

let create ?(capacity = 16) () =
  let capacity = max capacity 1 in
  { srcs = Array.make capacity 0; dsts = Array.make capacity 0; len = 0 }

let length t = t.len

let grow t =
  let cap = Array.length t.srcs in
  let srcs = Array.make (2 * cap) 0 and dsts = Array.make (2 * cap) 0 in
  Array.blit t.srcs 0 srcs 0 t.len;
  Array.blit t.dsts 0 dsts 0 t.len;
  t.srcs <- srcs;
  t.dsts <- dsts

let add t ~src ~dst =
  if t.len = Array.length t.srcs then grow t;
  t.srcs.(t.len) <- src;
  t.dsts.(t.len) <- dst;
  t.len <- t.len + 1

let src t i =
  if i < 0 || i >= t.len then invalid_arg "Edge_list.src: index out of bounds";
  t.srcs.(i)

let dst t i =
  if i < 0 || i >= t.len then invalid_arg "Edge_list.dst: index out of bounds";
  t.dsts.(i)

let iter t f =
  for i = 0 to t.len - 1 do
    f ~src:t.srcs.(i) ~dst:t.dsts.(i)
  done

let of_list pairs =
  let t = create ~capacity:(max 1 (List.length pairs)) () in
  List.iter (fun (s, d) -> add t ~src:s ~dst:d) pairs;
  t

let to_arrays t = (Array.sub t.srcs 0 t.len, Array.sub t.dsts 0 t.len)

let sort t =
  (* Sort an index permutation, then apply it; avoids boxing edge pairs. *)
  let idx = Array.init t.len (fun i -> i) in
  let cmp i j =
    let c = compare t.srcs.(i) t.srcs.(j) in
    if c <> 0 then c else compare t.dsts.(i) t.dsts.(j)
  in
  Array.sort cmp idx;
  let srcs = Array.init t.len (fun i -> t.srcs.(idx.(i))) in
  let dsts = Array.init t.len (fun i -> t.dsts.(idx.(i))) in
  Array.blit srcs 0 t.srcs 0 t.len;
  Array.blit dsts 0 t.dsts 0 t.len

let dedup ?(drop_self_loops = true) t =
  sort t;
  let out = create ~capacity:(max 1 t.len) () in
  let prev_s = ref (-1) and prev_d = ref (-1) in
  for i = 0 to t.len - 1 do
    let s = t.srcs.(i) and d = t.dsts.(i) in
    let is_dup = s = !prev_s && d = !prev_d in
    let is_loop = drop_self_loops && s = d in
    if (not is_dup) && not is_loop then begin
      add out ~src:s ~dst:d;
      prev_s := s;
      prev_d := d
    end
  done;
  out

let symmetrize t =
  let both = create ~capacity:(max 1 (2 * t.len)) () in
  iter t (fun ~src ~dst ->
      add both ~src ~dst;
      add both ~src:dst ~dst:src);
  dedup both
