type t = {
  vertices : int;
  edges : int;
  symmetry_pct : float;
  zero_in_pct : float;
  zero_out_pct : float;
  triangles : int;
  components : int;
  diameter : Diameter.t;
  size_bytes : int;
}

let symmetry_pct g =
  let m = Graph.num_edges g in
  if m = 0 then 100.0
  else begin
    let reciprocated = ref 0 in
    Graph.iter_edges g (fun ~src ~dst ->
        if src = dst || Graph.has_edge g ~src:dst ~dst:src then incr reciprocated);
    100.0 *. float_of_int !reciprocated /. float_of_int m
  end

let compute ?(exact_diameter = false) g =
  let n = Graph.num_vertices g in
  let zero_in = ref 0 and zero_out = ref 0 in
  for v = 0 to n - 1 do
    if Graph.in_degree g v = 0 then incr zero_in;
    if Graph.out_degree g v = 0 then incr zero_out
  done;
  let pct c = if n = 0 then 0.0 else 100.0 *. float_of_int c /. float_of_int n in
  let symmetry = symmetry_pct g in
  (* The paper says directed components were measured with SCC, but its
     Table 1 values (e.g. 52 components for a 17M-vertex crawl with 47%
     zero-in vertices, each of which would be a singleton SCC) are only
     consistent with weak components, so that is what we report. *)
  let components = Components.weak_count g in
  let diameter = if exact_diameter then Diameter.exact g else Diameter.estimate g in
  {
    vertices = n;
    edges = Graph.num_edges g;
    symmetry_pct = symmetry;
    zero_in_pct = pct !zero_in;
    zero_out_pct = pct !zero_out;
    triangles = Triangles.count g;
    components;
    diameter;
    size_bytes = Graph_io.size_bytes g;
  }

let pp ppf t =
  Format.fprintf ppf "V=%d E=%d Symm=%.2f%% ZeroIn=%.2f%% ZeroOut=%.2f%% Tri=%d CC=%d Diam=%a Size=%dB"
    t.vertices t.edges t.symmetry_pct t.zero_in_pct t.zero_out_pct t.triangles t.components
    Diameter.pp t.diameter t.size_bytes
