(** Connected components.

    Weak components via union-find (edge direction ignored) and strongly
    connected components via iterative Tarjan — the paper reports SCC
    counts for its directed datasets (Table 1, "Conn.Comp." column
    measured with GraphX's strongly-connected-components). *)

val weak : Graph.t -> int array * int
(** [weak g] is [(label, count)]: [label.(v)] identifies the weak
    component of [v] as the smallest vertex id it contains, and [count]
    is the number of components. *)

val weak_count : Graph.t -> int
(** Just the number of weak components. *)

val strong : Graph.t -> int array * int
(** [strong g] is [(label, count)] for strongly connected components;
    labels are arbitrary but consistent ids in [\[0, count)]. *)

val strong_count : Graph.t -> int
(** Number of strongly connected components. *)

val largest_weak_size : Graph.t -> int
(** Vertices in the biggest weak component. *)
