type t = Finite of int | Infinite

let pp ppf = function
  | Finite d -> Format.fprintf ppf "%d" d
  | Infinite -> Format.pp_print_string ppf "∞"

let to_string t = Format.asprintf "%a" pp t

let connected g = Components.weak_count g <= 1

let exact g =
  if not (connected g) then Infinite
  else begin
    let n = Graph.num_vertices g in
    let best = ref 0 in
    for v = 0 to n - 1 do
      best := max !best (Bfs.eccentricity ~undirected:true g v)
    done;
    Finite !best
  end

let estimate ?(sweeps = 4) ?(seed = 42L) g =
  if not (connected g) then Infinite
  else begin
    let n = Graph.num_vertices g in
    if n = 0 then Finite 0
    else begin
      let rng = Cutfit_prng.Xoshiro.create seed in
      let best = ref 0 in
      for _ = 1 to sweeps do
        let start = Cutfit_prng.Xoshiro.next_int rng n in
        (* Double sweep: BFS to the farthest vertex, then BFS from it. *)
        let far, _ = Bfs.farthest ~undirected:true g start in
        let _, d = Bfs.farthest ~undirected:true g far in
        best := max !best d
      done;
      Finite !best
    end
  end
