let weak g =
  let n = Graph.num_vertices g in
  let uf = Union_find.create n in
  Graph.iter_edges g (fun ~src ~dst -> ignore (Union_find.union uf src dst));
  (* Relabel every component by its smallest member so labels are stable. *)
  let label = Array.make n max_int in
  for v = 0 to n - 1 do
    let r = Union_find.find uf v in
    if v < label.(r) then label.(r) <- v
  done;
  let out = Array.make n 0 in
  for v = 0 to n - 1 do
    out.(v) <- label.(Union_find.find uf v)
  done;
  (out, Union_find.count uf)

let weak_count g = snd (weak g)

(* Iterative Tarjan SCC; the explicit stack carries (vertex, next edge
   index) frames so deep road-network chains do not overflow the OCaml
   call stack. *)
let strong g =
  let n = Graph.num_vertices g in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let comp = Array.make n (-1) in
  let stack = ref [] in
  let next_index = ref 0 in
  let comp_count = ref 0 in
  let adj v = Graph.out_neighbors g v in
  for start = 0 to n - 1 do
    if index.(start) = -1 then begin
      let frames = Stack.create () in
      let push_vertex v =
        index.(v) <- !next_index;
        lowlink.(v) <- !next_index;
        incr next_index;
        stack := v :: !stack;
        on_stack.(v) <- true;
        Stack.push (v, adj v, ref 0) frames
      in
      push_vertex start;
      while not (Stack.is_empty frames) do
        let v, neighbors, cursor = Stack.top frames in
        if !cursor < Array.length neighbors then begin
          let w = neighbors.(!cursor) in
          incr cursor;
          if index.(w) = -1 then push_vertex w
          else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w)
        end
        else begin
          ignore (Stack.pop frames);
          if lowlink.(v) = index.(v) then begin
            let continue = ref true in
            while !continue do
              match !stack with
              | [] -> continue := false
              | w :: rest ->
                  stack := rest;
                  on_stack.(w) <- false;
                  comp.(w) <- !comp_count;
                  if w = v then continue := false
            done;
            incr comp_count
          end;
          if not (Stack.is_empty frames) then begin
            let parent, _, _ = Stack.top frames in
            lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
          end
        end
      done
    end
  done;
  (comp, !comp_count)

let strong_count g = snd (strong g)

let largest_weak_size g =
  let label, _ = weak g in
  let sizes = Hashtbl.create 64 in
  Array.iter
    (fun l ->
      let cur = try Hashtbl.find sizes l with Not_found -> 0 in
      Hashtbl.replace sizes l (cur + 1))
    label;
  Hashtbl.fold (fun _ s acc -> max s acc) sizes 0
