lib/graph/characterize.mli: Diameter Format Graph
