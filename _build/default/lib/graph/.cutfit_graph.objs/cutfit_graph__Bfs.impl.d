lib/graph/bfs.ml: Array Graph List Queue
