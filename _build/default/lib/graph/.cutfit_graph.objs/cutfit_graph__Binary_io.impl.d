lib/graph/binary_io.ml: Array Buffer Char Fun Graph Printf
