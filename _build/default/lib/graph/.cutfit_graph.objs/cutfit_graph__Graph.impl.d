lib/graph/graph.ml: Array Edge_list
