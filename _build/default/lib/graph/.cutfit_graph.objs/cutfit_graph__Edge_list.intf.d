lib/graph/edge_list.mli:
