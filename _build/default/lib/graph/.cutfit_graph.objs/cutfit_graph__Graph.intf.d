lib/graph/graph.mli: Edge_list
