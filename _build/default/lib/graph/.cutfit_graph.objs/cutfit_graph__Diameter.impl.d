lib/graph/diameter.ml: Bfs Components Cutfit_prng Format Graph
