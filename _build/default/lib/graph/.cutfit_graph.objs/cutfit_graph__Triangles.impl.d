lib/graph/triangles.ml: Array Graph
