lib/graph/binary_io.mli: Graph
