lib/graph/graph_io.ml: Buffer Edge_list Fun Graph List Printf String
