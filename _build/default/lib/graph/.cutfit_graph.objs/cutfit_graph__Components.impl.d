lib/graph/components.ml: Array Graph Hashtbl Stack Union_find
