lib/graph/diameter.mli: Format Graph
