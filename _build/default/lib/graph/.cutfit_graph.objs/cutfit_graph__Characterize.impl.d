lib/graph/characterize.ml: Components Diameter Format Graph Graph_io Triangles
