lib/graph/edge_list.ml: Array List
