let save path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let buf = Buffer.create 65536 in
      Graph.iter_edges g (fun ~src ~dst ->
          Buffer.add_string buf (string_of_int src);
          Buffer.add_char buf ' ';
          Buffer.add_string buf (string_of_int dst);
          Buffer.add_char buf '\n';
          if Buffer.length buf > 60000 then begin
            Buffer.output_buffer oc buf;
            Buffer.clear buf
          end);
      Buffer.output_buffer oc buf)

let parse_line line lineno =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then None
  else
    match String.split_on_char '\t' line with
    | [ a; b ] -> Some (int_of_string a, int_of_string b)
    | _ -> (
        match String.split_on_char ' ' (String.concat " " (String.split_on_char '\t' line)) with
        | a :: rest -> (
            match List.filter (fun s -> s <> "") rest with
            | [ b ] -> (
                try Some (int_of_string a, int_of_string b)
                with Failure _ -> failwith (Printf.sprintf "Graph_io.load: bad line %d" lineno))
            | _ -> failwith (Printf.sprintf "Graph_io.load: bad line %d" lineno))
        | [] -> None)

let load ?n path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let el = Edge_list.create () in
      let max_id = ref (-1) in
      let lineno = ref 0 in
      (try
         while true do
           incr lineno;
           let line = input_line ic in
           match parse_line line !lineno with
           | None -> ()
           | Some (s, d) ->
               Edge_list.add el ~src:s ~dst:d;
               if s > !max_id then max_id := s;
               if d > !max_id then max_id := d
         done
       with End_of_file -> ());
      let n = match n with Some n -> n | None -> !max_id + 1 in
      Graph.of_edge_list ~n el)

let digits v = if v = 0 then 1 else int_of_float (log10 (float_of_int v)) + 1

let size_bytes g =
  let total = ref 0 in
  Graph.iter_edges g (fun ~src ~dst -> total := !total + digits src + digits dst + 2);
  !total
