(** Graph diameter (longest shortest path, undirected view).

    Following the paper, a graph with more than one (weak) component has
    infinite diameter. For connected graphs the exact diameter is
    computed for small graphs and estimated with repeated double sweeps
    for large ones — matching how the paper "measured [missing values]
    using GraphX". *)

type t = Finite of int | Infinite

val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** ["∞"] or the decimal value. *)

val exact : Graph.t -> t
(** All-pairs BFS; O(n·m), only for small graphs and tests. *)

val estimate : ?sweeps:int -> ?seed:int64 -> Graph.t -> t
(** Double-sweep lower bound from [sweeps] random starts (default 4).
    Exact on trees; a tight lower bound in practice. *)
