(** Plain-text edge-list persistence.

    The on-disk format is the SNAP convention the paper's datasets ship
    in: one ["src dst"] pair per line, ['#']-prefixed comment lines
    ignored. The byte size of this representation is what Table 1's
    "Size" column reports, so it is also computable without writing. *)

val save : string -> Graph.t -> unit
(** Write the graph's edges to the given path. *)

val load : ?n:int -> string -> Graph.t
(** Read an edge list. Vertex count defaults to [1 + max id].
    @raise Failure on malformed lines. *)

val size_bytes : Graph.t -> int
(** Exact byte size the edge list would occupy on disk via {!save}. *)
