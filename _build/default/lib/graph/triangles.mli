(** Exact triangle counting.

    The substrate reference used to (a) characterize datasets (Table 1's
    triangle column) and (b) validate the BSP triangle-count algorithm.
    Edge direction is ignored, as in GraphX's [TriangleCount]. *)

val count : Graph.t -> int
(** Total number of triangles in the undirected view of the graph. *)

val per_vertex : Graph.t -> int array
(** [per_vertex g] maps each vertex to the number of triangles through
    it. The sum of the array is [3 * count g]. *)

val global_clustering : Graph.t -> float
(** Ratio of closed triplets: [3 * triangles / open-or-closed wedges];
    0 when the graph has no wedge. *)
