(** Disjoint-set forest with union by rank and path compression.

    Used for weak connected components and by the generators when they
    stitch a graph into a prescribed number of components. *)

type t

val create : int -> t
(** [create n] makes [n] singleton sets [0 .. n-1]. *)

val find : t -> int -> int
(** Representative of the element's set (with path compression). *)

val union : t -> int -> int -> bool
(** [union t a b] merges the two sets; returns [true] iff they were
    previously distinct. *)

val same : t -> int -> int -> bool
(** Whether two elements share a set. *)

val count : t -> int
(** Current number of disjoint sets. *)

val size_of : t -> int -> int
(** Number of elements in the element's set. *)
