let run ?(undirected = false) g sources =
  let n = Graph.num_vertices g in
  let dist = Array.make n max_int in
  let queue = Queue.create () in
  List.iter
    (fun s ->
      if s < 0 || s >= n then invalid_arg "Bfs: source out of range";
      if dist.(s) = max_int then begin
        dist.(s) <- 0;
        Queue.push s queue
      end)
    sources;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    let d = dist.(v) in
    let visit u =
      if dist.(u) = max_int then begin
        dist.(u) <- d + 1;
        Queue.push u queue
      end
    in
    Graph.iter_out g v visit;
    if undirected then Graph.iter_in g v visit
  done;
  dist

let distances ?undirected g src = run ?undirected g [ src ]
let multi_source ?undirected g sources = run ?undirected g sources

let farthest ?undirected g v =
  let dist = distances ?undirected g v in
  let best = ref v and best_d = ref 0 in
  Array.iteri
    (fun u d ->
      if d <> max_int && d > !best_d then begin
        best := u;
        best_d := d
      end)
    dist;
  (!best, !best_d)

let eccentricity ?undirected g v = snd (farthest ?undirected g v)
