(* Degree-ordered triangle enumeration: orient each undirected edge from
   its lower-ranked endpoint to the higher-ranked one (rank = (degree,
   id)), then intersect the oriented adjacency of each edge's endpoints.
   O(m^{3/2}) worst case, much faster on power-law graphs. *)

let oriented g =
  let und = Graph.symmetrize g in
  let n = Graph.num_vertices und in
  let rank u v =
    let du = Graph.out_degree und u and dv = Graph.out_degree und v in
    du < dv || (du = dv && u < v)
  in
  let counts = Array.make n 0 in
  Graph.iter_edges und (fun ~src ~dst -> if rank src dst then counts.(src) <- counts.(src) + 1);
  let off = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    off.(v + 1) <- off.(v) + counts.(v)
  done;
  let adj = Array.make off.(n) 0 in
  let cursor = Array.copy off in
  Graph.iter_edges und (fun ~src ~dst ->
      if rank src dst then begin
        adj.(cursor.(src)) <- dst;
        cursor.(src) <- cursor.(src) + 1
      end);
  for v = 0 to n - 1 do
    let lo = off.(v) and hi = off.(v + 1) in
    if hi - lo > 1 then begin
      let slice = Array.sub adj lo (hi - lo) in
      Array.sort compare slice;
      Array.blit slice 0 adj lo (hi - lo)
    end
  done;
  (und, off, adj)

let fold_triangles g f =
  let und, off, adj = oriented g in
  let n = Graph.num_vertices und in
  for u = 0 to n - 1 do
    for i = off.(u) to off.(u + 1) - 1 do
      let v = adj.(i) in
      (* Merge-intersect adj+(u) and adj+(v); both slices are sorted. *)
      let a = ref off.(u) and b = ref off.(v) in
      while !a < off.(u + 1) && !b < off.(v + 1) do
        let x = adj.(!a) and y = adj.(!b) in
        if x = y then begin
          f u v x;
          incr a;
          incr b
        end
        else if x < y then incr a
        else incr b
      done
    done
  done

let count g =
  let total = ref 0 in
  fold_triangles g (fun _ _ _ -> incr total);
  !total

let per_vertex g =
  let n = Graph.num_vertices g in
  let counts = Array.make n 0 in
  fold_triangles g (fun u v w ->
      counts.(u) <- counts.(u) + 1;
      counts.(v) <- counts.(v) + 1;
      counts.(w) <- counts.(w) + 1);
  counts

let global_clustering g =
  let und = Graph.symmetrize g in
  let n = Graph.num_vertices und in
  let wedges = ref 0.0 in
  for v = 0 to n - 1 do
    let d = float_of_int (Graph.out_degree und v) in
    wedges := !wedges +. (d *. (d -. 1.0) /. 2.0)
  done;
  if !wedges = 0.0 then 0.0 else 3.0 *. float_of_int (count g) /. !wedges
