(** Compact binary graph persistence.

    The text edge-list format ({!Graph_io}) is the interchange format;
    this is the fast path for caching generated analogues between runs:
    a little-endian header (magic, version, vertex count, edge count)
    followed by varint-encoded delta-compressed edges. Typically 3-5x
    smaller than the text form and an order of magnitude faster to
    load. *)

val save : string -> Graph.t -> unit
(** Write the graph in binary form. *)

val load : string -> Graph.t
(** Read a graph written by {!save}.
    @raise Failure on a malformed or foreign file. *)

val size_bytes : Graph.t -> int
(** Exact encoded size without writing. *)
