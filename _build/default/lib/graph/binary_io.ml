let magic = "CUTF"
let version = 1

(* LEB128-style varints over ints; edges are sorted by (src, dst) and
   stored as (delta src, first dst | delta dst) pairs, which keeps most
   bytes small on locality-friendly graphs. *)
let write_varint buf v =
  if v < 0 then invalid_arg "Binary_io: negative varint";
  let rec go v =
    if v < 0x80 then Buffer.add_char buf (Char.chr v)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (v land 0x7F)));
      go (v lsr 7)
    end
  in
  go v

let read_varint ic =
  let rec go shift acc =
    let b = input_byte ic in
    let acc = acc lor ((b land 0x7F) lsl shift) in
    if b land 0x80 <> 0 then go (shift + 7) acc else acc
  in
  go 0 0

let varint_size v =
  let rec go v n = if v < 0x80 then n else go (v lsr 7) (n + 1) in
  go (max v 0) 1

let sorted_edges g =
  let m = Graph.num_edges g in
  let idx = Array.init m (fun i -> i) in
  let cmp a b =
    let c = compare (Graph.edge_src g a) (Graph.edge_src g b) in
    if c <> 0 then c else compare (Graph.edge_dst g a) (Graph.edge_dst g b)
  in
  Array.sort cmp idx;
  idx

let encode g =
  let buf = Buffer.create (4 * Graph.num_edges g) in
  Buffer.add_string buf magic;
  write_varint buf version;
  write_varint buf (Graph.num_vertices g);
  write_varint buf (Graph.num_edges g);
  let prev_src = ref 0 and prev_dst = ref 0 in
  Array.iter
    (fun e ->
      let src = Graph.edge_src g e and dst = Graph.edge_dst g e in
      let dsrc = src - !prev_src in
      write_varint buf dsrc;
      (* A new source resets the destination delta chain. *)
      if dsrc > 0 then prev_dst := 0;
      write_varint buf (dst - !prev_dst);
      prev_src := src;
      prev_dst := dst)
    (sorted_edges g);
  buf

let save path g =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Buffer.output_buffer oc (encode g))

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let m4 = really_input_string ic 4 in
      if m4 <> magic then failwith "Binary_io.load: not a cutfit binary graph";
      let v = read_varint ic in
      if v <> version then failwith (Printf.sprintf "Binary_io.load: unsupported version %d" v);
      let n = read_varint ic in
      let m = read_varint ic in
      let src = Array.make m 0 and dst = Array.make m 0 in
      let prev_src = ref 0 and prev_dst = ref 0 in
      for i = 0 to m - 1 do
        let dsrc = read_varint ic in
        if dsrc > 0 then prev_dst := 0;
        let s = !prev_src + dsrc in
        let d = !prev_dst + read_varint ic in
        src.(i) <- s;
        dst.(i) <- d;
        prev_src := s;
        prev_dst := d
      done;
      Graph.create ~n ~src ~dst)

let size_bytes g =
  let total = ref (4 + varint_size version + varint_size (Graph.num_vertices g) + varint_size (Graph.num_edges g)) in
  let prev_src = ref 0 and prev_dst = ref 0 in
  Array.iter
    (fun e ->
      let src = Graph.edge_src g e and dst = Graph.edge_dst g e in
      let dsrc = src - !prev_src in
      if dsrc > 0 then prev_dst := 0;
      total := !total + varint_size dsrc + varint_size (dst - !prev_dst);
      prev_src := src;
      prev_dst := dst)
    (sorted_edges g);
  !total
