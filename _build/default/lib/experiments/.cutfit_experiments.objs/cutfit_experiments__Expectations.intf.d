lib/experiments/expectations.mli: Format Run
