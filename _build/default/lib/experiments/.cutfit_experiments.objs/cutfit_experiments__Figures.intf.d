lib/experiments/figures.mli: Format Run
