lib/experiments/export.mli: Run
