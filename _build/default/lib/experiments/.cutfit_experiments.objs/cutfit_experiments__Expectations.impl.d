lib/experiments/expectations.ml: Cutfit_gen Figures Float Format List Printf Run String
