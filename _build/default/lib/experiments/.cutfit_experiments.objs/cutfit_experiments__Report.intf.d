lib/experiments/report.mli:
