lib/experiments/run.ml: Array Char Cutfit_algo Cutfit_bsp Cutfit_gen Cutfit_graph Cutfit_partition Float Format Int64 List String
