lib/experiments/export.ml: Cutfit_gen Cutfit_partition Fun List Printf Run String
