lib/experiments/tables.ml: Cutfit_gen Cutfit_graph Cutfit_partition Format List Printf Report
