lib/experiments/tables.mli: Cutfit_partition Format
