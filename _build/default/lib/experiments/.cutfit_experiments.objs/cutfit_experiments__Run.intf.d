lib/experiments/run.mli: Cutfit_bsp Cutfit_gen Cutfit_graph Cutfit_partition
