lib/experiments/report.ml: Array Buffer Float List Printf String
