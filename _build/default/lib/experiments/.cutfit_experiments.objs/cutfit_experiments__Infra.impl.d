lib/experiments/infra.ml: Cutfit_algo Cutfit_bsp Cutfit_gen Cutfit_partition Format List Report Run
