lib/experiments/figures.ml: Array Cutfit_gen Cutfit_graph Cutfit_partition Cutfit_stats Float Format List Printf Report Run String
