lib/experiments/infra.mli: Cutfit_bsp Format
