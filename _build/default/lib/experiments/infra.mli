(** The paper's infrastructure experiment (section 4, last paragraph).

    PageRank on the biggest dataset (follow-dec) at 256 partitions,
    re-run with a 40 Gbps network (configuration (iii)) and again with
    local SSD storage (configuration (iv)). The paper measures ~15% and
    ~20% average improvements over configuration (ii) — evidence that a
    good partitioner matters more on better infrastructure. *)

type result = {
  partitioner : string;
  time_ii : float;
  time_iii : float;
  time_iv : float;
  gain_iii_pct : float;  (** improvement of (iii) over (ii) *)
  gain_iv_pct : float;
}

val run : ?cost:Cutfit_bsp.Cost_model.t -> ?dataset:string -> unit -> result list
(** One row per paper partitioner. Default dataset: "follow_dec". *)

val report : Format.formatter -> result list -> unit
