module Datasets = Cutfit_gen.Datasets
module Partitioner = Cutfit_partition.Partitioner
module Cluster = Cutfit_bsp.Cluster
module Pgraph = Cutfit_bsp.Pgraph

type result = {
  partitioner : string;
  time_ii : float;
  time_iii : float;
  time_iv : float;
  gain_iii_pct : float;
  gain_iv_pct : float;
}

let run ?cost ?(dataset = "follow_dec") () =
  let spec = Datasets.find dataset in
  let g = Datasets.generate spec in
  let scale = Run.scale_of spec g in
  List.map
    (fun partitioner ->
      let num_partitions = Cluster.config_ii.Cluster.num_partitions in
      let assignment = Partitioner.assign partitioner ~num_partitions g in
      let pg = Pgraph.build g ~num_partitions assignment in
      let time cluster =
        (Cutfit_algo.Pagerank.run ?cost ~scale ~cluster pg).Cutfit_algo.Pagerank.trace
          .Cutfit_bsp.Trace.total_s
      in
      let t2 = time Cluster.config_ii in
      let t3 = time Cluster.config_iii in
      let t4 = time Cluster.config_iv in
      {
        partitioner = Partitioner.name partitioner;
        time_ii = t2;
        time_iii = t3;
        time_iv = t4;
        gain_iii_pct = 100.0 *. (t2 -. t3) /. t2;
        gain_iv_pct = 100.0 *. (t2 -. t4) /. t2;
      })
    Partitioner.paper_six

let report ppf results =
  let header = [ "Partitioner"; "(ii)"; "(iii) 40Gbps"; "(iv) +SSD"; "gain(iii)"; "gain(iv)" ] in
  let rows =
    List.map
      (fun r ->
        [
          r.partitioner;
          Report.seconds r.time_ii;
          Report.seconds r.time_iii;
          Report.seconds r.time_iv;
          Report.pct r.gain_iii_pct;
          Report.pct r.gain_iv_pct;
        ])
      results
  in
  Format.fprintf ppf "%s@." (Report.table ~header ~rows);
  let avg f = List.fold_left (fun a r -> a +. f r) 0.0 results /. float_of_int (List.length results) in
  Format.fprintf ppf "average gain: (iii) %.1f%% (paper ~15%%), (iv) %.1f%% (paper ~20%%)@."
    (avg (fun r -> r.gain_iii_pct))
    (avg (fun r -> r.gain_iv_pct))
