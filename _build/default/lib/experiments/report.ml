let table ~header ~rows =
  let all = header :: rows in
  let cols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let width = Array.make cols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> if String.length cell > width.(i) then width.(i) <- String.length cell) row)
    all;
  let render row =
    let cells =
      List.mapi (fun i cell -> cell ^ String.make (width.(i) - String.length cell) ' ') row
    in
    String.concat "  " cells
  in
  let rule = String.concat "--" (Array.to_list (Array.map (fun w -> String.make w '-') width)) in
  String.concat "\n" (render header :: rule :: List.map render rows)

let commas n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3)) in
  if n < 0 then Buffer.add_char buf '-';
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let fsig x =
  if Float.is_nan x then "nan"
  else if x = 0.0 then "0"
  else begin
    let a = abs_float x in
    if a >= 1000.0 then commas (int_of_float (Float.round x))
    else if a >= 100.0 then Printf.sprintf "%.0f" x
    else if a >= 10.0 then Printf.sprintf "%.1f" x
    else Printf.sprintf "%.2f" x
  end

let pct x = Printf.sprintf "%.1f%%" x

let seconds x = if Float.is_nan x then "OOM" else Printf.sprintf "%ss" (fsig x)
