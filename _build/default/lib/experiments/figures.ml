module Graph = Cutfit_graph.Graph
module Datasets = Cutfit_gen.Datasets
module Metrics = Cutfit_partition.Metrics
module Histogram = Cutfit_stats.Histogram
module Cdf = Cutfit_stats.Cdf
module Correlation = Cutfit_stats.Correlation
module Asciiplot = Cutfit_stats.Asciiplot

let figure1 ppf =
  List.iter
    (fun spec ->
      let g = Datasets.generate spec in
      let n = Graph.num_vertices g in
      let out_deg = Array.init n (Graph.out_degree g) in
      let in_deg = Array.init n (Graph.in_degree g) in
      let fmt_bins bins =
        String.concat " "
          (List.map (fun b -> Printf.sprintf "[%d,%d):%d" b.Histogram.lo b.Histogram.hi b.Histogram.count) bins)
      in
      let fit label values =
        match Cutfit_stats.Powerlaw.fit_alpha ~x_min:4 values with
        | Some f ->
            Printf.sprintf "%s alpha=%.2f (tail %.1f%%)" label f.Cutfit_stats.Powerlaw.alpha
              (100.0 *. f.Cutfit_stats.Powerlaw.tail_fraction)
        | None -> Printf.sprintf "%s alpha=n/a" label
      in
      Format.fprintf ppf "%s  [%s, %s]@.  out-degree: %s@.  in-degree:  %s@."
        spec.Datasets.display (fit "out" out_deg) (fit "in" in_deg)
        (fmt_bins (Histogram.log2_bins out_deg))
        (fmt_bins (Histogram.log2_bins in_deg)))
    Datasets.all

let figure2 ppf =
  let points = [ 0.1; 0.25; 0.5; 0.9; 1.0; 1.1; 2.0; 4.0; 10.0 ] in
  let header = "Dataset" :: List.map (fun r -> Printf.sprintf "<=%.2g" r) points in
  let rows =
    List.map
      (fun spec ->
        let g = Datasets.generate spec in
        let n = Graph.num_vertices g in
        let ratios = ref [] in
        for v = 0 to n - 1 do
          let din = Graph.in_degree g v and dout = Graph.out_degree g v in
          (* Vertices with no in-edges have an infinite ratio; they sit
             in the CDF's top bucket like the paper's crawl leaves. *)
          if din > 0 then ratios := (float_of_int dout /. float_of_int din) :: !ratios
          else if dout > 0 then ratios := infinity :: !ratios
        done;
        let cdf = Cdf.of_samples (Array.of_list !ratios) in
        spec.Datasets.display
        :: List.map (fun r -> Printf.sprintf "%.2f" (Cdf.eval cdf r)) points)
      Datasets.all
  in
  Format.fprintf ppf "%s@." (Report.table ~header ~rows)

(* The paper's figures are log-log scatters spanning several orders of
   magnitude; correlating the logs matches what the plots show. *)
let log_points ms metric =
  ms
  |> List.filter (fun m -> m.Run.completed)
  |> List.map (fun m ->
         (log10 (Float.max 1.0 (Metrics.metric_value m.Run.metrics metric)),
          log10 (Float.max 1e-9 m.Run.time_s)))

let correlations ms algo ~config =
  let cells = Run.filter ~algo ~config ms in
  List.map
    (fun metric ->
      let pts = log_points cells metric in
      let xs = Array.of_list (List.map fst pts) and ys = Array.of_list (List.map snd pts) in
      let c = if Array.length xs < 2 then Float.nan else Correlation.pearson xs ys in
      (metric, c))
    Metrics.metric_names

let best_partitioners ms algo ~config =
  let cells = Run.filter ~algo ~config ms in
  List.filter_map
    (fun spec ->
      let mine =
        List.filter
          (fun m -> m.Run.dataset.Datasets.name = spec.Datasets.name && m.Run.completed)
          cells
      in
      match mine with
      | [] -> None
      | first :: rest ->
          let best =
            List.fold_left (fun b m -> if m.Run.time_s < b.Run.time_s then m else b) first rest
          in
          Some (spec.Datasets.display, best.Run.partitioner, best.Run.time_s))
    Datasets.all

let granularity_deltas ms algo =
  List.filter_map
    (fun spec ->
      let best config =
        match
          best_partitioners ms algo ~config
          |> List.find_opt (fun (d, _, _) -> d = spec.Datasets.display)
        with
        | Some (_, _, t) -> Some t
        | None -> None
      in
      match (best "(i)", best "(ii)") with
      | Some a, Some b -> Some (spec.Datasets.display, 100.0 *. ((b -. a) /. a))
      | _ -> Some (spec.Datasets.display, Float.nan))
    Datasets.all

let figure_algo ms algo ~metric ppf =
  let configs = [ "(i)"; "(ii)" ] in
  List.iter
    (fun config ->
      let cells = Run.filter ~algo ~config ms in
      if cells <> [] then begin
        Format.fprintf ppf "@.-- %s, configuration %s --@." (Run.algo_name algo) config;
        let header = [ "Dataset"; "Partitioner"; metric; "Time" ] in
        let rows =
          List.map
            (fun m ->
              [
                m.Run.dataset.Datasets.display;
                m.Run.partitioner;
                Report.commas (int_of_float (Metrics.metric_value m.Run.metrics metric));
                Report.seconds m.Run.time_s;
              ])
            cells
        in
        Format.fprintf ppf "%s@." (Report.table ~header ~rows);
        (* The paper's figure is a log-log scatter: one glyph per dataset. *)
        let glyphs = "123456789" in
        let series =
          List.mapi
            (fun i spec ->
              {
                Asciiplot.label = spec.Datasets.display;
                glyph = glyphs.[i mod String.length glyphs];
                points =
                  List.filter_map
                    (fun m ->
                      if m.Run.dataset.Datasets.name = spec.Datasets.name && m.Run.completed
                      then Some (Metrics.metric_value m.Run.metrics metric, m.Run.time_s)
                      else None)
                    cells;
              })
            Datasets.all
        in
        Format.fprintf ppf "%s@."
          (Asciiplot.scatter ~log_x:true ~log_y:true ~x_label:metric ~y_label:"time (s)" series);
        Format.fprintf ppf "correlation of log(time) vs log(metric) over completed cells:@.";
        List.iter
          (fun (name, c) ->
            Format.fprintf ppf "  %-10s %s%.0f%%@." name (if c < 0.0 then "-" else "")
              (100.0 *. Float.abs c))
          (correlations ms algo ~config);
        Format.fprintf ppf "best partitioner per dataset:@.";
        List.iter
          (fun (d, p, t) -> Format.fprintf ppf "  %-16s %-6s %s@." d p (Report.seconds t))
          (best_partitioners ms algo ~config)
      end)
    configs;
  let deltas = granularity_deltas ms algo in
  if List.exists (fun (_, d) -> not (Float.is_nan d)) deltas then begin
    Format.fprintf ppf "granularity: best-time change (i) -> (ii):@.";
    List.iter
      (fun (d, delta) ->
        if Float.is_nan delta then Format.fprintf ppf "  %-16s n/a@." d
        else Format.fprintf ppf "  %-16s %+.1f%%@." d delta)
      deltas
  end
