(** CSV export of the evaluation matrix.

    One row per (dataset, partitioner, configuration, algorithm) cell
    with the five paper metrics and the simulated time decomposition,
    for analysis outside the harness (spreadsheets, R, gnuplot). *)

val header : string
(** The CSV header line. *)

val to_csv : Run.measurement list -> string
(** Render all measurements; OOMed cells carry an empty time and
    [completed=false]. *)

val save : string -> Run.measurement list -> unit
(** Write [to_csv] to a file. *)
