module Datasets = Cutfit_gen.Datasets
module Characterize = Cutfit_graph.Characterize
module Diameter = Cutfit_graph.Diameter
module Partitioner = Cutfit_partition.Partitioner
module Metrics = Cutfit_partition.Metrics

let table1 ppf =
  let header =
    [ "Dataset"; "Vertices"; "Edges"; "Symm"; "ZeroIn%"; "ZeroOut%"; "Triangles"; "Conn.Comp.";
      "Diameter"; "Size"; "(orig V)"; "(orig E)" ]
  in
  let rows =
    List.map
      (fun spec ->
        let g = Datasets.generate spec in
        let c = Characterize.compute g in
        [
          spec.Datasets.display;
          Report.commas c.Characterize.vertices;
          Report.commas c.Characterize.edges;
          Printf.sprintf "%.2f" c.Characterize.symmetry_pct;
          Printf.sprintf "%.2f" c.Characterize.zero_in_pct;
          Printf.sprintf "%.2f" c.Characterize.zero_out_pct;
          Report.commas c.Characterize.triangles;
          Report.commas c.Characterize.components;
          Diameter.to_string c.Characterize.diameter;
          Report.commas c.Characterize.size_bytes ^ "B";
          Report.commas spec.Datasets.paper_vertices;
          Report.commas spec.Datasets.paper_edges;
        ])
      Datasets.all
  in
  Format.fprintf ppf "%s@." (Report.table ~header ~rows)

let partition_metrics ?(partitioners = Partitioner.paper_six) ~num_partitions ppf =
  let header = [ "Dataset"; "Partitioner"; "Balance"; "NonCut"; "Cut"; "CommCost"; "PartStDev" ] in
  let rows =
    List.concat_map
      (fun spec ->
        let g = Datasets.generate spec in
        List.map
          (fun p ->
            let assignment = Partitioner.assign p ~num_partitions g in
            let m = Metrics.compute g ~num_partitions assignment in
            [
              spec.Datasets.display;
              Partitioner.name p;
              Printf.sprintf "%.2f" m.Metrics.balance;
              Report.commas m.Metrics.non_cut;
              Report.commas m.Metrics.cut;
              Report.commas m.Metrics.comm_cost;
              Printf.sprintf "%.2f" m.Metrics.part_stdev;
            ])
          partitioners)
      Datasets.all
  in
  Format.fprintf ppf "%s@." (Report.table ~header ~rows)
