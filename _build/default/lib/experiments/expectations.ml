module Datasets = Cutfit_gen.Datasets

type verdict = { name : string; expected : string; measured : string; pass : bool }

let pp_verdict ppf v =
  Format.fprintf ppf "[%s] %-34s expected %-22s measured %s"
    (if v.pass then "PASS" else "DEVIATION")
    v.name v.expected v.measured

let corr_of ms algo ~config metric =
  match List.assoc_opt metric (Figures.correlations ms algo ~config) with
  | Some c -> c
  | None -> Float.nan

(* A correlation passes when it lands within +-0.18 of the paper's
   coefficient — generous because the analogue datasets are 100x
   smaller, but tight enough to catch a wrong predictive metric. *)
let check_corr ms algo metric ~config ~paper =
  let c = corr_of ms algo ~config metric in
  {
    name = Printf.sprintf "corr %s/%s %s" (Run.algo_name algo) metric config;
    expected = Printf.sprintf "~%.0f%%" (100.0 *. paper);
    measured = (if Float.is_nan c then "n/a" else Printf.sprintf "%.0f%%" (100.0 *. c));
    pass = (not (Float.is_nan c)) && Float.abs (c -. paper) <= 0.18;
  }

let check_low_corr ms algo metric ~config ~paper =
  let c = corr_of ms algo ~config metric in
  {
    name = Printf.sprintf "corr %s/%s %s (low)" (Run.algo_name algo) metric config;
    expected = Printf.sprintf "well below the predictive metric (~%.0f%%)" (100.0 *. paper);
    measured = (if Float.is_nan c then "n/a" else Printf.sprintf "%.0f%%" (100.0 *. c));
    (* "Low" is relative: it must trail the predictive metric clearly. *)
    pass =
      (not (Float.is_nan c))
      &&
      let predictive = corr_of ms algo ~config "Cut" in
      c < predictive -. 0.03;
  }

let check_correlations ms =
  let have algo config = Run.filter ~algo ~config ms <> [] in
  List.concat
    [
      (if have Run.Pagerank "(i)" then
         [ check_corr ms Run.Pagerank "CommCost" ~config:"(i)" ~paper:0.95 ]
       else []);
      (if have Run.Pagerank "(ii)" then
         [ check_corr ms Run.Pagerank "CommCost" ~config:"(ii)" ~paper:0.96 ]
       else []);
      (if have Run.Connected_components "(i)" then
         [ check_corr ms Run.Connected_components "CommCost" ~config:"(i)" ~paper:0.92 ]
       else []);
      (if have Run.Connected_components "(ii)" then
         [ check_corr ms Run.Connected_components "CommCost" ~config:"(ii)" ~paper:0.94 ]
       else []);
      (if have Run.Triangle_count "(i)" then
         [
           check_corr ms Run.Triangle_count "Cut" ~config:"(i)" ~paper:0.95;
           check_low_corr ms Run.Triangle_count "CommCost" ~config:"(i)" ~paper:0.43;
         ]
       else []);
      (if have Run.Triangle_count "(ii)" then
         [
           check_corr ms Run.Triangle_count "Cut" ~config:"(ii)" ~paper:0.97;
           check_low_corr ms Run.Triangle_count "CommCost" ~config:"(ii)" ~paper:0.34;
         ]
       else []);
      (if have Run.Shortest_paths "(i)" then
         [ check_corr ms Run.Shortest_paths "CommCost" ~config:"(i)" ~paper:0.80 ]
       else []);
      (if have Run.Shortest_paths "(ii)" then
         [ check_corr ms Run.Shortest_paths "CommCost" ~config:"(ii)" ~paper:0.86 ]
       else []);
    ]

let big_datasets = [ "Orkut"; "socLiveJournal"; "follow-jul"; "follow-dec" ]

let check_granularity ms =
  let deltas algo = Figures.granularity_deltas ms algo in
  let have algo = Run.filter ~algo ms <> [] in
  List.concat
    [
      (if have Run.Pagerank then begin
         let ds = deltas Run.Pagerank in
         let slower =
           List.length (List.filter (fun (_, d) -> (not (Float.is_nan d)) && d > 0.0) ds)
         in
         let total = List.length (List.filter (fun (_, d) -> not (Float.is_nan d)) ds) in
         [
           {
             name = "PR: finer grain increases time";
             expected = "most datasets slower at (ii)";
             measured = Printf.sprintf "%d/%d datasets slower" slower total;
             pass = total > 0 && 2 * slower > total;
           };
         ]
       end
       else []);
      (if have Run.Connected_components then begin
         let ds = deltas Run.Connected_components in
         let big_faster =
           List.filter (fun (d, delta) -> List.mem d big_datasets && delta < 0.0) ds
         in
         [
           {
             name = "CC: finer grain wins on big datasets";
             expected = "large datasets faster at (ii), up to ~22%";
             measured =
               String.concat ", "
                 (List.map (fun (d, x) -> Printf.sprintf "%s %+.0f%%" d x)
                    (List.filter (fun (d, _) -> List.mem d big_datasets) ds));
             pass = List.length big_faster >= 3;
           };
         ]
       end
       else []);
      (if have Run.Triangle_count then begin
         let ds = deltas Run.Triangle_count in
         let faster = List.filter (fun (_, delta) -> delta < 0.0) ds in
         [
           {
             name = "TR: finer grain wins consistently";
             expected = "most datasets faster at (ii) (Orkut up to ~40%)";
             measured = Printf.sprintf "%d/%d datasets faster" (List.length faster) (List.length ds);
             pass = 2 * List.length faster > List.length ds;
           };
         ]
       end
       else []);
    ]

let check_sssp_oom ms =
  let cells = Run.filter ~algo:Run.Shortest_paths ms in
  if cells = [] then []
  else begin
    let roads = [ "roadnet_pa"; "roadnet_tx"; "roadnet_ca" ] in
    let oom_road =
      List.for_all
        (fun m -> not m.Run.completed)
        (List.filter (fun m -> List.mem m.Run.dataset.Datasets.name roads) cells)
    in
    let social_ok =
      List.for_all
        (fun m -> m.Run.completed)
        (List.filter (fun m -> not (List.mem m.Run.dataset.Datasets.name roads)) cells)
    in
    [
      {
        name = "SSSP: road networks OOM";
        expected = "all road-network runs fail";
        measured = (if oom_road then "all failed" else "some completed");
        pass = oom_road;
      };
      {
        name = "SSSP: social datasets complete";
        expected = "no social run fails";
        measured = (if social_ok then "all completed" else "some failed");
        pass = social_ok;
      };
    ]
  end

let check_all ms = check_correlations ms @ check_granularity ms @ check_sssp_oom ms

let summary ppf verdicts =
  List.iter (fun v -> Format.fprintf ppf "%a@." pp_verdict v) verdicts;
  let passed = List.length (List.filter (fun v -> v.pass) verdicts) in
  Format.fprintf ppf "shape checks: %d/%d pass@." passed (List.length verdicts)
