(** Plain-text rendering helpers for the experiment harness. *)

val table : header:string list -> rows:string list list -> string
(** Monospace table with column-width alignment and a rule under the
    header. *)

val commas : int -> string
(** ["12,345,678"] — the formatting of Tables 2 and 3. *)

val fsig : float -> string
(** Compact significant-digit float ("1.23", "45.6", "1234"). *)

val pct : float -> string
(** ["95.3%"]. *)

val seconds : float -> string
(** ["12.3s"] or ["OOM"] for NaN. *)
