(** Reproductions of the paper's tables.

    - Table 1: dataset characterization (our analogues, with the
      original sizes alongside for scale reference);
    - Tables 2 and 3: all five partitioning metrics for every dataset x
      partitioner, at 128 and 256 partitions. *)

val table1 : Format.formatter -> unit
(** Characterize all nine analogue datasets. *)

val partition_metrics : ?partitioners:Cutfit_partition.Partitioner.t list ->
  num_partitions:int -> Format.formatter -> unit
(** Table 2 ([num_partitions = 128]) / Table 3 (256). Defaults to the
    paper's six strategies. *)
