(** Reproductions of the paper's figures as text series.

    Figures 1 and 2 characterize the datasets (degree distributions and
    the out/in-degree-ratio CDF). Figures 3–6 are the headline result:
    for each algorithm, the scatter of execution time against the
    predictive partitioning metric, its Pearson correlation, and the
    best partitioner per dataset under each granularity. *)

val figure1 : Format.formatter -> unit
(** In-/out-degree distributions (log2-binned) per dataset. *)

val figure2 : Format.formatter -> unit
(** CDF of the out-degree/in-degree ratio per dataset, evaluated at
    fixed ratio points. *)

val correlations :
  Run.measurement list -> Run.algo -> config:string -> (string * float) list
(** Pearson correlation (as a fraction) of job time against each of the
    five metrics, over all completed (dataset, partitioner) cells of one
    configuration. log10 is applied to both axes, matching the log-log
    presentation of the paper's figures. *)

val best_partitioners :
  Run.measurement list -> Run.algo -> config:string -> (string * string * float) list
(** Per dataset: (display name, best partitioner, its time). *)

val figure_algo :
  Run.measurement list -> Run.algo -> metric:string -> Format.formatter -> unit
(** Full reproduction block for one algorithm: scatter rows, metric
    correlations per configuration, best partitioner per dataset, and
    the (i)-vs-(ii) granularity comparison. [metric] is the paper's
    predictive metric for that algorithm (CommCost, or Cut for TR). *)

val granularity_deltas :
  Run.measurement list -> Run.algo -> (string * float) list
(** Per dataset: percentage change of the best time from config (i) to
    config (ii); negative = fine grain faster. NaN when either side
    OOMed. *)
