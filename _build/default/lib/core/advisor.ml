module Graph = Cutfit_graph.Graph
module Strategy = Cutfit_partition.Strategy
module Partitioner = Cutfit_partition.Partitioner
module Metrics = Cutfit_partition.Metrics

type algorithm = Pagerank | Connected_components | Triangle_count | Shortest_paths

let algorithm_name = function
  | Pagerank -> "PR"
  | Connected_components -> "CC"
  | Triangle_count -> "TR"
  | Shortest_paths -> "SSSP"

let algorithm_of_string s =
  match String.uppercase_ascii s with
  | "PR" | "PAGERANK" -> Some Pagerank
  | "CC" -> Some Connected_components
  | "TR" | "TRIANGLES" -> Some Triangle_count
  | "SSSP" -> Some Shortest_paths
  | _ -> None

let predictive_metric = function
  | Pagerank | Connected_components | Shortest_paths -> "CommCost"
  | Triangle_count -> "Cut"

type size_class = Small | Large

let classify ~paper_scale_edges = if paper_scale_edges >= 5.0e7 then Large else Small

(* Section 4's observed winners, condensed to rules. *)
let heuristic algo ~size ~num_partitions =
  let fine = num_partitions > 128 in
  match (algo, size, fine) with
  | Pagerank, Large, _ -> Strategy.Two_d
  | Pagerank, Small, _ -> Strategy.Dc
  | Connected_components, Large, _ -> Strategy.Two_d
  | Connected_components, Small, false -> Strategy.One_d
  | Connected_components, Small, true -> Strategy.Two_d
  | Triangle_count, _, _ -> Strategy.Crvc
  | Shortest_paths, Large, _ -> Strategy.Two_d
  | Shortest_paths, Small, _ -> Strategy.One_d

type ranked = { strategy : Strategy.t; metrics : Metrics.t; score : float }

let measure ?(candidates = Strategy.all) algo ~num_partitions g =
  let metric = predictive_metric algo in
  let ranked =
    List.map
      (fun strategy ->
        let assignment = Partitioner.assign (Partitioner.Hash strategy) ~num_partitions g in
        let metrics = Metrics.compute g ~num_partitions assignment in
        { strategy; metrics; score = Metrics.metric_value metrics metric })
      candidates
  in
  List.sort
    (fun a b ->
      let c = compare a.score b.score in
      if c <> 0 then c else compare a.metrics.Metrics.balance b.metrics.Metrics.balance)
    ranked

let advise ?(measure_threshold_edges = 5_000_000) algo ~scale ~num_partitions g =
  if Graph.num_edges g <= measure_threshold_edges then
    match measure algo ~num_partitions g with
    | best :: _ -> best.strategy
    | [] -> heuristic algo ~size:Small ~num_partitions
  else begin
    let paper_scale_edges = scale *. float_of_int (Graph.num_edges g) in
    heuristic algo ~size:(classify ~paper_scale_edges) ~num_partitions
  end
