lib/core/advisor.mli: Cutfit_graph Cutfit_partition
