lib/core/pipeline.mli: Advisor Cutfit_bsp Cutfit_graph Cutfit_partition
