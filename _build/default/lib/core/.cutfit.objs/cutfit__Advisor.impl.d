lib/core/advisor.ml: Cutfit_graph Cutfit_partition List String
