lib/core/pipeline.ml: Advisor Cutfit_algo Cutfit_bsp Cutfit_graph Cutfit_partition Float List
