lib/core/cutfit.ml: Advisor Cutfit_algo Cutfit_bsp Cutfit_gen Cutfit_graph Cutfit_partition Cutfit_prng Cutfit_stats Pipeline
