lib/bsp/cluster.ml: String
