lib/bsp/pgraph.mli: Cutfit_graph Cutfit_partition
