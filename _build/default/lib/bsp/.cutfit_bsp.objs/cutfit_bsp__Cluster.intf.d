lib/bsp/cluster.mli:
