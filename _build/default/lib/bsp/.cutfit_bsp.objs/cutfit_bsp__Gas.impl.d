lib/bsp/gas.ml: Array Bytes Cluster Cost_model Cutfit_graph Float List Pgraph Trace
