lib/bsp/trace.ml: Format List Printf
