lib/bsp/pregel.mli: Cluster Cost_model Pgraph Trace
