lib/bsp/trace.mli: Format
