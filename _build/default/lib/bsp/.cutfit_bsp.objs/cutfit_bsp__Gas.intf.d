lib/bsp/gas.mli: Cluster Cost_model Pgraph Trace
