lib/bsp/pgraph.ml: Array Cutfit_graph Cutfit_partition
