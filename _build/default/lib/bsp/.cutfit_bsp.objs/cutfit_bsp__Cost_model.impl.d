lib/bsp/cost_model.ml: Array Cutfit_prng Float Int64
