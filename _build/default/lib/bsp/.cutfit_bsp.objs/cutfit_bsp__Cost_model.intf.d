lib/bsp/cost_model.mli:
