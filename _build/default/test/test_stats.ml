module Summary = Cutfit_stats.Summary
module Correlation = Cutfit_stats.Correlation
module Cdf = Cutfit_stats.Cdf
module Histogram = Cutfit_stats.Histogram
module Linreg = Cutfit_stats.Linreg

let checkb = Alcotest.(check bool)
let checkf msg expected actual = Alcotest.(check (float 1e-9)) msg expected actual

let test_mean_stdev () =
  checkf "mean" 2.0 (Summary.mean [| 1.0; 2.0; 3.0 |]);
  checkf "mean empty" 0.0 (Summary.mean [||]);
  checkf "variance" (2.0 /. 3.0) (Summary.variance [| 1.0; 2.0; 3.0 |]);
  checkf "stdev of constant" 0.0 (Summary.stdev [| 5.0; 5.0; 5.0 |])

let test_quantiles () =
  let xs = [| 4.0; 1.0; 3.0; 2.0 |] in
  checkf "median interpolated" 2.5 (Summary.median xs);
  checkf "q0" 1.0 (Summary.quantile xs 0.0);
  checkf "q1" 4.0 (Summary.quantile xs 1.0);
  Alcotest.check_raises "empty" (Invalid_argument "Summary.quantile: empty sample") (fun () ->
      ignore (Summary.quantile [||] 0.5))

let test_describe () =
  let d = Summary.describe [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check int) "n" 4 d.Summary.n;
  checkf "min" 1.0 d.Summary.min;
  checkf "max" 4.0 d.Summary.max

let test_pearson_known () =
  checkf "perfect" 1.0 (Correlation.pearson [| 1.0; 2.0; 3.0 |] [| 10.0; 20.0; 30.0 |]);
  checkf "perfect negative" (-1.0) (Correlation.pearson [| 1.0; 2.0; 3.0 |] [| 3.0; 2.0; 1.0 |]);
  checkf "constant gives 0" 0.0 (Correlation.pearson [| 1.0; 2.0; 3.0 |] [| 7.0; 7.0; 7.0 |])

let test_pearson_errors () =
  Alcotest.check_raises "mismatch" (Invalid_argument "Correlation: length mismatch") (fun () ->
      ignore (Correlation.pearson [| 1.0 |] [| 1.0; 2.0 |]));
  Alcotest.check_raises "short" (Invalid_argument "Correlation: need at least 2 points") (fun () ->
      ignore (Correlation.pearson [| 1.0 |] [| 1.0 |]))

let test_spearman_monotone () =
  (* Any strictly monotone transform has rank correlation 1. *)
  let xs = [| 1.0; 2.0; 5.0; 9.0; 11.0 |] in
  let ys = Array.map (fun x -> exp x) xs in
  checkf "monotone" 1.0 (Correlation.spearman xs ys)

let test_spearman_ties () =
  let c = Correlation.spearman [| 1.0; 1.0; 2.0 |] [| 1.0; 1.0; 2.0 |] in
  checkf "ties handled" 1.0 c

let test_cdf () =
  let c = Cdf.of_samples [| 1.0; 2.0; 2.0; 4.0 |] in
  checkf "below support" 0.0 (Cdf.eval c 0.5);
  checkf "at 2" 0.75 (Cdf.eval c 2.0);
  checkf "above" 1.0 (Cdf.eval c 10.0);
  checkf "quantile 0.5" 2.0 (Cdf.quantile c 0.5);
  let lo, hi = Cdf.support c in
  checkf "lo" 1.0 lo;
  checkf "hi" 4.0 hi

let test_cdf_curve () =
  let c = Cdf.of_samples [| 0.0; 10.0 |] in
  let curve = Cdf.curve ~points:10 c in
  Alcotest.(check int) "11 points" 11 (Array.length curve);
  checkb "monotone" true
    (Array.for_all2 (fun (_, a) (_, b) -> a <= b)
       (Array.sub curve 0 (Array.length curve - 1))
       (Array.sub curve 1 (Array.length curve - 1)))

let test_log2_bins () =
  let bins = Histogram.log2_bins [| 0; 1; 1; 2; 3; 4; 8; 9 |] in
  let find lo = List.find (fun b -> b.Histogram.lo = lo) bins in
  Alcotest.(check int) "zeros" 1 (find 0).Histogram.count;
  Alcotest.(check int) "[1,2)" 2 (find 1).Histogram.count;
  Alcotest.(check int) "[2,4)" 2 (find 2).Histogram.count;
  Alcotest.(check int) "[4,8)" 1 (find 4).Histogram.count;
  Alcotest.(check int) "[8,16)" 2 (find 8).Histogram.count;
  let total = List.fold_left (fun a b -> a + b.Histogram.count) 0 bins in
  Alcotest.(check int) "total preserved" 8 total

let test_linear_bins () =
  let bins = Histogram.linear_bins ~bins:2 [| 0.0; 0.1; 0.9; 1.0 |] in
  Alcotest.(check int) "2 bins" 2 (List.length bins);
  let counts = List.map (fun (_, _, c) -> c) bins in
  Alcotest.(check (list int)) "2+2" [ 2; 2 ] counts

let test_linreg () =
  let fit = Linreg.fit [| 0.0; 1.0; 2.0 |] [| 1.0; 3.0; 5.0 |] in
  checkf "slope" 2.0 fit.Linreg.slope;
  checkf "intercept" 1.0 fit.Linreg.intercept;
  checkf "r2" 1.0 fit.Linreg.r2;
  checkf "predict" 9.0 (Linreg.predict fit 4.0)

let test_linreg_constant_x () =
  let fit = Linreg.fit [| 2.0; 2.0 |] [| 1.0; 3.0 |] in
  checkf "slope 0" 0.0 fit.Linreg.slope;
  checkf "intercept mean" 2.0 fit.Linreg.intercept

let float_array_gen =
  QCheck2.Gen.(array_size (int_range 2 50) (float_range (-1000.0) 1000.0))

let prop_pearson_bounded =
  Test_util.qtest "pearson in [-1,1]"
    ~print:(fun (a, _) -> Printf.sprintf "n=%d" (Array.length a))
    QCheck2.Gen.(
      float_array_gen >>= fun xs ->
      array_repeat (Array.length xs) (float_range (-1000.0) 1000.0) >|= fun ys -> (xs, ys))
    (fun (xs, ys) ->
      let c = Correlation.pearson xs ys in
      c >= -1.0 -. 1e-9 && c <= 1.0 +. 1e-9)

let prop_pearson_self =
  Test_util.qtest "pearson(x,x) = 1 unless constant"
    ~print:(fun a -> Printf.sprintf "n=%d" (Array.length a))
    float_array_gen
    (fun xs ->
      let constant = Array.for_all (fun x -> x = xs.(0)) xs in
      let c = Correlation.pearson xs xs in
      if constant then c = 0.0 else abs_float (c -. 1.0) < 1e-9)

let prop_cdf_monotone =
  Test_util.qtest "cdf monotone and ends at 1"
    ~print:(fun a -> Printf.sprintf "n=%d" (Array.length a))
    QCheck2.Gen.(array_size (int_range 1 50) (float_range (-100.0) 100.0))
    (fun xs ->
      let c = Cdf.of_samples xs in
      let _, hi = Cdf.support c in
      abs_float (Cdf.eval c hi -. 1.0) < 1e-9
      && Cdf.eval c (hi -. 1.0) <= Cdf.eval c hi +. 1e-9)

let suite =
  [
    Alcotest.test_case "mean/stdev" `Quick test_mean_stdev;
    Alcotest.test_case "quantiles" `Quick test_quantiles;
    Alcotest.test_case "describe" `Quick test_describe;
    Alcotest.test_case "pearson known" `Quick test_pearson_known;
    Alcotest.test_case "pearson errors" `Quick test_pearson_errors;
    Alcotest.test_case "spearman monotone" `Quick test_spearman_monotone;
    Alcotest.test_case "spearman ties" `Quick test_spearman_ties;
    Alcotest.test_case "cdf" `Quick test_cdf;
    Alcotest.test_case "cdf curve" `Quick test_cdf_curve;
    Alcotest.test_case "log2 bins" `Quick test_log2_bins;
    Alcotest.test_case "linear bins" `Quick test_linear_bins;
    Alcotest.test_case "linreg" `Quick test_linreg;
    Alcotest.test_case "linreg constant x" `Quick test_linreg_constant_x;
    prop_pearson_bounded;
    prop_pearson_self;
    prop_cdf_monotone;
  ]

(* --- ascii plots --- *)

module Asciiplot = Cutfit_stats.Asciiplot

let test_scatter_renders () =
  let s =
    Asciiplot.scatter ~width:30 ~height:8
      [ { Asciiplot.label = "a"; glyph = 'a'; points = [ (1.0, 1.0); (2.0, 4.0); (3.0, 9.0) ] } ]
  in
  checkb "contains glyph" true (String.contains s 'a');
  checkb "contains axis" true (String.contains s '+');
  checkb "multi-line" true (List.length (String.split_on_char '\n' s) > 8)

let test_scatter_log_drops_nonpositive () =
  let s =
    Asciiplot.scatter ~log_x:true ~log_y:true
      [ { Asciiplot.label = "bad"; glyph = 'b'; points = [ (0.0, 1.0); (-1.0, 2.0) ] } ]
  in
  checkb "no plottable points" true
    (String.length s >= 21 && String.sub s 0 21 = "(no plottable points)")

let test_scatter_overlap_star () =
  let s =
    Asciiplot.scatter ~width:10 ~height:4
      [
        { Asciiplot.label = "a"; glyph = 'a'; points = [ (1.0, 1.0); (2.0, 2.0) ] };
        { Asciiplot.label = "b"; glyph = 'b'; points = [ (1.0, 1.0) ] };
      ]
  in
  checkb "overlap marked" true (String.contains s '*')

let test_scatter_single_point () =
  let s =
    Asciiplot.scatter [ { Asciiplot.label = "p"; glyph = 'p'; points = [ (5.0, 5.0) ] } ]
  in
  checkb "renders" true (String.contains s 'p')

let suite =
  suite
  @ [
      Alcotest.test_case "scatter renders" `Quick test_scatter_renders;
      Alcotest.test_case "scatter log drops nonpositive" `Quick test_scatter_log_drops_nonpositive;
      Alcotest.test_case "scatter overlap star" `Quick test_scatter_overlap_star;
      Alcotest.test_case "scatter single point" `Quick test_scatter_single_point;
    ]

(* --- power-law fitting --- *)

module Powerlaw = Cutfit_stats.Powerlaw

let test_powerlaw_recovers_zipf_exponent () =
  (* Sample a Zipf(s=2.0) tail and check the MLE lands near 2. *)
  let rng = Cutfit_prng.Xoshiro.create 77L in
  let values = Array.init 20_000 (fun _ -> Cutfit_prng.Dist.zipf rng ~n:100_000 ~s:2.0) in
  match Powerlaw.fit_alpha ~x_min:5 values with
  | Some f -> checkb "alpha near 2" true (abs_float (f.Powerlaw.alpha -. 2.0) < 0.25)
  | None -> Alcotest.fail "expected a fit"

let test_powerlaw_too_few_samples () =
  checkb "none on tiny sample" true (Powerlaw.fit_alpha [| 5; 6; 7 |] = None)

let test_heavy_tail_classifier () =
  let rng = Cutfit_prng.Xoshiro.create 78L in
  let zipf = Array.init 5_000 (fun _ -> Cutfit_prng.Dist.zipf rng ~n:100_000 ~s:2.1) in
  checkb "zipf heavy" true (Powerlaw.is_heavy_tailed zipf);
  (* A road-like degree sample: everything is 2, 3 or 4. *)
  let road = Array.init 5_000 (fun i -> 2 + (i mod 3)) in
  checkb "road not heavy" false (Powerlaw.is_heavy_tailed road)

let suite =
  suite
  @ [
      Alcotest.test_case "powerlaw recovers zipf" `Quick test_powerlaw_recovers_zipf_exponent;
      Alcotest.test_case "powerlaw small sample" `Quick test_powerlaw_too_few_samples;
      Alcotest.test_case "heavy tail classifier" `Quick test_heavy_tail_classifier;
    ]
