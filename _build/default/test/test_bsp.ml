module Graph = Cutfit_graph.Graph
module Strategy = Cutfit_partition.Strategy
module Partitioner = Cutfit_partition.Partitioner
module Metrics = Cutfit_partition.Metrics
module Cluster = Cutfit_bsp.Cluster
module Cost_model = Cutfit_bsp.Cost_model
module Pgraph = Cutfit_bsp.Pgraph
module Pregel = Cutfit_bsp.Pregel
module Trace = Cutfit_bsp.Trace

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let g = Test_util.random_graph ~seed:55L ~n:200 ~m:1500
let cluster = Test_util.tiny_cluster ()
let np = cluster.Cluster.num_partitions

let pg_of strategy =
  let a = Partitioner.assign (Partitioner.Hash strategy) ~num_partitions:np g in
  Pgraph.build g ~num_partitions:np a

let pg = pg_of Strategy.Rvc

(* --- Cluster --- *)

let test_cluster_configs () =
  checki "config i partitions" 128 Cluster.config_i.Cluster.num_partitions;
  checki "config ii partitions" 256 Cluster.config_ii.Cluster.num_partitions;
  checkb "iii faster network" true
    (Cluster.network_bytes_per_s Cluster.config_iii > Cluster.network_bytes_per_s Cluster.config_ii);
  checkb "iv faster storage" true
    (Cluster.storage_bytes_per_s Cluster.config_iv > Cluster.storage_bytes_per_s Cluster.config_iii);
  checkb "find by roman" true (Cluster.find "(iii)" == Cluster.config_iii);
  checkb "find by count" true (Cluster.find "128" == Cluster.config_i);
  Alcotest.check_raises "unknown" Not_found (fun () -> ignore (Cluster.find "x"))

let test_executor_round_robin () =
  checki "p0 -> e0" 0 (Cluster.executor_of_partition Cluster.config_i 0);
  checki "p5 -> e1" 1 (Cluster.executor_of_partition Cluster.config_i 5);
  checki "total cores" 128 (Cluster.total_cores Cluster.config_i)

(* --- Cost model --- *)

let test_makespan () =
  let near a b = abs_float (a -. b) < 1e-12 in
  checkb "bounded by max" true (near (Cost_model.makespan ~work:[| 10.0; 1.0 |] ~cores:4) 10.0);
  checkb "bounded by sum/cores" true
    (near (Cost_model.makespan ~work:[| 1.0; 1.0; 1.0; 1.0 |] ~cores:2) 2.0);
  Alcotest.check_raises "zero cores" (Invalid_argument "Cost_model.makespan: cores <= 0")
    (fun () -> ignore (Cost_model.makespan ~work:[| 1.0 |] ~cores:0))

(* --- Pgraph --- *)

let test_pgraph_edge_partition_totals () =
  let total = ref 0 in
  for p = 0 to np - 1 do
    total := !total + Pgraph.num_edges_of_partition pg p
  done;
  checki "all edges placed" (Graph.num_edges g) !total

let test_pgraph_edges_match_assignment () =
  let a = Partitioner.assign (Partitioner.Hash Strategy.Rvc) ~num_partitions:np g in
  let ok = ref true in
  for p = 0 to np - 1 do
    Array.iter (fun e -> if a.(e) <> p then ok := false) (Pgraph.edges_of_partition pg p)
  done;
  checkb "assignment respected" true !ok

let test_pgraph_routing_consistency () =
  (* A vertex's replica set must be exactly the partitions holding its
     edges. *)
  let n = Graph.num_vertices g in
  let expected = Array.make n [] in
  for p = 0 to np - 1 do
    Pgraph.iter_partition_edges pg p (fun ~edge:_ ~src ~dst ->
        let add v = if not (List.mem p expected.(v)) then expected.(v) <- p :: expected.(v) in
        add src;
        add dst)
  done;
  for v = 0 to n - 1 do
    let routed = Array.to_list (Pgraph.replicas pg v) in
    let want = List.sort compare expected.(v) in
    Alcotest.(check (list int)) "replica set" want routed
  done

let test_pgraph_metrics_agree () =
  let m = Pgraph.metrics pg in
  checki "total replicas = comm + non_cut"
    (m.Metrics.comm_cost + m.Metrics.non_cut)
    (Pgraph.total_replicas pg);
  let n = Graph.num_vertices g in
  let from_routing = ref 0 in
  for v = 0 to n - 1 do
    from_routing := !from_routing + Pgraph.replica_count pg v
  done;
  checki "routing total" (Pgraph.total_replicas pg) !from_routing

let test_pgraph_masters_in_range () =
  for v = 0 to Graph.num_vertices g - 1 do
    let m = Pgraph.master pg v in
    checkb "master in range" true (m >= 0 && m < np)
  done

let test_pgraph_rejects_bad_assignment () =
  Alcotest.check_raises "length" (Invalid_argument "Pgraph.build: assignment length mismatch")
    (fun () -> ignore (Pgraph.build g ~num_partitions:np [| 0 |]));
  let bad = Array.make (Graph.num_edges g) np in
  Alcotest.check_raises "range" (Invalid_argument "Pgraph.build: partition out of range")
    (fun () -> ignore (Pgraph.build g ~num_partitions:np bad))

(* --- Pregel --- *)

(* Minimal label-propagation program used to exercise the engine. *)
let min_label_program =
  {
    Pregel.init = (fun v -> v);
    initial_msg = max_int;
    vprog = (fun _ l m -> min l m);
    send =
      (fun ~edge:_ ~src:_ ~dst:_ ~src_attr ~dst_attr ~emit ->
        if src_attr < dst_attr then emit Pregel.To_dst src_attr
        else if dst_attr < src_attr then emit Pregel.To_src dst_attr);
    merge = min;
    state_bytes = 8;
    msg_bytes = 8;
  }

let test_pregel_converges_to_components () =
  let r = Pregel.run ~cluster pg min_label_program in
  let expected, _ = Cutfit_graph.Components.weak g in
  Alcotest.(check (array int)) "labels" expected r.Pregel.attrs;
  checkb "completed" true (r.Pregel.trace.Trace.outcome = Trace.Completed)

let test_pregel_max_supersteps () =
  let r = Pregel.run ~max_supersteps:1 ~cluster pg min_label_program in
  checkb "capped" true (r.Pregel.trace.Trace.outcome = Trace.Max_supersteps)

let test_pregel_trace_sanity () =
  let r = Pregel.run ~cluster pg min_label_program in
  let t = r.Pregel.trace in
  checkb "positive total" true (t.Trace.total_s > 0.0);
  checkb "load positive" true (t.Trace.load_s > 0.0);
  List.iter
    (fun s ->
      checkb "nonneg compute" true (s.Trace.compute_s >= 0.0);
      checkb "nonneg network" true (s.Trace.network_s >= 0.0);
      checkb "time >= overhead" true (s.Trace.time_s >= s.Trace.overhead_s))
    t.Trace.supersteps;
  (* First trace entry is the build stage. *)
  (match t.Trace.supersteps with
  | first :: _ -> checki "build stage" (-1) first.Trace.step
  | [] -> Alcotest.fail "no supersteps");
  checkb "summary mentions supersteps" true
    (String.length (Format.asprintf "%a" Trace.pp_summary t) > 0)

let test_pregel_scale_scales_time () =
  let t1 = (Pregel.run ~cluster pg min_label_program).Pregel.trace in
  let t2 = (Pregel.run ~scale:10.0 ~cluster pg min_label_program).Pregel.trace in
  checkb "bigger scale, bigger time" true (t2.Trace.total_s > t1.Trace.total_s)

let test_pregel_driver_oom () =
  let oom_cluster = { cluster with Cluster.driver_memory_bytes = 1.0 } in
  let r = Pregel.run ~cluster:oom_cluster pg min_label_program in
  checkb "OOM" true (r.Pregel.trace.Trace.outcome = Trace.Out_of_memory);
  checkb "not completed" false (Trace.completed r.Pregel.trace)

let test_pregel_executor_oom () =
  let oom_cluster = { cluster with Cluster.executor_memory_bytes = 1.0 } in
  let r = Pregel.run ~cluster:oom_cluster pg min_label_program in
  checkb "OOM" true (r.Pregel.trace.Trace.outcome = Trace.Out_of_memory)

let test_pregel_partition_count_mismatch () =
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Pregel.run: cluster and partitioned graph disagree on partition count")
    (fun () ->
      ignore (Pregel.run ~cluster:(Test_util.tiny_cluster ~num_partitions:4 ()) pg min_label_program))

let test_pregel_message_counts_positive () =
  let r = Pregel.run ~cluster pg min_label_program in
  checkb "messages flowed" true (Trace.total_messages r.Pregel.trace > 0)

let test_network_faster_cluster_not_slower () =
  (* Same partitioning on a 40x network must not be slower. *)
  let fast = { cluster with Cluster.network_gbps = 40.0 } in
  let t_slow = (Pregel.run ~scale:1000.0 ~cluster pg min_label_program).Pregel.trace in
  let t_fast = (Pregel.run ~scale:1000.0 ~cluster:fast pg min_label_program).Pregel.trace in
  checkb "not slower" true (t_fast.Trace.total_s <= t_slow.Trace.total_s +. 1e-9)

let prop_pregel_cc_matches_reference =
  Test_util.qtest ~count:30 "pregel min-label = union-find on random graphs"
    ~print:Test_util.print_small_graph Test_util.small_graph_gen (fun sg ->
      let g = Test_util.build sg in
      if Graph.num_edges g = 0 then true
      else begin
        let cluster = Test_util.tiny_cluster ~num_partitions:4 () in
        let a = Partitioner.assign (Partitioner.Hash Strategy.Crvc) ~num_partitions:4 g in
        let pg = Pgraph.build g ~num_partitions:4 a in
        let r = Pregel.run ~cluster pg min_label_program in
        r.Pregel.attrs = fst (Cutfit_graph.Components.weak g)
      end)

let suite =
  [
    Alcotest.test_case "cluster configs" `Quick test_cluster_configs;
    Alcotest.test_case "executor round robin" `Quick test_executor_round_robin;
    Alcotest.test_case "makespan" `Quick test_makespan;
    Alcotest.test_case "pgraph edge totals" `Quick test_pgraph_edge_partition_totals;
    Alcotest.test_case "pgraph edges match assignment" `Quick test_pgraph_edges_match_assignment;
    Alcotest.test_case "pgraph routing consistency" `Quick test_pgraph_routing_consistency;
    Alcotest.test_case "pgraph metrics agree" `Quick test_pgraph_metrics_agree;
    Alcotest.test_case "pgraph masters in range" `Quick test_pgraph_masters_in_range;
    Alcotest.test_case "pgraph rejects bad assignment" `Quick test_pgraph_rejects_bad_assignment;
    Alcotest.test_case "pregel converges to components" `Quick test_pregel_converges_to_components;
    Alcotest.test_case "pregel max supersteps" `Quick test_pregel_max_supersteps;
    Alcotest.test_case "pregel trace sanity" `Quick test_pregel_trace_sanity;
    Alcotest.test_case "pregel scale" `Quick test_pregel_scale_scales_time;
    Alcotest.test_case "pregel driver OOM" `Quick test_pregel_driver_oom;
    Alcotest.test_case "pregel executor OOM" `Quick test_pregel_executor_oom;
    Alcotest.test_case "pregel partition mismatch" `Quick test_pregel_partition_count_mismatch;
    Alcotest.test_case "pregel messages flowed" `Quick test_pregel_message_counts_positive;
    Alcotest.test_case "faster network not slower" `Quick test_network_faster_cluster_not_slower;
    prop_pregel_cc_matches_reference;
  ]

(* --- checkpointing --- *)

let test_checkpoint_prevents_driver_oom () =
  (* A driver small enough to OOM after ~12 supersteps survives when
     lineage is truncated every 5. *)
  let n = 100 in
  let path =
    Test_util.graph_of_edges ~n
      (List.concat_map (fun i -> [ (i, i + 1); (i + 1, i) ]) (List.init (n - 1) Fun.id))
  in
  let a = Partitioner.assign (Partitioner.Hash Strategy.Rvc) ~num_partitions:np path in
  let pg = Pgraph.build path ~num_partitions:np a in
  let meta = Cost_model.default.Cost_model.driver_meta_per_task_bytes in
  let small = { cluster with Cluster.driver_memory_bytes = 12.0 *. 8.0 *. meta } in
  let without = Pregel.run ~cluster:small pg min_label_program in
  checkb "OOMs without checkpointing" true
    (without.Pregel.trace.Trace.outcome = Trace.Out_of_memory);
  let with_ckpt = Pregel.run ~checkpoint_every:5 ~cluster:small pg min_label_program in
  checkb "completes with checkpointing" true
    (with_ckpt.Pregel.trace.Trace.outcome = Trace.Completed);
  checkb "checkpoints taken" true (with_ckpt.Pregel.trace.Trace.checkpoints > 0);
  checkb "checkpoints cost time" true (with_ckpt.Pregel.trace.Trace.checkpoint_s > 0.0);
  Alcotest.(check (array int)) "still correct"
    (fst (Cutfit_graph.Components.weak path))
    with_ckpt.Pregel.attrs

let test_checkpoint_costs_time () =
  let plain = Pregel.run ~cluster pg min_label_program in
  let ckpt = Pregel.run ~checkpoint_every:1 ~cluster pg min_label_program in
  checkb "same answer" true (plain.Pregel.attrs = ckpt.Pregel.attrs);
  checkb "checkpointing is not free" true
    (ckpt.Pregel.trace.Trace.total_s > plain.Pregel.trace.Trace.total_s)

let suite =
  suite
  @ [
      Alcotest.test_case "checkpoint prevents driver OOM" `Quick test_checkpoint_prevents_driver_oom;
      Alcotest.test_case "checkpoint costs time" `Quick test_checkpoint_costs_time;
    ]

(* --- GAS engine --- *)

module Gas = Cutfit_bsp.Gas

let gas_min_label =
  (* Data-driven min-label propagation: vertices deactivate after
     applying; scatter signals reactivate the neighbourhood. *)
  {
    Gas.init = (fun v -> v);
    direction = Gas.Gather_both;
    gather =
      (fun ~src ~dst ~src_attr ~dst_attr ~target ->
        if target = dst then Some src_attr else if target = src then Some dst_attr else None);
    sum = min;
    apply =
      (fun _ label total ->
        match total with Some t -> (min label t, false) | None -> (label, false));
    state_bytes = 8;
    gather_bytes = 8;
  }

let test_gas_components () =
  let r = Gas.run ~cluster pg gas_min_label in
  Alcotest.(check (array int)) "labels" (fst (Cutfit_graph.Components.weak g)) r.Gas.attrs;
  checkb "completed" true (r.Gas.trace.Trace.outcome = Trace.Completed)

let test_gas_pagerank_matches_pregel () =
  let pregel = Cutfit_algo.Pagerank.run ~iterations:8 ~cluster pg in
  let gas = Cutfit_algo.Pagerank.run_gas ~iterations:8 ~cluster pg in
  Array.iteri
    (fun v rank ->
      checkb "rank close" true
        (abs_float (rank -. pregel.Cutfit_algo.Pagerank.ranks.(v)) < 1e-9))
    gas.Cutfit_algo.Pagerank.ranks

let test_gas_trace_comparable () =
  let r = Gas.run ~cluster pg gas_min_label in
  checkb "positive time" true (r.Gas.trace.Trace.total_s > 0.0);
  checkb "messages flowed" true (Trace.total_messages r.Gas.trace > 0)

let test_gas_partition_mismatch () =
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Gas.run: cluster and partitioned graph disagree on partition count")
    (fun () ->
      ignore (Gas.run ~cluster:(Test_util.tiny_cluster ~num_partitions:4 ()) pg gas_min_label))

let test_gas_iteration_cap () =
  let path = Test_util.graph_of_edges ~n:30 (List.init 29 (fun i -> (i, i + 1))) in
  let a = Partitioner.assign (Partitioner.Hash Strategy.Rvc) ~num_partitions:np path in
  let pg = Pgraph.build path ~num_partitions:np a in
  let r = Gas.run ~max_iterations:2 ~cluster pg gas_min_label in
  checkb "capped" true (r.Gas.trace.Trace.outcome = Trace.Max_supersteps)

let suite =
  suite
  @ [
      Alcotest.test_case "GAS components" `Quick test_gas_components;
      Alcotest.test_case "GAS pagerank = Pregel pagerank" `Quick test_gas_pagerank_matches_pregel;
      Alcotest.test_case "GAS trace comparable" `Quick test_gas_trace_comparable;
      Alcotest.test_case "GAS partition mismatch" `Quick test_gas_partition_mismatch;
      Alcotest.test_case "GAS iteration cap" `Quick test_gas_iteration_cap;
    ]
