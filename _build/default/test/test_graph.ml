module Graph = Cutfit_graph.Graph
module Edge_list = Cutfit_graph.Edge_list
module Union_find = Cutfit_graph.Union_find
module Components = Cutfit_graph.Components
module Bfs = Cutfit_graph.Bfs
module Triangles = Cutfit_graph.Triangles
module Diameter = Cutfit_graph.Diameter
module Graph_io = Cutfit_graph.Graph_io
module Characterize = Cutfit_graph.Characterize

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* --- Edge_list --- *)

let test_edge_list_basic () =
  let el = Edge_list.create () in
  Edge_list.add el ~src:1 ~dst:2;
  Edge_list.add el ~src:3 ~dst:4;
  checki "length" 2 (Edge_list.length el);
  checki "src 0" 1 (Edge_list.src el 0);
  checki "dst 1" 4 (Edge_list.dst el 1)

let test_edge_list_growth () =
  let el = Edge_list.create ~capacity:1 () in
  for i = 0 to 999 do
    Edge_list.add el ~src:i ~dst:(i + 1)
  done;
  checki "grew" 1000 (Edge_list.length el);
  checki "last src" 999 (Edge_list.src el 999)

let test_edge_list_dedup () =
  let el = Edge_list.of_list [ (1, 2); (1, 2); (2, 1); (3, 3); (0, 1) ] in
  let d = Edge_list.dedup el in
  checki "dup and loop removed" 3 (Edge_list.length d);
  let d2 = Edge_list.dedup ~drop_self_loops:false (Edge_list.of_list [ (3, 3); (3, 3) ]) in
  checki "loop kept when asked" 1 (Edge_list.length d2)

let test_edge_list_symmetrize () =
  let s = Edge_list.symmetrize (Edge_list.of_list [ (0, 1); (1, 2); (1, 0) ]) in
  checki "4 directed edges" 4 (Edge_list.length s)

let test_edge_list_bounds () =
  let el = Edge_list.of_list [ (0, 1) ] in
  Alcotest.check_raises "src OOB" (Invalid_argument "Edge_list.src: index out of bounds")
    (fun () -> ignore (Edge_list.src el 1))

(* --- Graph --- *)

let diamond = Test_util.graph_of_edges ~n:4 [ (0, 1); (0, 2); (1, 3); (2, 3) ]

let test_graph_degrees () =
  checki "out 0" 2 (Graph.out_degree diamond 0);
  checki "in 3" 2 (Graph.in_degree diamond 3);
  checki "in 0" 0 (Graph.in_degree diamond 0);
  checki "edges" 4 (Graph.num_edges diamond);
  checki "vertices" 4 (Graph.num_vertices diamond)

let test_graph_neighbors_sorted () =
  Alcotest.(check (array int)) "out 0" [| 1; 2 |] (Graph.out_neighbors diamond 0);
  Alcotest.(check (array int)) "in 3" [| 1; 2 |] (Graph.in_neighbors diamond 3)

let test_graph_has_edge () =
  checkb "0->1" true (Graph.has_edge diamond ~src:0 ~dst:1);
  checkb "1->0" false (Graph.has_edge diamond ~src:1 ~dst:0);
  checkb "0->3" false (Graph.has_edge diamond ~src:0 ~dst:3)

let test_graph_rejects_bad_input () =
  Alcotest.check_raises "dst out of range" (Invalid_argument "Graph.create: dst out of range")
    (fun () -> ignore (Graph.create ~n:2 ~src:[| 0 |] ~dst:[| 5 |]));
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Graph.create: src/dst length mismatch") (fun () ->
      ignore (Graph.create ~n:2 ~src:[| 0; 1 |] ~dst:[| 1 |]))

let test_graph_symmetrize () =
  let s = Graph.symmetrize diamond in
  checki "8 directed edges" 8 (Graph.num_edges s);
  checkb "symmetric" true (Graph.is_symmetric s);
  checkb "original not symmetric" false (Graph.is_symmetric diamond)

let prop_symmetrize_symmetric =
  Test_util.qtest "symmetrize yields symmetric graph" ~print:Test_util.print_small_graph
    Test_util.small_graph_gen (fun g ->
      Graph.is_symmetric (Graph.symmetrize (Test_util.build g)))

let prop_degree_sums =
  Test_util.qtest "sum out-degree = sum in-degree = m" ~print:Test_util.print_small_graph
    Test_util.small_graph_gen (fun sg ->
      let g = Test_util.build sg in
      let n = Graph.num_vertices g in
      let total f = Array.fold_left ( + ) 0 (Array.init n f) in
      total (Graph.out_degree g) = Graph.num_edges g
      && total (Graph.in_degree g) = Graph.num_edges g)

(* --- Union_find --- *)

let test_union_find () =
  let uf = Union_find.create 6 in
  checki "initial sets" 6 (Union_find.count uf);
  checkb "union 0 1" true (Union_find.union uf 0 1);
  checkb "union 1 0 again" false (Union_find.union uf 1 0);
  ignore (Union_find.union uf 2 3);
  ignore (Union_find.union uf 0 3);
  checki "sets" 3 (Union_find.count uf);
  checkb "same 1 2" true (Union_find.same uf 1 2);
  checkb "not same 1 4" false (Union_find.same uf 1 4);
  checki "size of 0's set" 4 (Union_find.size_of uf 0)

(* --- Components --- *)

let test_weak_components () =
  let g = Test_util.graph_of_edges ~n:7 [ (0, 1); (1, 2); (3, 4); (5, 6) ] in
  let labels, count = Components.weak g in
  checki "3 components" 3 count;
  checki "label of 2" 0 labels.(2);
  checki "label of 4" 3 labels.(4);
  checki "label of 6" 5 labels.(6)

let test_strong_components () =
  (* 0->1->2->0 is a cycle; 3 hangs off it. *)
  let g = Test_util.graph_of_edges ~n:4 [ (0, 1); (1, 2); (2, 0); (2, 3) ] in
  let labels, count = Components.strong g in
  checki "2 SCCs" 2 count;
  checkb "cycle same label" true (labels.(0) = labels.(1) && labels.(1) = labels.(2));
  checkb "3 alone" true (labels.(3) <> labels.(0))

let test_strong_on_dag () =
  let g = Test_util.graph_of_edges ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  checki "each vertex its own SCC" 4 (Components.strong_count g)

let test_largest_weak () =
  let g = Test_util.graph_of_edges ~n:6 [ (0, 1); (1, 2); (3, 4) ] in
  checki "largest is 3" 3 (Components.largest_weak_size g)

let test_strong_deep_chain_no_overflow () =
  (* A 100k-vertex path would blow a recursive Tarjan. *)
  let n = 100_000 in
  let el = Edge_list.create ~capacity:n () in
  for i = 0 to n - 2 do
    Edge_list.add el ~src:i ~dst:(i + 1)
  done;
  let g = Graph.of_edge_list ~n el in
  checki "n SCCs" n (Components.strong_count g)

let prop_weak_labels_consistent =
  Test_util.qtest "weak labels constant along edges" ~print:Test_util.print_small_graph
    Test_util.small_graph_gen (fun sg ->
      let g = Test_util.build sg in
      let labels, _ = Components.weak g in
      let ok = ref true in
      Graph.iter_edges g (fun ~src ~dst -> if labels.(src) <> labels.(dst) then ok := false);
      !ok)

(* --- BFS --- *)

let test_bfs_distances () =
  let g = Test_util.graph_of_edges ~n:5 [ (0, 1); (1, 2); (2, 3) ] in
  let d = Bfs.distances g 0 in
  Alcotest.(check (array int)) "distances" [| 0; 1; 2; 3; max_int |] d

let test_bfs_undirected () =
  let g = Test_util.graph_of_edges ~n:3 [ (1, 0); (2, 1) ] in
  let d = Bfs.distances ~undirected:true g 0 in
  Alcotest.(check (array int)) "undirected distances" [| 0; 1; 2 |] d

let test_bfs_multi_source () =
  let g = Test_util.graph_of_edges ~n:5 [ (0, 1); (1, 2); (4, 3); (3, 2) ] in
  let d = Bfs.multi_source g [ 0; 4 ] in
  checki "2 closer to 0 or 4" 2 d.(2);
  checki "source 4" 0 d.(4)

let test_eccentricity () =
  let g = Test_util.graph_of_edges ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  checki "ecc of 0" 3 (Bfs.eccentricity g 0);
  checki "ecc of 3 (no out)" 0 (Bfs.eccentricity g 3)

(* --- Triangles --- *)

let k4 = Test_util.graph_of_edges ~n:4 [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3) ]

let test_triangles_k4 () =
  checki "K4 has 4 triangles" 4 (Triangles.count k4);
  Alcotest.(check (array int)) "each vertex in 3" [| 3; 3; 3; 3 |] (Triangles.per_vertex k4)

let test_triangles_cycle () =
  let c5 = Test_util.graph_of_edges ~n:5 [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0) ] in
  checki "C5 triangle-free" 0 (Triangles.count c5)

let test_triangles_direction_blind () =
  let t1 = Test_util.graph_of_edges ~n:3 [ (0, 1); (1, 2); (2, 0) ] in
  let t2 = Test_util.graph_of_edges ~n:3 [ (0, 1); (1, 2); (0, 2) ] in
  checki "cyclic" 1 (Triangles.count t1);
  checki "acyclic orientation" 1 (Triangles.count t2)

let test_clustering () =
  checkb "K4 clustering = 1" true (abs_float (Triangles.global_clustering k4 -. 1.0) < 1e-9)

let prop_per_vertex_sum =
  Test_util.qtest "sum per-vertex = 3 * total" ~print:Test_util.print_small_graph
    Test_util.small_graph_gen (fun sg ->
      let g = Test_util.build sg in
      Array.fold_left ( + ) 0 (Triangles.per_vertex g) = 3 * Triangles.count g)

(* --- Diameter --- *)

let test_diameter_path () =
  let g = Test_util.graph_of_edges ~n:4 [ (0, 1); (1, 0); (1, 2); (2, 1); (2, 3); (3, 2) ] in
  Alcotest.(check string) "path diameter" "3" (Diameter.to_string (Diameter.exact g))

let test_diameter_disconnected () =
  let g = Test_util.graph_of_edges ~n:4 [ (0, 1); (2, 3) ] in
  checkb "infinite" true (Diameter.exact g = Diameter.Infinite);
  checkb "estimate infinite too" true (Diameter.estimate g = Diameter.Infinite)

let test_diameter_estimate_lower_bound () =
  let g = Test_util.random_graph ~seed:5L ~n:60 ~m:120 in
  let g = Graph.symmetrize g in
  if Components.weak_count g = 1 then begin
    match (Diameter.exact g, Diameter.estimate ~sweeps:6 g) with
    | Diameter.Finite ex, Diameter.Finite est ->
        checkb "estimate <= exact" true (est <= ex);
        checkb "estimate at least half" true (2 * est >= ex)
    | _ -> Alcotest.fail "expected finite diameters"
  end

(* --- Graph_io --- *)

let test_io_roundtrip () =
  let g = Test_util.random_graph ~seed:9L ~n:50 ~m:200 in
  let path = Filename.temp_file "cutfit" ".edges" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Graph_io.save path g;
      let g2 = Graph_io.load ~n:50 path in
      checki "same edge count" (Graph.num_edges g) (Graph.num_edges g2);
      let ok = ref true in
      Graph.iter_edges g (fun ~src ~dst -> if not (Graph.has_edge g2 ~src ~dst) then ok := false);
      checkb "same edges" true !ok;
      checki "size matches file" (Graph_io.size_bytes g) (Unix.stat path).Unix.st_size)

let test_io_comments_and_tabs () =
  let path = Filename.temp_file "cutfit" ".edges" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "# comment\n0\t1\n1 2\n\n";
      close_out oc;
      let g = Graph_io.load path in
      checki "2 edges" 2 (Graph.num_edges g);
      checki "3 vertices" 3 (Graph.num_vertices g))

(* --- Characterize --- *)

let test_characterize_small () =
  let g = Test_util.graph_of_edges ~n:4 [ (0, 1); (1, 0); (1, 2); (2, 1); (0, 2); (2, 0) ] in
  let c = Characterize.compute ~exact_diameter:true g in
  checki "vertices" 4 c.Characterize.vertices;
  checki "edges" 6 c.Characterize.edges;
  checkb "fully symmetric" true (abs_float (c.Characterize.symmetry_pct -. 100.0) < 1e-9);
  checki "one triangle" 1 c.Characterize.triangles;
  checki "two components (vertex 3 isolated)" 2 c.Characterize.components;
  checkb "infinite diameter" true (c.Characterize.diameter = Diameter.Infinite);
  checkb "zero-in counts isolated vertex" true (abs_float (c.Characterize.zero_in_pct -. 25.0) < 1e-9)

let test_symmetry_partial () =
  let g = Test_util.graph_of_edges ~n:3 [ (0, 1); (1, 0); (1, 2) ] in
  let s = Characterize.symmetry_pct g in
  checkb "2 of 3 reciprocated" true (abs_float (s -. (200.0 /. 3.0)) < 1e-9)

let suite =
  [
    Alcotest.test_case "edge_list basic" `Quick test_edge_list_basic;
    Alcotest.test_case "edge_list growth" `Quick test_edge_list_growth;
    Alcotest.test_case "edge_list dedup" `Quick test_edge_list_dedup;
    Alcotest.test_case "edge_list symmetrize" `Quick test_edge_list_symmetrize;
    Alcotest.test_case "edge_list bounds" `Quick test_edge_list_bounds;
    Alcotest.test_case "graph degrees" `Quick test_graph_degrees;
    Alcotest.test_case "neighbors sorted" `Quick test_graph_neighbors_sorted;
    Alcotest.test_case "has_edge" `Quick test_graph_has_edge;
    Alcotest.test_case "bad input rejected" `Quick test_graph_rejects_bad_input;
    Alcotest.test_case "graph symmetrize" `Quick test_graph_symmetrize;
    prop_symmetrize_symmetric;
    prop_degree_sums;
    Alcotest.test_case "union_find" `Quick test_union_find;
    Alcotest.test_case "weak components" `Quick test_weak_components;
    Alcotest.test_case "strong components" `Quick test_strong_components;
    Alcotest.test_case "strong on DAG" `Quick test_strong_on_dag;
    Alcotest.test_case "largest weak" `Quick test_largest_weak;
    Alcotest.test_case "deep chain SCC (no overflow)" `Quick test_strong_deep_chain_no_overflow;
    prop_weak_labels_consistent;
    Alcotest.test_case "bfs distances" `Quick test_bfs_distances;
    Alcotest.test_case "bfs undirected" `Quick test_bfs_undirected;
    Alcotest.test_case "bfs multi-source" `Quick test_bfs_multi_source;
    Alcotest.test_case "eccentricity" `Quick test_eccentricity;
    Alcotest.test_case "triangles K4" `Quick test_triangles_k4;
    Alcotest.test_case "triangles C5" `Quick test_triangles_cycle;
    Alcotest.test_case "triangles direction-blind" `Quick test_triangles_direction_blind;
    Alcotest.test_case "clustering" `Quick test_clustering;
    prop_per_vertex_sum;
    Alcotest.test_case "diameter path" `Quick test_diameter_path;
    Alcotest.test_case "diameter disconnected" `Quick test_diameter_disconnected;
    Alcotest.test_case "diameter estimate bound" `Quick test_diameter_estimate_lower_bound;
    Alcotest.test_case "io roundtrip" `Quick test_io_roundtrip;
    Alcotest.test_case "io comments and tabs" `Quick test_io_comments_and_tabs;
    Alcotest.test_case "characterize small" `Quick test_characterize_small;
    Alcotest.test_case "partial symmetry" `Quick test_symmetry_partial;
  ]

(* --- binary I/O --- *)

module Binary_io = Cutfit_graph.Binary_io

let test_binary_roundtrip () =
  let g = Test_util.random_graph ~seed:15L ~n:200 ~m:900 in
  let path = Filename.temp_file "cutfit" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Binary_io.save path g;
      let g2 = Binary_io.load path in
      checki "vertices" (Graph.num_vertices g) (Graph.num_vertices g2);
      checki "edges" (Graph.num_edges g) (Graph.num_edges g2);
      let ok = ref true in
      Graph.iter_edges g (fun ~src ~dst -> if not (Graph.has_edge g2 ~src ~dst) then ok := false);
      Graph.iter_edges g2 (fun ~src ~dst -> if not (Graph.has_edge g ~src ~dst) then ok := false);
      checkb "same edge set" true !ok;
      checki "size matches file" (Binary_io.size_bytes g) (Unix.stat path).Unix.st_size)

let test_binary_smaller_than_text () =
  let g = Test_util.random_graph ~seed:16L ~n:2000 ~m:12000 in
  checkb "binary at most half the text size" true
    (2 * Binary_io.size_bytes g < Graph_io.size_bytes g)

let test_binary_rejects_foreign () =
  let path = Filename.temp_file "cutfit" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "0 1\n1 2\n";
      close_out oc;
      match Binary_io.load path with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "expected rejection")

let test_binary_empty_graph () =
  let g = Test_util.graph_of_edges ~n:3 [] in
  let path = Filename.temp_file "cutfit" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Binary_io.save path g;
      let g2 = Binary_io.load path in
      checki "3 vertices" 3 (Graph.num_vertices g2);
      checki "0 edges" 0 (Graph.num_edges g2))

let prop_binary_roundtrip =
  Test_util.qtest ~count:30 "binary roundtrip preserves edge multiset"
    ~print:Test_util.print_small_graph Test_util.small_graph_gen (fun sg ->
      let g = Test_util.build sg in
      let path = Filename.temp_file "cutfit" ".bin" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Binary_io.save path g;
          let g2 = Binary_io.load path in
          let pairs h =
            let acc = ref [] in
            Graph.iter_edges h (fun ~src ~dst -> acc := (src, dst) :: !acc);
            List.sort compare !acc
          in
          Graph.num_vertices g = Graph.num_vertices g2 && pairs g = pairs g2))

let suite =
  suite
  @ [
      Alcotest.test_case "binary roundtrip" `Quick test_binary_roundtrip;
      Alcotest.test_case "binary smaller than text" `Quick test_binary_smaller_than_text;
      Alcotest.test_case "binary rejects foreign" `Quick test_binary_rejects_foreign;
      Alcotest.test_case "binary empty graph" `Quick test_binary_empty_graph;
      prop_binary_roundtrip;
    ]
