(* Edge cases and failure injection across the stack: empty graphs,
   single vertices, self-contained islands, degenerate partition counts,
   and the infra experiment machinery. *)

module Graph = Cutfit_graph.Graph
module Strategy = Cutfit_partition.Strategy
module Partitioner = Cutfit_partition.Partitioner
module Metrics = Cutfit_partition.Metrics
module Cluster = Cutfit_bsp.Cluster
module Pgraph = Cutfit_bsp.Pgraph
module Trace = Cutfit_bsp.Trace

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let empty = Test_util.graph_of_edges ~n:5 []
let singleton = Test_util.graph_of_edges ~n:1 []
let self_loop = Graph.create ~n:2 ~src:[| 0; 0 |] ~dst:[| 0; 1 |]
let cluster = Test_util.tiny_cluster ()

let test_empty_graph_basics () =
  checki "no edges" 0 (Graph.num_edges empty);
  checki "degree" 0 (Graph.out_degree empty 3);
  checkb "symmetric trivially" true (Graph.is_symmetric empty);
  checki "five components" 5 (Cutfit_graph.Components.weak_count empty);
  checki "no triangles" 0 (Cutfit_graph.Triangles.count empty)

let test_empty_graph_metrics () =
  let a = Partitioner.assign (Partitioner.Hash Strategy.Rvc) ~num_partitions:4 empty in
  let m = Metrics.compute empty ~num_partitions:4 a in
  checki "no cut" 0 m.Metrics.cut;
  checki "no non-cut (no vertex touches an edge)" 0 m.Metrics.non_cut;
  checkb "balance defined" true (m.Metrics.balance = 1.0)

let test_empty_graph_pregel () =
  let a = Partitioner.assign (Partitioner.Hash Strategy.Rvc) ~num_partitions:8 empty in
  let pg = Pgraph.build empty ~num_partitions:8 a in
  let r = Cutfit_algo.Connected_components.run ~cluster pg in
  (* Every vertex is its own component; no messages ever flow. *)
  Alcotest.(check (array int)) "own labels" [| 0; 1; 2; 3; 4 |]
    r.Cutfit_algo.Connected_components.labels;
  checkb "completed" true (Trace.completed r.Cutfit_algo.Connected_components.trace)

let test_singleton_pagerank () =
  let a = [||] in
  let pg = Pgraph.build singleton ~num_partitions:8 a in
  let r = Cutfit_algo.Pagerank.run ~cluster pg in
  checkb "rank stays initial" true (abs_float (r.Cutfit_algo.Pagerank.ranks.(0) -. 1.0) < 1e-12)

let test_self_loop_handling () =
  (* Self-loops survive Graph.create (only dedup drops them); triangles
     and CC must not be confused by them. *)
  checki "two edges" 2 (Graph.num_edges self_loop);
  checki "no triangles" 0 (Cutfit_graph.Triangles.count self_loop);
  checki "one component" 1 (Cutfit_graph.Components.weak_count self_loop)

let test_single_partition_run () =
  let g = Test_util.random_graph ~seed:7L ~n:50 ~m:200 in
  let cluster1 = Test_util.tiny_cluster ~num_partitions:1 () in
  let pg = Pgraph.build g ~num_partitions:1 (Array.make (Graph.num_edges g) 0) in
  let r = Cutfit_algo.Connected_components.run ~iterations:100 ~cluster:cluster1 pg in
  Alcotest.(check (array int)) "still correct" (Cutfit_algo.Connected_components.reference g)
    r.Cutfit_algo.Connected_components.labels

let test_more_partitions_than_edges () =
  let g = Test_util.graph_of_edges ~n:4 [ (0, 1); (2, 3) ] in
  let cluster = Test_util.tiny_cluster ~num_partitions:8 () in
  let a = Partitioner.assign (Partitioner.Hash Strategy.Crvc) ~num_partitions:8 g in
  let pg = Pgraph.build g ~num_partitions:8 a in
  let r = Cutfit_algo.Pagerank.run ~cluster pg in
  checkb "runs" true (Trace.completed r.Cutfit_algo.Pagerank.trace
                      || r.Cutfit_algo.Pagerank.trace.Trace.outcome = Trace.Max_supersteps)

let test_two_d_rectangle_covers_all () =
  (* Non-perfect-square counts use GraphX's rectangle scheme; every
     produced index must be in range and (for enough edges) the spread
     must touch many partitions. *)
  List.iter
    (fun num_partitions ->
      let used = Array.make num_partitions false in
      for src = 0 to 200 do
        for dst = 0 to 30 do
          let p = Strategy.edge_partition Strategy.Two_d ~num_partitions ~src ~dst in
          checkb "in range" true (p >= 0 && p < num_partitions);
          used.(p) <- true
        done
      done;
      let count = Array.fold_left (fun acc u -> if u then acc + 1 else acc) 0 used in
      checkb "most partitions used" true (count > num_partitions / 2))
    [ 2; 3; 5; 12; 128 ]

let test_two_d_perfect_square_bound () =
  (* On a perfect square, a vertex appears in at most 2*sqrt(N)
     partitions. *)
  let g = Test_util.random_graph ~seed:3L ~n:100 ~m:4000 in
  let a = Partitioner.assign (Partitioner.Hash Strategy.Two_d) ~num_partitions:64 g in
  let replicas = Metrics.replica_count g ~num_partitions:64 a in
  Array.iter (fun r -> checkb "<= 16" true (r <= 16)) replicas

let test_streaming_on_empty () =
  let a = Cutfit_partition.Streaming.assign Cutfit_partition.Streaming.Greedy ~num_partitions:4 empty in
  checki "empty assignment" 0 (Array.length a)

let test_infra_experiment_shape () =
  (* The infra experiment on a small dataset: (iii) and (iv) must not be
     slower than (ii), and (iv) at least as good as (iii). *)
  let results = Cutfit_experiments.Infra.run ~dataset:"youtube" () in
  checki "six partitioners" 6 (List.length results);
  List.iter
    (fun r ->
      checkb "iii not slower" true
        (r.Cutfit_experiments.Infra.time_iii <= r.Cutfit_experiments.Infra.time_ii +. 1e-9);
      checkb "iv not slower than iii" true
        (r.Cutfit_experiments.Infra.time_iv <= r.Cutfit_experiments.Infra.time_iii +. 1e-9);
      checkb "gains nonnegative" true (r.Cutfit_experiments.Infra.gain_iii_pct >= -1e-9))
    results

let test_sssp_landmark_on_island () =
  (* A landmark in a 2-vertex island: only the island learns distances;
     termination must still be immediate-ish. *)
  let g = Test_util.graph_of_edges ~n:6 [ (0, 1); (1, 2); (4, 5); (5, 4) ] in
  let a = Partitioner.assign (Partitioner.Hash Strategy.Rvc) ~num_partitions:8 g in
  let pg = Pgraph.build g ~num_partitions:8 a in
  let r = Cutfit_algo.Sssp.run ~cluster ~landmarks:[| 4 |] pg in
  checki "island partner" 1 r.Cutfit_algo.Sssp.distances.(5).(0);
  checki "mainland unreachable" max_int r.Cutfit_algo.Sssp.distances.(0).(0);
  checkb "completed fast" true (Trace.num_supersteps r.Cutfit_algo.Sssp.trace < 10)

let test_pregel_both_directions_emit () =
  (* A program emitting to both endpoints per edge: degree counting. *)
  let g = Test_util.graph_of_edges ~n:5 [ (0, 1); (1, 2); (2, 0); (3, 4) ] in
  let a = Partitioner.assign (Partitioner.Hash Strategy.Rvc) ~num_partitions:8 g in
  let pg = Pgraph.build g ~num_partitions:8 a in
  let program =
    {
      Cutfit_bsp.Pregel.init = (fun _ -> 0);
      initial_msg = 0;
      vprog = (fun _ acc m -> acc + m);
      send =
        (fun ~edge:_ ~src:_ ~dst:_ ~src_attr ~dst_attr ~emit ->
          (* Only fire on the first round (attrs still zero). *)
          if src_attr = 0 || dst_attr = 0 then begin
            emit Cutfit_bsp.Pregel.To_src 1;
            emit Cutfit_bsp.Pregel.To_dst 1
          end);
      merge = ( + );
      state_bytes = 8;
      msg_bytes = 8;
    }
  in
  let r = Cutfit_bsp.Pregel.run ~max_supersteps:1 ~cluster pg program in
  (* After one round each vertex holds its undirected degree. *)
  Alcotest.(check (array int)) "degrees" [| 2; 2; 2; 1; 1 |] r.Cutfit_bsp.Pregel.attrs

let test_report_pct () =
  Alcotest.(check string) "pct" "95.3%" (Cutfit_experiments.Report.pct 95.3)

let test_diameter_singleton () =
  checkb "zero" true (Cutfit_graph.Diameter.exact singleton = Cutfit_graph.Diameter.Finite 0)

let suite =
  [
    Alcotest.test_case "empty graph basics" `Quick test_empty_graph_basics;
    Alcotest.test_case "empty graph metrics" `Quick test_empty_graph_metrics;
    Alcotest.test_case "empty graph pregel" `Quick test_empty_graph_pregel;
    Alcotest.test_case "singleton pagerank" `Quick test_singleton_pagerank;
    Alcotest.test_case "self loops" `Quick test_self_loop_handling;
    Alcotest.test_case "single partition" `Quick test_single_partition_run;
    Alcotest.test_case "more partitions than edges" `Quick test_more_partitions_than_edges;
    Alcotest.test_case "2D rectangle covers" `Quick test_two_d_rectangle_covers_all;
    Alcotest.test_case "2D square bound" `Quick test_two_d_perfect_square_bound;
    Alcotest.test_case "streaming on empty" `Quick test_streaming_on_empty;
    Alcotest.test_case "infra experiment shape" `Quick test_infra_experiment_shape;
    Alcotest.test_case "SSSP island landmark" `Quick test_sssp_landmark_on_island;
    Alcotest.test_case "pregel both directions" `Quick test_pregel_both_directions_emit;
    Alcotest.test_case "report pct" `Quick test_report_pct;
    Alcotest.test_case "diameter singleton" `Quick test_diameter_singleton;
  ]
