module Splitmix64 = Cutfit_prng.Splitmix64
module Xoshiro = Cutfit_prng.Xoshiro
module Dist = Cutfit_prng.Dist

let check = Alcotest.check
let checkb = Alcotest.(check bool)

let test_splitmix_deterministic () =
  let a = Splitmix64.create 42L and b = Splitmix64.create 42L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Splitmix64.next_int64 a) (Splitmix64.next_int64 b)
  done

let test_splitmix_distinct_seeds () =
  let a = Splitmix64.create 1L and b = Splitmix64.create 2L in
  checkb "different streams" true (Splitmix64.next_int64 a <> Splitmix64.next_int64 b)

let test_mix64_injective_sample () =
  (* mix64 is a bijection; sampled values must not collide. *)
  let seen = Hashtbl.create 1024 in
  for i = 0 to 10_000 do
    let h = Splitmix64.mix64 (Int64.of_int i) in
    checkb "no collision" false (Hashtbl.mem seen h);
    Hashtbl.add seen h ()
  done

let test_splitmix_copy_independent () =
  let a = Splitmix64.create 7L in
  ignore (Splitmix64.next_int64 a);
  let b = Splitmix64.copy a in
  check Alcotest.int64 "copy same state" (Splitmix64.next_int64 a) (Splitmix64.next_int64 b)

let test_split_streams_differ () =
  let a = Splitmix64.create 9L in
  let b = Splitmix64.split a in
  checkb "split differs" true (Splitmix64.next_int64 a <> Splitmix64.next_int64 b)

let test_xoshiro_deterministic () =
  let a = Xoshiro.create 42L and b = Xoshiro.create 42L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Xoshiro.next_int64 a) (Xoshiro.next_int64 b)
  done

let test_xoshiro_jump_changes_state () =
  let a = Xoshiro.create 5L in
  let b = Xoshiro.copy a in
  Xoshiro.jump b;
  checkb "jumped stream differs" true (Xoshiro.next_int64 a <> Xoshiro.next_int64 b)

let test_bounds_rejected () =
  let r = Xoshiro.create 1L in
  Alcotest.check_raises "bound 0" (Invalid_argument "Xoshiro.next_int: bound <= 0") (fun () ->
      ignore (Xoshiro.next_int r 0));
  let s = Splitmix64.create 1L in
  Alcotest.check_raises "bound -1" (Invalid_argument "Splitmix64.next_int: bound <= 0") (fun () ->
      ignore (Splitmix64.next_int s (-1)))

let test_uniformity_rough () =
  let r = Xoshiro.create 3L in
  let counts = Array.make 10 0 in
  let trials = 100_000 in
  for _ = 1 to trials do
    let k = Xoshiro.next_int r 10 in
    counts.(k) <- counts.(k) + 1
  done;
  Array.iter
    (fun c ->
      checkb "bucket within 10% of expectation" true
        (abs (c - (trials / 10)) < trials / 10))
    counts

let test_alias_frequencies () =
  let alias = Dist.Alias.create [| 1.0; 2.0; 7.0 |] in
  let r = Xoshiro.create 17L in
  let counts = Array.make 3 0 in
  let trials = 100_000 in
  for _ = 1 to trials do
    let k = Dist.Alias.sample alias r in
    counts.(k) <- counts.(k) + 1
  done;
  let frac i = float_of_int counts.(i) /. float_of_int trials in
  checkb "p0 ~ 0.1" true (abs_float (frac 0 -. 0.1) < 0.01);
  checkb "p1 ~ 0.2" true (abs_float (frac 1 -. 0.2) < 0.015);
  checkb "p2 ~ 0.7" true (abs_float (frac 2 -. 0.7) < 0.015)

let test_alias_rejects_bad_weights () =
  Alcotest.check_raises "empty" (Invalid_argument "Alias.create: empty weights") (fun () ->
      ignore (Dist.Alias.create [||]));
  Alcotest.check_raises "zero sum" (Invalid_argument "Alias.create: non-positive total weight")
    (fun () -> ignore (Dist.Alias.create [| 0.0; 0.0 |]))

let test_zipf_bounds_and_skew () =
  let r = Xoshiro.create 23L in
  let counts = Array.make 101 0 in
  for _ = 1 to 50_000 do
    let k = Dist.zipf r ~n:100 ~s:1.2 in
    Alcotest.(check bool) "in range" true (k >= 1 && k <= 100);
    counts.(k) <- counts.(k) + 1
  done;
  checkb "rank 1 most frequent" true (counts.(1) > counts.(2));
  checkb "head beats tail" true (counts.(1) > 10 * counts.(50))

let test_power_law_weights_shape () =
  let w = Dist.power_law_weights ~n:1000 ~alpha:2.5 ~min_weight:1.0 in
  checkb "descending" true (w.(0) > w.(1) && w.(1) > w.(500));
  checkb "min weight respected" true (w.(999) >= 1.0 -. 1e-9);
  (* alpha=2.5 -> w_i = (n/(i+1))^(2/3). *)
  let expected = (1000.0 /. 1.0) ** (1.0 /. 1.5) in
  checkb "head magnitude" true (abs_float (w.(0) -. expected) < 1e-6)

let test_sample_distinct () =
  let r = Xoshiro.create 31L in
  let s = Dist.sample_distinct r ~n:50 ~k:20 in
  check Alcotest.int "size" 20 (Array.length s);
  let tbl = Hashtbl.create 32 in
  Array.iter
    (fun v ->
      checkb "in range" true (v >= 0 && v < 50);
      checkb "distinct" false (Hashtbl.mem tbl v);
      Hashtbl.add tbl v ())
    s

let test_shuffle_is_permutation () =
  let r = Xoshiro.create 37L in
  let a = Array.init 100 Fun.id in
  Dist.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check Alcotest.(array int) "same multiset" (Array.init 100 Fun.id) sorted

let test_geometric_mean () =
  let r = Xoshiro.create 41L in
  let total = ref 0 in
  let trials = 50_000 in
  for _ = 1 to trials do
    total := !total + Dist.geometric r ~p:0.5
  done;
  let mean = float_of_int !total /. float_of_int trials in
  checkb "mean ~ (1-p)/p = 1" true (abs_float (mean -. 1.0) < 0.05)

let test_exponential_positive () =
  let r = Xoshiro.create 43L in
  for _ = 1 to 1000 do
    checkb "positive" true (Dist.exponential r ~rate:2.0 >= 0.0)
  done

let prop_float_in_unit =
  Test_util.qtest "next_float in [0,1)" ~print:Int64.to_string
    QCheck2.Gen.(map Int64.of_int int)
    (fun seed ->
      let r = Xoshiro.create seed in
      let ok = ref true in
      for _ = 1 to 100 do
        let f = Xoshiro.next_float r in
        if f < 0.0 || f >= 1.0 then ok := false
      done;
      !ok)

let prop_next_int_in_range =
  Test_util.qtest "next_int in [0,bound)" ~print:(fun (s, b) -> Printf.sprintf "seed=%d bound=%d" s b)
    QCheck2.Gen.(pair int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let r = Xoshiro.create (Int64.of_int seed) in
      let ok = ref true in
      for _ = 1 to 50 do
        let v = Xoshiro.next_int r bound in
        if v < 0 || v >= bound then ok := false
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "splitmix deterministic" `Quick test_splitmix_deterministic;
    Alcotest.test_case "splitmix distinct seeds" `Quick test_splitmix_distinct_seeds;
    Alcotest.test_case "mix64 injective on sample" `Quick test_mix64_injective_sample;
    Alcotest.test_case "splitmix copy" `Quick test_splitmix_copy_independent;
    Alcotest.test_case "split streams differ" `Quick test_split_streams_differ;
    Alcotest.test_case "xoshiro deterministic" `Quick test_xoshiro_deterministic;
    Alcotest.test_case "xoshiro jump" `Quick test_xoshiro_jump_changes_state;
    Alcotest.test_case "bad bounds rejected" `Quick test_bounds_rejected;
    Alcotest.test_case "rough uniformity" `Quick test_uniformity_rough;
    Alcotest.test_case "alias frequencies" `Quick test_alias_frequencies;
    Alcotest.test_case "alias bad weights" `Quick test_alias_rejects_bad_weights;
    Alcotest.test_case "zipf bounds and skew" `Quick test_zipf_bounds_and_skew;
    Alcotest.test_case "power-law weights shape" `Quick test_power_law_weights_shape;
    Alcotest.test_case "sample_distinct" `Quick test_sample_distinct;
    Alcotest.test_case "shuffle permutation" `Quick test_shuffle_is_permutation;
    Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
    Alcotest.test_case "exponential positive" `Quick test_exponential_positive;
    prop_float_in_unit;
    prop_next_int_in_range;
  ]
