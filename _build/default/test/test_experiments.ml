module E = Cutfit_experiments
module Run = E.Run
module Report = E.Report
module Datasets = Cutfit_gen.Datasets
module Cluster = Cutfit_bsp.Cluster
module Partitioner = Cutfit_partition.Partitioner
module Strategy = Cutfit_partition.Strategy

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* --- Report helpers --- *)

let test_commas () =
  Alcotest.(check string) "millions" "12,345,678" (Report.commas 12_345_678);
  Alcotest.(check string) "small" "42" (Report.commas 42);
  Alcotest.(check string) "negative" "-1,000" (Report.commas (-1000))

let test_fsig () =
  Alcotest.(check string) "small" "1.23" (Report.fsig 1.234);
  Alcotest.(check string) "tens" "45.6" (Report.fsig 45.64);
  Alcotest.(check string) "big" "1,234" (Report.fsig 1234.2);
  Alcotest.(check string) "nan" "nan" (Report.fsig Float.nan)

let test_seconds () =
  Alcotest.(check string) "oom" "OOM" (Report.seconds Float.nan)

let test_table_alignment () =
  let t = Report.table ~header:[ "a"; "bb" ] ~rows:[ [ "ccc"; "d" ] ] in
  let lines = String.split_on_char '\n' t in
  checki "3 lines" 3 (List.length lines);
  (* All lines are padded to the same width. *)
  match lines with
  | [ h; r; d ] ->
      checki "rule matches header width" (String.length h) (String.length d);
      checki "rows padded to same width" (String.length h) (String.length r)
  | _ -> Alcotest.fail "unexpected shape"

(* --- A small real matrix: 1 dataset, 2 partitioners, 1 config --- *)

let small_opts =
  {
    Run.default_options with
    Run.datasets = [ Datasets.find "youtube" ];
    partitioners = [ Partitioner.Hash Strategy.Rvc; Partitioner.Hash Strategy.Two_d ];
    clusters = [ Cluster.config_i ];
    algos = [ Run.Pagerank; Run.Triangle_count ];
    sssp_sources = 1;
    progress = false;
  }

let measurements = lazy (Run.run small_opts)

let test_matrix_cell_count () =
  let ms = Lazy.force measurements in
  (* 1 dataset x 2 partitioners x 1 config x 2 algos. *)
  checki "cells" 4 (List.length ms)

let test_matrix_times_positive () =
  let ms = Lazy.force measurements in
  List.iter
    (fun m ->
      checkb "completed" true m.Run.completed;
      checkb "positive time" true (m.Run.time_s > 0.0))
    ms

let test_filter () =
  let ms = Lazy.force measurements in
  checki "PR cells" 2 (List.length (Run.filter ~algo:Run.Pagerank ms));
  checki "by dataset" 4 (List.length (Run.filter ~dataset:"youtube" ms));
  checki "none" 0 (List.length (Run.filter ~config:"(ii)" ms))

let test_correlations_computable () =
  let ms = Lazy.force measurements in
  let cs = E.Figures.correlations ms Run.Pagerank ~config:"(i)" in
  checki "five metrics" 5 (List.length cs);
  List.iter
    (fun (_, c) -> checkb "in range" true (Float.is_nan c || (c >= -1.0 && c <= 1.0)))
    cs

let test_best_partitioners () =
  let ms = Lazy.force measurements in
  match E.Figures.best_partitioners ms Run.Pagerank ~config:"(i)" with
  | [ (d, p, t) ] ->
      Alcotest.(check string) "dataset" "YouTube" d;
      checkb "one of the two" true (p = "RVC" || p = "2D");
      checkb "positive" true (t > 0.0)
  | l -> Alcotest.failf "expected one row, got %d" (List.length l)

let test_scale_of () =
  let spec = Datasets.find "youtube" in
  let g = Datasets.generate spec in
  let s = Run.scale_of spec g in
  checkb "around 75-110x" true (s > 50.0 && s < 150.0)

let test_sssp_sources_fixed () =
  let spec = Datasets.find "youtube" in
  let g = Datasets.generate spec in
  let a = Run.sssp_sources_of spec ~count:5 g in
  let b = Run.sssp_sources_of spec ~count:5 g in
  Alcotest.(check (array int)) "stable" a b

let test_algo_names () =
  List.iter
    (fun a ->
      match Run.algo_of_string (Run.algo_name a) with
      | Some a' -> checkb "roundtrip" true (a = a')
      | None -> Alcotest.fail "parse failed")
    Run.all_algos

(* --- Expectations machinery on the small matrix --- *)

let test_verdict_rendering () =
  let v =
    { E.Expectations.name = "x"; expected = "y"; measured = "z"; pass = true }
  in
  let s = Format.asprintf "%a" E.Expectations.pp_verdict v in
  checkb "mentions PASS" true
    (String.length s >= 6 && String.sub s 0 6 = "[PASS]")

let test_check_all_runs () =
  let ms = Lazy.force measurements in
  let verdicts = E.Expectations.check_all ms in
  (* Only the PR (i) correlation + PR granularity + TR checks apply; the
     machinery must at least produce verdicts without raising. *)
  checkb "some verdicts" true (List.length verdicts >= 0)

(* --- Tables render without error --- *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_table1_renders () =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  E.Tables.table1 ppf;
  Format.pp_print_flush ppf ();
  checkb "mentions YouTube" true (contains ~needle:"YouTube" (Buffer.contents buf))

let suite =
  [
    Alcotest.test_case "commas" `Quick test_commas;
    Alcotest.test_case "fsig" `Quick test_fsig;
    Alcotest.test_case "seconds OOM" `Quick test_seconds;
    Alcotest.test_case "table alignment" `Quick test_table_alignment;
    Alcotest.test_case "matrix cell count" `Quick test_matrix_cell_count;
    Alcotest.test_case "matrix times positive" `Quick test_matrix_times_positive;
    Alcotest.test_case "filter" `Quick test_filter;
    Alcotest.test_case "correlations computable" `Quick test_correlations_computable;
    Alcotest.test_case "best partitioners" `Quick test_best_partitioners;
    Alcotest.test_case "scale_of" `Quick test_scale_of;
    Alcotest.test_case "sssp sources fixed" `Quick test_sssp_sources_fixed;
    Alcotest.test_case "algo names" `Quick test_algo_names;
    Alcotest.test_case "verdict rendering" `Quick test_verdict_rendering;
    Alcotest.test_case "check_all runs" `Quick test_check_all_runs;
    Alcotest.test_case "table1 renders" `Quick test_table1_renders;
  ]

(* --- CSV export --- *)

let test_csv_export () =
  let ms = Lazy.force measurements in
  let csv = E.Export.to_csv ms in
  let lines = String.split_on_char '\n' (String.trim csv) in
  checki "header + rows" (1 + List.length ms) (List.length lines);
  checkb "header first" true (List.hd lines = E.Export.header);
  (* Every line has the same number of fields. *)
  let fields l = List.length (String.split_on_char ',' l) in
  let n = fields (List.hd lines) in
  List.iter (fun l -> checki "field count" n (fields l)) lines

let test_csv_roundtrip_file () =
  let ms = Lazy.force measurements in
  let path = Filename.temp_file "cutfit" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      E.Export.save path ms;
      let ic = open_in path in
      let first = input_line ic in
      close_in ic;
      checkb "header on disk" true (first = E.Export.header))

let suite =
  suite
  @ [
      Alcotest.test_case "csv export" `Quick test_csv_export;
      Alcotest.test_case "csv file" `Quick test_csv_roundtrip_file;
    ]
