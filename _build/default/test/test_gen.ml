module Graph = Cutfit_graph.Graph
module Components = Cutfit_graph.Components
module Characterize = Cutfit_graph.Characterize
module Grid = Cutfit_gen.Grid
module Social = Cutfit_gen.Social
module Datasets = Cutfit_gen.Datasets

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let small_grid = { Grid.default with Grid.width = 30; height = 30; seed = 3L }

let test_grid_symmetric () =
  let g = Grid.generate small_grid in
  checkb "symmetric" true (Graph.is_symmetric g)

let test_grid_no_isolated () =
  let g = Grid.generate small_grid in
  let ok = ref true in
  for v = 0 to Graph.num_vertices g - 1 do
    if Graph.out_degree g v = 0 then ok := false
  done;
  checkb "no zero-degree vertices" true !ok

let test_grid_deterministic () =
  let g1 = Grid.generate small_grid and g2 = Grid.generate small_grid in
  checki "same edges" (Graph.num_edges g1) (Graph.num_edges g2);
  Alcotest.(check (array int)) "same srcs" (Graph.src_array g1) (Graph.src_array g2)

let test_grid_seed_changes_structure () =
  let g1 = Grid.generate small_grid in
  let g2 = Grid.generate { small_grid with Grid.seed = 4L } in
  checkb "different structure" true
    (Graph.num_edges g1 <> Graph.num_edges g2 || Graph.src_array g1 <> Graph.src_array g2)

let test_grid_degree_bounded () =
  let g = Grid.generate small_grid in
  let max_deg = ref 0 in
  for v = 0 to Graph.num_vertices g - 1 do
    max_deg := max !max_deg (Graph.out_degree g v)
  done;
  (* 4 rook + 2 diagonal incidences is the lattice maximum. *)
  checkb "degree <= 6" true (!max_deg <= 6)

let test_grid_rejects_empty () =
  Alcotest.check_raises "empty lattice" (Invalid_argument "Grid.generate: empty lattice")
    (fun () -> ignore (Grid.generate { small_grid with Grid.width = 0 }))

let small_social =
  { Social.default with Social.vertices = 3_000; edges = 20_000; seed = 21L }

let test_social_undirected_symmetric () =
  let g = Social.generate small_social in
  checkb "symmetric" true (Graph.is_symmetric g);
  checkb "one component" true (Components.weak_count g = 1)

let test_social_deterministic () =
  let g1 = Social.generate small_social and g2 = Social.generate small_social in
  Alcotest.(check (array int)) "same srcs" (Graph.src_array g1) (Graph.src_array g2)

let directed_params =
  {
    Social.default with
    Social.vertices = 5_000;
    edges = 40_000;
    symmetry = 0.5;
    zero_in_frac = 0.1;
    zero_out_frac = 0.2;
    islands = 4;
    seed = 22L;
  }

let test_social_symmetry_target () =
  let g = Social.generate directed_params in
  let s = Characterize.symmetry_pct g /. 100.0 in
  checkb "symmetry within 6 points of target" true (abs_float (s -. 0.5) < 0.06)

let test_social_leaf_fractions () =
  let g = Social.generate directed_params in
  let n = Graph.num_vertices g in
  let zi = ref 0 and zo = ref 0 in
  for v = 0 to n - 1 do
    if Graph.in_degree g v = 0 then incr zi;
    if Graph.out_degree g v = 0 then incr zo
  done;
  let fzi = float_of_int !zi /. float_of_int n and fzo = float_of_int !zo /. float_of_int n in
  checkb "zero-in ~10%" true (abs_float (fzi -. 0.1) < 0.03);
  checkb "zero-out ~20%" true (abs_float (fzo -. 0.2) < 0.03)

let test_social_components () =
  let g = Social.generate directed_params in
  checki "1 + islands components" (1 + 4) (Components.weak_count g)

let test_social_edge_budget () =
  let g = Social.generate directed_params in
  let m = Graph.num_edges g in
  checkb "within 20% of target" true
    (float_of_int (abs (m - 40_000)) /. 40_000.0 < 0.20)

let test_social_superstar () =
  let boosted =
    Social.generate { small_social with Social.superstar_share = 0.3; symmetry = 0.0; seed = 23L }
  in
  let plain = Social.generate { small_social with Social.symmetry = 0.0; seed = 23L } in
  checkb "hub dominates when boosted" true
    (Graph.out_degree boosted 0 > 2 * Graph.out_degree plain 0)

let test_social_weight_cap () =
  let capped =
    Social.generate { small_social with Social.weight_cap_ratio = 5.0; seed = 24L }
  in
  let n = Graph.num_vertices capped in
  let m = Graph.num_edges capped in
  let max_deg = ref 0 in
  for v = 0 to n - 1 do
    max_deg := max !max_deg (Graph.out_degree capped v)
  done;
  (* Expected max degree ~ 5x mean; allow generous sampling noise. *)
  checkb "capped tail" true (!max_deg < 15 * m / n)

let test_social_validation () =
  Alcotest.check_raises "undirected with leaves"
    (Invalid_argument "Social.generate: an undirected graph cannot have zero-degree leaves")
    (fun () -> ignore (Social.generate { Social.default with Social.zero_in_frac = 0.1 }));
  Alcotest.check_raises "no core"
    (Invalid_argument "Social.generate: leaf fractions/islands leave no core") (fun () ->
      ignore
        (Social.generate
           { Social.default with Social.symmetry = 0.0; zero_in_frac = 0.6; zero_out_frac = 0.5 }))

let test_datasets_registry () =
  checki "nine datasets" 9 (List.length Datasets.all);
  checki "small + large = all" 9 (List.length Datasets.small + List.length Datasets.large);
  checkb "find works" true ((Datasets.find "orkut").Datasets.display = "Orkut");
  Alcotest.check_raises "unknown" Not_found (fun () -> ignore (Datasets.find "nope"))

let test_datasets_cache () =
  Datasets.clear_cache ();
  let spec = Datasets.find "youtube" in
  let g1 = Datasets.generate spec in
  let g2 = Datasets.generate spec in
  checkb "memoized (physically equal)" true (g1 == g2)

let test_dataset_shapes () =
  (* Spot-check the structural contract of two analogues. *)
  let yt = Datasets.generate (Datasets.find "youtube") in
  checkb "youtube symmetric" true (Graph.is_symmetric yt);
  checki "youtube connected" 1 (Components.weak_count yt);
  let pa = Datasets.generate (Datasets.find "roadnet_pa") in
  checkb "roadnet symmetric" true (Graph.is_symmetric pa);
  checkb "roadnet many components" true (Components.weak_count pa > 1)

let suite =
  [
    Alcotest.test_case "grid symmetric" `Quick test_grid_symmetric;
    Alcotest.test_case "grid no isolated" `Quick test_grid_no_isolated;
    Alcotest.test_case "grid deterministic" `Quick test_grid_deterministic;
    Alcotest.test_case "grid seed matters" `Quick test_grid_seed_changes_structure;
    Alcotest.test_case "grid degree bounded" `Quick test_grid_degree_bounded;
    Alcotest.test_case "grid rejects empty" `Quick test_grid_rejects_empty;
    Alcotest.test_case "social undirected symmetric" `Quick test_social_undirected_symmetric;
    Alcotest.test_case "social deterministic" `Quick test_social_deterministic;
    Alcotest.test_case "social symmetry target" `Quick test_social_symmetry_target;
    Alcotest.test_case "social leaf fractions" `Quick test_social_leaf_fractions;
    Alcotest.test_case "social components" `Quick test_social_components;
    Alcotest.test_case "social edge budget" `Quick test_social_edge_budget;
    Alcotest.test_case "social superstar" `Quick test_social_superstar;
    Alcotest.test_case "social weight cap" `Quick test_social_weight_cap;
    Alcotest.test_case "social validation" `Quick test_social_validation;
    Alcotest.test_case "datasets registry" `Quick test_datasets_registry;
    Alcotest.test_case "datasets cache" `Quick test_datasets_cache;
    Alcotest.test_case "dataset shapes" `Quick test_dataset_shapes;
  ]
