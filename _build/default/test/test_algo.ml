module Graph = Cutfit_graph.Graph
module Strategy = Cutfit_partition.Strategy
module Partitioner = Cutfit_partition.Partitioner
module Cluster = Cutfit_bsp.Cluster
module Pgraph = Cutfit_bsp.Pgraph
module Trace = Cutfit_bsp.Trace
module Pagerank = Cutfit_algo.Pagerank
module Cc = Cutfit_algo.Connected_components
module Tr = Cutfit_algo.Triangle_count
module Sssp = Cutfit_algo.Sssp

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let cluster = Test_util.tiny_cluster ()
let np = cluster.Cluster.num_partitions

let pg_of g =
  let a = Partitioner.assign (Partitioner.Hash Strategy.Rvc) ~num_partitions:np g in
  Pgraph.build g ~num_partitions:np a

let g = Test_util.random_graph ~seed:99L ~n:150 ~m:900
let pg = pg_of g

(* --- PageRank --- *)

let test_pagerank_matches_reference () =
  let r = Pagerank.run ~iterations:10 ~cluster pg in
  let expected = Pagerank.reference ~iterations:10 g in
  Array.iteri
    (fun v rank ->
      checkb "rank close" true (abs_float (rank -. expected.(v)) < 1e-10))
    r.Pagerank.ranks

let test_pagerank_sink_keeps_initial () =
  (* A vertex with no in-edges never receives a message. *)
  let chain = Test_util.graph_of_edges ~n:3 [ (0, 1); (1, 2) ] in
  let pg = pg_of chain in
  let r = Pagerank.run ~iterations:5 ~cluster pg in
  checkb "source stays 1.0" true (abs_float (r.Pagerank.ranks.(0) -. 1.0) < 1e-12)

let test_pagerank_ranks_positive () =
  let r = Pagerank.run ~cluster pg in
  Array.iter (fun rank -> checkb ">= 0.15" true (rank >= 0.15 -. 1e-12)) r.Pagerank.ranks

let test_pagerank_hub_outranks_leaf () =
  (* A star: many vertices point at 0. *)
  let star = Test_util.graph_of_edges ~n:10 (List.init 9 (fun i -> (i + 1, 0))) in
  let pg = pg_of star in
  let r = Pagerank.run ~cluster pg in
  checkb "center highest" true
    (Array.for_all (fun x -> r.Pagerank.ranks.(0) >= x) r.Pagerank.ranks)

let prop_pagerank_matches_reference =
  Test_util.qtest ~count:25 "PR = sequential reference" ~print:Test_util.print_small_graph
    Test_util.small_graph_gen (fun sg ->
      let g = Test_util.build sg in
      if Graph.num_edges g = 0 then true
      else begin
        let pg = pg_of g in
        let r = Pagerank.run ~iterations:5 ~cluster pg in
        let expected = Pagerank.reference ~iterations:5 g in
        Array.for_all2 (fun a b -> abs_float (a -. b) < 1e-9) r.Pagerank.ranks expected
      end)

(* --- Connected components --- *)

let test_cc_converges () =
  let r = Cc.run ~iterations:100 ~cluster pg in
  Alcotest.(check (array int)) "labels" (Cc.reference g) r.Cc.labels

let test_cc_iteration_cap () =
  (* A long path cannot converge in 2 iterations. *)
  let path = Test_util.graph_of_edges ~n:20 (List.init 19 (fun i -> (i, i + 1))) in
  let pg = pg_of path in
  let r = Cc.run ~iterations:2 ~cluster pg in
  checkb "capped" true (r.Cc.trace.Trace.outcome = Trace.Max_supersteps);
  checkb "not yet converged" true (r.Cc.labels <> Cc.reference path)

(* --- Triangle count --- *)

let test_tr_matches_substrate () =
  let r = Tr.run ~cluster pg in
  checki "total" (Cutfit_graph.Triangles.count g) r.Tr.total;
  Alcotest.(check (array int)) "per vertex" (Cutfit_graph.Triangles.per_vertex g) r.Tr.per_vertex

let test_tr_k4 () =
  let k4 = Test_util.graph_of_edges ~n:4 [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3) ] in
  let r = Tr.run ~cluster (pg_of k4) in
  checki "K4" 4 r.Tr.total

let test_tr_reciprocated_edges_not_double_counted () =
  let tri =
    Test_util.graph_of_edges ~n:3 [ (0, 1); (1, 0); (1, 2); (2, 1); (2, 0); (0, 2) ]
  in
  let r = Tr.run ~cluster (pg_of tri) in
  checki "one triangle" 1 r.Tr.total

let test_tr_four_stages () =
  let r = Tr.run ~cluster pg in
  checki "four dataflow stages" 4 (List.length r.Tr.trace.Trace.supersteps)

let test_tr_shared_undirected_view () =
  let und = Graph.symmetrize g in
  let r = Tr.run ~undirected:und ~cluster pg in
  checki "same result" (Cutfit_graph.Triangles.count g) r.Tr.total

let prop_tr_matches_substrate =
  Test_util.qtest ~count:25 "TR = substrate count" ~print:Test_util.print_small_graph
    Test_util.small_graph_gen (fun sg ->
      let g = Test_util.build sg in
      if Graph.num_edges g = 0 then true
      else begin
        let r = Tr.run ~cluster (pg_of g) in
        r.Tr.total = Cutfit_graph.Triangles.count g
      end)

(* --- SSSP --- *)

let test_sssp_matches_bfs () =
  let landmarks = [| 3; 77 |] in
  let r = Sssp.run ~cluster ~landmarks pg in
  let expected = Sssp.reference g ~landmarks in
  Alcotest.(check bool) "distances" true (r.Sssp.distances = expected)

let test_sssp_landmark_zero_distance () =
  let r = Sssp.run ~cluster ~landmarks:[| 5 |] pg in
  checki "self distance" 0 r.Sssp.distances.(5).(0)

let test_sssp_unreachable_infinite () =
  let two = Test_util.graph_of_edges ~n:4 [ (0, 1); (2, 3) ] in
  let r = Sssp.run ~cluster ~landmarks:[| 1 |] (pg_of two) in
  checki "cross-component" max_int r.Sssp.distances.(2).(0)

let test_sssp_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Sssp.run: empty landmark set") (fun () ->
      ignore (Sssp.run ~cluster ~landmarks:[||] pg));
  Alcotest.check_raises "range" (Invalid_argument "Sssp.run: landmark out of range") (fun () ->
      ignore (Sssp.run ~cluster ~landmarks:[| 100000 |] pg))

let test_sssp_pick_landmarks () =
  let l = Sssp.pick_landmarks ~seed:3L ~count:5 g in
  checki "five" 5 (Array.length l);
  let tbl = Hashtbl.create 8 in
  Array.iter
    (fun v ->
      checkb "distinct" false (Hashtbl.mem tbl v);
      Hashtbl.add tbl v ())
    l

let test_sssp_long_path_ooms_small_driver () =
  (* Hundreds of supersteps against a small driver reproduces the
     paper's road-network OOM. *)
  let n = 400 in
  let path =
    Test_util.graph_of_edges ~n
      (List.concat_map (fun i -> [ (i, i + 1); (i + 1, i) ]) (List.init (n - 1) Fun.id))
  in
  let small_driver = { cluster with Cluster.driver_memory_bytes = 2.0e8 } in
  let r = Sssp.run ~cluster:small_driver ~landmarks:[| 0 |] (pg_of path) in
  checkb "OOM" true (r.Sssp.trace.Trace.outcome = Trace.Out_of_memory)

let prop_sssp_matches_bfs =
  Test_util.qtest ~count:25 "SSSP = BFS reference" ~print:Test_util.print_small_graph
    Test_util.small_graph_gen (fun sg ->
      let g = Test_util.build sg in
      if Graph.num_edges g = 0 then true
      else begin
        let r = Sssp.run ~cluster ~landmarks:[| 0; Graph.num_vertices g - 1 |] (pg_of g) in
        r.Sssp.distances = Sssp.reference g ~landmarks:[| 0; Graph.num_vertices g - 1 |]
      end)

let suite =
  [
    Alcotest.test_case "PR matches reference" `Quick test_pagerank_matches_reference;
    Alcotest.test_case "PR source keeps initial rank" `Quick test_pagerank_sink_keeps_initial;
    Alcotest.test_case "PR ranks positive" `Quick test_pagerank_ranks_positive;
    Alcotest.test_case "PR hub outranks" `Quick test_pagerank_hub_outranks_leaf;
    prop_pagerank_matches_reference;
    Alcotest.test_case "CC converges" `Quick test_cc_converges;
    Alcotest.test_case "CC iteration cap" `Quick test_cc_iteration_cap;
    Alcotest.test_case "TR matches substrate" `Quick test_tr_matches_substrate;
    Alcotest.test_case "TR K4" `Quick test_tr_k4;
    Alcotest.test_case "TR reciprocated edges" `Quick test_tr_reciprocated_edges_not_double_counted;
    Alcotest.test_case "TR four stages" `Quick test_tr_four_stages;
    Alcotest.test_case "TR shared undirected view" `Quick test_tr_shared_undirected_view;
    prop_tr_matches_substrate;
    Alcotest.test_case "SSSP matches BFS" `Quick test_sssp_matches_bfs;
    Alcotest.test_case "SSSP landmark zero" `Quick test_sssp_landmark_zero_distance;
    Alcotest.test_case "SSSP unreachable" `Quick test_sssp_unreachable_infinite;
    Alcotest.test_case "SSSP validation" `Quick test_sssp_validation;
    Alcotest.test_case "SSSP pick landmarks" `Quick test_sssp_pick_landmarks;
    Alcotest.test_case "SSSP long path OOM" `Quick test_sssp_long_path_ooms_small_driver;
    prop_sssp_matches_bfs;
  ]
