(* Shared helpers for the test suites. *)

module Graph = Cutfit_graph.Graph
module Edge_list = Cutfit_graph.Edge_list

let graph_of_edges ~n edges =
  let el = Edge_list.of_list edges in
  Graph.of_edge_list ~n el

(* A deterministic pseudo-random directed graph for property tests. *)
let random_graph ~seed ~n ~m =
  let rng = Cutfit_prng.Xoshiro.create seed in
  let el = Edge_list.create ~capacity:m () in
  for _ = 1 to m do
    let s = Cutfit_prng.Xoshiro.next_int rng n in
    let d = Cutfit_prng.Xoshiro.next_int rng n in
    if s <> d then Edge_list.add el ~src:s ~dst:d
  done;
  Graph.of_edge_list ~n (Edge_list.dedup el)

(* QCheck generator producing (n, edge list) pairs for small graphs. *)
let small_graph_gen =
  let open QCheck2.Gen in
  int_range 2 40 >>= fun n ->
  int_range 0 120 >>= fun m ->
  list_repeat m (pair (int_range 0 (n - 1)) (int_range 0 (n - 1))) >|= fun edges ->
  (n, List.filter (fun (s, d) -> s <> d) edges)

let print_small_graph (n, edges) =
  Printf.sprintf "n=%d edges=[%s]" n
    (String.concat ";" (List.map (fun (s, d) -> Printf.sprintf "(%d,%d)" s d) edges))

let build (n, edges) =
  let el = Edge_list.of_list edges in
  Graph.of_edge_list ~n (Edge_list.dedup el)

(* Tiny cluster configuration so engine tests run on graphs of tens of
   vertices with a handful of partitions. *)
let tiny_cluster ?(num_partitions = 8) () =
  {
    Cutfit_bsp.Cluster.config_i with
    Cutfit_bsp.Cluster.name = "(test)";
    num_partitions;
    executors = 2;
    cores_per_executor = 4;
  }

let qtest ?(count = 100) name ?print gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name ?print gen prop)
