test/test_prng.ml: Alcotest Array Cutfit_prng Fun Hashtbl Int64 Printf QCheck2 Test_util
