test/test_core.ml: Alcotest Array Cutfit Float List Test_util
