test/test_algo.ml: Alcotest Array Cutfit_algo Cutfit_bsp Cutfit_graph Cutfit_partition Fun Hashtbl List Test_util
