test/test_util.ml: Cutfit_bsp Cutfit_graph Cutfit_prng List Printf QCheck2 QCheck_alcotest String
