test/test_experiments.ml: Alcotest Buffer Cutfit_bsp Cutfit_experiments Cutfit_gen Cutfit_partition Filename Float Format Fun Lazy List String Sys
