test/test_partition.ml: Alcotest Array Cutfit_graph Cutfit_partition List Test_util
