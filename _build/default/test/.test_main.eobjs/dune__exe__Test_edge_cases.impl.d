test/test_edge_cases.ml: Alcotest Array Cutfit_algo Cutfit_bsp Cutfit_experiments Cutfit_graph Cutfit_partition List Test_util
