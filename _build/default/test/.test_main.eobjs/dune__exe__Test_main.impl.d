test/test_main.ml: Alcotest Test_algo Test_bsp Test_core Test_edge_cases Test_experiments Test_gen Test_graph Test_partition Test_prng Test_stats
