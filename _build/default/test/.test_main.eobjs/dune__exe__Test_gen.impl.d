test/test_gen.ml: Alcotest Cutfit_gen Cutfit_graph List
