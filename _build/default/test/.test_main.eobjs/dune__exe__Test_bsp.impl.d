test/test_bsp.ml: Alcotest Array Cutfit_algo Cutfit_bsp Cutfit_graph Cutfit_partition Format Fun List String Test_util
