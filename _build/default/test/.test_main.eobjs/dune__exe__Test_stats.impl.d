test/test_stats.ml: Alcotest Array Cutfit_prng Cutfit_stats List Printf QCheck2 String Test_util
