test/test_graph.ml: Alcotest Array Cutfit_graph Filename Fun List Sys Test_util Unix
