(** The evaluation run matrix.

    One measurement = one (dataset, partitioner, cluster configuration,
    algorithm) cell: the static partitioning metrics of that assignment
    plus the simulated execution time of that algorithm on it. The
    matrix behind the paper's Figures 3–6 is 9 datasets x 6 partitioners
    x 2 granularities x 4 algorithms. *)

type algo = Pagerank | Connected_components | Triangle_count | Shortest_paths

val all_algos : algo list
val algo_name : algo -> string
(** Paper abbreviation: "PR", "CC", "TR", "SSSP". *)

val algo_of_string : string -> algo option

type measurement = {
  dataset : Cutfit_gen.Datasets.spec;
  partitioner : string;  (** partitioner name *)
  config : string;  (** cluster configuration name, "(i)" ... "(iv)" *)
  algo : algo;
  metrics : Cutfit_partition.Metrics.t;
  time_s : float;  (** simulated job time (NaN when the run OOMed) *)
  completed : bool;
  supersteps : int;
  network_s : float;
  compute_s : float;
}

type options = {
  datasets : Cutfit_gen.Datasets.spec list;
  partitioners : Cutfit_partition.Partitioner.t list;
  clusters : Cutfit_bsp.Cluster.t list;
  algos : algo list;
  cost : Cutfit_bsp.Cost_model.t;
  sssp_sources : int;  (** paper uses 5 random sources per dataset *)
  iterations : int;  (** PR/CC iteration cap; paper uses 10 *)
  progress : bool;  (** log per-cell progress to stderr *)
}

val default_options : options
(** Full paper matrix: all datasets, the six strategies, configs (i) and
    (ii), all four algorithms, 5 SSSP sources, 10 iterations. *)

val scale_of : Cutfit_gen.Datasets.spec -> Cutfit_graph.Graph.t -> float
(** Work-rescaling factor: original edge count over analogue edge
    count. *)

val sssp_sources_of : Cutfit_gen.Datasets.spec -> count:int -> Cutfit_graph.Graph.t -> int array
(** The dataset's fixed random SSSP sources (same across partitioners
    and configurations, as in the paper). *)

val run : options -> measurement list
(** Execute the matrix. Deterministic; the partitioned graph is built
    once per (dataset, partitioner, granularity) and shared across the
    algorithms. *)

(* lint: unused-export -- convenience accessor for ad hoc analysis *)
val time_or_nan : measurement -> float

val filter :
  ?algo:algo -> ?config:string -> ?dataset:string -> measurement list -> measurement list
