module Metrics = Cutfit_partition.Metrics

let header =
  String.concat ","
    [
      "dataset"; "partitioner"; "config"; "algorithm"; "balance"; "non_cut"; "cut"; "comm_cost";
      "part_stdev"; "vertices_to_same"; "vertices_to_other"; "replication_factor"; "time_s";
      "network_s"; "compute_s"; "supersteps"; "completed";
    ]

let row m =
  let metrics = m.Run.metrics in
  String.concat ","
    [
      m.Run.dataset.Cutfit_gen.Datasets.name;
      m.Run.partitioner;
      (* Strip parentheses so the field needs no quoting. *)
      String.concat "" (String.split_on_char '(' (String.concat "" (String.split_on_char ')' m.Run.config)));
      Run.algo_name m.Run.algo;
      Printf.sprintf "%.4f" metrics.Metrics.balance;
      string_of_int metrics.Metrics.non_cut;
      string_of_int metrics.Metrics.cut;
      string_of_int metrics.Metrics.comm_cost;
      Printf.sprintf "%.2f" metrics.Metrics.part_stdev;
      string_of_int metrics.Metrics.vertices_to_same;
      string_of_int metrics.Metrics.vertices_to_other;
      Printf.sprintf "%.4f" metrics.Metrics.replication_factor;
      (if m.Run.completed then Printf.sprintf "%.4f" m.Run.time_s else "");
      Printf.sprintf "%.4f" m.Run.network_s;
      Printf.sprintf "%.4f" m.Run.compute_s;
      string_of_int m.Run.supersteps;
      string_of_bool m.Run.completed;
    ]

let to_csv ms = String.concat "\n" (header :: List.map row ms) ^ "\n"

let save path ms =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_csv ms))

module Json = Cutfit_obs.Json

let json_of_measurements ms =
  Json.List
    (List.map
       (fun m ->
         let metrics = m.Run.metrics in
         Json.Obj
           [
             ("dataset", Json.String m.Run.dataset.Cutfit_gen.Datasets.name);
             ("partitioner", Json.String m.Run.partitioner);
             ("config", Json.String m.Run.config);
             ("algorithm", Json.String (Run.algo_name m.Run.algo));
             ("balance", Json.Float metrics.Metrics.balance);
             ("non_cut", Json.Int metrics.Metrics.non_cut);
             ("cut", Json.Int metrics.Metrics.cut);
             ("comm_cost", Json.Int metrics.Metrics.comm_cost);
             ("part_stdev", Json.Float metrics.Metrics.part_stdev);
             ("vertices_to_same", Json.Int metrics.Metrics.vertices_to_same);
             ("vertices_to_other", Json.Int metrics.Metrics.vertices_to_other);
             ("replication_factor", Json.Float metrics.Metrics.replication_factor);
             ("time_s", if m.Run.completed then Json.Float m.Run.time_s else Json.Null);
             ("network_s", Json.Float m.Run.network_s);
             ("compute_s", Json.Float m.Run.compute_s);
             ("supersteps", Json.Int m.Run.supersteps);
             ("completed", Json.Bool m.Run.completed);
           ])
       ms)

let write_json path json =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string json);
      output_char oc '\n')
