(** The paper's quantitative claims, as checkable expectations.

    Each check compares a measured shape (correlation coefficient,
    granularity effect, OOM behaviour, infrastructure speedup) with the
    paper's reported value under a tolerance, and renders a PASS /
    DEVIATION line. Absolute times are never compared — the substrate is
    a simulator and the datasets are scaled analogues. *)

type verdict = { name : string; expected : string; measured : string; pass : bool }

val pp_verdict : Format.formatter -> verdict -> unit

(* lint: unused-export -- fine-grained entry kept alongside check_all *)
val check_correlations : Run.measurement list -> verdict list
(** Figures 3–6 headline coefficients:
    PR/CommCost 95/96%, CC/CommCost 92/94%, TR/Cut 95/97% with
    TR/CommCost low (43/34%), SSSP/CommCost 80/86%. *)

(* lint: unused-export -- fine-grained entry kept alongside check_all *)
val check_granularity : Run.measurement list -> verdict list
(** PR slows down at finer grain; CC speeds up on the big datasets (up
    to ~22%); TR speeds up consistently (up to ~40% on Orkut). *)

(* lint: unused-export -- fine-grained entry kept alongside check_all *)
val check_sssp_oom : Run.measurement list -> verdict list
(** The road networks fail with OOM under SSSP; social datasets
    complete. *)

val check_all : Run.measurement list -> verdict list

val summary : Format.formatter -> verdict list -> unit
(** Render all verdicts plus a pass count. *)
