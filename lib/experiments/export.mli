(** CSV export of the evaluation matrix.

    One row per (dataset, partitioner, configuration, algorithm) cell
    with the five paper metrics and the simulated time decomposition,
    for analysis outside the harness (spreadsheets, R, gnuplot). *)

val header : string
(** The CSV header line. *)

val to_csv : Run.measurement list -> string
(** Render all measurements; OOMed cells carry an empty time and
    [completed=false]. *)

val save : string -> Run.measurement list -> unit
(** Write [to_csv] to a file. *)

val json_of_measurements : Run.measurement list -> Cutfit_obs.Json.t
(** The same matrix as a JSON array of objects (one per cell, same
    fields as the CSV), for the machine-readable BENCH_* artifacts that
    track the perf trajectory across revisions. *)

val write_json : string -> Cutfit_obs.Json.t -> unit
(** Pretty-stable single-line JSON to a file (the {!Cutfit_obs.Json}
    printer: 17-significant-digit floats, so re-parsing is bit-exact),
    with a trailing newline. *)
