module Graph = Cutfit_graph.Graph
module Datasets = Cutfit_gen.Datasets
module Partitioner = Cutfit_partition.Partitioner
module Metrics = Cutfit_partition.Metrics
module Cluster = Cutfit_bsp.Cluster
module Cost_model = Cutfit_bsp.Cost_model
module Pgraph = Cutfit_bsp.Pgraph
module Trace = Cutfit_bsp.Trace

type algo = Pagerank | Connected_components | Triangle_count | Shortest_paths

let all_algos = [ Pagerank; Connected_components; Triangle_count; Shortest_paths ]

let algo_name = function
  | Pagerank -> "PR"
  | Connected_components -> "CC"
  | Triangle_count -> "TR"
  | Shortest_paths -> "SSSP"

let algo_of_string s =
  match String.uppercase_ascii s with
  | "PR" | "PAGERANK" -> Some Pagerank
  | "CC" -> Some Connected_components
  | "TR" | "TRIANGLES" -> Some Triangle_count
  | "SSSP" -> Some Shortest_paths
  | _ -> None

type measurement = {
  dataset : Datasets.spec;
  partitioner : string;
  config : string;
  algo : algo;
  metrics : Metrics.t;
  time_s : float;
  completed : bool;
  supersteps : int;
  network_s : float;
  compute_s : float;
}

type options = {
  datasets : Datasets.spec list;
  partitioners : Partitioner.t list;
  clusters : Cluster.t list;
  algos : algo list;
  cost : Cost_model.t;
  sssp_sources : int;
  iterations : int;
  progress : bool;
}

let default_options =
  {
    datasets = Datasets.all;
    partitioners = Partitioner.paper_six;
    clusters = [ Cluster.config_i; Cluster.config_ii ];
    algos = all_algos;
    cost = Cost_model.default;
    sssp_sources = 5;
    iterations = 10;
    progress = true;
  }

let scale_of spec g =
  float_of_int spec.Datasets.paper_edges /. float_of_int (Graph.num_edges g)

let sssp_sources_of spec ~count g =
  (* Seed derived from the dataset name so sources are stable across the
     whole matrix, as the paper holds them fixed per dataset. *)
  let seed =
    String.fold_left (fun acc c -> Int64.add (Int64.mul acc 31L) (Int64.of_int (Char.code c)))
      7L spec.Datasets.name
  in
  Cutfit_algo.Sssp.pick_landmarks ~seed ~count g

let of_trace ~spec ~pname ~cluster ~algo ~metrics (trace : Trace.t) =
  let completed = Trace.completed trace in
  {
    dataset = spec;
    partitioner = pname;
    config = cluster.Cluster.name;
    algo;
    metrics;
    time_s = (if completed then trace.Trace.total_s else Float.nan);
    completed;
    supersteps = Trace.num_supersteps trace;
    network_s = Trace.total_network_s trace;
    compute_s = Trace.total_compute_s trace;
  }

let run opts =
  let results = ref [] in
  let log fmt =
    (* lint: no-print — opt-in progress output, off by default. *)
    if opts.progress then Format.eprintf fmt else Format.ifprintf Format.err_formatter fmt
  in
  List.iter
    (fun spec ->
      let g = Datasets.generate spec in
      let scale = scale_of spec g in
      let und =
        if List.mem Triangle_count opts.algos then Some (Graph.symmetrize g) else None
      in
      let sources =
        if List.mem Shortest_paths opts.algos then
          sssp_sources_of spec ~count:opts.sssp_sources g
        else [||]
      in
      List.iter
        (fun cluster ->
          List.iter
            (fun partitioner ->
              let pname = Partitioner.name partitioner in
              log "[run] %s %s %s@." spec.Datasets.name cluster.Cluster.name pname;
              let assignment =
                Partitioner.assign partitioner ~num_partitions:cluster.Cluster.num_partitions g
              in
              let pg = Pgraph.build g ~num_partitions:cluster.Cluster.num_partitions assignment in
              let metrics = Pgraph.metrics pg in
              let emit m = results := m :: !results in
              List.iter
                (fun algo ->
                  match algo with
                  | Pagerank ->
                      let r =
                        Cutfit_algo.Pagerank.run ~iterations:opts.iterations ~scale
                          ~cost:opts.cost ~cluster pg
                      in
                      emit
                        (of_trace ~spec ~pname ~cluster ~algo ~metrics
                           r.Cutfit_algo.Pagerank.trace)
                  | Connected_components ->
                      let r =
                        Cutfit_algo.Connected_components.run ~iterations:opts.iterations ~scale
                          ~cost:opts.cost ~cluster pg
                      in
                      emit
                        (of_trace ~spec ~pname ~cluster ~algo ~metrics
                           r.Cutfit_algo.Connected_components.trace)
                  | Triangle_count ->
                      let r =
                        Cutfit_algo.Triangle_count.run ~scale ~cost:opts.cost ?undirected:und
                          ~cluster pg
                      in
                      emit
                        (of_trace ~spec ~pname ~cluster ~algo ~metrics
                           r.Cutfit_algo.Triangle_count.trace)
                  | Shortest_paths ->
                      (* Average the per-source job times; one OOM marks
                         the whole cell failed, as in the paper. *)
                      let total = ref 0.0
                      and all_ok = ref true
                      and steps = ref 0
                      and net = ref 0.0
                      and cmp = ref 0.0 in
                      Array.iter
                        (fun source ->
                          let r =
                            Cutfit_algo.Sssp.run ~scale ~cost:opts.cost ~cluster
                              ~landmarks:[| source |] pg
                          in
                          let t = r.Cutfit_algo.Sssp.trace in
                          if not (Trace.completed t) then all_ok := false;
                          total := !total +. t.Trace.total_s;
                          steps := max !steps (Trace.num_supersteps t);
                          net := !net +. Trace.total_network_s t;
                          cmp := !cmp +. Trace.total_compute_s t)
                        sources;
                      let k = float_of_int (max 1 (Array.length sources)) in
                      emit
                        {
                          dataset = spec;
                          partitioner = pname;
                          config = cluster.Cluster.name;
                          algo;
                          metrics;
                          time_s = (if !all_ok then !total /. k else Float.nan);
                          completed = !all_ok;
                          supersteps = !steps;
                          network_s = !net /. k;
                          compute_s = !cmp /. k;
                        })
                opts.algos)
            opts.partitioners)
        opts.clusters)
    opts.datasets;
  List.rev !results

let time_or_nan m = m.time_s

let filter ?algo ?config ?dataset ms =
  List.filter
    (fun m ->
      (match algo with Some a -> m.algo = a | None -> true)
      && (match config with Some c -> m.config = c | None -> true)
      && match dataset with Some d -> m.dataset.Datasets.name = d | None -> true)
    ms
