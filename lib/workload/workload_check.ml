module Violation = Cutfit_check.Violation
module Determinism = Cutfit_check.Determinism
module Event = Cutfit_obs.Event

let suite = "workload"

(* The outcome vocabulary partitions cleanly: a failed record carries
   exactly one of the failing outcomes, a successful record one of the
   run outcomes that produced a result. *)
let failing_outcomes = [ "aborted"; "error"; "invalid"; "shed"; "deadline"; "preempted" ]
let ok_outcomes = [ "completed"; "max-supersteps"; "out-of-memory" ]

let close a b =
  let scale = Float.max 1.0 (Float.max (Float.abs a) (Float.abs b)) in
  Float.abs (a -. b) <= 1e-6 *. scale

let cache_accounting (s : Cache.stats) =
  let v = ref [] in
  let add rule fmt = Format.kasprintf (fun detail -> v := Violation.v ~suite ~rule "%s" detail :: !v) fmt in
  let non_negative name n = if n < 0 then add "cache-negative" "%s is negative (%d)" name n in
  non_negative "lookups" s.Cache.lookups;
  non_negative "hits" s.Cache.hits;
  non_negative "misses" s.Cache.misses;
  non_negative "insertions" s.Cache.insertions;
  non_negative "evictions" s.Cache.evictions;
  non_negative "invalidations" s.Cache.invalidations;
  non_negative "rejections" s.Cache.rejections;
  non_negative "entries" s.Cache.entries;
  if s.Cache.lookups <> s.Cache.hits + s.Cache.misses then
    add "cache-lookup-split" "lookups (%d) <> hits (%d) + misses (%d)" s.Cache.lookups s.Cache.hits
      s.Cache.misses;
  if s.Cache.entries <> s.Cache.insertions - s.Cache.evictions - s.Cache.invalidations then
    add "cache-entry-conservation"
      "entries (%d) <> insertions (%d) - evictions (%d) - invalidations (%d)" s.Cache.entries
      s.Cache.insertions s.Cache.evictions s.Cache.invalidations;
  if
    not
      (close s.Cache.bytes_in_cache
         (s.Cache.bytes_inserted -. s.Cache.bytes_evicted -. s.Cache.bytes_invalidated))
  then
    add "cache-byte-conservation"
      "bytes in cache (%.0f) <> bytes inserted (%.0f) - evicted (%.0f) - invalidated (%.0f)"
      s.Cache.bytes_in_cache s.Cache.bytes_inserted s.Cache.bytes_evicted
      s.Cache.bytes_invalidated;
  if s.Cache.bytes_in_cache < 0.0 then
    add "cache-negative" "bytes_in_cache is negative (%.0f)" s.Cache.bytes_in_cache;
  if s.Cache.bytes_in_cache > s.Cache.budget_bytes && s.Cache.budget_bytes > 0.0 then
    add "cache-over-budget" "bytes in cache (%.0f) exceed the budget (%.0f)"
      s.Cache.bytes_in_cache s.Cache.budget_bytes;
  List.rev !v

let record_checks (records : Engine.job_record list) =
  let v = ref [] in
  let add rule fmt = Format.kasprintf (fun detail -> v := Violation.v ~suite ~rule "%s" detail :: !v) fmt in
  let last_id = ref (-1) in
  List.iter
    (fun (r : Engine.job_record) ->
      let id = r.Engine.job.Job.id in
      if id <= !last_id then add "record-order" "job %d out of order after job %d" id !last_id;
      last_id := id;
      if r.Engine.start_s < r.Engine.job.Job.arrival_s then
        add "job-time-travel" "job %d started (%.6f) before it arrived (%.6f)" id r.Engine.start_s
          r.Engine.job.Job.arrival_s;
      if r.Engine.queue_s <> r.Engine.start_s -. r.Engine.job.Job.arrival_s then
        add "job-queue-decomposition" "job %d queue_s (%.6f) <> start - arrival (%.6f)" id
          r.Engine.queue_s
          (r.Engine.start_s -. r.Engine.job.Job.arrival_s);
      if r.Engine.finish_s <> r.Engine.start_s +. r.Engine.partition_s +. r.Engine.exec_s then
        add "job-cost-decomposition"
          "job %d finish_s (%.6f) <> start + partition + exec (%.6f)" id r.Engine.finish_s
          (r.Engine.start_s +. r.Engine.partition_s +. r.Engine.exec_s);
      if r.Engine.cache_hit && r.Engine.partition_s <> 0.0 then
        add "job-hit-paid-build" "job %d hit the cache yet paid %.6f s of partitioning" id
          r.Engine.partition_s;
      if r.Engine.partition_s < 0.0 || r.Engine.exec_s < 0.0 then
        add "job-negative-cost" "job %d has a negative cost component (partition %.6f, exec %.6f)"
          id r.Engine.partition_s r.Engine.exec_s;
      if r.Engine.attempts < 0 || r.Engine.recoveries < 0 || r.Engine.recovery_s < 0.0 then
        add "job-negative-fault-counters"
          "job %d has negative fault counters (attempts %d, recoveries %d, recovery_s %.6f)" id
          r.Engine.attempts r.Engine.recoveries r.Engine.recovery_s;
      if r.Engine.preemptions < 0 then
        add "job-negative-fault-counters" "job %d has a negative preemption count (%d)" id
          r.Engine.preemptions;
      if r.Engine.preemptions > r.Engine.attempts then
        add "job-preempt-bound" "job %d counts %d preemptions over %d attempts" id
          r.Engine.preemptions r.Engine.attempts;
      if r.Engine.speculations < 0 then
        add "job-negative-fault-counters" "job %d has a negative speculation count (%d)" id
          r.Engine.speculations;
      if r.Engine.attempts = 0 then begin
        (* A zero-attempt job never ran: no costs, no cache traffic,
           and it must be marked failed (invalid at admission, shed by
           admission control, or culled from the queue at its
           deadline). *)
        if
          (not r.Engine.failed)
          || r.Engine.cache_hit
          || r.Engine.partition_s <> 0.0
          || r.Engine.exec_s <> 0.0
          || r.Engine.recoveries <> 0
          || r.Engine.speculations <> 0
        then add "job-invalid-shape" "zero-attempt job %d carries run artifacts" id
      end;
      if r.Engine.failed && not (List.mem r.Engine.outcome failing_outcomes) then
        add "job-failed-outcome" "job %d is marked failed yet its outcome is %S" id
          r.Engine.outcome;
      if (not r.Engine.failed) && not (List.mem r.Engine.outcome ok_outcomes) then
        add "job-ok-outcome" "job %d is not failed yet its outcome is %S" id r.Engine.outcome;
      if String.equal r.Engine.outcome "shed" then begin
        (* A shed job was refused at its admission instant: it carries
           its arrival bookkeeping but no run costs at all. *)
        if r.Engine.finish_s <> r.Engine.start_s then
          add "job-shed-shape" "shed job %d accrued run time (start %.6f, finish %.6f)" id
            r.Engine.start_s r.Engine.finish_s;
        if r.Engine.cache_hit then add "job-shed-shape" "shed job %d claims a cache hit" id
      end;
      (match (r.Engine.outcome, r.Engine.deadline_s) with
      | "deadline", None ->
          add "job-deadline-shape" "job %d was deadline-cancelled without a recorded deadline" id
      | "deadline", Some d ->
          (* Whether culled from the queue or truncated mid-run, the
             cancel pins the record's finish at the deadline instant
             (unless the job was already past it when first seen). *)
          if r.Engine.finish_s > d && not (close r.Engine.finish_s d) then
            add "job-deadline-shape" "job %d finished (%.6f) past its deadline (%.6f)" id
              r.Engine.finish_s d
      | _, Some d ->
          if (not r.Engine.failed) && r.Engine.finish_s > d && not (close r.Engine.finish_s d)
          then
            add "job-deadline-respected"
              "job %d completed (%.6f) past its SLO deadline (%.6f) without being cancelled" id
              r.Engine.finish_s d
      | _, None -> ()))
    records;
  List.rev !v

(* Breaker trips are a per-(tenant, dataset, strategy) state machine:
   the first trip opens, a close only ever follows an open, opens carry
   the failure streak that tripped them and closes a cleared streak.
   Running the machine on the tenant-scoped key is itself the breaker
   isolation law: a close in one tenant's namespace never pairs with an
   open in another's. The list is in the engine's decision order — with
   concurrent slots an attempt processed later can finish earlier, so
   the stamped instants are not globally sorted and carry no ordering
   law. *)
let breaker_checks (r : Engine.report) =
  let v = ref [] in
  let add rule fmt = Format.kasprintf (fun detail -> v := Violation.v ~suite ~rule "%s" detail :: !v) fmt in
  (match (r.Engine.breaker_k, r.Engine.breaker_trips) with
  | None, [] -> ()
  | None, trips ->
      add "breaker-unarmed" "%d breaker trips recorded with no breaker armed" (List.length trips)
  | Some k, trips ->
      let states : (string, bool) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (fun (t : Engine.breaker_trip) ->
          let key =
            Engine.breaker_scope ~tenant:t.Engine.trip_tenant ~dataset:t.Engine.trip_dataset
            ^ "/" ^ t.Engine.trip_strategy
          in
          let was_open =
            match Hashtbl.find_opt states key with Some b -> b | None -> false
          in
          if t.Engine.opened then begin
            if t.Engine.trip_failures < k then
              add "breaker-premature" "breaker %s opened after only %d failures (threshold %d)"
                key t.Engine.trip_failures k
          end
          else begin
            if not was_open then
              add "breaker-close-without-open" "breaker %s closed while already closed" key;
            if t.Engine.trip_failures <> 0 then
              add "breaker-dirty-close" "breaker %s closed with %d residual failures" key
                t.Engine.trip_failures
          end;
          Hashtbl.replace states key t.Engine.opened)
        trips);
  List.rev !v

(* Mutation batches are priced decisions over the cache's resident
   entries: both prices are modeled times (nonnegative), a refresh can
   only restore entries the batch itself dropped, and every drop is
   counted by the cache as an invalidation. *)
let mutation_checks (r : Engine.report) =
  let v = ref [] in
  let add rule fmt = Format.kasprintf (fun detail -> v := Violation.v ~suite ~rule "%s" detail :: !v) fmt in
  if r.Engine.mutation_spec = None && r.Engine.mutations <> [] then
    add "mutation-unarmed" "%d mutation batches recorded with no mutation spec"
      (List.length r.Engine.mutations);
  List.iter
    (fun (m : Engine.mutation_record) ->
      let where = Printf.sprintf "batch %d on %s" m.Engine.mut_batch m.Engine.mut_dataset in
      if m.Engine.mut_refresh_s < 0.0 || m.Engine.mut_rebuild_s < 0.0 then
        add "mutation-price" "%s priced negative (refresh %.6f, rebuild %.6f)" where
          m.Engine.mut_refresh_s m.Engine.mut_rebuild_s;
      if not (List.mem m.Engine.mut_choice [ "refresh"; "rebuild" ]) then
        add "mutation-choice" "%s chose %S" where m.Engine.mut_choice;
      if m.Engine.mut_refreshed_entries > m.Engine.mut_dropped_entries then
        add "mutation-refresh-bound" "%s refreshed %d entries but dropped only %d" where
          m.Engine.mut_refreshed_entries m.Engine.mut_dropped_entries;
      if String.equal m.Engine.mut_choice "rebuild" && m.Engine.mut_refreshed_entries <> 0 then
        add "mutation-rebuild-cold" "%s rebuilt yet refreshed %d entries" where
          m.Engine.mut_refreshed_entries)
    r.Engine.mutations;
  let dropped =
    List.fold_left (fun acc (m : Engine.mutation_record) -> acc + m.Engine.mut_dropped_entries) 0
      r.Engine.mutations
  in
  if r.Engine.cache.Cache.invalidations < dropped then
    add "mutation-invalidation-count" "cache counts %d invalidations but batches dropped %d entries"
      r.Engine.cache.Cache.invalidations dropped;
  List.rev !v

(* Elasticity and tenancy laws. Preemption is involuntary, so it never
   consumes the retry budget; membership counters reconcile with the
   records; and the engine's two independently recounted invariants —
   no hit served from a stale placement, no fair-share breach — must
   both sit at zero. *)
let elastic_checks (r : Engine.report) =
  let v = ref [] in
  let add rule fmt = Format.kasprintf (fun detail -> v := Violation.v ~suite ~rule "%s" detail :: !v) fmt in
  if r.Engine.joins < 0 || r.Engine.leaves < 0 || r.Engine.preemptions < 0 then
    add "elastic-negative" "negative scale counters (joins %d, leaves %d, preemptions %d)"
      r.Engine.joins r.Engine.leaves r.Engine.preemptions;
  if
    r.Engine.scale_spec = None
    && (r.Engine.joins <> 0 || r.Engine.leaves <> 0 || r.Engine.preemptions <> 0)
  then
    add "elastic-unarmed" "%d join(s), %d leave(s), %d preemption(s) with no scale spec"
      r.Engine.joins r.Engine.leaves r.Engine.preemptions;
  let recorded_preempts =
    List.fold_left
      (fun acc (x : Engine.job_record) -> acc + x.Engine.preemptions)
      0 r.Engine.records
  in
  if recorded_preempts <> r.Engine.preemptions then
    add "elastic-preempt-conservation"
      "records carry %d preemptions but the engine applied %d" recorded_preempts
      r.Engine.preemptions;
  (* The zero-retry-consumed rule: only voluntary failures draw on the
     budget, so a record may exceed [max_retries + 1] attempts by
     exactly its preemption count — never further. *)
  List.iter
    (fun (x : Engine.job_record) ->
      if x.Engine.attempts - x.Engine.preemptions > r.Engine.max_retries + 1 then
        add "job-retry-budget"
          "job %d launched %d attempts with %d preemptions against a budget of %d"
          x.Engine.job.Job.id x.Engine.attempts x.Engine.preemptions
          (r.Engine.max_retries + 1))
    r.Engine.records;
  if r.Engine.stale_placement_hits <> 0 then
    add "stale-placement" "%d cache hit(s) served from entries placed on departed executors"
      r.Engine.stale_placement_hits;
  if r.Engine.fairness_violations <> 0 then
    add "fairness-share" "%d launch(es) served a tenant ahead of a smaller weighted deficit"
      r.Engine.fairness_violations;
  List.rev !v

let aggregate_checks (r : Engine.report) =
  let v = ref [] in
  let add rule fmt = Format.kasprintf (fun detail -> v := Violation.v ~suite ~rule "%s" detail :: !v) fmt in
  let fold f init = List.fold_left f init r.Engine.records in
  let makespan = fold (fun acc x -> Float.max acc x.Engine.finish_s) 0.0 in
  if r.Engine.makespan_s <> makespan then
    add "aggregate-makespan" "makespan_s (%.6f) <> max finish over records (%.6f)"
      r.Engine.makespan_s makespan;
  let q = fold (fun acc x -> acc +. x.Engine.queue_s) 0.0 in
  if r.Engine.total_queue_s <> q then
    add "aggregate-queue" "total_queue_s (%.6f) <> sum over records (%.6f)" r.Engine.total_queue_s q;
  let p = fold (fun acc x -> acc +. x.Engine.partition_s) 0.0 in
  if r.Engine.total_partition_s <> p then
    add "aggregate-partition" "total_partition_s (%.6f) <> sum over records (%.6f)"
      r.Engine.total_partition_s p;
  let e = fold (fun acc x -> acc +. x.Engine.exec_s) 0.0 in
  if r.Engine.total_exec_s <> e then
    add "aggregate-exec" "total_exec_s (%.6f) <> sum over records (%.6f)" r.Engine.total_exec_s e;
  let attempts = fold (fun acc x -> acc + x.Engine.attempts) 0 in
  if r.Engine.cache.Cache.lookups <> attempts then
    add "aggregate-lookups" "cache lookups (%d) <> attempts launched (%d): one lookup per attempt"
      r.Engine.cache.Cache.lookups attempts;
  (* Only the final attempt's hit flag survives in the record, so the
     stats may count more hits than the records show — never fewer. *)
  let hits = List.length (List.filter (fun x -> x.Engine.cache_hit) r.Engine.records) in
  if r.Engine.cache.Cache.hits < hits then
    add "aggregate-hits" "cache hits (%d) < hit records (%d)" r.Engine.cache.Cache.hits hits;
  let retries = fold (fun acc x -> acc + max 0 (x.Engine.attempts - 1)) 0 in
  let outcome name = List.length (List.filter (fun x -> String.equal x.Engine.outcome name) r.Engine.records) in
  (* A requeued job later culled at its deadline keeps the attempts it
     actually launched, so the recount is a floor once deadlines can
     interrupt the retry chain; without them it is exact. *)
  if outcome "deadline" = 0 then begin
    if r.Engine.retries <> retries then
      add "aggregate-retries" "retries (%d) <> sum of extra attempts over records (%d)"
        r.Engine.retries retries
  end
  else if r.Engine.retries < retries then
    add "aggregate-retries" "retries (%d) < sum of extra attempts over records (%d)"
      r.Engine.retries retries;
  (* Every submitted job lands in exactly one bucket: a successful run
     outcome, or one of the failing outcomes (abort, structural error,
     invalid at admission, shed by admission control, SLO cancel). *)
  let bucketed =
    List.fold_left (fun acc name -> acc + outcome name) 0 (failing_outcomes @ ok_outcomes)
  in
  let n = List.length r.Engine.records in
  if bucketed <> n then
    add "aggregate-outcome-conservation" "%d records bucket into %d known outcomes" n bucketed;
  let failed = List.length (List.filter (fun x -> x.Engine.failed) r.Engine.records) in
  if List.length r.Engine.failures <> failed then
    add "aggregate-failures" "%d failure records for %d failed job records"
      (List.length r.Engine.failures) failed;
  List.iter
    (fun (f : Engine.job_failure) ->
      match
        List.find_opt
          (fun (x : Engine.job_record) -> x.Engine.job.Job.id = f.Engine.job_id)
          r.Engine.records
      with
      | Some x when x.Engine.failed -> ()
      | Some _ -> add "failure-orphan" "failure for job %d whose record is not failed" f.Engine.job_id
      | None -> add "failure-orphan" "failure for unknown job %d" f.Engine.job_id)
    r.Engine.failures;
  List.rev !v

let event_checks (r : Engine.report) events =
  let v = ref [] in
  let add rule fmt = Format.kasprintf (fun detail -> v := Violation.v ~suite ~rule "%s" detail :: !v) fmt in
  let count f = List.length (List.filter f events) in
  let n = List.length r.Engine.records in
  let attempts =
    List.fold_left (fun acc (x : Engine.job_record) -> acc + x.Engine.attempts) 0 r.Engine.records
  in
  let submits = count (function Event.Job_submit _ -> true | _ -> false) in
  if submits <> n then add "event-submits" "%d Job_submit events for %d records" submits n;
  let starts = count (function Event.Job_start _ -> true | _ -> false) in
  if starts <> attempts then
    add "event-starts" "%d Job_start events for %d attempts" starts attempts;
  let ends = count (function Event.Job_end _ -> true | _ -> false) in
  if ends <> attempts then add "event-ends" "%d Job_end events for %d attempts" ends attempts;
  let retry_events = count (function Event.Job_retry _ -> true | _ -> false) in
  if retry_events <> r.Engine.retries then
    add "event-retries" "%d Job_retry events for %d counted retries" retry_events r.Engine.retries;
  let outcome name =
    List.length (List.filter (fun (x : Engine.job_record) -> String.equal x.Engine.outcome name) r.Engine.records)
  in
  let sheds = count (function Event.Job_shed _ -> true | _ -> false) in
  if sheds <> outcome "shed" then
    add "event-sheds" "%d Job_shed events for %d shed records" sheds (outcome "shed");
  let cancels = count (function Event.Deadline_exceeded _ -> true | _ -> false) in
  if cancels <> outcome "deadline" then
    add "event-deadlines" "%d Deadline_exceeded events for %d deadline-cancelled records" cancels
      (outcome "deadline");
  (* Breaker events are the trip list, narrated: same transitions, same
     order, same fields. *)
  let opens = List.filter_map (function Event.Breaker_open b -> Some b | _ -> None) events in
  let closes = List.filter_map (function Event.Breaker_close b -> Some b | _ -> None) events in
  let opened_trips = List.filter (fun (t : Engine.breaker_trip) -> t.Engine.opened) r.Engine.breaker_trips in
  let closed_trips = List.filter (fun (t : Engine.breaker_trip) -> not t.Engine.opened) r.Engine.breaker_trips in
  if List.length opens <> List.length opened_trips then
    add "event-breaker" "%d Breaker_open events for %d opening trips" (List.length opens)
      (List.length opened_trips)
  else
    List.iter2
      (fun (b : Event.breaker_open) (t : Engine.breaker_trip) ->
        if
          (not
             (String.equal b.Event.dataset
                (Engine.breaker_scope ~tenant:t.Engine.trip_tenant
                   ~dataset:t.Engine.trip_dataset)))
          || (not (String.equal b.Event.strategy t.Engine.trip_strategy))
          || b.Event.at_s <> t.Engine.trip_at_s
          || b.Event.failures <> t.Engine.trip_failures
        then
          add "event-breaker" "Breaker_open for %s/%s disagrees with its trip" b.Event.dataset
            b.Event.strategy)
      opens opened_trips;
  if List.length closes <> List.length closed_trips then
    add "event-breaker" "%d Breaker_close events for %d closing trips" (List.length closes)
      (List.length closed_trips)
  else
    List.iter2
      (fun (b : Event.breaker_close) (t : Engine.breaker_trip) ->
        if
          (not
             (String.equal b.Event.dataset
                (Engine.breaker_scope ~tenant:t.Engine.trip_tenant
                   ~dataset:t.Engine.trip_dataset)))
          || (not (String.equal b.Event.strategy t.Engine.trip_strategy))
          || b.Event.at_s <> t.Engine.trip_at_s
        then
          add "event-breaker" "Breaker_close for %s/%s disagrees with its trip" b.Event.dataset
            b.Event.strategy)
      closes closed_trips;
  (* Superseded (retried) attempts launched speculations of their own,
     so the stream may carry more launches than the surviving records —
     never fewer, and none at all without a speculation config. *)
  let launches = count (function Event.Speculative_launch _ -> true | _ -> false) in
  let wins = count (function Event.Speculative_win _ -> true | _ -> false) in
  let record_specs =
    List.fold_left (fun acc (x : Engine.job_record) -> acc + x.Engine.speculations) 0 r.Engine.records
  in
  (match r.Engine.speculation with
  | None ->
      if launches <> 0 || wins <> 0 then
        add "event-speculation" "%d speculative events with speculation disabled" (launches + wins)
  | Some _ ->
      if launches < record_specs then
        add "event-speculation" "%d Speculative_launch events for %d recorded clones" launches
          record_specs;
      if r.Engine.retries = 0 && outcome "deadline" = 0 && launches <> record_specs then
        add "event-speculation"
          "%d Speculative_launch events for %d recorded clones with no superseded attempts"
          launches record_specs;
      if wins > launches then
        add "event-speculation" "%d Speculative_win events for %d launches" wins launches);
  (* Scale events reconcile with the applied membership changes, and
     every quota throttle pairs 1:1 with a ["quota"]-policy shed. *)
  let join_events = count (function Event.Executor_join _ -> true | _ -> false) in
  if join_events <> r.Engine.joins then
    add "event-scale" "%d Executor_join events for %d applied joins" join_events r.Engine.joins;
  let leave_events = count (function Event.Executor_leave _ -> true | _ -> false) in
  if leave_events <> r.Engine.leaves then
    add "event-scale" "%d Executor_leave events for %d applied leaves" leave_events
      r.Engine.leaves;
  let preempt_events =
    count (function
      | Event.Fault_injected f -> String.equal f.Event.kind "preempt"
      | _ -> false)
  in
  if preempt_events <> r.Engine.preemptions then
    add "event-scale" "%d preempt Fault_injected events for %d applied preemptions"
      preempt_events r.Engine.preemptions;
  let throttles =
    List.filter_map (function Event.Tenant_throttle t -> Some t | _ -> None) events
  in
  let quota_sheds =
    List.filter_map
      (function
        | Event.Job_shed s when String.equal s.Event.policy "quota" -> Some s | _ -> None)
      events
  in
  if List.length throttles <> List.length quota_sheds then
    add "event-throttle" "%d Tenant_throttle events for %d quota sheds" (List.length throttles)
      (List.length quota_sheds)
  else
    List.iter2
      (fun (t : Event.tenant_throttle) (s : Event.job_shed) ->
        if t.Event.job_id <> s.Event.job_id || t.Event.at_s <> s.Event.at_s then
          add "event-throttle" "Tenant_throttle %d disagrees with its quota shed %d"
            t.Event.job_id s.Event.job_id)
      throttles quota_sheds;
  let find_record id =
    List.find_opt (fun (x : Engine.job_record) -> x.Engine.job.Job.id = id) r.Engine.records
  in
  List.iter
    (fun ev ->
      match ev with
      | Event.Job_start js -> (
          (* Earlier (failed) attempts stream their own Job_start; only
             the final attempt — the one sharing the record's admission
             instant — must match it field-for-field. *)
          match find_record js.Event.job_id with
          | None -> add "event-orphan" "Job_start for unknown job %d" js.Event.job_id
          | Some x when js.Event.start_s <> x.Engine.start_s -> ()
          | Some x ->
              if
                (not (String.equal js.Event.strategy x.Engine.strategy))
                || js.Event.cache_hit <> x.Engine.cache_hit
                || js.Event.queue_s <> x.Engine.queue_s
              then
                add "event-start-mismatch" "Job_start %d disagrees with its record"
                  js.Event.job_id)
      | Event.Job_end je -> (
          match find_record je.Event.job_id with
          | None -> add "event-orphan" "Job_end for unknown job %d" je.Event.job_id
          | Some x when je.Event.finish_s <> x.Engine.finish_s -> ()
          | Some x ->
              if
                (not (String.equal je.Event.outcome x.Engine.outcome))
                || je.Event.partition_s <> x.Engine.partition_s
                || je.Event.exec_s <> x.Engine.exec_s
              then add "event-end-mismatch" "Job_end %d disagrees with its record" je.Event.job_id)
      | Event.Job_submit js -> (
          match find_record js.Event.job_id with
          | None -> add "event-orphan" "Job_submit for unknown job %d" js.Event.job_id
          | Some x ->
              if js.Event.arrival_s <> x.Engine.job.Job.arrival_s then
                add "event-submit-mismatch" "Job_submit %d disagrees with its record"
                  js.Event.job_id)
      | Event.Job_shed s -> (
          match find_record s.Event.job_id with
          | None -> add "event-orphan" "Job_shed for unknown job %d" s.Event.job_id
          | Some x ->
              if not (String.equal x.Engine.outcome "shed") then
                add "event-shed-mismatch" "Job_shed %d but its record's outcome is %S"
                  s.Event.job_id x.Engine.outcome
              else if
                (not
                   (String.equal s.Event.policy (Engine.shed_policy_name r.Engine.shed_policy)
                   || String.equal s.Event.policy "quota"))
                || s.Event.at_s <> x.Engine.start_s
              then add "event-shed-mismatch" "Job_shed %d disagrees with its record" s.Event.job_id)
      | Event.Tenant_throttle tt -> (
          match find_record tt.Event.job_id with
          | None -> add "event-orphan" "Tenant_throttle for unknown job %d" tt.Event.job_id
          | Some x ->
              if not (String.equal x.Engine.outcome "shed") then
                add "event-throttle" "Tenant_throttle %d but its record's outcome is %S"
                  tt.Event.job_id x.Engine.outcome
              else if not (String.equal tt.Event.tenant x.Engine.job.Job.tenant) then
                add "event-throttle" "Tenant_throttle %d names tenant %s, record says %s"
                  tt.Event.job_id tt.Event.tenant x.Engine.job.Job.tenant)
      | Event.Deadline_exceeded d -> (
          match find_record d.Event.job_id with
          | None -> add "event-orphan" "Deadline_exceeded for unknown job %d" d.Event.job_id
          | Some x ->
              if not (String.equal x.Engine.outcome "deadline") then
                add "event-deadline-mismatch"
                  "Deadline_exceeded %d but its record's outcome is %S" d.Event.job_id
                  x.Engine.outcome
              else if
                (match x.Engine.deadline_s with
                | Some rd -> rd <> d.Event.deadline_s
                | None -> true)
                || d.Event.overshoot_s < 0.0
              then
                add "event-deadline-mismatch" "Deadline_exceeded %d disagrees with its record"
                  d.Event.job_id)
      | Event.Cache_op _ | Event.Run_start _ | Event.Superstep _ | Event.Run_end _
      | Event.Fault_injected _ | Event.Checkpoint _ | Event.Recovery _ | Event.Job_retry _
      | Event.Speculative_launch _ | Event.Speculative_win _ | Event.Breaker_open _
      | Event.Breaker_close _ | Event.Mutation_batch _ | Event.Repartition _
      | Event.Executor_join _ | Event.Executor_leave _ | Event.Reshuffle _ -> ())
    events;
  let ops name = count (function Event.Cache_op c -> String.equal c.Event.op name | _ -> false) in
  let stats = r.Engine.cache in
  let pair name observed expected =
    if observed <> expected then
      add "event-cache-ops" "%d %S cache events for %d counted in the stats" observed name
        expected
  in
  pair "hit" (ops "hit") stats.Cache.hits;
  pair "miss" (ops "miss") stats.Cache.misses;
  pair "insert" (ops "insert") stats.Cache.insertions;
  pair "evict" (ops "evict") stats.Cache.evictions;
  pair "invalidate" (ops "invalidate") stats.Cache.invalidations;
  pair "reject" (ops "reject") stats.Cache.rejections;
  List.rev !v

let report ?events (r : Engine.report) =
  cache_accounting r.Engine.cache
  @ record_checks r.Engine.records
  @ aggregate_checks r
  @ breaker_checks r
  @ mutation_checks r
  @ elastic_checks r
  @ match events with None -> [] | Some evs -> event_checks r evs

let digest r = Determinism.lines_digest (Engine.report_lines r)

let run_twice ~label f = Determinism.run_twice ~label (fun () -> digest (f ()))
