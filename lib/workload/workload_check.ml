module Violation = Cutfit_check.Violation
module Determinism = Cutfit_check.Determinism
module Event = Cutfit_obs.Event

let suite = "workload"

let close a b =
  let scale = Float.max 1.0 (Float.max (Float.abs a) (Float.abs b)) in
  Float.abs (a -. b) <= 1e-6 *. scale

let cache_accounting (s : Cache.stats) =
  let v = ref [] in
  let add rule fmt = Format.kasprintf (fun detail -> v := Violation.v ~suite ~rule "%s" detail :: !v) fmt in
  let non_negative name n = if n < 0 then add "cache-negative" "%s is negative (%d)" name n in
  non_negative "lookups" s.Cache.lookups;
  non_negative "hits" s.Cache.hits;
  non_negative "misses" s.Cache.misses;
  non_negative "insertions" s.Cache.insertions;
  non_negative "evictions" s.Cache.evictions;
  non_negative "invalidations" s.Cache.invalidations;
  non_negative "rejections" s.Cache.rejections;
  non_negative "entries" s.Cache.entries;
  if s.Cache.lookups <> s.Cache.hits + s.Cache.misses then
    add "cache-lookup-split" "lookups (%d) <> hits (%d) + misses (%d)" s.Cache.lookups s.Cache.hits
      s.Cache.misses;
  if s.Cache.entries <> s.Cache.insertions - s.Cache.evictions - s.Cache.invalidations then
    add "cache-entry-conservation"
      "entries (%d) <> insertions (%d) - evictions (%d) - invalidations (%d)" s.Cache.entries
      s.Cache.insertions s.Cache.evictions s.Cache.invalidations;
  if
    not
      (close s.Cache.bytes_in_cache
         (s.Cache.bytes_inserted -. s.Cache.bytes_evicted -. s.Cache.bytes_invalidated))
  then
    add "cache-byte-conservation"
      "bytes in cache (%.0f) <> bytes inserted (%.0f) - evicted (%.0f) - invalidated (%.0f)"
      s.Cache.bytes_in_cache s.Cache.bytes_inserted s.Cache.bytes_evicted
      s.Cache.bytes_invalidated;
  if s.Cache.bytes_in_cache < 0.0 then
    add "cache-negative" "bytes_in_cache is negative (%.0f)" s.Cache.bytes_in_cache;
  if s.Cache.bytes_in_cache > s.Cache.budget_bytes && s.Cache.budget_bytes > 0.0 then
    add "cache-over-budget" "bytes in cache (%.0f) exceed the budget (%.0f)"
      s.Cache.bytes_in_cache s.Cache.budget_bytes;
  List.rev !v

let record_checks (records : Engine.job_record list) =
  let v = ref [] in
  let add rule fmt = Format.kasprintf (fun detail -> v := Violation.v ~suite ~rule "%s" detail :: !v) fmt in
  let last_id = ref (-1) in
  List.iter
    (fun (r : Engine.job_record) ->
      let id = r.Engine.job.Job.id in
      if id <= !last_id then add "record-order" "job %d out of order after job %d" id !last_id;
      last_id := id;
      if r.Engine.start_s < r.Engine.job.Job.arrival_s then
        add "job-time-travel" "job %d started (%.6f) before it arrived (%.6f)" id r.Engine.start_s
          r.Engine.job.Job.arrival_s;
      if r.Engine.queue_s <> r.Engine.start_s -. r.Engine.job.Job.arrival_s then
        add "job-queue-decomposition" "job %d queue_s (%.6f) <> start - arrival (%.6f)" id
          r.Engine.queue_s
          (r.Engine.start_s -. r.Engine.job.Job.arrival_s);
      if r.Engine.finish_s <> r.Engine.start_s +. r.Engine.partition_s +. r.Engine.exec_s then
        add "job-cost-decomposition"
          "job %d finish_s (%.6f) <> start + partition + exec (%.6f)" id r.Engine.finish_s
          (r.Engine.start_s +. r.Engine.partition_s +. r.Engine.exec_s);
      if r.Engine.cache_hit && r.Engine.partition_s <> 0.0 then
        add "job-hit-paid-build" "job %d hit the cache yet paid %.6f s of partitioning" id
          r.Engine.partition_s;
      if r.Engine.partition_s < 0.0 || r.Engine.exec_s < 0.0 then
        add "job-negative-cost" "job %d has a negative cost component (partition %.6f, exec %.6f)"
          id r.Engine.partition_s r.Engine.exec_s;
      if r.Engine.attempts < 0 || r.Engine.recoveries < 0 || r.Engine.recovery_s < 0.0 then
        add "job-negative-fault-counters"
          "job %d has negative fault counters (attempts %d, recoveries %d, recovery_s %.6f)" id
          r.Engine.attempts r.Engine.recoveries r.Engine.recovery_s;
      if r.Engine.attempts = 0 then begin
        (* A zero-attempt job never ran: no costs, no cache traffic,
           and it must be marked failed. *)
        if
          (not r.Engine.failed)
          || r.Engine.cache_hit
          || r.Engine.partition_s <> 0.0
          || r.Engine.exec_s <> 0.0
          || r.Engine.recoveries <> 0
        then add "job-invalid-shape" "zero-attempt job %d carries run artifacts" id
      end
      else if
        r.Engine.failed
        && not (List.mem r.Engine.outcome [ "aborted"; "error" ])
      then
        add "job-failed-outcome" "job %d is marked failed yet its outcome is %S" id
          r.Engine.outcome)
    records;
  List.rev !v

let aggregate_checks (r : Engine.report) =
  let v = ref [] in
  let add rule fmt = Format.kasprintf (fun detail -> v := Violation.v ~suite ~rule "%s" detail :: !v) fmt in
  let fold f init = List.fold_left f init r.Engine.records in
  let makespan = fold (fun acc x -> Float.max acc x.Engine.finish_s) 0.0 in
  if r.Engine.makespan_s <> makespan then
    add "aggregate-makespan" "makespan_s (%.6f) <> max finish over records (%.6f)"
      r.Engine.makespan_s makespan;
  let q = fold (fun acc x -> acc +. x.Engine.queue_s) 0.0 in
  if r.Engine.total_queue_s <> q then
    add "aggregate-queue" "total_queue_s (%.6f) <> sum over records (%.6f)" r.Engine.total_queue_s q;
  let p = fold (fun acc x -> acc +. x.Engine.partition_s) 0.0 in
  if r.Engine.total_partition_s <> p then
    add "aggregate-partition" "total_partition_s (%.6f) <> sum over records (%.6f)"
      r.Engine.total_partition_s p;
  let e = fold (fun acc x -> acc +. x.Engine.exec_s) 0.0 in
  if r.Engine.total_exec_s <> e then
    add "aggregate-exec" "total_exec_s (%.6f) <> sum over records (%.6f)" r.Engine.total_exec_s e;
  let attempts = fold (fun acc x -> acc + x.Engine.attempts) 0 in
  if r.Engine.cache.Cache.lookups <> attempts then
    add "aggregate-lookups" "cache lookups (%d) <> attempts launched (%d): one lookup per attempt"
      r.Engine.cache.Cache.lookups attempts;
  (* Only the final attempt's hit flag survives in the record, so the
     stats may count more hits than the records show — never fewer. *)
  let hits = List.length (List.filter (fun x -> x.Engine.cache_hit) r.Engine.records) in
  if r.Engine.cache.Cache.hits < hits then
    add "aggregate-hits" "cache hits (%d) < hit records (%d)" r.Engine.cache.Cache.hits hits;
  let retries = fold (fun acc x -> acc + max 0 (x.Engine.attempts - 1)) 0 in
  if r.Engine.retries <> retries then
    add "aggregate-retries" "retries (%d) <> sum of extra attempts over records (%d)"
      r.Engine.retries retries;
  let failed = List.length (List.filter (fun x -> x.Engine.failed) r.Engine.records) in
  if List.length r.Engine.failures <> failed then
    add "aggregate-failures" "%d failure records for %d failed job records"
      (List.length r.Engine.failures) failed;
  List.iter
    (fun (f : Engine.job_failure) ->
      match
        List.find_opt
          (fun (x : Engine.job_record) -> x.Engine.job.Job.id = f.Engine.job_id)
          r.Engine.records
      with
      | Some x when x.Engine.failed -> ()
      | Some _ -> add "failure-orphan" "failure for job %d whose record is not failed" f.Engine.job_id
      | None -> add "failure-orphan" "failure for unknown job %d" f.Engine.job_id)
    r.Engine.failures;
  List.rev !v

let event_checks (r : Engine.report) events =
  let v = ref [] in
  let add rule fmt = Format.kasprintf (fun detail -> v := Violation.v ~suite ~rule "%s" detail :: !v) fmt in
  let count f = List.length (List.filter f events) in
  let n = List.length r.Engine.records in
  let attempts =
    List.fold_left (fun acc (x : Engine.job_record) -> acc + x.Engine.attempts) 0 r.Engine.records
  in
  let submits = count (function Event.Job_submit _ -> true | _ -> false) in
  if submits <> n then add "event-submits" "%d Job_submit events for %d records" submits n;
  let starts = count (function Event.Job_start _ -> true | _ -> false) in
  if starts <> attempts then
    add "event-starts" "%d Job_start events for %d attempts" starts attempts;
  let ends = count (function Event.Job_end _ -> true | _ -> false) in
  if ends <> attempts then add "event-ends" "%d Job_end events for %d attempts" ends attempts;
  let retry_events = count (function Event.Job_retry _ -> true | _ -> false) in
  if retry_events <> r.Engine.retries then
    add "event-retries" "%d Job_retry events for %d counted retries" retry_events r.Engine.retries;
  let find_record id =
    List.find_opt (fun (x : Engine.job_record) -> x.Engine.job.Job.id = id) r.Engine.records
  in
  List.iter
    (fun ev ->
      match ev with
      | Event.Job_start js -> (
          (* Earlier (failed) attempts stream their own Job_start; only
             the final attempt — the one sharing the record's admission
             instant — must match it field-for-field. *)
          match find_record js.Event.job_id with
          | None -> add "event-orphan" "Job_start for unknown job %d" js.Event.job_id
          | Some x when js.Event.start_s <> x.Engine.start_s -> ()
          | Some x ->
              if
                (not (String.equal js.Event.strategy x.Engine.strategy))
                || js.Event.cache_hit <> x.Engine.cache_hit
                || js.Event.queue_s <> x.Engine.queue_s
              then
                add "event-start-mismatch" "Job_start %d disagrees with its record"
                  js.Event.job_id)
      | Event.Job_end je -> (
          match find_record je.Event.job_id with
          | None -> add "event-orphan" "Job_end for unknown job %d" je.Event.job_id
          | Some x when je.Event.finish_s <> x.Engine.finish_s -> ()
          | Some x ->
              if
                (not (String.equal je.Event.outcome x.Engine.outcome))
                || je.Event.partition_s <> x.Engine.partition_s
                || je.Event.exec_s <> x.Engine.exec_s
              then add "event-end-mismatch" "Job_end %d disagrees with its record" je.Event.job_id)
      | Event.Job_submit js -> (
          match find_record js.Event.job_id with
          | None -> add "event-orphan" "Job_submit for unknown job %d" js.Event.job_id
          | Some x ->
              if js.Event.arrival_s <> x.Engine.job.Job.arrival_s then
                add "event-submit-mismatch" "Job_submit %d disagrees with its record"
                  js.Event.job_id)
      | Event.Cache_op _ | Event.Run_start _ | Event.Superstep _ | Event.Run_end _
      | Event.Fault_injected _ | Event.Checkpoint _ | Event.Recovery _ | Event.Job_retry _ -> ())
    events;
  let ops name = count (function Event.Cache_op c -> String.equal c.Event.op name | _ -> false) in
  let stats = r.Engine.cache in
  let pair name observed expected =
    if observed <> expected then
      add "event-cache-ops" "%d %S cache events for %d counted in the stats" observed name
        expected
  in
  pair "hit" (ops "hit") stats.Cache.hits;
  pair "miss" (ops "miss") stats.Cache.misses;
  pair "insert" (ops "insert") stats.Cache.insertions;
  pair "evict" (ops "evict") stats.Cache.evictions;
  pair "invalidate" (ops "invalidate") stats.Cache.invalidations;
  pair "reject" (ops "reject") stats.Cache.rejections;
  List.rev !v

let report ?events (r : Engine.report) =
  cache_accounting r.Engine.cache
  @ record_checks r.Engine.records
  @ aggregate_checks r
  @ match events with None -> [] | Some evs -> event_checks r evs

let digest r = Determinism.lines_digest (Engine.report_lines r)

let run_twice ~label f = Determinism.run_twice ~label (fun () -> digest (f ()))
