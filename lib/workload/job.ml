module Advisor = Cutfit.Advisor
module Datasets = Cutfit_gen.Datasets
module Xoshiro = Cutfit_prng.Xoshiro
module Dist = Cutfit_prng.Dist

type t = {
  id : int;
  arrival_s : float;
  algorithm : Advisor.algorithm;
  dataset : string;
  num_partitions : int;
  tenant : string;
}

let default_tenant = "default"

type mix = {
  name : string;
  description : string;
  algorithms : (Advisor.algorithm * float) list;
  datasets : (string * float) list;
  partition_counts : (int * float) list;
  mean_interarrival_s : float;
}

let mixes =
  [
    {
      name = "uniform";
      description = "all four algorithms over three analogues at two granularities";
      algorithms =
        [
          (Advisor.Pagerank, 1.0);
          (Advisor.Connected_components, 1.0);
          (Advisor.Triangle_count, 1.0);
          (Advisor.Shortest_paths, 1.0);
        ];
      datasets = [ ("youtube", 2.0); ("roadnet_pa", 2.0); ("pocek", 1.0) ];
      partition_counts = [ (64, 1.0); (128, 1.0) ];
      mean_interarrival_s = 0.4;
    };
    {
      name = "reuse-heavy";
      description =
        "edge-dominated algorithms hammering two graphs at one granularity (high partitioning \
         reuse)";
      algorithms =
        [
          (Advisor.Pagerank, 3.0); (Advisor.Connected_components, 2.0); (Advisor.Shortest_paths, 1.0);
        ];
      datasets = [ ("youtube", 3.0); ("roadnet_pa", 1.0) ];
      partition_counts = [ (128, 1.0) ];
      mean_interarrival_s = 0.3;
    };
    {
      name = "churn";
      description = "all five small analogues at three granularities (low reuse, stresses eviction)";
      algorithms =
        [
          (Advisor.Pagerank, 1.0);
          (Advisor.Connected_components, 1.0);
          (Advisor.Triangle_count, 1.0);
          (Advisor.Shortest_paths, 1.0);
        ];
      datasets =
        [
          ("youtube", 1.0); ("roadnet_pa", 1.0); ("roadnet_tx", 1.0); ("pocek", 1.0);
          ("roadnet_ca", 1.0);
        ];
      partition_counts = [ (64, 1.0); (128, 1.0); (256, 1.0) ];
      mean_interarrival_s = 0.5;
    };
  ]

let find_mix name = List.find_opt (fun m -> String.equal m.name name) mixes
let mix_names = List.map (fun m -> m.name) mixes

(* Weighted draw with a fixed traversal order: cumulative weights over
   the list as written, one uniform per draw. *)
let weighted_pick what rng pairs =
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 pairs in
  if not (total > 0.0) then
    invalid_arg (Printf.sprintf "Job.generate: %s weights must have a positive sum" what);
  let u = Xoshiro.next_float rng *. total in
  let rec go acc = function
    | [] -> invalid_arg (Printf.sprintf "Job.generate: empty %s dimension" what)
    | [ (x, _) ] -> x
    | (x, w) :: rest -> if u < acc +. w then x else go (acc +. w) rest
  in
  go 0.0 pairs

let validate mix =
  if not (mix.mean_interarrival_s > 0.0) then
    invalid_arg "Job.generate: mean inter-arrival must be positive";
  List.iter
    (fun (d, _) ->
      match List.find_opt (String.equal d) Datasets.names with
      | Some _ -> ()
      | None -> invalid_arg (Printf.sprintf "Job.generate: unknown dataset %S" d))
    mix.datasets;
  List.iter
    (fun (n, _) ->
      if n <= 0 then invalid_arg "Job.generate: partition counts must be positive")
    mix.partition_counts

let generate ~seed ~jobs ?(tenants = []) mix =
  if jobs < 0 then invalid_arg "Job.generate: negative job count";
  validate mix;
  List.iter
    (fun (t, _) ->
      if String.length t = 0 || String.contains t '/' then
        invalid_arg (Printf.sprintf "Job.generate: bad tenant name %S" t))
    tenants;
  let rng = Xoshiro.create seed in
  let rate = 1.0 /. mix.mean_interarrival_s in
  let now = ref 0.0 in
  List.init jobs (fun id ->
      now := !now +. Dist.exponential rng ~rate;
      let algorithm = weighted_pick "algorithm" rng mix.algorithms in
      let dataset = weighted_pick "dataset" rng mix.datasets in
      let num_partitions = weighted_pick "partition-count" rng mix.partition_counts in
      (* The tenant draw is appended LAST, so single-tenant streams are
         byte-identical to streams generated before tenancy existed. *)
      let tenant =
        match tenants with [] -> default_tenant | ts -> weighted_pick "tenant" rng ts
      in
      { id; arrival_s = !now; algorithm; dataset; num_partitions; tenant })

let pp ppf j =
  Format.fprintf ppf "#%d %s%s %s/%d @%.2fs" j.id
    (if String.equal j.tenant default_tenant then "" else j.tenant ^ ":")
    (Advisor.algorithm_name j.algorithm)
    j.dataset j.num_partitions j.arrival_s
