(** Deterministic multi-job cluster workload engine.

    Replays a {!Job} stream against the simulated cluster: a fixed
    number of concurrent executor {e slots} admits jobs from the queue
    on a discrete-event clock, every admitted job picks a partitioning
    strategy through the advisor, consults the partitioning {!Cache},
    and then actually runs the algorithm through {!Cutfit.Pipeline}
    (the pregel engines produce the real simulated trace — nothing here
    is a closed-form estimate). Each job's service time decomposes
    against that trace: a cache miss pays load + partition build +
    execution, a hit pays execution only.

    Everything is deterministic: same jobs, policy, selection, cache
    configuration and seed — bit-identical report, which is what
    {!Workload_check.run_twice} digests. *)

type policy =
  | Fifo  (** admit in arrival order *)
  | Sjf
      (** shortest predicted job first: {!Cutfit.Advisor.predicted_build_s}
          (skipped when the needed partitioning is already cached) plus
          {!Cutfit.Advisor.predicted_exec_s} *)

val policy_name : policy -> string
val policy_of_string : string -> policy option

type selection =
  | Heuristic  (** the paper's free per-algorithm rules *)
  | Measured  (** rank all candidates, take the best (memoized per graph) *)
  | Cache_aware of float
      (** like [Measured], but prefer the best {e cached} strategy when
          its predictive-metric penalty relative to the overall best is
          at most the threshold (e.g. [0.25] = accept up to 25% worse
          expected traffic to skip a partition build) *)

val selection_name : selection -> string

val selection_of_string : ?threshold:float -> string -> selection option
(** ["heuristic"], ["measured"], ["cache-aware"] (with [threshold],
    default 0.25). *)

type job_record = {
  job : Job.t;
  strategy : string;
  cache_hit : bool;
  outcome : string;  (** {!Cutfit_bsp.Trace.outcome_name} of the run *)
  start_s : float;
  queue_s : float;  (** [start_s -. arrival_s] *)
  partition_s : float;  (** load + build actually paid; 0 on a cache hit *)
  exec_s : float;  (** supersteps + checkpoints, from the trace *)
  finish_s : float;  (** [start_s +. partition_s +. exec_s] *)
}

type report = {
  policy : policy;
  selection : selection;
  eviction : Cache.eviction;
  budget_bytes : float;
  slots : int;
  seed : int64;
  records : job_record list;  (** ascending job id *)
  cache : Cache.stats;
  makespan_s : float;  (** last finish instant *)
  total_queue_s : float;
  total_partition_s : float;
  total_exec_s : float;
}

val run :
  ?cluster:Cutfit_bsp.Cluster.t ->
  ?slots:int ->
  ?eviction:Cache.eviction ->
  ?budget_bytes:float ->
  ?iterations:int ->
  ?telemetry:Cutfit_obs.Telemetry.t ->
  ?policy:policy ->
  ?selection:selection ->
  seed:int64 ->
  Job.t list ->
  report
(** Simulate the stream (any order; jobs are queued by arrival).
    Defaults: cluster (i) reconfigured per job to its partition count,
    2 slots, LRU, an 8 GB (paper-scale) budget, engine-default
    iteration caps, FIFO, [Cache_aware 0.25]. [seed] derives each SSSP
    job's landmark choice (mixed with the job id). With [telemetry],
    the engine narrates the whole simulation as [Job_submit] /
    [Job_start] / [Cache_op] / [Job_end] events that reconcile with the
    returned records ({!Workload_check.report}).
    @raise Invalid_argument if [slots < 1]. *)

val hit_rate : report -> float
(** Cache hits over lookups (0 when there were none). *)

val mean_queue_s : report -> float

val record_json : job_record -> Cutfit_obs.Json.t
val report_json : report -> Cutfit_obs.Json.t
(** Full report: parameters, per-job records, cache stats, aggregates. *)

val report_lines : report -> string list
(** Canonical JSONL: one parameter/summary line, one line per job
    record, one cache-stats line — floats bit-exact, so the lines are a
    digest-stable serialization of the whole simulation
    ({!Workload_check.digest}). *)

val pp_summary : Format.formatter -> report -> unit
(** Human-oriented multi-line summary (policy, makespan, queue, cache
    hit rate) used by the CLI. *)
