(** Deterministic multi-job cluster workload engine.

    Replays a {!Job} stream against the simulated cluster: a fixed
    number of concurrent executor {e slots} admits jobs from the queue
    on a discrete-event clock, every admitted job picks a partitioning
    strategy through the advisor, consults the partitioning {!Cache},
    and then actually runs the algorithm through {!Cutfit.Pipeline}
    (the pregel engines produce the real simulated trace — nothing here
    is a closed-form estimate). Each job's service time decomposes
    against that trace: a cache miss pays load + partition build +
    execution, a hit pays execution only.

    Everything is deterministic: same jobs, policy, selection, cache
    configuration and seed — bit-identical report, which is what
    {!Workload_check.run_twice} digests. That holds with a fault
    schedule too: fault realizations are seeded per (job, attempt), so
    a faulty workload replays byte-identically.

    {2 Fault tolerance}

    With [?faults], every Pregel/GAS run executes under a per-job
    realization of the schedule ({!Cutfit_bsp.Faults}). A run whose
    cluster dies past its crash budget ends with outcome [aborted]; the
    engine then invalidates the whole partitioning cache (everything
    was resident on the lost cluster) and requeues the job with capped
    exponential backoff, up to [max_retries] extra attempts — each
    retry gets a {e fresh} fault realization, so transient schedules
    ([rand@R]) usually succeed on retry while pinned deterministic
    crashes exhaust the budget and fail the job {e structurally}: a
    [failed] record plus a {!job_failure}, never an exception out of
    the scheduler loop. Malformed jobs (unknown dataset, nonsensical
    granularity) fail the same way at admission, with zero attempts. *)

type policy =
  | Fifo  (** admit in arrival order *)
  | Sjf
      (** shortest predicted job first: {!Cutfit.Advisor.predicted_build_s}
          (skipped when the needed partitioning is already cached) plus
          {!Cutfit.Advisor.predicted_exec_s} *)

val policy_name : policy -> string
val policy_of_string : string -> policy option

type selection =
  | Heuristic  (** the paper's free per-algorithm rules *)
  | Measured  (** rank all candidates, take the best (memoized per graph) *)
  | Cache_aware of float
      (** like [Measured], but prefer the best {e cached} strategy when
          its predictive-metric penalty relative to the overall best is
          at most the threshold (e.g. [0.25] = accept up to 25% worse
          expected traffic to skip a partition build) *)

val selection_name : selection -> string

val selection_of_string : ?threshold:float -> string -> selection option
(** ["heuristic"], ["measured"], ["cache-aware"] (with [threshold],
    default 0.25). *)

type shed_policy =
  | Reject  (** shed the incoming job when the queue is full *)
  | Drop_oldest
      (** displace the longest-waiting queued job (by arrival, then id)
          to make room for the incoming one *)

val shed_policy_name : shed_policy -> string
val shed_policy_of_string : string -> shed_policy option

type deadline =
  | Absolute of float  (** SLO deadline = arrival + this many seconds *)
  | Factor of float
      (** SLO deadline = arrival + factor x the advisor-predicted
          service time at admission (build, skipped when cached, plus
          execution) — the job's SLO scales with its expected cost *)

(* lint: unused-export -- label helper for external log consumers *)
val deadline_name : deadline -> string
(** ["absolute:<s>"] or ["factor:<f>"], the canonical spelling used in
    the report's parameter line. *)

val breaker_scope : tenant:string -> dataset:string -> string
(** The breaker namespace a (tenant, dataset) pair lives in:
    ["<tenant>/<dataset>"], or the bare dataset for the default tenant —
    so single-tenant streams keep their pre-tenancy event streams
    byte-identical. [Breaker_open] / [Breaker_close] events carry this
    scope in their [dataset] field. *)

type breaker_trip = {
  trip_tenant : string;  (** owning tenant ({!Job.default_tenant} when untagged) *)
  trip_dataset : string;
  trip_strategy : string;
  trip_at_s : float;  (** the attempt-finish instant that transitioned it *)
  opened : bool;  (** [true] = opened (or re-armed), [false] = closed *)
  trip_failures : int;  (** consecutive failures at an open; 0 at a close *)
}
(** One circuit-breaker state transition — the audit trail
    {!Workload_check} checks for state-machine legality (first trip
    opens; a close only follows an open). The list is in the engine's
    decision order; with concurrent slots an attempt processed later
    can finish earlier, so [trip_at_s] is not globally sorted. *)

type job_record = {
  job : Job.t;
  strategy : string;  (** ["-"] when the job never ran (invalid) *)
  cache_hit : bool;
  outcome : string;
      (** {!Cutfit_bsp.Trace.outcome_name} of the final attempt's run;
          ["invalid"] / ["error"] for structural failures; ["shed"] when
          admission control refused the job; ["deadline"] when its SLO
          deadline cancelled it (queued or mid-run) *)
  attempts : int;  (** runs actually launched (0 for invalid/shed jobs) *)
  preemptions : int;
      (** attempts cut short by a scheduled slot reclamation — each one
          requeued the job {e without} consuming its retry budget *)
  recoveries : int;  (** recovery records in the final attempt's trace *)
  recovery_s : float;  (** recovery time in the final attempt's trace *)
  speculations : int;
      (** speculative clones launched in the final attempt's trace *)
  deadline_s : float option;
      (** the job's absolute SLO deadline, when deadlines are enabled
          and the engine computed it before the job ended *)
  failed : bool;  (** the job ended without a completed run *)
  start_s : float;  (** final attempt's admission instant *)
  queue_s : float;
      (** [start_s -. arrival_s] — for a retried job this spans the
          failed attempts and their backoff *)
  partition_s : float;  (** load + build actually paid; 0 on a cache hit *)
  exec_s : float;  (** supersteps + checkpoints + recovery, from the trace *)
  finish_s : float;  (** [start_s +. partition_s +. exec_s] *)
}

type job_failure = {
  job_id : int;
  failed_attempts : int;  (** attempts consumed before giving up *)
  reason : string;  (** human-readable cause *)
}
(** Structured permanent failure — the Result shape of a job that never
    produced a completed run. Every failure pairs with a [failed]
    record; no exception ever escapes {!run} for a per-job problem. *)

type mutation_mode =
  | Priced
      (** refresh when the summed refresh price over the dataset's
          resident cache entries is at most the summed rebuild price *)
  | Force_refresh  (** always take the incremental-repair path *)
  | Force_rebuild  (** always drop and rebuild cold — the control arm *)

val mutation_mode_name : mutation_mode -> string
val mutation_mode_of_string : string -> mutation_mode option
(** ["priced"], ["refresh"], ["rebuild"]. *)

type mutation_record = {
  mut_batch : int;  (** 1-based batch number = launches / mutate_every *)
  mut_dataset : string;  (** the launching job's dataset took the delta *)
  mut_at_s : float;  (** the triggering job's admission instant *)
  mut_inserts : int;
  mut_deletes : int;
  mut_edges_after : int;
  mut_refresh_s : float;  (** summed refresh price over resident entries *)
  mut_rebuild_s : float;  (** summed rebuild price over resident entries *)
  mut_choice : string;  (** ["refresh"] or ["rebuild"] *)
  mut_dropped_entries : int;  (** cache entries invalidated by the batch *)
  mut_refreshed_entries : int;  (** entries re-inserted at refresh price; 0 on rebuild *)
}
(** One applied mutation batch and its priced refresh-vs-rebuild
    decision, reconciling with the [Mutation_batch] / [Repartition]
    events the engine emits. *)

type report = {
  policy : policy;
  selection : selection;
  eviction : Cache.eviction;
  budget_bytes : float;
  slots : int;
  seed : int64;
  max_retries : int;
  fault_spec : string option;  (** the raw [--faults] spec, when any *)
  checkpoint_every : int option;
  queue_bound : int option;  (** admission-queue capacity, when bounded *)
  shed_policy : shed_policy;
  deadline : deadline option;
  breaker_k : int option;  (** consecutive failures that open a breaker *)
  breaker_cooldown_s : float;
  backpressure : int option;
      (** queue-depth watermark past which selection degrades to the
          cheapest cached strategy *)
  speculation : Cutfit_bsp.Speculation.config option;
  mutation_spec : string option;  (** the raw [--mutations] spec, when any *)
  mutate_every : int;  (** job launches between mutation batches *)
  mutation_mode : mutation_mode;
  scale_spec : string option;  (** the raw [--scale-events] spec, when any *)
  tenant_weights : (string * float) list;  (** fair-share weights (default 1.0) *)
  tenant_quota : int option;  (** per-tenant admission-queue quota, when any *)
  tenant_deadlines : (string * deadline) list;  (** tenant SLO overrides *)
  fairness : bool;  (** weighted fair sharing was active *)
  records : job_record list;  (** ascending job id, one per job *)
  failures : job_failure list;  (** ascending job id *)
  breaker_trips : breaker_trip list;  (** in decision order *)
  mutations : mutation_record list;  (** in application order *)
  retries : int;  (** requeues performed = [Job_retry] events emitted *)
  joins : int;  (** membership growth events applied = [Executor_join] events *)
  leaves : int;  (** membership shrink events applied = [Executor_leave] events *)
  preemptions : int;  (** attempts cut short by slot reclamations *)
  stale_placement_hits : int;
      (** cache hits served from an entry placed on departed executors —
          the stale-placement law demands this stays 0 *)
  fairness_violations : int;
      (** independently recounted fair-share breaches — must stay 0 *)
  cache : Cache.stats;
  makespan_s : float;  (** last finish instant *)
  total_queue_s : float;
  total_partition_s : float;
  total_exec_s : float;
}

val failed_jobs : report -> int
(** [List.length r.failures]. *)

val shed_jobs : report -> int
(** Records with outcome ["shed"]. *)

val deadline_jobs : report -> int
(** Records with outcome ["deadline"] (queued culls and mid-run
    cancels). *)

val total_speculations : report -> int
(** Speculative clones launched across all final-attempt traces. *)

val latency_percentiles : report -> Cutfit_stats.Summary.ptiles option
(** Nearest-rank p50/p95/p99 of job latency ([finish_s -. arrival_s])
    over the records that produced a result (failed jobs excluded);
    [None] when every job failed. *)

val retry_delay_s : attempt:int -> float
(** Requeue backoff after the [attempt]-th failed attempt (1-based):
    capped exponential, [min 30.0 (2.0 *. 2.0 ** (attempt - 1))]
    simulated seconds. *)

val run :
  ?cluster:Cutfit_bsp.Cluster.t ->
  ?slots:int ->
  ?eviction:Cache.eviction ->
  ?budget_bytes:float ->
  ?iterations:int ->
  ?checkpoint_every:int ->
  ?faults:Cutfit_bsp.Faults.config ->
  ?speculation:Cutfit_bsp.Speculation.config ->
  ?max_retries:int ->
  ?queue_bound:int ->
  ?shed_policy:shed_policy ->
  ?deadline:deadline ->
  ?breaker_k:int ->
  ?breaker_cooldown_s:float ->
  ?backpressure:int ->
  ?telemetry:Cutfit_obs.Telemetry.t ->
  ?policy:policy ->
  ?selection:selection ->
  ?mutations:Cutfit_dynamic.Mutation.config ->
  ?mutate_every:int ->
  ?mutation_mode:mutation_mode ->
  ?mutation_heuristic:Cutfit_partition.Streaming.t ->
  ?scale_events:Cutfit_bsp.Elastic.config ->
  ?tenant_weights:(string * float) list ->
  ?tenant_quota:int ->
  ?tenant_deadlines:(string * deadline) list ->
  ?fairness:bool ->
  seed:int64 ->
  Job.t list ->
  report
(** Simulate the stream (any order; jobs are queued by arrival).
    Defaults: cluster (i) reconfigured per job to its partition count,
    2 slots, LRU, an 8 GB (paper-scale) budget, engine-default
    iteration caps, FIFO, [Cache_aware 0.25], no faults, no
    checkpointing, [max_retries = 2]. [seed] derives each SSSP job's
    landmark choice (mixed with the job id). With [telemetry], the
    engine narrates the whole simulation as [Job_submit] / [Job_start]
    / [Cache_op] / [Job_end] events — plus [Job_retry] per requeue and
    ["invalidate"] cache ops per cluster loss — that reconcile with the
    returned records ({!Workload_check.report}).

    {b Overload protection and straggler mitigation.}

    [speculation] forwards a {!Cutfit_bsp.Speculation} config into
    every Pregel/GAS run: stragglers get priced speculative clones,
    perturbing only each run's time accounting (the per-record
    [speculations] count and [Speculative_launch] / [Speculative_win]
    events itemize the clones).

    [queue_bound] caps the admission queue: a first-attempt job meeting
    a full queue is shed per [shed_policy] (default [Reject]) — a
    failed zero-cost ["shed"] record plus a [Job_shed] event; retries
    bypass the bound. [deadline] attaches a per-job SLO: a queued job
    past its deadline is culled where it stands, a running job is
    cancelled at the deadline instant (outcome ["deadline"], wasted
    work accounted up to the cancel, [Deadline_exceeded] event); neither
    consumes a retry attempt nor invalidates the cache.

    [breaker_k] arms a per-(dataset, strategy) circuit breaker: that
    many consecutive aborted / error / out-of-memory attempts open it,
    routing selection to the degraded cache-aware path until a probe
    succeeds after [breaker_cooldown_s] (default 60 s) — every
    transition is a {!breaker_trip} and a [Breaker_open] /
    [Breaker_close] event. [backpressure] is a queue-depth watermark
    past which selection degrades to the cheapest cached strategy even
    with every breaker closed.

    {b Dynamic graphs.}

    With [mutations], every [mutate_every]-th job launch (default 8)
    first lands the next {!Cutfit_dynamic.Mutation} batch on that job's
    own dataset: the memoized graph advances by the delta, the
    advisor's rankings for the dataset are re-measured lazily, and the
    cache is {e partially} invalidated — exactly the mutated dataset's
    keys are dropped ([Cache_op "invalidate"] events), other datasets
    stay warm. Each resident partitioning is first priced both ways
    ({!Cutfit_dynamic.Repartition.refresh_price} via an
    {!Cutfit_dynamic.Incremental.refresh} under [mutation_heuristic],
    default Greedy, versus {!Cutfit_dynamic.Repartition.rebuild_price});
    per [mutation_mode] (default [Priced]) the refresh path repairs
    synchronously with the batch — each refreshed partitioning is
    re-inserted immediately valid and the triggering job's start is
    delayed by the summed refresh price — while the rebuild path leaves
    the cache cold for that dataset, so the next job on it pays its
    full partition build. Every batch appends a {!mutation_record} and
    emits [Mutation_batch] / [Repartition] events.

    {b Elasticity.}

    [scale_events] replays a {!Cutfit_bsp.Elastic} spec against the
    executor pool, with the spec's step numbers read as integer
    simulated seconds. [join\@T+N] opens N fresh slots at instant T;
    [leave\@T-N] retires slots gracefully — each departing slot finishes
    its running job and never takes another (membership is clamped to
    at least one slot, and grows at most by the spec's total joins);
    [preempt\@T:rN] reclaims a live slot mid-run at instant T (the
    victim drawn statelessly from the spec's seed): the attempt is cut
    short where it stands (outcome ["preempted"], wasted work accounted
    up to the reclamation, a ["preempt"]-kind [Fault_injected] event)
    and the job requeues with backoff {e without consuming its retry
    budget} — preemption is involuntary, the same rule that keeps sheds
    and deadline culls budget-neutral. Every applied membership change
    emits an [Executor_join] / [Executor_leave] event, and a shrink
    eagerly invalidates every cached partitioning whose recorded
    placement references a departed executor — the stale-placement law
    ([stale_placement_hits = 0]) is recounted on every hit.

    {b Multi-tenancy.}

    Jobs carry their {!Job.t.tenant} tag. [fairness] enables weighted
    fair sharing over slot busy-time: each launch serves the pending
    tenant with the smallest busy/weight deficit ([tenant_weights],
    default weight 1.0), with the scheduling policy ordering jobs
    within the chosen tenant; [fairness_violations] independently
    recounts the invariant. [tenant_quota] caps each tenant's pending
    first-attempt jobs — a job arriving over quota is throttled
    ([Tenant_throttle] event) and shed with policy ["quota"].
    [tenant_deadlines] overrides the global [deadline] per tenant.
    Circuit breakers are namespaced per tenant ({!breaker_scope}), so
    one tenant's failures never degrade another's routing.
    @raise Invalid_argument if [slots < 1], [max_retries < 0],
    [queue_bound < 1], a non-positive deadline, [breaker_k < 1],
    [breaker_cooldown_s < 0], [backpressure < 0], [mutate_every < 1],
    a non-positive tenant weight or deadline, an empty tenant name in
    the weights, or [tenant_quota < 1]. *)

val hit_rate : report -> float
(** Cache hits over lookups (0 when there were none). *)

val mean_queue_s : report -> float

(* lint: unused-export -- JSON codec surface for external log consumers *)
val record_json : job_record -> Cutfit_obs.Json.t
(* lint: unused-export -- JSON codec surface for external log consumers *)
val failure_json : job_failure -> Cutfit_obs.Json.t
(* lint: unused-export -- JSON codec surface for external log consumers *)
val breaker_trip_json : breaker_trip -> Cutfit_obs.Json.t
(* lint: unused-export -- JSON codec surface for external log consumers *)
val mutation_json : mutation_record -> Cutfit_obs.Json.t

(* lint: unused-export -- JSON codec surface for external log consumers *)
val report_json : report -> Cutfit_obs.Json.t
(** Full report: parameters, per-job records, permanent failures,
    breaker trips, cache stats, aggregates. *)

val report_lines : report -> string list
(** Canonical JSONL: one parameter/summary line (now carrying the
    overload and mutation knobs and the latency percentiles), one line
    per job record, one line per permanent failure, one line per
    breaker trip, one line per mutation batch, one cache-stats line —
    floats bit-exact, so the lines are a digest-stable serialization of
    the whole simulation ({!Workload_check.digest}). *)

val pp_summary : Format.formatter -> report -> unit
(** Human-oriented multi-line summary (policy, makespan, queue, cache
    hit rate) used by the CLI. *)
