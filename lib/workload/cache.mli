(** Budgeted partitioning cache.

    Partitionings are the expensive, reusable artifact of the pipeline:
    building a frozen {!Cutfit_bsp.Pgraph} costs a load plus a
    per-partition build phase, but the result is immutable and any later
    job on the same [(graph, strategy, num_partitions)] triple can reuse
    it. This cache holds frozen partitioned graphs under a byte budget
    (paper-scale resident bytes, from the cost model's per-edge /
    per-vertex object sizes) and evicts by {!Lru} (least recently used)
    or {!Cost_aware} (cheapest to rebuild per byte goes first).

    Every mutation is counted in {!stats}; the accounting obeys the
    conservation laws checked by {!Workload_check.cache_accounting}.

    Time is the simulation's clock, supplied by the caller: an entry
    inserted with [available_s = t] is invisible to lookups strictly
    before [t] — a partitioning built by a concurrent job cannot be hit
    until its build completes. All operations are deterministic. *)

type key = { graph : string; strategy : string; num_partitions : int }

val key_id : key -> string
(** ["youtube/DC/128"] — canonical, also the JSONL event key. *)

type eviction = Lru | Cost_aware

val eviction_name : eviction -> string
val eviction_of_string : string -> eviction option

type stats = {
  budget_bytes : float;
  lookups : int;
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;
  invalidations : int;  (** entries dropped by {!invalidate_all} *)
  rejections : int;  (** entries larger than the whole budget *)
  bytes_inserted : float;
  bytes_evicted : float;
  bytes_invalidated : float;
  bytes_in_cache : float;  (** recomputed over live entries *)
  entries : int;
}

type t

val create : ?eviction:eviction -> budget_bytes:float -> unit -> t
(** Default eviction {!Lru}. A non-positive budget disables the cache:
    every lookup misses, every insert is rejected. *)

(* lint: unused-export -- introspection accessor paired with create *)
val eviction_policy : t -> eviction
(* lint: unused-export -- introspection accessor paired with create *)
val budget_bytes : t -> float

val find : t -> at_s:float -> key -> Cutfit_bsp.Pgraph.t option
(** Counted lookup: increments [lookups] and [hits]/[misses], and on a
    hit refreshes the entry's recency. *)

val mem : t -> at_s:float -> key -> bool
(** Uncounted peek (scheduler cost prediction) — no stats or recency
    effect. *)

val cached_strategies : t -> at_s:float -> graph:string -> num_partitions:int -> string list
(** Strategies with a live, available entry for this graph and
    granularity, in insertion order. Uncounted. *)

val insert :
  t ->
  available_s:float ->
  key ->
  pg:Cutfit_bsp.Pgraph.t ->
  bytes:float ->
  rebuild_s:float ->
  [ `Inserted of (key * float) list | `Rejected ]
(** Insert a freshly built partitioning, evicting until it fits.
    [rebuild_s] is what rebuilding it would cost (the {!Cost_aware}
    victim score is [rebuild_s /. bytes] — cheap-per-byte goes first;
    {!Lru} evicts the least recently touched, ties broken by insertion
    order). Returns the evicted [(key, bytes)] pairs in eviction order,
    or [`Rejected] when [bytes] exceeds the whole budget (nothing is
    evicted for an entry that can never fit). Re-inserting a live key
    replaces it (the old entry counts as evicted). *)

val invalidate : t -> pred:(key -> bool) -> (key * float) list
(** Partial invalidation: drop every entry (live or pending) whose key
    satisfies [pred], in insertion order, returning the dropped
    [(key, bytes)] pairs. The dynamic-graph path drops exactly the
    mutated graph's keys — [pred:(fun k -> k.graph = dataset)] — and
    leaves other datasets' partitionings warm. Counted as
    [invalidations], not [evictions]; the conservation law
    [entries = insertions - evictions - invalidations] holds
    unchanged. *)

val invalidate_all : t -> (key * float) list
(** [invalidate ~pred:(fun _ -> true)]: drop everything. The workload
    engine calls this when a job's cluster dies past its crash budget:
    cached partitionings were resident on the lost executors, so none
    survives the cluster restart. *)

val peek_entries : t -> pred:(key -> bool) -> (key * Cutfit_bsp.Pgraph.t) list
(** Uncounted peek at the entries (live or pending) matching [pred], in
    insertion order — what a mutation batch inspects to price
    refreshing each resident partitioning before invalidating. *)

val stats : t -> stats
