module Advisor = Cutfit.Advisor
module Pipeline = Cutfit.Pipeline
module Graph = Cutfit_graph.Graph
module Strategy = Cutfit_partition.Strategy
module Partitioner = Cutfit_partition.Partitioner
module Metrics = Cutfit_partition.Metrics
module Cluster = Cutfit_bsp.Cluster
module Cost_model = Cutfit_bsp.Cost_model
module Elastic = Cutfit_bsp.Elastic
module Pgraph = Cutfit_bsp.Pgraph
module Trace = Cutfit_bsp.Trace
module Faults = Cutfit_bsp.Faults
module Speculation = Cutfit_bsp.Speculation
module Summary = Cutfit_stats.Summary
module Datasets = Cutfit_gen.Datasets
module Sssp = Cutfit_algo.Sssp
module Splitmix64 = Cutfit_prng.Splitmix64
module Telemetry = Cutfit_obs.Telemetry
module Event = Cutfit_obs.Event
module Json = Cutfit_obs.Json
module Streaming = Cutfit_partition.Streaming
module Mutation = Cutfit_dynamic.Mutation
module Incremental = Cutfit_dynamic.Incremental
module Repartition = Cutfit_dynamic.Repartition

type policy = Fifo | Sjf

let policy_name = function Fifo -> "fifo" | Sjf -> "sjf"

let policy_of_string s =
  match String.lowercase_ascii s with "fifo" -> Some Fifo | "sjf" -> Some Sjf | _ -> None

type selection = Heuristic | Measured | Cache_aware of float

let selection_name = function
  | Heuristic -> "heuristic"
  | Measured -> "measured"
  | Cache_aware _ -> "cache-aware"

let selection_of_string ?(threshold = 0.25) s =
  match String.lowercase_ascii s with
  | "heuristic" -> Some Heuristic
  | "measured" | "measure" -> Some Measured
  | "cache-aware" | "cacheaware" | "cache" -> Some (Cache_aware threshold)
  | _ -> None

type shed_policy = Reject | Drop_oldest

let shed_policy_name = function Reject -> "reject" | Drop_oldest -> "drop-oldest"

let shed_policy_of_string s =
  match String.lowercase_ascii s with
  | "reject" -> Some Reject
  | "drop-oldest" | "dropoldest" | "oldest" -> Some Drop_oldest
  | _ -> None

type deadline = Absolute of float | Factor of float

let deadline_name = function
  | Absolute s -> Printf.sprintf "absolute:%g" s
  | Factor f -> Printf.sprintf "factor:%g" f

type breaker_trip = {
  trip_tenant : string;
  trip_dataset : string;
  trip_strategy : string;
  trip_at_s : float;
  opened : bool;
  trip_failures : int;
}

(* Per-tenant breaker namespaces: one tenant's failures trip only its
   own breakers. Single-tenant streams keep the bare dataset scope, so
   pre-tenancy event streams and digests are byte-identical. *)
let breaker_scope ~tenant ~dataset =
  if String.equal tenant Job.default_tenant then dataset else tenant ^ "/" ^ dataset

type job_record = {
  job : Job.t;
  strategy : string;
  cache_hit : bool;
  outcome : string;
  attempts : int;
  preemptions : int;
  recoveries : int;
  recovery_s : float;
  speculations : int;
  deadline_s : float option;
  failed : bool;
  start_s : float;
  queue_s : float;
  partition_s : float;
  exec_s : float;
  finish_s : float;
}

type job_failure = { job_id : int; failed_attempts : int; reason : string }

(* How a mutation batch resolves the refresh-vs-rebuild question:
   [Priced] asks the cost model, the forced modes pin the answer — the
   bench's control arms for the incremental-vs-rebuild comparison. *)
type mutation_mode = Priced | Force_refresh | Force_rebuild

let mutation_mode_name = function
  | Priced -> "priced"
  | Force_refresh -> "refresh"
  | Force_rebuild -> "rebuild"

let mutation_mode_of_string s =
  match String.lowercase_ascii s with
  | "priced" -> Some Priced
  | "refresh" -> Some Force_refresh
  | "rebuild" -> Some Force_rebuild
  | _ -> None

type mutation_record = {
  mut_batch : int;
  mut_dataset : string;
  mut_at_s : float;
  mut_inserts : int;
  mut_deletes : int;
  mut_edges_after : int;
  mut_refresh_s : float;
  mut_rebuild_s : float;
  mut_choice : string;
  mut_dropped_entries : int;
  mut_refreshed_entries : int;
}

type report = {
  policy : policy;
  selection : selection;
  eviction : Cache.eviction;
  budget_bytes : float;
  slots : int;
  seed : int64;
  max_retries : int;
  fault_spec : string option;
  checkpoint_every : int option;
  queue_bound : int option;
  shed_policy : shed_policy;
  deadline : deadline option;
  breaker_k : int option;
  breaker_cooldown_s : float;
  backpressure : int option;
  speculation : Speculation.config option;
  mutation_spec : string option;
  mutate_every : int;
  mutation_mode : mutation_mode;
  scale_spec : string option;
  tenant_weights : (string * float) list;
  tenant_quota : int option;
  tenant_deadlines : (string * deadline) list;
  fairness : bool;
  records : job_record list;
  failures : job_failure list;
  breaker_trips : breaker_trip list;
  mutations : mutation_record list;
  retries : int;
  joins : int;
  leaves : int;
  preemptions : int;
  stale_placement_hits : int;
  fairness_violations : int;
  cache : Cache.stats;
  makespan_s : float;
  total_queue_s : float;
  total_partition_s : float;
  total_exec_s : float;
}

let failed_jobs r = List.length r.failures

let count_outcome name r =
  List.length (List.filter (fun x -> String.equal x.outcome name) r.records)

let shed_jobs = count_outcome "shed"
let deadline_jobs = count_outcome "deadline"
let total_speculations r = List.fold_left (fun acc x -> acc + x.speculations) 0 r.records

(* Job latency = finish - arrival, over the jobs that actually produced
   a result: sheds, deadline cancels and other permanent failures are
   accounted separately (their latency would be an artifact of the
   give-up instant, not of service). *)
let latency_percentiles r =
  match
    List.filter_map
      (fun x -> if x.failed then None else Some (x.finish_s -. x.job.Job.arrival_s))
      r.records
  with
  | [] -> None
  | l -> Some (Summary.percentiles (Array.of_list l))

(* Requeue backoff after a cluster loss: capped exponential on the
   attempt number, in simulated seconds — long enough to model a
   cluster restart, bounded so a stubborn schedule cannot stall the
   queue forever. *)
let retry_backoff_base_s = 2.0
let retry_backoff_cap_s = 30.0

let retry_delay_s ~attempt =
  Float.min retry_backoff_cap_s (retry_backoff_base_s *. (2.0 ** float_of_int (attempt - 1)))

(* Modeled resident bytes of a frozen partitioning: the cost model's
   per-edge and per-vertex JVM object sizes over every partition's local
   tables, at paper scale — the same footprint the memory model charges
   executors during a run. *)
let pgraph_bytes ~scale pg =
  let cost = Cost_model.default in
  let edges = ref 0 and verts = ref 0 in
  for p = 0 to Pgraph.num_partitions pg - 1 do
    edges := !edges + Pgraph.num_edges_of_partition pg p;
    verts := !verts + Pgraph.local_vertices pg p
  done;
  scale
  *. ((float_of_int !edges *. float_of_int cost.Cost_model.edge_object_bytes)
     +. (float_of_int !verts *. float_of_int cost.Cost_model.vertex_object_bytes))

let run ?(cluster = Cluster.config_i) ?(slots = 2) ?(eviction = Cache.Lru)
    ?(budget_bytes = 8.0e9) ?iterations ?checkpoint_every ?faults ?speculation ?(max_retries = 2)
    ?queue_bound ?(shed_policy = Reject) ?deadline ?breaker_k ?(breaker_cooldown_s = 60.0)
    ?backpressure ?telemetry ?(policy = Fifo) ?(selection = Cache_aware 0.25) ?mutations
    ?(mutate_every = 8) ?(mutation_mode = Priced) ?(mutation_heuristic = Streaming.Greedy)
    ?scale_events ?(tenant_weights = []) ?tenant_quota ?(tenant_deadlines = [])
    ?(fairness = false) ~seed jobs =
  if slots < 1 then invalid_arg "Engine.run: slots must be >= 1";
  if mutate_every < 1 then invalid_arg "Engine.run: mutate_every must be >= 1";
  if max_retries < 0 then invalid_arg "Engine.run: max_retries must be >= 0";
  (match queue_bound with
  | Some b when b < 1 -> invalid_arg "Engine.run: queue_bound must be >= 1"
  | _ -> ());
  (match deadline with
  | Some (Absolute s) when s <= 0.0 -> invalid_arg "Engine.run: absolute deadline must be > 0"
  | Some (Factor f) when f <= 0.0 -> invalid_arg "Engine.run: deadline factor must be > 0"
  | _ -> ());
  (match breaker_k with
  | Some k when k < 1 -> invalid_arg "Engine.run: breaker_k must be >= 1"
  | _ -> ());
  if breaker_cooldown_s < 0.0 then invalid_arg "Engine.run: breaker_cooldown_s must be >= 0";
  (match backpressure with
  | Some w when w < 0 -> invalid_arg "Engine.run: backpressure watermark must be >= 0"
  | _ -> ());
  List.iter
    (fun (tn, w) ->
      if String.length tn = 0 then invalid_arg "Engine.run: empty tenant name in weights";
      if not (w > 0.0) then invalid_arg "Engine.run: tenant weights must be > 0")
    tenant_weights;
  (match tenant_quota with
  | Some q when q < 1 -> invalid_arg "Engine.run: tenant_quota must be >= 1"
  | _ -> ());
  List.iter
    (fun (_, d) ->
      match d with
      | Absolute s when s <= 0.0 -> invalid_arg "Engine.run: absolute tenant deadline must be > 0"
      | Factor f when f <= 0.0 -> invalid_arg "Engine.run: tenant deadline factor must be > 0"
      | _ -> ())
    tenant_deadlines;
  let cache = Cache.create ~eviction ~budget_bytes () in
  let emit e = match telemetry with None -> () | Some t -> Telemetry.emit t e in
  (* --- elastic membership timeline --- *)
  (* Scale events are a static function of simulated time: the spec's
     join/leave items fold into a membership chain from the initial
     [slots], clamped to [1, slots + total joins], and every preempt
     item realizes its victim against the membership at its instant —
     all decided up front, so the simulation stays bit-reproducible.
     A leave is a graceful drain: the departing slot finishes its
     running job and simply never gets another; a join opens a fresh
     slot at the join instant; a preemption kills the job running on
     the victim slot mid-flight (spot reclamation). *)
  let total_joins = match scale_events with None -> 0 | Some c -> Elastic.total_joins c in
  let max_slots = slots + total_joins in
  let timeline =
    match scale_events with
    | None -> []
    | Some (c : Elastic.config) ->
        let step_of = function
          | Elastic.Join { step; _ } | Elastic.Leave { step; _ } | Elastic.Preempt { step; _ } ->
              step
        in
        let items = List.stable_sort (fun a b -> compare (step_of a) (step_of b)) c.Elastic.items in
        List.rev
          (fst
             (List.fold_left
                (fun (acc, live) item ->
                  match item with
                  | Elastic.Join { step; count } ->
                      let after = min max_slots (live + count) in
                      if after = live then (acc, live)
                      else (`Scale (step, live, after) :: acc, after)
                  | Elastic.Leave { step; count } ->
                      let after = max 1 (live - count) in
                      if after = live then (acc, live)
                      else (`Scale (step, live, after) :: acc, after)
                  | Elastic.Preempt { step; retries } ->
                      let victim = Elastic.victim c ~step ~alive:live in
                      (`Preempt (step, victim, retries) :: acc, live))
                ([], slots) items))
  in
  let live_at t =
    List.fold_left
      (fun live ev ->
        match ev with
        | `Scale (step, _, after) when float_of_int step <= t -> after
        | `Scale _ | `Preempt _ -> live)
      slots timeline
  in
  (* Earliest instant >= [t0] at which slot [s] is a live executor —
     [None] only for a slot that never (re)joins past [t0]; slot 0 is
     always live (membership is clamped at 1). *)
  let slot_usable_from s t0 =
    if s < live_at t0 then Some t0
    else
      List.fold_left
        (fun acc ev ->
          match (acc, ev) with
          | Some _, _ -> acc
          | None, `Scale (step, _, after) when float_of_int step > t0 && s < after ->
              Some (float_of_int step)
          | None, (`Scale _ | `Preempt _) -> None)
        None timeline
  in
  let preempts_for s =
    List.filter_map
      (function
        | `Preempt (step, victim, r) when victim = s -> Some (float_of_int step, r)
        | `Preempt _ | `Scale _ -> None)
      timeline
  in
  (* Where each cached partitioning lives: the membership at the instant
     the entry became available. An entry whose placement references a
     since-departed executor is stale and must never serve a hit — the
     leave handler invalidates eagerly, and [stale_placement_hits]
     recounts the law independently on every hit. *)
  let placements : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let note_placement (k : Cache.key) ~available_s =
    Hashtbl.replace placements (Cache.key_id k) (live_at available_s)
  in
  let stale_placement_hits = ref 0 in
  let joins = ref 0 and leaves = ref 0 and preemptions = ref 0 in
  let mpending =
    ref (List.filter_map (function `Scale e -> Some e | `Preempt _ -> None) timeline)
  in
  let process_membership ~upto =
    let fire, keep =
      List.partition (fun (step, _, _) -> float_of_int step <= upto) !mpending
    in
    mpending := keep;
    List.iter
      (fun (step, before, after) ->
        if after > before then begin
          incr joins;
          emit (Event.Executor_join { Event.step; count = after - before; executors = after })
        end
        else begin
          incr leaves;
          emit (Event.Executor_leave { Event.step; count = before - after; executors = after });
          (* Satellite law: entries placed on departed executors are
             dropped the instant the membership shrinks. *)
          let stale (k : Cache.key) =
            match Hashtbl.find_opt placements (Cache.key_id k) with
            | Some placed -> placed > after
            | None -> false
          in
          let snapshot = Cache.stats cache in
          let dropped = Cache.invalidate cache ~pred:stale in
          let occ = ref snapshot.Cache.bytes_in_cache and ents = ref snapshot.Cache.entries in
          List.iter
            (fun ((k : Cache.key), b) ->
              Hashtbl.remove placements (Cache.key_id k);
              occ := !occ -. b;
              ents := !ents - 1;
              emit
                (Event.Cache_op
                   {
                     Event.op = "invalidate";
                     graph = k.Cache.graph;
                     strategy = k.Cache.strategy;
                     num_partitions = k.Cache.num_partitions;
                     bytes = b;
                     occupancy_bytes = !occ;
                     entries = !ents;
                     at_s = float_of_int step;
                   }))
            dropped
        end)
      fire
  in
  (* --- multi-tenancy --- *)
  let weight_of tn =
    match List.assoc_opt tn tenant_weights with Some w -> w | None -> 1.0
  in
  let tenant_busy : (string, float) Hashtbl.t = Hashtbl.create 8 in
  let busy_of tn = Option.value ~default:0.0 (Hashtbl.find_opt tenant_busy tn) in
  let note_busy tn s = Hashtbl.replace tenant_busy tn (busy_of tn +. s) in
  let fairness_violations = ref 0 in
  (* Memoized per-dataset graph (and its paper scale) and per
     (dataset, granularity, metric) advisor rankings — jobs sharing a
     dataset share the measurement, as a resident advisor service
     would. *)
  let graphs : (string, Graph.t * float * Datasets.spec) Hashtbl.t = Hashtbl.create 16 in
  let graph_of dataset =
    match Hashtbl.find_opt graphs dataset with
    | Some entry -> entry
    | None ->
        let spec = Datasets.find dataset in
        let g = Datasets.generate spec in
        let scale = float_of_int spec.Datasets.paper_edges /. float_of_int (Graph.num_edges g) in
        let entry = (g, scale, spec) in
        Hashtbl.replace graphs dataset entry;
        entry
  in
  let rankings : (string, Advisor.ranked list) Hashtbl.t = Hashtbl.create 16 in
  let ranked_for (job : Job.t) =
    let metric = Advisor.predictive_metric job.Job.algorithm in
    let key = Printf.sprintf "%s#%d#%s" job.Job.dataset job.Job.num_partitions metric in
    match Hashtbl.find_opt rankings key with
    | Some r -> r
    | None ->
        let g, _, _ = graph_of job.Job.dataset in
        let r = Advisor.measure job.Job.algorithm ~num_partitions:job.Job.num_partitions g in
        Hashtbl.replace rankings key r;
        r
  in
  let cluster_for (job : Job.t) = { cluster with Cluster.num_partitions = job.Job.num_partitions } in
  (* One fault realization per (job, attempt): the schedule's items stay
     exactly as specified, but the seeded draws (random faults, unpinned
     executors) differ per job and per retry — a retried job faces a
     fresh realization of the same fault environment, so a [rand@R]
     schedule can kill one attempt and spare the next. *)
  let faults_for (job : Job.t) ~attempt =
    match faults with
    | None -> None
    | Some (f : Faults.config) ->
        let mixed =
          Splitmix64.mix64
            (Int64.logxor
               (Int64.mul (Int64.of_int (job.Job.id + 1)) 0x9E3779B97F4A7C15L)
               (Int64.add
                  (Int64.of_int f.Faults.seed)
                  (Int64.mul (Int64.of_int attempt) 0xBF58476D1CE4E5B9L)))
        in
        Some { f with Faults.seed = Int64.to_int mixed land 0x3FFFFFFF }
  in
  (* Structural admission control: a malformed job must produce a failed
     record, never an exception out of the scheduler loop. *)
  let invalid_reason (job : Job.t) =
    if job.Job.num_partitions < 1 then
      Some (Printf.sprintf "num_partitions %d < 1" job.Job.num_partitions)
    else
      match Datasets.find job.Job.dataset with
      | _ -> None
      | exception Not_found -> Some (Printf.sprintf "unknown dataset %S" job.Job.dataset)
  in
  (* --- circuit breakers --- *)
  (* One breaker per (dataset, strategy): [breaker_k] consecutive
     aborted / error / out-of-memory attempts open it; while open (and
     inside the cooldown) selection routes around the strategy via the
     degraded cache-aware path. Past the cooldown the breaker is
     half-open: the next job that selects the strategy is the probe — a
     success closes the breaker, a failure re-arms the cooldown. Cells
     are (consecutive failures, open-since). *)
  let breakers : (string, int ref * float option ref) Hashtbl.t = Hashtbl.create 16 in
  let breaker_trips = ref [] in
  let breaker_key ~tenant ~dataset ~strategy =
    breaker_scope ~tenant ~dataset ^ "/" ^ strategy
  in
  let breaker_cell ~tenant ~dataset ~strategy =
    let key = breaker_key ~tenant ~dataset ~strategy in
    match Hashtbl.find_opt breakers key with
    | Some c -> c
    | None ->
        let c = (ref 0, ref None) in
        Hashtbl.replace breakers key c;
        c
  in
  let breaker_blocks ~at_s ~tenant ~dataset strategy_name =
    match breaker_k with
    | None -> false
    | Some _ -> (
        match Hashtbl.find_opt breakers (breaker_key ~tenant ~dataset ~strategy:strategy_name) with
        | Some (_, { contents = Some since }) -> at_s < since +. breaker_cooldown_s
        | _ -> false)
  in
  let breaker_note ~at_s ~tenant ~dataset ~strategy ok =
    match breaker_k with
    | None -> ()
    | Some k ->
        let fails, open_since = breaker_cell ~tenant ~dataset ~strategy in
        let scope = breaker_scope ~tenant ~dataset in
        if ok then begin
          fails := 0;
          match !open_since with
          | None -> ()
          | Some _ ->
              open_since := None;
              breaker_trips :=
                {
                  trip_tenant = tenant;
                  trip_dataset = dataset;
                  trip_strategy = strategy;
                  trip_at_s = at_s;
                  opened = false;
                  trip_failures = 0;
                }
                :: !breaker_trips;
              emit (Event.Breaker_close { Event.dataset = scope; strategy; at_s })
        end
        else begin
          incr fails;
          (* Trip on the k-th consecutive failure; a failed half-open
             probe re-arms the open state (a fresh cooldown). *)
          if !fails >= k || !open_since <> None then begin
            open_since := Some at_s;
            breaker_trips :=
              {
                trip_tenant = tenant;
                trip_dataset = dataset;
                trip_strategy = strategy;
                trip_at_s = at_s;
                opened = true;
                trip_failures = !fails;
              }
              :: !breaker_trips;
            emit (Event.Breaker_open { Event.dataset = scope; strategy; at_s; failures = !fails })
          end
        end
  in
  (* The degraded selection path, used under queue backpressure and when
     the preferred strategy's breaker is open: best-ranked strategy that
     is already cached (zero build cost) and not breaker-blocked, then
     the best non-blocked strategy, then the overall best as a last
     resort (everything blocked — the probe). *)
  let degraded_pick ~at_s (job : Job.t) =
    let ranked = ranked_for job in
    let cached =
      Cache.cached_strategies cache ~at_s ~graph:job.Job.dataset
        ~num_partitions:job.Job.num_partitions
    in
    let is_cached (r : Advisor.ranked) =
      List.exists (String.equal (Strategy.to_string r.Advisor.strategy)) cached
    in
    let unblocked (r : Advisor.ranked) =
      not
        (breaker_blocks ~at_s ~tenant:job.Job.tenant ~dataset:job.Job.dataset
           (Strategy.to_string r.Advisor.strategy))
    in
    match List.find_opt (fun r -> is_cached r && unblocked r) ranked with
    | Some r -> r.Advisor.strategy
    | None -> (
        match List.find_opt unblocked ranked with
        | Some r -> r.Advisor.strategy
        | None -> (List.hd ranked).Advisor.strategy)
  in
  let choose_strategy ?(depth = 0) ~at_s (job : Job.t) =
    let preferred =
      match selection with
      | Heuristic ->
          let _, _, spec = graph_of job.Job.dataset in
          let size =
            Advisor.classify ~paper_scale_edges:(float_of_int spec.Datasets.paper_edges)
          in
          Advisor.heuristic job.Job.algorithm ~size ~num_partitions:job.Job.num_partitions
      | Measured -> (List.hd (ranked_for job)).Advisor.strategy
      | Cache_aware threshold -> (
          let ranked = ranked_for job in
          let best = List.hd ranked in
          let cached =
            Cache.cached_strategies cache ~at_s ~graph:job.Job.dataset
              ~num_partitions:job.Job.num_partitions
          in
          let is_cached (r : Advisor.ranked) =
            List.exists (String.equal (Strategy.to_string r.Advisor.strategy)) cached
          in
          match List.find_opt is_cached ranked with
          | Some r
            when (r.Advisor.score -. best.Advisor.score) /. Float.max best.Advisor.score 1.0
                 <= threshold ->
              r.Advisor.strategy
          | Some _ | None -> best.Advisor.strategy)
    in
    let overloaded = match backpressure with Some w -> depth > w | None -> false in
    if overloaded then degraded_pick ~at_s job
    else if
      breaker_blocks ~at_s ~tenant:job.Job.tenant ~dataset:job.Job.dataset
        (Strategy.to_string preferred)
    then degraded_pick ~at_s job
    else preferred
  in
  let metrics_of (job : Job.t) strategy =
    let name = Strategy.to_string strategy in
    let r =
      List.find
        (fun (r : Advisor.ranked) -> String.equal (Strategy.to_string r.Advisor.strategy) name)
        (ranked_for job)
    in
    r.Advisor.metrics
  in
  let predicted_service ~at_s (job : Job.t) =
    let g, scale, _ = graph_of job.Job.dataset in
    let strategy = choose_strategy ~at_s job in
    let m = metrics_of job strategy in
    let cl = cluster_for job in
    let key =
      {
        Cache.graph = job.Job.dataset;
        strategy = Strategy.to_string strategy;
        num_partitions = job.Job.num_partitions;
      }
    in
    let build =
      if Cache.mem cache ~at_s key then 0.0
      else Advisor.predicted_build_s ~cluster:cl ~scale g m
    in
    build +. Advisor.predicted_exec_s ~cluster:cl ~scale job.Job.algorithm g m
  in
  (* Per-job SLO deadline, memoized at first use (admission or SJF
     ranking): an absolute offset from arrival, or the advisor-predicted
     service time times a factor — so a job's SLO scales with what the
     advisor believes the job should cost. The deadline never moves
     across retries: the SLO is a property of the job, not the
     attempt. *)
  let deadlines : (int, float) Hashtbl.t = Hashtbl.create 16 in
  (* A tenant-level SLO overrides the global one: premium tenants buy
     tighter (or looser) deadlines without touching anyone else's. *)
  let deadline_spec_for (job : Job.t) =
    match List.assoc_opt job.Job.tenant tenant_deadlines with
    | Some d -> Some d
    | None -> deadline
  in
  let deadline_of (job : Job.t) =
    match deadline_spec_for job with
    | None -> None
    | Some d -> (
        match Hashtbl.find_opt deadlines job.Job.id with
        | Some v -> Some v
        | None ->
            let v =
              match d with
              | Absolute s -> job.Job.arrival_s +. s
              | Factor f ->
                  job.Job.arrival_s +. (f *. predicted_service ~at_s:job.Job.arrival_s job)
            in
            Hashtbl.replace deadlines job.Job.id v;
            Some v)
  in
  let emit_cache_op op (k : Cache.key) ~bytes ~occupancy ~entries ~at_s =
    emit
      (Event.Cache_op
         {
           Event.op;
           graph = k.Cache.graph;
           strategy = k.Cache.strategy;
           num_partitions = k.Cache.num_partitions;
           bytes;
           occupancy_bytes = occupancy;
           entries;
           at_s;
         })
  in
  let run_algorithm (job : Job.t) prepared =
    match job.Job.algorithm with
    | Advisor.Pagerank -> snd (Pipeline.pagerank ?iterations prepared)
    | Advisor.Connected_components -> snd (Pipeline.connected_components ?iterations prepared)
    | Advisor.Triangle_count ->
        let _, _, trace = Pipeline.triangles prepared in
        trace
    | Advisor.Shortest_paths ->
        let g, _, _ = graph_of job.Job.dataset in
        let job_seed =
          Splitmix64.mix64 (Int64.logxor seed (Int64.mul (Int64.of_int (job.Job.id + 1)) 0x9E3779B97F4A7C15L))
        in
        let landmarks = Sssp.pick_landmarks ~seed:job_seed ~count:3 g in
        snd (Pipeline.shortest_paths ~landmarks prepared)
  in
  (* Streaming ingestion: every [mutate_every]-th job launch first lands
     a mutation batch on its own dataset. The memoized graph advances,
     the advisor's rankings for that dataset are forgotten, and the
     cache loses exactly that dataset's keys. On the refresh path the
     incremental repair runs synchronously with the batch — the
     refreshed partitionings are valid the instant it completes, and
     the triggering job is delayed by the summed refresh price (the
     returned value). On the rebuild path nothing is re-inserted: the
     next job on the dataset pays its full partition build on the
     miss. *)
  let launches = ref 0 in
  let mutation_log = ref [] in
  let apply_mutations ~at_s (job : Job.t) =
    match mutations with
    | None -> 0.0
    | Some cfg ->
        incr launches;
        if !launches mod mutate_every <> 0 then 0.0
        else begin
          let batch = !launches / mutate_every in
          let dataset = job.Job.dataset in
          let g, _, spec = graph_of dataset in
          let delta = Mutation.plan cfg ~batch g in
          if Mutation.is_empty delta then 0.0
          else begin
            let edges_before = Graph.num_edges g in
            let new_g = Mutation.apply g delta in
            let new_scale =
              float_of_int spec.Datasets.paper_edges /. float_of_int (Graph.num_edges new_g)
            in
            let pred (k : Cache.key) = String.equal k.Cache.graph dataset in
            (* Price refreshing each resident partitioning of this
               dataset against rebuilding it on the post-delta graph.
               Every resident entry was built against the memoized
               pre-delta graph (an earlier batch dropped anything
               older), so the refresh is well-defined. *)
            let resident =
              List.map
                (fun ((k : Cache.key), pg) ->
                  let refreshed =
                    Incremental.refresh mutation_heuristic
                      ~num_partitions:k.Cache.num_partitions ~graph:g
                      ~assignment:(Pgraph.assignment pg) delta
                  in
                  let refresh_s =
                    Repartition.refresh_price ~cluster ~scale:new_scale
                      ~placed_edges:refreshed.Incremental.placed_edges
                      ~repaired_vertices:refreshed.Incremental.repaired_vertices
                      ~moved_replicas:refreshed.Incremental.moved_replicas ()
                  in
                  let rebuild_s =
                    Repartition.rebuild_price ~cluster ~scale:new_scale new_g
                      (Pgraph.metrics pg)
                  in
                  (k, refreshed, refresh_s, rebuild_s))
                (Cache.peek_entries cache ~pred)
            in
            let sumf f = List.fold_left (fun acc x -> acc +. f x) 0.0 resident in
            let refresh_total = sumf (fun (_, _, r, _) -> r) in
            let rebuild_total = sumf (fun (_, _, _, b) -> b) in
            let refresh_chosen =
              match mutation_mode with
              | Force_refresh -> true
              | Force_rebuild -> false
              | Priced -> refresh_total <= rebuild_total
            in
            (* Advance the memoized graph; the advisor re-measures on the
               next job that needs a ranking for this dataset. *)
            Hashtbl.replace graphs dataset (new_g, new_scale, spec);
            let prefix = dataset ^ "#" in
            let stale =
              (* lint: order-independent *)
              Hashtbl.fold
                (fun key _ acc ->
                  if
                    String.length key >= String.length prefix
                    && String.equal (String.sub key 0 (String.length prefix)) prefix
                  then key :: acc
                  else acc)
                rankings []
            in
            List.iter (Hashtbl.remove rankings) stale;
            let before = Cache.stats cache in
            let dropped = Cache.invalidate cache ~pred in
            let occ = ref before.Cache.bytes_in_cache and ents = ref before.Cache.entries in
            List.iter
              (fun (k, b) ->
                occ := !occ -. b;
                ents := !ents - 1;
                emit_cache_op "invalidate" k ~bytes:b ~occupancy:!occ ~entries:!ents ~at_s)
              dropped;
            if refresh_chosen then
              List.iter
                (fun ((k : Cache.key), (refreshed : Incremental.refreshed), _refresh_s, rebuild_s)
                   ->
                  let pg' =
                    Pgraph.build new_g ~num_partitions:k.Cache.num_partitions
                      refreshed.Incremental.assignment
                  in
                  let bytes = pgraph_bytes ~scale:new_scale pg' in
                  (* The repair is synchronous with the batch: the entry
                     is valid the moment the (delayed) triggering job
                     looks it up. The refresh price is charged as the
                     returned stream delay, not as entry latency. *)
                  let available_s = at_s in
                  let before = Cache.stats cache in
                  match Cache.insert cache ~available_s k ~pg:pg' ~bytes ~rebuild_s with
                  | `Inserted evicted ->
                      note_placement k ~available_s;
                      let occ = ref before.Cache.bytes_in_cache
                      and ents = ref before.Cache.entries in
                      List.iter
                        (fun (ek, b) ->
                          occ := !occ -. b;
                          ents := !ents - 1;
                          emit_cache_op "evict" ek ~bytes:b ~occupancy:!occ ~entries:!ents
                            ~at_s:available_s)
                        evicted;
                      occ := !occ +. bytes;
                      ents := !ents + 1;
                      emit_cache_op "insert" k ~bytes ~occupancy:!occ ~entries:!ents
                        ~at_s:available_s
                  | `Rejected ->
                      emit_cache_op "reject" k ~bytes ~occupancy:before.Cache.bytes_in_cache
                        ~entries:before.Cache.entries ~at_s:available_s)
                resident;
            let sumi f =
              List.fold_left
                (fun acc (_, (r : Incremental.refreshed), _, _) -> acc + f r)
                0 resident
            in
            emit
              (Event.Mutation_batch
                 {
                   Event.batch;
                   graph = dataset;
                   inserts = Array.length delta.Mutation.inserts;
                   deletes = Array.length delta.Mutation.deletes;
                   edges_before;
                   edges_after = Graph.num_edges new_g;
                   at_s;
                 });
            emit
              (Event.Repartition
                 {
                   Event.batch;
                   graph = dataset;
                   choice = (if refresh_chosen then "refresh" else "rebuild");
                   refresh_s = refresh_total;
                   rebuild_s = rebuild_total;
                   placed_edges = sumi (fun r -> r.Incremental.placed_edges);
                   repaired_vertices = sumi (fun r -> r.Incremental.repaired_vertices);
                   moved_replicas = sumi (fun r -> r.Incremental.moved_replicas);
                   at_s;
                 });
            mutation_log :=
              {
                mut_batch = batch;
                mut_dataset = dataset;
                mut_at_s = at_s;
                mut_inserts = Array.length delta.Mutation.inserts;
                mut_deletes = Array.length delta.Mutation.deletes;
                mut_edges_after = Graph.num_edges new_g;
                mut_refresh_s = refresh_total;
                mut_rebuild_s = rebuild_total;
                mut_choice = (if refresh_chosen then "refresh" else "rebuild");
                mut_dropped_entries = List.length dropped;
                mut_refreshed_entries = (if refresh_chosen then List.length resident else 0);
              }
              :: !mutation_log;
            if refresh_chosen then refresh_total else 0.0
          end
        end
  in
  (* One attempt of one job. Returns the attempt's record plus its
     structural status: [`Ok] (recorded as-is), [`Lost] (the cluster
     died past the run's crash budget — candidate for requeueing),
     [`Preempted] (the slot was reclaimed mid-run — requeued without
     consuming the retry budget), or [`Error reason] (an exception from
     the pipeline, converted into a failed record so nothing escapes
     the scheduler loop). *)
  let preempt_no : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let preempts_of (j : Job.t) =
    Option.value ~default:0 (Hashtbl.find_opt preempt_no j.Job.id)
  in
  let execute ~start_s ~attempt ~slot_preempts ~depth (job : Job.t) =
    let g, scale, _ = graph_of job.Job.dataset in
    let dl = deadline_of job in
    let strategy = choose_strategy ~depth ~at_s:start_s job in
    let sname = Strategy.to_string strategy in
    let ckey =
      { Cache.graph = job.Job.dataset; strategy = sname; num_partitions = job.Job.num_partitions }
    in
    let cached = Cache.find cache ~at_s:start_s ckey in
    (* Stale-placement law: a hit served from an entry whose recorded
       placement references executors beyond the current membership
       would hand the job partitions homed on departed hosts. The leave
       handler invalidates eagerly, so this recount must stay zero. *)
    (match cached with
    | Some _ -> (
        match Hashtbl.find_opt placements (Cache.key_id ckey) with
        | Some placed when placed > live_at start_s -> incr stale_placement_hits
        | _ -> ())
    | None -> ());
    let job_faults = faults_for job ~attempt in
    let prepared, hit =
      match cached with
      | Some pg ->
          ( Pipeline.of_pgraph ~cluster:(cluster_for job) ~scale ?checkpoint_every
              ?faults:job_faults ?speculation ~partitioner:(Partitioner.Hash strategy) pg,
            true )
      | None ->
          ( Pipeline.prepare ~cluster:(cluster_for job) ~partitioner:(Partitioner.Hash strategy)
              ~scale ?checkpoint_every ?faults:job_faults ?speculation
              ~algorithm:job.Job.algorithm g,
            false )
    in
    let snapshot = Cache.stats cache in
    emit_cache_op
      (if hit then "hit" else "miss")
      ckey
      ~bytes:(if hit then pgraph_bytes ~scale prepared.Pipeline.pg else 0.0)
      ~occupancy:snapshot.Cache.bytes_in_cache ~entries:snapshot.Cache.entries ~at_s:start_s;
    emit
      (Event.Job_start
         {
           Event.job_id = job.Job.id;
           strategy = sname;
           cache_hit = hit;
           start_s;
           queue_s = start_s -. job.Job.arrival_s;
         });
    let mk_record ~outcome ~recoveries ~recovery_s ~speculations ~partition_s ~exec_s =
      {
        job;
        strategy = sname;
        cache_hit = hit;
        outcome;
        attempts = attempt;
        preemptions = preempts_of job;
        recoveries;
        recovery_s;
        speculations;
        deadline_s = dl;
        failed = false;
        start_s;
        queue_s = start_s -. job.Job.arrival_s;
        partition_s;
        exec_s;
        finish_s = start_s +. partition_s +. exec_s;
      }
    in
    match run_algorithm job prepared with
    | exception (Invalid_argument reason | Failure reason) ->
        let record =
          mk_record ~outcome:"error" ~recoveries:0 ~recovery_s:0.0 ~speculations:0
            ~partition_s:0.0 ~exec_s:0.0
        in
        emit
          (Event.Job_end
             {
               Event.job_id = job.Job.id;
               outcome = record.outcome;
               partition_s = 0.0;
               exec_s = 0.0;
               finish_s = record.finish_s;
             });
        (record, `Error reason)
    | trace ->
        (* The BSP engines run without a telemetry handle here (the
           workload stream narrates at job granularity), so itemize this
           attempt's speculative clones from the trace it returned. *)
        List.iter
          (fun (s : Cutfit_bsp.Trace.speculation) ->
            emit
              (Event.Speculative_launch
                 {
                   Event.step = s.Cutfit_bsp.Trace.at_step;
                   executor = s.Cutfit_bsp.Trace.executor;
                   host = s.Cutfit_bsp.Trace.host;
                   cloned_partitions = s.Cutfit_bsp.Trace.cloned_partitions;
                   original_busy_s = s.Cutfit_bsp.Trace.original_busy_s;
                   clone_busy_s = s.Cutfit_bsp.Trace.clone_busy_s;
                   wire_bytes = s.Cutfit_bsp.Trace.speculative_wire_bytes;
                   compute_s = s.Cutfit_bsp.Trace.speculative_compute_s;
                 });
            if s.Cutfit_bsp.Trace.won then
              emit
                (Event.Speculative_win
                   {
                     Event.step = s.Cutfit_bsp.Trace.at_step;
                     executor = s.Cutfit_bsp.Trace.executor;
                     host = s.Cutfit_bsp.Trace.host;
                     saved_s = s.Cutfit_bsp.Trace.saved_s;
                   }))
          trace.Trace.speculations;
        (* Decompose the real trace: the engines always record the load
           and the step -1 build stage, whether or not the partitioning
           was freshly built — a cache hit is exactly the run that skips
           them. *)
        let build_s =
          match
            List.find_opt (fun (s : Trace.superstep) -> s.Trace.step = -1) trace.Trace.supersteps
          with
          | Some s -> s.Trace.time_s
          | None -> 0.0
        in
        let partition_cost = trace.Trace.load_s +. build_s in
        let exec_total = trace.Trace.total_s -. partition_cost in
        let partition_s = if hit then 0.0 else partition_cost in
        let lost = trace.Trace.outcome = Trace.Aborted in
        let natural_finish = start_s +. partition_s +. exec_total in
        (* An SLO cancel kills the run at its deadline: the slot frees
           there, the work past the deadline is never paid — but the
           work up to it is, which is the wasted-work accounting. Lost
           (aborted) runs keep their own outcome; the retry gate decides
           whether the deadline still leaves room to requeue. *)
        let overdue =
          (not lost) && match dl with Some d -> natural_finish > d | None -> false
        in
        (* Spot preemption: the earliest scheduled reclamation of this
           slot that lands strictly inside the attempt's occupancy wins
           over both the natural outcome and a later deadline cancel —
           the slot is simply taken away at that instant. A later
           attempt on the same slot starts past the reclamation, so a
           preempt item fires at most once. *)
        let occupied_until =
          if overdue then (match dl with Some d -> d | None -> assert false)
          else natural_finish
        in
        let preempt =
          List.fold_left
            (fun acc (pt, r) ->
              if start_s < pt && pt < occupied_until then
                match acc with Some (best, _) when best <= pt -> acc | _ -> Some (pt, r)
              else acc)
            None slot_preempts
        in
        (* A partitioning built by a run whose cluster then died never
           becomes reusable — it was resident on the lost executors. A
           build that would only have finished past the job's deadline
           cancel (or its slot's reclamation) never completed either. *)
        if
          (not hit) && (not lost)
          && (match dl with Some d -> start_s +. partition_cost <= d | None -> true)
          && (match preempt with
             | Some (pt, _) -> start_s +. partition_cost <= pt
             | None -> true)
        then begin
          let bytes = pgraph_bytes ~scale prepared.Pipeline.pg in
          let available_s = start_s +. partition_cost in
          let before = Cache.stats cache in
          match
            Cache.insert cache ~available_s ckey ~pg:prepared.Pipeline.pg ~bytes
              ~rebuild_s:partition_cost
          with
          | `Inserted evicted ->
              note_placement ckey ~available_s;
              let occ = ref before.Cache.bytes_in_cache and ents = ref before.Cache.entries in
              List.iter
                (fun (k, b) ->
                  occ := !occ -. b;
                  ents := !ents - 1;
                  emit_cache_op "evict" k ~bytes:b ~occupancy:!occ ~entries:!ents ~at_s:available_s)
                evicted;
              occ := !occ +. bytes;
              ents := !ents + 1;
              emit_cache_op "insert" ckey ~bytes ~occupancy:!occ ~entries:!ents ~at_s:available_s
          | `Rejected ->
              emit_cache_op "reject" ckey ~bytes ~occupancy:before.Cache.bytes_in_cache
                ~entries:before.Cache.entries ~at_s:available_s
        end;
        let record =
          match preempt with
          | Some (pt, _) ->
              let run_s = pt -. start_s in
              let truncated_partition_s = Float.min partition_s run_s in
              mk_record ~outcome:"preempted" ~recoveries:(Trace.num_recoveries trace)
                ~recovery_s:trace.Trace.recovery_s ~speculations:(Trace.num_speculations trace)
                ~partition_s:truncated_partition_s
                ~exec_s:(run_s -. truncated_partition_s)
          | None ->
              if overdue then begin
                let d = match dl with Some d -> d | None -> assert false in
                let run_s = d -. start_s in
                let truncated_partition_s = Float.min partition_s run_s in
                mk_record ~outcome:"deadline" ~recoveries:(Trace.num_recoveries trace)
                  ~recovery_s:trace.Trace.recovery_s ~speculations:(Trace.num_speculations trace)
                  ~partition_s:truncated_partition_s
                  ~exec_s:(run_s -. truncated_partition_s)
              end
              else
                mk_record
                  ~outcome:(Trace.outcome_name trace.Trace.outcome)
                  ~recoveries:(Trace.num_recoveries trace) ~recovery_s:trace.Trace.recovery_s
                  ~speculations:(Trace.num_speculations trace) ~partition_s ~exec_s:exec_total
        in
        emit
          (Event.Job_end
             {
               Event.job_id = job.Job.id;
               outcome = record.outcome;
               partition_s = record.partition_s;
               exec_s = record.exec_s;
               finish_s = record.finish_s;
             });
        (match preempt with
        | Some (pt, r) ->
            emit
              (Event.Fault_injected
                 {
                   Event.step = int_of_float pt;
                   kind = "preempt";
                   executor = -1;
                   detail =
                     Printf.sprintf "slot reclaimed under job %d (attempt %d, backoff r%d)"
                       job.Job.id attempt r;
                 });
            (record, `Preempted (pt, r))
        | None ->
            if overdue then begin
              let d = match dl with Some d -> d | None -> assert false in
              emit
                (Event.Deadline_exceeded
                   {
                     Event.job_id = job.Job.id;
                     deadline_s = d;
                     overshoot_s = natural_finish -. d;
                     started = true;
                   });
              (record, `Deadline (natural_finish -. d))
            end
            else (record, if lost then `Lost else `Ok))
  in
  (* --- discrete-event loop over executor slots --- *)
  (* The future queue carries [(ready_s, job)]: initially the job's own
     arrival instant, and for a requeued job its backed-off resubmit
     instant. The job record itself is never altered, so every record
     and event keeps the original arrival. *)
  let by_ready (ra, (a : Job.t)) (rb, (b : Job.t)) =
    if ra <> rb then Float.compare ra rb else compare a.Job.id b.Job.id
  in
  let rec insert_future entry = function
    | [] -> [ entry ]
    | e :: rest -> if by_ready entry e < 0 then entry :: e :: rest else e :: insert_future entry rest
  in
  let sorted = List.sort (fun (a : Job.t) b -> by_ready (a.Job.arrival_s, a) (b.Job.arrival_s, b)) jobs in
  List.iter
    (fun (j : Job.t) ->
      emit
        (Event.Job_submit
           {
             Event.job_id = j.Job.id;
             algorithm = Advisor.algorithm_name j.Job.algorithm;
             dataset = j.Job.dataset;
             num_partitions = j.Job.num_partitions;
             arrival_s = j.Job.arrival_s;
           }))
    sorted;
  let records = ref [] in
  let failures = ref [] in
  let retries = ref 0 in
  (* Malformed jobs fail structurally at admission: a zero-attempt
     failed record, no slot time, no cache traffic. *)
  let admitted =
    List.filter
      (fun (j : Job.t) ->
        match invalid_reason j with
        | None -> true
        | Some reason ->
            records :=
              {
                job = j;
                strategy = "-";
                cache_hit = false;
                outcome = "invalid";
                attempts = 0;
                preemptions = 0;
                recoveries = 0;
                recovery_s = 0.0;
                speculations = 0;
                deadline_s = None;
                failed = true;
                start_s = j.Job.arrival_s;
                queue_s = 0.0;
                partition_s = 0.0;
                exec_s = 0.0;
                finish_s = j.Job.arrival_s;
              }
              :: !records;
            failures := { job_id = j.Job.id; failed_attempts = 0; reason } :: !failures;
            false)
      sorted
  in
  let future = ref (List.map (fun (j : Job.t) -> (j.Job.arrival_s, j)) admitted) in
  let attempt_no : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let attempt_of (j : Job.t) = Option.value ~default:1 (Hashtbl.find_opt attempt_no j.Job.id) in
  let pending = ref [] in
  let slot_free = Array.make max_slots 0.0 in
  let more () = match (!future, !pending) with [], [] -> false | _ -> true in
  let pick_base ~at_s = function
    | [] -> None
    | first :: rest ->
        let better (a : Job.t) (b : Job.t) =
          match policy with
          | Fifo ->
              if a.Job.arrival_s <> b.Job.arrival_s then a.Job.arrival_s < b.Job.arrival_s
              else a.Job.id < b.Job.id
          | Sjf ->
              let ca = predicted_service ~at_s a and cb = predicted_service ~at_s b in
              if ca <> cb then ca < cb else a.Job.id < b.Job.id
        in
        Some (List.fold_left (fun best c -> if better c best then c else best) first rest)
  in
  (* Weighted fair sharing (DRF over the single bottleneck resource,
     slot busy-time): serve the pending tenant with the smallest
     weighted service deficit, then let the scheduling policy order the
     jobs within the chosen tenant. Without [fairness] the policy ranges
     over the whole queue — a greedy tenant can starve the others. *)
  let pick ~at_s queue =
    if not fairness then pick_base ~at_s queue
    else
      match queue with
      | [] -> None
      | first :: _ ->
          let deficit tn = busy_of tn /. weight_of tn in
          let tenants =
            List.fold_left
              (fun acc (j : Job.t) ->
                if List.exists (String.equal j.Job.tenant) acc then acc
                else j.Job.tenant :: acc)
              [] queue
            |> List.rev
          in
          let chosen =
            List.fold_left
              (fun best tn ->
                let d = deficit tn and db = deficit best in
                if d < db || (d = db && String.compare tn best < 0) then tn else best)
              first.Job.tenant tenants
          in
          (* Independent recount of the fairness law: no pending tenant
             may hold a strictly smaller weighted deficit than the
             tenant just served. *)
          if List.exists (fun tn -> deficit tn < deficit chosen) tenants then
            incr fairness_violations;
          pick_base ~at_s
            (List.filter (fun (j : Job.t) -> String.equal j.Job.tenant chosen) queue)
  in
  let fail record reason =
    records := { record with failed = true } :: !records;
    failures := { job_id = record.job.Job.id; failed_attempts = record.attempts; reason } :: !failures
  in
  (* A job the admission queue refused: a failed zero-cost record at the
     shed instant. Sheds never consume a retry attempt and never touch
     the cache. *)
  let shed ?(why = `Admission) ~at_s ~depth (j : Job.t) =
    let launched = max 0 (attempt_of j - 1) in
    let record =
      {
        job = j;
        strategy = "-";
        cache_hit = false;
        outcome = "shed";
        attempts = launched;
        preemptions = preempts_of j;
        recoveries = 0;
        recovery_s = 0.0;
        speculations = 0;
        deadline_s = Hashtbl.find_opt deadlines j.Job.id;
        failed = false;
        start_s = at_s;
        queue_s = at_s -. j.Job.arrival_s;
        partition_s = 0.0;
        exec_s = 0.0;
        finish_s = at_s;
      }
    in
    let policy_str =
      match why with `Admission -> shed_policy_name shed_policy | `Quota -> "quota"
    in
    fail record
      (match why with
      | `Admission ->
          Printf.sprintf "shed by admission control (%s, queue depth %d)"
            (shed_policy_name shed_policy) depth
      | `Quota ->
          Printf.sprintf "shed by the tenant quota (%s already has %d job(s) queued)"
            j.Job.tenant depth);
    emit
      (Event.Job_shed
         { Event.job_id = j.Job.id; at_s; queue_depth = depth; policy = policy_str })
  in
  (* Bounded admission: a first-attempt job meeting a full queue is shed
     ([Reject]) or displaces the oldest queued job ([Drop_oldest]).
     Requeued retries bypass the bound — they already held a queue claim
     when they first ran. *)
  let admit ~ready (j : Job.t) =
    if attempt_of j > 1 then pending := !pending @ [ j ]
    else
      let quota_blocked =
        match tenant_quota with
        | None -> None
        | Some q ->
            let mine =
              List.length
                (List.filter
                   (fun (x : Job.t) -> String.equal x.Job.tenant j.Job.tenant)
                   !pending)
            in
            if mine >= q then Some mine else None
      in
      match quota_blocked with
      | Some mine ->
          (* Per-tenant admission quota: the tenant already holds its
             full share of the queue, so the job is throttled and shed
             — other tenants' queue claims are untouched. *)
          emit
            (Event.Tenant_throttle
               { Event.tenant = j.Job.tenant; job_id = j.Job.id; at_s = ready; pending = mine });
          shed ~why:`Quota ~at_s:ready ~depth:mine j
      | None -> (
          match queue_bound with
      | Some bound when List.length !pending >= bound -> (
          let depth = List.length !pending in
          match shed_policy with
          | Reject -> shed ~at_s:ready ~depth j
          | Drop_oldest ->
              let oldest =
                List.fold_left
                  (fun (best : Job.t) (c : Job.t) ->
                    if
                      c.Job.arrival_s < best.Job.arrival_s
                      || (c.Job.arrival_s = best.Job.arrival_s && c.Job.id < best.Job.id)
                    then c
                    else best)
                  (List.hd !pending) (List.tl !pending)
              in
              pending := List.filter (fun (x : Job.t) -> x.Job.id <> oldest.Job.id) !pending;
              shed ~at_s:ready ~depth oldest;
              pending := !pending @ [ j ])
          | _ -> pending := !pending @ [ j ])
  in
  (* SLO enforcement in the queue: any pending job already past its
     deadline is cancelled where it stands — a failed record pinned at
     the deadline instant, no slot time, no retry consumed. *)
  let cull_expired ~at_s =
    match (deadline, tenant_deadlines) with
    | None, [] -> ()
    | _ ->
        let expired, alive =
          List.partition
            (fun (j : Job.t) ->
              match deadline_of j with Some d -> at_s >= d | None -> false)
            !pending
        in
        pending := alive;
        List.iter
          (fun (j : Job.t) ->
            let d = match deadline_of j with Some d -> d | None -> assert false in
            let launched = max 0 (attempt_of j - 1) in
            let record =
              {
                job = j;
                strategy = "-";
                cache_hit = false;
                outcome = "deadline";
                attempts = launched;
                preemptions = preempts_of j;
                recoveries = 0;
                recovery_s = 0.0;
                speculations = 0;
                deadline_s = Some d;
                failed = false;
                start_s = d;
                queue_s = d -. j.Job.arrival_s;
                partition_s = 0.0;
                exec_s = 0.0;
                finish_s = d;
              }
            in
            fail record (Printf.sprintf "missed its SLO deadline (%.2f s) in the queue" d);
            emit
              (Event.Deadline_exceeded
                 {
                   Event.job_id = j.Job.id;
                   deadline_s = d;
                   overshoot_s = at_s -. d;
                   started = false;
                 }))
          expired
  in
  while more () do
    (* The next launch goes to the slot that can usably run soonest:
       free time for a live slot, the (re)join instant for one that is
       not yet (or no longer) a member. Slot 0 is always live, so the
       scan always finds a candidate. *)
    let slot = ref 0 in
    let best = ref (match slot_usable_from 0 slot_free.(0) with Some t -> t | None -> 0.0) in
    for i = 1 to max_slots - 1 do
      match slot_usable_from i slot_free.(i) with
      | Some t when t < !best ->
          slot := i;
          best := t
      | Some _ | None -> ()
    done;
    let t0 = !best in
    (* With an empty queue the slot idles until the next ready job. *)
    let t =
      match (!pending, !future) with
      | [], (ready, _) :: _ -> Float.max t0 ready
      | _ -> t0
    in
    (* An idle jump may carry the chosen slot past a leave that retires
       it; re-anchor on its next usable instant. *)
    let t = match slot_usable_from !slot t with Some t' -> t' | None -> t in
    let arrived, rest = List.partition (fun (ready, _) -> ready <= t) !future in
    future := rest;
    List.iter (fun (ready, j) -> admit ~ready j) arrived;
    cull_expired ~at_s:t;
    match pick ~at_s:t !pending with
    | None -> process_membership ~upto:t
    | Some job -> (
        pending := List.filter (fun (j : Job.t) -> j.Job.id <> job.Job.id) !pending;
        let mutation_delay_s = apply_mutations ~at_s:t job in
        let start_s = t +. mutation_delay_s in
        process_membership ~upto:start_s;
        let attempt = attempt_of job in
        let record, status =
          execute ~start_s ~attempt ~slot_preempts:(preempts_for !slot)
            ~depth:(List.length !pending) job
        in
        slot_free.(!slot) <- record.finish_s;
        note_busy job.Job.tenant (record.partition_s +. record.exec_s);
        (* The breaker judges the attempt's real verdict: aborted, error
           and out-of-memory count against the (tenant, dataset,
           strategy) triple; deadline cancels and preemptions are
           environment, not a strategy failure, and carry no verdict. *)
        (match status with
        | `Deadline _ | `Preempted _ -> ()
        | (`Ok | `Error _ | `Lost) as s ->
            let ok =
              match s with
              | `Error _ | `Lost -> false
              | `Ok -> not (String.equal record.outcome "out-of-memory")
            in
            breaker_note ~at_s:record.finish_s ~tenant:job.Job.tenant ~dataset:job.Job.dataset
              ~strategy:record.strategy ok);
        match status with
        | `Ok -> records := record :: !records
        | `Error reason -> fail record reason
        | `Deadline overshoot ->
            fail record
              (Printf.sprintf "cancelled at its SLO deadline (ran %.2f s over)" overshoot)
        | `Preempted (_, r) ->
            (* Spot reclamation is an involuntary failure — the same
               rule that keeps sheds and deadline culls from consuming
               the retry budget applies: the job requeues with a fresh
               attempt but its budget untouched, unless its SLO leaves
               no room to resubmit. *)
            incr preemptions;
            Hashtbl.replace preempt_no job.Job.id (preempts_of job + 1);
            let delay_s = retry_delay_s ~attempt:(max 1 r) in
            let resubmit_s = record.finish_s +. delay_s in
            let deadline_allows =
              match deadline_of job with Some d -> resubmit_s < d | None -> true
            in
            if deadline_allows then begin
              emit (Event.Job_retry { Event.job_id = job.Job.id; attempt; delay_s; resubmit_s });
              incr retries;
              Hashtbl.replace attempt_no job.Job.id (attempt + 1);
              future := insert_future (resubmit_s, job) !future
            end
            else
              (* The record was built before this preemption was
                 counted; refresh it so the conservation law (summed
                 record preemptions = the report counter) holds. *)
              fail
                { record with preemptions = preempts_of job }
                (Printf.sprintf
                   "preempted and the SLO deadline leaves no time to resubmit (%d attempt(s))"
                   attempt)
        | `Lost ->
            (* The job's cluster died past its crash budget: every cached
               partitioning was resident on it, so the whole cache is
               invalidated before anything else runs. *)
            let before = Cache.stats cache in
            let dropped = Cache.invalidate_all cache in
            let occ = ref before.Cache.bytes_in_cache and ents = ref before.Cache.entries in
            List.iter
              (fun (k, b) ->
                occ := !occ -. b;
                ents := !ents - 1;
                emit_cache_op "invalidate" k ~bytes:b ~occupancy:!occ ~entries:!ents
                  ~at_s:record.finish_s)
              dropped;
            let delay_s = retry_delay_s ~attempt in
            let resubmit_s = record.finish_s +. delay_s in
            (* A requeue is pointless when the backed-off resubmission
               would already land past the job's SLO deadline — the
               attempt is not consumed, the job fails here and now. *)
            let deadline_allows =
              match deadline_of job with Some d -> resubmit_s < d | None -> true
            in
            (* Preempted attempts were involuntary: only the voluntary
               ones count against the retry budget. *)
            if attempt - preempts_of job <= max_retries && deadline_allows then begin
              emit
                (Event.Job_retry { Event.job_id = job.Job.id; attempt; delay_s; resubmit_s });
              incr retries;
              Hashtbl.replace attempt_no job.Job.id (attempt + 1);
              future := insert_future (resubmit_s, job) !future
            end
            else if not deadline_allows then
              fail record
                (Printf.sprintf
                   "cluster lost and the SLO deadline leaves no time to retry (%d attempt(s))"
                   attempt)
            else
              fail record
                (Printf.sprintf "cluster lost beyond the retry budget (%d attempt(s))" attempt))
  done;
  (* Flush scale events past the last launch so the event stream and
     the report agree on the whole spec. *)
  process_membership ~upto:infinity;
  let records = List.sort (fun a b -> compare a.job.Job.id b.job.Job.id) !records in
  let failures =
    List.sort (fun (a : job_failure) b -> compare a.job_id b.job_id) !failures
  in
  let makespan_s = List.fold_left (fun acc r -> Float.max acc r.finish_s) 0.0 records in
  let total_queue_s = List.fold_left (fun acc r -> acc +. r.queue_s) 0.0 records in
  let total_partition_s = List.fold_left (fun acc r -> acc +. r.partition_s) 0.0 records in
  let total_exec_s = List.fold_left (fun acc r -> acc +. r.exec_s) 0.0 records in
  {
    policy;
    selection;
    eviction;
    budget_bytes;
    slots;
    seed;
    max_retries;
    fault_spec = Option.map (fun (f : Faults.config) -> f.Faults.raw) faults;
    checkpoint_every;
    queue_bound;
    shed_policy;
    deadline;
    breaker_k;
    breaker_cooldown_s;
    backpressure;
    speculation;
    mutation_spec = Option.map (fun (c : Mutation.config) -> c.Mutation.raw) mutations;
    mutate_every;
    mutation_mode;
    scale_spec = Option.map (fun (c : Elastic.config) -> c.Elastic.raw) scale_events;
    tenant_weights;
    tenant_quota;
    tenant_deadlines;
    fairness;
    records;
    failures;
    breaker_trips = List.rev !breaker_trips;
    mutations = List.rev !mutation_log;
    retries = !retries;
    joins = !joins;
    leaves = !leaves;
    preemptions = !preemptions;
    stale_placement_hits = !stale_placement_hits;
    fairness_violations = !fairness_violations;
    cache = Cache.stats cache;
    makespan_s;
    total_queue_s;
    total_partition_s;
    total_exec_s;
  }

let hit_rate r =
  if r.cache.Cache.lookups = 0 then 0.0
  else float_of_int r.cache.Cache.hits /. float_of_int r.cache.Cache.lookups

let mean_queue_s r =
  match r.records with [] -> 0.0 | l -> r.total_queue_s /. float_of_int (List.length l)

(* --- canonical serialization --- *)

let record_json r =
  Json.Obj
    [
      ("job_id", Json.Int r.job.Job.id);
      ("algorithm", Json.String (Advisor.algorithm_name r.job.Job.algorithm));
      ("dataset", Json.String r.job.Job.dataset);
      ("num_partitions", Json.Int r.job.Job.num_partitions);
      ("arrival_s", Json.Float r.job.Job.arrival_s);
      ("tenant", Json.String r.job.Job.tenant);
      ("strategy", Json.String r.strategy);
      ("cache_hit", Json.Bool r.cache_hit);
      ("outcome", Json.String r.outcome);
      ("attempts", Json.Int r.attempts);
      ("preemptions", Json.Int r.preemptions);
      ("recoveries", Json.Int r.recoveries);
      ("recovery_s", Json.Float r.recovery_s);
      ("speculations", Json.Int r.speculations);
      ("deadline_s", match r.deadline_s with Some d -> Json.Float d | None -> Json.Null);
      ("failed", Json.Bool r.failed);
      ("start_s", Json.Float r.start_s);
      ("queue_s", Json.Float r.queue_s);
      ("partition_s", Json.Float r.partition_s);
      ("exec_s", Json.Float r.exec_s);
      ("finish_s", Json.Float r.finish_s);
    ]

let cache_json (s : Cache.stats) =
  Json.Obj
    [
      ("budget_bytes", Json.Float s.Cache.budget_bytes);
      ("lookups", Json.Int s.Cache.lookups);
      ("hits", Json.Int s.Cache.hits);
      ("misses", Json.Int s.Cache.misses);
      ("insertions", Json.Int s.Cache.insertions);
      ("evictions", Json.Int s.Cache.evictions);
      ("invalidations", Json.Int s.Cache.invalidations);
      ("rejections", Json.Int s.Cache.rejections);
      ("bytes_inserted", Json.Float s.Cache.bytes_inserted);
      ("bytes_evicted", Json.Float s.Cache.bytes_evicted);
      ("bytes_invalidated", Json.Float s.Cache.bytes_invalidated);
      ("bytes_in_cache", Json.Float s.Cache.bytes_in_cache);
      ("entries", Json.Int s.Cache.entries);
    ]

let params_json r =
  Json.Obj
    [
      ("policy", Json.String (policy_name r.policy));
      ("selection", Json.String (selection_name r.selection));
      ( "threshold",
        match r.selection with Cache_aware t -> Json.Float t | Heuristic | Measured -> Json.Null );
      ("eviction", Json.String (Cache.eviction_name r.eviction));
      ("budget_bytes", Json.Float r.budget_bytes);
      ("slots", Json.Int r.slots);
      ("seed", Json.String (Int64.to_string r.seed));
      ("max_retries", Json.Int r.max_retries);
      ("faults", match r.fault_spec with Some s -> Json.String s | None -> Json.Null);
      ( "checkpoint_every",
        match r.checkpoint_every with Some k -> Json.Int k | None -> Json.Null );
      ("queue_bound", match r.queue_bound with Some b -> Json.Int b | None -> Json.Null);
      ("shed_policy", Json.String (shed_policy_name r.shed_policy));
      ("deadline", match r.deadline with Some d -> Json.String (deadline_name d) | None -> Json.Null);
      ("breaker_k", match r.breaker_k with Some k -> Json.Int k | None -> Json.Null);
      ("breaker_cooldown_s", Json.Float r.breaker_cooldown_s);
      ("backpressure", match r.backpressure with Some w -> Json.Int w | None -> Json.Null);
      ("speculate", Json.Bool (r.speculation <> None));
      ( "speculate_threshold",
        match r.speculation with
        | Some c -> Json.Float c.Speculation.threshold
        | None -> Json.Null );
      ("mutations", match r.mutation_spec with Some s -> Json.String s | None -> Json.Null);
      ("mutate_every", Json.Int r.mutate_every);
      ("mutation_mode", Json.String (mutation_mode_name r.mutation_mode));
      ("mutation_batches", Json.Int (List.length r.mutations));
      ("scale_events", match r.scale_spec with Some s -> Json.String s | None -> Json.Null);
      ( "tenant_weights",
        match r.tenant_weights with
        | [] -> Json.Null
        | ws -> Json.Obj (List.map (fun (tn, w) -> (tn, Json.Float w)) ws) );
      ("tenant_quota", match r.tenant_quota with Some q -> Json.Int q | None -> Json.Null);
      ( "tenant_deadlines",
        match r.tenant_deadlines with
        | [] -> Json.Null
        | ds -> Json.Obj (List.map (fun (tn, d) -> (tn, Json.String (deadline_name d))) ds) );
      ("fairness", Json.Bool r.fairness);
      ("joins", Json.Int r.joins);
      ("leaves", Json.Int r.leaves);
      ("preemptions", Json.Int r.preemptions);
      ("stale_placement_hits", Json.Int r.stale_placement_hits);
      ("fairness_violations", Json.Int r.fairness_violations);
      ("retries", Json.Int r.retries);
      ("failed_jobs", Json.Int (failed_jobs r));
      ("shed_jobs", Json.Int (shed_jobs r));
      ("deadline_jobs", Json.Int (deadline_jobs r));
      ("speculations", Json.Int (total_speculations r));
      ( "breaker_opens",
        Json.Int (List.length (List.filter (fun t -> t.opened) r.breaker_trips)) );
      ( "breaker_closes",
        Json.Int (List.length (List.filter (fun t -> not t.opened) r.breaker_trips)) );
      ("jobs", Json.Int (List.length r.records));
      ("makespan_s", Json.Float r.makespan_s);
      ("total_queue_s", Json.Float r.total_queue_s);
      ("total_partition_s", Json.Float r.total_partition_s);
      ("total_exec_s", Json.Float r.total_exec_s);
      ( "latency",
        match latency_percentiles r with
        | None -> Json.Null
        | Some p ->
            Json.Obj
              [
                ("p50", Json.Float p.Summary.p50);
                ("p95", Json.Float p.Summary.p95);
                ("p99", Json.Float p.Summary.p99);
              ] );
    ]

let mutation_json (m : mutation_record) =
  Json.Obj
    [
      ("batch", Json.Int m.mut_batch);
      ("dataset", Json.String m.mut_dataset);
      ("at_s", Json.Float m.mut_at_s);
      ("inserts", Json.Int m.mut_inserts);
      ("deletes", Json.Int m.mut_deletes);
      ("edges_after", Json.Int m.mut_edges_after);
      ("refresh_s", Json.Float m.mut_refresh_s);
      ("rebuild_s", Json.Float m.mut_rebuild_s);
      ("choice", Json.String m.mut_choice);
      ("dropped_entries", Json.Int m.mut_dropped_entries);
      ("refreshed_entries", Json.Int m.mut_refreshed_entries);
    ]

let failure_json (f : job_failure) =
  Json.Obj
    [
      ("job_id", Json.Int f.job_id);
      ("failed_attempts", Json.Int f.failed_attempts);
      ("reason", Json.String f.reason);
    ]

let breaker_trip_json (t : breaker_trip) =
  Json.Obj
    [
      ("breaker", Json.String (if t.opened then "open" else "close"));
      ("tenant", Json.String t.trip_tenant);
      ("dataset", Json.String t.trip_dataset);
      ("strategy", Json.String t.trip_strategy);
      ("at_s", Json.Float t.trip_at_s);
      ("failures", Json.Int t.trip_failures);
    ]

let report_json r =
  Json.Obj
    [
      ("params", params_json r);
      ("records", Json.List (List.map record_json r.records));
      ("failures", Json.List (List.map failure_json r.failures));
      ("breaker_trips", Json.List (List.map breaker_trip_json r.breaker_trips));
      ("mutations", Json.List (List.map mutation_json r.mutations));
      ("cache", cache_json r.cache);
    ]

let report_lines r =
  (Json.to_string (params_json r) :: List.map (fun x -> Json.to_string (record_json x)) r.records)
  @ List.map (fun f -> Json.to_string (failure_json f)) r.failures
  @ List.map (fun t -> Json.to_string (breaker_trip_json t)) r.breaker_trips
  @ List.map (fun m -> Json.to_string (mutation_json m)) r.mutations
  @ [ Json.to_string (cache_json r.cache) ]

let pp_summary ppf r =
  let n = List.length r.records in
  let hits = List.length (List.filter (fun x -> x.cache_hit) r.records) in
  let oom = List.length (List.filter (fun x -> String.equal x.outcome "out-of-memory") r.records) in
  Format.fprintf ppf "@[<v>workload: %d jobs, policy %s, selection %s, %d slot(s)@," n
    (policy_name r.policy) (selection_name r.selection) r.slots;
  Format.fprintf ppf "cache: %s eviction, budget %.1f GB: %d/%d hits, %d evictions, %d rejections@,"
    (Cache.eviction_name r.eviction) (r.budget_bytes /. 1.0e9) hits r.cache.Cache.lookups
    r.cache.Cache.evictions r.cache.Cache.rejections;
  Format.fprintf ppf "makespan %.2f s | queue mean %.2f s | partition %.2f s | exec %.2f s"
    r.makespan_s (mean_queue_s r) r.total_partition_s r.total_exec_s;
  (match latency_percentiles r with
  | None -> ()
  | Some p -> Format.fprintf ppf "@,latency %a" Summary.pp_ptiles p);
  (match r.fault_spec with
  | None -> ()
  | Some spec ->
      let recov = List.fold_left (fun acc x -> acc + x.recoveries) 0 r.records in
      let recov_s = List.fold_left (fun acc x -> acc +. x.recovery_s) 0.0 r.records in
      Format.fprintf ppf "@,faults %S: %d recover(ies) %.2f s | %d retry(ies) | %d invalidation(s)"
        spec recov recov_s r.retries r.cache.Cache.invalidations);
  if r.speculation <> None then
    Format.fprintf ppf "@,speculation: %d clone(s) launched across all runs" (total_speculations r);
  (match (r.queue_bound, shed_jobs r) with
  | None, _ -> ()
  | Some b, shed ->
      Format.fprintf ppf "@,admission: queue bound %d (%s): %d job(s) shed" b
        (shed_policy_name r.shed_policy) shed);
  (match (r.deadline, deadline_jobs r) with
  | None, _ -> ()
  | Some d, missed ->
      Format.fprintf ppf "@,deadlines (%s): %d job(s) cancelled" (deadline_name d) missed);
  (match r.breaker_k with
  | None -> ()
  | Some k ->
      let opens = List.length (List.filter (fun t -> t.opened) r.breaker_trips) in
      let closes = List.length (List.filter (fun t -> not t.opened) r.breaker_trips) in
      Format.fprintf ppf "@,breakers (k=%d, cooldown %.0f s): %d open(s), %d close(s)" k
        r.breaker_cooldown_s opens closes);
  (match r.scale_spec with
  | None -> ()
  | Some spec ->
      Format.fprintf ppf "@,elastic %S: %d join(s), %d leave(s), %d preemption(s)" spec r.joins
        r.leaves r.preemptions);
  if r.fairness || r.tenant_weights <> [] || r.tenant_quota <> None then begin
    let tenants =
      List.sort_uniq String.compare
        (List.map (fun x -> x.job.Job.tenant) r.records)
    in
    let throttled =
      List.length
        (List.filter
           (fun (f : job_failure) ->
             List.exists
               (fun x -> x.job.Job.id = f.job_id && String.equal x.outcome "shed")
               r.records)
           r.failures)
    in
    Format.fprintf ppf "@,tenants: %d, fairness %s, %d violation(s), %d shed at admission"
      (List.length tenants)
      (if r.fairness then "on" else "off")
      r.fairness_violations throttled
  end;
  (match r.mutation_spec with
  | None -> ()
  | Some spec ->
      let refreshes =
        List.length (List.filter (fun m -> String.equal m.mut_choice "refresh") r.mutations)
      in
      let rebuilds = List.length r.mutations - refreshes in
      Format.fprintf ppf
        "@,mutations %S (every %d launches, %s): %d batch(es), %d refresh / %d rebuild" spec
        r.mutate_every (mutation_mode_name r.mutation_mode) (List.length r.mutations) refreshes
        rebuilds);
  if oom > 0 then Format.fprintf ppf "@,%d job(s) ended out-of-memory" oom;
  if failed_jobs r > 0 then Format.fprintf ppf "@,%d job(s) failed permanently" (failed_jobs r);
  Format.fprintf ppf "@]"
