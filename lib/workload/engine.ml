module Advisor = Cutfit.Advisor
module Pipeline = Cutfit.Pipeline
module Graph = Cutfit_graph.Graph
module Strategy = Cutfit_partition.Strategy
module Partitioner = Cutfit_partition.Partitioner
module Metrics = Cutfit_partition.Metrics
module Cluster = Cutfit_bsp.Cluster
module Cost_model = Cutfit_bsp.Cost_model
module Pgraph = Cutfit_bsp.Pgraph
module Trace = Cutfit_bsp.Trace
module Faults = Cutfit_bsp.Faults
module Datasets = Cutfit_gen.Datasets
module Sssp = Cutfit_algo.Sssp
module Splitmix64 = Cutfit_prng.Splitmix64
module Telemetry = Cutfit_obs.Telemetry
module Event = Cutfit_obs.Event
module Json = Cutfit_obs.Json

type policy = Fifo | Sjf

let policy_name = function Fifo -> "fifo" | Sjf -> "sjf"

let policy_of_string s =
  match String.lowercase_ascii s with "fifo" -> Some Fifo | "sjf" -> Some Sjf | _ -> None

type selection = Heuristic | Measured | Cache_aware of float

let selection_name = function
  | Heuristic -> "heuristic"
  | Measured -> "measured"
  | Cache_aware _ -> "cache-aware"

let selection_of_string ?(threshold = 0.25) s =
  match String.lowercase_ascii s with
  | "heuristic" -> Some Heuristic
  | "measured" | "measure" -> Some Measured
  | "cache-aware" | "cacheaware" | "cache" -> Some (Cache_aware threshold)
  | _ -> None

type job_record = {
  job : Job.t;
  strategy : string;
  cache_hit : bool;
  outcome : string;
  attempts : int;
  recoveries : int;
  recovery_s : float;
  failed : bool;
  start_s : float;
  queue_s : float;
  partition_s : float;
  exec_s : float;
  finish_s : float;
}

type job_failure = { job_id : int; failed_attempts : int; reason : string }

type report = {
  policy : policy;
  selection : selection;
  eviction : Cache.eviction;
  budget_bytes : float;
  slots : int;
  seed : int64;
  max_retries : int;
  fault_spec : string option;
  checkpoint_every : int option;
  records : job_record list;
  failures : job_failure list;
  retries : int;
  cache : Cache.stats;
  makespan_s : float;
  total_queue_s : float;
  total_partition_s : float;
  total_exec_s : float;
}

let failed_jobs r = List.length r.failures

(* Requeue backoff after a cluster loss: capped exponential on the
   attempt number, in simulated seconds — long enough to model a
   cluster restart, bounded so a stubborn schedule cannot stall the
   queue forever. *)
let retry_backoff_base_s = 2.0
let retry_backoff_cap_s = 30.0

let retry_delay_s ~attempt =
  Float.min retry_backoff_cap_s (retry_backoff_base_s *. (2.0 ** float_of_int (attempt - 1)))

(* Modeled resident bytes of a frozen partitioning: the cost model's
   per-edge and per-vertex JVM object sizes over every partition's local
   tables, at paper scale — the same footprint the memory model charges
   executors during a run. *)
let pgraph_bytes ~scale pg =
  let cost = Cost_model.default in
  let edges = ref 0 and verts = ref 0 in
  for p = 0 to Pgraph.num_partitions pg - 1 do
    edges := !edges + Pgraph.num_edges_of_partition pg p;
    verts := !verts + Pgraph.local_vertices pg p
  done;
  scale
  *. ((float_of_int !edges *. float_of_int cost.Cost_model.edge_object_bytes)
     +. (float_of_int !verts *. float_of_int cost.Cost_model.vertex_object_bytes))

let run ?(cluster = Cluster.config_i) ?(slots = 2) ?(eviction = Cache.Lru)
    ?(budget_bytes = 8.0e9) ?iterations ?checkpoint_every ?faults ?(max_retries = 2) ?telemetry
    ?(policy = Fifo) ?(selection = Cache_aware 0.25) ~seed jobs =
  if slots < 1 then invalid_arg "Engine.run: slots must be >= 1";
  if max_retries < 0 then invalid_arg "Engine.run: max_retries must be >= 0";
  let cache = Cache.create ~eviction ~budget_bytes () in
  let emit e = match telemetry with None -> () | Some t -> Telemetry.emit t e in
  (* Memoized per-dataset graph (and its paper scale) and per
     (dataset, granularity, metric) advisor rankings — jobs sharing a
     dataset share the measurement, as a resident advisor service
     would. *)
  let graphs : (string, Graph.t * float * Datasets.spec) Hashtbl.t = Hashtbl.create 16 in
  let graph_of dataset =
    match Hashtbl.find_opt graphs dataset with
    | Some entry -> entry
    | None ->
        let spec = Datasets.find dataset in
        let g = Datasets.generate spec in
        let scale = float_of_int spec.Datasets.paper_edges /. float_of_int (Graph.num_edges g) in
        let entry = (g, scale, spec) in
        Hashtbl.replace graphs dataset entry;
        entry
  in
  let rankings : (string, Advisor.ranked list) Hashtbl.t = Hashtbl.create 16 in
  let ranked_for (job : Job.t) =
    let metric = Advisor.predictive_metric job.Job.algorithm in
    let key = Printf.sprintf "%s#%d#%s" job.Job.dataset job.Job.num_partitions metric in
    match Hashtbl.find_opt rankings key with
    | Some r -> r
    | None ->
        let g, _, _ = graph_of job.Job.dataset in
        let r = Advisor.measure job.Job.algorithm ~num_partitions:job.Job.num_partitions g in
        Hashtbl.replace rankings key r;
        r
  in
  let cluster_for (job : Job.t) = { cluster with Cluster.num_partitions = job.Job.num_partitions } in
  (* One fault realization per (job, attempt): the schedule's items stay
     exactly as specified, but the seeded draws (random faults, unpinned
     executors) differ per job and per retry — a retried job faces a
     fresh realization of the same fault environment, so a [rand@R]
     schedule can kill one attempt and spare the next. *)
  let faults_for (job : Job.t) ~attempt =
    match faults with
    | None -> None
    | Some (f : Faults.config) ->
        let mixed =
          Splitmix64.mix64
            (Int64.logxor
               (Int64.mul (Int64.of_int (job.Job.id + 1)) 0x9E3779B97F4A7C15L)
               (Int64.add
                  (Int64.of_int f.Faults.seed)
                  (Int64.mul (Int64.of_int attempt) 0xBF58476D1CE4E5B9L)))
        in
        Some { f with Faults.seed = Int64.to_int mixed land 0x3FFFFFFF }
  in
  (* Structural admission control: a malformed job must produce a failed
     record, never an exception out of the scheduler loop. *)
  let invalid_reason (job : Job.t) =
    if job.Job.num_partitions < 1 then
      Some (Printf.sprintf "num_partitions %d < 1" job.Job.num_partitions)
    else
      match Datasets.find job.Job.dataset with
      | _ -> None
      | exception Not_found -> Some (Printf.sprintf "unknown dataset %S" job.Job.dataset)
  in
  let choose_strategy ~at_s (job : Job.t) =
    match selection with
    | Heuristic ->
        let _, _, spec = graph_of job.Job.dataset in
        let size = Advisor.classify ~paper_scale_edges:(float_of_int spec.Datasets.paper_edges) in
        Advisor.heuristic job.Job.algorithm ~size ~num_partitions:job.Job.num_partitions
    | Measured -> (List.hd (ranked_for job)).Advisor.strategy
    | Cache_aware threshold -> (
        let ranked = ranked_for job in
        let best = List.hd ranked in
        let cached =
          Cache.cached_strategies cache ~at_s ~graph:job.Job.dataset
            ~num_partitions:job.Job.num_partitions
        in
        let is_cached (r : Advisor.ranked) =
          List.exists (String.equal (Strategy.to_string r.Advisor.strategy)) cached
        in
        match List.find_opt is_cached ranked with
        | Some r
          when (r.Advisor.score -. best.Advisor.score) /. Float.max best.Advisor.score 1.0
               <= threshold ->
            r.Advisor.strategy
        | Some _ | None -> best.Advisor.strategy)
  in
  let metrics_of (job : Job.t) strategy =
    let name = Strategy.to_string strategy in
    let r =
      List.find
        (fun (r : Advisor.ranked) -> String.equal (Strategy.to_string r.Advisor.strategy) name)
        (ranked_for job)
    in
    r.Advisor.metrics
  in
  let predicted_service ~at_s (job : Job.t) =
    let g, scale, _ = graph_of job.Job.dataset in
    let strategy = choose_strategy ~at_s job in
    let m = metrics_of job strategy in
    let cl = cluster_for job in
    let key =
      {
        Cache.graph = job.Job.dataset;
        strategy = Strategy.to_string strategy;
        num_partitions = job.Job.num_partitions;
      }
    in
    let build =
      if Cache.mem cache ~at_s key then 0.0
      else Advisor.predicted_build_s ~cluster:cl ~scale g m
    in
    build +. Advisor.predicted_exec_s ~cluster:cl ~scale job.Job.algorithm g m
  in
  let emit_cache_op op (k : Cache.key) ~bytes ~occupancy ~entries ~at_s =
    emit
      (Event.Cache_op
         {
           Event.op;
           graph = k.Cache.graph;
           strategy = k.Cache.strategy;
           num_partitions = k.Cache.num_partitions;
           bytes;
           occupancy_bytes = occupancy;
           entries;
           at_s;
         })
  in
  let run_algorithm (job : Job.t) prepared =
    match job.Job.algorithm with
    | Advisor.Pagerank -> snd (Pipeline.pagerank ?iterations prepared)
    | Advisor.Connected_components -> snd (Pipeline.connected_components ?iterations prepared)
    | Advisor.Triangle_count ->
        let _, _, trace = Pipeline.triangles prepared in
        trace
    | Advisor.Shortest_paths ->
        let g, _, _ = graph_of job.Job.dataset in
        let job_seed =
          Splitmix64.mix64 (Int64.logxor seed (Int64.mul (Int64.of_int (job.Job.id + 1)) 0x9E3779B97F4A7C15L))
        in
        let landmarks = Sssp.pick_landmarks ~seed:job_seed ~count:3 g in
        snd (Pipeline.shortest_paths ~landmarks prepared)
  in
  (* One attempt of one job. Returns the attempt's record plus its
     structural status: [`Ok] (recorded as-is), [`Lost] (the cluster
     died past the run's crash budget — candidate for requeueing), or
     [`Error reason] (an exception from the pipeline, converted into a
     failed record so nothing escapes the scheduler loop). *)
  let execute ~start_s ~attempt (job : Job.t) =
    let g, scale, _ = graph_of job.Job.dataset in
    let strategy = choose_strategy ~at_s:start_s job in
    let sname = Strategy.to_string strategy in
    let ckey =
      { Cache.graph = job.Job.dataset; strategy = sname; num_partitions = job.Job.num_partitions }
    in
    let cached = Cache.find cache ~at_s:start_s ckey in
    let job_faults = faults_for job ~attempt in
    let prepared, hit =
      match cached with
      | Some pg ->
          ( Pipeline.of_pgraph ~cluster:(cluster_for job) ~scale ?checkpoint_every
              ?faults:job_faults ~partitioner:(Partitioner.Hash strategy) pg,
            true )
      | None ->
          ( Pipeline.prepare ~cluster:(cluster_for job) ~partitioner:(Partitioner.Hash strategy)
              ~scale ?checkpoint_every ?faults:job_faults ~algorithm:job.Job.algorithm g,
            false )
    in
    let snapshot = Cache.stats cache in
    emit_cache_op
      (if hit then "hit" else "miss")
      ckey
      ~bytes:(if hit then pgraph_bytes ~scale prepared.Pipeline.pg else 0.0)
      ~occupancy:snapshot.Cache.bytes_in_cache ~entries:snapshot.Cache.entries ~at_s:start_s;
    emit
      (Event.Job_start
         {
           Event.job_id = job.Job.id;
           strategy = sname;
           cache_hit = hit;
           start_s;
           queue_s = start_s -. job.Job.arrival_s;
         });
    let mk_record ~outcome ~recoveries ~recovery_s ~partition_s ~exec_s =
      {
        job;
        strategy = sname;
        cache_hit = hit;
        outcome;
        attempts = attempt;
        recoveries;
        recovery_s;
        failed = false;
        start_s;
        queue_s = start_s -. job.Job.arrival_s;
        partition_s;
        exec_s;
        finish_s = start_s +. partition_s +. exec_s;
      }
    in
    match run_algorithm job prepared with
    | exception (Invalid_argument reason | Failure reason) ->
        let record =
          mk_record ~outcome:"error" ~recoveries:0 ~recovery_s:0.0 ~partition_s:0.0 ~exec_s:0.0
        in
        emit
          (Event.Job_end
             {
               Event.job_id = job.Job.id;
               outcome = record.outcome;
               partition_s = 0.0;
               exec_s = 0.0;
               finish_s = record.finish_s;
             });
        (record, `Error reason)
    | trace ->
        (* Decompose the real trace: the engines always record the load
           and the step -1 build stage, whether or not the partitioning
           was freshly built — a cache hit is exactly the run that skips
           them. *)
        let build_s =
          match
            List.find_opt (fun (s : Trace.superstep) -> s.Trace.step = -1) trace.Trace.supersteps
          with
          | Some s -> s.Trace.time_s
          | None -> 0.0
        in
        let partition_cost = trace.Trace.load_s +. build_s in
        let exec_s = trace.Trace.total_s -. partition_cost in
        let partition_s = if hit then 0.0 else partition_cost in
        let lost = trace.Trace.outcome = Trace.Aborted in
        (* A partitioning built by a run whose cluster then died never
           becomes reusable — it was resident on the lost executors. *)
        if (not hit) && not lost then begin
          let bytes = pgraph_bytes ~scale prepared.Pipeline.pg in
          let available_s = start_s +. partition_cost in
          let before = Cache.stats cache in
          match
            Cache.insert cache ~available_s ckey ~pg:prepared.Pipeline.pg ~bytes
              ~rebuild_s:partition_cost
          with
          | `Inserted evicted ->
              let occ = ref before.Cache.bytes_in_cache and ents = ref before.Cache.entries in
              List.iter
                (fun (k, b) ->
                  occ := !occ -. b;
                  ents := !ents - 1;
                  emit_cache_op "evict" k ~bytes:b ~occupancy:!occ ~entries:!ents ~at_s:available_s)
                evicted;
              occ := !occ +. bytes;
              ents := !ents + 1;
              emit_cache_op "insert" ckey ~bytes ~occupancy:!occ ~entries:!ents ~at_s:available_s
          | `Rejected ->
              emit_cache_op "reject" ckey ~bytes ~occupancy:before.Cache.bytes_in_cache
                ~entries:before.Cache.entries ~at_s:available_s
        end;
        let record =
          mk_record
            ~outcome:(Trace.outcome_name trace.Trace.outcome)
            ~recoveries:(Trace.num_recoveries trace) ~recovery_s:trace.Trace.recovery_s
            ~partition_s ~exec_s
        in
        emit
          (Event.Job_end
             {
               Event.job_id = job.Job.id;
               outcome = record.outcome;
               partition_s;
               exec_s;
               finish_s = record.finish_s;
             });
        (record, if lost then `Lost else `Ok)
  in
  (* --- discrete-event loop over executor slots --- *)
  (* The future queue carries [(ready_s, job)]: initially the job's own
     arrival instant, and for a requeued job its backed-off resubmit
     instant. The job record itself is never altered, so every record
     and event keeps the original arrival. *)
  let by_ready (ra, (a : Job.t)) (rb, (b : Job.t)) =
    if ra <> rb then Float.compare ra rb else compare a.Job.id b.Job.id
  in
  let rec insert_future entry = function
    | [] -> [ entry ]
    | e :: rest -> if by_ready entry e < 0 then entry :: e :: rest else e :: insert_future entry rest
  in
  let sorted = List.sort (fun (a : Job.t) b -> by_ready (a.Job.arrival_s, a) (b.Job.arrival_s, b)) jobs in
  List.iter
    (fun (j : Job.t) ->
      emit
        (Event.Job_submit
           {
             Event.job_id = j.Job.id;
             algorithm = Advisor.algorithm_name j.Job.algorithm;
             dataset = j.Job.dataset;
             num_partitions = j.Job.num_partitions;
             arrival_s = j.Job.arrival_s;
           }))
    sorted;
  let records = ref [] in
  let failures = ref [] in
  let retries = ref 0 in
  (* Malformed jobs fail structurally at admission: a zero-attempt
     failed record, no slot time, no cache traffic. *)
  let admitted =
    List.filter
      (fun (j : Job.t) ->
        match invalid_reason j with
        | None -> true
        | Some reason ->
            records :=
              {
                job = j;
                strategy = "-";
                cache_hit = false;
                outcome = "invalid";
                attempts = 0;
                recoveries = 0;
                recovery_s = 0.0;
                failed = true;
                start_s = j.Job.arrival_s;
                queue_s = 0.0;
                partition_s = 0.0;
                exec_s = 0.0;
                finish_s = j.Job.arrival_s;
              }
              :: !records;
            failures := { job_id = j.Job.id; failed_attempts = 0; reason } :: !failures;
            false)
      sorted
  in
  let future = ref (List.map (fun (j : Job.t) -> (j.Job.arrival_s, j)) admitted) in
  let attempt_no : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let attempt_of (j : Job.t) = Option.value ~default:1 (Hashtbl.find_opt attempt_no j.Job.id) in
  let pending = ref [] in
  let slot_free = Array.make slots 0.0 in
  let more () = match (!future, !pending) with [], [] -> false | _ -> true in
  let pick ~at_s = function
    | [] -> None
    | first :: rest ->
        let better (a : Job.t) (b : Job.t) =
          match policy with
          | Fifo ->
              if a.Job.arrival_s <> b.Job.arrival_s then a.Job.arrival_s < b.Job.arrival_s
              else a.Job.id < b.Job.id
          | Sjf ->
              let ca = predicted_service ~at_s a and cb = predicted_service ~at_s b in
              if ca <> cb then ca < cb else a.Job.id < b.Job.id
        in
        Some (List.fold_left (fun best c -> if better c best then c else best) first rest)
  in
  let fail record reason =
    records := { record with failed = true } :: !records;
    failures := { job_id = record.job.Job.id; failed_attempts = record.attempts; reason } :: !failures
  in
  while more () do
    let slot = ref 0 in
    for i = 1 to slots - 1 do
      if slot_free.(i) < slot_free.(!slot) then slot := i
    done;
    let t0 = slot_free.(!slot) in
    (* With an empty queue the slot idles until the next ready job. *)
    let t =
      match (!pending, !future) with
      | [], (ready, _) :: _ -> Float.max t0 ready
      | _ -> t0
    in
    let arrived, rest = List.partition (fun (ready, _) -> ready <= t) !future in
    future := rest;
    pending := !pending @ List.map snd arrived;
    match pick ~at_s:t !pending with
    | None -> ()
    | Some job -> (
        pending := List.filter (fun (j : Job.t) -> j.Job.id <> job.Job.id) !pending;
        let attempt = attempt_of job in
        let record, status = execute ~start_s:t ~attempt job in
        slot_free.(!slot) <- record.finish_s;
        match status with
        | `Ok -> records := record :: !records
        | `Error reason -> fail record reason
        | `Lost ->
            (* The job's cluster died past its crash budget: every cached
               partitioning was resident on it, so the whole cache is
               invalidated before anything else runs. *)
            let before = Cache.stats cache in
            let dropped = Cache.invalidate_all cache in
            let occ = ref before.Cache.bytes_in_cache and ents = ref before.Cache.entries in
            List.iter
              (fun (k, b) ->
                occ := !occ -. b;
                ents := !ents - 1;
                emit_cache_op "invalidate" k ~bytes:b ~occupancy:!occ ~entries:!ents
                  ~at_s:record.finish_s)
              dropped;
            if attempt <= max_retries then begin
              let delay_s = retry_delay_s ~attempt in
              let resubmit_s = record.finish_s +. delay_s in
              emit
                (Event.Job_retry { Event.job_id = job.Job.id; attempt; delay_s; resubmit_s });
              incr retries;
              Hashtbl.replace attempt_no job.Job.id (attempt + 1);
              future := insert_future (resubmit_s, job) !future
            end
            else
              fail record
                (Printf.sprintf "cluster lost beyond the retry budget (%d attempt(s))" attempt))
  done;
  let records = List.sort (fun a b -> compare a.job.Job.id b.job.Job.id) !records in
  let failures =
    List.sort (fun (a : job_failure) b -> compare a.job_id b.job_id) !failures
  in
  let makespan_s = List.fold_left (fun acc r -> Float.max acc r.finish_s) 0.0 records in
  let total_queue_s = List.fold_left (fun acc r -> acc +. r.queue_s) 0.0 records in
  let total_partition_s = List.fold_left (fun acc r -> acc +. r.partition_s) 0.0 records in
  let total_exec_s = List.fold_left (fun acc r -> acc +. r.exec_s) 0.0 records in
  {
    policy;
    selection;
    eviction;
    budget_bytes;
    slots;
    seed;
    max_retries;
    fault_spec = Option.map (fun (f : Faults.config) -> f.Faults.raw) faults;
    checkpoint_every;
    records;
    failures;
    retries = !retries;
    cache = Cache.stats cache;
    makespan_s;
    total_queue_s;
    total_partition_s;
    total_exec_s;
  }

let hit_rate r =
  if r.cache.Cache.lookups = 0 then 0.0
  else float_of_int r.cache.Cache.hits /. float_of_int r.cache.Cache.lookups

let mean_queue_s r =
  match r.records with [] -> 0.0 | l -> r.total_queue_s /. float_of_int (List.length l)

(* --- canonical serialization --- *)

let record_json r =
  Json.Obj
    [
      ("job_id", Json.Int r.job.Job.id);
      ("algorithm", Json.String (Advisor.algorithm_name r.job.Job.algorithm));
      ("dataset", Json.String r.job.Job.dataset);
      ("num_partitions", Json.Int r.job.Job.num_partitions);
      ("arrival_s", Json.Float r.job.Job.arrival_s);
      ("strategy", Json.String r.strategy);
      ("cache_hit", Json.Bool r.cache_hit);
      ("outcome", Json.String r.outcome);
      ("attempts", Json.Int r.attempts);
      ("recoveries", Json.Int r.recoveries);
      ("recovery_s", Json.Float r.recovery_s);
      ("failed", Json.Bool r.failed);
      ("start_s", Json.Float r.start_s);
      ("queue_s", Json.Float r.queue_s);
      ("partition_s", Json.Float r.partition_s);
      ("exec_s", Json.Float r.exec_s);
      ("finish_s", Json.Float r.finish_s);
    ]

let cache_json (s : Cache.stats) =
  Json.Obj
    [
      ("budget_bytes", Json.Float s.Cache.budget_bytes);
      ("lookups", Json.Int s.Cache.lookups);
      ("hits", Json.Int s.Cache.hits);
      ("misses", Json.Int s.Cache.misses);
      ("insertions", Json.Int s.Cache.insertions);
      ("evictions", Json.Int s.Cache.evictions);
      ("invalidations", Json.Int s.Cache.invalidations);
      ("rejections", Json.Int s.Cache.rejections);
      ("bytes_inserted", Json.Float s.Cache.bytes_inserted);
      ("bytes_evicted", Json.Float s.Cache.bytes_evicted);
      ("bytes_invalidated", Json.Float s.Cache.bytes_invalidated);
      ("bytes_in_cache", Json.Float s.Cache.bytes_in_cache);
      ("entries", Json.Int s.Cache.entries);
    ]

let params_json r =
  Json.Obj
    [
      ("policy", Json.String (policy_name r.policy));
      ("selection", Json.String (selection_name r.selection));
      ( "threshold",
        match r.selection with Cache_aware t -> Json.Float t | Heuristic | Measured -> Json.Null );
      ("eviction", Json.String (Cache.eviction_name r.eviction));
      ("budget_bytes", Json.Float r.budget_bytes);
      ("slots", Json.Int r.slots);
      ("seed", Json.String (Int64.to_string r.seed));
      ("max_retries", Json.Int r.max_retries);
      ("faults", match r.fault_spec with Some s -> Json.String s | None -> Json.Null);
      ( "checkpoint_every",
        match r.checkpoint_every with Some k -> Json.Int k | None -> Json.Null );
      ("retries", Json.Int r.retries);
      ("failed_jobs", Json.Int (failed_jobs r));
      ("jobs", Json.Int (List.length r.records));
      ("makespan_s", Json.Float r.makespan_s);
      ("total_queue_s", Json.Float r.total_queue_s);
      ("total_partition_s", Json.Float r.total_partition_s);
      ("total_exec_s", Json.Float r.total_exec_s);
    ]

let failure_json (f : job_failure) =
  Json.Obj
    [
      ("job_id", Json.Int f.job_id);
      ("failed_attempts", Json.Int f.failed_attempts);
      ("reason", Json.String f.reason);
    ]

let report_json r =
  Json.Obj
    [
      ("params", params_json r);
      ("records", Json.List (List.map record_json r.records));
      ("failures", Json.List (List.map failure_json r.failures));
      ("cache", cache_json r.cache);
    ]

let report_lines r =
  (Json.to_string (params_json r) :: List.map (fun x -> Json.to_string (record_json x)) r.records)
  @ List.map (fun f -> Json.to_string (failure_json f)) r.failures
  @ [ Json.to_string (cache_json r.cache) ]

let pp_summary ppf r =
  let n = List.length r.records in
  let hits = List.length (List.filter (fun x -> x.cache_hit) r.records) in
  let oom = List.length (List.filter (fun x -> String.equal x.outcome "out-of-memory") r.records) in
  Format.fprintf ppf "@[<v>workload: %d jobs, policy %s, selection %s, %d slot(s)@," n
    (policy_name r.policy) (selection_name r.selection) r.slots;
  Format.fprintf ppf "cache: %s eviction, budget %.1f GB: %d/%d hits, %d evictions, %d rejections@,"
    (Cache.eviction_name r.eviction) (r.budget_bytes /. 1.0e9) hits r.cache.Cache.lookups
    r.cache.Cache.evictions r.cache.Cache.rejections;
  Format.fprintf ppf "makespan %.2f s | queue mean %.2f s | partition %.2f s | exec %.2f s"
    r.makespan_s (mean_queue_s r) r.total_partition_s r.total_exec_s;
  (match r.fault_spec with
  | None -> ()
  | Some spec ->
      let recov = List.fold_left (fun acc x -> acc + x.recoveries) 0 r.records in
      let recov_s = List.fold_left (fun acc x -> acc +. x.recovery_s) 0.0 r.records in
      Format.fprintf ppf "@,faults %S: %d recover(ies) %.2f s | %d retry(ies) | %d invalidation(s)"
        spec recov recov_s r.retries r.cache.Cache.invalidations);
  if oom > 0 then Format.fprintf ppf "@,%d job(s) ended out-of-memory" oom;
  if failed_jobs r > 0 then Format.fprintf ppf "@,%d job(s) failed permanently" (failed_jobs r);
  Format.fprintf ppf "@]"
