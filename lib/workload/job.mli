(** Seeded multi-job stream generator.

    A job is one analytics request against the cluster: an algorithm, a
    dataset analogue, and a partition count, arriving at a simulated
    instant. Streams are drawn from a {!mix} — weighted choices per
    dimension plus a Poisson arrival process — so workload experiments
    can dial reuse up (few graphs, one granularity) or down (many
    graphs, many granularities) while staying bit-reproducible from the
    seed. *)

type t = {
  id : int;  (** 0-based submission index *)
  arrival_s : float;  (** simulated submission instant, strictly increasing *)
  algorithm : Cutfit.Advisor.algorithm;
  dataset : string;  (** a {!Cutfit_gen.Datasets} name *)
  num_partitions : int;
  tenant : string;  (** owning tenant; {!default_tenant} when untagged *)
}

val default_tenant : string
(** ["default"] — the tenant of every job in a single-tenant stream. *)

type mix = {
  name : string;
  description : string;
  algorithms : (Cutfit.Advisor.algorithm * float) list;  (** weighted *)
  datasets : (string * float) list;  (** weighted dataset names *)
  partition_counts : (int * float) list;  (** weighted granularities *)
  mean_interarrival_s : float;  (** exponential inter-arrival mean *)
}

val mixes : mix list
(** The built-in mixes: ["uniform"] (everything, two granularities),
    ["reuse-heavy"] (edge-dominated algorithms hammering two graphs at
    one granularity — high partitioning reuse), ["churn"] (five graphs
    at three granularities — low reuse, stresses eviction). *)

val find_mix : string -> mix option
val mix_names : string list

val generate : seed:int64 -> jobs:int -> ?tenants:(string * float) list -> mix -> t list
(** [generate ~seed ~jobs mix] draws [jobs] jobs, in arrival order.
    Deterministic: the same seed and mix yield the identical stream.
    Draw order per job is fixed (inter-arrival, algorithm, dataset,
    partition count, then — only when [tenants] is non-empty — the
    owning tenant), so streams with the same seed share a prefix and a
    single-tenant stream is byte-identical to one generated without the
    [tenants] argument. @raise Invalid_argument on an unknown dataset
    name, a non-positive weight sum, an empty dimension, [jobs < 0], a
    non-positive mean inter-arrival, or a tenant name that is empty or
    contains ['/']. *)

(* lint: unused-export -- debug printer, kept for toplevel use *)
val pp : Format.formatter -> t -> unit
(** ["#3 PR youtube/128 @2.41s"]. *)
