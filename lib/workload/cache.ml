module Pgraph = Cutfit_bsp.Pgraph

type key = { graph : string; strategy : string; num_partitions : int }

let key_id k = Printf.sprintf "%s/%s/%d" k.graph k.strategy k.num_partitions

type eviction = Lru | Cost_aware

let eviction_name = function Lru -> "lru" | Cost_aware -> "cost"

let eviction_of_string s =
  match String.lowercase_ascii s with
  | "lru" -> Some Lru
  | "cost" | "cost-aware" -> Some Cost_aware
  | _ -> None

type stats = {
  budget_bytes : float;
  lookups : int;
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;
  invalidations : int;
  rejections : int;
  bytes_inserted : float;
  bytes_evicted : float;
  bytes_invalidated : float;
  bytes_in_cache : float;
  entries : int;
}

type entry = {
  ekey : key;
  pg : Pgraph.t;
  bytes : float;
  rebuild_s : float;
  available_s : float;
  mutable last_use : int;  (** logical tick of the last hit (or the insert) *)
  seq : int;  (** insertion order, the deterministic tiebreak *)
}

type t = {
  eviction : eviction;
  budget : float;
  table : (string, entry) Hashtbl.t;
  mutable tick : int;
  mutable next_seq : int;
  mutable occupancy : float;
  mutable lookups : int;
  mutable hits : int;
  mutable misses : int;
  mutable insertions : int;
  mutable evictions : int;
  mutable invalidations : int;
  mutable rejections : int;
  mutable bytes_inserted : float;
  mutable bytes_evicted : float;
  mutable bytes_invalidated : float;
}

let create ?(eviction = Lru) ~budget_bytes () =
  {
    eviction;
    budget = budget_bytes;
    table = Hashtbl.create 64;
    tick = 0;
    next_seq = 0;
    occupancy = 0.0;
    lookups = 0;
    hits = 0;
    misses = 0;
    insertions = 0;
    evictions = 0;
    invalidations = 0;
    rejections = 0;
    bytes_inserted = 0.0;
    bytes_evicted = 0.0;
    bytes_invalidated = 0.0;
  }

let eviction_policy t = t.eviction
let budget_bytes t = t.budget

let live_entry t ~at_s k =
  match Hashtbl.find_opt t.table (key_id k) with
  | Some e when e.available_s <= at_s -> Some e
  | Some _ | None -> None

let find t ~at_s k =
  t.lookups <- t.lookups + 1;
  match live_entry t ~at_s k with
  | Some e ->
      t.hits <- t.hits + 1;
      t.tick <- t.tick + 1;
      e.last_use <- t.tick;
      Some e.pg
  | None ->
      t.misses <- t.misses + 1;
      None

let mem t ~at_s k = Option.is_some (live_entry t ~at_s k)

(* Snapshot of the live entries in insertion order. The fold's visit
   order is unspecified, but the subsequent sort by [seq] (unique per
   entry) makes the result independent of it. *)
let entries_by_seq t =
  (* lint: order-independent *)
  let all = Hashtbl.fold (fun _ e acc -> e :: acc) t.table [] in
  List.sort (fun a b -> compare a.seq b.seq) all

let cached_strategies t ~at_s ~graph ~num_partitions =
  entries_by_seq t
  |> List.filter (fun e ->
         e.available_s <= at_s
         && String.equal e.ekey.graph graph
         && e.ekey.num_partitions = num_partitions)
  |> List.map (fun e -> e.ekey.strategy)

let remove_entry t e =
  Hashtbl.remove t.table (key_id e.ekey);
  t.occupancy <- t.occupancy -. e.bytes;
  t.evictions <- t.evictions + 1;
  t.bytes_evicted <- t.bytes_evicted +. e.bytes

(* Victim order: LRU by last touch; cost-aware by rebuild cost per byte
   (cheap-to-rebuild, byte-hungry entries go first). Both tie-break on
   insertion order, so eviction is deterministic. *)
let better_victim t a b =
  match t.eviction with
  | Lru -> if a.last_use <> b.last_use then a.last_use < b.last_use else a.seq < b.seq
  | Cost_aware ->
      let score e = e.rebuild_s /. Float.max e.bytes 1.0 in
      let sa = score a and sb = score b in
      if sa <> sb then sa < sb else a.seq < b.seq

let pick_victim t =
  match entries_by_seq t with
  | [] -> None
  | e :: rest -> Some (List.fold_left (fun v c -> if better_victim t c v then c else v) e rest)

let insert t ~available_s k ~pg ~bytes ~rebuild_s =
  if bytes > t.budget then (
    t.rejections <- t.rejections + 1;
    `Rejected)
  else begin
    let evicted = ref [] in
    (match Hashtbl.find_opt t.table (key_id k) with
    | Some old ->
        remove_entry t old;
        evicted := [ (old.ekey, old.bytes) ]
    | None -> ());
    while t.occupancy +. bytes > t.budget do
      match pick_victim t with
      | Some v ->
          remove_entry t v;
          evicted := (v.ekey, v.bytes) :: !evicted
      | None -> t.occupancy <- 0.0 (* unreachable: empty cache occupies nothing *)
    done;
    t.tick <- t.tick + 1;
    t.next_seq <- t.next_seq + 1;
    let e =
      { ekey = k; pg; bytes; rebuild_s; available_s; last_use = t.tick; seq = t.next_seq }
    in
    Hashtbl.replace t.table (key_id k) e;
    t.occupancy <- t.occupancy +. bytes;
    t.insertions <- t.insertions + 1;
    t.bytes_inserted <- t.bytes_inserted +. bytes;
    `Inserted (List.rev !evicted)
  end

(* Drop every live entry at once — the cluster restarted, so nothing a
   dead executor hosted can be reused. Counted separately from eviction
   pressure so the conservation laws can tell the two apart. *)
let invalidate t ~pred =
  let victims = List.filter (fun e -> pred e.ekey) (entries_by_seq t) in
  List.map
    (fun e ->
      Hashtbl.remove t.table (key_id e.ekey);
      t.occupancy <- t.occupancy -. e.bytes;
      t.invalidations <- t.invalidations + 1;
      t.bytes_invalidated <- t.bytes_invalidated +. e.bytes;
      (e.ekey, e.bytes))
    victims

let invalidate_all t = invalidate t ~pred:(fun _ -> true)

let peek_entries t ~pred =
  List.filter_map (fun e -> if pred e.ekey then Some (e.ekey, e.pg) else None) (entries_by_seq t)

let stats t =
  let live = entries_by_seq t in
  let bytes_in_cache = List.fold_left (fun acc e -> acc +. e.bytes) 0.0 live in
  {
    budget_bytes = t.budget;
    lookups = t.lookups;
    hits = t.hits;
    misses = t.misses;
    insertions = t.insertions;
    evictions = t.evictions;
    invalidations = t.invalidations;
    rejections = t.rejections;
    bytes_inserted = t.bytes_inserted;
    bytes_evicted = t.bytes_evicted;
    bytes_invalidated = t.bytes_invalidated;
    bytes_in_cache;
    entries = List.length live;
  }
