(** Sanitizer suites for the workload engine (suite ["workload"]).

    Never asserts — returns {!Cutfit_check.Violation.t} lists, in the
    house style. Three layers:

    - {!cache_accounting} checks the cache's conservation laws on a bare
      {!Cache.stats} record (lookups split into hits and misses, live
      entries = insertions - evictions - invalidations, bytes in cache
      = bytes inserted - evicted - invalidated, budget respected) —
      fabricate an inconsistent record and it must object;
    - {!report} checks a full {!Engine.report}: per-record arithmetic
      (queue, finish, hit implies no partition cost, failed jobs carry
      a failing outcome, zero-attempt jobs carry no run artifacts, shed
      jobs accrue no cost, deadline-cancelled jobs finish at their
      deadline and no uncancelled job overshoots its SLO), aggregate
      consistency (makespan, totals recomputed, one cache lookup per
      attempt, retries and failures recounted against the records,
      every record bucketing into a known outcome), breaker-trip
      state-machine legality (first trip opens at the armed threshold,
      a close only follows an open, chronological order), and, when the
      emitted event stream is supplied, event-vs-record reconciliation
      — including the shed / deadline / breaker / speculation
      narration;
    - {!digest}/{!run_twice} canonicalize a report through the JSONL
      codec for bit-exact determinism checking. *)

val cache_accounting : Cache.stats -> Cutfit_check.Violation.t list

val report : ?events:Cutfit_obs.Event.t list -> Engine.report -> Cutfit_check.Violation.t list
(** With [events], additionally reconciles the narrated stream against
    the records: one submit/start/end triple per job with identical
    fields, and cache-op counts equal to the cache's own counters. *)

val digest : Engine.report -> string
(** MD5 hex of {!Engine.report_lines} — floats bit-exact. *)

val run_twice : label:string -> (unit -> Engine.report) -> Cutfit_check.Violation.t list
(** Runs the thunk twice and compares {!digest}s
    ({!Cutfit_check.Determinism.run_twice}). *)
