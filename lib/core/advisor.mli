(** The "cut to fit" advisor — the paper's contribution as a usable API.

    The paper's conclusion is that the right partitioning strategy
    depends on the computation, the dataset, and the granularity, and
    it distils concrete guidance:

    - edge-dominated algorithms (PageRank, Connected Components, SSSP)
      should minimize {b CommCost}; vertex-state-heavy algorithms
      (Triangle Count) should minimize {b Cut};
    - hash-free DC works best on smaller datasets, 2D on large ones
      (better locality at scale);
    - when the cost of trying is acceptable, measuring the metrics of
      all candidate partitionings and picking the best by the
      algorithm's predictive metric beats any fixed rule.

    Both modes are provided: [heuristic] (free, rule-based) and
    [measure] (computes the metrics of every candidate — linear in the
    number of edges per candidate). *)

type algorithm = Pagerank | Connected_components | Triangle_count | Shortest_paths

val algorithm_name : algorithm -> string
val algorithm_of_string : string -> algorithm option

val predictive_metric : algorithm -> string
(** "CommCost" for PR/CC/SSSP, "Cut" for TR — the metric the paper found
    most correlated with that algorithm's execution time. *)

type size_class = Small | Large

val classify : paper_scale_edges:float -> size_class
(** The paper's small/large split: Orkut, socLiveJournal and the follow
    crawls (tens of millions of edges and up) are "large". *)

val heuristic :
  algorithm -> size:size_class -> num_partitions:int -> Cutfit_partition.Strategy.t
(** The paper's per-algorithm selection rules (section 4). *)

type ranked = {
  strategy : Cutfit_partition.Strategy.t;
  metrics : Cutfit_partition.Metrics.t;
  score : float;  (** the predictive metric's value; lower is better *)
}

val measure :
  ?candidates:Cutfit_partition.Strategy.t list ->
  algorithm ->
  num_partitions:int ->
  Cutfit_graph.Graph.t ->
  ranked list
(** Partition with every candidate (default: the paper's six), compute
    its metrics, and rank ascending by the algorithm's predictive
    metric (ties broken by balance). *)

(** {2 Predicted cost and amortized ranking}

    When partitionings are {e reused} across a stream of jobs (the
    workload engine's cache), the one-time partition-build cost must be
    amortized against execution time over the expected number of jobs
    sharing it — the EASE framing of partitioner selection. The
    predictors below are deliberately coarse: they mirror the simulated
    cost model's build phase exactly (from the per-partition counts the
    metrics carry) and summarize execution as [supersteps] rounds whose
    traffic is proportional to the algorithm's predictive metric. They
    rank strategies and order jobs; they do not reproduce traces. *)

val predicted_build_s :
  ?cost:Cutfit_bsp.Cost_model.t ->
  ?cluster:Cutfit_bsp.Cluster.t ->
  ?scale:float ->
  Cutfit_graph.Graph.t ->
  Cutfit_partition.Metrics.t ->
  float
(** Predicted one-time cost of loading the dataset and materializing
    this partitioning (per-executor build makespan, shuffle wire time,
    task dispatch). Only [executors], [cores_per_executor] and the
    bandwidth fields of [cluster] are read — the partition count comes
    from the metrics. *)

val predicted_exec_s :
  ?cost:Cutfit_bsp.Cost_model.t ->
  ?cluster:Cutfit_bsp.Cluster.t ->
  ?scale:float ->
  ?supersteps:int ->
  algorithm ->
  Cutfit_graph.Graph.t ->
  Cutfit_partition.Metrics.t ->
  float
(** Predicted per-run execution cost over [supersteps] (default 10)
    rounds. Monotone in the algorithm's predictive metric for a fixed
    graph and cluster, so ranking by it agrees with {!measure}. *)

type amortized = {
  base : ranked;
  build_s : float;  (** {!predicted_build_s} of this candidate *)
  exec_s : float;  (** {!predicted_exec_s} of this candidate *)
  amortized_s : float;  (** [exec_s +. build_s /. expected_reuse] *)
}

val measure_amortized :
  ?candidates:Cutfit_partition.Strategy.t list ->
  ?cost:Cutfit_bsp.Cost_model.t ->
  ?cluster:Cutfit_bsp.Cluster.t ->
  ?scale:float ->
  ?supersteps:int ->
  expected_reuse:float ->
  algorithm ->
  num_partitions:int ->
  Cutfit_graph.Graph.t ->
  amortized list
(** {!measure}, re-ranked by amortized per-job cost: each candidate's
    partition-build cost is folded over [expected_reuse] jobs sharing
    the partitioning. As [expected_reuse] grows the ranking converges
    to the plain {!measure} order (execution dominates); at low reuse
    counts cheap-to-build strategies overtake better-fitting ones — the
    paper's "cost of trying" tradeoff as a number.
    @raise Invalid_argument if [expected_reuse <= 0]. *)

val advise :
  ?measure_threshold_edges:int ->
  algorithm ->
  scale:float ->
  num_partitions:int ->
  Cutfit_graph.Graph.t ->
  Cutfit_partition.Strategy.t
(** Measured selection when the graph is small enough to afford it
    (default threshold 5M edges), the heuristic otherwise. [scale] is
    the work-rescaling factor (1.0 for a graph used at face value). *)
