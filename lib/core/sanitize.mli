(** Full-pipeline sanitizer: one entry point that partitions a graph,
    runs an algorithm with telemetry attached, and subjects the result
    to every {!Cutfit_check} suite plus the run-twice determinism
    harness. Backs the [cutfit check] subcommand and the [--paranoid]
    CLI flag.

    Suites, in order: [pgraph] (structure vs assignment), [metrics]
    (recomputation + §3.1 identity), [trace] (conservation laws, with
    the wire-payload law on the Pregel-engine algorithms), [telemetry]
    (event stream vs trace reconciliation), [determinism] (two more
    identical runs must digest identically). With a fault schedule or a
    speculation config a sixth suite, [faults], replays the pipeline
    fault-free and speculation-free and proves the equivalence invariant
    via {!Cutfit_check.Fault_check}: the perturbed run's final vertex
    values are bit-identical to the baseline's, its communication
    structure is unchanged, and its compute supersteps never sum
    cheaper. With [engine_domains] a further suite, [engines], proves
    the compact {!Cutfit_bsp.Csr} kernel reproduces the boxed engine's
    vertex values bit-for-bit at each listed domain count, twice per
    count ({!Cutfit_check.Engine_check}). With [race_domains] a [races]
    suite runs the instrumented mirror of the algorithm's compact
    kernel under the shadow write-ownership recorder at each listed
    domain count and self-tests the detector against two seeded
    corruptions ({!Cutfit_check.Race_check}). With [dynamic] a
    [dynamic] suite replays the mutation schedule from a fresh
    streaming cut of the same graph and proves the three dynamic-graph
    laws ({!Cutfit_dynamic.Dyn_check}). With [elastic] (a scale-event
    schedule) or [hetero] (per-executor speed/bandwidth multipliers) an
    [elastic] suite replays the pipeline statically and homogeneously
    and proves membership churn perturbed only time and locality —
    bit-identical vertex values, unchanged placement-independent
    structure, an unbroken membership chain
    ({!Cutfit_check.Elastic_check}). *)

type report = {
  algorithm : Advisor.algorithm;
  partitioner : Cutfit_partition.Partitioner.t;
  suites : (string * int) list;  (** suite name, violation count *)
  violations : Cutfit_check.Violation.t list;  (** all suites, in order *)
  trace_digest : string;
  events_digest : string;
}

val ok : report -> bool

val check_run :
  ?cluster:Cutfit_bsp.Cluster.t ->
  ?partitioner:Cutfit_partition.Partitioner.t ->
  ?scale:float ->
  ?checkpoint_every:int ->
  ?faults:Cutfit_bsp.Faults.config ->
  ?speculation:Cutfit_bsp.Speculation.config ->
  ?elastic:Cutfit_bsp.Elastic.config ->
  ?hetero:Cutfit_bsp.Elastic.hetero ->
  ?engine_domains:int list ->
  ?race_domains:int list ->
  ?dynamic:Cutfit_dynamic.Mutation.config ->
  algorithm:Advisor.algorithm ->
  Cutfit_graph.Graph.t ->
  report
(** Defaults mirror {!Pipeline.prepare}: cluster configuration (i), the
    advisor's partitioner, scale 1.0. SSSP uses the same 3 deterministic
    landmarks as {!Pipeline.compare_partitioners}. Runs the pipeline
    three times in total (once observed, twice for the determinism
    digest) — four with [faults] or [speculation], which add the
    unperturbed baseline for the equivalence suite, and one more with
    [elastic] or [hetero] for the static-replay baseline. *)

val pp_report : Format.formatter -> report -> unit
