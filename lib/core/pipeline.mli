(** One-stop analytics pipeline: partition (advised or explicit), run,
    and return results with the simulated execution trace.

    This is the API the examples and the CLI are written against:

    {[
      let g = Cutfit.Gen.Social.generate params in
      let p = Cutfit.Pipeline.prepare ~algorithm:Cutfit.Advisor.Pagerank g in
      let ranks, trace = Cutfit.Pipeline.pagerank p in
      Format.printf "%a@." Cutfit.Trace.pp_summary trace
    ]}

    To observe a run rather than just time it, attach a telemetry handle
    at {!prepare}; each runner then streams one structured event per
    superstep (plus run boundaries) to the handle's sinks:

    {[
      let t = Cutfit_obs.Telemetry.create ~sinks:[ Cutfit_obs.Sink.jsonl "trace.jsonl" ] () in
      let p = Cutfit.Pipeline.prepare ~telemetry:t ~algorithm:Cutfit.Advisor.Pagerank g in
      let _ranks, _trace = Cutfit.Pipeline.pagerank p in
      Cutfit_obs.Telemetry.close t
    ]} *)

type prepared = {
  graph : Cutfit_graph.Graph.t;
  pg : Cutfit_bsp.Pgraph.t;
  cluster : Cutfit_bsp.Cluster.t;
  partitioner : Cutfit_partition.Partitioner.t;
  scale : float;
  telemetry : Cutfit_obs.Telemetry.t option;
      (** threaded into every run launched from this preparation *)
  checkpoint_every : int option;
      (** superstep checkpoint cadence, threaded into every Pregel/GAS run *)
  faults : Cutfit_bsp.Faults.config option;
      (** deterministic fault schedule, threaded into every Pregel/GAS run *)
  speculation : Cutfit_bsp.Speculation.config option;
      (** straggler-mitigation config, threaded into every Pregel/GAS run *)
  elastic : Cutfit_bsp.Elastic.config option;
      (** scale-event schedule (joins/leaves/preemptions), threaded into
          every Pregel/GAS run *)
  hetero : Cutfit_bsp.Elastic.hetero option;
      (** per-executor speed/bandwidth multipliers, threaded into every
          Pregel/GAS run *)
}

val prepare :
  ?check:bool ->
  ?cluster:Cutfit_bsp.Cluster.t ->
  ?partitioner:Cutfit_partition.Partitioner.t ->
  ?scale:float ->
  ?checkpoint_every:int ->
  ?faults:Cutfit_bsp.Faults.config ->
  ?speculation:Cutfit_bsp.Speculation.config ->
  ?elastic:Cutfit_bsp.Elastic.config ->
  ?hetero:Cutfit_bsp.Elastic.hetero ->
  ?telemetry:Cutfit_obs.Telemetry.t ->
  algorithm:Advisor.algorithm ->
  Cutfit_graph.Graph.t ->
  prepared
(** Partition the graph for the given algorithm. Defaults: cluster
    configuration (i), the advisor's strategy, scale 1.0, no telemetry.
    Existing callers are unchanged — omitting [telemetry] keeps the
    zero-allocation fast path in the engines.

    [checkpoint_every], [faults], [speculation], [elastic] and [hetero]
    are forwarded to every Pregel/GAS run launched from this
    preparation. Triangle counting builds its stages outside those
    engines, so none of the fault schedule, speculative re-execution or
    the elasticity layer applies to it — a TR run in a faulty or
    elastic pipeline simply executes statically.

    With [~check:true] the assignment is validated before the build and
    the frozen {!Cutfit_bsp.Pgraph} plus its metrics are sanitized after
    it ({!Cutfit_check.Pgraph_check}, {!Cutfit_check.Metrics_check});
    any violation raises {!Cutfit_check.Violation.Violations}. Default
    [false] — the paranoid path costs an extra pass over the graph. *)

val of_pgraph :
  ?cluster:Cutfit_bsp.Cluster.t ->
  ?scale:float ->
  ?checkpoint_every:int ->
  ?faults:Cutfit_bsp.Faults.config ->
  ?speculation:Cutfit_bsp.Speculation.config ->
  ?elastic:Cutfit_bsp.Elastic.config ->
  ?hetero:Cutfit_bsp.Elastic.hetero ->
  ?telemetry:Cutfit_obs.Telemetry.t ->
  partitioner:Cutfit_partition.Partitioner.t ->
  Cutfit_bsp.Pgraph.t ->
  prepared
(** Wrap an {e already-built} partitioned graph — the workload engine's
    cache-hit path, which skips the load and build phases by reusing a
    frozen {!Cutfit_bsp.Pgraph}. [partitioner] names the strategy the
    graph was built with (it is not re-applied).
    @raise Invalid_argument when the cluster's partition count disagrees
    with the graph's. *)

val metrics : prepared -> Cutfit_partition.Metrics.t
(** Partitioning metrics of the prepared graph. *)

val check_prepared : prepared -> Cutfit_check.Violation.t list
(** The structural sanitizer suites of an already-prepared pipeline
    (partitioned graph + metrics), as a report instead of an
    exception. *)

val pagerank : ?iterations:int -> prepared -> float array * Cutfit_bsp.Trace.t
val connected_components : ?iterations:int -> prepared -> int array * Cutfit_bsp.Trace.t

val triangles : prepared -> int array * int * Cutfit_bsp.Trace.t
(** Per-vertex counts, total, trace. *)

val shortest_paths : landmarks:int array -> prepared -> int array array * Cutfit_bsp.Trace.t

val compare_partitioners :
  ?check:bool ->
  ?partitioners:Cutfit_partition.Partitioner.t list ->
  ?cluster:Cutfit_bsp.Cluster.t ->
  ?scale:float ->
  ?seed:int64 ->
  ?checkpoint_every:int ->
  ?faults:Cutfit_bsp.Faults.config ->
  ?speculation:Cutfit_bsp.Speculation.config ->
  ?telemetry:Cutfit_obs.Telemetry.t ->
  algorithm:Advisor.algorithm ->
  Cutfit_graph.Graph.t ->
  (string * float) list
(** Simulated job time per partitioner for one algorithm, ascending
    (NaN last, for OOM). SSSP picks 3 landmarks from [seed] (default
    11L, the historical value — pass the CLI's [--seed] to vary the
    sources deterministically). With [telemetry], the six runs stream
    into one event sequence, each bracketed by a [Run_start] naming
    algorithm and partitioner. [check] is forwarded to each
    {!prepare}. *)
