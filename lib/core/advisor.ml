module Graph = Cutfit_graph.Graph
module Strategy = Cutfit_partition.Strategy
module Partitioner = Cutfit_partition.Partitioner
module Metrics = Cutfit_partition.Metrics

type algorithm = Pagerank | Connected_components | Triangle_count | Shortest_paths

let algorithm_name = function
  | Pagerank -> "PR"
  | Connected_components -> "CC"
  | Triangle_count -> "TR"
  | Shortest_paths -> "SSSP"

let algorithm_of_string s =
  match String.uppercase_ascii s with
  | "PR" | "PAGERANK" -> Some Pagerank
  | "CC" -> Some Connected_components
  | "TR" | "TRIANGLES" -> Some Triangle_count
  | "SSSP" -> Some Shortest_paths
  | _ -> None

let predictive_metric = function
  | Pagerank | Connected_components | Shortest_paths -> "CommCost"
  | Triangle_count -> "Cut"

type size_class = Small | Large

let classify ~paper_scale_edges = if paper_scale_edges >= 5.0e7 then Large else Small

(* Section 4's observed winners, condensed to rules. *)
let heuristic algo ~size ~num_partitions =
  let fine = num_partitions > 128 in
  match (algo, size, fine) with
  | Pagerank, Large, _ -> Strategy.Two_d
  | Pagerank, Small, _ -> Strategy.Dc
  | Connected_components, Large, _ -> Strategy.Two_d
  | Connected_components, Small, false -> Strategy.One_d
  | Connected_components, Small, true -> Strategy.Two_d
  | Triangle_count, _, _ -> Strategy.Crvc
  | Shortest_paths, Large, _ -> Strategy.Two_d
  | Shortest_paths, Small, _ -> Strategy.One_d

type ranked = { strategy : Strategy.t; metrics : Metrics.t; score : float }

let measure ?(candidates = Strategy.all) algo ~num_partitions g =
  let metric = predictive_metric algo in
  let ranked =
    List.map
      (fun strategy ->
        let assignment = Partitioner.assign (Partitioner.Hash strategy) ~num_partitions g in
        let metrics = Metrics.compute g ~num_partitions assignment in
        { strategy; metrics; score = Metrics.metric_value metrics metric })
      candidates
  in
  List.sort
    (fun a b ->
      let c = compare a.score b.score in
      if c <> 0 then c else compare a.metrics.Metrics.balance b.metrics.Metrics.balance)
    ranked

(* --- predicted simulated cost (coarse, for scheduling/amortization) ---

   These mirror the engine's cost model closely enough to rank
   strategies and order jobs, not to reproduce the trace: the build
   phase is re-derived exactly from the per-partition edge/vertex
   counts the metrics already carry, while execution is summarized as
   [supersteps] rounds whose traffic is proportional to the algorithm's
   predictive metric. *)

module Cluster = Cutfit_bsp.Cluster
module Cost_model = Cutfit_bsp.Cost_model

let predicted_build_s ?(cost = Cost_model.default) ?(cluster = Cluster.config_i) ?(scale = 1.0) g
    (m : Metrics.t) =
  let executors = cluster.Cluster.executors in
  let cores = cluster.Cluster.cores_per_executor in
  let per_exec_work = Array.make executors 0.0 in
  let per_exec_bytes = Array.make executors 0.0 in
  let remote_frac = float_of_int (executors - 1) /. float_of_int executors in
  Array.iteri
    (fun p e_p ->
      let e = p mod executors in
      let v_p = float_of_int m.Metrics.vertices_per_partition.(p) in
      let e_p = float_of_int e_p in
      per_exec_work.(e) <-
        per_exec_work.(e)
        +. (e_p *. cost.Cost_model.build_edge_s)
        +. (v_p *. cost.Cost_model.build_vertex_s);
      per_exec_bytes.(e) <-
        per_exec_bytes.(e)
        +. (e_p *. float_of_int cost.Cost_model.shuffle_edge_bytes *. remote_frac))
    m.Metrics.edges_per_partition;
  let compute =
    Array.fold_left (fun acc w -> Float.max acc (w /. float_of_int cores)) 0.0 per_exec_work
  in
  let network =
    Array.fold_left
      (fun acc b -> Float.max acc (b /. Cluster.network_bytes_per_s cluster))
      0.0 per_exec_bytes
  in
  let load =
    float_of_int (Cutfit_graph.Graph_io.size_bytes g)
    /. (float_of_int executors *. Cluster.storage_bytes_per_s cluster)
  in
  let overhead =
    cost.Cost_model.superstep_barrier_s
    +. (float_of_int m.Metrics.num_partitions *. cost.Cost_model.task_dispatch_s)
  in
  scale *. (load +. Float.max compute network +. overhead)

let predicted_exec_s ?(cost = Cost_model.default) ?(cluster = Cluster.config_i) ?(scale = 1.0)
    ?(supersteps = 10) algo g (m : Metrics.t) =
  let traffic = Metrics.metric_value m (predictive_metric algo) in
  let edges = float_of_int (Graph.num_edges g) in
  let vertices = float_of_int (Graph.num_vertices g) in
  let per_step_work =
    (edges *. (cost.Cost_model.edge_scan_s +. cost.Cost_model.msg_merge_s))
    +. (vertices *. cost.Cost_model.vprog_s)
    +. (2.0 *. traffic *. cost.Cost_model.msg_serialize_s)
  in
  let wire_bytes = traffic *. float_of_int (8 + cost.Cost_model.msg_wire_overhead_bytes) in
  let per_step_network =
    wire_bytes /. float_of_int cluster.Cluster.executors /. Cluster.network_bytes_per_s cluster
  in
  let overhead =
    cost.Cost_model.superstep_barrier_s
    +. (float_of_int m.Metrics.num_partitions *. cost.Cost_model.task_dispatch_s)
  in
  float_of_int supersteps
  *. ((scale
      *. Float.max
           (per_step_work /. float_of_int (Cluster.total_cores cluster))
           per_step_network)
     +. overhead)

type amortized = { base : ranked; build_s : float; exec_s : float; amortized_s : float }

let measure_amortized ?candidates ?cost ?cluster ?scale ?supersteps ~expected_reuse algo
    ~num_partitions g =
  if expected_reuse <= 0.0 then invalid_arg "Advisor.measure_amortized: expected_reuse <= 0";
  let amortized =
    List.map
      (fun base ->
        let build_s = predicted_build_s ?cost ?cluster ?scale g base.metrics in
        let exec_s = predicted_exec_s ?cost ?cluster ?scale ?supersteps algo g base.metrics in
        { base; build_s; exec_s; amortized_s = exec_s +. (build_s /. expected_reuse) })
      (measure ?candidates algo ~num_partitions g)
  in
  List.sort
    (fun a b ->
      let c = compare a.amortized_s b.amortized_s in
      if c <> 0 then c else compare a.base.score b.base.score)
    amortized

let advise ?(measure_threshold_edges = 5_000_000) algo ~scale ~num_partitions g =
  if Graph.num_edges g <= measure_threshold_edges then
    match measure algo ~num_partitions g with
    | best :: _ -> best.strategy
    | [] -> heuristic algo ~size:Small ~num_partitions
  else begin
    let paper_scale_edges = scale *. float_of_int (Graph.num_edges g) in
    heuristic algo ~size:(classify ~paper_scale_edges) ~num_partitions
  end
