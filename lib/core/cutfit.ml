(** Cut to Fit: tailoring graph partitioning to the computation.

    Umbrella module re-exporting the whole library surface. The paper's
    contribution lives in {!Advisor} (strategy selection) and
    {!Pipeline} (partition-aware analytics); everything else is the
    substrate it runs on:

    - {!Graph}, {!Edge_list}, {!Components}, {!Triangles}, {!Bfs},
      {!Diameter}, {!Characterize}, {!Graph_io} — the graph toolkit;
    - {!Strategy}, {!Streaming}, {!Partitioner}, {!Metrics} — vertex-cut
      partitioning;
    - {!Pgraph}, {!Pregel}, {!Cluster}, {!Cost_model}, {!Trace} — the
      simulated GraphX/Spark runtime;
    - {!Csr}, {!Par_exec} — the compact flat-array representation and
      the multicore superstep driver that execute the same algorithms
      for real (see docs/PERFORMANCE.md);
    - {!Mutation}, {!Incremental}, {!Repartition}, {!Dyn_check} — the
      dynamic-graph subsystem: seeded mutation batches, incremental
      repair of a streaming cut, and the priced refresh-vs-rebuild
      decision;
    - {!Telemetry}, {!Metric}, {!Event}, {!Sink}, {!Json}, {!Clock} —
      structured per-superstep telemetry and its sinks;
    - {!Check}, {!Sanitize} — runtime invariant suites (the simulator
      sanitizer) and the full-run checker behind [cutfit check];
    - {!Pagerank}, {!Connected_components}, {!Triangle_count}, {!Sssp} —
      the four analytics algorithms;
    - {!Grid}, {!Social}, {!Datasets} — synthetic dataset generators;
    - {!Summary}, {!Correlation}, {!Cdf}, {!Histogram}, {!Linreg} —
      statistics. *)

module Advisor = Advisor
module Pipeline = Pipeline
module Sanitize = Sanitize

(* Correctness tooling *)
module Check = Cutfit_check

(* Graph substrate *)
module Graph = Cutfit_graph.Graph
module Edge_list = Cutfit_graph.Edge_list
module Union_find = Cutfit_graph.Union_find
module Components = Cutfit_graph.Components
module Bfs = Cutfit_graph.Bfs
module Triangles = Cutfit_graph.Triangles
module Diameter = Cutfit_graph.Diameter
module Characterize = Cutfit_graph.Characterize
module Graph_io = Cutfit_graph.Graph_io

(* Partitioning *)
module Strategy = Cutfit_partition.Strategy
module Streaming = Cutfit_partition.Streaming
module Partitioner = Cutfit_partition.Partitioner
module Metrics = Cutfit_partition.Metrics
module Hashing = Cutfit_partition.Hashing

(* Observability *)
module Telemetry = Cutfit_obs.Telemetry
module Metric = Cutfit_obs.Metric
module Event = Cutfit_obs.Event
module Sink = Cutfit_obs.Sink
module Json = Cutfit_obs.Json
module Clock = Cutfit_obs.Clock

(* Simulated runtime *)
module Cluster = Cutfit_bsp.Cluster
module Cost_model = Cutfit_bsp.Cost_model
module Pgraph = Cutfit_bsp.Pgraph
module Pregel = Cutfit_bsp.Pregel
module Gas = Cutfit_bsp.Gas
module Trace = Cutfit_bsp.Trace
module Faults = Cutfit_bsp.Faults
module Speculation = Cutfit_bsp.Speculation
module Elastic = Cutfit_bsp.Elastic

(* Compact real-execution layer *)
module Csr = Cutfit_bsp.Csr
module Par_exec = Cutfit_bsp.Par_exec

(* Dynamic graphs *)
module Mutation = Cutfit_dynamic.Mutation
module Incremental = Cutfit_dynamic.Incremental
module Repartition = Cutfit_dynamic.Repartition
module Dyn_check = Cutfit_dynamic.Dyn_check

(* Algorithms *)
module Pagerank = Cutfit_algo.Pagerank
module Connected_components = Cutfit_algo.Connected_components
module Triangle_count = Cutfit_algo.Triangle_count
module Sssp = Cutfit_algo.Sssp

(* Generators *)
module Grid = Cutfit_gen.Grid
module Social = Cutfit_gen.Social
module Datasets = Cutfit_gen.Datasets

(* Randomness and statistics *)
module Splitmix64 = Cutfit_prng.Splitmix64
module Xoshiro = Cutfit_prng.Xoshiro
module Dist = Cutfit_prng.Dist
module Summary = Cutfit_stats.Summary
module Correlation = Cutfit_stats.Correlation
module Cdf = Cutfit_stats.Cdf
module Histogram = Cutfit_stats.Histogram
module Linreg = Cutfit_stats.Linreg
