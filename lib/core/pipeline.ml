module Graph = Cutfit_graph.Graph
module Partitioner = Cutfit_partition.Partitioner
module Cluster = Cutfit_bsp.Cluster
module Pgraph = Cutfit_bsp.Pgraph
module Trace = Cutfit_bsp.Trace
module Obs = Cutfit_obs

type prepared = {
  graph : Graph.t;
  pg : Pgraph.t;
  cluster : Cluster.t;
  partitioner : Partitioner.t;
  scale : float;
  telemetry : Obs.Telemetry.t option;
  checkpoint_every : int option;
  faults : Cutfit_bsp.Faults.config option;
  speculation : Cutfit_bsp.Speculation.config option;
  elastic : Cutfit_bsp.Elastic.config option;
  hetero : Cutfit_bsp.Elastic.hetero option;
}

let prepare ?(check = false) ?(cluster = Cluster.config_i) ?partitioner ?(scale = 1.0)
    ?checkpoint_every ?faults ?speculation ?elastic ?hetero ?telemetry ~algorithm g =
  let num_partitions = cluster.Cluster.num_partitions in
  let partitioner =
    match partitioner with
    | Some p -> p
    | None -> Partitioner.Hash (Advisor.advise algorithm ~scale ~num_partitions g)
  in
  let assignment = Partitioner.assign partitioner ~num_partitions g in
  if check then
    Cutfit_check.Violation.raise_if_any
      (Cutfit_check.Pgraph_check.assignment g ~num_partitions assignment);
  let pg = Pgraph.build g ~num_partitions assignment in
  let p =
    {
      graph = g;
      pg;
      cluster;
      partitioner;
      scale;
      telemetry;
      checkpoint_every;
      faults;
      speculation;
      elastic;
      hetero;
    }
  in
  if check then
    Cutfit_check.Violation.raise_if_any
      (Cutfit_check.Pgraph_check.validate pg
      @ Cutfit_check.Metrics_check.validate g ~num_partitions assignment (Pgraph.metrics pg));
  p

let of_pgraph ?(cluster = Cluster.config_i) ?(scale = 1.0) ?checkpoint_every ?faults ?speculation
    ?elastic ?hetero ?telemetry ~partitioner pg =
  if cluster.Cluster.num_partitions <> Pgraph.num_partitions pg then
    invalid_arg "Pipeline.of_pgraph: cluster and partitioned graph disagree on partition count";
  {
    graph = Pgraph.graph pg;
    pg;
    cluster;
    partitioner;
    scale;
    telemetry;
    checkpoint_every;
    faults;
    speculation;
    elastic;
    hetero;
  }

let metrics p = Pgraph.metrics p.pg

let check_prepared p =
  let num_partitions = Cluster.(p.cluster.num_partitions) in
  let assignment = Pgraph.assignment p.pg in
  Cutfit_check.Pgraph_check.validate p.pg
  @ Cutfit_check.Metrics_check.validate p.graph ~num_partitions assignment (metrics p)

(* Each runner brackets the engine's event stream with a [Run_start]
   naming the algorithm and the partitioner, so multi-run trace files
   (e.g. from [compare_partitioners]) are self-describing. *)
let start_run p label =
  match p.telemetry with
  | None -> ()
  | Some t ->
      Obs.Telemetry.emit t
        (Obs.Event.Run_start
           { label = Printf.sprintf "%s/%s" label (Partitioner.name p.partitioner) })

let pagerank ?iterations p =
  start_run p "pagerank";
  let r =
    Cutfit_algo.Pagerank.run ?iterations ~scale:p.scale ?checkpoint_every:p.checkpoint_every
      ?faults:p.faults ?speculation:p.speculation ?elastic:p.elastic ?hetero:p.hetero
      ?telemetry:p.telemetry ~cluster:p.cluster p.pg
  in
  (r.Cutfit_algo.Pagerank.ranks, r.Cutfit_algo.Pagerank.trace)

let connected_components ?iterations p =
  start_run p "connected_components";
  let r =
    Cutfit_algo.Connected_components.run ?iterations ~scale:p.scale
      ?checkpoint_every:p.checkpoint_every ?faults:p.faults ?speculation:p.speculation
      ?elastic:p.elastic ?hetero:p.hetero ?telemetry:p.telemetry ~cluster:p.cluster p.pg
  in
  (r.Cutfit_algo.Connected_components.labels, r.Cutfit_algo.Connected_components.trace)

(* Triangle counting builds its four stages outside the Pregel/GAS
   engines, so the fault schedule does not apply to it: a TR run in a
   faulty workload simply executes fault-free. *)
let triangles p =
  start_run p "triangle_count";
  let r =
    Cutfit_algo.Triangle_count.run ~scale:p.scale ?telemetry:p.telemetry ~cluster:p.cluster p.pg
  in
  ( r.Cutfit_algo.Triangle_count.per_vertex,
    r.Cutfit_algo.Triangle_count.total,
    r.Cutfit_algo.Triangle_count.trace )

let shortest_paths ~landmarks p =
  start_run p "shortest_paths";
  let r =
    Cutfit_algo.Sssp.run ~scale:p.scale ?checkpoint_every:p.checkpoint_every ?faults:p.faults
      ?speculation:p.speculation ?elastic:p.elastic ?hetero:p.hetero ?telemetry:p.telemetry
      ~cluster:p.cluster ~landmarks p.pg
  in
  (r.Cutfit_algo.Sssp.distances, r.Cutfit_algo.Sssp.trace)

let compare_partitioners ?(check = false) ?(partitioners = Partitioner.paper_six)
    ?(cluster = Cluster.config_i) ?(scale = 1.0) ?(seed = 11L) ?checkpoint_every ?faults
    ?speculation ?telemetry ~algorithm g =
  let times =
    List.map
      (fun partitioner ->
        let p =
          prepare ~check ~cluster ~partitioner ~scale ?checkpoint_every ?faults ?speculation
            ?telemetry ~algorithm g
        in
        let trace =
          match algorithm with
          | Advisor.Pagerank -> snd (pagerank p)
          | Advisor.Connected_components -> snd (connected_components p)
          | Advisor.Triangle_count ->
              let _, _, t = triangles p in
              t
          | Advisor.Shortest_paths ->
              let landmarks = Cutfit_algo.Sssp.pick_landmarks ~seed ~count:3 p.graph in
              snd (shortest_paths ~landmarks p)
        in
        let time = if Trace.completed trace then trace.Trace.total_s else Float.nan in
        (Partitioner.name partitioner, time))
      partitioners
  in
  List.sort
    (fun (_, a) (_, b) ->
      match (Float.is_nan a, Float.is_nan b) with
      | true, true -> 0
      | true, false -> 1
      | false, true -> -1
      | false, false -> compare a b)
    times
