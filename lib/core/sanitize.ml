module Graph = Cutfit_graph.Graph
module Partitioner = Cutfit_partition.Partitioner
module Cluster = Cutfit_bsp.Cluster
module Cost_model = Cutfit_bsp.Cost_model
module Pgraph = Cutfit_bsp.Pgraph
module Trace = Cutfit_bsp.Trace
module Check = Cutfit_check
module Obs = Cutfit_obs

type report = {
  algorithm : Advisor.algorithm;
  partitioner : Partitioner.t;
  suites : (string * int) list;
  violations : Check.Violation.t list;
  trace_digest : string;
  events_digest : string;
}

let ok r = r.violations = []

(* Wire payload per remote message, as the Pregel engine computes it:
   payload bytes plus the framing overhead. Triangle counting builds its
   stages outside the message engines, so no payload law applies. *)
let payload ~scale ~landmarks algorithm =
  let overhead = Cost_model.default.Cost_model.msg_wire_overhead_bytes in
  let of_bytes b =
    Some
      {
        Check.Trace_check.msg_wire_bytes = float_of_int (b + overhead);
        attr_wire_bytes = float_of_int (b + overhead);
        scale;
      }
  in
  match algorithm with
  | Advisor.Pagerank | Advisor.Connected_components -> of_bytes 8
  | Advisor.Shortest_paths -> of_bytes (96 + (64 * Array.length landmarks))
  | Advisor.Triangle_count -> None

(* One sanitized run. Besides the trace and the captured event stream,
   every run yields a canonical digest of its final vertex values —
   what the fault suite compares bit-for-bit across baseline and faulty
   executions. *)
let run_once ?checkpoint_every ?faults ?speculation ?elastic ?hetero ~cluster ~partitioner
    ~scale ~landmarks ~algorithm g =
  let sink, contents = Obs.Sink.ring ~capacity:65536 () in
  let telemetry = Obs.Telemetry.create ~sinks:[ sink ] () in
  let p =
    Pipeline.prepare ~cluster ~partitioner ~scale ?checkpoint_every ?faults ?speculation
      ?elastic ?hetero ~telemetry ~algorithm g
  in
  let trace, attrs_digest =
    match algorithm with
    | Advisor.Pagerank ->
        let ranks, t = Pipeline.pagerank p in
        (t, Check.Fault_check.float_attrs_digest ranks)
    | Advisor.Connected_components ->
        let labels, t = Pipeline.connected_components p in
        (t, Check.Fault_check.int_attrs_digest labels)
    | Advisor.Triangle_count ->
        let per_vertex, _, t = Pipeline.triangles p in
        (t, Check.Fault_check.int_attrs_digest per_vertex)
    | Advisor.Shortest_paths ->
        let distances, t = Pipeline.shortest_paths ~landmarks p in
        (t, Check.Fault_check.int_attrs_digest (Array.concat (Array.to_list distances)))
  in
  Obs.Telemetry.close telemetry;
  (p, trace, attrs_digest, contents ())

let check_run ?(cluster = Cluster.config_i) ?partitioner ?(scale = 1.0) ?checkpoint_every ?faults
    ?speculation ?elastic ?hetero ?engine_domains ?race_domains ?dynamic ~algorithm g =
  let num_partitions = cluster.Cluster.num_partitions in
  let partitioner =
    match partitioner with
    | Some p -> p
    | None -> Partitioner.Hash (Advisor.advise algorithm ~scale ~num_partitions g)
  in
  let landmarks =
    match algorithm with
    | Advisor.Shortest_paths -> Cutfit_algo.Sssp.pick_landmarks ~seed:11L ~count:3 g
    | _ -> [||]
  in
  let p, trace, attrs_digest, events =
    run_once ?checkpoint_every ?faults ?speculation ?elastic ?hetero ~cluster ~partitioner
      ~scale ~landmarks ~algorithm g
  in
  let assignment = Pgraph.assignment p.Pipeline.pg in
  let pgraph_v = Check.Pgraph_check.validate p.Pipeline.pg in
  let metrics_v =
    Check.Metrics_check.validate p.Pipeline.graph ~num_partitions assignment (Pipeline.metrics p)
  in
  (* On an elastic (or heterogeneous) run the conservation suite is run
     through its {!Elastic_check} alias — same laws, but the suite name
     in a violation points the reader at the membership chain. *)
  let trace_v =
    let payload = payload ~scale ~landmarks algorithm in
    match (elastic, hetero) with
    | None, None -> Check.Trace_check.validate ?payload trace
    | _ -> Check.Elastic_check.validate_elastic ?payload trace
  in
  let telemetry_v = Check.Trace_check.reconcile trace events in
  let trace_digest = Check.Determinism.trace_digest trace in
  let events_digest = Check.Determinism.events_digest events in
  let label =
    Printf.sprintf "%s/%s" (Advisor.algorithm_name algorithm) (Partitioner.name partitioner)
  in
  let digest_of_run () =
    let _, trace, _, events =
      run_once ?checkpoint_every ?faults ?speculation ?elastic ?hetero ~cluster ~partitioner
        ~scale ~landmarks ~algorithm g
    in
    Check.Determinism.trace_digest trace ^ "/" ^ Check.Determinism.events_digest events
  in
  let determinism_v = Check.Determinism.run_twice ~label digest_of_run in
  (* With a fault schedule (or speculation) the sanitized run above is
     the perturbed one; a sixth suite replays the same pipeline
     fault-free and speculation-free and proves the equivalence
     invariant: bit-identical vertex values, same communication
     structure, never cheaper in compute time. *)
  let faults_v =
    match (faults, speculation) with
    | None, None -> None
    | _ ->
        let _, baseline, baseline_attrs, _ =
          run_once ?elastic ?hetero ~cluster ~partitioner ~scale ~landmarks ~algorithm g
        in
        Some
          (Check.Fault_check.equivalence ~label ~baseline ~faulty:trace
             ~baseline_attrs ~faulty_attrs:attrs_digest ())
  in
  (* Dual of the faults suite for membership churn: replay the pipeline
     statically and homogeneously (same fault schedule, if any) and
     prove scale events perturbed only time and locality — bit-identical
     vertex values, unchanged placement-independent structure, and an
     unbroken membership chain through the reshuffle records. *)
  let elastic_v =
    match (elastic, hetero) with
    | None, None -> None
    | _ ->
        let _, baseline, baseline_attrs, _ =
          run_once ?checkpoint_every ?faults ?speculation ~cluster ~partitioner ~scale ~landmarks
            ~algorithm g
        in
        Some
          (Check.Elastic_check.equivalence ~label ~executors:cluster.Cluster.executors
             ~num_partitions ~baseline ~elastic:trace ~baseline_attrs
             ~elastic_attrs:attrs_digest ())
  in
  (* The engines suite runs the boxed oracle and the compact Csr kernel
     over the same partitioned graph and insists on bit-identical vertex
     values at every requested domain count. *)
  let engines_v =
    match engine_domains with
    | None -> None
    | Some domains_counts ->
        let pg = p.Pipeline.pg in
        Some
          (match algorithm with
          | Advisor.Pagerank -> Check.Engine_check.pagerank ~domains_counts ~cluster pg
          | Advisor.Connected_components ->
              Check.Engine_check.connected_components ~domains_counts ~cluster pg
          | Advisor.Triangle_count -> Check.Engine_check.triangle_count ~domains_counts ~cluster pg
          | Advisor.Shortest_paths ->
              Check.Engine_check.shortest_paths ~domains_counts ~landmarks ~cluster pg)
  in
  (* The races suite runs the instrumented mirrors of the compact
     kernels under the shadow write-ownership recorder at every
     requested domain count, then self-tests the detector against two
     seeded corruptions. *)
  let races_v =
    match race_domains with
    | None -> None
    | Some domains_counts ->
        let pg = p.Pipeline.pg in
        let kernel_v =
          match algorithm with
          | Advisor.Pagerank -> Check.Race_check.pagerank ~domains_counts pg
          | Advisor.Connected_components -> Check.Race_check.connected_components ~domains_counts pg
          | Advisor.Triangle_count -> Check.Race_check.triangle_count ~domains_counts pg
          | Advisor.Shortest_paths -> Check.Race_check.shortest_paths ~domains_counts ~landmarks pg
        in
        Some (kernel_v @ Check.Race_check.self_check pg)
  in
  (* The dynamic suite replays the mutation schedule from a fresh
     streaming cut of the same graph, proving the delta-identity, the
     cut laws on every refreshed assignment, and refresh-rebuild value
     equivalence. The heuristic follows the partitioner when it is a
     streaming one; the hash strategies have no live state to repair,
     so they fall back to Greedy. *)
  let dynamic_v =
    match dynamic with
    | None -> None
    | Some cfg ->
        let heuristic =
          match partitioner with
          | Partitioner.Stream s | Partitioner.Incremental s -> s
          | Partitioner.Hash _ | Partitioner.Custom _ -> Cutfit_partition.Streaming.Greedy
        in
        Some
          (Cutfit_dynamic.Dyn_check.validate ~cluster ~heuristic ~num_partitions cfg g)
  in
  let suites =
    [
      ("pgraph", List.length pgraph_v);
      ("metrics", List.length metrics_v);
      ("trace", List.length trace_v);
      ("telemetry", List.length telemetry_v);
      ("determinism", List.length determinism_v);
    ]
    @ (match faults_v with None -> [] | Some v -> [ ("faults", List.length v) ])
    @ (match elastic_v with None -> [] | Some v -> [ ("elastic", List.length v) ])
    @ (match engines_v with None -> [] | Some v -> [ ("engines", List.length v) ])
    @ (match races_v with None -> [] | Some v -> [ ("races", List.length v) ])
    @ match dynamic_v with None -> [] | Some v -> [ ("dynamic", List.length v) ]
  in
  {
    algorithm;
    partitioner;
    suites;
    violations =
      pgraph_v @ metrics_v @ trace_v @ telemetry_v @ determinism_v
      @ Option.value ~default:[] faults_v
      @ Option.value ~default:[] elastic_v
      @ Option.value ~default:[] engines_v
      @ Option.value ~default:[] races_v
      @ Option.value ~default:[] dynamic_v;
    trace_digest;
    events_digest;
  }

let pp_report ppf r =
  Format.fprintf ppf "sanitizer: %s with %s@\n"
    (Advisor.algorithm_name r.algorithm)
    (Partitioner.name r.partitioner);
  List.iter
    (fun (suite, n) ->
      Format.fprintf ppf "  %-12s %s@\n" suite
        (if n = 0 then "ok" else Printf.sprintf "%d violation(s)" n))
    r.suites;
  Format.fprintf ppf "  trace digest  %s@\n  events digest %s" r.trace_digest r.events_digest;
  if r.violations <> [] then Format.fprintf ppf "@\n%a" Check.Violation.pp_list r.violations
