module Graph = Cutfit_graph.Graph
module Partitioner = Cutfit_partition.Partitioner
module Cluster = Cutfit_bsp.Cluster
module Cost_model = Cutfit_bsp.Cost_model
module Pgraph = Cutfit_bsp.Pgraph
module Trace = Cutfit_bsp.Trace
module Check = Cutfit_check
module Obs = Cutfit_obs

type report = {
  algorithm : Advisor.algorithm;
  partitioner : Partitioner.t;
  suites : (string * int) list;
  violations : Check.Violation.t list;
  trace_digest : string;
  events_digest : string;
}

let ok r = r.violations = []

(* Wire payload per remote message, as the Pregel engine computes it:
   payload bytes plus the framing overhead. Triangle counting builds its
   stages outside the message engines, so no payload law applies. *)
let payload ~scale ~landmarks algorithm =
  let overhead = Cost_model.default.Cost_model.msg_wire_overhead_bytes in
  let of_bytes b =
    Some
      {
        Check.Trace_check.msg_wire_bytes = float_of_int (b + overhead);
        attr_wire_bytes = float_of_int (b + overhead);
        scale;
      }
  in
  match algorithm with
  | Advisor.Pagerank | Advisor.Connected_components -> of_bytes 8
  | Advisor.Shortest_paths -> of_bytes (96 + (64 * Array.length landmarks))
  | Advisor.Triangle_count -> None

let run_once ~cluster ~partitioner ~scale ~landmarks ~algorithm g =
  let sink, contents = Obs.Sink.ring ~capacity:65536 () in
  let telemetry = Obs.Telemetry.create ~sinks:[ sink ] () in
  let p = Pipeline.prepare ~cluster ~partitioner ~scale ~telemetry ~algorithm g in
  let trace =
    match algorithm with
    | Advisor.Pagerank -> snd (Pipeline.pagerank p)
    | Advisor.Connected_components -> snd (Pipeline.connected_components p)
    | Advisor.Triangle_count ->
        let _, _, t = Pipeline.triangles p in
        t
    | Advisor.Shortest_paths -> snd (Pipeline.shortest_paths ~landmarks p)
  in
  Obs.Telemetry.close telemetry;
  (p, trace, contents ())

let check_run ?(cluster = Cluster.config_i) ?partitioner ?(scale = 1.0) ~algorithm g =
  let num_partitions = cluster.Cluster.num_partitions in
  let partitioner =
    match partitioner with
    | Some p -> p
    | None -> Partitioner.Hash (Advisor.advise algorithm ~scale ~num_partitions g)
  in
  let landmarks =
    match algorithm with
    | Advisor.Shortest_paths -> Cutfit_algo.Sssp.pick_landmarks ~seed:11L ~count:3 g
    | _ -> [||]
  in
  let p, trace, events = run_once ~cluster ~partitioner ~scale ~landmarks ~algorithm g in
  let assignment = Pgraph.assignment p.Pipeline.pg in
  let pgraph_v = Check.Pgraph_check.validate p.Pipeline.pg in
  let metrics_v =
    Check.Metrics_check.validate p.Pipeline.graph ~num_partitions assignment (Pipeline.metrics p)
  in
  let trace_v =
    Check.Trace_check.validate ?payload:(payload ~scale ~landmarks algorithm) trace
  in
  let telemetry_v = Check.Trace_check.reconcile trace events in
  let trace_digest = Check.Determinism.trace_digest trace in
  let events_digest = Check.Determinism.events_digest events in
  let digest_of_run () =
    let _, trace, events = run_once ~cluster ~partitioner ~scale ~landmarks ~algorithm g in
    Check.Determinism.trace_digest trace ^ "/" ^ Check.Determinism.events_digest events
  in
  let determinism_v =
    Check.Determinism.run_twice
      ~label:
        (Printf.sprintf "%s/%s" (Advisor.algorithm_name algorithm) (Partitioner.name partitioner))
      digest_of_run
  in
  let suites =
    [
      ("pgraph", List.length pgraph_v);
      ("metrics", List.length metrics_v);
      ("trace", List.length trace_v);
      ("telemetry", List.length telemetry_v);
      ("determinism", List.length determinism_v);
    ]
  in
  {
    algorithm;
    partitioner;
    suites;
    violations = pgraph_v @ metrics_v @ trace_v @ telemetry_v @ determinism_v;
    trace_digest;
    events_digest;
  }

let pp_report ppf r =
  Format.fprintf ppf "sanitizer: %s with %s@\n"
    (Advisor.algorithm_name r.algorithm)
    (Partitioner.name r.partitioner);
  List.iter
    (fun (suite, n) ->
      Format.fprintf ppf "  %-12s %s@\n" suite
        (if n = 0 then "ok" else Printf.sprintf "%d violation(s)" n))
    r.suites;
  Format.fprintf ppf "  trace digest  %s@\n  events digest %s" r.trace_digest r.events_digest;
  if r.violations <> [] then Format.fprintf ppf "@\n%a" Check.Violation.pp_list r.violations
