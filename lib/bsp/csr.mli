(** Compact per-partition CSR edge representation: the real-execution
    counterpart of {!Pgraph}.

    {!Pgraph} is what the cost simulator iterates — edge indices behind
    closures, per-vertex [option] accumulators. This module freezes the
    same partitioned graph into flat [Bigarray] buffers that the
    [run_csr] kernels in [Cutfit_algo] scan at memory speed, plus the
    preallocated per-partition message buffers the kernels accumulate
    into:

    - [part_off]/[edge_src]/[edge_dst]: every partition's edges as a
      contiguous range of endpoint arrays, in exactly the order
      {!Pgraph.iter_partition_edges} visits them;
    - one {e accumulator slot} per (partition, vertex) pair where the
      vertex has at least one edge in the partition — GraphX's local
      combiner made concrete. [slot_off] gives each partition's
      contiguous slot range (so parallel scatters never share a cache
      line across partitions), [slot_vertex] maps a slot back to its
      vertex, and [src_slot]/[dst_slot] precompute each edge's endpoint
      slots so the hot loop never searches;
    - [red_off]/[red_slot]: the {e reduction table} — each vertex's
      slots in ascending partition order. Reducing a vertex by folding
      this list left-to-right reproduces the boxed engines' fixed
      cross-partition merge order bit-for-bit, at any domain count;
    - [facc]/[iacc]/[has]: the preallocated message buffers (one float,
      one int and one occupancy byte per slot). Kernels must leave
      [has] all-zero on return; runs on one [t] must not overlap.

    The graph is unweighted (SSSP counts hops), so no edge-weight array
    is materialized; adding one is a matter of another [float_buf] in
    partition edge order. Total footprint is O(E + S) words where S =
    {!Pgraph.total_replicas}. *)

type int_buf = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
type float_buf = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = private {
  pg : Pgraph.t;  (** the partitioned graph this was frozen from *)
  graph : Cutfit_graph.Graph.t;
  num_partitions : int;
  num_vertices : int;
  num_edges : int;
  num_slots : int;  (** = [Pgraph.total_replicas pg] *)
  part_off : int_buf;  (** [P+1]: partition [p]'s edges are [\[part_off p, part_off (p+1))] *)
  edge_src : int_buf;  (** [E], grouped by partition, partition edge order *)
  edge_dst : int_buf;  (** [E] *)
  src_slot : int_buf;  (** [E]: accumulator slot of (owning partition, src) *)
  dst_slot : int_buf;  (** [E]: accumulator slot of (owning partition, dst) *)
  slot_off : int_buf;  (** [P+1]: partition [p]'s slots are [\[slot_off p, slot_off (p+1))] *)
  slot_vertex : int_buf;  (** [S]: vertex of each slot, first-touch order within partition *)
  red_off : int_buf;  (** [n+1]: vertex [v]'s slots are [\[red_off v, red_off (v+1))] *)
  red_slot : int_buf;  (** [S]: each vertex's slots, ascending partition index *)
  out_deg : int_buf;  (** [n]: out-degree in the underlying graph *)
  facc : float_buf;  (** [S]: preallocated float message buffer *)
  iacc : int_buf;  (** [S]: preallocated int message buffer *)
  has : Bytes.t;  (** [S]: slot occupancy; all-zero between runs *)
}

val build : Pgraph.t -> t
(** [build pg] freezes the partitioned graph; O(E + S) time and a
    sequential, deterministic layout (it depends only on [pg]).
    @raise Invalid_argument if the frozen tables disagree with [pg]'s
    own accounting (cannot happen for a well-formed {!Pgraph.t}). *)

val shadow : ?vertex_space:bool -> workers:int -> t -> Ownership.t
(** [shadow ~workers c] creates an {!Ownership} recorder over [c]'s
    accumulator-slot space (or over the vertex space when
    [~vertex_space:true], for kernels whose reduction writes are
    per-vertex) — the instrumented CSR mode used by the race
    sanitizer. *)
