(* Epoch-based pool: workers sleep on a condition variable until the
   epoch counter advances, run the published task, and count down a
   pending counter that the caller waits on. Mutex acquire/release
   around each phase provides the happens-before edges between a
   phase's writes and the next phase's reads; the kernels' determinism
   then rests purely on item-owned writes (see the interface). *)

type t = {
  domains : int;
  mutex : Mutex.t;
  start : Condition.t;
  finished : Condition.t;
  mutable epoch : int;
  mutable task : int -> unit;
  mutable pending : int;
  mutable failure : exn option;
  mutable stop : bool;
  mutable workers : unit Domain.t array;
}

let domains t = t.domains

let worker_loop t w =
  let seen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock t.mutex;
    while t.epoch = !seen && not t.stop do
      Condition.wait t.start t.mutex
    done;
    if t.stop then begin
      Mutex.unlock t.mutex;
      running := false
    end
    else begin
      seen := t.epoch;
      let task = t.task in
      Mutex.unlock t.mutex;
      let fail = match task w with () -> None | exception e -> Some e in
      Mutex.lock t.mutex;
      (match (t.failure, fail) with
      | None, Some e -> t.failure <- Some e
      | _ -> ());
      t.pending <- t.pending - 1;
      if t.pending = 0 then Condition.signal t.finished;
      Mutex.unlock t.mutex
    end
  done

let create ~domains =
  if domains < 1 then invalid_arg "Par_exec.create: domains < 1";
  let t =
    {
      domains;
      mutex = Mutex.create ();
      start = Condition.create ();
      finished = Condition.create ();
      epoch = 0;
      task = ignore;
      pending = 0;
      failure = None;
      stop = false;
      workers = [||];
    }
  in
  t.workers <- Array.init (domains - 1) (fun i -> Domain.spawn (fun () -> worker_loop t (i + 1)));
  t

let run t f =
  if t.domains = 1 then f 0
  else begin
    Mutex.lock t.mutex;
    t.task <- f;
    t.failure <- None;
    t.pending <- t.domains - 1;
    t.epoch <- t.epoch + 1;
    Condition.broadcast t.start;
    Mutex.unlock t.mutex;
    let mine = match f 0 with () -> None | exception e -> Some e in
    Mutex.lock t.mutex;
    while t.pending > 0 do
      Condition.wait t.finished t.mutex
    done;
    let theirs = t.failure in
    t.task <- ignore;
    Mutex.unlock t.mutex;
    match (mine, theirs) with
    | Some e, _ | None, Some e -> raise e
    | None, None -> ()
  end

let iter t ~n f =
  if t.domains = 1 then
    for i = 0 to n - 1 do
      f 0 i
    done
  else begin
    let cursor = Atomic.make 0 in
    run t (fun w ->
        let continue_ = ref true in
        while !continue_ do
          let i = Atomic.fetch_and_add cursor 1 in
          if i >= n then continue_ := false else f w i
        done)
  end

(* Instrumentation hook for the dynamic race sanitizer: a phase whose
   shadow records are checked at the phase barrier. The Ownership
   barrier runs on the driver domain after [iter] has joined, so it
   reads the worker logs race-free. *)
let iter_shadowed t ~shadow ~n f =
  iter t ~n f;
  Ownership.barrier shadow

let shutdown t =
  if t.domains > 1 && not t.stop then begin
    Mutex.lock t.mutex;
    t.stop <- true;
    Condition.broadcast t.start;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end

let with_pool ~domains f =
  let t = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
