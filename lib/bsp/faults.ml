module Splitmix64 = Cutfit_prng.Splitmix64

exception Parse_error of string

type mode = Rollback | Lineage

type item =
  | Crash of { step : int; executor : int option }
  | Straggler of { from_step : int; to_step : int; executor : int option; factor : float }
  | Net of { from_step : int; to_step : int; factor : float }
  | Loss of { step : int; executor : int option; retries : int }
  | Rand of { rate : float }

type config = {
  items : item list;
  raw : string;
  seed : int;
  max_failures : int;
  mode : mode;
}

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let parse_int what s =
  match int_of_string_opt s with
  | Some n -> n
  | None -> fail "%s: expected an integer, got %S" what s

let parse_float what s =
  match float_of_string_opt s with
  | Some f -> f
  | None -> fail "%s: expected a number, got %S" what s

(* "K" or "K-L": the inclusive superstep window a fault covers. *)
let parse_window what s =
  match String.index_opt s '-' with
  | None ->
      let k = parse_int what s in
      (k, k)
  | Some i ->
      let k = parse_int what (String.sub s 0 i) in
      let l = parse_int what (String.sub s (i + 1) (String.length s - i - 1)) in
      if l < k then fail "%s: window %d-%d is backwards" what k l;
      (k, l)

type opts = {
  mutable o_exec : int option;
  mutable o_factor : float option;
  mutable o_retries : int option;
}

let parse_opts what allowed parts =
  let o = { o_exec = None; o_factor = None; o_retries = None } in
  List.iter
    (fun p ->
      if String.length p < 2 then fail "%s: malformed option %S" what p;
      let v = String.sub p 1 (String.length p - 1) in
      let c = p.[0] in
      if not (String.contains allowed c) then
        fail "%s: option %S not valid here (allowed: %s)" what p allowed;
      match c with
      | 'e' -> o.o_exec <- Some (parse_int what v)
      | 'x' -> o.o_factor <- Some (parse_float what v)
      | 'r' -> o.o_retries <- Some (parse_int what v)
      | _ -> fail "%s: unknown option %S" what p)
    parts;
  o

let parse_item s =
  match String.index_opt s '@' with
  | None -> fail "fault %S: expected KIND@ARGS" s
  | Some i -> (
      let kind = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      let head, opts =
        match String.split_on_char ':' rest with
        | [] -> fail "fault %S: missing arguments" s
        | h :: t -> (h, t)
      in
      match kind with
      | "crash" ->
          let step = parse_int s head in
          if step < 1 then fail "fault %S: crashes fire at supersteps >= 1" s;
          let o = parse_opts s "e" opts in
          Crash { step; executor = o.o_exec }
      | "straggler" ->
          let from_step, to_step = parse_window s head in
          if from_step < 1 then fail "fault %S: stragglers fire at supersteps >= 1" s;
          let o = parse_opts s "ex" opts in
          let factor = Option.value o.o_factor ~default:4.0 in
          if factor < 1.0 then fail "fault %S: straggler factor must be >= 1" s;
          Straggler { from_step; to_step; executor = o.o_exec; factor }
      | "net" ->
          let from_step, to_step = parse_window s head in
          if from_step < 1 then fail "fault %S: degraded windows start at superstep >= 1" s;
          let o = parse_opts s "x" opts in
          let factor = Option.value o.o_factor ~default:0.25 in
          if factor <= 0.0 || factor > 1.0 then
            fail "fault %S: net factor must be in (0, 1]" s;
          Net { from_step; to_step; factor }
      | "loss" ->
          let step = parse_int s head in
          if step < 1 then fail "fault %S: shuffle losses fire at supersteps >= 1" s;
          let o = parse_opts s "er" opts in
          let retries = Option.value o.o_retries ~default:1 in
          if retries < 1 then fail "fault %S: retries must be >= 1" s;
          Loss { step; executor = o.o_exec; retries }
      | "rand" ->
          let rate = parse_float s head in
          if rate < 0.0 || rate > 1.0 then fail "fault %S: rate must be in [0, 1]" s;
          Rand { rate }
      | k -> fail "fault %S: unknown kind %S" s k)

let parse_spec raw =
  let items =
    String.split_on_char ',' raw
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
    |> List.map parse_item
  in
  if items = [] then fail "fault spec %S: no faults given" raw;
  items

let config ?(seed = 42) ?(max_failures = 2) ?(mode = Rollback) raw =
  { items = parse_spec raw; raw; seed; max_failures; mode }

let mode_name = function Rollback -> "rollback" | Lineage -> "lineage"

let mode_of_name = function
  | "rollback" -> Rollback
  | "lineage" -> Lineage
  | s -> fail "unknown recovery mode %S (rollback|lineage)" s

let describe c =
  Printf.sprintf "faults %S seed=%d max-failures=%d recovery=%s" c.raw c.seed c.max_failures
    (mode_name c.mode)

(* Stateless per-(salt, step) draw: plan order never matters, so the
   realized schedule depends only on (seed, spec), not on how the engine
   interleaves calls. *)
let draw ~seed ~salt ~k =
  Splitmix64.mix64
    (Int64.logxor
       (Int64.mul (Int64.of_int seed) 0x9E3779B97F4A7C15L)
       (Int64.add (Int64.mul (Int64.of_int salt) 0xBF58476D1CE4E5B9L) (Int64.of_int k)))

let unit_float h = Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.0
let draw_mod h m = Int64.to_int (Int64.rem (Int64.shift_right_logical h 1) (Int64.of_int m))

type resolved =
  | R_crash of { step : int; executor : int }
  | R_straggler of { from_step : int; to_step : int; executor : int; factor : float }
  | R_net of { from_step : int; to_step : int; factor : float }
  | R_loss of { step : int; executor : int; retries : int }
  | R_rand of { rate : float }

type session = {
  sconfig : config;
  executors : int;
  resolved : resolved list;
  mutable crashes : int;
}

let session ~executors c =
  if executors <= 0 then invalid_arg "Faults.session: executors <= 0";
  let resolve idx = function
    | Some e -> ((e mod executors) + executors) mod executors
    | None -> draw_mod (draw ~seed:c.seed ~salt:idx ~k:0) executors
  in
  let resolved =
    List.mapi
      (fun idx -> function
        | Crash { step; executor } -> R_crash { step; executor = resolve idx executor }
        | Straggler { from_step; to_step; executor; factor } ->
            R_straggler { from_step; to_step; executor = resolve idx executor; factor }
        | Net { from_step; to_step; factor } -> R_net { from_step; to_step; factor }
        | Loss { step; executor; retries } ->
            R_loss { step; executor = resolve idx executor; retries }
        | Rand { rate } -> R_rand { rate })
      c.items
  in
  { sconfig = c; executors; resolved; crashes = 0 }

let session_config s = s.sconfig
let failures s = s.crashes

let note_crash s =
  s.crashes <- s.crashes + 1;
  if s.crashes > s.sconfig.max_failures then `Abort else `Recover

type announcement = { fault_kind : string; fault_executor : int; detail : string }

type plan = {
  compute_factor : int -> float;
  network_factor : float;
  loss : (int * int) option;
  crash : int option;
  announce : announcement list;
}

let neutral =
  {
    compute_factor = (fun _ -> 1.0);
    network_factor = 1.0;
    loss = None;
    crash = None;
    announce = [];
  }

let plan s ~step =
  if step < 1 then neutral
  else begin
    let slow = Array.make s.executors 1.0 in
    let netf = ref 1.0 in
    let loss = ref None and crash = ref None in
    let ann = ref [] in
    let add_ann fault_kind fault_executor detail =
      ann := { fault_kind; fault_executor; detail } :: !ann
    in
    List.iteri
      (fun idx -> function
        | R_crash c when c.step = step ->
            if !crash = None then begin
              crash := Some c.executor;
              add_ann "crash" c.executor "executor lost at superstep barrier"
            end
        | R_straggler g when g.from_step <= step && step <= g.to_step ->
            slow.(g.executor) <- slow.(g.executor) *. g.factor;
            if step = g.from_step then
              add_ann "straggler" g.executor
                (Printf.sprintf "slowdown x%g through step %d" g.factor g.to_step)
        | R_net n when n.from_step <= step && step <= n.to_step ->
            netf := !netf *. n.factor;
            if step = n.from_step then
              add_ann "net" (-1)
                (Printf.sprintf "bandwidth x%g through step %d" n.factor n.to_step)
        | R_loss l when l.step = step ->
            if !loss = None then begin
              loss := Some (l.executor, l.retries);
              add_ann "loss" l.executor
                (Printf.sprintf "shuffle lost, %d retransmission(s)" l.retries)
            end
        | R_rand { rate } ->
            let h = draw ~seed:s.sconfig.seed ~salt:(1000 + idx) ~k:step in
            if unit_float h < rate then begin
              let h2 = draw ~seed:s.sconfig.seed ~salt:(2000 + idx) ~k:step in
              let e = draw_mod h2 s.executors in
              match Int64.to_int (Int64.rem (Int64.shift_right_logical h 33) 4L) with
              | 0 ->
                  if !crash = None then begin
                    crash := Some e;
                    add_ann "crash" e "random executor loss"
                  end
              | 1 ->
                  slow.(e) <- slow.(e) *. 4.0;
                  add_ann "straggler" e "random slowdown x4"
              | 2 ->
                  netf := !netf *. 0.25;
                  add_ann "net" (-1) "random bandwidth x0.25"
              | _ ->
                  if !loss = None then begin
                    loss := Some (e, 1);
                    add_ann "loss" e "random shuffle loss, 1 retransmission"
                  end
            end
        | R_crash _ | R_straggler _ | R_net _ | R_loss _ -> ())
      s.resolved;
    {
      compute_factor = (fun e -> slow.(e));
      network_factor = !netf;
      loss = !loss;
      crash = !crash;
      announce = List.rev !ann;
    }
  end

(* --- Recovery cost accounting ------------------------------------- *)

let rollback_recovery ~cluster ~at_step ~executor ~checkpointed ~graph_bytes ~load_s
    ~(replayed : Trace.superstep list) =
  (* All executors restart from the last checkpoint image (or, with no
     checkpoint yet, re-read the dataset), then the recorded supersteps
     since that point are replayed at their recorded cost. *)
  let readback =
    if checkpointed then
      graph_bytes /. (float_of_int cluster.Cluster.executors *. Cluster.storage_bytes_per_s cluster)
    else load_s
  in
  let replay_s =
    List.fold_left (fun acc (s : Trace.superstep) -> acc +. s.time_s) 0.0 replayed
  in
  let wire =
    List.fold_left (fun acc (s : Trace.superstep) -> acc +. s.wire_bytes) 0.0 replayed
  in
  {
    Trace.at_step;
    kind = "rollback";
    executor;
    replayed_steps = List.length replayed;
    lost_edges = 0;
    lost_replicas = 0;
    recovery_wire_bytes = wire;
    recovery_s = readback +. replay_s;
  }

let lineage_recovery ~cost ~cluster ~scale ~at_step ~executor ~lost_edges ~lost_vertices
    ~lost_replicas ~attr_wire_bytes =
  (* The replacement executor rebuilds exactly the lost edge partitions
     from lineage: re-shuffle their edges in, re-materialize the local
     structures, then re-broadcast every vertex view the executor hosted.
     Cost scales with the replicas the cut placed there. *)
  let cores = float_of_int cluster.Cluster.cores_per_executor in
  let rebuild =
    scale
    *. ((float_of_int lost_edges *. cost.Cost_model.build_edge_s)
       +. (float_of_int lost_vertices *. cost.Cost_model.build_vertex_s))
    /. cores
  in
  let bandwidth = Cluster.network_bytes_per_s cluster in
  let reshuffle_bytes =
    scale *. float_of_int lost_edges *. float_of_int cost.Cost_model.shuffle_edge_bytes
  in
  let bcast_bytes = scale *. float_of_int lost_replicas *. attr_wire_bytes in
  let wire = reshuffle_bytes +. bcast_bytes in
  {
    Trace.at_step;
    kind = "lineage";
    executor;
    replayed_steps = 0;
    lost_edges;
    lost_replicas;
    recovery_wire_bytes = wire;
    recovery_s = rebuild +. (wire /. bandwidth) +. cost.Cost_model.superstep_barrier_s;
  }

let preempt_recovery ~cost ~cluster ~scale ~at_step ~executor ~lost_edges ~lost_vertices
    ~lost_replicas ~attr_wire_bytes ~retries =
  (* Spot preemption: the instance vanishes at the barrier and a
     replacement is reacquired after [retries] capped backoff attempts,
     then rebuilt exactly like a lineage recovery — the replacement
     re-shuffles the lost edge partitions in and re-broadcasts the
     hosted vertex views. Membership is unchanged; only time and
     recovery traffic are charged. *)
  let cores = float_of_int cluster.Cluster.cores_per_executor in
  let rebuild =
    scale
    *. ((float_of_int lost_edges *. cost.Cost_model.build_edge_s)
       +. (float_of_int lost_vertices *. cost.Cost_model.build_vertex_s))
    /. cores
  in
  let bandwidth = Cluster.network_bytes_per_s cluster in
  let reshuffle_bytes =
    scale *. float_of_int lost_edges *. float_of_int cost.Cost_model.shuffle_edge_bytes
  in
  let bcast_bytes = scale *. float_of_int lost_replicas *. attr_wire_bytes in
  let wire = reshuffle_bytes +. bcast_bytes in
  {
    Trace.at_step;
    kind = "preempt";
    executor;
    replayed_steps = 0;
    lost_edges;
    lost_replicas;
    recovery_wire_bytes = wire;
    recovery_s =
      Cost_model.retry_backoff cost ~retries
      +. rebuild
      +. (wire /. bandwidth)
      +. cost.Cost_model.superstep_barrier_s;
  }

let retry_recovery ~cost ~cluster ~at_step ~executor ~egress_bytes ~retries =
  let bandwidth = Cluster.network_bytes_per_s cluster in
  let retrans = float_of_int retries *. egress_bytes in
  {
    Trace.at_step;
    kind = "shuffle-retry";
    executor;
    replayed_steps = 0;
    lost_edges = 0;
    lost_replicas = 0;
    recovery_wire_bytes = retrans;
    recovery_s = (retrans /. bandwidth) +. Cost_model.retry_backoff cost ~retries;
  }
