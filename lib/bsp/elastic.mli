(** Elastic cluster membership and heterogeneous host capabilities.

    Scale events are parsed from a compact spec mirroring the fault DSL:

    - [join@T+N] — N executors join before superstep [T] (default +1);
    - [leave@T-N] — N executors drain and leave before superstep [T]
      (default -1; the cluster never shrinks below one executor);
    - [preempt@T:rN] — a spot instance is preempted at superstep [T]'s
      barrier and reacquired after N backoff retries (default r1). The
      preemption flows through the {!Faults} recovery machinery as an
      involuntary crash; membership is unchanged.

    Every membership change triggers a priced re-shuffle: partitions
    whose round-robin placement moves are re-shipped and their hosted
    vertex views re-broadcast, itemized as [reshuffle] trace records
    outside the superstep wire-payload law (the {!Speculation}
    carve-out). Scale events perturb time and locality only — converged
    vertex values stay bit-identical to a static-cluster run, which
    [Elastic_check] enforces.

    Everything is deterministic: preemption victims and heterogeneity
    multipliers come from stateless splitmix64 draws keyed on
    (seed, salt, item), never from mutable generator state. *)

exception Parse_error of string

type item =
  | Join of { step : int; count : int }
  | Leave of { step : int; count : int }
  | Preempt of { step : int; retries : int }

type config = { items : item list; raw : string; seed : int }

val config : ?seed:int -> string -> config
(** Parse a scale-event spec ("leave@5-1,join@9+2,preempt@12:r1").
    @raise Parse_error on malformed input. *)

(* lint: unused-export -- parser half exercised by tests and the CLI *)
val parse_spec : string -> item list

val events_at : config -> step:int -> item list
(** Events scheduled to fire before superstep [step], in spec order. *)

val total_joins : config -> int
(** Upper bound on executors beyond the initial membership; engines size
    per-executor state to [initial + total_joins]. *)

val victim : config -> step:int -> alive:int -> int
(** Stateless draw of the preempted executor among [alive] live ones. *)

val describe : config -> string

(** {1 Heterogeneous hosts} *)

type hetero = { speeds : float array; bandwidths : float array }
(** Per-executor capability multipliers: busy time divides by [speeds],
    egress bandwidth multiplies by [bandwidths]. *)

(* lint: unused-export -- neutral element kept for callers and tests *)
val uniform : executors:int -> hetero
(** All multipliers 1.0 — bit-identical to the homogeneous model. *)

val draw_hetero : seed:int -> executors:int -> hetero
(** Stateless multipliers in [0.6, 1.4] keyed on (seed, executor). *)

val hetero_of_spec : executors:int -> string -> hetero
(** Explicit multipliers, one [SPEED] or [SPEED/BANDWIDTH] entry per
    executor, cycled when fewer entries than executors are given.
    @raise Parse_error on malformed input. *)

val speed : hetero -> int -> float
val bandwidth : hetero -> int -> float
(** Multiplier lookups; executors beyond the drawn width (late joiners
    past the sized arrays) run at 1.0. *)

val describe_hetero : hetero -> string

(** {1 Engine-facing runtime}

    Mutable membership state both BSP engines consult. With no config
    and no hetero the runtime is inert: [exec_of] is the static
    round-robin placement and every multiplier is 1.0, so static runs
    stay bit-identical. *)

type runtime

val runtime : ?config:config -> ?hetero:hetero -> executors:int -> unit -> runtime

val live : runtime -> int
(** Current executor count (never below 1). *)

val max_executors : runtime -> int
(** [initial + total_joins] — the width to size per-executor state to. *)

val exec_of : runtime -> int -> int
(** Round-robin placement over the {e live} membership. *)

val speed_of : runtime -> int -> float
val bandwidth_of : runtime -> int -> float

val step_events :
  runtime ->
  step:int ->
  num_partitions:int ->
  partition_bytes:(int -> float) ->
  partition_vertices:(int -> int) ->
  attr_wire_bytes:float ->
  scale:float ->
  bandwidth:float ->
  barrier_s:float ->
  on_reshuffle:(Trace.reshuffle -> item -> unit) ->
  on_preempt:(executor:int -> retries:int -> unit) ->
  unit
(** Apply the events scheduled before compute superstep [step]: price
    and record membership changes ([on_reshuffle] fires after the
    membership has moved, so the engine can refresh placement-derived
    state and emit events), and hand preemptions to [on_preempt].
    [partition_bytes] must return the {e scaled} resident bytes of a
    partition; [partition_vertices] its hosted vertex views. *)

val reshuffles : runtime -> Trace.reshuffle list
(** Chronological itemized membership changes so far. *)

val reshuffle_s : runtime -> float
