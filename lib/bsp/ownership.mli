(** Shadow write-ownership recorder backing the dynamic race sanitizer.

    The CSR kernels follow an item-owned-writes discipline: within one
    parallel phase (an "epoch"), every accumulator slot is written by at
    most one item, and reduction reads of a slot only happen in a later
    epoch than the write. This module records [(epoch, slot, item)]
    shadow events from instrumented kernels and checks the discipline at
    each barrier. Recording appends to per-worker logs (worker-owned, so
    the recorder itself cannot race); checking runs on the driver domain
    and is deterministic for any domain count because records are merged
    in (item, per-item sequence) order. *)

type t

(** One discipline violation found at a barrier. [rule] is one of
    ["slot-conflict"] (two items wrote the slot in the same epoch),
    ["premature-read"] (a slot was read in the epoch that wrote it),
    ["consume-conflict"] (two items consumed the same slot in one epoch)
    or ["slot-out-of-range"]. *)
type conflict = {
  epoch : int;
  slot : int;
  rule : string;
  first_item : int;
  second_item : int;
}

val create : slots:int -> workers:int -> t
(** [create ~slots ~workers] makes a recorder for a slot space of size
    [slots] with one private log per worker. The first epoch is 1. *)

val write : t -> worker:int -> item:int -> int -> unit
(** [write t ~worker ~item slot] records that [item], running on
    [worker], wrote [slot] in the current epoch. *)

val read : t -> worker:int -> item:int -> int -> unit
(** [read t ~worker ~item slot] records a reduction-side consume. *)

val barrier : t -> unit
(** Check the epoch's records against the single-writer / read-after-
    barrier discipline, accumulate conflicts, clear the logs and advance
    the epoch. Call from the driver domain only, after the parallel
    phase has joined. *)

val violations : t -> conflict list
(** All conflicts found so far, oldest first. Deterministic across runs
    and domain counts. *)

val epoch : t -> int
val writes_seen : t -> int
val reads_seen : t -> int

val pp_conflict : Format.formatter -> conflict -> unit
