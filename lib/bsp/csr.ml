module Graph = Cutfit_graph.Graph

type int_buf = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
type float_buf = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  pg : Pgraph.t;
  graph : Graph.t;
  num_partitions : int;
  num_vertices : int;
  num_edges : int;
  num_slots : int;
  part_off : int_buf;
  edge_src : int_buf;
  edge_dst : int_buf;
  src_slot : int_buf;
  dst_slot : int_buf;
  slot_off : int_buf;
  slot_vertex : int_buf;
  red_off : int_buf;
  red_slot : int_buf;
  out_deg : int_buf;
  facc : float_buf;
  iacc : int_buf;
  has : Bytes.t;
}

let int_buf len : int_buf = Bigarray.Array1.create Bigarray.int Bigarray.c_layout len
let float_buf len : float_buf = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout len

let build pg =
  let g = Pgraph.graph pg in
  let n = Graph.num_vertices g in
  let num_partitions = Pgraph.num_partitions pg in
  let m = Graph.num_edges g in
  let s = Pgraph.total_replicas pg in
  let part_off = int_buf (num_partitions + 1) in
  let slot_off = int_buf (num_partitions + 1) in
  part_off.{0} <- 0;
  slot_off.{0} <- 0;
  for p = 0 to num_partitions - 1 do
    part_off.{p + 1} <- part_off.{p} + Pgraph.num_edges_of_partition pg p;
    slot_off.{p + 1} <- slot_off.{p} + Pgraph.local_vertices pg p
  done;
  if part_off.{num_partitions} <> m then invalid_arg "Csr.build: edge total mismatch";
  if slot_off.{num_partitions} <> s then invalid_arg "Csr.build: slot total mismatch";
  let edge_src = int_buf m and edge_dst = int_buf m in
  let src_slot = int_buf m and dst_slot = int_buf m in
  let slot_vertex = int_buf s in
  (* One pass over the edges in partition order: assign each distinct
     (partition, vertex) pair the next slot in the partition's range
     (first-touch order, the same order Pgraph's own stamping pass
     uses) and resolve both endpoint slots of every edge. *)
  let mark = Array.make n (-1) in
  let vertex_slot = Array.make n 0 in
  let red_count = Array.make n 0 in
  let ecur = ref 0 in
  for p = 0 to num_partitions - 1 do
    let scur = ref slot_off.{p} in
    Pgraph.iter_partition_edges pg p (fun ~edge:_ ~src ~dst ->
        let slot_of v =
          if mark.(v) <> p then begin
            mark.(v) <- p;
            vertex_slot.(v) <- !scur;
            slot_vertex.{!scur} <- v;
            red_count.(v) <- red_count.(v) + 1;
            incr scur
          end;
          vertex_slot.(v)
        in
        let ss = slot_of src in
        let ds = slot_of dst in
        edge_src.{!ecur} <- src;
        edge_dst.{!ecur} <- dst;
        src_slot.{!ecur} <- ss;
        dst_slot.{!ecur} <- ds;
        incr ecur);
    if !scur <> slot_off.{p + 1} then invalid_arg "Csr.build: local vertex table mismatch"
  done;
  (* Reduction table: slots are numbered ascending by partition, so
     scanning them in order appends each vertex's slots in ascending
     partition order — the fixed reduction order. *)
  let red_off = int_buf (n + 1) in
  red_off.{0} <- 0;
  for v = 0 to n - 1 do
    red_off.{v + 1} <- red_off.{v} + red_count.(v)
  done;
  if red_off.{n} <> s then invalid_arg "Csr.build: reduction table mismatch";
  let red_slot = int_buf s in
  let rcur = Array.init n (fun v -> red_off.{v}) in
  for slot = 0 to s - 1 do
    let v = slot_vertex.{slot} in
    red_slot.{rcur.(v)} <- slot;
    rcur.(v) <- rcur.(v) + 1
  done;
  let out_deg = int_buf n in
  for v = 0 to n - 1 do
    out_deg.{v} <- Graph.out_degree g v
  done;
  let facc = float_buf s and iacc = int_buf s in
  Bigarray.Array1.fill facc 0.0;
  Bigarray.Array1.fill iacc 0;
  {
    pg;
    graph = g;
    num_partitions;
    num_vertices = n;
    num_edges = m;
    num_slots = s;
    part_off;
    edge_src;
    edge_dst;
    src_slot;
    dst_slot;
    slot_off;
    slot_vertex;
    red_off;
    red_slot;
    out_deg;
    facc;
    iacc;
    has = Bytes.make s '\000';
  }

(* Instrumentation hook: a shadow recorder sized to this layout's slot
   space (or to the vertex space, for kernels like triangle counting
   whose reduction writes live in vertex coordinates). *)
let shadow ?(vertex_space = false) ~workers c =
  let slots = if vertex_space then c.num_vertices else c.num_slots in
  Ownership.create ~slots ~workers
