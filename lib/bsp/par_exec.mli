(** Multicore superstep driver: a fixed pool of OCaml 5 domains with a
    barrier between phases.

    The pool executes one {e phase} at a time (a scatter over partitions
    or a reduce over vertex chunks); {!run} and {!iter} return only when
    every worker has finished, so a phase's writes happen-before the
    next phase's reads. Work items are handed out dynamically through an
    atomic cursor — scheduling is therefore nondeterministic, and
    determinism of the {e results} comes from the data layout instead:
    every work item writes only item-owned state (a partition owns its
    accumulator-slot range, a vertex chunk owns its vertices), so the
    final memory state is independent of which domain ran what when.
    See docs/PERFORMANCE.md for the full argument.

    With [domains = 1] no domain is ever spawned and all work runs
    inline on the caller — the default everywhere, keeping single-core
    behaviour byte-identical to a world without this module. *)

type t
(** A worker pool: the calling domain plus [domains - 1] spawned
    domains. Not thread-safe; drive it from the creating domain only. *)

(* lint: unused-export -- pool construction API; with_pool is the common path *)
val create : domains:int -> t
(** [create ~domains] spawns [domains - 1] worker domains (none when
    [domains = 1]).
    @raise Invalid_argument when [domains < 1]. *)

(* lint: unused-export -- introspection accessor paired with create *)
val domains : t -> int

val run : t -> (int -> unit) -> unit
(** [run t f] executes [f w] on every worker [w] in [\[0, domains)]
    concurrently ([w = 0] is the calling domain) and waits for all of
    them — a barrier. An exception in any worker is re-raised here
    after the barrier. *)

val iter : t -> n:int -> (int -> int -> unit) -> unit
(** [iter t ~n f] calls [f w i] exactly once for every [i] in
    [\[0, n)], where [w] is the worker that claimed item [i]. Items are
    claimed dynamically (atomic cursor) for load balance; [f] must
    confine its writes to state owned by item [i] (or by worker [w]) so
    the outcome is schedule-independent. Barrier semantics as {!run}. *)

val iter_shadowed : t -> shadow:Ownership.t -> n:int -> (int -> int -> unit) -> unit
(** [iter_shadowed t ~shadow ~n f] is {!iter} followed by
    [Ownership.barrier shadow]: the instrumented-kernel phase primitive.
    [f] records its accumulator writes and reduction reads into [shadow]
    (via {!Ownership.write}/{!Ownership.read}); the barrier then checks
    the epoch's records against the item-owned-writes discipline. *)

(* lint: unused-export -- teardown half of the create/shutdown pair *)
val shutdown : t -> unit
(** Terminate and join the worker domains. The pool must not be used
    afterwards. Idempotent. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [with_pool ~domains f] brackets [f] with {!create}/{!shutdown}
    (shutdown also on exception). *)
