module Splitmix64 = Cutfit_prng.Splitmix64

type config = { threshold : float; seed : int }

let config ?(threshold = 2.0) ?(seed = 1) () =
  if threshold < 1.0 then invalid_arg "Speculation.config: threshold must be >= 1";
  { threshold; seed }

(* Median executor busy time, nearest-rank (same convention as
   Stats.percentiles): the trigger baseline Spark's speculation uses. *)
let median busy = (Cutfit_stats.Summary.percentiles busy).Cutfit_stats.Summary.p50

(* Host ties are broken by a stateless splitmix64 draw keyed (seed,
   step) — never wall-clock or [Random] — so replays and the run-twice
   digest harness see the same clone placement. *)
let tie_break ~seed ~step n =
  let h =
    Splitmix64.mix64
      (Int64.logxor
         (Int64.mul (Int64.of_int seed) 0x9E3779B97F4A7C15L)
         (Int64.add
            (Int64.mul 0xBF58476D1CE4E5B9L (Int64.of_int (step + 1)))
            0x94D049BB133111EBL))
  in
  Int64.to_int (Int64.rem (Int64.shift_right_logical h 1) (Int64.of_int n))

let pick_host ~seed ~step ~straggler busy =
  let best = ref infinity in
  Array.iteri (fun e b -> if e <> straggler && b < !best then best := b) busy;
  let ties = ref [] in
  for e = Array.length busy - 1 downto 0 do
    if e <> straggler && busy.(e) = !best then ties := e :: !ties
  done;
  match !ties with
  | [ e ] -> e
  | ties -> List.nth ties (tie_break ~seed ~step (List.length ties))

let evaluate cfg ~cost ~bandwidth ~step ~busy ~clean_busy ~ingress ~partitions =
  let executors = Array.length busy in
  if executors < 2 then (busy, None)
  else begin
    (* Straggler = the slowest executor (lowest index on a tie, which is
       deterministic because Array.iteri scans in order). *)
    let straggler = ref 0 in
    Array.iteri (fun e b -> if b > busy.(!straggler) then straggler := e) busy;
    let s = !straggler in
    let med = median busy in
    if med <= 0.0 || busy.(s) <= cfg.threshold *. med then (busy, None)
    else begin
      let host = pick_host ~seed:cfg.seed ~step ~straggler:s busy in
      (* The clone re-runs the straggler's tasks at the host's clean
         speed: same jittered work, none of the fault stretch. Before it
         can start, the driver round-trips a launch RPC, re-dispatches
         the straggler's tasks, and the host re-fetches the straggler's
         shuffle ingress — traffic charged outside the wire-payload law,
         exactly like recovery_wire_bytes. *)
      let launch_s =
        cost.Cost_model.speculation_rpc_s
        +. (float_of_int partitions.(s) *. cost.Cost_model.task_dispatch_s)
      in
      let reshuffle_bytes = ingress.(s) in
      let reshuffle_s = reshuffle_bytes /. bandwidth in
      let clone_compute = clean_busy.(s) in
      let clone_busy = busy.(host) +. launch_s +. reshuffle_s +. clone_compute in
      let won = clone_busy < busy.(s) in
      let busy' = Array.copy busy in
      if won then begin
        (* The earlier finisher wins: the original attempt is killed the
           moment the clone's results land, so both executors free up at
           the clone's finish time. *)
        busy'.(s) <- clone_busy;
        busy'.(host) <- clone_busy
      end
      else
        (* The original finishes first; the clone is killed then, having
           occupied the host until that point. The step's makespan is
           unchanged — speculation only wasted resources. *)
        busy'.(host) <- busy.(s);
      let record =
        {
          Trace.at_step = step;
          executor = s;
          host;
          cloned_partitions = partitions.(s);
          original_busy_s = busy.(s);
          clone_busy_s = clone_busy;
          speculative_compute_s = clone_compute;
          speculative_wire_bytes = reshuffle_bytes;
          won;
          saved_s = (if won then busy.(s) -. clone_busy else 0.0);
        }
      in
      (busy', Some record)
    end
  end
