module Splitmix64 = Cutfit_prng.Splitmix64

exception Parse_error of string

type item =
  | Join of { step : int; count : int }
  | Leave of { step : int; count : int }
  | Preempt of { step : int; retries : int }

type config = { items : item list; raw : string; seed : int }

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let parse_int what s =
  match int_of_string_opt s with
  | Some n -> n
  | None -> fail "%s: expected an integer, got %S" what s

let parse_float what s =
  match float_of_string_opt s with
  | Some f -> f
  | None -> fail "%s: expected a number, got %S" what s

(* "T", "T+N" or "T-N": the superstep an event fires at, plus the signed
   executor delta. The sign is part of the grammar, so "join@3-1" is a
   parse error rather than a silently shrinking join. *)
let parse_at what ~sign s =
  match String.index_opt s sign with
  | None -> (parse_int what s, 1)
  | Some i ->
      let step = parse_int what (String.sub s 0 i) in
      let count = parse_int what (String.sub s (i + 1) (String.length s - i - 1)) in
      if count < 1 then fail "%s: executor delta must be >= 1" what;
      (step, count)

let parse_item s =
  match String.index_opt s '@' with
  | None -> fail "scale event %S: expected KIND@ARGS" s
  | Some i -> (
      let kind = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match kind with
      | "join" ->
          let step, count = parse_at s ~sign:'+' rest in
          if step < 1 then fail "scale event %S: joins fire at supersteps >= 1" s;
          Join { step; count }
      | "leave" ->
          let step, count = parse_at s ~sign:'-' rest in
          if step < 1 then fail "scale event %S: leaves fire at supersteps >= 1" s;
          Leave { step; count }
      | "preempt" -> (
          let head, opts =
            match String.split_on_char ':' rest with
            | h :: t -> (h, t)
            | [] -> fail "scale event %S: missing arguments" s
          in
          let step = parse_int s head in
          if step < 1 then fail "scale event %S: preemptions fire at supersteps >= 1" s;
          match opts with
          | [] -> Preempt { step; retries = 1 }
          | [ o ] when String.length o >= 2 && o.[0] = 'r' ->
              let retries = parse_int s (String.sub o 1 (String.length o - 1)) in
              if retries < 1 then fail "scale event %S: retries must be >= 1" s;
              Preempt { step; retries }
          | _ -> fail "scale event %S: only a :rN option is valid here" s)
      | k -> fail "scale event %S: unknown kind %S" s k)

let parse_spec raw =
  let items =
    String.split_on_char ',' raw
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
    |> List.map parse_item
  in
  if items = [] then fail "scale-event spec %S: no events given" raw;
  items

let config ?(seed = 42) raw = { items = parse_spec raw; raw; seed }

let item_step = function Join { step; _ } | Leave { step; _ } | Preempt { step; _ } -> step

let events_at c ~step = List.filter (fun i -> item_step i = step) c.items

let total_joins c =
  List.fold_left (fun a -> function Join { count; _ } -> a + count | _ -> a) 0 c.items

let describe c =
  let item = function
    | Join { step; count } -> Printf.sprintf "join@%d+%d" step count
    | Leave { step; count } -> Printf.sprintf "leave@%d-%d" step count
    | Preempt { step; retries } -> Printf.sprintf "preempt@%d:r%d" step retries
  in
  Printf.sprintf "scale-events [%s] seed=%d" (String.concat "," (List.map item c.items)) c.seed

(* Stateless per-(salt, item) draw, the same keying discipline as
   Faults: the realized schedule depends only on (seed, spec), never on
   the order the engine asks questions in. *)
let draw ~seed ~salt ~k =
  Splitmix64.mix64
    (Int64.logxor
       (Int64.mul (Int64.of_int seed) 0x9E3779B97F4A7C15L)
       (Int64.add (Int64.mul (Int64.of_int salt) 0xBF58476D1CE4E5B9L) (Int64.of_int k)))

let unit_float h = Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.0
let draw_mod h m = Int64.to_int (Int64.rem (Int64.shift_right_logical h 1) (Int64.of_int m))

let victim c ~step ~alive = draw_mod (draw ~seed:c.seed ~salt:(7000 + step) ~k:0) alive

(* --- Heterogeneous hosts ------------------------------------------- *)

type hetero = { speeds : float array; bandwidths : float array }

let uniform ~executors =
  { speeds = Array.make executors 1.0; bandwidths = Array.make executors 1.0 }

(* Per-executor capability multipliers in [0.6, 1.4]: wide enough to
   shift placement decisions, narrow enough that a slow host is a tax,
   not a straggler fault (those belong to Faults). *)
let hetero_spread = 0.8
let hetero_floor = 0.6

let draw_hetero ~seed ~executors =
  if executors <= 0 then invalid_arg "Elastic.draw_hetero: executors <= 0";
  let multiplier salt e =
    hetero_floor +. (hetero_spread *. unit_float (draw ~seed ~salt ~k:e))
  in
  {
    speeds = Array.init executors (multiplier 8001);
    bandwidths = Array.init executors (multiplier 8002);
  }

let hetero_of_spec ~executors raw =
  if executors <= 0 then invalid_arg "Elastic.hetero_of_spec: executors <= 0";
  let entries =
    String.split_on_char ',' raw
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
    |> List.map (fun s ->
           let speed, bw =
             match String.index_opt s '/' with
             | None ->
                 let v = parse_float "hetero entry" s in
                 (v, v)
             | Some i ->
                 ( parse_float "hetero speed" (String.sub s 0 i),
                   parse_float "hetero bandwidth"
                     (String.sub s (i + 1) (String.length s - i - 1)) )
           in
           if speed <= 0.0 || bw <= 0.0 then
             fail "hetero spec %S: multipliers must be > 0" raw;
           (speed, bw))
    |> Array.of_list
  in
  if Array.length entries = 0 then fail "hetero spec %S: no entries given" raw;
  (* Entries cycle, so "0.5/1,2/1" alternates slow and fast hosts at any
     cluster width. *)
  let n = Array.length entries in
  {
    speeds = Array.init executors (fun e -> fst entries.(e mod n));
    bandwidths = Array.init executors (fun e -> snd entries.(e mod n));
  }

let speed h e = if e < Array.length h.speeds then h.speeds.(e) else 1.0
let bandwidth h e = if e < Array.length h.bandwidths then h.bandwidths.(e) else 1.0

(* --- Engine-facing runtime ----------------------------------------- *)

type runtime = {
  rconfig : config option;
  rhetero : hetero option;
  initial : int;
  max_execs : int;
  mutable live : int;
  mutable resh : Trace.reshuffle list; (* reversed *)
  mutable resh_s : float;
}

let runtime ?config ?hetero ~executors () =
  if executors <= 0 then invalid_arg "Elastic.runtime: executors <= 0";
  let max_execs =
    executors + (match config with None -> 0 | Some c -> total_joins c)
  in
  {
    rconfig = config;
    rhetero = hetero;
    initial = executors;
    max_execs;
    live = executors;
    resh = [];
    resh_s = 0.0;
  }

let live rt = rt.live
let max_executors rt = rt.max_execs
let exec_of rt p = p mod rt.live
let speed_of rt e = match rt.rhetero with None -> 1.0 | Some h -> speed h e
let bandwidth_of rt e = match rt.rhetero with None -> 1.0 | Some h -> bandwidth h e
let reshuffles rt = List.rev rt.resh
let reshuffle_s rt = rt.resh_s

(* Apply the scale events scheduled before compute superstep [step].
   Membership changes re-home every partition whose round-robin
   assignment moves and price the move over the wire; preemptions are
   handed back to the engine, which routes them through the Faults
   recovery machinery. Callbacks keep this module free of Pgraph and
   telemetry dependencies. *)
let step_events rt ~step ~num_partitions ~partition_bytes ~partition_vertices ~attr_wire_bytes
    ~scale ~bandwidth ~barrier_s ~on_reshuffle ~on_preempt =
  match rt.rconfig with
  | None -> ()
  | Some c ->
      List.iter
        (fun item ->
          match item with
          | Preempt { retries; _ } ->
              on_preempt ~executor:(victim c ~step ~alive:rt.live) ~retries
          | Join _ | Leave _ ->
              let before = rt.live in
              let after =
                match item with
                | Join { count; _ } -> min rt.max_execs (before + count)
                | Leave { count; _ } -> max 1 (before - count)
                | Preempt _ -> before
              in
              if after <> before then begin
                let moved = ref 0 and moved_bytes = ref 0.0 in
                let replicas = ref 0 in
                for p = 0 to num_partitions - 1 do
                  if p mod before <> p mod after then begin
                    incr moved;
                    moved_bytes := !moved_bytes +. partition_bytes p;
                    replicas := !replicas + partition_vertices p
                  end
                done;
                let rebroadcast_bytes =
                  scale *. float_of_int !replicas *. attr_wire_bytes
                in
                let r =
                  {
                    Trace.resh_step = step;
                    executors_before = before;
                    executors_after = after;
                    moved_partitions = !moved;
                    moved_bytes = !moved_bytes;
                    rebroadcast_replicas = !replicas;
                    rebroadcast_bytes;
                    reshuffle_s =
                      ((!moved_bytes +. rebroadcast_bytes) /. bandwidth) +. barrier_s;
                  }
                in
                rt.live <- after;
                rt.resh <- r :: rt.resh;
                rt.resh_s <- rt.resh_s +. r.Trace.reshuffle_s;
                on_reshuffle r item
              end)
        (events_at c ~step)

let describe_hetero h =
  let fmt a =
    String.concat ","
      (Array.to_list (Array.map (fun v -> Printf.sprintf "%.2f" v) a))
  in
  Printf.sprintf "hetero speeds=[%s] bandwidths=[%s]" (fmt h.speeds) (fmt h.bandwidths)
