(** Cluster model: the paper's Spark deployment, scaled.

    The paper runs 1 driver + 4 executors (32 cores, 220 GB each) over
    1 Gbps Ethernet, reading datasets from HDFS on hard disks. Because
    our dataset analogues are ~100x smaller, executor memory is scaled
    down by the same factor (so the memory-pressure effects — the SSSP
    out-of-memory failures on road networks — reproduce at scale).

    Four configurations are evaluated:
    - {b (i)}   128 partitions, 1 Gbps, HDFS on HDD;
    - {b (ii)}  256 partitions, 1 Gbps, HDFS on HDD;
    - {b (iii)} 256 partitions, 40 Gbps, HDFS on HDD;
    - {b (iv)}  256 partitions, 40 Gbps, local SSD. *)

type storage = Hdd_hdfs | Ssd_local

type t = {
  name : string;  (** "(i)" ... "(iv)" *)
  num_partitions : int;
  executors : int;
  cores_per_executor : int;
  network_gbps : float;
  storage : storage;
  executor_memory_bytes : float;
  driver_memory_bytes : float;
}

val config_i : t
val config_ii : t
val config_iii : t
val config_iv : t

(* lint: unused-export -- catalogue of presets for interactive exploration *)
val all : t list
val find : string -> t
(** Look up by name ("i", "(i)", "128", ...). @raise Not_found. *)

val executor_of_partition : t -> int -> int
(** Round-robin placement of edge partitions onto executors. *)

val network_bytes_per_s : t -> float
(** Usable per-executor NIC bandwidth in bytes/second. *)

val storage_bytes_per_s : t -> float
(** Per-executor sequential read bandwidth of the storage tier. *)

val total_cores : t -> int

val describe : t -> string
(** One-line human description (name, partitions, executors, network,
    storage), used by the telemetry console sink and the CLI. *)

(* lint: unused-export -- debug printer, kept for toplevel use *)
val pp : Format.formatter -> t -> unit
(** Prints {!describe}. *)
