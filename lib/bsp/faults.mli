(** Deterministic fault injection for the BSP engines.

    A fault schedule is parsed from a compact spec string, realized
    against a concrete cluster (unpinned executors are chosen by seeded
    draws from [lib/prng]), and consulted by the engines once per
    superstep. Faults only perturb the {e time} accounting — slowdowns,
    degraded bandwidth, retransmissions, checkpoint/lineage recovery —
    never the vertex values, which is what makes the recovery
    equivalence invariant ([Fault_check]) provable bit-for-bit.

    Spec grammar (comma-separated items):
    {v
    crash@K[:eE]              executor E crashes at superstep K's barrier
    straggler@K[-L][:eE][:xF] executor E runs xF slower over steps K..L (default x4)
    net@K[-L][:xF]            cluster bandwidth multiplied by F over K..L (default x0.25)
    loss@K[:eE][:rN]          executor E's shuffle lost at step K, N retransmissions (default 1)
    rand@R                    each step >= 1, with probability R, one random fault fires
    v}

    All steps are compute supersteps ([>= 1]); the build stage and
    superstep 0 are never faulted. *)

exception Parse_error of string

type mode =
  | Rollback  (** restart all executors from the last checkpoint, replay *)
  | Lineage  (** rebuild only the lost partitions from the partitioner assignment *)

type item =
  | Crash of { step : int; executor : int option }
  | Straggler of { from_step : int; to_step : int; executor : int option; factor : float }
  | Net of { from_step : int; to_step : int; factor : float }
  | Loss of { step : int; executor : int option; retries : int }
  | Rand of { rate : float }

type config = {
  items : item list;
  raw : string;  (** the original spec string, kept for display *)
  seed : int;
  max_failures : int;  (** crashes beyond this budget abort the run *)
  mode : mode;
}

val parse_spec : string -> item list
(** Raises {!Parse_error} with a human-readable message. *)

val config : ?seed:int -> ?max_failures:int -> ?mode:mode -> string -> config
(** Parse a spec string into a config. Defaults: [seed=42],
    [max_failures=2], [mode=Rollback]. Raises {!Parse_error}. *)

val mode_name : mode -> string
val mode_of_name : string -> mode
(** Raises {!Parse_error} on unknown names. *)

val describe : config -> string

(** {1 Realized schedules} *)

type session
(** A config realized against a concrete executor count: unpinned
    executors resolved by seeded draws, plus the mutable crash budget. *)

val session : executors:int -> config -> session
val session_config : session -> config

val failures : session -> int
(** Crashes recorded so far via {!note_crash}. *)

val note_crash : session -> [ `Recover | `Abort ]
(** Record one executor loss against the budget. [`Abort] once the count
    exceeds [max_failures]. *)

type announcement = {
  fault_kind : string;  (** "crash" | "straggler" | "net" | "loss" *)
  fault_executor : int;  (** -1 when the fault is cluster-wide (net) *)
  detail : string;
}

type plan = {
  compute_factor : int -> float;
      (** per-executor busy-time multiplier this superstep (>= 1) *)
  network_factor : float;  (** cluster bandwidth multiplier (<= 1) *)
  loss : (int * int) option;  (** (executor, retries) transient shuffle loss *)
  crash : int option;  (** executor lost at this superstep's barrier *)
  announce : announcement list;
      (** faults firing {e at} this step, for [Fault_injected] events —
          window faults announce once, at their first step *)
}

val neutral : plan
(** The no-fault plan (identity factors, nothing fired). *)

val plan : session -> step:int -> plan
(** The realized plan for one superstep. Stateless per step: random
    draws are keyed on (seed, item, step), so call order and replay
    never change the schedule. *)

(** {1 Recovery cost accounting}

    Each helper prices one recovery and returns the itemized
    {!Trace.recovery} record the engine appends to the trace. Recovery
    traffic lands in [recovery_wire_bytes], deliberately outside the
    supersteps' [wire_bytes], so the wire-payload law still holds. *)

val rollback_recovery :
  cluster:Cluster.t ->
  at_step:int ->
  executor:int ->
  checkpointed:bool ->
  graph_bytes:float ->
  load_s:float ->
  replayed:Trace.superstep list ->
  Trace.recovery
(** Checkpoint read-back (or dataset reload when [checkpointed] is
    false, at [load_s]) plus the recorded cost of every replayed
    superstep. *)

val lineage_recovery :
  cost:Cost_model.t ->
  cluster:Cluster.t ->
  scale:float ->
  at_step:int ->
  executor:int ->
  lost_edges:int ->
  lost_vertices:int ->
  lost_replicas:int ->
  attr_wire_bytes:float ->
  Trace.recovery
(** Re-shuffle and rebuild of the lost partitions plus re-broadcast of
    every vertex view the executor hosted — recovery cost proportional
    to the replicas the cut placed on the lost executor. *)

val preempt_recovery :
  cost:Cost_model.t ->
  cluster:Cluster.t ->
  scale:float ->
  at_step:int ->
  executor:int ->
  lost_edges:int ->
  lost_vertices:int ->
  lost_replicas:int ->
  attr_wire_bytes:float ->
  retries:int ->
  Trace.recovery
(** Spot preemption ([preempt@T:rN] in the {!Elastic} spec): instance
    reacquisition after [retries] capped backoff attempts, then a
    lineage-style rebuild and re-broadcast of the lost partitions.
    Membership is unchanged — only time and recovery traffic move. *)

val retry_recovery :
  cost:Cost_model.t ->
  cluster:Cluster.t ->
  at_step:int ->
  executor:int ->
  egress_bytes:float ->
  retries:int ->
  Trace.recovery
(** Retransmission of the lost egress plus capped exponential backoff
    ({!Cost_model.retry_backoff}). *)
