(** Speculative superstep re-execution (Spark-style straggler
    mitigation, which GraphX inherits).

    At each superstep barrier the engine compares per-executor busy
    times — already jittered by {!Cost_model.jitter} and stretched by
    any active straggler fault — against the superstep median. When the
    slowest executor exceeds [threshold * median], a speculative clone
    of its tasks is launched on the least-loaded executor and the
    earlier finisher wins.

    Speculation is pure re-accounting: it can only change the modeled
    times, never the computed vertex values, counters, or superstep
    wire bytes. The clone's compute and its re-shuffled ingress are
    itemized on {!Trace.speculation} records, priced through
    {!Cost_model} but kept outside the wire-payload law exactly like
    [recovery_wire_bytes]. *)

type config = private { threshold : float; seed : int }

val config : ?threshold:float -> ?seed:int -> unit -> config
(** [threshold] (default 2.0) is the multiple of the median executor
    busy time past which the slowest executor is declared a straggler;
    must be >= 1. [seed] (default 1) keys the host tie-break draws.
    @raise Invalid_argument on a threshold below 1. *)

val evaluate :
  config ->
  cost:Cost_model.t ->
  bandwidth:float ->
  step:int ->
  busy:float array ->
  clean_busy:float array ->
  ingress:float array ->
  partitions:int array ->
  float array * Trace.speculation option
(** One barrier's speculation decision. [busy] is the per-executor
    scaled busy time including fault stretch; [clean_busy] the same
    without the stretch (what the clone costs on a healthy host);
    [ingress] the per-executor scaled ingress bytes this superstep
    (what must be re-shuffled to feed the clone); [partitions] the
    partition count hosted per executor; [bandwidth] the effective
    network bytes/s. Returns the effective busy array (clone wins
    rewrite the straggler's and host's entries) and the itemized
    record, or the input unchanged when no executor trips the
    threshold. Deterministic: ties are broken by seeded splitmix64
    draws keyed (seed, step). *)
