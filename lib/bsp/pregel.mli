(** The Pregel engine: GraphX's [Pregel] operator over a vertex-cut
    partitioned graph, with full cost and memory accounting.

    Semantics follow GraphX:
    - superstep 0 applies the vertex program to every vertex with
      [initial_msg], then broadcasts all attributes to their replicas;
    - each later superstep scans the triplets whose endpoints received a
      message, emits messages toward sources and/or destinations, merges
      them first inside each edge partition (the local combiner, a left
      fold in edge order), then shuffles one aggregate per (vertex,
      partition) pair to the vertex's hash-assigned master, where the
      per-partition aggregates merge in ascending partition order —
      a reduction order fixed by the data layout, not by scheduling,
      which the parallel {!Csr} kernels reproduce bit-for-bit. The
      vertex program then runs at the master and ships changed
      attributes back along the routing table;
    - the loop ends when no messages remain, the iteration cap is hit,
      or the memory model trips (GraphX's unbounded lineage).

    Time is modeled, not measured: each superstep's compute is the
    makespan of per-partition work over each executor's cores, network
    is per-executor egress bytes over the NIC, and fixed task-dispatch
    and barrier overheads are added — so granularity, stragglers,
    communication volume and infrastructure speed all shape the result,
    exactly the effects the paper studies. *)

type direction = To_src | To_dst

type ('v, 'm) program = {
  init : int -> 'v;  (** initial attribute per vertex *)
  initial_msg : 'm;  (** delivered to every vertex at superstep 0 *)
  vprog : int -> 'v -> 'm -> 'v;  (** vertex program *)
  send :
    edge:int ->
    src:int ->
    dst:int ->
    src_attr:'v ->
    dst_attr:'v ->
    emit:(direction -> 'm -> unit) ->
    unit;
      (** message generation over one triplet; call [emit] any number of
          times *)
  merge : 'm -> 'm -> 'm;  (** commutative, associative message combiner *)
  state_bytes : int;  (** serialized payload of one vertex attribute *)
  msg_bytes : int;  (** serialized payload of one message *)
}

type 'v result = { attrs : 'v array; trace : Trace.t }

val run :
  ?max_supersteps:int ->
  ?scale:float ->
  ?cost:Cost_model.t ->
  ?checkpoint_every:int ->
  ?faults:Faults.config ->
  ?speculation:Speculation.config ->
  ?elastic:Elastic.config ->
  ?hetero:Elastic.hetero ->
  ?telemetry:Cutfit_obs.Telemetry.t ->
  cluster:Cluster.t ->
  Pgraph.t ->
  ('v, 'm) program ->
  'v result
(** [run ~cluster pg program] executes to quiescence (or
    [max_supersteps], default 500). [scale] linearly rescales work,
    bytes and memory quantities to the original dataset's size when the
    partitioned graph is a scaled-down analogue (default 1.0).
    [checkpoint_every] writes the materialized graph to storage every k
    supersteps, paying the write time but truncating the driver lineage
    — the standard Spark mitigation for the long-run out-of-memory
    failures the paper hit. On out-of-memory the returned attributes
    reflect the last completed superstep and [trace.outcome] is
    [Out_of_memory].

    [faults] attaches a deterministic {!Faults} schedule: stragglers and
    degraded bandwidth stretch the affected supersteps' time, transient
    shuffle losses and executor crashes append itemized
    {!Trace.recovery} records (rollback replay against the last
    [checkpoint_every] checkpoint, or lineage rebuild of the lost
    partitions, per the config's mode), and crashes beyond the failure
    budget end the run with [trace.outcome = Aborted]. Faults never
    touch the computed attributes: a faulty run's [attrs] are
    bit-identical to the fault-free run's.

    [speculation] enables {!Speculation} straggler mitigation at every
    compute superstep (step >= 1): when the slowest executor's busy
    time exceeds the configured multiple of the median, its tasks are
    cloned onto the least-loaded executor and the earlier finisher
    wins, appending an itemized {!Trace.speculation} record (and
    [Speculative_launch] / [Speculative_win] telemetry). Like faults,
    speculation perturbs only the time accounting — attributes,
    counters and superstep wire bytes are untouched.

    [elastic] attaches a deterministic {!Elastic} scale-event schedule:
    executors join and leave before the scheduled compute supersteps
    (each membership change re-homes the moved partitions as an
    itemized, priced {!Trace.reshuffle} — outside the supersteps' wire
    accounting, like recovery traffic), and spot preemptions route
    through the {!Faults} recovery machinery as involuntary crashes.
    [hetero] gives per-executor speed and bandwidth multipliers that
    divide busy time and scale egress bandwidth. Both perturb only time
    and locality: the converged attributes and the logical message
    structure stay bit-identical to the static homogeneous run, which
    the [elastic] sanitizer suite enforces.

    When [telemetry] is given, every stage (including the [step = -1]
    build stage) emits one {!Cutfit_obs.Event.Superstep} record derived
    from the same counters as the trace — so the event stream's message
    and byte aggregates reconcile with the returned {!Trace.t} exactly —
    followed by one [Run_end] record labelled ["pregel"]. Without it the
    engine allocates no telemetry records at all. *)
