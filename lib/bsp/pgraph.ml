module Graph = Cutfit_graph.Graph
module Metrics = Cutfit_partition.Metrics

type t = {
  graph : Graph.t;
  num_partitions : int;
  assignment : int array;
  part_off : int array;  (* partition -> start in part_edges *)
  part_edges : int array;  (* edge indices grouped by partition *)
  route_off : int array;  (* vertex -> start in route_parts *)
  route_parts : int array;  (* partitions per vertex, ascending *)
  master : int array;
  local_verts : int array;  (* partition -> local vertex table size *)
  mutable metrics : Metrics.t option;
}

let build g ~num_partitions assignment =
  let n = Graph.num_vertices g and m = Graph.num_edges g in
  if num_partitions <= 0 then invalid_arg "Pgraph.build: num_partitions <= 0";
  if Array.length assignment <> m then invalid_arg "Pgraph.build: assignment length mismatch";
  (* Group edge indices by partition with a counting sort. *)
  let part_off = Array.make (num_partitions + 1) 0 in
  Array.iter
    (fun p ->
      if p < 0 || p >= num_partitions then invalid_arg "Pgraph.build: partition out of range";
      part_off.(p + 1) <- part_off.(p + 1) + 1)
    assignment;
  for p = 1 to num_partitions do
    part_off.(p) <- part_off.(p) + part_off.(p - 1)
  done;
  let part_edges = Array.make m 0 in
  let cursor = Array.copy part_off in
  Array.iteri
    (fun e p ->
      part_edges.(cursor.(p)) <- e;
      cursor.(p) <- cursor.(p) + 1)
    assignment;
  (* Routing table: iterate partitions in ascending order, stamping the
     last partition seen per vertex, so each (vertex, partition) pair is
     recorded once and per-vertex partition lists come out sorted. *)
  let stamp = Array.make n (-1) in
  let counts = Array.make n 0 in
  let local_verts = Array.make num_partitions 0 in
  let visit_pass record =
    Array.fill stamp 0 n (-1);
    for p = 0 to num_partitions - 1 do
      for i = part_off.(p) to part_off.(p + 1) - 1 do
        let e = part_edges.(i) in
        let touch v =
          if stamp.(v) <> p then begin
            stamp.(v) <- p;
            record v p
          end
        in
        touch (Graph.edge_src g e);
        touch (Graph.edge_dst g e)
      done
    done
  in
  visit_pass (fun v p ->
      counts.(v) <- counts.(v) + 1;
      local_verts.(p) <- local_verts.(p) + 1);
  let route_off = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    route_off.(v + 1) <- route_off.(v) + counts.(v)
  done;
  let route_parts = Array.make route_off.(n) 0 in
  let rcursor = Array.copy route_off in
  visit_pass (fun v p ->
      route_parts.(rcursor.(v)) <- p;
      rcursor.(v) <- rcursor.(v) + 1);
  (* Spark's HashPartitioner uses Java hashCode, which is the identity
     for small Longs: the VertexRDD master of v is v mod P. This
     alignment is load-bearing — it is why destination-modulo (DC)
     partitioning makes PageRank messages aggregate directly at their
     master, the effect behind the paper's "DC best for PR" finding. *)
  let master = Array.init n (fun v -> v mod num_partitions) in
  {
    graph = g;
    num_partitions;
    assignment;
    part_off;
    part_edges;
    route_off;
    route_parts;
    master;
    local_verts;
    metrics = None;
  }

let graph t = t.graph
let num_partitions t = t.num_partitions
let assignment t = Array.copy t.assignment

let edges_of_partition t p = Array.sub t.part_edges t.part_off.(p) (t.part_off.(p + 1) - t.part_off.(p))
let num_edges_of_partition t p = t.part_off.(p + 1) - t.part_off.(p)

let iter_partition_edges t p f =
  for i = t.part_off.(p) to t.part_off.(p + 1) - 1 do
    let e = t.part_edges.(i) in
    f ~edge:e ~src:(Graph.edge_src t.graph e) ~dst:(Graph.edge_dst t.graph e)
  done

let replicas t v = Array.sub t.route_parts t.route_off.(v) (t.route_off.(v + 1) - t.route_off.(v))
let replica_count t v = t.route_off.(v + 1) - t.route_off.(v)

let iter_replicas t v f =
  for i = t.route_off.(v) to t.route_off.(v + 1) - 1 do
    f t.route_parts.(i)
  done

let master t v = t.master.(v)
let local_vertices t p = t.local_verts.(p)
let total_replicas t = Array.length t.route_parts

let metrics t =
  match t.metrics with
  | Some m -> m
  | None ->
      let m = Metrics.compute t.graph ~num_partitions:t.num_partitions t.assignment in
      t.metrics <- Some m;
      m
