type superstep = {
  step : int;
  active_edges : int;
  messages : int;
  shuffle_groups : int;
  remote_shuffles : int;
  updated_vertices : int;
  broadcast_replicas : int;
  remote_broadcasts : int;
  wire_bytes : float;
  compute_s : float;
  network_s : float;
  overhead_s : float;
  time_s : float;
}

type recovery = {
  at_step : int;
  kind : string;
  executor : int;
  replayed_steps : int;
  lost_edges : int;
  lost_replicas : int;
  recovery_wire_bytes : float;
  recovery_s : float;
}

type speculation = {
  at_step : int;
  executor : int;
  host : int;
  cloned_partitions : int;
  original_busy_s : float;
  clone_busy_s : float;
  speculative_compute_s : float;
  speculative_wire_bytes : float;
  won : bool;
  saved_s : float;
}

type reshuffle = {
  resh_step : int;
  executors_before : int;
  executors_after : int;
  moved_partitions : int;
  moved_bytes : float;
  rebroadcast_replicas : int;
  rebroadcast_bytes : float;
  reshuffle_s : float;
}

type outcome = Completed | Max_supersteps | Out_of_memory | Aborted

type t = {
  supersteps : superstep list;
  load_s : float;
  checkpoint_s : float;
  checkpoints : int;
  recovery_s : float;
  recoveries : recovery list;
  faults_injected : int;
  speculations : speculation list;
  speculation_s : float;
  reshuffles : reshuffle list;
  reshuffle_s : float;
  total_s : float;
  outcome : outcome;
  peak_executor_bytes : float;
  driver_meta_bytes : float;
}

let num_supersteps t = List.length t.supersteps
let total_messages t = List.fold_left (fun acc s -> acc + s.messages) 0 t.supersteps

let total_remote_messages t =
  List.fold_left (fun acc s -> acc + s.remote_shuffles + s.remote_broadcasts) 0 t.supersteps

let total_wire_bytes t = List.fold_left (fun acc s -> acc +. s.wire_bytes) 0.0 t.supersteps
let total_network_s t = List.fold_left (fun acc s -> acc +. s.network_s) 0.0 t.supersteps
let total_compute_s t = List.fold_left (fun acc s -> acc +. s.compute_s) 0.0 t.supersteps
let total_overhead_s t = List.fold_left (fun acc s -> acc +. s.overhead_s) 0.0 t.supersteps
let num_recoveries t = List.length t.recoveries
let num_speculations t = List.length t.speculations

let speculation_wins t =
  List.fold_left (fun acc s -> if s.won then acc + 1 else acc) 0 t.speculations

let total_speculative_wire_bytes t =
  List.fold_left (fun acc s -> acc +. s.speculative_wire_bytes) 0.0 t.speculations

let num_reshuffles t = List.length t.reshuffles

let total_reshuffle_wire_bytes t =
  List.fold_left (fun acc r -> acc +. r.moved_bytes +. r.rebroadcast_bytes) 0.0 t.reshuffles
let completed t = match t.outcome with Out_of_memory | Aborted -> false | Completed | Max_supersteps -> true

let outcome_name = function
  | Completed -> "completed"
  | Max_supersteps -> "max-supersteps"
  | Out_of_memory -> "out-of-memory"
  | Aborted -> "aborted"

let pp_superstep ppf s =
  Format.fprintf ppf
    "step %2d: active=%d msgs=%d shuffle=%d(+%d remote) bcast=%d(+%d remote) wire=%.0fB t=%.3fs (c=%.3f n=%.3f o=%.3f)"
    s.step s.active_edges s.messages s.shuffle_groups s.remote_shuffles s.broadcast_replicas
    s.remote_broadcasts s.wire_bytes s.time_s s.compute_s s.network_s s.overhead_s

let pp_recovery ppf (r : recovery) =
  Format.fprintf ppf "step %2d: %s of executor %d (%s) %.3fs"
    r.at_step r.kind r.executor
    (match r.kind with
    | "rollback" -> Printf.sprintf "replayed %d supersteps" r.replayed_steps
    | "lineage" ->
        Printf.sprintf "rebuilt %d edges, %d replica views" r.lost_edges r.lost_replicas
    | "preempt" ->
        Printf.sprintf "spot instance reacquired; rebuilt %d edges, %d replica views"
          r.lost_edges r.lost_replicas
    | _ -> Printf.sprintf "%.0f bytes retransmitted" r.recovery_wire_bytes)
    r.recovery_s

let pp_speculation ppf s =
  Format.fprintf ppf "step %2d: executor %d cloned onto %d (%d tasks, %.0fB reshuffled) %s%s"
    s.at_step s.executor s.host s.cloned_partitions s.speculative_wire_bytes
    (if s.won then "clone won" else "original won")
    (if s.won then Printf.sprintf ", saved %.3fs" s.saved_s else "")

let pp_reshuffle ppf (r : reshuffle) =
  Format.fprintf ppf "step %2d: %d -> %d executors, %d partition(s) moved (%.0fB + %d replica views %.0fB) %.3fs"
    r.resh_step r.executors_before r.executors_after r.moved_partitions r.moved_bytes
    r.rebroadcast_replicas r.rebroadcast_bytes r.reshuffle_s

let pp_summary ppf t =
  let outcome =
    match t.outcome with
    | Out_of_memory -> "OUT-OF-MEMORY"
    | Aborted -> "ABORTED"
    | o -> outcome_name o
  in
  Format.fprintf ppf "%s in %d supersteps, %.2fs total (load %.2fs, compute %.2fs, net %.2fs, ovh %.2fs%s%s%s%s)"
    outcome (num_supersteps t) t.total_s t.load_s (total_compute_s t) (total_network_s t)
    (total_overhead_s t)
    (if t.checkpoints > 0 then Printf.sprintf ", %d ckpt %.2fs" t.checkpoints t.checkpoint_s
     else "")
    (if t.recoveries <> [] || t.faults_injected > 0 then
       Printf.sprintf ", %d fault(s) %d recover(ies) %.2fs" t.faults_injected
         (num_recoveries t) t.recovery_s
     else "")
    (if t.speculations <> [] then
       Printf.sprintf ", %d speculation(s) (%d won) %.2fs extra compute" (num_speculations t)
         (speculation_wins t) t.speculation_s
     else "")
    (if t.reshuffles <> [] then
       Printf.sprintf ", %d reshuffle(s) %.2fs" (num_reshuffles t) t.reshuffle_s
     else "")
