type superstep = {
  step : int;
  active_edges : int;
  messages : int;
  shuffle_groups : int;
  remote_shuffles : int;
  updated_vertices : int;
  broadcast_replicas : int;
  remote_broadcasts : int;
  wire_bytes : float;
  compute_s : float;
  network_s : float;
  overhead_s : float;
  time_s : float;
}

type outcome = Completed | Max_supersteps | Out_of_memory

type t = {
  supersteps : superstep list;
  load_s : float;
  checkpoint_s : float;
  checkpoints : int;
  total_s : float;
  outcome : outcome;
  peak_executor_bytes : float;
  driver_meta_bytes : float;
}

let num_supersteps t = List.length t.supersteps
let total_messages t = List.fold_left (fun acc s -> acc + s.messages) 0 t.supersteps

let total_remote_messages t =
  List.fold_left (fun acc s -> acc + s.remote_shuffles + s.remote_broadcasts) 0 t.supersteps

let total_wire_bytes t = List.fold_left (fun acc s -> acc +. s.wire_bytes) 0.0 t.supersteps
let total_network_s t = List.fold_left (fun acc s -> acc +. s.network_s) 0.0 t.supersteps
let total_compute_s t = List.fold_left (fun acc s -> acc +. s.compute_s) 0.0 t.supersteps
let total_overhead_s t = List.fold_left (fun acc s -> acc +. s.overhead_s) 0.0 t.supersteps
let completed t = t.outcome <> Out_of_memory

let outcome_name = function
  | Completed -> "completed"
  | Max_supersteps -> "max-supersteps"
  | Out_of_memory -> "out-of-memory"

let pp_superstep ppf s =
  Format.fprintf ppf
    "step %2d: active=%d msgs=%d shuffle=%d(+%d remote) bcast=%d(+%d remote) wire=%.0fB t=%.3fs (c=%.3f n=%.3f o=%.3f)"
    s.step s.active_edges s.messages s.shuffle_groups s.remote_shuffles s.broadcast_replicas
    s.remote_broadcasts s.wire_bytes s.time_s s.compute_s s.network_s s.overhead_s

let pp_summary ppf t =
  let outcome =
    match t.outcome with Out_of_memory -> "OUT-OF-MEMORY" | o -> outcome_name o
  in
  Format.fprintf ppf "%s in %d supersteps, %.2fs total (load %.2fs, compute %.2fs, net %.2fs, ovh %.2fs%s)"
    outcome (num_supersteps t) t.total_s t.load_s (total_compute_s t) (total_network_s t)
    (total_overhead_s t)
    (if t.checkpoints > 0 then Printf.sprintf ", %d ckpt %.2fs" t.checkpoints t.checkpoint_s
     else "")
