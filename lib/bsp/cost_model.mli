(** Cost model of the simulated GraphX runtime.

    Execution time in this reproduction is not wall-clock: it is the
    modeled cost of the actual work and message trace each algorithm
    produces on the partitioned graph. The constants below are JVM-era
    GraphX magnitudes — a few microseconds of effective cost per edge or
    message once JVM object churn and GC are amortized in (the "ninja
    gap" of Satish et al.), milliseconds per task dispatched; their
    absolute values set the time unit, while the paper-shape results
    depend on their ratios. Every constant is a record field so the
    bench's ablation experiment can perturb them. *)

type t = {
  build_edge_s : float;  (** graph construction cost per edge (one-time) *)
  build_vertex_s : float;  (** local vertex table construction per entry (one-time) *)
  shuffle_edge_bytes : int;  (** bytes shuffled per edge while partitioning the graph *)
  edge_scan_s : float;  (** scanning one edge triplet during sendMsg *)
  msg_merge_s : float;  (** merging one message into a local combiner *)
  msg_wire_overhead_bytes : int;  (** framing bytes added to each message *)
  msg_serialize_s : float;  (** CPU cost to (de)serialize one remote message *)
  vprog_s : float;  (** applying the vertex program once *)
  task_dispatch_s : float;  (** per-task (per-partition per-superstep) scheduling cost *)
  superstep_barrier_s : float;  (** fixed per-superstep driver/barrier latency *)
  cut_vertex_reduce_s : float;
      (** per-cut-vertex reduction overhead when synchronizing large
          (collection-valued) vertex state, as in triangle counting *)
  array_element_s : float;
      (** per-element cost of serializing collection-valued vertex state *)
  intersect_probe_s : float;
      (** per-probe cost of a neighbour-set membership test during
          triangle counting *)
  edge_skip_s : float;  (** skipping one inactive edge during an indexed scan *)
  edge_object_bytes : int;  (** resident JVM bytes per edge in a partition *)
  vertex_object_bytes : int;  (** resident JVM bytes per local vertex entry *)
  driver_meta_per_task_bytes : float;
      (** driver-side lineage/metadata retained per task per superstep;
          GraphX's unbounded Pregel lineage is what blows up the
          hundreds-of-supersteps SSSP runs on road networks *)
  gc_jitter : float;
      (** amplitude of per-task JVM jitter (GC pauses, JIT): each task's
          work is multiplied by a deterministic factor in
          [1, 1 + gc_jitter]. Heterogeneous tasks pack better over more,
          smaller partitions — the paper's granularity effect. *)
  retry_backoff_base_s : float;
      (** first-attempt backoff delay when a transient shuffle loss forces
          a retransmission *)
  retry_backoff_cap_s : float;  (** ceiling on any single backoff delay *)
  speculation_rpc_s : float;
      (** driver round-trip to launch (and later kill) a speculative
          clone of a straggling executor's tasks — charged once per
          speculation on top of the re-dispatch cost *)
}

val default : t
(** The calibrated constants used throughout the evaluation. *)

(* lint: unused-export -- exposed so external harnesses can replay jitter *)
val jitter : t -> partition:int -> step:int -> float
(** The deterministic jitter multiplier of one task instance. *)

val jittered : t -> step:int -> float array -> float array
(** [jittered t ~step work] is the per-partition [work] array with each
    task's {!jitter} multiplier applied ([work.(p)] is partition [p]'s
    single-core seconds). The engines schedule this array; the telemetry
    layer reads its extrema as the superstep's task-skew signal. *)

val makespan : work:float array -> cores:int -> float
(** Time to drain per-task single-core [work] seconds on [cores]
    identical cores: [max (max_i work) (sum work / cores)], the standard
    two-sided bound for list scheduling. *)

val retry_backoff : t -> retries:int -> float
(** Total capped exponential backoff delay accumulated over [retries]
    successive shuffle retransmission attempts:
    [sum_i min cap (base * 2^i)]. *)
