(** Partitioned graph: GraphX's distributed representation.

    A graph plus an edge-to-partition assignment, frozen into the
    structures the engine needs:
    - per-partition edge lists (the EdgeRDD partitions);
    - a routing table mapping each vertex to the sorted set of
      partitions holding at least one of its edges (GraphX's
      [RoutingTablePartition], which drives replica broadcast);
    - a master partition per vertex: GraphX hash-partitions the
      VertexRDD independently of the edge cut, and Spark's
      HashPartitioner over Long ids reduces to [v mod num_partitions] —
      an identity whose alignment with the modulo partitioners (SC/DC)
      is part of the behaviour the paper measures. *)

type t

val build :
  Cutfit_graph.Graph.t -> num_partitions:int -> int array -> t
(** [build g ~num_partitions assignment] with [assignment] from
    {!Cutfit_partition.Partitioner.assign}.
    @raise Invalid_argument on malformed input. *)

val graph : t -> Cutfit_graph.Graph.t
val num_partitions : t -> int

val assignment : t -> int array
(** Copy of the edge-to-partition assignment the graph was built from;
    index = edge id. Used by the {!Cutfit_check} sanitizers to
    cross-validate the frozen structures against their source. *)

val edges_of_partition : t -> int -> int array
(** Edge indices (into the underlying graph) owned by a partition; do
    not mutate. *)

val num_edges_of_partition : t -> int -> int

val iter_partition_edges : t -> int -> (edge:int -> src:int -> dst:int -> unit) -> unit
(** Iterate a partition's edges with endpoints pre-fetched. *)

val replicas : t -> int -> int array
(** Sorted partitions in which the vertex is present (fresh array). *)

val replica_count : t -> int -> int

val iter_replicas : t -> int -> (int -> unit) -> unit
(** Iterate the vertex's partitions without allocating. *)

val master : t -> int -> int
(** The vertex's master partition, [v mod num_partitions] (it may hold
    none of the vertex's edges, exactly as in GraphX). *)

val local_vertices : t -> int -> int
(** Size of a partition's local vertex table. *)

val total_replicas : t -> int
(** Sum of replica counts over all vertices = NonCut + CommCost. *)

val metrics : t -> Cutfit_partition.Metrics.t
(** The partitioning metrics of this assignment (computed once,
    memoized). *)
