type storage = Hdd_hdfs | Ssd_local

type t = {
  name : string;
  num_partitions : int;
  executors : int;
  cores_per_executor : int;
  network_gbps : float;
  storage : storage;
  executor_memory_bytes : float;
  driver_memory_bytes : float;
}

(* Executor memory is the paper's 220 GB; the driver JVM heap is the
   usual couple dozen GB. Simulated work quantities are rescaled to the
   original dataset sizes (see Pregel's [scale]), so these are the
   paper's own magnitudes, not scaled-down ones. *)
let base =
  {
    name = "(i)";
    num_partitions = 128;
    executors = 4;
    cores_per_executor = 32;
    network_gbps = 1.0;
    storage = Hdd_hdfs;
    executor_memory_bytes = 220e9;
    driver_memory_bytes = 24e9;
  }

let config_i = base
let config_ii = { base with name = "(ii)"; num_partitions = 256 }
let config_iii = { config_ii with name = "(iii)"; network_gbps = 40.0 }
let config_iv = { config_iii with name = "(iv)"; storage = Ssd_local }

let all = [ config_i; config_ii; config_iii; config_iv ]

let find s =
  let s = String.lowercase_ascii s in
  let strip = String.concat "" (String.split_on_char '(' (String.concat "" (String.split_on_char ')' s))) in
  match strip with
  | "i" | "128" -> config_i
  | "ii" | "256" -> config_ii
  | "iii" -> config_iii
  | "iv" -> config_iv
  | _ -> raise Not_found

let executor_of_partition t p = p mod t.executors

(* TCP + Spark framing keeps goodput below line rate; ~70% is a common
   rule of thumb for shuffle-heavy traffic. *)
let network_bytes_per_s t = t.network_gbps *. 125_000_000.0 *. 0.70

let storage_bytes_per_s t =
  match t.storage with Hdd_hdfs -> 120_000_000.0 | Ssd_local -> 500_000_000.0

let total_cores t = t.executors * t.cores_per_executor

let describe t =
  Printf.sprintf "%s: %d partitions on %d executors x %d cores, %.0f Gbps, %s" t.name
    t.num_partitions t.executors t.cores_per_executor t.network_gbps
    (match t.storage with Hdd_hdfs -> "HDD/HDFS" | Ssd_local -> "local SSD")

let pp ppf t = Format.pp_print_string ppf (describe t)
