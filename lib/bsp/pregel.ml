module Graph = Cutfit_graph.Graph
module Obs = Cutfit_obs

type direction = To_src | To_dst

type ('v, 'm) program = {
  init : int -> 'v;
  initial_msg : 'm;
  vprog : int -> 'v -> 'm -> 'v;
  send :
    edge:int ->
    src:int ->
    dst:int ->
    src_attr:'v ->
    dst_attr:'v ->
    emit:(direction -> 'm -> unit) ->
    unit;
  merge : 'm -> 'm -> 'm;
  state_bytes : int;
  msg_bytes : int;
}

type 'v result = { attrs : 'v array; trace : Trace.t }

(* Growable int vector for the per-superstep touched-vertex set. *)
module Ivec = struct
  type t = { mutable data : int array; mutable len : int }

  let create () = { data = Array.make 1024 0; len = 0 }

  let push t v =
    if t.len = Array.length t.data then begin
      let bigger = Array.make (2 * t.len) 0 in
      Array.blit t.data 0 bigger 0 t.len;
      t.data <- bigger
    end;
    t.data.(t.len) <- v;
    t.len <- t.len + 1

  let clear t = t.len <- 0
  let iter t f =
    for i = 0 to t.len - 1 do
      f t.data.(i)
    done
  let length t = t.len
end

let run ?(max_supersteps = 500) ?(scale = 1.0) ?(cost = Cost_model.default) ?checkpoint_every
    ?faults ?speculation ?elastic ?hetero ?telemetry ~cluster pg program =
  let g = Pgraph.graph pg in
  let n = Graph.num_vertices g in
  let num_partitions = Pgraph.num_partitions pg in
  if cluster.Cluster.num_partitions <> num_partitions then
    invalid_arg "Pregel.run: cluster and partitioned graph disagree on partition count";
  let executors = cluster.Cluster.executors in
  let cores = cluster.Cluster.cores_per_executor in
  (* Placement is consulted through the elastic runtime: with no scale
     events it is exactly [Cluster.executor_of_partition]; with them,
     the round-robin target tracks the live membership. *)
  let ert = Elastic.runtime ?config:elastic ?hetero ~executors () in
  let max_execs = Elastic.max_executors ert in
  let exec_of p = Elastic.exec_of ert p in
  let bandwidth = Cluster.network_bytes_per_s cluster in

  let attrs = Array.init n program.init in
  let active = Bytes.make n '\000' in
  let is_active v = Bytes.unsafe_get active v <> '\000' in
  let msg : 'm option array = Array.make n None in
  let touched = Ivec.create () in
  (* Partition-local combiner scratch: messages emitted while one
     partition's edges are scanned merge here first (in edge order),
     then flush into the master-side accumulator [msg] in ascending
     partition order. This fixes the cross-partition reduction order
     per partition index — the order the parallel {!Csr} kernels
     reproduce, which is what makes boxed and CSR results bit-identical
     for non-associative float merges. *)
  let plocal : 'm option array = Array.make n None in
  let ptouched = Ivec.create () in
  let last_part = Array.make n (-1) in
  let last_step = Array.make n (-1) in

  (* Per-executor static working set (the cached graph), paper-scale. *)
  let resident = Array.make executors 0.0 in
  for p = 0 to num_partitions - 1 do
    let e = exec_of p in
    resident.(e) <-
      resident.(e)
      +. scale
         *. (float_of_int (Pgraph.num_edges_of_partition pg p * cost.Cost_model.edge_object_bytes)
            +. float_of_int
                 (Pgraph.local_vertices pg p
                 * (cost.Cost_model.vertex_object_bytes + program.state_bytes)))
  done;
  let peak_executor = ref (Array.fold_left Float.max 0.0 resident) in
  let compute_parts_per_exec () =
    let a = Array.make (Elastic.live ert) 0 in
    for p = 0 to num_partitions - 1 do
      a.(exec_of p) <- a.(exec_of p) + 1
    done;
    a
  in
  let parts_per_exec = ref (compute_parts_per_exec ()) in

  let steps = ref [] in
  let outcome = ref Trace.Completed in
  let driver_meta = ref 0.0 in
  let checkpoint_s = ref 0.0 and checkpoints = ref 0 in
  let fsession = Option.map (Faults.session ~executors) faults in
  let recoveries = ref [] in
  let recovery_total = ref 0.0 in
  let faults_injected = ref 0 in
  let last_ckpt = ref None in
  let speculations = ref [] in
  let speculation_total = ref 0.0 in
  let push_speculation (s : Trace.speculation) =
    speculations := s :: !speculations;
    speculation_total := !speculation_total +. s.Trace.speculative_compute_s;
    match telemetry with
    | None -> ()
    | Some t ->
        Obs.Telemetry.emit t
          (Obs.Event.Speculative_launch
             {
               step = s.Trace.at_step;
               executor = s.Trace.executor;
               host = s.Trace.host;
               cloned_partitions = s.Trace.cloned_partitions;
               original_busy_s = s.Trace.original_busy_s;
               clone_busy_s = s.Trace.clone_busy_s;
               wire_bytes = s.Trace.speculative_wire_bytes;
               compute_s = s.Trace.speculative_compute_s;
             });
        if s.Trace.won then
          Obs.Telemetry.emit t
            (Obs.Event.Speculative_win
               {
                 step = s.Trace.at_step;
                 executor = s.Trace.executor;
                 host = s.Trace.host;
                 saved_s = s.Trace.saved_s;
               })
  in
  let push_recovery (r : Trace.recovery) =
    recoveries := r :: !recoveries;
    recovery_total := !recovery_total +. r.Trace.recovery_s;
    match telemetry with
    | None -> ()
    | Some t ->
        Obs.Telemetry.emit t
          (Obs.Event.Recovery
             {
               step = r.Trace.at_step;
               kind = r.Trace.kind;
               executor = r.Trace.executor;
               replayed_steps = r.Trace.replayed_steps;
               lost_edges = r.Trace.lost_edges;
               lost_replicas = r.Trace.lost_replicas;
               wire_bytes = r.Trace.recovery_wire_bytes;
               recovery_s = r.Trace.recovery_s;
             })
  in
  (* Writing the materialized graph to the storage tier truncates the
     driver's lineage — Spark's standard fix for long Pregel runs. *)
  let graph_bytes =
    scale
    *. (float_of_int (Graph.num_edges g * cost.Cost_model.edge_object_bytes)
       +. float_of_int
            (n * (cost.Cost_model.vertex_object_bytes + program.state_bytes)))
  in
  let take_checkpoint ~step =
    incr checkpoints;
    let write_s =
      graph_bytes /. (float_of_int executors *. Cluster.storage_bytes_per_s cluster)
    in
    checkpoint_s := !checkpoint_s +. write_s;
    driver_meta := 0.0;
    last_ckpt := Some step;
    match telemetry with
    | None -> ()
    | Some t ->
        Obs.Telemetry.emit t (Obs.Event.Checkpoint { step; bytes = graph_bytes; write_s })
  in

  let msg_wire_bytes = float_of_int (program.msg_bytes + cost.Cost_model.msg_wire_overhead_bytes) in
  let attr_wire_bytes =
    float_of_int (program.state_bytes + cost.Cost_model.msg_wire_overhead_bytes)
  in

  (* One superstep of vertex-side work shared by superstep 0 and the
     main loop: run vprog on [vertices], then broadcast the updated
     attributes along the routing table, charging work and bytes. *)
  let apply_and_broadcast ~work ~bytes_out ~bytes_in ~run_vprog vertices =
    let updated = ref 0 and bcast = ref 0 and remote_bcast = ref 0 in
    vertices (fun v ->
        incr updated;
        (if run_vprog then
           let mp = Pgraph.master pg v in
           work.(mp) <- work.(mp) +. cost.Cost_model.vprog_s);
        let mp = Pgraph.master pg v in
        let mexec = exec_of mp in
        Pgraph.iter_replicas pg v (fun q ->
            incr bcast;
            work.(mp) <- work.(mp) +. cost.Cost_model.msg_serialize_s;
            if exec_of q <> mexec then begin
              incr remote_bcast;
              bytes_out.(mexec) <- bytes_out.(mexec) +. attr_wire_bytes;
              bytes_in.(exec_of q) <- bytes_in.(exec_of q) +. attr_wire_bytes
            end));
    (!updated, !bcast, !remote_bcast)
  in

  let finish_superstep ~step ~plan ~work ~bytes_out ~bytes_in ~active_edges ~messages
      ~shuffle_groups ~remote_shuffles ~updated ~bcast ~remote_bcast =
    (* Executor compute = makespan of its partitions' jittered work over
       its cores, divided by the host's speed multiplier; an active
       straggler fault stretches its executor on top. *)
    let live = Elastic.live ert in
    let jittered = Cost_model.jittered cost ~step work in
    let clean_busy = Array.make live 0.0 in
    let busy = Array.make live 0.0 in
    for e = 0 to live - 1 do
      let mine = ref [] in
      for p = 0 to num_partitions - 1 do
        if exec_of p = e then mine := jittered.(p) :: !mine
      done;
      let arr = Array.of_list !mine in
      clean_busy.(e) <- scale *. Cost_model.makespan ~work:arr ~cores /. Elastic.speed_of ert e;
      (* Fault plans are realized against the initial membership; late
         joiners past that width run fault-free. *)
      let fault_factor = if e < executors then plan.Faults.compute_factor e else 1.0 in
      busy.(e) <- clean_busy.(e) *. fault_factor
    done;
    let bandwidth_eff = bandwidth *. plan.Faults.network_factor in
    (* Speculative re-execution of the slowest executor's tasks: decided
       from the same deterministic busy/ingress data the step already
       produced, so it only rewrites the time accounting — the values,
       counters and superstep wire bytes are untouched. *)
    let busy, spec =
      match speculation with
      | Some cfg when step >= 1 ->
          Speculation.evaluate cfg ~cost ~bandwidth:bandwidth_eff ~step ~busy ~clean_busy
            ~ingress:(Array.init live (fun e -> scale *. bytes_in.(e)))
            ~partitions:!parts_per_exec
      | _ -> (busy, None)
    in
    let compute = Array.fold_left Float.max 0.0 busy in
    let network = ref 0.0 and wire = ref 0.0 in
    for e = 0 to live - 1 do
      wire := !wire +. (scale *. bytes_out.(e));
      let t = scale *. bytes_out.(e) /. (bandwidth_eff *. Elastic.bandwidth_of ert e) in
      if t > !network then network := t
    done;
    let overhead =
      cost.Cost_model.superstep_barrier_s
      +. (float_of_int num_partitions *. cost.Cost_model.task_dispatch_s)
    in
    driver_meta :=
      !driver_meta +. (float_of_int num_partitions *. cost.Cost_model.driver_meta_per_task_bytes);
    let stats =
      {
        Trace.step;
        active_edges;
        messages;
        shuffle_groups;
        remote_shuffles;
        updated_vertices = updated;
        broadcast_replicas = bcast;
        remote_broadcasts = remote_bcast;
        wire_bytes = !wire;
        compute_s = compute;
        network_s = !network;
        overhead_s = overhead;
        (* Spark pipelines shuffle fetch with task execution, so wire
           time hides behind compute until it becomes the bottleneck. *)
        time_s = Float.max compute !network +. overhead;
      }
    in
    steps := stats :: !steps;
    (* The telemetry event is derived from the very counters that formed
       [stats], so event-stream aggregates reconcile with the trace
       exactly; when no handle is attached nothing is allocated. *)
    (match telemetry with
    | None -> ()
    | Some t ->
        let max_task = ref 0.0 and min_task = ref Float.infinity in
        Array.iter
          (fun w ->
            let w = scale *. w in
            if w > !max_task then max_task := w;
            if w < !min_task then min_task := w)
          jittered;
        Obs.Telemetry.emit t
          (Obs.Event.Superstep
             {
               step;
               active_vertices = updated;
               active_edges;
               messages;
               local_shuffles = shuffle_groups - remote_shuffles;
               remote_shuffles;
               broadcast_replicas = bcast;
               remote_broadcasts = remote_bcast;
               wire_bytes = stats.Trace.wire_bytes;
               executor_busy_s = busy;
               barrier_wait_s = Array.map (fun b -> compute -. b) busy;
               max_task_s = !max_task;
               min_task_s = (if num_partitions = 0 then 0.0 else !min_task);
               compute_s = stats.Trace.compute_s;
               network_s = stats.Trace.network_s;
               overhead_s = stats.Trace.overhead_s;
               time_s = stats.Trace.time_s;
             }));
    faults_injected := !faults_injected + List.length plan.Faults.announce;
    (match telemetry with
    | None -> ()
    | Some t ->
        List.iter
          (fun (a : Faults.announcement) ->
            Obs.Telemetry.emit t
              (Obs.Event.Fault_injected
                 { step; kind = a.fault_kind; executor = a.fault_executor; detail = a.detail }))
          plan.Faults.announce);
    Option.iter push_speculation spec;
    (* A transient shuffle loss retransmits the executor's egress with
       capped exponential backoff — charged as recovery time, outside the
       superstep's own wire accounting. *)
    (match plan.Faults.loss with
    | None -> ()
    | Some (e, retries) ->
        push_recovery
          (Faults.retry_recovery ~cost ~cluster ~at_step:step ~executor:e
             ~egress_bytes:(scale *. bytes_out.(e)) ~retries));
    !driver_meta > cluster.Cluster.driver_memory_bytes
  in

  (* Build phase: partitioning shuffles every edge to its partition,
     then each partition materializes its local edge array and vertex
     table. One-time, but a large share of short jobs, as in Spark. *)
  begin
    let work = Array.make num_partitions 0.0 in
    let bytes_out = Array.make max_execs 0.0 in
    let bytes_in = Array.make max_execs 0.0 in
    let edge_wire = float_of_int cost.Cost_model.shuffle_edge_bytes in
    for p = 0 to num_partitions - 1 do
      let m_p = float_of_int (Pgraph.num_edges_of_partition pg p) in
      let v_p = float_of_int (Pgraph.local_vertices pg p) in
      work.(p) <-
        (m_p *. cost.Cost_model.build_edge_s) +. (v_p *. cost.Cost_model.build_vertex_s);
      (* Edges arrive from the loading executors; on average
         (executors-1)/executors of them cross the network. *)
      let remote_frac = float_of_int (executors - 1) /. float_of_int executors in
      bytes_out.(exec_of p) <- bytes_out.(exec_of p) +. (m_p *. edge_wire *. remote_frac)
    done;
    ignore
      (finish_superstep ~step:(-1) ~plan:Faults.neutral ~work ~bytes_out ~bytes_in
         ~active_edges:0 ~messages:0 ~shuffle_groups:0 ~remote_shuffles:0 ~updated:0 ~bcast:0
         ~remote_bcast:0)
  end;

  (* Superstep 0: vprog everywhere with the initial message, then a full
     broadcast materializes the replicated vertex views. *)
  let oom = ref false in
  begin
    let work = Array.make num_partitions 0.0 in
    let bytes_out = Array.make max_execs 0.0 in
    let bytes_in = Array.make max_execs 0.0 in
    for v = 0 to n - 1 do
      attrs.(v) <- program.vprog v attrs.(v) program.initial_msg;
      Bytes.unsafe_set active v '\001'
    done;
    let updated, bcast, remote_bcast =
      apply_and_broadcast ~work ~bytes_out ~bytes_in ~run_vprog:true (fun f ->
          for v = 0 to n - 1 do
            f v
          done)
    in
    oom :=
      finish_superstep ~step:0 ~plan:Faults.neutral ~work ~bytes_out ~bytes_in ~active_edges:0
        ~messages:0 ~shuffle_groups:0 ~remote_shuffles:0 ~updated ~bcast ~remote_bcast
  end;

  (* Scale events scheduled before compute superstep [step]: membership
     changes re-home partitions with a priced re-shuffle; spot
     preemptions flow through the Faults recovery machinery as
     involuntary crashes (membership unchanged). Both are pure
     re-accounting — the vertex values never move. *)
  let apply_scale_events ~step =
    Elastic.step_events ert ~step ~num_partitions
      ~partition_bytes:(fun p ->
        scale
        *. (float_of_int (Pgraph.num_edges_of_partition pg p * cost.Cost_model.edge_object_bytes)
           +. float_of_int
                (Pgraph.local_vertices pg p
                * (cost.Cost_model.vertex_object_bytes + program.state_bytes))))
      ~partition_vertices:(fun p -> Pgraph.local_vertices pg p)
      ~attr_wire_bytes ~scale ~bandwidth ~barrier_s:cost.Cost_model.superstep_barrier_s
      ~on_reshuffle:(fun r item ->
        parts_per_exec := compute_parts_per_exec ();
        match telemetry with
        | None -> ()
        | Some t ->
            (match item with
            | Elastic.Join { count; _ } ->
                Obs.Telemetry.emit t
                  (Obs.Event.Executor_join { step; count; executors = r.Trace.executors_after })
            | Elastic.Leave { count; _ } ->
                Obs.Telemetry.emit t
                  (Obs.Event.Executor_leave { step; count; executors = r.Trace.executors_after })
            | Elastic.Preempt _ -> ());
            Obs.Telemetry.emit t
              (Obs.Event.Reshuffle
                 {
                   step;
                   executors_before = r.Trace.executors_before;
                   executors_after = r.Trace.executors_after;
                   moved_partitions = r.Trace.moved_partitions;
                   moved_bytes = r.Trace.moved_bytes;
                   rebroadcast_replicas = r.Trace.rebroadcast_replicas;
                   rebroadcast_bytes = r.Trace.rebroadcast_bytes;
                   reshuffle_s = r.Trace.reshuffle_s;
                 }))
      ~on_preempt:(fun ~executor ~retries ->
        incr faults_injected;
        (match telemetry with
        | None -> ()
        | Some t ->
            Obs.Telemetry.emit t
              (Obs.Event.Fault_injected
                 {
                   step;
                   kind = "preempt";
                   executor;
                   detail =
                     Printf.sprintf "spot instance preempted, %d reacquisition retr%s" retries
                       (if retries = 1 then "y" else "ies");
                 }));
        let lost_edges = ref 0 and lost_vertices = ref 0 in
        for p = 0 to num_partitions - 1 do
          if exec_of p = executor then begin
            lost_edges := !lost_edges + Pgraph.num_edges_of_partition pg p;
            lost_vertices := !lost_vertices + Pgraph.local_vertices pg p
          end
        done;
        push_recovery
          (Faults.preempt_recovery ~cost ~cluster ~scale ~at_step:step ~executor
             ~lost_edges:!lost_edges ~lost_vertices:!lost_vertices
             ~lost_replicas:!lost_vertices ~attr_wire_bytes ~retries))
  in

  let step = ref 1 in
  let continue = ref (not !oom) in
  if !oom then outcome := Trace.Out_of_memory;
  while !continue do
    apply_scale_events ~step:!step;
    let work = Array.make num_partitions 0.0 in
    let bytes_out = Array.make max_execs 0.0 in
    let bytes_in = Array.make max_execs 0.0 in
    let active_edges = ref 0 and messages = ref 0 in
    let shuffle_groups = ref 0 and remote_shuffles = ref 0 in
    Ivec.clear touched;
    (* Message generation, partition by partition. *)
    for p = 0 to num_partitions - 1 do
      let pexec = exec_of p in
      let cur_src = ref 0 and cur_dst = ref 0 in
      let emit dir m =
        let v = match dir with To_src -> !cur_src | To_dst -> !cur_dst in
        incr messages;
        work.(p) <- work.(p) +. cost.Cost_model.msg_merge_s;
        (match plocal.(v) with
        | None ->
            plocal.(v) <- Some m;
            Ivec.push ptouched v
        | Some m0 -> plocal.(v) <- Some (program.merge m0 m));
        (* Count one shuffle aggregate per (vertex, partition) pair. *)
        if last_step.(v) <> !step || last_part.(v) <> p then begin
          last_step.(v) <- !step;
          last_part.(v) <- p;
          incr shuffle_groups;
          let mp = Pgraph.master pg v in
          work.(p) <- work.(p) +. cost.Cost_model.msg_serialize_s;
          if exec_of mp <> pexec then begin
            incr remote_shuffles;
            bytes_out.(pexec) <- bytes_out.(pexec) +. msg_wire_bytes;
            bytes_in.(exec_of mp) <- bytes_in.(exec_of mp) +. msg_wire_bytes;
            work.(mp) <- work.(mp) +. cost.Cost_model.msg_serialize_s
          end
        end
      in
      Pgraph.iter_partition_edges pg p (fun ~edge ~src ~dst ->
          if is_active src || is_active dst then begin
            incr active_edges;
            work.(p) <- work.(p) +. cost.Cost_model.edge_scan_s;
            cur_src := src;
            cur_dst := dst;
            program.send ~edge ~src ~dst ~src_attr:attrs.(src) ~dst_attr:attrs.(dst) ~emit
          end
          else work.(p) <- work.(p) +. cost.Cost_model.edge_skip_s);
      (* Flush this partition's combined partials into the master-side
         accumulator. Partitions are visited in ascending order, so each
         vertex's cross-partition merge is a left fold over ascending
         partition indices; within a flush, vertices appear in
         first-touch (edge) order, which keeps the global [touched]
         order identical to direct per-message merging. *)
      Ivec.iter ptouched (fun v ->
          (match plocal.(v) with
          | None -> assert false
          | Some m -> (
              match msg.(v) with
              | None ->
                  msg.(v) <- Some m;
                  Ivec.push touched v
              | Some m0 -> msg.(v) <- Some (program.merge m0 m)));
          plocal.(v) <- None);
      Ivec.clear ptouched
    done;
    (* Vertex programs at masters, then replica refresh. *)
    Bytes.fill active 0 n '\000';
    Ivec.iter touched (fun v ->
        (match msg.(v) with
        | Some m -> attrs.(v) <- program.vprog v attrs.(v) m
        | None -> assert false);
        msg.(v) <- None;
        Bytes.unsafe_set active v '\001');
    (* The state transition happened above (so broadcast ships the new
       values); apply_and_broadcast only charges the vprog cost and the
       replica refresh. *)
    let updated, bcast, remote_bcast =
      apply_and_broadcast ~work ~bytes_out ~bytes_in ~run_vprog:true (fun f ->
          Ivec.iter touched f)
    in
    let plan =
      match fsession with
      | None -> Faults.neutral
      | Some s -> Faults.plan s ~step:!step
    in
    let hit_driver_limit =
      finish_superstep ~step:!step ~plan ~work ~bytes_out ~bytes_in
        ~active_edges:!active_edges ~messages:!messages ~shuffle_groups:!shuffle_groups
        ~remote_shuffles:!remote_shuffles ~updated ~bcast ~remote_bcast
    in
    let hit_driver_limit =
      match checkpoint_every with
      | Some k when !step mod k = 0 ->
          take_checkpoint ~step:!step;
          false
      | _ -> hit_driver_limit
    in
    (* An executor lost at this superstep's barrier: recover (rollback
       replay or lineage rebuild of its partitions) or, past the failure
       budget, abort the run. Replay is pure re-accounting — the values
       were already computed — so fault-free and faulty runs stay
       bit-identical. *)
    let aborted = ref false in
    (match (plan.Faults.crash, fsession) with
    | Some lost, Some fs -> (
        (* Crash executors were resolved against the initial membership;
           fold them onto a live executor if leaves shrank the cluster. *)
        let lost = lost mod Elastic.live ert in
        match Faults.note_crash fs with
        | `Abort -> aborted := true
        | `Recover -> (
            match (Faults.session_config fs).Faults.mode with
            | Faults.Rollback ->
                let replayed =
                  match !last_ckpt with
                  | Some c ->
                      List.filter (fun (s : Trace.superstep) -> s.Trace.step > c) !steps
                  | None -> !steps
                in
                push_recovery
                  (Faults.rollback_recovery ~cluster ~at_step:!step ~executor:lost
                     ~checkpointed:(!last_ckpt <> None) ~graph_bytes
                     ~load_s:
                       (scale
                       *. float_of_int (Cutfit_graph.Graph_io.size_bytes g)
                       /. (float_of_int executors *. Cluster.storage_bytes_per_s cluster))
                     ~replayed)
            | Faults.Lineage ->
                let lost_edges = ref 0 and lost_vertices = ref 0 in
                for p = 0 to num_partitions - 1 do
                  if exec_of p = lost then begin
                    lost_edges := !lost_edges + Pgraph.num_edges_of_partition pg p;
                    lost_vertices := !lost_vertices + Pgraph.local_vertices pg p
                  end
                done;
                push_recovery
                  (Faults.lineage_recovery ~cost ~cluster ~scale ~at_step:!step ~executor:lost
                     ~lost_edges:!lost_edges ~lost_vertices:!lost_vertices
                     ~lost_replicas:!lost_vertices ~attr_wire_bytes)))
    | _ -> ());
    let exec_peak = Array.fold_left Float.max 0.0 resident in
    if exec_peak > !peak_executor then peak_executor := exec_peak;
    if hit_driver_limit || exec_peak > cluster.Cluster.executor_memory_bytes then begin
      outcome := Trace.Out_of_memory;
      continue := false
    end
    else if !aborted then begin
      outcome := Trace.Aborted;
      continue := false
    end
    else if Ivec.length touched = 0 then begin
      outcome := Trace.Completed;
      continue := false
    end
    else if !step >= max_supersteps then begin
      outcome := Trace.Max_supersteps;
      continue := false
    end
    else incr step
  done;

  let load_s =
    scale
    *. float_of_int (Cutfit_graph.Graph_io.size_bytes g)
    /. (float_of_int executors *. Cluster.storage_bytes_per_s cluster)
  in
  let supersteps = List.rev !steps in
  let total_s =
    List.fold_left
      (fun acc (s : Trace.superstep) -> acc +. s.time_s)
      (load_s +. !checkpoint_s +. !recovery_total +. Elastic.reshuffle_s ert)
      supersteps
  in
  let trace =
    {
      Trace.supersteps;
      load_s;
      checkpoint_s = !checkpoint_s;
      checkpoints = !checkpoints;
      recovery_s = !recovery_total;
      recoveries = List.rev !recoveries;
      faults_injected = !faults_injected;
      speculations = List.rev !speculations;
      speculation_s = !speculation_total;
      reshuffles = Elastic.reshuffles ert;
      reshuffle_s = Elastic.reshuffle_s ert;
      total_s;
      outcome = !outcome;
      peak_executor_bytes = !peak_executor;
      driver_meta_bytes = !driver_meta;
    }
  in
  (match telemetry with
  | None -> ()
  | Some t ->
      let reg = Obs.Telemetry.metrics t in
      Obs.Metric.incr (Obs.Metric.counter reg "bsp.runs");
      Obs.Metric.add (Obs.Metric.counter reg "bsp.messages") (Trace.total_messages trace);
      Obs.Metric.add
        (Obs.Metric.counter reg "bsp.remote_messages")
        (Trace.total_remote_messages trace);
      Obs.Metric.record (Obs.Metric.timer reg "bsp.simulated_s") trace.Trace.total_s;
      Obs.Metric.set (Obs.Metric.gauge reg "bsp.last_wire_bytes") (Trace.total_wire_bytes trace);
      let compute_steps =
        List.fold_left
          (fun acc (s : Trace.superstep) -> if s.Trace.step >= 0 then acc + 1 else acc)
          0 supersteps
      in
      Obs.Metric.add (Obs.Metric.counter reg "bsp.supersteps") compute_steps;
      Obs.Telemetry.emit t
        (Obs.Event.Run_end
           {
             label = "pregel";
             outcome = Trace.outcome_name !outcome;
             supersteps = compute_steps;
             total_s;
             load_s;
             checkpoint_s = !checkpoint_s;
             recovery_s = !recovery_total;
             total_messages = Trace.total_messages trace;
             total_remote = Trace.total_remote_messages trace;
             total_wire_bytes = Trace.total_wire_bytes trace;
           }));
  { attrs; trace }
