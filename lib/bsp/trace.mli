(** Execution traces of simulated BSP runs.

    Every superstep records the work and message quantities the engine
    actually produced, together with the modeled time decomposition. The
    trace is what the experiment harness correlates against the static
    partitioning metrics. *)

type superstep = {
  step : int;  (** -1 is the one-time graph build/partitioning stage *)
  active_edges : int;  (** triplets whose send function ran *)
  messages : int;  (** messages emitted (before local aggregation) *)
  shuffle_groups : int;  (** distinct (vertex, partition) aggregates shuffled *)
  remote_shuffles : int;  (** shuffle groups crossing executors *)
  updated_vertices : int;  (** vertices that ran the vertex program *)
  broadcast_replicas : int;  (** replica copies refreshed from masters *)
  remote_broadcasts : int;  (** replica refreshes crossing executors *)
  wire_bytes : float;
      (** total scaled egress bytes across all executors this superstep —
          the byte total the telemetry layer reconciles against *)
  compute_s : float;  (** modeled executor compute (max over executors) *)
  network_s : float;  (** modeled wire time (max over executors) *)
  overhead_s : float;  (** task dispatch + superstep barrier *)
  time_s : float;  (** max(compute, network) + overhead — shuffle overlaps compute *)
}

type recovery = {
  at_step : int;  (** superstep at whose barrier the fault surfaced *)
  kind : string;  (** "rollback" | "lineage" | "shuffle-retry" | "preempt" *)
  executor : int;  (** the executor that crashed / lost the shuffle *)
  replayed_steps : int;  (** rollback: supersteps replayed since checkpoint *)
  lost_edges : int;  (** lineage: edges rebuilt on the replacement executor *)
  lost_replicas : int;  (** lineage: replica views re-broadcast *)
  recovery_wire_bytes : float;
      (** bytes moved only because of the fault (reshuffle, retransmit) —
          deliberately outside {!superstep.wire_bytes} so the wire-payload
          law over supersteps still holds on faulty runs *)
  recovery_s : float;  (** modeled time charged for this recovery *)
}

type speculation = {
  at_step : int;  (** superstep whose barrier launched the clone *)
  executor : int;  (** the straggling executor whose tasks were cloned *)
  host : int;  (** the least-loaded executor the clone ran on *)
  cloned_partitions : int;  (** tasks re-dispatched to the host *)
  original_busy_s : float;  (** the straggler's (stretched) busy time *)
  clone_busy_s : float;
      (** the clone's finish time from barrier start: host's own busy +
          launch RPC + re-dispatch + re-shuffle + clean re-execution *)
  speculative_compute_s : float;
      (** compute the clone burned re-running the straggler's tasks —
          resource cost charged whether or not the clone won *)
  speculative_wire_bytes : float;
      (** the straggler's shuffle ingress, re-sent to the host —
          deliberately outside {!superstep.wire_bytes} so the
          wire-payload law over supersteps still holds (same convention
          as {!recovery.recovery_wire_bytes}) *)
  won : bool;  (** the clone finished first and its results were taken *)
  saved_s : float;  (** original - clone busy when won, else 0 *)
}

type reshuffle = {
  resh_step : int;  (** superstep before which the membership changed *)
  executors_before : int;
  executors_after : int;
  moved_partitions : int;  (** partitions whose round-robin home moved *)
  moved_bytes : float;  (** scaled resident bytes of the moved partitions *)
  rebroadcast_replicas : int;  (** vertex views re-broadcast from new homes *)
  rebroadcast_bytes : float;
      (** both byte columns are deliberately outside
          {!superstep.wire_bytes}, the same carve-out as
          {!recovery.recovery_wire_bytes} and speculation traffic, so the
          wire-payload law over supersteps still holds on elastic runs *)
  reshuffle_s : float;  (** modeled time the membership change charged *)
}

type outcome =
  | Completed
  | Max_supersteps  (** stopped by the iteration cap (normal for PR/CC) *)
  | Out_of_memory  (** the memory model tripped; the run is invalid *)
  | Aborted  (** executor failures exceeded the fault budget *)

type t = {
  supersteps : superstep list;  (** chronological *)
  load_s : float;  (** reading the dataset from the storage tier *)
  checkpoint_s : float;  (** time spent writing lineage checkpoints *)
  checkpoints : int;  (** how many checkpoints were taken *)
  recovery_s : float;  (** sum of {!recovery.recovery_s} *)
  recoveries : recovery list;  (** chronological *)
  faults_injected : int;  (** faults the schedule fired during this run *)
  speculations : speculation list;  (** chronological *)
  speculation_s : float;
      (** sum of {!speculation.speculative_compute_s} — extra cluster
          compute paid for clones. Deliberately NOT part of [total_s]:
          clones run in parallel with the straggler, so their win (or
          waste) is already reflected in each superstep's [time_s]. *)
  reshuffles : reshuffle list;  (** chronological membership changes *)
  reshuffle_s : float;  (** sum of {!reshuffle.reshuffle_s} *)
  total_s : float;
      (** load + checkpoints + recoveries + reshuffles + all supersteps *)
  outcome : outcome;
  peak_executor_bytes : float;
  driver_meta_bytes : float;
}

val num_supersteps : t -> int
val total_messages : t -> int

val total_remote_messages : t -> int
(** Remote shuffle aggregates plus remote replica refreshes, summed over
    every recorded stage. *)

val total_wire_bytes : t -> float
(** Sum of {!superstep.wire_bytes} over every recorded stage. Recovery
    traffic is accounted separately in {!recovery.recovery_wire_bytes}. *)

val total_network_s : t -> float
val total_compute_s : t -> float
(* lint: unused-export -- aggregate kept for report tooling *)
val total_overhead_s : t -> float

val num_recoveries : t -> int

val num_speculations : t -> int

(* lint: unused-export -- aggregate kept for report tooling *)
val speculation_wins : t -> int
(** How many recorded speculations took the clone's result. *)

(* lint: unused-export -- aggregate kept for report tooling *)
val total_speculative_wire_bytes : t -> float
(** Sum of {!speculation.speculative_wire_bytes}; like recovery
    traffic, outside {!total_wire_bytes}. *)

val num_reshuffles : t -> int

(* lint: unused-export -- aggregate kept for report tooling *)
val total_reshuffle_wire_bytes : t -> float
(** Sum of moved + rebroadcast bytes over every membership change; like
    recovery traffic, outside {!total_wire_bytes}. *)

val completed : t -> bool
(** [true] unless the run ended in {!Out_of_memory} or {!Aborted}. *)

val outcome_name : outcome -> string
(** Stable lowercase name ("completed", "max-supersteps",
    "out-of-memory", "aborted") used in telemetry exports. *)

val pp_summary : Format.formatter -> t -> unit
(* lint: unused-export -- debug printer, kept for toplevel use *)
val pp_superstep : Format.formatter -> superstep -> unit
(* lint: unused-export -- debug printer, kept for toplevel use *)
val pp_recovery : Format.formatter -> recovery -> unit
(* lint: unused-export -- debug printer, kept for toplevel use *)
val pp_speculation : Format.formatter -> speculation -> unit
(* lint: unused-export -- debug printer, kept for toplevel use *)
val pp_reshuffle : Format.formatter -> reshuffle -> unit
