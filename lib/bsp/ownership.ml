(* Shadow write-ownership recorder for the instrumented CSR mode.

   Recording must not itself race: every [write]/[read] appends to the
   calling worker's private log (worker-owned state, the same discipline
   the kernels follow), and all checking happens on the driver domain at
   [barrier], after Par_exec's epoch barrier has already ordered the
   workers' writes before our reads. Merging sorts the records by
   (item, per-item sequence); an item runs as one contiguous call on one
   worker, so that order — and therefore the conflict list — is
   independent of which domain ran what when. *)

type conflict = {
  epoch : int;
  slot : int;
  rule : string;
  first_item : int;
  second_item : int;
}

(* One packed record: kind (0 = write, 1 = read), item, slot. *)
type log = { mutable buf : int array; mutable len : int }

type t = {
  slots : int;
  workers : int;
  mutable epoch : int;
  w_epoch : int array;
  w_item : int array;
  r_epoch : int array;
  r_item : int array;
  logs : log array;
  mutable conflicts : conflict list; (* newest first; [violations] reverses *)
  mutable writes_seen : int;
  mutable reads_seen : int;
}

let create ~slots ~workers =
  if slots < 0 then invalid_arg "Ownership.create: slots < 0";
  if workers < 1 then invalid_arg "Ownership.create: workers < 1";
  {
    slots;
    workers;
    epoch = 1;
    w_epoch = Array.make slots 0;
    w_item = Array.make slots (-1);
    r_epoch = Array.make slots 0;
    r_item = Array.make slots (-1);
    logs = Array.init workers (fun _ -> { buf = Array.make 1024 0; len = 0 });
    conflicts = [];
    writes_seen = 0;
    reads_seen = 0;
  }

let epoch t = t.epoch
let writes_seen t = t.writes_seen
let reads_seen t = t.reads_seen

let append log kind item slot =
  let need = log.len + 3 in
  if need > Array.length log.buf then begin
    let bigger = Array.make (2 * Array.length log.buf) 0 in
    Array.blit log.buf 0 bigger 0 log.len;
    log.buf <- bigger
  end;
  log.buf.(log.len) <- kind;
  log.buf.(log.len + 1) <- item;
  log.buf.(log.len + 2) <- slot;
  log.len <- need

let write t ~worker ~item slot = append t.logs.(worker) 0 item slot
let read t ~worker ~item slot = append t.logs.(worker) 1 item slot

(* Merge the epoch's records in (item, per-item sequence) order and
   replay them against the per-slot shadow stamps. *)
let barrier t =
  let total = ref 0 in
  Array.iter (fun log -> total := !total + (log.len / 3)) t.logs;
  let records = Array.make !total (0, 0, 0, 0) in
  let cursor = ref 0 in
  Array.iter
    (fun log ->
      let seq = Hashtbl.create 16 in
      let i = ref 0 in
      while !i < log.len do
        let kind = log.buf.(!i) and item = log.buf.(!i + 1) and slot = log.buf.(!i + 2) in
        let s = match Hashtbl.find_opt seq item with Some s -> s | None -> 0 in
        Hashtbl.replace seq item (s + 1);
        records.(!cursor) <- (item, s, kind, slot);
        incr cursor;
        i := !i + 3
      done;
      log.len <- 0)
    t.logs;
  Array.sort
    (fun (i1, s1, _, _) (i2, s2, _, _) ->
      match Int.compare i1 i2 with 0 -> Int.compare s1 s2 | c -> c)
    records;
  let conflict rule slot first_item second_item =
    t.conflicts <- { epoch = t.epoch; slot; rule; first_item; second_item } :: t.conflicts
  in
  Array.iter
    (fun (item, _, kind, slot) ->
      if slot >= 0 && slot < t.slots then begin
        if kind = 0 then begin
          t.writes_seen <- t.writes_seen + 1;
          if t.w_epoch.(slot) = t.epoch && t.w_item.(slot) <> item then
            conflict "slot-conflict" slot t.w_item.(slot) item;
          t.w_epoch.(slot) <- t.epoch;
          t.w_item.(slot) <- item
        end
        else begin
          t.reads_seen <- t.reads_seen + 1;
          if t.w_epoch.(slot) = t.epoch then conflict "premature-read" slot t.w_item.(slot) item;
          if t.r_epoch.(slot) = t.epoch && t.r_item.(slot) <> item then
            conflict "consume-conflict" slot t.r_item.(slot) item;
          t.r_epoch.(slot) <- t.epoch;
          t.r_item.(slot) <- item
        end
      end
      else conflict "slot-out-of-range" slot item item)
    records;
  t.epoch <- t.epoch + 1

let violations t = List.rev t.conflicts

let pp_conflict ppf c =
  Format.fprintf ppf "%s: slot %d at epoch %d (items %d and %d)" c.rule c.slot c.epoch
    c.first_item c.second_item
