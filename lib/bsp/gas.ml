module Graph = Cutfit_graph.Graph
module Obs = Cutfit_obs

type direction = Gather_in | Gather_out | Gather_both

type ('v, 'g) program = {
  init : int -> 'v;
  direction : direction;
  gather :
    src:int -> dst:int -> src_attr:'v -> dst_attr:'v -> target:int -> 'g option;
  sum : 'g -> 'g -> 'g;
  apply : int -> 'v -> 'g option -> 'v * bool;
  state_bytes : int;
  gather_bytes : int;
}

type 'v result = { attrs : 'v array; trace : Trace.t }

let run ?(max_iterations = 500) ?(scale = 1.0) ?(cost = Cost_model.default) ?checkpoint_every
    ?faults ?speculation ?elastic ?hetero ?telemetry ~cluster pg program =
  let g = Pgraph.graph pg in
  let n = Graph.num_vertices g in
  let num_partitions = Pgraph.num_partitions pg in
  if cluster.Cluster.num_partitions <> num_partitions then
    invalid_arg "Gas.run: cluster and partitioned graph disagree on partition count";
  let executors = cluster.Cluster.executors in
  let cores = cluster.Cluster.cores_per_executor in
  (* Placement through the elastic runtime, as in Pregel: inert (the
     static round-robin) unless scale events or hetero are given. *)
  let ert = Elastic.runtime ?config:elastic ?hetero ~executors () in
  let max_execs = Elastic.max_executors ert in
  let exec_of p = Elastic.exec_of ert p in
  let bandwidth = Cluster.network_bytes_per_s cluster in

  let attrs = Array.init n program.init in
  let active = Bytes.make n '\001' in
  let is_active v = Bytes.unsafe_get active v <> '\000' in
  let acc : 'g option array = Array.make n None in
  let touched = ref [] in
  (* Partition-local pre-aggregation scratch, flushed into [acc] in
     ascending partition order after each partition's scan — the same
     fixed reduction order as the Pregel engine and the Csr kernels. *)
  let plocal : 'g option array = Array.make n None in
  let ptouched = ref [] in
  let last_part = Array.make n (-1) in
  let last_step = Array.make n (-1) in

  let gather_wire = float_of_int (program.gather_bytes + cost.Cost_model.msg_wire_overhead_bytes) in
  let attr_wire = float_of_int (program.state_bytes + cost.Cost_model.msg_wire_overhead_bytes) in

  let steps = ref [] in
  let driver_meta = ref 0.0 in
  let outcome = ref Trace.Completed in
  let checkpoint_s = ref 0.0 and checkpoints = ref 0 in
  let fsession = Option.map (Faults.session ~executors) faults in
  let recoveries = ref [] in
  let recovery_total = ref 0.0 in
  let faults_injected = ref 0 in
  let last_ckpt = ref None in
  let compute_parts_per_exec () =
    let a = Array.make (Elastic.live ert) 0 in
    for p = 0 to num_partitions - 1 do
      a.(exec_of p) <- a.(exec_of p) + 1
    done;
    a
  in
  let parts_per_exec = ref (compute_parts_per_exec ()) in
  let speculations = ref [] in
  let speculation_total = ref 0.0 in
  let push_speculation (s : Trace.speculation) =
    speculations := s :: !speculations;
    speculation_total := !speculation_total +. s.Trace.speculative_compute_s;
    match telemetry with
    | None -> ()
    | Some t ->
        Obs.Telemetry.emit t
          (Obs.Event.Speculative_launch
             {
               step = s.Trace.at_step;
               executor = s.Trace.executor;
               host = s.Trace.host;
               cloned_partitions = s.Trace.cloned_partitions;
               original_busy_s = s.Trace.original_busy_s;
               clone_busy_s = s.Trace.clone_busy_s;
               wire_bytes = s.Trace.speculative_wire_bytes;
               compute_s = s.Trace.speculative_compute_s;
             });
        if s.Trace.won then
          Obs.Telemetry.emit t
            (Obs.Event.Speculative_win
               {
                 step = s.Trace.at_step;
                 executor = s.Trace.executor;
                 host = s.Trace.host;
                 saved_s = s.Trace.saved_s;
               })
  in
  let push_recovery (r : Trace.recovery) =
    recoveries := r :: !recoveries;
    recovery_total := !recovery_total +. r.Trace.recovery_s;
    match telemetry with
    | None -> ()
    | Some t ->
        Obs.Telemetry.emit t
          (Obs.Event.Recovery
             {
               step = r.Trace.at_step;
               kind = r.Trace.kind;
               executor = r.Trace.executor;
               replayed_steps = r.Trace.replayed_steps;
               lost_edges = r.Trace.lost_edges;
               lost_replicas = r.Trace.lost_replicas;
               wire_bytes = r.Trace.recovery_wire_bytes;
               recovery_s = r.Trace.recovery_s;
             })
  in
  let graph_bytes =
    scale
    *. (float_of_int (Graph.num_edges g * cost.Cost_model.edge_object_bytes)
       +. float_of_int (n * (cost.Cost_model.vertex_object_bytes + program.state_bytes)))
  in
  let take_checkpoint ~step =
    incr checkpoints;
    let write_s =
      graph_bytes /. (float_of_int executors *. Cluster.storage_bytes_per_s cluster)
    in
    checkpoint_s := !checkpoint_s +. write_s;
    driver_meta := 0.0;
    last_ckpt := Some step;
    match telemetry with
    | None -> ()
    | Some t ->
        Obs.Telemetry.emit t (Obs.Event.Checkpoint { step; bytes = graph_bytes; write_s })
  in

  let finish ~step ~plan ~work ~bytes_out ~bytes_in ~active_edges ~messages ~shuffle_groups
      ~remote_shuffles ~updated ~bcast ~remote_bcast =
    let live = Elastic.live ert in
    let jittered = Cost_model.jittered cost ~step work in
    let clean_busy = Array.make live 0.0 in
    let busy = Array.make live 0.0 in
    for e = 0 to live - 1 do
      let mine = ref [] in
      for p = 0 to num_partitions - 1 do
        if exec_of p = e then mine := jittered.(p) :: !mine
      done;
      clean_busy.(e) <-
        scale *. Cost_model.makespan ~work:(Array.of_list !mine) ~cores /. Elastic.speed_of ert e;
      (* Fault plans are realized against the initial membership; late
         joiners past that width run fault-free. *)
      let fault_factor = if e < executors then plan.Faults.compute_factor e else 1.0 in
      busy.(e) <- clean_busy.(e) *. fault_factor
    done;
    let bandwidth_eff = bandwidth *. plan.Faults.network_factor in
    (* Same speculation pass as Pregel: decided from the step's own
       deterministic busy/ingress data, rewriting only the time
       accounting. *)
    let busy, spec =
      match speculation with
      | Some cfg when step >= 1 ->
          Speculation.evaluate cfg ~cost ~bandwidth:bandwidth_eff ~step ~busy ~clean_busy
            ~ingress:(Array.init live (fun e -> scale *. bytes_in.(e)))
            ~partitions:!parts_per_exec
      | _ -> (busy, None)
    in
    let compute = Array.fold_left Float.max 0.0 busy in
    let network = ref 0.0 and wire = ref 0.0 in
    for e = 0 to live - 1 do
      wire := !wire +. (scale *. bytes_out.(e));
      let t = scale *. bytes_out.(e) /. (bandwidth_eff *. Elastic.bandwidth_of ert e) in
      if t > !network then network := t
    done;
    let overhead =
      cost.Cost_model.superstep_barrier_s
      +. (float_of_int num_partitions *. cost.Cost_model.task_dispatch_s)
    in
    driver_meta :=
      !driver_meta +. (float_of_int num_partitions *. cost.Cost_model.driver_meta_per_task_bytes);
    let stats =
      {
        Trace.step;
        active_edges;
        messages;
        shuffle_groups;
        remote_shuffles;
        updated_vertices = updated;
        broadcast_replicas = bcast;
        remote_broadcasts = remote_bcast;
        wire_bytes = !wire;
        compute_s = compute;
        network_s = !network;
        overhead_s = overhead;
        time_s = Float.max compute !network +. overhead;
      }
    in
    steps := stats :: !steps;
    (* Same invariant as Pregel: events are built from the counters that
       formed [stats], never recomputed from static metrics. *)
    (match telemetry with
    | None -> ()
    | Some t ->
        let max_task = ref 0.0 and min_task = ref Float.infinity in
        Array.iter
          (fun w ->
            let w = scale *. w in
            if w > !max_task then max_task := w;
            if w < !min_task then min_task := w)
          jittered;
        Obs.Telemetry.emit t
          (Obs.Event.Superstep
             {
               step;
               active_vertices = updated;
               active_edges;
               messages;
               local_shuffles = shuffle_groups - remote_shuffles;
               remote_shuffles;
               broadcast_replicas = bcast;
               remote_broadcasts = remote_bcast;
               wire_bytes = stats.Trace.wire_bytes;
               executor_busy_s = busy;
               barrier_wait_s = Array.map (fun b -> compute -. b) busy;
               max_task_s = !max_task;
               min_task_s = (if num_partitions = 0 then 0.0 else !min_task);
               compute_s = stats.Trace.compute_s;
               network_s = stats.Trace.network_s;
               overhead_s = stats.Trace.overhead_s;
               time_s = stats.Trace.time_s;
             }));
    faults_injected := !faults_injected + List.length plan.Faults.announce;
    (match telemetry with
    | None -> ()
    | Some t ->
        List.iter
          (fun (a : Faults.announcement) ->
            Obs.Telemetry.emit t
              (Obs.Event.Fault_injected
                 { step; kind = a.fault_kind; executor = a.fault_executor; detail = a.detail }))
          plan.Faults.announce);
    Option.iter push_speculation spec;
    (match plan.Faults.loss with
    | None -> ()
    | Some (e, retries) ->
        push_recovery
          (Faults.retry_recovery ~cost ~cluster ~at_step:step ~executor:e
             ~egress_bytes:(scale *. bytes_out.(e)) ~retries));
    !driver_meta > cluster.Cluster.driver_memory_bytes
  in

  (* Build phase, as in the Pregel engine. *)
  begin
    let work = Array.make num_partitions 0.0 in
    let bytes_out = Array.make max_execs 0.0 in
    let bytes_in = Array.make max_execs 0.0 in
    let remote_frac = float_of_int (executors - 1) /. float_of_int executors in
    for p = 0 to num_partitions - 1 do
      let m_p = float_of_int (Pgraph.num_edges_of_partition pg p) in
      work.(p) <-
        (m_p *. cost.Cost_model.build_edge_s)
        +. (float_of_int (Pgraph.local_vertices pg p) *. cost.Cost_model.build_vertex_s);
      bytes_out.(exec_of p) <-
        bytes_out.(exec_of p)
        +. (m_p *. float_of_int cost.Cost_model.shuffle_edge_bytes *. remote_frac)
    done;
    ignore
      (finish ~step:(-1) ~plan:Faults.neutral ~work ~bytes_out ~bytes_in ~active_edges:0
         ~messages:0 ~shuffle_groups:0 ~remote_shuffles:0 ~updated:0 ~bcast:0 ~remote_bcast:0)
  end;

  (* Scale events before each compute superstep, exactly as in Pregel:
     membership moves are priced re-shuffles, preemptions route through
     the Faults recovery machinery. Pure re-accounting — values never
     move. *)
  let apply_scale_events ~step =
    Elastic.step_events ert ~step ~num_partitions
      ~partition_bytes:(fun p ->
        scale
        *. (float_of_int (Pgraph.num_edges_of_partition pg p * cost.Cost_model.edge_object_bytes)
           +. float_of_int
                (Pgraph.local_vertices pg p
                * (cost.Cost_model.vertex_object_bytes + program.state_bytes))))
      ~partition_vertices:(fun p -> Pgraph.local_vertices pg p)
      ~attr_wire_bytes:attr_wire ~scale ~bandwidth
      ~barrier_s:cost.Cost_model.superstep_barrier_s
      ~on_reshuffle:(fun r item ->
        parts_per_exec := compute_parts_per_exec ();
        match telemetry with
        | None -> ()
        | Some t ->
            (match item with
            | Elastic.Join { count; _ } ->
                Obs.Telemetry.emit t
                  (Obs.Event.Executor_join { step; count; executors = r.Trace.executors_after })
            | Elastic.Leave { count; _ } ->
                Obs.Telemetry.emit t
                  (Obs.Event.Executor_leave { step; count; executors = r.Trace.executors_after })
            | Elastic.Preempt _ -> ());
            Obs.Telemetry.emit t
              (Obs.Event.Reshuffle
                 {
                   step;
                   executors_before = r.Trace.executors_before;
                   executors_after = r.Trace.executors_after;
                   moved_partitions = r.Trace.moved_partitions;
                   moved_bytes = r.Trace.moved_bytes;
                   rebroadcast_replicas = r.Trace.rebroadcast_replicas;
                   rebroadcast_bytes = r.Trace.rebroadcast_bytes;
                   reshuffle_s = r.Trace.reshuffle_s;
                 }))
      ~on_preempt:(fun ~executor ~retries ->
        incr faults_injected;
        (match telemetry with
        | None -> ()
        | Some t ->
            Obs.Telemetry.emit t
              (Obs.Event.Fault_injected
                 {
                   step;
                   kind = "preempt";
                   executor;
                   detail =
                     Printf.sprintf "spot instance preempted, %d reacquisition retr%s" retries
                       (if retries = 1 then "y" else "ies");
                 }));
        let lost_edges = ref 0 and lost_vertices = ref 0 in
        for p = 0 to num_partitions - 1 do
          if exec_of p = executor then begin
            lost_edges := !lost_edges + Pgraph.num_edges_of_partition pg p;
            lost_vertices := !lost_vertices + Pgraph.local_vertices pg p
          end
        done;
        push_recovery
          (Faults.preempt_recovery ~cost ~cluster ~scale ~at_step:step ~executor
             ~lost_edges:!lost_edges ~lost_vertices:!lost_vertices
             ~lost_replicas:!lost_vertices ~attr_wire_bytes:attr_wire ~retries))
  in

  let step = ref 0 in
  let continue = ref true in
  while !continue do
    apply_scale_events ~step:!step;
    let work = Array.make num_partitions 0.0 in
    let bytes_out = Array.make max_execs 0.0 in
    let bytes_in = Array.make max_execs 0.0 in
    let active_edges = ref 0 and messages = ref 0 in
    let shuffle_groups = ref 0 and remote_shuffles = ref 0 in
    touched := [];
    (* Gather: mirrors pre-aggregate per partition; one partial sum per
       (vertex, partition) ships to the master. *)
    for p = 0 to num_partitions - 1 do
      let pexec = exec_of p in
      let contribute target value =
        incr messages;
        work.(p) <- work.(p) +. cost.Cost_model.msg_merge_s;
        (match plocal.(target) with
        | None ->
            plocal.(target) <- Some value;
            ptouched := target :: !ptouched
        | Some g0 -> plocal.(target) <- Some (program.sum g0 value));
        if last_step.(target) <> !step || last_part.(target) <> p then begin
          last_step.(target) <- !step;
          last_part.(target) <- p;
          incr shuffle_groups;
          work.(p) <- work.(p) +. cost.Cost_model.msg_serialize_s;
          let mp = Pgraph.master pg target in
          if exec_of mp <> pexec then begin
            incr remote_shuffles;
            bytes_out.(pexec) <- bytes_out.(pexec) +. gather_wire;
            bytes_in.(exec_of mp) <- bytes_in.(exec_of mp) +. gather_wire;
            work.(mp) <- work.(mp) +. cost.Cost_model.msg_serialize_s
          end
        end
      in
      Pgraph.iter_partition_edges pg p (fun ~edge:_ ~src ~dst ->
          let dst_gathers =
            (program.direction = Gather_in || program.direction = Gather_both) && is_active dst
          in
          let src_gathers =
            (program.direction = Gather_out || program.direction = Gather_both) && is_active src
          in
          if dst_gathers || src_gathers then begin
            incr active_edges;
            work.(p) <- work.(p) +. cost.Cost_model.edge_scan_s;
            let emit target =
              match
                program.gather ~src ~dst ~src_attr:attrs.(src) ~dst_attr:attrs.(dst) ~target
              with
              | Some v -> contribute target v
              | None -> ()
            in
            if dst_gathers then emit dst;
            if src_gathers then emit src
          end
          else work.(p) <- work.(p) +. cost.Cost_model.edge_skip_s);
      (* Flush the partition's partial sums into the master-side
         accumulator; each vertex holds at most one partial per
         partition, so the per-vertex cross-partition sum is a left fold
         over ascending partition indices. *)
      List.iter
        (fun target ->
          (match plocal.(target) with
          | None -> assert false
          | Some value -> (
              match acc.(target) with
              | None ->
                  acc.(target) <- Some value;
                  touched := target :: !touched
              | Some g0 -> acc.(target) <- Some (program.sum g0 value)));
          plocal.(target) <- None)
        !ptouched;
      ptouched := []
    done;
    (* Apply at masters: every active vertex recomputes, whether or not
       an edge contributed. Scatter ships changed state to mirrors. *)
    let updated = ref 0 and bcast = ref 0 and remote_bcast = ref 0 in
    let next_active = Bytes.make n '\000' in
    let apply_vertex v =
      let total = acc.(v) in
      acc.(v) <- None;
      let state, stay = program.apply v attrs.(v) total in
      let changed = state <> attrs.(v) in
      attrs.(v) <- state;
      if stay then Bytes.unsafe_set next_active v '\001';
      let mp = Pgraph.master pg v in
      work.(mp) <- work.(mp) +. cost.Cost_model.vprog_s;
      if changed then begin
        incr updated;
        let mexec = exec_of mp in
        Pgraph.iter_replicas pg v (fun q ->
            incr bcast;
            work.(mp) <- work.(mp) +. cost.Cost_model.msg_serialize_s;
            if exec_of q <> mexec then begin
              incr remote_bcast;
              bytes_out.(mexec) <- bytes_out.(mexec) +. attr_wire;
              bytes_in.(exec_of q) <- bytes_in.(exec_of q) +. attr_wire
            end);
        (* Scatter signals the neighbours, GraphLab-style, so data-driven
           programs (stay = false) still propagate. *)
        let signal u = Bytes.unsafe_set next_active u '\001' in
        Graph.iter_out g v signal;
        Graph.iter_in g v signal
      end
    in
    for v = 0 to n - 1 do
      if is_active v then apply_vertex v
    done;
    (* Vertices that only received contributions (inactive but pulled
       into this round by an active neighbour) do not apply in pure
       sync-GAS; clear their leftovers. *)
    List.iter (fun v -> acc.(v) <- None) !touched;
    Bytes.blit next_active 0 active 0 n;
    let plan =
      match fsession with
      | None -> Faults.neutral
      | Some s -> Faults.plan s ~step:!step
    in
    let hit_driver =
      finish ~step:!step ~plan ~work ~bytes_out ~bytes_in ~active_edges:!active_edges
        ~messages:!messages ~shuffle_groups:!shuffle_groups ~remote_shuffles:!remote_shuffles
        ~updated:!updated ~bcast:!bcast ~remote_bcast:!remote_bcast
    in
    let hit_driver =
      match checkpoint_every with
      | Some k when !step >= 1 && !step mod k = 0 ->
          take_checkpoint ~step:!step;
          false
      | _ -> hit_driver
    in
    (* Same crash semantics as Pregel: recovery is pure re-accounting, so
       the converged values never change. *)
    let aborted = ref false in
    (match (plan.Faults.crash, fsession) with
    | Some lost, Some fs -> (
        (* Crash executors were resolved against the initial membership;
           fold them onto a live executor if leaves shrank the cluster. *)
        let lost = lost mod Elastic.live ert in
        match Faults.note_crash fs with
        | `Abort -> aborted := true
        | `Recover -> (
            match (Faults.session_config fs).Faults.mode with
            | Faults.Rollback ->
                let replayed =
                  match !last_ckpt with
                  | Some c ->
                      List.filter (fun (s : Trace.superstep) -> s.Trace.step > c) !steps
                  | None -> !steps
                in
                push_recovery
                  (Faults.rollback_recovery ~cluster ~at_step:!step ~executor:lost
                     ~checkpointed:(!last_ckpt <> None) ~graph_bytes
                     ~load_s:
                       (scale
                       *. float_of_int (Cutfit_graph.Graph_io.size_bytes g)
                       /. (float_of_int executors *. Cluster.storage_bytes_per_s cluster))
                     ~replayed)
            | Faults.Lineage ->
                let lost_edges = ref 0 and lost_vertices = ref 0 in
                for p = 0 to num_partitions - 1 do
                  if exec_of p = lost then begin
                    lost_edges := !lost_edges + Pgraph.num_edges_of_partition pg p;
                    lost_vertices := !lost_vertices + Pgraph.local_vertices pg p
                  end
                done;
                push_recovery
                  (Faults.lineage_recovery ~cost ~cluster ~scale ~at_step:!step ~executor:lost
                     ~lost_edges:!lost_edges ~lost_vertices:!lost_vertices
                     ~lost_replicas:!lost_vertices ~attr_wire_bytes:attr_wire)))
    | _ -> ());
    let any_active =
      let rec scan v = v < n && (is_active v || scan (v + 1)) in
      scan 0
    in
    if hit_driver then begin
      outcome := Trace.Out_of_memory;
      continue := false
    end
    else if !aborted then begin
      outcome := Trace.Aborted;
      continue := false
    end
    else if not any_active then begin
      outcome := Trace.Completed;
      continue := false
    end
    else if !step + 1 >= max_iterations then begin
      outcome := Trace.Max_supersteps;
      continue := false
    end
    else incr step
  done;

  let load_s =
    scale
    *. float_of_int (Cutfit_graph.Graph_io.size_bytes g)
    /. (float_of_int executors *. Cluster.storage_bytes_per_s cluster)
  in
  let supersteps = List.rev !steps in
  let total_s =
    List.fold_left
      (fun a (s : Trace.superstep) -> a +. s.time_s)
      (load_s +. !checkpoint_s +. !recovery_total +. Elastic.reshuffle_s ert)
      supersteps
  in
  let trace =
    {
      Trace.supersteps;
      load_s;
      checkpoint_s = !checkpoint_s;
      checkpoints = !checkpoints;
      recovery_s = !recovery_total;
      recoveries = List.rev !recoveries;
      faults_injected = !faults_injected;
      speculations = List.rev !speculations;
      speculation_s = !speculation_total;
      reshuffles = Elastic.reshuffles ert;
      reshuffle_s = Elastic.reshuffle_s ert;
      total_s;
      outcome = !outcome;
      peak_executor_bytes = 0.0;
      driver_meta_bytes = !driver_meta;
    }
  in
  (match telemetry with
  | None -> ()
  | Some t ->
      let reg = Obs.Telemetry.metrics t in
      Obs.Metric.incr (Obs.Metric.counter reg "bsp.runs");
      Obs.Metric.add (Obs.Metric.counter reg "bsp.messages") (Trace.total_messages trace);
      Obs.Metric.add
        (Obs.Metric.counter reg "bsp.remote_messages")
        (Trace.total_remote_messages trace);
      Obs.Metric.record (Obs.Metric.timer reg "bsp.simulated_s") trace.Trace.total_s;
      Obs.Metric.set (Obs.Metric.gauge reg "bsp.last_wire_bytes") (Trace.total_wire_bytes trace);
      let compute_steps =
        List.fold_left
          (fun acc (s : Trace.superstep) -> if s.Trace.step >= 0 then acc + 1 else acc)
          0 supersteps
      in
      Obs.Metric.add (Obs.Metric.counter reg "bsp.supersteps") compute_steps;
      Obs.Telemetry.emit t
        (Obs.Event.Run_end
           {
             label = "gas";
             outcome = Trace.outcome_name !outcome;
             supersteps = compute_steps;
             total_s;
             load_s;
             checkpoint_s = !checkpoint_s;
             recovery_s = !recovery_total;
             total_messages = Trace.total_messages trace;
             total_remote = Trace.total_remote_messages trace;
             total_wire_bytes = Trace.total_wire_bytes trace;
           }));
  { attrs; trace }
