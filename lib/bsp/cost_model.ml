type t = {
  build_edge_s : float;
  build_vertex_s : float;
  shuffle_edge_bytes : int;
  edge_scan_s : float;
  msg_merge_s : float;
  msg_wire_overhead_bytes : int;
  msg_serialize_s : float;
  vprog_s : float;
  task_dispatch_s : float;
  superstep_barrier_s : float;
  cut_vertex_reduce_s : float;
  array_element_s : float;
  intersect_probe_s : float;
  edge_skip_s : float;
  edge_object_bytes : int;
  vertex_object_bytes : int;
  driver_meta_per_task_bytes : float;
  gc_jitter : float;
  retry_backoff_base_s : float;
  retry_backoff_cap_s : float;
  speculation_rpc_s : float;
}

let default =
  {
    build_edge_s = 1.5e-6;
    build_vertex_s = 1.0e-6;
    shuffle_edge_bytes = 20;
    edge_scan_s = 8.0e-7;
    msg_merge_s = 4.0e-7;
    msg_wire_overhead_bytes = 12;
    msg_serialize_s = 6.0e-7;
    vprog_s = 5.0e-7;
    task_dispatch_s = 4.0e-4;
    superstep_barrier_s = 1.0e-2;
    cut_vertex_reduce_s = 4.0e-4;
    array_element_s = 2.5e-8;
    intersect_probe_s = 1.0e-7;
    edge_skip_s = 3.5e-7;
    edge_object_bytes = 48;
    vertex_object_bytes = 96;
    driver_meta_per_task_bytes = 2.0e6;
    gc_jitter = 0.6;
    retry_backoff_base_s = 0.05;
    retry_backoff_cap_s = 2.0;
    speculation_rpc_s = 2.0e-3;
  }

(* Total backoff time charged for [retries] successive shuffle retry
   attempts: base * (2^0 + 2^1 + ...), each term capped. *)
let retry_backoff t ~retries =
  let rec go i acc =
    if i >= retries then acc
    else
      let d =
        Float.min t.retry_backoff_cap_s (t.retry_backoff_base_s *. (2.0 ** float_of_int i))
      in
      go (i + 1) (acc +. d)
  in
  go 0 0.0

(* Deterministic per-(task, superstep) work multiplier modelling JVM
   jitter (GC pauses, JIT warmup): uniform in [1, 1 + gc_jitter]. Task
   heterogeneity is what makes finer-grained scheduling pack better —
   the granularity effect the paper reports for CC and TR. *)
let jitter t ~partition ~step =
  let h =
    Cutfit_prng.Splitmix64.mix64
      (Int64.add (Int64.mul (Int64.of_int (partition + 1)) 0x9E3779B97F4A7C15L)
         (Int64.of_int (step + 7)))
  in
  let u = Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.0 in
  1.0 +. (t.gc_jitter *. u)

let jittered t ~step work =
  Array.mapi (fun partition w -> w *. jitter t ~partition ~step) work

let makespan ~work ~cores =
  if cores <= 0 then invalid_arg "Cost_model.makespan: cores <= 0";
  let total = Array.fold_left ( +. ) 0.0 work in
  let biggest = Array.fold_left max 0.0 work in
  Float.max biggest (total /. float_of_int cores)
