(** Synchronous gather–apply–scatter engine (PowerGraph semantics).

    The paper's related work (Verma et al.) compares partitioning
    strategies across GraphX, PowerGraph and PowerLyra and finds that no
    single strategy wins everywhere; this engine runs the same
    vertex-cut partitioned graph under PowerGraph's execution model so
    the repo can reproduce that cross-engine comparison:

    - {b gather}: every active vertex pulls a contribution from each of
      its (in/out/both) edges; contributions are pre-aggregated inside
      each edge partition (at the vertex's mirrors) and the partial sums
      are shipped to the master — communication proportional to the
      {e active} vertices' replica counts, unlike Pregel's
      changed-vertex broadcast;
    - {b apply}: the master combines the partials and computes the new
      state, deciding whether the vertex stays active;
    - {b scatter}: changed state is shipped back to all mirrors and the
      vertex's neighbours are signalled (re-activated), GraphLab-style,
      so data-driven programs propagate even when [apply] deactivates
      the vertex itself.

    Costs are accounted with the same cluster model as {!Pregel}
    (makespan with jitter, overlapped network, task overheads, driver
    lineage), so times from the two engines are directly comparable. *)

type direction = Gather_in | Gather_out | Gather_both

type ('v, 'g) program = {
  init : int -> 'v;  (** initial vertex state *)
  direction : direction;  (** which incident edges a vertex gathers over *)
  gather :
    src:int -> dst:int -> src_attr:'v -> dst_attr:'v -> target:int -> 'g option;
      (** contribution of one edge to [target] (one of its endpoints);
          [None] contributes nothing *)
  sum : 'g -> 'g -> 'g;  (** commutative, associative combiner *)
  apply : int -> 'v -> 'g option -> 'v * bool;
      (** new state from the gathered total ([None] if no edge
          contributed) and whether the vertex stays active *)
  state_bytes : int;
  gather_bytes : int;
}

type 'v result = { attrs : 'v array; trace : Trace.t }

val run :
  ?max_iterations:int ->
  ?scale:float ->
  ?cost:Cost_model.t ->
  ?checkpoint_every:int ->
  ?faults:Faults.config ->
  ?speculation:Speculation.config ->
  ?elastic:Elastic.config ->
  ?hetero:Elastic.hetero ->
  ?telemetry:Cutfit_obs.Telemetry.t ->
  cluster:Cluster.t ->
  Pgraph.t ->
  ('v, 'g) program ->
  'v result
(** Run until no vertex remains active or [max_iterations] (default
    500). All vertices start active. [telemetry] streams one
    {!Cutfit_obs.Event.Superstep} per stage and a closing [Run_end]
    labelled ["gas"], exactly as {!Pregel.run} does. [checkpoint_every]
    [faults] and [speculation] carry the same checkpoint /
    fault-injection / straggler-mitigation semantics as {!Pregel.run}:
    faults and speculation perturb only the time accounting, never the
    converged attributes. [elastic] and [hetero] carry {!Pregel.run}'s
    scale-event and host-capability semantics, with the same
    time-and-locality-only perturbation guarantee. *)
