(** Log-binned histograms.

    Degree distributions of social graphs span four-plus orders of
    magnitude; Figure 1 of the paper shows them on log-log axes. A
    base-2 log-binned histogram reproduces that shape compactly. *)

type bin = { lo : int; hi : int; count : int }
(** Half-open value range [\[lo, hi)] and the number of samples in it. *)

val log2_bins : int array -> bin list
(** Log-binned histogram of non-negative integers. Zero values get their
    own [\[0,1)] bin; bin boundaries are powers of two. Empty bins are
    omitted. *)

val linear_bins : ?bins:int -> float array -> (float * float * int) list
(** [(lo, hi, count)] triples over equal-width bins spanning the sample
    range (default 20 bins). @raise Invalid_argument on empty input. *)

(* lint: unused-export -- debug printer, kept for toplevel use *)
val pp_log2 : Format.formatter -> bin list -> unit
(** Render one bin per line as ["[lo,hi): count"]. *)
