(** Correlation coefficients.

    The paper's headline analysis correlates execution time against each
    partitioning metric (Pearson, reported as percentages like "95%").
    Spearman is provided as a robustness check on the same data. *)

val pearson : float array -> float array -> float
(** Pearson product-moment correlation of two equal-length samples.
    Returns 0 when either sample is constant.
    @raise Invalid_argument on length mismatch or fewer than 2 points. *)

val spearman : float array -> float array -> float
(** Rank correlation (average ranks for ties). Same error conditions. *)

(* lint: unused-export -- percent-scaled variant for report tooling *)
val pearson_pct : float array -> float array -> float
(** Pearson coefficient as a percentage, the paper's reporting unit. *)
