(** Descriptive statistics over float samples. *)

val mean : float array -> float
(** Arithmetic mean; 0 for an empty sample. *)

val variance : float array -> float
(** Population variance (divides by n); 0 for fewer than 2 samples. *)

val stdev : float array -> float
(** Population standard deviation — the definition behind the paper's
    PartStDev metric. *)

val min_max : float array -> float * float
(** @raise Invalid_argument on an empty sample. *)

val quantile : float array -> float -> float
(** [quantile xs q] with [0 <= q <= 1], linear interpolation between
    order statistics. @raise Invalid_argument on an empty sample. *)

val median : float array -> float

type ptiles = { p50 : float; p95 : float; p99 : float }

val percentiles : float array -> ptiles
(** Nearest-rank p50/p95/p99: each is the smallest sample with at least
    [q * n] samples at or below it — no interpolation, so the result is
    always a value that actually occurred (the convention for tail
    latencies). Deterministic. @raise Invalid_argument on empty. *)

val pp_ptiles : Format.formatter -> ptiles -> unit

type t = { n : int; mean : float; stdev : float; min : float; max : float; median : float }

val describe : float array -> t
(** All of the above in one pass-ish. @raise Invalid_argument on empty. *)

(* lint: unused-export -- debug printer, kept for toplevel use *)
val pp : Format.formatter -> t -> unit
