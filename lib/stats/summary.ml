let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    acc /. float_of_int n
  end

let stdev xs = sqrt (variance xs)

let min_max xs =
  if Array.length xs = 0 then invalid_arg "Summary.min_max: empty sample";
  Array.fold_left (fun (lo, hi) x -> (min lo x, max hi x)) (xs.(0), xs.(0)) xs

let quantile xs q =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Summary.quantile: empty sample";
  if q < 0.0 || q > 1.0 then invalid_arg "Summary.quantile: q out of [0,1]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (floor pos) and hi = int_of_float (ceil pos) in
  let frac = pos -. float_of_int lo in
  (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

let median xs = quantile xs 0.5

type ptiles = { p50 : float; p95 : float; p99 : float }

(* Nearest-rank percentile: the smallest sample such that at least
   [q * n] samples are <= it (sorted.(ceil (q * n)) - 1). Unlike
   [quantile] this never interpolates, so every reported percentile is
   a value that actually occurred — the right definition for tail
   latencies, and trivially deterministic. *)
let nearest_rank sorted q =
  let n = Array.length sorted in
  let rank = int_of_float (ceil (q *. float_of_int n)) in
  let idx = max 0 (min (n - 1) (rank - 1)) in
  sorted.(idx)

let percentiles xs =
  if Array.length xs = 0 then invalid_arg "Summary.percentiles: empty sample";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  { p50 = nearest_rank sorted 0.50; p95 = nearest_rank sorted 0.95; p99 = nearest_rank sorted 0.99 }

let pp_ptiles ppf p =
  Format.fprintf ppf "p50=%.4g p95=%.4g p99=%.4g" p.p50 p.p95 p.p99

type t = { n : int; mean : float; stdev : float; min : float; max : float; median : float }

let describe xs =
  let lo, hi = min_max xs in
  { n = Array.length xs; mean = mean xs; stdev = stdev xs; min = lo; max = hi; median = median xs }

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%.4g stdev=%.4g min=%.4g median=%.4g max=%.4g" t.n t.mean t.stdev
    t.min t.median t.max
