(** Streaming vertex-cut partitioners (extension baselines).

    The paper's related-work section points at streaming partitioning
    (Fennel, Stanton–Kliot) as the state of the art beyond hash
    families. These three classic vertex-cut streaming algorithms are
    implemented as ablation baselines for the A1 experiment:

    - {b DBH} (degree-based hashing): hash each edge by its
      lower-degree endpoint, so hub vertices are the ones replicated.
    - {b Greedy} (PowerGraph): place each edge where its endpoints
      already live, tie-breaking toward the least loaded partition.
    - {b HDRF} (high-degree replicated first): greedy with a degree-
      aware score; the [lambda] parameter trades replication for
      balance.
    - {b Hybrid} (PowerLyra's hybrid-cut): destination-grouped placement
      for low-in-degree vertices, source-hashed spreading for hubs; the
      threshold is the in-degree at which a vertex counts as a hub. *)

type t = Dbh | Greedy | Hdrf of float | Hybrid of int

val to_string : t -> string
val of_string : string -> t option
(* lint: unused-export -- debug printer, kept for toplevel use *)
val pp : Format.formatter -> t -> unit

val assign : t -> num_partitions:int -> Cutfit_graph.Graph.t -> int array
(** [assign t ~num_partitions g] maps each edge index of [g] to a
    partition, processing edges in stream (build) order. Deterministic.
    @raise Invalid_argument if [num_partitions <= 0]. *)
