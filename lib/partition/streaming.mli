(** Streaming vertex-cut partitioners (extension baselines).

    The paper's related-work section points at streaming partitioning
    (Fennel, Stanton–Kliot) as the state of the art beyond hash
    families. These three classic vertex-cut streaming algorithms are
    implemented as ablation baselines for the A1 experiment:

    - {b DBH} (degree-based hashing): hash each edge by its
      lower-degree endpoint, so hub vertices are the ones replicated.
    - {b Greedy} (PowerGraph): place each edge where its endpoints
      already live, tie-breaking toward the least loaded partition.
    - {b HDRF} (high-degree replicated first): greedy with a degree-
      aware score; the [lambda] parameter trades replication for
      balance.
    - {b Hybrid} (PowerLyra's hybrid-cut): destination-grouped placement
      for low-in-degree vertices, source-hashed spreading for hubs; the
      threshold is the in-degree at which a vertex counts as a hub.

    Each heuristic is a pure choice function over an abstract {!view} of
    the stream state, so the same placement rules drive both the offline
    {!assign} stream and the incremental repartitioner of
    [Cutfit_dynamic], which rebuilds the view from a cached cut. *)

type t = Dbh | Greedy | Hdrf of float | Hybrid of int

val to_string : t -> string
val of_string : string -> t option
(* lint: unused-export -- debug printer, kept for toplevel use *)
val pp : Format.formatter -> t -> unit

type live
(** Mutable stream state: per-vertex replica sets, per-partition edge
    loads and streamed degrees — what the heuristics accumulate while
    placing edges one at a time. *)

val live_create : n:int -> num_partitions:int -> live
(** Empty state for a graph with [n] vertices.
    @raise Invalid_argument if [num_partitions <= 0]. *)

val live_record : live -> src:int -> dst:int -> int -> unit
(** [live_record st ~src ~dst p] accounts one edge placed on partition
    [p]: both endpoints gain a replica on [p] (if absent), [p]'s load
    and both streamed degrees increment. *)

type view = {
  v_replicas : int -> int list;  (** partitions already holding the vertex *)
  v_load : int -> int;  (** edges placed on the partition so far *)
  v_degree : int -> int;  (** streamed (partial) degree, for HDRF *)
  v_total_degree : int -> int;  (** full degree, for DBH's hash key *)
  v_in_degree : int -> int;  (** full in-degree, for Hybrid's hub test *)
}
(** Read-only window the choice functions consult. *)

val live_view : Cutfit_graph.Graph.t -> live -> view
(** View over [live] state, with full degrees read from the graph. *)

val choose : t -> view -> num_partitions:int -> src:int -> dst:int -> int
(** One streaming placement decision for the edge [src -> dst] given the
    current [view]. Pure: callers account the result with
    {!live_record} themselves (the hashing heuristics DBH / Hybrid need
    no accounting). *)

val assign : ?order:int64 -> t -> num_partitions:int -> Cutfit_graph.Graph.t -> int array
(** [assign t ~num_partitions g] maps each edge index of [g] to a
    partition, processing edges in stream (build) order — or, with
    [?order], in a seeded Fisher–Yates permutation of that order (the
    result stays indexed by original edge id). Deterministic either
    way: a fixed [order] seed reproduces the assignment bit-exactly.
    @raise Invalid_argument if [num_partitions <= 0]. *)
