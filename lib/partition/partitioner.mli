(** Unified partitioner interface.

    A partitioner is anything that maps each edge of a graph to one of N
    partitions: the paper's six hash/modulo strategies, the streaming
    extensions, or a user-provided function. *)

type t =
  | Hash of Strategy.t  (** one of the paper's six strategies *)
  | Stream of Streaming.t  (** a streaming extension baseline *)
  | Incremental of Streaming.t
      (** the dynamic-graph wrapper around a streaming heuristic: a cold
          start assigns exactly like [Stream], but mutation deltas are
          repaired in place ({!Cutfit_dynamic.Incremental.refresh})
          instead of re-streaming the whole edge list *)
  | Custom of string * (num_partitions:int -> Cutfit_graph.Graph.t -> int array)
      (** named user-defined assignment *)

val paper_six : t list
(** [Hash] wrappers of {!Strategy.all}. *)

val streaming_baselines : t list
(** DBH, Greedy, HDRF(1.0) and Hybrid(100). *)

val name : t -> string

val of_string : string -> t option
(** Parses paper abbreviations, streaming names, and ["inc-<name>"] for
    the incremental wrapper (e.g. ["inc-greedy"]). *)

(* lint: unused-export -- debug printer, kept for toplevel use *)
val pp : Format.formatter -> t -> unit

val capability : speeds:float array -> executors:int -> t
(** Capability-aware placement for heterogeneous clusters: a [Custom]
    partitioner (named ["capability"]) whose partitions are weighted by
    the speed multiplier of their home executor ([p mod executors], the
    standard cluster mapping — executors beyond the [speeds] array get
    weight 1.0). Each edge is placed by a full-avalanche pair hash into
    the speed-weighted cumulative range it falls in, so faster hosts
    receive proportionally more edges. Deterministic in the edge list.
    @raise Invalid_argument if [executors <= 0] or any speed is
    non-positive. *)

val assign : t -> num_partitions:int -> Cutfit_graph.Graph.t -> int array
(** [assign t ~num_partitions g] returns the partition of every edge
    index. The result always has length [Graph.num_edges g] and values
    in [\[0, num_partitions)]. @raise Invalid_argument if
    [num_partitions <= 0]. *)
