(** Partitioning characterization metrics (paper §3.1, Tables 2–3).

    Given an edge-to-partition assignment, a vertex is {e present} in
    every partition that holds at least one of its edges — GraphX
    reconstructs a local vertex table per edge partition. From the
    presence relation the paper derives:

    - {b Balance}: edges in the biggest partition over the mean.
    - {b NonCut}: vertices present in exactly one partition.
    - {b Cut}: vertices present in more than one partition.
    - {b CommCost}: total presence count over cut vertices — the number
      of replica synchronisation messages per BSP superstep.
    - {b PartStDev}: standard deviation of edges per partition. *)

type t = {
  num_partitions : int;
  edges_per_partition : int array;
  vertices_per_partition : int array;
  balance : float;
  non_cut : int;
  cut : int;
  comm_cost : int;
  part_stdev : float;
  replication_factor : float;  (** mean replicas per (non-isolated) vertex *)
  vertices_to_same : int;
      (** vertex copies collocated with their (identity-hash) master
          partition — synchronized locally *)
  vertices_to_other : int;
      (** vertex copies living away from their master — each one is a
          shipped state update. The paper's section 3.1 identity holds:
          [comm_cost + non_cut = vertices_to_same + vertices_to_other]. *)
}

val compute : Cutfit_graph.Graph.t -> num_partitions:int -> int array -> t
(** [compute g ~num_partitions assignment] with [assignment] as produced
    by {!Partitioner.assign}. O(E + V * num_partitions / 64).
    @raise Invalid_argument on a malformed assignment. *)

val replica_count : Cutfit_graph.Graph.t -> num_partitions:int -> int array -> int array
(** Per-vertex number of partitions the vertex is present in (0 for
    isolated vertices). *)

val metric_value : t -> string -> float
(** Look up a metric by its paper name ("Balance", "NonCut", "Cut",
    "CommCost", "PartStDev"); used by the correlation harness.
    @raise Invalid_argument on an unknown name. *)

val metric_names : string list
(** The five paper metrics, in Tables 2–3 column order. *)

(* lint: unused-export -- schema listing for report tooling *)
val extended_metric_names : string list
(** The five paper metrics plus VtxToSame, VtxToOther and Replication. *)

val pp : Format.formatter -> t -> unit
(** One row in Table 2/3 column order. *)
