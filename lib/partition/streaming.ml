module Graph = Cutfit_graph.Graph
module Splitmix64 = Cutfit_prng.Splitmix64

type t = Dbh | Greedy | Hdrf of float | Hybrid of int

let to_string = function
  | Dbh -> "DBH"
  | Greedy -> "Greedy"
  | Hdrf lambda -> Printf.sprintf "HDRF(%.2g)" lambda
  | Hybrid threshold -> Printf.sprintf "Hybrid(%d)" threshold

let of_string s =
  match String.lowercase_ascii s with
  | "dbh" -> Some Dbh
  | "greedy" -> Some Greedy
  | "hdrf" -> Some (Hdrf 1.0)
  | "hybrid" -> Some (Hybrid 100)
  | _ -> None

let pp ppf t = Format.pp_print_string ppf (to_string t)

(* Shared streaming state: which partitions each vertex already touches
   and how loaded each partition is. Replica lists stay tiny (bounded by
   the replication factor), so linear scans beat sets here. *)
type live = {
  replicas : int list array;  (* vertex -> partitions seen so far *)
  load : int array;  (* partition -> edges placed *)
  degree : int array;  (* running (streamed) degree per vertex *)
}

let live_create ~n ~num_partitions =
  if num_partitions <= 0 then invalid_arg "Streaming.live_create: num_partitions <= 0";
  { replicas = Array.make n []; load = Array.make num_partitions 0; degree = Array.make n 0 }

let place st v p = if not (List.mem p st.replicas.(v)) then st.replicas.(v) <- p :: st.replicas.(v)

let live_record st ~src ~dst p =
  place st src p;
  place st dst p;
  st.load.(p) <- st.load.(p) + 1;
  st.degree.(src) <- st.degree.(src) + 1;
  st.degree.(dst) <- st.degree.(dst) + 1

(* The heuristics only ever consult the stream through this read-only
   view, so the same choice functions serve both the offline [assign]
   stream and the incremental repartitioner in [lib/dynamic], which
   reconstructs the view from a cached cut instead of an edge stream. *)
type view = {
  v_replicas : int -> int list;
  v_load : int -> int;
  v_degree : int -> int;  (* streamed (partial) degree, for HDRF *)
  v_total_degree : int -> int;  (* full degree, for DBH's hash key *)
  v_in_degree : int -> int;  (* full in-degree, for Hybrid's hub test *)
}

let live_view g st =
  {
    v_replicas = (fun v -> st.replicas.(v));
    v_load = (fun p -> st.load.(p));
    v_degree = (fun v -> st.degree.(v));
    v_total_degree = (fun v -> Graph.out_degree g v + Graph.in_degree g v);
    v_in_degree = (fun v -> Graph.in_degree g v);
  }

let has_replica vw v p = List.mem p (vw.v_replicas v)

let least_loaded vw candidates =
  match candidates with
  | [] -> invalid_arg "Streaming.least_loaded: no candidates"
  | first :: rest ->
      List.fold_left (fun best p -> if vw.v_load p < vw.v_load best then p else best) first rest

let intersect a b = List.filter (fun p -> List.mem p b) a

let greedy_choice vw ~src ~dst ~num_partitions =
  (* PowerGraph's rules: both endpoints share a partition -> use it;
     one endpoint placed -> follow it; otherwise least loaded overall. *)
  let rs = vw.v_replicas src and rd = vw.v_replicas dst in
  match (rs, rd) with
  | [], [] -> least_loaded vw (List.init num_partitions Fun.id)
  | [], _ -> least_loaded vw rd
  | _, [] -> least_loaded vw rs
  | _, _ -> (
      match intersect rs rd with
      | [] -> least_loaded vw (rs @ rd)
      | common -> least_loaded vw common)

let hdrf_choice vw ~lambda ~src ~dst ~num_partitions =
  (* Petroni et al. (2015): score(p) = C_rep(p) + lambda * C_bal(p).
     The replication term prefers partitions already holding the
     endpoint with the lower partial degree, so high-degree vertices
     get replicated first. *)
  let d_src = float_of_int (vw.v_degree src + 1) and d_dst = float_of_int (vw.v_degree dst + 1) in
  let theta_src = d_src /. (d_src +. d_dst) in
  let theta_dst = 1.0 -. theta_src in
  let max_load = ref 0 and min_load = ref max_int in
  for p = 0 to num_partitions - 1 do
    let l = vw.v_load p in
    if l > !max_load then max_load := l;
    if l < !min_load then min_load := l
  done;
  let max_load = !max_load and min_load = !min_load in
  let spread = float_of_int (max_load - min_load) +. 1.0 in
  let score p =
    let g v theta = if has_replica vw v p then 1.0 +. (1.0 -. theta) else 0.0 in
    let c_rep = g src theta_src +. g dst theta_dst in
    let c_bal = lambda *. (float_of_int (max_load - vw.v_load p) /. spread) in
    c_rep +. c_bal
  in
  let best = ref 0 and best_score = ref neg_infinity in
  for p = 0 to num_partitions - 1 do
    let s = score p in
    if s > !best_score then begin
      best := p;
      best_score := s
    end
  done;
  !best

let choose t vw ~num_partitions ~src ~dst =
  match t with
  | Hybrid threshold ->
      (* PowerLyra's hybrid-cut: edges into a low-in-degree vertex are
         grouped by destination (locality for the many cheap vertices);
         edges into high-in-degree hubs are spread by source so no
         single partition absorbs a hub's whole in-neighbourhood. *)
      let key = if vw.v_in_degree dst <= threshold then dst else src in
      Hashing.hash1 key ~num_partitions
  | Dbh ->
      let key = if vw.v_total_degree src <= vw.v_total_degree dst then src else dst in
      Hashing.hash1 key ~num_partitions
  | Greedy -> greedy_choice vw ~src ~dst ~num_partitions
  | Hdrf lambda -> hdrf_choice vw ~lambda ~src ~dst ~num_partitions

(* Seeded Fisher-Yates over edge indices; the output assignment stays
   indexed by original edge id whatever order the stream visits them. *)
let permutation ~seed m =
  let perm = Array.init m Fun.id in
  let rng = Splitmix64.create seed in
  for i = m - 1 downto 1 do
    let j = Splitmix64.next_int rng (i + 1) in
    let tmp = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- tmp
  done;
  perm

let assign ?order t ~num_partitions g =
  if num_partitions <= 0 then invalid_arg "Streaming.assign: num_partitions <= 0";
  let n = Graph.num_vertices g and m = Graph.num_edges g in
  let st = live_create ~n ~num_partitions in
  let vw = live_view g st in
  let stateful = match t with Greedy | Hdrf _ -> true | Dbh | Hybrid _ -> false in
  let out = Array.make m 0 in
  let step i =
    let src = Graph.edge_src g i and dst = Graph.edge_dst g i in
    let p = choose t vw ~num_partitions ~src ~dst in
    if stateful then live_record st ~src ~dst p;
    out.(i) <- p
  in
  (match order with
  | None ->
      for i = 0 to m - 1 do
        step i
      done
  | Some seed -> Array.iter step (permutation ~seed m));
  out
