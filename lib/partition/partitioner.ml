module Graph = Cutfit_graph.Graph

type t =
  | Hash of Strategy.t
  | Stream of Streaming.t
  | Incremental of Streaming.t
  | Custom of string * (num_partitions:int -> Graph.t -> int array)

let paper_six = List.map (fun s -> Hash s) Strategy.all
let streaming_baselines =
  [ Stream Streaming.Dbh; Stream Streaming.Greedy; Stream (Streaming.Hdrf 1.0);
    Stream (Streaming.Hybrid 100) ]

let name = function
  | Hash s -> Strategy.to_string s
  | Stream s -> Streaming.to_string s
  | Incremental s -> "inc-" ^ Streaming.to_string s
  | Custom (n, _) -> n

(* "inc-<heuristic>" selects the incremental wrapper: cold-start
   identical to the wrapped streaming heuristic, but declaring that
   mutation deltas should be repaired in place by
   [Cutfit_dynamic.Incremental.refresh] rather than re-streamed. *)
let of_string s =
  match Strategy.of_string s with
  | Some st -> Some (Hash st)
  | None -> (
      match Streaming.of_string s with
      | Some st -> Some (Stream st)
      | None ->
          let prefix = "inc-" in
          let plen = String.length prefix in
          if String.length s > plen && String.equal (String.lowercase_ascii (String.sub s 0 plen)) prefix
          then
            match Streaming.of_string (String.sub s plen (String.length s - plen)) with
            | Some st -> Some (Incremental st)
            | None -> None
          else None)

let pp ppf t = Format.pp_print_string ppf (name t)

(* Capability-aware placement for heterogeneous clusters: each
   partition's capacity is weighted by the speed of its home executor
   (the standard [p mod executors] mapping), and every edge lands in the
   partition whose speed-weighted cumulative range covers its pair hash.
   Faster hosts therefore receive proportionally more edges while the
   partition -> executor mapping itself stays untouched. *)
let capability ~speeds ~executors =
  if executors <= 0 then invalid_arg "Partitioner.capability: executors <= 0";
  Array.iter
    (fun s -> if s <= 0.0 then invalid_arg "Partitioner.capability: speed <= 0")
    speeds;
  let speed e = if e < Array.length speeds then speeds.(e) else 1.0 in
  let unit_hash u v =
    let h =
      Cutfit_prng.Splitmix64.mix64
        (Int64.logxor
           (Int64.mul (Int64.of_int u) 0x9E3779B97F4A7C15L)
           (Int64.add (Int64.mul (Int64.of_int v) 0xBF58476D1CE4E5B9L) 0x94D049BB133111EBL))
    in
    Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.0
  in
  let assign ~num_partitions g =
    let cum = Array.make (num_partitions + 1) 0.0 in
    for p = 0 to num_partitions - 1 do
      cum.(p + 1) <- cum.(p) +. speed (p mod executors)
    done;
    let total = cum.(num_partitions) in
    let locate u =
      let target = u *. total in
      let lo = ref 0 and hi = ref num_partitions in
      (* invariant: cum.(lo) <= target < cum.(hi) except at the edges *)
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if cum.(mid) <= target then lo := mid else hi := mid
      done;
      !lo
    in
    let m = Graph.num_edges g in
    let out = Array.make m 0 in
    for i = 0 to m - 1 do
      out.(i) <- locate (unit_hash (Graph.edge_src g i) (Graph.edge_dst g i))
    done;
    out
  in
  Custom ("capability", assign)

let assign t ~num_partitions g =
  if num_partitions <= 0 then invalid_arg "Partitioner.assign: num_partitions <= 0";
  match t with
  | Hash strategy ->
      let m = Graph.num_edges g in
      let out = Array.make m 0 in
      for i = 0 to m - 1 do
        out.(i) <-
          Strategy.edge_partition strategy ~num_partitions ~src:(Graph.edge_src g i)
            ~dst:(Graph.edge_dst g i)
      done;
      out
  | Stream s | Incremental s -> Streaming.assign s ~num_partitions g
  | Custom (_, f) ->
      let out = f ~num_partitions g in
      if Array.length out <> Graph.num_edges g then
        invalid_arg "Partitioner.assign: custom partitioner returned wrong length";
      Array.iter
        (fun p ->
          if p < 0 || p >= num_partitions then
            invalid_arg "Partitioner.assign: custom partition out of range")
        out;
      out
