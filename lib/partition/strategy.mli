(** The six hash/modulo vertex-cut strategies evaluated in the paper.

    Four ship with GraphX:
    - {b RVC} (Random Vertex Cut): hash of the ordered (src, dst) pair;
      collocates all same-direction parallel edges.
    - {b 1D} (Edge Partition 1D): hash of the source id; collocates every
      edge leaving a vertex.
    - {b 2D} (Edge Partition 2D): grid of ceil(sqrt N) columns by source
      hash and rows by destination hash; bounds vertex replication by
      2*sqrt(N).
    - {b CRVC} (Canonical Random Vertex Cut): hash of the unordered pair;
      collocates the two directions of a reciprocated edge.

    Two are the paper's proposals, dropping the hash to expose any
    locality carried by raw vertex ids:
    - {b SC} (Source Cut): source id modulo N.
    - {b DC} (Destination Cut): destination id modulo N. *)

type t = Rvc | One_d | Two_d | Crvc | Sc | Dc

val all : t list
(** In the paper's presentation order: RVC, 1D, 2D, CRVC, SC, DC. *)

val to_string : t -> string
(** Paper abbreviation: "RVC", "1D", "2D", "CRVC", "SC", "DC". *)

val of_string : string -> t option
(** Case-insensitive inverse of {!to_string}. *)

(* lint: unused-export -- debug printer, kept for toplevel use *)
val pp : Format.formatter -> t -> unit

val edge_partition : t -> num_partitions:int -> src:int -> dst:int -> int
(** Partition index for one edge; pure, so an edge's placement never
    depends on the rest of the graph (the defining property of the
    hash-family strategies). @raise Invalid_argument if
    [num_partitions <= 0] or an endpoint id is negative. *)
