(** Dynamic-graph sanitizer suite (["dynamic"]).

    Three laws tie the dynamic subsystem to the frozen-graph world:

    + {b delta-identity} — a delta-applied graph is bit-identical (edge
      arrays, vertex count, hence CSR adjacency) to a from-scratch
      {!Cutfit_graph.Graph.create} over the independently maintained
      edge list;
    + {b cut laws} — a refreshed cut passes every
      {!Cutfit_check.Pgraph_check} / {!Cutfit_check.Metrics_check} law a
      cold-built cut does;
    + {b refresh-rebuild-equivalence} — algorithm values on the
      refreshed cut are bit-identical to a cold rebuild of the same
      assignment.

    Like every suite, the checks report {!Cutfit_check.Violation.t}
    values and never raise on law breaches. *)

val suite : string

val graph_identity :
  expect:Cutfit_graph.Graph.t -> Cutfit_graph.Graph.t -> Cutfit_check.Violation.t list
(** Law 1 on one pair: is [got] bit-identical to [expect]? Reports are
    capped at 8 per call. *)

val cut_laws : Cutfit_graph.Graph.t -> num_partitions:int -> int array -> Cutfit_check.Violation.t list
(** Law 2 on one cut: raw-assignment shape, then the full
    [Pgraph_check]/[Metrics_check] battery over the built pgraph. *)

val value_equivalence :
  ?cluster:Cutfit_bsp.Cluster.t ->
  ?iterations:int ->
  Cutfit_graph.Graph.t ->
  num_partitions:int ->
  int array ->
  Cutfit_check.Violation.t list
(** Law 3 on one cut: PageRank (default 3 iterations) digests equal
    between the cut and a cold rebuild of a copied assignment. *)

val validate :
  ?cluster:Cutfit_bsp.Cluster.t ->
  ?batches:int ->
  heuristic:Cutfit_partition.Streaming.t ->
  num_partitions:int ->
  Mutation.config ->
  Cutfit_graph.Graph.t ->
  Cutfit_check.Violation.t list
(** Walk batches [1..batches] (default {!Mutation.max_batch}) from a
    fresh [heuristic] cut of the graph, refreshing incrementally and
    checking all three laws at every non-empty batch.
    @raise Invalid_argument if [num_partitions <= 0]. *)
