(** Priced refresh-vs-rebuild decisions.

    For every mutation batch two options compete: {e refresh} the live
    cut ({!Incremental.refresh} — per-edge online placement, local
    delete repair, mirror re-broadcast for moved replicas) or {e
    rebuild} it from scratch (the advisor's full partition-build
    prediction). Both are priced through the same
    {!Cutfit_bsp.Cost_model}/{!Cutfit_bsp.Cluster} the simulator and
    advisor use, and the cheaper one wins. *)

type choice = Refresh | Rebuild

val choice_name : choice -> string
(** ["refresh"] | ["rebuild"]. *)

val refresh_price :
  ?cost:Cutfit_bsp.Cost_model.t ->
  ?cluster:Cutfit_bsp.Cluster.t ->
  ?scale:float ->
  placed_edges:int ->
  repaired_vertices:int ->
  moved_replicas:int ->
  unit ->
  float
(** Modeled seconds to refresh a cut in place: streaming placement and
    shuffle of the inserted edges, local table repair for delete-touched
    vertices, mirror re-broadcast of moved replicas, one barrier. *)

val rebuild_price :
  ?cost:Cutfit_bsp.Cost_model.t ->
  ?cluster:Cutfit_bsp.Cluster.t ->
  ?scale:float ->
  Cutfit_graph.Graph.t ->
  Cutfit_partition.Metrics.t ->
  float
(** Modeled seconds to rebuild the cut of the (post-delta) graph from
    scratch: the advisor's build prediction over the per-partition shape
    of [metrics] (the pre-delta cut is the natural estimate) plus the
    storage load of the whole graph. *)

type decision = {
  batch : int;
  inserts : int;
  deletes : int;
  refresh_s : float;
  rebuild_s : float;
  choice : choice;
  placed_edges : int;
  repaired_vertices : int;
  moved_replicas : int;
  edges_after : int;
}

val decide :
  ?cost:Cutfit_bsp.Cost_model.t ->
  ?cluster:Cutfit_bsp.Cluster.t ->
  ?scale:float ->
  batch:int ->
  delta:Mutation.delta ->
  old_metrics:Cutfit_partition.Metrics.t ->
  Incremental.refreshed ->
  decision
(** Price both options for one refreshed batch and pick the cheaper
    (ties go to refresh). *)

val emit_events :
  ?telemetry:Cutfit_obs.Telemetry.t ->
  graph_name:string ->
  at_s:float ->
  edges_before:int ->
  decision ->
  unit
(** Emit the {!Cutfit_obs.Event.Mutation_batch} /
    {!Cutfit_obs.Event.Repartition} pair for one decision (no-op without
    telemetry). *)

type step = {
  decision : decision;
  graph : Cutfit_graph.Graph.t;  (** post-batch graph *)
  assignment : int array;  (** the cut actually adopted *)
  metrics : Cutfit_partition.Metrics.t;  (** of the adopted cut *)
}

val run :
  ?cost:Cutfit_bsp.Cost_model.t ->
  ?cluster:Cutfit_bsp.Cluster.t ->
  ?scale:float ->
  ?telemetry:Cutfit_obs.Telemetry.t ->
  ?batches:int ->
  heuristic:Cutfit_partition.Streaming.t ->
  num_partitions:int ->
  Mutation.config ->
  Cutfit_graph.Graph.t ->
  step list
(** The standalone mutation driver behind [cutfit mutate]: stream an
    initial cut with [heuristic], then walk batches [1..batches]
    (default {!Mutation.max_batch}), refreshing or re-streaming per the
    priced decision. Batches whose delta is empty are skipped. Emits
    one event pair per non-empty batch when [telemetry] is given.
    @raise Invalid_argument if [num_partitions <= 0] or [batches < 1]. *)
