module Graph = Cutfit_graph.Graph
module Graph_io = Cutfit_graph.Graph_io
module Streaming = Cutfit_partition.Streaming
module Metrics = Cutfit_partition.Metrics
module Cluster = Cutfit_bsp.Cluster
module Cost_model = Cutfit_bsp.Cost_model
module Event = Cutfit_obs.Event
module Telemetry = Cutfit_obs.Telemetry

type choice = Refresh | Rebuild

let choice_name = function Refresh -> "refresh" | Rebuild -> "rebuild"

(* Refresh: each inserted edge pays its streaming placement and shuffle,
   each repaired vertex a local table update, and each moved replica a
   mirror re-broadcast — plus one barrier to commit the refreshed cut.
   The per-item work scales with the paper-size factor like every other
   simulated cost, but the commit barrier is a single synchronization,
   not a per-unit-of-scale one: a few dozen repaired edges never pay a
   full distributed build's worth of barriers. *)
let refresh_price ?(cost = Cost_model.default) ?(cluster = Cluster.config_i) ?(scale = 1.0)
    ~placed_edges ~repaired_vertices ~moved_replicas () =
  let place_s = float_of_int placed_edges *. cost.Cost_model.build_edge_s in
  let repair_s =
    float_of_int (repaired_vertices + moved_replicas) *. cost.Cost_model.build_vertex_s
  in
  let shuffle_bytes =
    float_of_int placed_edges *. float_of_int cost.Cost_model.shuffle_edge_bytes
  in
  let broadcast_bytes =
    float_of_int moved_replicas *. float_of_int cost.Cost_model.vertex_object_bytes
  in
  let network_s = (shuffle_bytes +. broadcast_bytes) /. Cluster.network_bytes_per_s cluster in
  (scale *. (place_s +. repair_s +. network_s)) +. cost.Cost_model.superstep_barrier_s

(* Rebuild: the advisor's full partition-build prediction — per-executor
   build work and shuffle from the cut's per-partition shape, plus the
   storage load of the whole (post-delta) graph. [metrics] describes the
   cut whose shape the rebuild is expected to reproduce; the pre-delta
   cut is the natural estimate. *)
let rebuild_price ?(cost = Cost_model.default) ?(cluster = Cluster.config_i) ?(scale = 1.0) g
    (m : Metrics.t) =
  let executors = cluster.Cluster.executors in
  let cores = cluster.Cluster.cores_per_executor in
  let per_exec_work = Array.make executors 0.0 in
  let per_exec_bytes = Array.make executors 0.0 in
  let remote_frac = float_of_int (executors - 1) /. float_of_int executors in
  Array.iteri
    (fun p e_p ->
      let e = p mod executors in
      let v_p = float_of_int m.Metrics.vertices_per_partition.(p) in
      let e_p = float_of_int e_p in
      per_exec_work.(e) <-
        per_exec_work.(e)
        +. (e_p *. cost.Cost_model.build_edge_s)
        +. (v_p *. cost.Cost_model.build_vertex_s);
      per_exec_bytes.(e) <-
        per_exec_bytes.(e)
        +. (e_p *. float_of_int cost.Cost_model.shuffle_edge_bytes *. remote_frac))
    m.Metrics.edges_per_partition;
  let compute =
    Array.fold_left (fun acc w -> Float.max acc (w /. float_of_int cores)) 0.0 per_exec_work
  in
  let network =
    Array.fold_left
      (fun acc b -> Float.max acc (b /. Cluster.network_bytes_per_s cluster))
      0.0 per_exec_bytes
  in
  let load =
    float_of_int (Graph_io.size_bytes g)
    /. (float_of_int executors *. Cluster.storage_bytes_per_s cluster)
  in
  let overhead =
    cost.Cost_model.superstep_barrier_s
    +. (float_of_int m.Metrics.num_partitions *. cost.Cost_model.task_dispatch_s)
  in
  scale *. (load +. Float.max compute network +. overhead)

type decision = {
  batch : int;
  inserts : int;
  deletes : int;
  refresh_s : float;
  rebuild_s : float;
  choice : choice;
  placed_edges : int;
  repaired_vertices : int;
  moved_replicas : int;
  edges_after : int;
}

let decide ?cost ?cluster ?scale ~batch ~delta ~old_metrics (r : Incremental.refreshed) =
  let refresh_s =
    refresh_price ?cost ?cluster ?scale ~placed_edges:r.Incremental.placed_edges
      ~repaired_vertices:r.Incremental.repaired_vertices
      ~moved_replicas:r.Incremental.moved_replicas ()
  in
  let rebuild_s = rebuild_price ?cost ?cluster ?scale r.Incremental.graph old_metrics in
  {
    batch;
    inserts = Array.length delta.Mutation.inserts;
    deletes = Array.length delta.Mutation.deletes;
    refresh_s;
    rebuild_s;
    choice = (if refresh_s <= rebuild_s then Refresh else Rebuild);
    placed_edges = r.Incremental.placed_edges;
    repaired_vertices = r.Incremental.repaired_vertices;
    moved_replicas = r.Incremental.moved_replicas;
    edges_after = Graph.num_edges r.Incremental.graph;
  }

let emit_events ?telemetry ~graph_name ~at_s ~edges_before (d : decision) =
  match telemetry with
  | None -> ()
  | Some tel ->
      Telemetry.emit tel
        (Event.Mutation_batch
           {
             batch = d.batch;
             graph = graph_name;
             inserts = d.inserts;
             deletes = d.deletes;
             edges_before;
             edges_after = d.edges_after;
             at_s;
           });
      Telemetry.emit tel
        (Event.Repartition
           {
             batch = d.batch;
             graph = graph_name;
             choice = choice_name d.choice;
             refresh_s = d.refresh_s;
             rebuild_s = d.rebuild_s;
             placed_edges = d.placed_edges;
             repaired_vertices = d.repaired_vertices;
             moved_replicas = d.moved_replicas;
             at_s;
           })

type step = {
  decision : decision;
  graph : Graph.t;
  assignment : int array;
  metrics : Metrics.t;
}

let run ?cost ?cluster ?scale ?telemetry ?batches ~heuristic ~num_partitions cfg g0 =
  if num_partitions <= 0 then invalid_arg "Repartition.run: num_partitions <= 0";
  let batches = match batches with Some b -> b | None -> Mutation.max_batch cfg in
  if batches < 1 then invalid_arg "Repartition.run: batches < 1";
  let steps = ref [] in
  let g = ref g0 in
  let a = ref (Streaming.assign heuristic ~num_partitions g0) in
  let metrics = ref (Metrics.compute g0 ~num_partitions !a) in
  for batch = 1 to batches do
    let delta = Mutation.plan cfg ~batch !g in
    if not (Mutation.is_empty delta) then begin
      let edges_before = Graph.num_edges !g in
      let refreshed =
        Incremental.refresh heuristic ~num_partitions ~graph:!g ~assignment:!a delta
      in
      let d = decide ?cost ?cluster ?scale ~batch ~delta ~old_metrics:!metrics refreshed in
      emit_events ?telemetry ~graph_name:"-" ~at_s:0.0 ~edges_before d;
      (g := refreshed.Incremental.graph);
      (a :=
         match d.choice with
         | Refresh -> refreshed.Incremental.assignment
         | Rebuild -> Streaming.assign heuristic ~num_partitions refreshed.Incremental.graph);
      metrics := Metrics.compute !g ~num_partitions !a;
      steps := { decision = d; graph = !g; assignment = !a; metrics = !metrics } :: !steps
    end
  done;
  List.rev !steps
