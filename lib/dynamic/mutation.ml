module Graph = Cutfit_graph.Graph
module Splitmix64 = Cutfit_prng.Splitmix64

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type kind = Ins | Del

type item = { kind : kind; from_batch : int; to_batch : int; edges : int }

type config = { items : item list; raw : string; seed : int }

let parse_int what s =
  match int_of_string_opt (String.trim s) with
  | Some v -> v
  | None -> fail "mutations: %s is not an integer: %S" what s

let parse_window s =
  match String.index_opt s '-' with
  | None ->
      let b = parse_int "batch" s in
      (b, b)
  | Some i ->
      let b = parse_int "batch" (String.sub s 0 i) in
      let c = parse_int "batch" (String.sub s (i + 1) (String.length s - i - 1)) in
      if c < b then fail "mutations: backwards batch window %d-%d" b c;
      (b, c)

let parse_item part =
  let kind_s, rest =
    match String.index_opt part '@' with
    | None -> fail "mutations: missing '@' in %S (expected e.g. ins@1:r64)" part
    | Some i -> (String.sub part 0 i, String.sub part (i + 1) (String.length part - i - 1))
  in
  let kind =
    match String.lowercase_ascii (String.trim kind_s) with
    | "ins" -> Ins
    | "del" -> Del
    | other -> fail "mutations: unknown mutation kind %S (want ins or del)" other
  in
  let window_s, edges =
    match String.index_opt rest ':' with
    | None -> (rest, 32)
    | Some i ->
        let opt = String.trim (String.sub rest (i + 1) (String.length rest - i - 1)) in
        if String.length opt < 2 || opt.[0] <> 'r' then
          fail "mutations: unknown option %S in %S (only rN is allowed)" opt part;
        ( String.sub rest 0 i,
          parse_int "edge count" (String.sub opt 1 (String.length opt - 1)) )
  in
  let from_batch, to_batch = parse_window (String.trim window_s) in
  if from_batch < 1 then fail "mutations: batches are numbered from 1 (got %d)" from_batch;
  if edges < 1 then fail "mutations: edge count must be >= 1 (got %d)" edges;
  { kind; from_batch; to_batch; edges }

let parse_spec raw =
  let parts =
    String.split_on_char ',' raw |> List.map String.trim |> List.filter (fun s -> s <> "")
  in
  if parts = [] then fail "mutations: empty spec";
  List.map parse_item parts

let config ?(seed = 42) raw = { items = parse_spec raw; raw; seed }

let describe cfg = Printf.sprintf "%s (seed %d)" cfg.raw cfg.seed

let covers batch it = it.from_batch <= batch && batch <= it.to_batch

(* Items covering the same batch pool their edge counts, so the draws
   below stay keyed purely by (seed, batch, i) whatever the spec's
   decomposition into items. *)
let batch_counts cfg ~batch =
  List.fold_left
    (fun (ins, del) it ->
      if covers batch it then
        match it.kind with Ins -> (ins + it.edges, del) | Del -> (ins, del + it.edges)
      else (ins, del))
    (0, 0) cfg.items

let max_batch cfg = List.fold_left (fun acc it -> max acc it.to_batch) 1 cfg.items

type delta = {
  batch : int;
  inserts : (int * int) array;  (** (src, dst) pairs appended in draw order *)
  deletes : int array;  (** pre-delta edge ids, strictly ascending *)
}

let is_empty d = Array.length d.inserts = 0 && Array.length d.deletes = 0

(* Stateless keyed draw, the same splitmix idiom as Faults: every edge
   of every batch is a pure function of (seed, batch, i), so a batch can
   be regenerated independently of any PRNG call history. Inserts use
   salt 2*batch, deletes 2*batch+1. *)
let draw ~seed ~salt ~k =
  Splitmix64.mix64
    (Int64.logxor
       (Int64.mul (Int64.of_int seed) 0x9E3779B97F4A7C15L)
       (Int64.add (Int64.mul (Int64.of_int salt) 0xBF58476D1CE4E5B9L) (Int64.of_int k)))

let draw_mod h m = Int64.to_int (Int64.rem (Int64.shift_right_logical h 1) (Int64.of_int m))

let plan cfg ~batch g =
  if batch < 1 then invalid_arg "Mutation.plan: batch < 1";
  let n = Graph.num_vertices g in
  let m = Graph.num_edges g in
  let ins_count, del_count = batch_counts cfg ~batch in
  let inserts =
    if n < 2 then [||] (* too small to host a non-loop edge *)
    else
      Array.init ins_count (fun i ->
          let src = draw_mod (draw ~seed:cfg.seed ~salt:(2 * batch) ~k:(2 * i)) n in
          let dst = draw_mod (draw ~seed:cfg.seed ~salt:(2 * batch) ~k:(2 * i + 1)) n in
          let dst = if dst = src then (dst + 1) mod n else dst in
          (src, dst))
  in
  let del_count = min del_count m in
  let deletes =
    if del_count = 0 then [||]
    else begin
      (* Distinct victims by linear probing: at most del_count <= m ids
         are ever marked, so the probe always finds a free slot. *)
      let picked = Array.make m false in
      for i = 0 to del_count - 1 do
        let e = ref (draw_mod (draw ~seed:cfg.seed ~salt:((2 * batch) + 1) ~k:i) m) in
        while picked.(!e) do
          e := (!e + 1) mod m
        done;
        picked.(!e) <- true
      done;
      let out = Array.make del_count 0 in
      let j = ref 0 in
      for e = 0 to m - 1 do
        if picked.(e) then begin
          out.(!j) <- e;
          incr j
        end
      done;
      out
    end
  in
  { batch; inserts; deletes }

let kept g d =
  let m = Graph.num_edges g in
  let dead = Array.make m false in
  Array.iter
    (fun e ->
      if e < 0 || e >= m then invalid_arg "Mutation: delete edge id out of range";
      dead.(e) <- true)
    d.deletes;
  let keep = Array.make (m - Array.length d.deletes) 0 in
  let j = ref 0 in
  for e = 0 to m - 1 do
    if not dead.(e) then begin
      keep.(!j) <- e;
      incr j
    end
  done;
  keep

let apply g d =
  let n = Graph.num_vertices g in
  let keep = kept g d in
  let k = Array.length keep and extra = Array.length d.inserts in
  let src = Array.make (k + extra) 0 and dst = Array.make (k + extra) 0 in
  Array.iteri
    (fun j e ->
      src.(j) <- Graph.edge_src g e;
      dst.(j) <- Graph.edge_dst g e)
    keep;
  Array.iteri
    (fun i (s, t) ->
      if s < 0 || s >= n || t < 0 || t >= n then
        invalid_arg "Mutation: inserted endpoint out of range";
      src.(k + i) <- s;
      dst.(k + i) <- t)
    d.inserts;
  Graph.create ~n ~src ~dst
