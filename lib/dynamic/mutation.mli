(** Seeded edge-mutation batches.

    The paper evaluates frozen edge lists, but its Twitter-scale
    datasets imply a continuously mutating graph. This module generates
    reproducible insert/delete batches from a compact spec in the style
    of the fault DSL ({!Cutfit_bsp.Faults}):

    {v ins@B[-C][:rN] , del@B[-C][:rN] v}

    [ins@3:r64] inserts 64 random edges at batch 3; [del@2-5:r16]
    deletes 16 random edges at each of batches 2..5; items are
    comma-separated and batches are numbered from 1. [rN] defaults to
    [r32]. Every drawn edge is a pure splitmix64 function of
    (seed, batch, i) — batch [k] can be regenerated without replaying
    batches [1..k-1].

    Applying a delta rebuilds the graph with {!Cutfit_graph.Graph.create}
    (kept edges in build order, inserts appended), so the result is a
    first-class frozen graph: CSR adjacency, freezability and all
    [Graph] invariants are preserved by construction. *)

exception Parse_error of string
(** Malformed spec, with a human-readable reason. *)

type kind = Ins | Del

type item = { kind : kind; from_batch : int; to_batch : int; edges : int }

type config = { items : item list; raw : string; seed : int }

val parse_spec : string -> item list
(** @raise Parse_error on malformed input. *)

val config : ?seed:int -> string -> config
(** [config raw] parses [raw] (default [seed] 42).
    @raise Parse_error on malformed input. *)

val describe : config -> string
(** One-line spec summary for banners and reports. *)

val max_batch : config -> int
(** Highest batch any item covers (at least 1). *)

type delta = {
  batch : int;
  inserts : (int * int) array;  (** (src, dst) pairs appended in draw order *)
  deletes : int array;  (** pre-delta edge ids, strictly ascending *)
}

val is_empty : delta -> bool

val plan : config -> batch:int -> Cutfit_graph.Graph.t -> delta
(** The mutation batch [batch] against the current graph: inserts drawn
    uniformly over vertex pairs (self-loops nudged off the diagonal),
    deletes drawn as distinct existing edge ids (clamped to the number
    of edges). Deterministic in (config, batch, graph shape).
    @raise Invalid_argument if [batch < 1]. *)

val kept : Cutfit_graph.Graph.t -> delta -> int array
(** Surviving pre-delta edge ids in build order — the delta's deletes
    removed. The refreshed graph's edge [j] is [kept.(j)] for
    [j < Array.length kept], then the inserts in draw order.
    @raise Invalid_argument if a delete id is out of range. *)

val apply : Cutfit_graph.Graph.t -> delta -> Cutfit_graph.Graph.t
(** Frozen post-delta graph: kept edges in build order, then inserts.
    Bit-identical to a from-scratch {!Cutfit_graph.Graph.create} over
    the same edge list ({!Dyn_check} proves this).
    @raise Invalid_argument on out-of-range delete ids or endpoints. *)
