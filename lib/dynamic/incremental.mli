(** Incremental repartitioning: refresh a live cut across a mutation
    batch instead of rebuilding it from scratch.

    A refresh reconstructs the streaming state (replica sets, loads,
    streamed degrees) from the surviving edges of the old cut, then
    places each inserted edge online with the wrapped
    {!Cutfit_partition.Streaming} heuristic — exactly the choice rules
    the offline stream uses, consulted through the same
    {!Cutfit_partition.Streaming.view}. Deletes trigger bounded local
    repair: surviving edges keep their partitions, replica sets shrink,
    and the cost is accounted by the vertices the deletes touched. *)

type refreshed = {
  graph : Cutfit_graph.Graph.t;  (** post-delta graph ({!Mutation.apply}) *)
  assignment : int array;
      (** one partition per post-delta edge; kept edges keep their old
          partition, inserts are placed online *)
  placed_edges : int;  (** inserted edges placed by the heuristic *)
  repaired_vertices : int;  (** distinct endpoints of deleted edges *)
  moved_replicas : int;
      (** replica-set entries that differ from the old cut — the
          vertices whose mirrors must be re-broadcast *)
}

val refresh :
  Cutfit_partition.Streaming.t ->
  num_partitions:int ->
  graph:Cutfit_graph.Graph.t ->
  assignment:int array ->
  Mutation.delta ->
  refreshed
(** [refresh heuristic ~num_partitions ~graph ~assignment delta]
    applies [delta] to [graph] (the pre-delta graph, whose edges
    [assignment] maps to partitions) and returns the refreshed cut.
    Deterministic. @raise Invalid_argument if [num_partitions <= 0],
    the assignment has the wrong length or a partition out of range, or
    the delta refers to out-of-range edges. *)
