module Graph = Cutfit_graph.Graph
module Streaming = Cutfit_partition.Streaming
module Metrics = Cutfit_partition.Metrics
module Cluster = Cutfit_bsp.Cluster
module Pgraph = Cutfit_bsp.Pgraph
module Pagerank = Cutfit_algo.Pagerank
module Violation = Cutfit_check.Violation
module Pgraph_check = Cutfit_check.Pgraph_check
module Metrics_check = Cutfit_check.Metrics_check
module Fault_check = Cutfit_check.Fault_check

let suite = "dynamic"

let v rule fmt = Violation.v ~suite ~rule fmt

let cap = 8

let capped violations = if List.length violations > cap then List.filteri (fun i _ -> i < cap) violations else violations

(* Law 1: a delta-applied graph is the graph — bit-identical edge
   arrays, vertex count and (hence) CSR adjacency of a from-scratch
   build over the same edge list. *)
let graph_identity ~expect got =
  let errs = ref [] in
  let push x = errs := x :: !errs in
  if Graph.num_vertices expect <> Graph.num_vertices got then
    push
      (v "delta-identity" "vertex count %d, from-scratch build has %d" (Graph.num_vertices got)
         (Graph.num_vertices expect));
  if Graph.num_edges expect <> Graph.num_edges got then
    push
      (v "delta-identity" "edge count %d, from-scratch build has %d" (Graph.num_edges got)
         (Graph.num_edges expect))
  else
    for e = 0 to Graph.num_edges expect - 1 do
      if
        Graph.edge_src expect e <> Graph.edge_src got e
        || Graph.edge_dst expect e <> Graph.edge_dst got e
      then
        push
          (v "delta-identity" "edge %d is %d->%d, from-scratch build has %d->%d" e
             (Graph.edge_src got e) (Graph.edge_dst got e) (Graph.edge_src expect e)
             (Graph.edge_dst expect e))
    done;
  capped (List.rev !errs)

(* Law 2: a refreshed cut is a first-class cut — it satisfies every
   Pgraph_check and Metrics_check law a cold-built one does. *)
let cut_laws g ~num_partitions assignment =
  match Pgraph_check.assignment g ~num_partitions assignment with
  | _ :: _ as bad -> bad
  | [] ->
      let pg = Pgraph.build g ~num_partitions assignment in
      Pgraph_check.validate pg
      @ Metrics_check.validate g ~num_partitions assignment (Pgraph.metrics pg)

(* Law 3: running on a refreshed cut is indistinguishable from running
   on a cold rebuild of the same assignment — PageRank values are
   bit-identical. *)
let value_equivalence ?(cluster = Cluster.config_i) ?(iterations = 3) g ~num_partitions
    assignment =
  (* The engines insist the cluster agrees with the cut's granularity. *)
  let cluster = { cluster with Cluster.num_partitions } in
  match Pgraph_check.assignment g ~num_partitions assignment with
  | _ :: _ as bad -> bad
  | [] ->
      let warm = Pgraph.build g ~num_partitions assignment in
      let cold = Pgraph.build g ~num_partitions (Array.copy assignment) in
      let warm_ranks = (Pagerank.run ~iterations ~cluster warm).Pagerank.ranks in
      let cold_ranks = (Pagerank.run ~iterations ~cluster cold).Pagerank.ranks in
      let dw = Fault_check.float_attrs_digest warm_ranks in
      let dc = Fault_check.float_attrs_digest cold_ranks in
      if String.equal dw dc then []
      else
        [
          v "refresh-rebuild-equivalence"
            "PageRank on the refreshed cut digests to %s but a cold rebuild of the same \
             assignment gives %s"
            dw dc;
        ]

let validate ?cluster ?batches ~heuristic ~num_partitions cfg g0 =
  if num_partitions <= 0 then invalid_arg "Dyn_check.validate: num_partitions <= 0";
  let batches = match batches with Some b -> b | None -> Mutation.max_batch cfg in
  (* Independent mirror of the edge list: deltas are applied as plain
     array edits here, never via Graph, so Law 1 compares two separate
     constructions. *)
  let mirror_src = ref (Array.copy (Graph.src_array g0)) in
  let mirror_dst = ref (Array.copy (Graph.dst_array g0)) in
  let n = Graph.num_vertices g0 in
  let g = ref g0 in
  let a = ref (Streaming.assign heuristic ~num_partitions g0) in
  let errs = ref [] in
  for batch = 1 to batches do
    let delta = Mutation.plan cfg ~batch !g in
    if not (Mutation.is_empty delta) then begin
      (* mirror update *)
      let m = Array.length !mirror_src in
      let dead = Array.make m false in
      Array.iter (fun e -> dead.(e) <- true) delta.Mutation.deletes;
      let kept = ref [] in
      for e = m - 1 downto 0 do
        if not dead.(e) then kept := e :: !kept
      done;
      let kept = Array.of_list !kept in
      let extra = Array.length delta.Mutation.inserts in
      let k = Array.length kept in
      let src' = Array.make (k + extra) 0 and dst' = Array.make (k + extra) 0 in
      Array.iteri
        (fun j e ->
          src'.(j) <- !mirror_src.(e);
          dst'.(j) <- !mirror_dst.(e))
        kept;
      Array.iteri
        (fun i (s, t) ->
          src'.(k + i) <- s;
          dst'.(k + i) <- t)
        delta.Mutation.inserts;
      mirror_src := src';
      mirror_dst := dst';
      (* delta application + refresh under test *)
      let refreshed = Incremental.refresh heuristic ~num_partitions ~graph:!g ~assignment:!a delta in
      let g' = refreshed.Incremental.graph in
      let scratch = Graph.create ~n ~src:(Array.copy src') ~dst:(Array.copy dst') in
      errs := !errs @ graph_identity ~expect:scratch g';
      errs := !errs @ cut_laws g' ~num_partitions refreshed.Incremental.assignment;
      errs := !errs @ value_equivalence ?cluster g' ~num_partitions refreshed.Incremental.assignment;
      g := g';
      a := refreshed.Incremental.assignment
    end
  done;
  !errs
