module Graph = Cutfit_graph.Graph
module Streaming = Cutfit_partition.Streaming

type refreshed = {
  graph : Graph.t;
  assignment : int array;
  placed_edges : int;
  repaired_vertices : int;
  moved_replicas : int;
}

(* Per-vertex sorted replica sets of a cut, for the moved-replica count.
   Linear in edges plus total replicas. *)
let replica_sets g assignment =
  let n = Graph.num_vertices g in
  let sets = Array.make n [] in
  let add v p = if not (List.mem p sets.(v)) then sets.(v) <- p :: sets.(v) in
  Array.iteri
    (fun e p ->
      add (Graph.edge_src g e) p;
      add (Graph.edge_dst g e) p)
    assignment;
  Array.map (List.sort compare) sets

let rec symdiff a b =
  match (a, b) with
  | [], rest | rest, [] -> List.length rest
  | x :: xs, y :: ys ->
      if x = y then symdiff xs ys
      else if x < y then 1 + symdiff xs (y :: ys)
      else 1 + symdiff (x :: xs) ys

let refresh heuristic ~num_partitions ~graph ~assignment delta =
  if num_partitions <= 0 then invalid_arg "Incremental.refresh: num_partitions <= 0";
  if Array.length assignment <> Graph.num_edges graph then
    invalid_arg "Incremental.refresh: assignment length mismatch";
  let keep = Mutation.kept graph delta in
  let g' = Mutation.apply graph delta in
  let m' = Graph.num_edges g' in
  let k = Array.length keep in
  (* Deletes trigger bounded local repair: the replica tables and loads
     are rebuilt from the surviving edges only (a shrink — no edge moves),
     priced by the vertices whose neighbourhood the deletes touched. *)
  let st = Streaming.live_create ~n:(Graph.num_vertices g') ~num_partitions in
  let out = Array.make m' 0 in
  Array.iteri
    (fun j e ->
      let p = assignment.(e) in
      if p < 0 || p >= num_partitions then
        invalid_arg "Incremental.refresh: assignment partition out of range";
      Streaming.live_record st ~src:(Graph.edge_src g' j) ~dst:(Graph.edge_dst g' j) p;
      out.(j) <- p)
    keep;
  (* Inserted edges are placed online by the wrapped streaming heuristic
     against the live state of the surviving cut. *)
  let vw = Streaming.live_view g' st in
  for j = k to m' - 1 do
    let src = Graph.edge_src g' j and dst = Graph.edge_dst g' j in
    let p = Streaming.choose heuristic vw ~num_partitions ~src ~dst in
    Streaming.live_record st ~src ~dst p;
    out.(j) <- p
  done;
  let repaired_vertices =
    let seen = Hashtbl.create 64 in
    Array.iter
      (fun e ->
        Hashtbl.replace seen (Graph.edge_src graph e) ();
        Hashtbl.replace seen (Graph.edge_dst graph e) ())
      delta.Mutation.deletes;
    Hashtbl.length seen
  in
  let moved_replicas =
    let old_sets = replica_sets graph assignment and new_sets = replica_sets g' out in
    let moved = ref 0 in
    Array.iteri (fun v old_s -> moved := !moved + symdiff old_s new_sets.(v)) old_sets;
    !moved
  in
  { graph = g'; assignment = out; placed_edges = m' - k; repaired_vertices; moved_replicas }
