(** Triangle counting (GraphX [TriangleCount] structure).

    Unlike the three Pregel algorithms, triangle counting in GraphX is a
    fixed four-stage dataflow: collect each vertex's canonical neighbour
    set, replicate the sets to every edge partition that needs them,
    intersect per edge, and reduce per-vertex counts. The vertex state
    is a whole adjacency array, so synchronizing it pays a heavy
    per-cut-vertex reduction cost — the mechanism behind the paper's
    Figure 5 finding that the Cut metric (vertices replicated anywhere),
    not CommCost, predicts triangle-count time. *)

type result = {
  per_vertex : int array;  (** triangles through each vertex *)
  total : int;  (** total distinct triangles *)
  trace : Cutfit_bsp.Trace.t;  (** one trace "superstep" per dataflow stage *)
}

val run :
  ?scale:float ->
  ?cost:Cutfit_bsp.Cost_model.t ->
  ?undirected:Cutfit_graph.Graph.t ->
  ?telemetry:Cutfit_obs.Telemetry.t ->
  cluster:Cutfit_bsp.Cluster.t ->
  Cutfit_bsp.Pgraph.t ->
  result
(** [undirected] lets callers share a precomputed symmetrized view of
    the graph across runs; it must equal [Graph.symmetrize] of the
    partitioned graph's underlying graph. *)

val run_csr : ?domains:int -> Cutfit_bsp.Csr.t -> int array * int
(** [run_csr c] is [(per_vertex, total)] computed for real on the
    compact {!Cutfit_bsp.Csr} layout (the stage-3 intersections,
    without the simulated dataflow trace); identical to {!run}'s counts
    at any [domains] (default 1) since int sums are order-exact. *)
