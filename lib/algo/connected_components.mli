(** Connected components by label propagation (GraphX semantics).

    Every vertex starts labelled with its own id and repeatedly adopts
    the minimum label over its neighbours (both edge directions), so
    each component converges to its lowest vertex id. Most labels
    stabilize within a few supersteps, after which the shrinking active
    set makes fine-grained partitionings win — the granularity effect of
    the paper's Figure 4 discussion.

    The paper caps the run at 10 iterations (enough for the social
    graphs' short diameters, an approximation on road networks). *)

type result = { labels : int array; trace : Cutfit_bsp.Trace.t }

val run :
  ?iterations:int ->
  ?scale:float ->
  ?cost:Cutfit_bsp.Cost_model.t ->
  ?checkpoint_every:int ->
  ?faults:Cutfit_bsp.Faults.config ->
  ?speculation:Cutfit_bsp.Speculation.config ->
  ?elastic:Cutfit_bsp.Elastic.config ->
  ?hetero:Cutfit_bsp.Elastic.hetero ->
  ?telemetry:Cutfit_obs.Telemetry.t ->
  cluster:Cutfit_bsp.Cluster.t ->
  Cutfit_bsp.Pgraph.t ->
  result
(** Default 10 iterations, per the paper. Pass a large [iterations] to
    reach the exact fixpoint. *)

val run_csr :
  ?iterations:int -> ?domains:int -> ?rounds:int ref -> Cutfit_bsp.Csr.t -> int array
(** Real execution on the compact {!Cutfit_bsp.Csr} layout; labels are
    bit-identical to {!run}'s at any [domains]. Defaults: 10
    iterations, 1 domain. [rounds] receives the number of executed
    scatter/reduce rounds. *)

val reference : Cutfit_graph.Graph.t -> int array
(** Exact component labels (same lowest-id convention) via union-find;
    the BSP run converges to this when given enough iterations. *)
