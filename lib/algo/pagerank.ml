module Graph = Cutfit_graph.Graph
module Pregel = Cutfit_bsp.Pregel

type result = { ranks : float array; trace : Cutfit_bsp.Trace.t }

(* The initial message is a sentinel: superstep 0 must leave the initial
   rank of 1.0 in place rather than apply the update rule. *)
let sentinel = -1.0

let program g =
  {
    Pregel.init = (fun _ -> 1.0);
    initial_msg = sentinel;
    vprog = (fun _ rank m -> if m = sentinel then rank else 0.15 +. (0.85 *. m));
    send =
      (fun ~edge:_ ~src ~dst:_ ~src_attr ~dst_attr:_ ~emit ->
        let d = Graph.out_degree g src in
        if d > 0 then emit Pregel.To_dst (src_attr /. float_of_int d));
    merge = ( +. );
    state_bytes = 8;
    msg_bytes = 8;
  }

let run ?(iterations = 10) ?scale ?cost ?checkpoint_every ?faults ?speculation ?elastic ?hetero ?telemetry
    ~cluster pg =
  let g = Cutfit_bsp.Pgraph.graph pg in
  let r =
    Pregel.run ~max_supersteps:iterations ?scale ?cost ?checkpoint_every ?faults ?speculation ?elastic ?hetero
      ?telemetry ~cluster pg (program g)
  in
  { ranks = r.Pregel.attrs; trace = r.Pregel.trace }

(* --- compact CSR kernel -------------------------------------------

   The same superstep recurrence as [program], on the flat Csr layout:
   scatter accumulates each partition's rank shares into the
   partition's own accumulator-slot range (a left fold in edge order,
   exactly the boxed engine's local combiner), reduce folds every
   vertex's slots in ascending partition order (the boxed engine's
   cross-partition merge order) and applies the damped update. Both
   phases write only item-owned state, so the result is bit-identical
   to [run]'s ranks at any domain count. *)

module Csr = Cutfit_bsp.Csr
module Par_exec = Cutfit_bsp.Par_exec
module B1 = Bigarray.Array1

(* Vertices per reduce work item: big enough to amortize dispatch,
   small enough to load-balance across domains. *)
let chunk = 4096

let run_csr ?(iterations = 10) ?(domains = 1) ?rounds (c : Csr.t) =
  let n = c.Csr.num_vertices in
  let parts = c.Csr.num_partitions in
  let part_off = c.Csr.part_off in
  let esrc = c.Csr.edge_src and edst = c.Csr.edge_dst in
  let dslot = c.Csr.dst_slot in
  let out_deg = c.Csr.out_deg in
  let red_off = c.Csr.red_off and red_slot = c.Csr.red_slot in
  let facc = c.Csr.facc and has = c.Csr.has in
  let rank = B1.create Bigarray.float64 Bigarray.c_layout n in
  B1.fill rank 1.0;
  (* After the boxed engine's superstep 0 every vertex is active. *)
  let cur = ref (Bytes.make n '\001') in
  let nxt = ref (Bytes.make n '\000') in
  let nchunks = (n + chunk - 1) / chunk in
  let chunk_touched = Array.make (max nchunks 1) 0 in
  let scatter p =
    let a = !cur in
    for e = B1.unsafe_get part_off p to B1.unsafe_get part_off (p + 1) - 1 do
      let s = B1.unsafe_get esrc e and d = B1.unsafe_get edst e in
      if Bytes.unsafe_get a s <> '\000' || Bytes.unsafe_get a d <> '\000' then begin
        let deg = B1.unsafe_get out_deg s in
        if deg > 0 then begin
          let m = B1.unsafe_get rank s /. float_of_int deg in
          let slot = B1.unsafe_get dslot e in
          if Bytes.unsafe_get has slot = '\000' then begin
            Bytes.unsafe_set has slot '\001';
            B1.unsafe_set facc slot m
          end
          else B1.unsafe_set facc slot (B1.unsafe_get facc slot +. m)
        end
      end
    done
  in
  let reduce ch =
    let next = !nxt in
    let lo = ch * chunk and hi = min n ((ch * chunk) + chunk) in
    let touched = ref 0 in
    for v = lo to hi - 1 do
      let total = ref 0.0 and got = ref false in
      for i = B1.unsafe_get red_off v to B1.unsafe_get red_off (v + 1) - 1 do
        let slot = B1.unsafe_get red_slot i in
        if Bytes.unsafe_get has slot <> '\000' then begin
          Bytes.unsafe_set has slot '\000';
          if !got then total := !total +. B1.unsafe_get facc slot
          else begin
            got := true;
            total := B1.unsafe_get facc slot
          end
        end
      done;
      if !got then begin
        B1.unsafe_set rank v (0.15 +. (0.85 *. !total));
        Bytes.unsafe_set next v '\001';
        incr touched
      end
      else Bytes.unsafe_set next v '\000'
    done;
    chunk_touched.(ch) <- !touched
  in
  let step = ref 1 in
  Par_exec.with_pool ~domains (fun pool ->
      let continue_ = ref true in
      while !continue_ do
        Par_exec.iter pool ~n:parts (fun _ p -> scatter p);
        Par_exec.iter pool ~n:nchunks (fun _ ch -> reduce ch);
        let touched = Array.fold_left ( + ) 0 chunk_touched in
        let swap = !cur in
        cur := !nxt;
        nxt := swap;
        if touched = 0 || !step >= iterations then continue_ := false else incr step
      done);
  (match rounds with Some r -> r := !step | None -> ());
  Array.init n (fun v -> B1.unsafe_get rank v)

let reference ~iterations g =
  let n = Graph.num_vertices g in
  let ranks = ref (Array.make n 1.0) in
  for _ = 1 to iterations do
    let next = Array.make n 0.15 in
    for v = 0 to n - 1 do
      let d = Graph.out_degree g v in
      if d > 0 then begin
        let share = 0.85 *. !ranks.(v) /. float_of_int d in
        Graph.iter_out g v (fun u -> next.(u) <- next.(u) +. share)
      end
    done;
    (* Pregel semantics: a vertex with no incoming message keeps its
       rank, so sources never leave their initial value. *)
    for v = 0 to n - 1 do
      if Graph.in_degree g v = 0 then next.(v) <- !ranks.(v)
    done;
    ranks := next
  done;
  !ranks

(* PowerGraph-style formulation of the same computation, used by the
   engine-comparison ablation: gather pulls rank/outdeg over in-edges,
   apply applies the damped update. *)
let gas_program g iterations =
  {
    Cutfit_bsp.Gas.init = (fun _ -> 1.0);
    direction = Cutfit_bsp.Gas.Gather_in;
    gather =
      (fun ~src ~dst:_ ~src_attr ~dst_attr:_ ~target:_ ->
        let d = Graph.out_degree g src in
        if d > 0 then Some (src_attr /. float_of_int d) else None);
    sum = ( +. );
    apply =
      (fun _ rank total ->
        match total with
        | Some t -> (0.15 +. (0.85 *. t), true)
        | None -> (rank, true));
    state_bytes = 8;
    gather_bytes = 8;
  },
  iterations

let run_gas ?(iterations = 10) ?scale ?cost ?checkpoint_every ?faults ?speculation ?elastic ?hetero ?telemetry
    ~cluster pg =
  let g = Cutfit_bsp.Pgraph.graph pg in
  let program, max_iterations = gas_program g iterations in
  let r =
    Cutfit_bsp.Gas.run ~max_iterations ?scale ?cost ?checkpoint_every ?faults ?speculation ?elastic ?hetero
      ?telemetry ~cluster pg program
  in
  { ranks = r.Cutfit_bsp.Gas.attrs; trace = r.Cutfit_bsp.Gas.trace }
