module Graph = Cutfit_graph.Graph
module Pregel = Cutfit_bsp.Pregel

type result = { ranks : float array; trace : Cutfit_bsp.Trace.t }

(* The initial message is a sentinel: superstep 0 must leave the initial
   rank of 1.0 in place rather than apply the update rule. *)
let sentinel = -1.0

let program g =
  {
    Pregel.init = (fun _ -> 1.0);
    initial_msg = sentinel;
    vprog = (fun _ rank m -> if m = sentinel then rank else 0.15 +. (0.85 *. m));
    send =
      (fun ~edge:_ ~src ~dst:_ ~src_attr ~dst_attr:_ ~emit ->
        let d = Graph.out_degree g src in
        if d > 0 then emit Pregel.To_dst (src_attr /. float_of_int d));
    merge = ( +. );
    state_bytes = 8;
    msg_bytes = 8;
  }

let run ?(iterations = 10) ?scale ?cost ?checkpoint_every ?faults ?speculation ?telemetry
    ~cluster pg =
  let g = Cutfit_bsp.Pgraph.graph pg in
  let r =
    Pregel.run ~max_supersteps:iterations ?scale ?cost ?checkpoint_every ?faults ?speculation
      ?telemetry ~cluster pg (program g)
  in
  { ranks = r.Pregel.attrs; trace = r.Pregel.trace }

let reference ~iterations g =
  let n = Graph.num_vertices g in
  let ranks = ref (Array.make n 1.0) in
  for _ = 1 to iterations do
    let next = Array.make n 0.15 in
    for v = 0 to n - 1 do
      let d = Graph.out_degree g v in
      if d > 0 then begin
        let share = 0.85 *. !ranks.(v) /. float_of_int d in
        Graph.iter_out g v (fun u -> next.(u) <- next.(u) +. share)
      end
    done;
    (* Pregel semantics: a vertex with no incoming message keeps its
       rank, so sources never leave their initial value. *)
    for v = 0 to n - 1 do
      if Graph.in_degree g v = 0 then next.(v) <- !ranks.(v)
    done;
    ranks := next
  done;
  !ranks

(* PowerGraph-style formulation of the same computation, used by the
   engine-comparison ablation: gather pulls rank/outdeg over in-edges,
   apply applies the damped update. *)
let gas_program g iterations =
  {
    Cutfit_bsp.Gas.init = (fun _ -> 1.0);
    direction = Cutfit_bsp.Gas.Gather_in;
    gather =
      (fun ~src ~dst:_ ~src_attr ~dst_attr:_ ~target:_ ->
        let d = Graph.out_degree g src in
        if d > 0 then Some (src_attr /. float_of_int d) else None);
    sum = ( +. );
    apply =
      (fun _ rank total ->
        match total with
        | Some t -> (0.15 +. (0.85 *. t), true)
        | None -> (rank, true));
    state_bytes = 8;
    gather_bytes = 8;
  },
  iterations

let run_gas ?(iterations = 10) ?scale ?cost ?checkpoint_every ?faults ?speculation ?telemetry
    ~cluster pg =
  let g = Cutfit_bsp.Pgraph.graph pg in
  let program, max_iterations = gas_program g iterations in
  let r =
    Cutfit_bsp.Gas.run ~max_iterations ?scale ?cost ?checkpoint_every ?faults ?speculation
      ?telemetry ~cluster pg program
  in
  { ranks = r.Cutfit_bsp.Gas.attrs; trace = r.Cutfit_bsp.Gas.trace }
