(** PageRank (GraphX [staticPageRank] semantics).

    Rank update [r(v) = 0.15 + 0.85 * sum (r(u) / outdeg u)] over
    in-neighbours, iterated a fixed number of times (the paper uses 10).
    Computation per vertex is tiny relative to the messages exchanged,
    which is why the paper finds CommCost to be its best time
    predictor. *)

type result = { ranks : float array; trace : Cutfit_bsp.Trace.t }

val run :
  ?iterations:int ->
  ?scale:float ->
  ?cost:Cutfit_bsp.Cost_model.t ->
  ?checkpoint_every:int ->
  ?faults:Cutfit_bsp.Faults.config ->
  ?speculation:Cutfit_bsp.Speculation.config ->
  ?elastic:Cutfit_bsp.Elastic.config ->
  ?hetero:Cutfit_bsp.Elastic.hetero ->
  ?telemetry:Cutfit_obs.Telemetry.t ->
  cluster:Cutfit_bsp.Cluster.t ->
  Cutfit_bsp.Pgraph.t ->
  result
(** Default 10 iterations. [checkpoint_every] and [faults] are passed
    through to {!Cutfit_bsp.Pregel.run}; injected faults never change
    the ranks. *)

val run_gas :
  ?iterations:int ->
  ?scale:float ->
  ?cost:Cutfit_bsp.Cost_model.t ->
  ?checkpoint_every:int ->
  ?faults:Cutfit_bsp.Faults.config ->
  ?speculation:Cutfit_bsp.Speculation.config ->
  ?elastic:Cutfit_bsp.Elastic.config ->
  ?hetero:Cutfit_bsp.Elastic.hetero ->
  ?telemetry:Cutfit_obs.Telemetry.t ->
  cluster:Cutfit_bsp.Cluster.t ->
  Cutfit_bsp.Pgraph.t ->
  result
(** The same computation on the PowerGraph-style {!Cutfit_bsp.Gas}
    engine; ranks agree with {!run}, times reflect GAS's gather-side
    communication pattern (the cross-engine comparison of Verma et
    al. in the paper's related work). *)

val run_csr :
  ?iterations:int -> ?domains:int -> ?rounds:int ref -> Cutfit_bsp.Csr.t -> float array
(** The same recurrence executed for real on the compact
    {!Cutfit_bsp.Csr} layout via {!Cutfit_bsp.Par_exec} — no simulated
    trace, wall-clock fast. Defaults: 10 iterations, 1 domain. Ranks
    are bit-identical to {!run}'s at any [domains] (the fixed
    partition-indexed reduction order; see docs/PERFORMANCE.md), which
    {!Cutfit_check.Engine_check} enforces. [rounds], when given, is set
    to the number of scatter/reduce rounds executed, so callers can
    report edges-scanned-per-second. *)

val reference : iterations:int -> Cutfit_graph.Graph.t -> float array
(** Sequential implementation of the same recurrence, for validating the
    BSP execution (they agree to floating-point noise). *)
