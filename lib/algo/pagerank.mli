(** PageRank (GraphX [staticPageRank] semantics).

    Rank update [r(v) = 0.15 + 0.85 * sum (r(u) / outdeg u)] over
    in-neighbours, iterated a fixed number of times (the paper uses 10).
    Computation per vertex is tiny relative to the messages exchanged,
    which is why the paper finds CommCost to be its best time
    predictor. *)

type result = { ranks : float array; trace : Cutfit_bsp.Trace.t }

val run :
  ?iterations:int ->
  ?scale:float ->
  ?cost:Cutfit_bsp.Cost_model.t ->
  ?checkpoint_every:int ->
  ?faults:Cutfit_bsp.Faults.config ->
  ?speculation:Cutfit_bsp.Speculation.config ->
  ?telemetry:Cutfit_obs.Telemetry.t ->
  cluster:Cutfit_bsp.Cluster.t ->
  Cutfit_bsp.Pgraph.t ->
  result
(** Default 10 iterations. [checkpoint_every] and [faults] are passed
    through to {!Cutfit_bsp.Pregel.run}; injected faults never change
    the ranks. *)

val run_gas :
  ?iterations:int ->
  ?scale:float ->
  ?cost:Cutfit_bsp.Cost_model.t ->
  ?checkpoint_every:int ->
  ?faults:Cutfit_bsp.Faults.config ->
  ?speculation:Cutfit_bsp.Speculation.config ->
  ?telemetry:Cutfit_obs.Telemetry.t ->
  cluster:Cutfit_bsp.Cluster.t ->
  Cutfit_bsp.Pgraph.t ->
  result
(** The same computation on the PowerGraph-style {!Cutfit_bsp.Gas}
    engine; ranks agree with {!run}, times reflect GAS's gather-side
    communication pattern (the cross-engine comparison of Verma et
    al. in the paper's related work). *)

val reference : iterations:int -> Cutfit_graph.Graph.t -> float array
(** Sequential implementation of the same recurrence, for validating the
    BSP execution (they agree to floating-point noise). *)
