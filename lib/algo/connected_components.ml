module Pregel = Cutfit_bsp.Pregel

type result = { labels : int array; trace : Cutfit_bsp.Trace.t }

let program =
  {
    Pregel.init = (fun v -> v);
    initial_msg = max_int;
    vprog = (fun _ label m -> min label m);
    send =
      (fun ~edge:_ ~src:_ ~dst:_ ~src_attr ~dst_attr ~emit ->
        if src_attr < dst_attr then emit Pregel.To_dst src_attr
        else if dst_attr < src_attr then emit Pregel.To_src dst_attr);
    merge = min;
    state_bytes = 8;
    msg_bytes = 8;
  }

let run ?(iterations = 10) ?scale ?cost ?checkpoint_every ?faults ?speculation ?elastic ?hetero ?telemetry
    ~cluster pg =
  let r =
    Pregel.run ~max_supersteps:iterations ?scale ?cost ?checkpoint_every ?faults ?speculation ?elastic ?hetero
      ?telemetry ~cluster pg program
  in
  { labels = r.Pregel.attrs; trace = r.Pregel.trace }

let reference g = fst (Cutfit_graph.Components.weak g)

(* --- compact CSR kernel -------------------------------------------

   Label propagation on the flat layout. The combiner is [min] over
   ints — order-exact — so the partition-indexed reduction order here
   is about structure (slot ranges, active tracking), not float
   semantics; the labels match the boxed engine's bit-for-bit at any
   domain count by construction. *)

module Csr = Cutfit_bsp.Csr
module Par_exec = Cutfit_bsp.Par_exec
module B1 = Bigarray.Array1

let chunk = 4096

let run_csr ?(iterations = 10) ?(domains = 1) ?rounds (c : Csr.t) =
  let n = c.Csr.num_vertices in
  let parts = c.Csr.num_partitions in
  let part_off = c.Csr.part_off in
  let esrc = c.Csr.edge_src and edst = c.Csr.edge_dst in
  let sslot = c.Csr.src_slot and dslot = c.Csr.dst_slot in
  let red_off = c.Csr.red_off and red_slot = c.Csr.red_slot in
  let iacc = c.Csr.iacc and has = c.Csr.has in
  let label = B1.create Bigarray.int Bigarray.c_layout n in
  for v = 0 to n - 1 do
    B1.unsafe_set label v v
  done;
  let cur = ref (Bytes.make n '\001') in
  let nxt = ref (Bytes.make n '\000') in
  let nchunks = (n + chunk - 1) / chunk in
  let chunk_touched = Array.make (max nchunks 1) 0 in
  let contribute slot m =
    if Bytes.unsafe_get has slot = '\000' then begin
      Bytes.unsafe_set has slot '\001';
      B1.unsafe_set iacc slot m
    end
    else if m < B1.unsafe_get iacc slot then B1.unsafe_set iacc slot m
  in
  let scatter p =
    let a = !cur in
    for e = B1.unsafe_get part_off p to B1.unsafe_get part_off (p + 1) - 1 do
      let s = B1.unsafe_get esrc e and d = B1.unsafe_get edst e in
      if Bytes.unsafe_get a s <> '\000' || Bytes.unsafe_get a d <> '\000' then begin
        let ls = B1.unsafe_get label s and ld = B1.unsafe_get label d in
        if ls < ld then contribute (B1.unsafe_get dslot e) ls
        else if ld < ls then contribute (B1.unsafe_get sslot e) ld
      end
    done
  in
  let reduce ch =
    let next = !nxt in
    let lo = ch * chunk and hi = min n ((ch * chunk) + chunk) in
    let touched = ref 0 in
    for v = lo to hi - 1 do
      let best = ref max_int and got = ref false in
      for i = B1.unsafe_get red_off v to B1.unsafe_get red_off (v + 1) - 1 do
        let slot = B1.unsafe_get red_slot i in
        if Bytes.unsafe_get has slot <> '\000' then begin
          Bytes.unsafe_set has slot '\000';
          got := true;
          let m = B1.unsafe_get iacc slot in
          if m < !best then best := m
        end
      done;
      if !got then begin
        if !best < B1.unsafe_get label v then B1.unsafe_set label v !best;
        Bytes.unsafe_set next v '\001';
        incr touched
      end
      else Bytes.unsafe_set next v '\000'
    done;
    chunk_touched.(ch) <- !touched
  in
  let step = ref 1 in
  Par_exec.with_pool ~domains (fun pool ->
      let continue_ = ref true in
      while !continue_ do
        Par_exec.iter pool ~n:parts (fun _ p -> scatter p);
        Par_exec.iter pool ~n:nchunks (fun _ ch -> reduce ch);
        let touched = Array.fold_left ( + ) 0 chunk_touched in
        let swap = !cur in
        cur := !nxt;
        nxt := swap;
        if touched = 0 || !step >= iterations then continue_ := false else incr step
      done);
  (match rounds with Some r -> r := !step | None -> ());
  Array.init n (fun v -> B1.unsafe_get label v)
