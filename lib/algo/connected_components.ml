module Pregel = Cutfit_bsp.Pregel

type result = { labels : int array; trace : Cutfit_bsp.Trace.t }

let program =
  {
    Pregel.init = (fun v -> v);
    initial_msg = max_int;
    vprog = (fun _ label m -> min label m);
    send =
      (fun ~edge:_ ~src:_ ~dst:_ ~src_attr ~dst_attr ~emit ->
        if src_attr < dst_attr then emit Pregel.To_dst src_attr
        else if dst_attr < src_attr then emit Pregel.To_src dst_attr);
    merge = min;
    state_bytes = 8;
    msg_bytes = 8;
  }

let run ?(iterations = 10) ?scale ?cost ?checkpoint_every ?faults ?speculation ?telemetry
    ~cluster pg =
  let r =
    Pregel.run ~max_supersteps:iterations ?scale ?cost ?checkpoint_every ?faults ?speculation
      ?telemetry ~cluster pg program
  in
  { labels = r.Pregel.attrs; trace = r.Pregel.trace }

let reference g = fst (Cutfit_graph.Components.weak g)
