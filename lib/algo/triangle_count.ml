module Graph = Cutfit_graph.Graph
module Pgraph = Cutfit_bsp.Pgraph
module Cluster = Cutfit_bsp.Cluster
module Cost_model = Cutfit_bsp.Cost_model
module Trace = Cutfit_bsp.Trace
module Obs = Cutfit_obs

type result = { per_vertex : int array; total : int; trace : Trace.t }

(* Assemble one dataflow stage into a trace record using the same time
   composition as the Pregel engine, emitting the matching telemetry
   event when a handle is attached. *)
let finish_stage ?telemetry ~cluster ~scale ~cost ~step ~work ~bytes_out ~active_edges ~messages
    ~shuffle_groups ~remote_shuffles ~updated ~bcast ~remote_bcast () =
  let executors = cluster.Cluster.executors in
  let num_partitions = cluster.Cluster.num_partitions in
  let exec_of = Cluster.executor_of_partition cluster in
  let jittered = Cost_model.jittered cost ~step work in
  let busy = Array.make executors 0.0 in
  for e = 0 to executors - 1 do
    let mine = ref [] in
    for p = 0 to num_partitions - 1 do
      if exec_of p = e then mine := jittered.(p) :: !mine
    done;
    busy.(e) <-
      scale
      *. Cost_model.makespan ~work:(Array.of_list !mine) ~cores:cluster.Cluster.cores_per_executor
  done;
  let compute = Array.fold_left Float.max 0.0 busy in
  let network = ref 0.0 and wire = ref 0.0 in
  let bandwidth = Cluster.network_bytes_per_s cluster in
  for e = 0 to executors - 1 do
    wire := !wire +. (scale *. bytes_out.(e));
    let t = scale *. bytes_out.(e) /. bandwidth in
    if t > !network then network := t
  done;
  let overhead =
    cost.Cost_model.superstep_barrier_s
    +. (float_of_int num_partitions *. cost.Cost_model.task_dispatch_s)
  in
  let stats =
    {
      Trace.step;
      active_edges;
      messages;
      shuffle_groups;
      remote_shuffles;
      updated_vertices = updated;
      broadcast_replicas = bcast;
      remote_broadcasts = remote_bcast;
      wire_bytes = !wire;
      compute_s = compute;
      network_s = !network;
      overhead_s = overhead;
      time_s = Float.max compute !network +. overhead;
    }
  in
  (match telemetry with
  | None -> ()
  | Some t ->
      let max_task = ref 0.0 and min_task = ref Float.infinity in
      Array.iter
        (fun w ->
          let w = scale *. w in
          if w > !max_task then max_task := w;
          if w < !min_task then min_task := w)
        jittered;
      Obs.Telemetry.emit t
        (Obs.Event.Superstep
           {
             step;
             active_vertices = updated;
             active_edges;
             messages;
             local_shuffles = shuffle_groups - remote_shuffles;
             remote_shuffles;
             broadcast_replicas = bcast;
             remote_broadcasts = remote_bcast;
             wire_bytes = stats.Trace.wire_bytes;
             executor_busy_s = busy;
             barrier_wait_s = Array.map (fun b -> compute -. b) busy;
             max_task_s = !max_task;
             min_task_s = (if num_partitions = 0 then 0.0 else !min_task);
             compute_s = stats.Trace.compute_s;
             network_s = stats.Trace.network_s;
             overhead_s = stats.Trace.overhead_s;
             time_s = stats.Trace.time_s;
           }));
  stats

(* --- compact CSR kernel -------------------------------------------

   The stage-3 intersection work of [run], executed for real: canonical
   edges of each partition intersect their endpoints' sorted undirected
   neighbour lists (flattened to one offsets + one adjacency buffer).
   Counts are plain int sums — exact under any accumulation order — so
   each worker counts into its own array and the arrays are summed
   per-vertex afterwards; no ordering discipline is needed for
   bit-identical totals. *)

module Csr = Cutfit_bsp.Csr
module Par_exec = Cutfit_bsp.Par_exec
module B1 = Bigarray.Array1

let csr_chunk = 4096

let run_csr ?(domains = 1) (c : Csr.t) =
  let g = c.Csr.graph in
  let n = c.Csr.num_vertices in
  let parts = c.Csr.num_partitions in
  let part_off = c.Csr.part_off in
  let esrc = c.Csr.edge_src and edst = c.Csr.edge_dst in
  (* Flatten the symmetrized adjacency once: und_adj.(und_off v ..) is
     vertex v's sorted, deduplicated undirected neighbour list. *)
  let und = Graph.symmetrize g in
  let und_off = B1.create Bigarray.int Bigarray.c_layout (n + 1) in
  B1.unsafe_set und_off 0 0;
  for v = 0 to n - 1 do
    B1.unsafe_set und_off (v + 1) (B1.unsafe_get und_off v + Graph.out_degree und v)
  done;
  let und_adj = B1.create Bigarray.int Bigarray.c_layout (B1.unsafe_get und_off n) in
  for v = 0 to n - 1 do
    let i = ref (B1.unsafe_get und_off v) in
    Graph.iter_out und v (fun u ->
        B1.unsafe_set und_adj !i u;
        incr i)
  done;
  let worker_counts = Array.init domains (fun _ -> Array.make n 0) in
  let scatter w p =
    let counts = worker_counts.(w) in
    for e = B1.unsafe_get part_off p to B1.unsafe_get part_off (p + 1) - 1 do
      let src = B1.unsafe_get esrc e and dst = B1.unsafe_get edst e in
      let canonical = src <> dst && (src < dst || not (Graph.has_edge g ~src:dst ~dst:src)) in
      if canonical then begin
        let alo = B1.unsafe_get und_off src and ahi = B1.unsafe_get und_off (src + 1) in
        let blo = B1.unsafe_get und_off dst and bhi = B1.unsafe_get und_off (dst + 1) in
        (* Intersect small-into-large with binary search, as [run]'s
           stage 3 does on its boxed adjacency arrays. *)
        let slo, shi, glo, ghi =
          if ahi - alo <= bhi - blo then (alo, ahi, blo, bhi) else (blo, bhi, alo, ahi)
        in
        for i = slo to shi - 1 do
          let x = B1.unsafe_get und_adj i in
          if x > src && x > dst then begin
            let lo = ref glo and hi = ref (ghi - 1) and found = ref false in
            while (not !found) && !lo <= !hi do
              let mid = (!lo + !hi) / 2 in
              let y = B1.unsafe_get und_adj mid in
              if y = x then found := true else if y < x then lo := mid + 1 else hi := mid - 1
            done;
            if !found then begin
              counts.(src) <- counts.(src) + 1;
              counts.(dst) <- counts.(dst) + 1;
              counts.(x) <- counts.(x) + 1
            end
          end
        done
      end
    done
  in
  let per_vertex = Array.make n 0 in
  let nchunks = (n + csr_chunk - 1) / csr_chunk in
  let reduce ch =
    let lo = ch * csr_chunk and hi = min n ((ch * csr_chunk) + csr_chunk) in
    for v = lo to hi - 1 do
      let total = ref 0 in
      for w = 0 to domains - 1 do
        total := !total + worker_counts.(w).(v)
      done;
      per_vertex.(v) <- !total
    done
  in
  Par_exec.with_pool ~domains (fun pool ->
      Par_exec.iter pool ~n:parts scatter;
      Par_exec.iter pool ~n:nchunks (fun _ ch -> reduce ch));
  (per_vertex, Array.fold_left ( + ) 0 per_vertex / 3)

let run ?(scale = 1.0) ?(cost = Cost_model.default) ?undirected ?telemetry ~cluster pg =
  let g = Pgraph.graph pg in
  let n = Graph.num_vertices g in
  let num_partitions = Pgraph.num_partitions pg in
  if cluster.Cluster.num_partitions <> num_partitions then
    invalid_arg "Triangle_count.run: cluster and partitioned graph disagree on partition count";
  let und = match undirected with Some u -> u | None -> Graph.symmetrize g in
  if Graph.num_vertices und <> n then invalid_arg "Triangle_count.run: undirected view mismatch";
  let deg v = Graph.out_degree und v in
  (* Materialize each vertex's sorted neighbour set once; fetching a
     fresh copy per edge would cost O(sum deg^2) allocation. *)
  let adjacency = Array.init n (Graph.out_neighbors und) in
  let exec_of = Cluster.executor_of_partition cluster in

  (* Stage 1 — collect neighbour ids: every edge contributes both
     endpoint ids; partials are merged per partition and reduced at each
     vertex's master, where cut vertices pay the heavy array-merge. *)
  let stage1 =
    let work = Array.make num_partitions 0.0 in
    let bytes_out = Array.make cluster.Cluster.executors 0.0 in
    let messages = ref 0 and remote = ref 0 in
    for p = 0 to num_partitions - 1 do
      let pexec = exec_of p in
      Pgraph.iter_partition_edges pg p (fun ~edge:_ ~src ~dst ->
          work.(p) <-
            work.(p) +. cost.Cost_model.edge_scan_s +. (2.0 *. cost.Cost_model.msg_merge_s);
          messages := !messages + 2;
          let ship v =
            if exec_of (Pgraph.master pg v) <> pexec then
              bytes_out.(pexec) <- bytes_out.(pexec) +. 8.0
          in
          ship src;
          ship dst)
    done;
    (* One aggregate per (vertex, partition) routing entry. The master
       merges one partial array per replica; for cut vertices that is a
       genuine multi-way array reduction, which is the heavy per-cut-
       vertex JVM cost the paper blames for TR's Cut sensitivity. *)
    let groups = ref 0 in
    for v = 0 to n - 1 do
      let r = Pgraph.replica_count pg v in
      groups := !groups + r;
      let mp = Pgraph.master pg v in
      let mexec = exec_of mp in
      Pgraph.iter_replicas pg v (fun q ->
          if exec_of q <> mexec then begin
            incr remote;
            bytes_out.(exec_of q) <-
              bytes_out.(exec_of q)
              +. float_of_int cost.Cost_model.msg_wire_overhead_bytes
          end);
      if r >= 2 then work.(mp) <- work.(mp) +. cost.Cost_model.cut_vertex_reduce_s;
      work.(mp) <- work.(mp) +. (float_of_int (deg v) *. cost.Cost_model.msg_merge_s)
    done;
    finish_stage ?telemetry ~cluster ~scale ~cost ~step:0 ~work ~bytes_out
      ~active_edges:(Graph.num_edges g) ~messages:!messages ~shuffle_groups:!groups
      ~remote_shuffles:!remote ~updated:n ~bcast:0 ~remote_bcast:0 ()
  in

  (* Stage 2 — replicate neighbour sets along the routing table. Each
     set is serialized once at the master and shipped once per remote
     executor (partitions on one machine share the block-manager copy),
     so the wire cost tracks graph size, while the per-cut-vertex
     serialization overhead tracks the Cut metric. *)
  let stage2 =
    let work = Array.make num_partitions 0.0 in
    let bytes_out = Array.make cluster.Cluster.executors 0.0 in
    let bcast = ref 0 and remote_bcast = ref 0 in
    let exec_seen = Array.make cluster.Cluster.executors (-1) in
    for v = 0 to n - 1 do
      let mp = Pgraph.master pg v in
      let mexec = exec_of mp in
      let set_bytes = float_of_int ((8 * deg v) + cost.Cost_model.msg_wire_overhead_bytes) in
      work.(mp) <-
        work.(mp) +. cost.Cost_model.msg_serialize_s
        +. (float_of_int (deg v) *. cost.Cost_model.array_element_s);
      if Pgraph.replica_count pg v >= 2 then
        work.(mp) <- work.(mp) +. cost.Cost_model.cut_vertex_reduce_s;
      Pgraph.iter_replicas pg v (fun q ->
          incr bcast;
          let e = exec_of q in
          if e <> mexec && exec_seen.(e) <> v then begin
            exec_seen.(e) <- v;
            incr remote_bcast;
            bytes_out.(mexec) <- bytes_out.(mexec) +. set_bytes
          end)
    done;
    finish_stage ?telemetry ~cluster ~scale ~cost ~step:1 ~work ~bytes_out ~active_edges:0
      ~messages:0 ~shuffle_groups:0 ~remote_shuffles:0 ~updated:n ~bcast:!bcast
      ~remote_bcast:!remote_bcast ()
  in

  (* Stage 3 — per-edge set intersection, on canonical (unordered)
     edges so each pair is counted exactly once. This is the compute-
     heavy stage whose stragglers make fine-grain partitioning win. *)
  let counts = Array.make n 0 in
  let stage3 =
    let work = Array.make num_partitions 0.0 in
    let bytes_out = Array.make cluster.Cluster.executors 0.0 in
    let active = ref 0 in
    for p = 0 to num_partitions - 1 do
      Pgraph.iter_partition_edges pg p (fun ~edge:_ ~src ~dst ->
          let canonical =
            src <> dst && (src < dst || not (Graph.has_edge g ~src:dst ~dst:src))
          in
          if not canonical then work.(p) <- work.(p) +. cost.Cost_model.edge_skip_s
          else begin
            incr active;
            (* Intersect small-into-large with binary search, as a hash
               "contains" probe does in GraphX's VertexSet. *)
            let sa = adjacency.(src) and sb = adjacency.(dst) in
            let small, big = if Array.length sa <= Array.length sb then (sa, sb) else (sb, sa) in
            let probes = ref 0 in
            Array.iter
              (fun x ->
                incr probes;
                let lo = ref 0 and hi = ref (Array.length big - 1) and found = ref false in
                while (not !found) && !lo <= !hi do
                  let mid = (!lo + !hi) / 2 in
                  let y = big.(mid) in
                  if y = x then found := true else if y < x then lo := mid + 1 else hi := mid - 1
                done;
                (* A triangle is discovered once per edge; demanding the
                   common neighbour be the largest vertex counts each
                   triangle exactly once. *)
                if !found && x > src && x > dst then begin
                  counts.(src) <- counts.(src) + 1;
                  counts.(dst) <- counts.(dst) + 1;
                  counts.(x) <- counts.(x) + 1
                end)
              small;
            work.(p) <-
              work.(p) +. cost.Cost_model.edge_scan_s
              +. (float_of_int !probes *. cost.Cost_model.intersect_probe_s)
          end)
    done;
    finish_stage ?telemetry ~cluster ~scale ~cost ~step:2 ~work ~bytes_out ~active_edges:!active
      ~messages:0 ~shuffle_groups:0 ~remote_shuffles:0 ~updated:0 ~bcast:0 ~remote_bcast:0 ()
  in

  (* Stage 4 — reduce per-vertex counts back at the masters. *)
  let stage4 =
    let work = Array.make num_partitions 0.0 in
    let bytes_out = Array.make cluster.Cluster.executors 0.0 in
    let groups = ref 0 and remote = ref 0 in
    for v = 0 to n - 1 do
      let mexec = exec_of (Pgraph.master pg v) in
      Pgraph.iter_replicas pg v (fun q ->
          incr groups;
          work.(q) <- work.(q) +. cost.Cost_model.msg_serialize_s;
          if exec_of q <> mexec then begin
            incr remote;
            bytes_out.(exec_of q) <-
              bytes_out.(exec_of q)
              +. float_of_int (8 + cost.Cost_model.msg_wire_overhead_bytes)
          end)
    done;
    finish_stage ?telemetry ~cluster ~scale ~cost ~step:3 ~work ~bytes_out ~active_edges:0
      ~messages:!groups ~shuffle_groups:!groups ~remote_shuffles:!remote ~updated:n ~bcast:0
      ~remote_bcast:0 ()
  in

  let supersteps = [ stage1; stage2; stage3; stage4 ] in
  let load_s =
    scale
    *. float_of_int (Cutfit_graph.Graph_io.size_bytes g)
    /. (float_of_int cluster.Cluster.executors *. Cluster.storage_bytes_per_s cluster)
  in
  let total_s =
    List.fold_left (fun acc (s : Trace.superstep) -> acc +. s.time_s) load_s supersteps
  in
  let total = Array.fold_left ( + ) 0 counts / 3 in
  let trace =
    {
      Trace.supersteps;
      load_s;
      checkpoint_s = 0.0;
      checkpoints = 0;
      recovery_s = 0.0;
      recoveries = [];
      faults_injected = 0;
      speculations = [];
      speculation_s = 0.0;
      reshuffles = [];
      reshuffle_s = 0.0;
      total_s;
      outcome = Trace.Completed;
      peak_executor_bytes = 0.0;
      driver_meta_bytes = 0.0;
    }
  in
  (match telemetry with
  | None -> ()
  | Some t ->
      let reg = Obs.Telemetry.metrics t in
      Obs.Metric.incr (Obs.Metric.counter reg "bsp.runs");
      Obs.Metric.add (Obs.Metric.counter reg "bsp.messages") (Trace.total_messages trace);
      Obs.Metric.add
        (Obs.Metric.counter reg "bsp.remote_messages")
        (Trace.total_remote_messages trace);
      Obs.Metric.record (Obs.Metric.timer reg "bsp.simulated_s") trace.Trace.total_s;
      Obs.Metric.set (Obs.Metric.gauge reg "bsp.last_wire_bytes") (Trace.total_wire_bytes trace);
      Obs.Metric.add (Obs.Metric.counter reg "bsp.supersteps") (List.length supersteps);
      Obs.Telemetry.emit t
        (Obs.Event.Run_end
           {
             label = "triangle_count";
             outcome = Trace.outcome_name Trace.Completed;
             supersteps = List.length supersteps;
             total_s;
             load_s;
             checkpoint_s = 0.0;
             recovery_s = 0.0;
             total_messages = Trace.total_messages trace;
             total_remote = Trace.total_remote_messages trace;
             total_wire_bytes = Trace.total_wire_bytes trace;
           }));
  { per_vertex = counts; total; trace }
