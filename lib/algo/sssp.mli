(** Shortest paths to a landmark set (GraphX [ShortestPaths] semantics).

    Each vertex maintains a vector of hop distances to every landmark;
    messages flow from edge destinations to sources, so the result is
    the forward distance from each vertex to each landmark. The run
    continues to fixpoint, which on the road networks means hundreds of
    supersteps — in the paper those runs died of Spark out-of-memory
    errors, which the engine's lineage memory model reproduces. *)

type result = {
  distances : int array array;  (** [distances.(v).(i)] = hops from [v] to landmark [i], [max_int] if unreachable *)
  trace : Cutfit_bsp.Trace.t;
}

val run :
  ?max_supersteps:int ->
  ?scale:float ->
  ?cost:Cutfit_bsp.Cost_model.t ->
  ?checkpoint_every:int ->
  ?faults:Cutfit_bsp.Faults.config ->
  ?speculation:Cutfit_bsp.Speculation.config ->
  ?elastic:Cutfit_bsp.Elastic.config ->
  ?hetero:Cutfit_bsp.Elastic.hetero ->
  ?telemetry:Cutfit_obs.Telemetry.t ->
  cluster:Cutfit_bsp.Cluster.t ->
  landmarks:int array ->
  Cutfit_bsp.Pgraph.t ->
  result
(** [checkpoint_every] enables periodic lineage checkpoints, which let
    the road-network runs finish instead of reproducing the paper's
    out-of-memory failure.
    @raise Invalid_argument on an empty or out-of-range landmark set. *)

val run_csr :
  ?max_supersteps:int ->
  ?domains:int ->
  ?rounds:int ref ->
  landmarks:int array ->
  Cutfit_bsp.Csr.t ->
  int array array
(** Real execution on the compact {!Cutfit_bsp.Csr} layout; distances
    are bit-identical to {!run}'s at any [domains]. Defaults: 2000
    supersteps, 1 domain. [rounds] receives the number of executed
    scatter/reduce rounds.
    @raise Invalid_argument on an empty or out-of-range landmark set. *)

val pick_landmarks : seed:int64 -> count:int -> Cutfit_graph.Graph.t -> int array
(** Deterministically sample [count] distinct landmark vertices (the
    paper randomly selects 5 sources per dataset). *)

val reference : Cutfit_graph.Graph.t -> landmarks:int array -> int array array
(** Sequential BFS distances for validation. *)
