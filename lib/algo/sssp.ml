module Graph = Cutfit_graph.Graph
module Pregel = Cutfit_bsp.Pregel

type result = { distances : int array array; trace : Cutfit_bsp.Trace.t }

let infinity_dist = max_int

(* Distance vectors are tiny (one slot per landmark); messages carry a
   full vector, as GraphX ships the whole landmark map. *)
let improves ~candidate ~current =
  let better = ref false in
  Array.iteri (fun i c -> if c < current.(i) then better := true) candidate;
  !better

let pointwise_min a b = Array.mapi (fun i x -> min x b.(i)) a

let increment a = Array.map (fun d -> if d = infinity_dist then infinity_dist else d + 1) a

let program ~landmarks =
  let k = Array.length landmarks in
  let index_of = Hashtbl.create k in
  Array.iteri (fun i v -> Hashtbl.replace index_of v i) landmarks;
  let bytes = 96 + (64 * k) in
  {
    Pregel.init =
      (fun v ->
        let d = Array.make k infinity_dist in
        (match Hashtbl.find_opt index_of v with Some i -> d.(i) <- 0 | None -> ());
        d);
    initial_msg = Array.make k infinity_dist;
    vprog = (fun _ current m -> pointwise_min current m);
    send =
      (fun ~edge:_ ~src:_ ~dst:_ ~src_attr ~dst_attr ~emit ->
        let candidate = increment dst_attr in
        if improves ~candidate ~current:src_attr then emit Pregel.To_src candidate);
    merge = pointwise_min;
    state_bytes = bytes;
    msg_bytes = bytes;
  }

let run ?(max_supersteps = 2000) ?scale ?cost ?checkpoint_every ?faults ?speculation ?elastic ?hetero ?telemetry
    ~cluster ~landmarks pg =
  if Array.length landmarks = 0 then invalid_arg "Sssp.run: empty landmark set";
  let n = Graph.num_vertices (Cutfit_bsp.Pgraph.graph pg) in
  Array.iter
    (fun v -> if v < 0 || v >= n then invalid_arg "Sssp.run: landmark out of range")
    landmarks;
  let r =
    Pregel.run ~max_supersteps ?scale ?cost ?checkpoint_every ?faults ?speculation ?elastic ?hetero ?telemetry
      ~cluster pg (program ~landmarks)
  in
  { distances = r.Pregel.attrs; trace = r.Pregel.trace }

(* --- compact CSR kernel -------------------------------------------

   The landmark-vector recurrence on the flat layout. Vertex state is a
   flattened n*k int matrix; each accumulator slot holds a k-vector in
   the (slot * k) row of a per-run buffer (the preallocated [iacc] is
   one int per slot, too small for a vector payload). The combiner is
   pointwise [min] — order-exact ints — so any domain count reproduces
   the boxed engine's distances bit-for-bit. *)

module Csr = Cutfit_bsp.Csr
module Par_exec = Cutfit_bsp.Par_exec
module B1 = Bigarray.Array1

let chunk = 4096

let run_csr ?(max_supersteps = 2000) ?(domains = 1) ?rounds ~landmarks (c : Csr.t) =
  let n = c.Csr.num_vertices in
  let k = Array.length landmarks in
  if k = 0 then invalid_arg "Sssp.run_csr: empty landmark set";
  Array.iter
    (fun v -> if v < 0 || v >= n then invalid_arg "Sssp.run_csr: landmark out of range")
    landmarks;
  let parts = c.Csr.num_partitions in
  let part_off = c.Csr.part_off in
  let esrc = c.Csr.edge_src and edst = c.Csr.edge_dst in
  let sslot = c.Csr.src_slot in
  let red_off = c.Csr.red_off and red_slot = c.Csr.red_slot in
  let has = c.Csr.has in
  let dist = B1.create Bigarray.int Bigarray.c_layout (n * k) in
  B1.fill dist infinity_dist;
  Array.iteri (fun i l -> B1.unsafe_set dist ((l * k) + i) 0) landmarks;
  let macc = B1.create Bigarray.int Bigarray.c_layout (c.Csr.num_slots * k) in
  let cur = ref (Bytes.make n '\001') in
  let nxt = ref (Bytes.make n '\000') in
  let nchunks = (n + chunk - 1) / chunk in
  let chunk_touched = Array.make (max nchunks 1) 0 in
  let scatter p =
    let a = !cur in
    for e = B1.unsafe_get part_off p to B1.unsafe_get part_off (p + 1) - 1 do
      let s = B1.unsafe_get esrc e and d = B1.unsafe_get edst e in
      if Bytes.unsafe_get a s <> '\000' || Bytes.unsafe_get a d <> '\000' then begin
        (* candidate = increment (dist d); message flows to the source
           when any slot improves on its current vector. *)
        let sbase = s * k and dbase = d * k in
        let improves = ref false in
        for j = 0 to k - 1 do
          let dd = B1.unsafe_get dist (dbase + j) in
          if dd <> infinity_dist && dd + 1 < B1.unsafe_get dist (sbase + j) then improves := true
        done;
        if !improves then begin
          let slot = B1.unsafe_get sslot e in
          let mbase = slot * k in
          if Bytes.unsafe_get has slot = '\000' then begin
            Bytes.unsafe_set has slot '\001';
            for j = 0 to k - 1 do
              let dd = B1.unsafe_get dist (dbase + j) in
              B1.unsafe_set macc (mbase + j)
                (if dd = infinity_dist then infinity_dist else dd + 1)
            done
          end
          else
            for j = 0 to k - 1 do
              let dd = B1.unsafe_get dist (dbase + j) in
              let cand = if dd = infinity_dist then infinity_dist else dd + 1 in
              if cand < B1.unsafe_get macc (mbase + j) then B1.unsafe_set macc (mbase + j) cand
            done
        end
      end
    done
  in
  let reduce ch =
    let next = !nxt in
    let lo = ch * chunk and hi = min n ((ch * chunk) + chunk) in
    let touched = ref 0 in
    for v = lo to hi - 1 do
      let got = ref false in
      let vbase = v * k in
      for i = B1.unsafe_get red_off v to B1.unsafe_get red_off (v + 1) - 1 do
        let slot = B1.unsafe_get red_slot i in
        if Bytes.unsafe_get has slot <> '\000' then begin
          Bytes.unsafe_set has slot '\000';
          got := true;
          let mbase = slot * k in
          for j = 0 to k - 1 do
            let m = B1.unsafe_get macc (mbase + j) in
            if m < B1.unsafe_get dist (vbase + j) then B1.unsafe_set dist (vbase + j) m
          done
        end
      done;
      if !got then begin
        Bytes.unsafe_set next v '\001';
        incr touched
      end
      else Bytes.unsafe_set next v '\000'
    done;
    chunk_touched.(ch) <- !touched
  in
  let step = ref 1 in
  Par_exec.with_pool ~domains (fun pool ->
      let continue_ = ref true in
      while !continue_ do
        Par_exec.iter pool ~n:parts (fun _ p -> scatter p);
        Par_exec.iter pool ~n:nchunks (fun _ ch -> reduce ch);
        let touched = Array.fold_left ( + ) 0 chunk_touched in
        let swap = !cur in
        cur := !nxt;
        nxt := swap;
        if touched = 0 || !step >= max_supersteps then continue_ := false else incr step
      done);
  (match rounds with Some r -> r := !step | None -> ());
  Array.init n (fun v -> Array.init k (fun j -> B1.unsafe_get dist ((v * k) + j)))

let pick_landmarks ~seed ~count g =
  let rng = Cutfit_prng.Xoshiro.create seed in
  Cutfit_prng.Dist.sample_distinct rng ~n:(Graph.num_vertices g) ~k:count

let reference g ~landmarks =
  (* Forward distance from v to landmark = BFS from the landmark over
     reversed edges. *)
  let k = Array.length landmarks in
  let n = Graph.num_vertices g in
  let per_landmark =
    Array.map
      (fun l ->
        let dist = Array.make n max_int in
        let q = Queue.create () in
        dist.(l) <- 0;
        Queue.push l q;
        while not (Queue.is_empty q) do
          let v = Queue.pop q in
          Graph.iter_in g v (fun u ->
              if dist.(u) = max_int then begin
                dist.(u) <- dist.(v) + 1;
                Queue.push u q
              end)
        done;
        dist)
      landmarks
  in
  Array.init n (fun v -> Array.init k (fun i -> per_landmark.(i).(v)))
