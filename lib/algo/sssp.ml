module Graph = Cutfit_graph.Graph
module Pregel = Cutfit_bsp.Pregel

type result = { distances : int array array; trace : Cutfit_bsp.Trace.t }

let infinity_dist = max_int

(* Distance vectors are tiny (one slot per landmark); messages carry a
   full vector, as GraphX ships the whole landmark map. *)
let improves ~candidate ~current =
  let better = ref false in
  Array.iteri (fun i c -> if c < current.(i) then better := true) candidate;
  !better

let pointwise_min a b = Array.mapi (fun i x -> min x b.(i)) a

let increment a = Array.map (fun d -> if d = infinity_dist then infinity_dist else d + 1) a

let program ~landmarks =
  let k = Array.length landmarks in
  let index_of = Hashtbl.create k in
  Array.iteri (fun i v -> Hashtbl.replace index_of v i) landmarks;
  let bytes = 96 + (64 * k) in
  {
    Pregel.init =
      (fun v ->
        let d = Array.make k infinity_dist in
        (match Hashtbl.find_opt index_of v with Some i -> d.(i) <- 0 | None -> ());
        d);
    initial_msg = Array.make k infinity_dist;
    vprog = (fun _ current m -> pointwise_min current m);
    send =
      (fun ~edge:_ ~src:_ ~dst:_ ~src_attr ~dst_attr ~emit ->
        let candidate = increment dst_attr in
        if improves ~candidate ~current:src_attr then emit Pregel.To_src candidate);
    merge = pointwise_min;
    state_bytes = bytes;
    msg_bytes = bytes;
  }

let run ?(max_supersteps = 2000) ?scale ?cost ?checkpoint_every ?faults ?speculation ?telemetry
    ~cluster ~landmarks pg =
  if Array.length landmarks = 0 then invalid_arg "Sssp.run: empty landmark set";
  let n = Graph.num_vertices (Cutfit_bsp.Pgraph.graph pg) in
  Array.iter
    (fun v -> if v < 0 || v >= n then invalid_arg "Sssp.run: landmark out of range")
    landmarks;
  let r =
    Pregel.run ~max_supersteps ?scale ?cost ?checkpoint_every ?faults ?speculation ?telemetry
      ~cluster pg (program ~landmarks)
  in
  { distances = r.Pregel.attrs; trace = r.Pregel.trace }

let pick_landmarks ~seed ~count g =
  let rng = Cutfit_prng.Xoshiro.create seed in
  Cutfit_prng.Dist.sample_distinct rng ~n:(Graph.num_vertices g) ~k:count

let reference g ~landmarks =
  (* Forward distance from v to landmark = BFS from the landmark over
     reversed edges. *)
  let k = Array.length landmarks in
  let n = Graph.num_vertices g in
  let per_landmark =
    Array.map
      (fun l ->
        let dist = Array.make n max_int in
        let q = Queue.create () in
        dist.(l) <- 0;
        Queue.push l q;
        while not (Queue.is_empty q) do
          let v = Queue.pop q in
          Graph.iter_in g v (fun u ->
              if dist.(u) = max_int then begin
                dist.(u) <- dist.(v) + 1;
                Queue.push u q
              end)
        done;
        dist)
      landmarks
  in
  Array.init n (fun v -> Array.init k (fun i -> per_landmark.(i).(v)))
