(** Sanitizer for {!Cutfit_partition.Metrics}: proves a metrics record
    is the one its graph and assignment actually produce.

    [identity] checks internal consistency alone — array shapes,
    non-negative counts, [comm_cost >= 2 * cut], and the paper's §3.1
    identity [comm_cost + non_cut = vertices_to_same +
    vertices_to_other]. [validate] additionally recomputes every field
    from scratch ({!Cutfit_partition.Metrics.compute} and
    {!Cutfit_partition.Metrics.replica_count}) and demands exact
    agreement — bit-for-bit on floats, since the recomputation runs the
    same deterministic code on the same input. *)

val identity : Cutfit_partition.Metrics.t -> Violation.t list

val validate :
  Cutfit_graph.Graph.t ->
  num_partitions:int ->
  int array ->
  Cutfit_partition.Metrics.t ->
  Violation.t list
(** Malformed assignments are reported as violations (via
    {!Pgraph_check.assignment}), never raised. *)
