module Csr = Cutfit_bsp.Csr
module Par_exec = Cutfit_bsp.Par_exec
module Ownership = Cutfit_bsp.Ownership
module Graph = Cutfit_graph.Graph
module B1 = Bigarray.Array1

let suite = "races"
let default_domains = [ 1; 2; 4 ]

type corruption = Clean | Foreign_write | Premature_read

(* Corruptions are shadow-only: they seed protocol-violating ownership
   records without touching the accumulator buffers, so the seeded runs
   still digest-match the production kernels and leave the shared Csr
   buffers clean for whoever runs next. *)
let seed_corruption own ~corruption ~step ~worker ~item =
  if step = 1 then
    match corruption with
    | Clean -> ()
    | Foreign_write ->
        (* Items 0 and 1 both claim slot 0 in the scatter epoch: the
           "one slot written by two items" race, made deterministic. *)
        if item <= 1 then Ownership.write own ~worker ~item 0
    | Premature_read ->
        (* Item 0 consumes its own slot before the epoch's barrier —
           the reduction-read-too-early race. *)
        if item = 0 then begin
          Ownership.write own ~worker ~item 0;
          Ownership.read own ~worker ~item 0
        end

(* Same vertices-per-reduce-item constant as the production kernels. *)
let chunk = 4096

(* --- instrumented kernels -----------------------------------------

   Line-for-line mirrors of the [run_csr] kernels in [Cutfit_algo],
   with one [Ownership.write] per accumulator-slot write in scatter and
   one [Ownership.read] per slot consume in reduce, phases driven by
   [Par_exec.iter_shadowed] so the discipline is checked at every
   barrier. Mirroring (instead of instrumenting the production code)
   keeps the hot kernels free of sanitizer branches; the [instr-vs-csr]
   digest rule below proves the mirrors faithful. *)

let pagerank_instr ?(iterations = 10) ~domains ~corruption (c : Csr.t) =
  let own = Csr.shadow ~workers:domains c in
  let n = c.Csr.num_vertices in
  let parts = c.Csr.num_partitions in
  let part_off = c.Csr.part_off in
  let esrc = c.Csr.edge_src and edst = c.Csr.edge_dst in
  let dslot = c.Csr.dst_slot in
  let out_deg = c.Csr.out_deg in
  let red_off = c.Csr.red_off and red_slot = c.Csr.red_slot in
  let facc = c.Csr.facc and has = c.Csr.has in
  let rank = B1.create Bigarray.float64 Bigarray.c_layout n in
  B1.fill rank 1.0;
  let cur = ref (Bytes.make n '\001') in
  let nxt = ref (Bytes.make n '\000') in
  let nchunks = (n + chunk - 1) / chunk in
  let chunk_touched = Array.make (max nchunks 1) 0 in
  let step = ref 1 in
  let scatter w p =
    seed_corruption own ~corruption ~step:!step ~worker:w ~item:p;
    let a = !cur in
    for e = B1.unsafe_get part_off p to B1.unsafe_get part_off (p + 1) - 1 do
      let s = B1.unsafe_get esrc e and d = B1.unsafe_get edst e in
      if Bytes.unsafe_get a s <> '\000' || Bytes.unsafe_get a d <> '\000' then begin
        let deg = B1.unsafe_get out_deg s in
        if deg > 0 then begin
          let m = B1.unsafe_get rank s /. float_of_int deg in
          let slot = B1.unsafe_get dslot e in
          Ownership.write own ~worker:w ~item:p slot;
          if Bytes.unsafe_get has slot = '\000' then begin
            Bytes.unsafe_set has slot '\001';
            B1.unsafe_set facc slot m
          end
          else B1.unsafe_set facc slot (B1.unsafe_get facc slot +. m)
        end
      end
    done
  in
  let reduce w ch =
    let next = !nxt in
    let lo = ch * chunk and hi = min n ((ch * chunk) + chunk) in
    let touched = ref 0 in
    for v = lo to hi - 1 do
      let total = ref 0.0 and got = ref false in
      for i = B1.unsafe_get red_off v to B1.unsafe_get red_off (v + 1) - 1 do
        let slot = B1.unsafe_get red_slot i in
        if Bytes.unsafe_get has slot <> '\000' then begin
          Ownership.read own ~worker:w ~item:ch slot;
          Bytes.unsafe_set has slot '\000';
          if !got then total := !total +. B1.unsafe_get facc slot
          else begin
            got := true;
            total := B1.unsafe_get facc slot
          end
        end
      done;
      if !got then begin
        B1.unsafe_set rank v (0.15 +. (0.85 *. !total));
        Bytes.unsafe_set next v '\001';
        incr touched
      end
      else Bytes.unsafe_set next v '\000'
    done;
    chunk_touched.(ch) <- !touched
  in
  Par_exec.with_pool ~domains (fun pool ->
      let continue_ = ref true in
      while !continue_ do
        Par_exec.iter_shadowed pool ~shadow:own ~n:parts (fun w p -> scatter w p);
        Par_exec.iter_shadowed pool ~shadow:own ~n:nchunks (fun w ch -> reduce w ch);
        let touched = Array.fold_left ( + ) 0 chunk_touched in
        let swap = !cur in
        cur := !nxt;
        nxt := swap;
        if touched = 0 || !step >= iterations then continue_ := false else incr step
      done);
  (own, Array.init n (fun v -> B1.unsafe_get rank v))

let cc_instr ?(iterations = 10) ~domains (c : Csr.t) =
  let own = Csr.shadow ~workers:domains c in
  let n = c.Csr.num_vertices in
  let parts = c.Csr.num_partitions in
  let part_off = c.Csr.part_off in
  let esrc = c.Csr.edge_src and edst = c.Csr.edge_dst in
  let sslot = c.Csr.src_slot and dslot = c.Csr.dst_slot in
  let red_off = c.Csr.red_off and red_slot = c.Csr.red_slot in
  let iacc = c.Csr.iacc and has = c.Csr.has in
  let label = B1.create Bigarray.int Bigarray.c_layout n in
  for v = 0 to n - 1 do
    B1.unsafe_set label v v
  done;
  let cur = ref (Bytes.make n '\001') in
  let nxt = ref (Bytes.make n '\000') in
  let nchunks = (n + chunk - 1) / chunk in
  let chunk_touched = Array.make (max nchunks 1) 0 in
  let contribute w p slot m =
    Ownership.write own ~worker:w ~item:p slot;
    if Bytes.unsafe_get has slot = '\000' then begin
      Bytes.unsafe_set has slot '\001';
      B1.unsafe_set iacc slot m
    end
    else if m < B1.unsafe_get iacc slot then B1.unsafe_set iacc slot m
  in
  let scatter w p =
    let a = !cur in
    for e = B1.unsafe_get part_off p to B1.unsafe_get part_off (p + 1) - 1 do
      let s = B1.unsafe_get esrc e and d = B1.unsafe_get edst e in
      if Bytes.unsafe_get a s <> '\000' || Bytes.unsafe_get a d <> '\000' then begin
        let ls = B1.unsafe_get label s and ld = B1.unsafe_get label d in
        if ls < ld then contribute w p (B1.unsafe_get dslot e) ls
        else if ld < ls then contribute w p (B1.unsafe_get sslot e) ld
      end
    done
  in
  let reduce w ch =
    let next = !nxt in
    let lo = ch * chunk and hi = min n ((ch * chunk) + chunk) in
    let touched = ref 0 in
    for v = lo to hi - 1 do
      let best = ref max_int and got = ref false in
      for i = B1.unsafe_get red_off v to B1.unsafe_get red_off (v + 1) - 1 do
        let slot = B1.unsafe_get red_slot i in
        if Bytes.unsafe_get has slot <> '\000' then begin
          Ownership.read own ~worker:w ~item:ch slot;
          Bytes.unsafe_set has slot '\000';
          got := true;
          let m = B1.unsafe_get iacc slot in
          if m < !best then best := m
        end
      done;
      if !got then begin
        if !best < B1.unsafe_get label v then B1.unsafe_set label v !best;
        Bytes.unsafe_set next v '\001';
        incr touched
      end
      else Bytes.unsafe_set next v '\000'
    done;
    chunk_touched.(ch) <- !touched
  in
  let step = ref 1 in
  Par_exec.with_pool ~domains (fun pool ->
      let continue_ = ref true in
      while !continue_ do
        Par_exec.iter_shadowed pool ~shadow:own ~n:parts (fun w p -> scatter w p);
        Par_exec.iter_shadowed pool ~shadow:own ~n:nchunks (fun w ch -> reduce w ch);
        let touched = Array.fold_left ( + ) 0 chunk_touched in
        let swap = !cur in
        cur := !nxt;
        nxt := swap;
        if touched = 0 || !step >= iterations then continue_ := false else incr step
      done);
  (own, Array.init n (fun v -> B1.unsafe_get label v))

let sssp_instr ?(max_supersteps = 2000) ~domains ~landmarks (c : Csr.t) =
  let own = Csr.shadow ~workers:domains c in
  let n = c.Csr.num_vertices in
  let k = Array.length landmarks in
  if k = 0 then invalid_arg "Race_check.sssp_instr: empty landmark set";
  let parts = c.Csr.num_partitions in
  let part_off = c.Csr.part_off in
  let esrc = c.Csr.edge_src and edst = c.Csr.edge_dst in
  let sslot = c.Csr.src_slot in
  let red_off = c.Csr.red_off and red_slot = c.Csr.red_slot in
  let has = c.Csr.has in
  let infinity_dist = max_int in
  let dist = B1.create Bigarray.int Bigarray.c_layout (n * k) in
  B1.fill dist infinity_dist;
  Array.iteri (fun i l -> B1.unsafe_set dist ((l * k) + i) 0) landmarks;
  let macc = B1.create Bigarray.int Bigarray.c_layout (c.Csr.num_slots * k) in
  let cur = ref (Bytes.make n '\001') in
  let nxt = ref (Bytes.make n '\000') in
  let nchunks = (n + chunk - 1) / chunk in
  let chunk_touched = Array.make (max nchunks 1) 0 in
  let scatter w p =
    let a = !cur in
    for e = B1.unsafe_get part_off p to B1.unsafe_get part_off (p + 1) - 1 do
      let s = B1.unsafe_get esrc e and d = B1.unsafe_get edst e in
      if Bytes.unsafe_get a s <> '\000' || Bytes.unsafe_get a d <> '\000' then begin
        let sbase = s * k and dbase = d * k in
        let improves = ref false in
        for j = 0 to k - 1 do
          let dd = B1.unsafe_get dist (dbase + j) in
          if dd <> infinity_dist && dd + 1 < B1.unsafe_get dist (sbase + j) then improves := true
        done;
        if !improves then begin
          let slot = B1.unsafe_get sslot e in
          let mbase = slot * k in
          Ownership.write own ~worker:w ~item:p slot;
          if Bytes.unsafe_get has slot = '\000' then begin
            Bytes.unsafe_set has slot '\001';
            for j = 0 to k - 1 do
              let dd = B1.unsafe_get dist (dbase + j) in
              B1.unsafe_set macc (mbase + j)
                (if dd = infinity_dist then infinity_dist else dd + 1)
            done
          end
          else
            for j = 0 to k - 1 do
              let dd = B1.unsafe_get dist (dbase + j) in
              let cand = if dd = infinity_dist then infinity_dist else dd + 1 in
              if cand < B1.unsafe_get macc (mbase + j) then B1.unsafe_set macc (mbase + j) cand
            done
        end
      end
    done
  in
  let reduce w ch =
    let next = !nxt in
    let lo = ch * chunk and hi = min n ((ch * chunk) + chunk) in
    let touched = ref 0 in
    for v = lo to hi - 1 do
      let got = ref false in
      let vbase = v * k in
      for i = B1.unsafe_get red_off v to B1.unsafe_get red_off (v + 1) - 1 do
        let slot = B1.unsafe_get red_slot i in
        if Bytes.unsafe_get has slot <> '\000' then begin
          Ownership.read own ~worker:w ~item:ch slot;
          Bytes.unsafe_set has slot '\000';
          got := true;
          let mbase = slot * k in
          for j = 0 to k - 1 do
            let m = B1.unsafe_get macc (mbase + j) in
            if m < B1.unsafe_get dist (vbase + j) then B1.unsafe_set dist (vbase + j) m
          done
        end
      done;
      if !got then begin
        Bytes.unsafe_set next v '\001';
        incr touched
      end
      else Bytes.unsafe_set next v '\000'
    done;
    chunk_touched.(ch) <- !touched
  in
  let step = ref 1 in
  Par_exec.with_pool ~domains (fun pool ->
      let continue_ = ref true in
      while !continue_ do
        Par_exec.iter_shadowed pool ~shadow:own ~n:parts (fun w p -> scatter w p);
        Par_exec.iter_shadowed pool ~shadow:own ~n:nchunks (fun w ch -> reduce w ch);
        let touched = Array.fold_left ( + ) 0 chunk_touched in
        let swap = !cur in
        cur := !nxt;
        nxt := swap;
        if touched = 0 || !step >= max_supersteps then continue_ := false else incr step
      done);
  (own, Array.init n (fun v -> Array.init k (fun j -> B1.unsafe_get dist ((v * k) + j))))

let triangle_instr ~domains (c : Csr.t) =
  (* Triangle counting has no accumulator slots: scatter counts into
     worker-owned arrays (race-free by construction, not tracked) and
     the tracked discipline is the reduce phase's per-vertex writes —
     hence a vertex-space recorder. *)
  let own = Csr.shadow ~vertex_space:true ~workers:domains c in
  let g = c.Csr.graph in
  let n = c.Csr.num_vertices in
  let parts = c.Csr.num_partitions in
  let part_off = c.Csr.part_off in
  let esrc = c.Csr.edge_src and edst = c.Csr.edge_dst in
  let und = Graph.symmetrize g in
  let und_off = B1.create Bigarray.int Bigarray.c_layout (n + 1) in
  B1.unsafe_set und_off 0 0;
  for v = 0 to n - 1 do
    B1.unsafe_set und_off (v + 1) (B1.unsafe_get und_off v + Graph.out_degree und v)
  done;
  let und_adj = B1.create Bigarray.int Bigarray.c_layout (B1.unsafe_get und_off n) in
  for v = 0 to n - 1 do
    let i = ref (B1.unsafe_get und_off v) in
    Graph.iter_out und v (fun u ->
        B1.unsafe_set und_adj !i u;
        incr i)
  done;
  let worker_counts = Array.init domains (fun _ -> Array.make n 0) in
  let scatter w p =
    let counts = worker_counts.(w) in
    for e = B1.unsafe_get part_off p to B1.unsafe_get part_off (p + 1) - 1 do
      let src = B1.unsafe_get esrc e and dst = B1.unsafe_get edst e in
      let canonical = src <> dst && (src < dst || not (Graph.has_edge g ~src:dst ~dst:src)) in
      if canonical then begin
        let alo = B1.unsafe_get und_off src and ahi = B1.unsafe_get und_off (src + 1) in
        let blo = B1.unsafe_get und_off dst and bhi = B1.unsafe_get und_off (dst + 1) in
        let slo, shi, glo, ghi =
          if ahi - alo <= bhi - blo then (alo, ahi, blo, bhi) else (blo, bhi, alo, ahi)
        in
        for i = slo to shi - 1 do
          let x = B1.unsafe_get und_adj i in
          if x > src && x > dst then begin
            let lo = ref glo and hi = ref (ghi - 1) and found = ref false in
            while (not !found) && !lo <= !hi do
              let mid = (!lo + !hi) / 2 in
              let y = B1.unsafe_get und_adj mid in
              if y = x then found := true else if y < x then lo := mid + 1 else hi := mid - 1
            done;
            if !found then begin
              counts.(src) <- counts.(src) + 1;
              counts.(dst) <- counts.(dst) + 1;
              counts.(x) <- counts.(x) + 1
            end
          end
        done
      end
    done
  in
  let per_vertex = Array.make n 0 in
  let nchunks = (n + chunk - 1) / chunk in
  let reduce w ch =
    let lo = ch * chunk and hi = min n ((ch * chunk) + chunk) in
    for v = lo to hi - 1 do
      let total = ref 0 in
      for u = 0 to domains - 1 do
        total := !total + worker_counts.(u).(v)
      done;
      Ownership.write own ~worker:w ~item:ch v;
      per_vertex.(v) <- !total
    done
  in
  Par_exec.with_pool ~domains (fun pool ->
      Par_exec.iter_shadowed pool ~shadow:own ~n:parts (fun w p -> scatter w p);
      Par_exec.iter_shadowed pool ~shadow:own ~n:nchunks (fun w ch -> reduce w ch));
  (own, per_vertex, Array.fold_left ( + ) 0 per_vertex / 3)

(* --- violation assembly -------------------------------------------- *)

let conflict_violations ~label ~domains own =
  List.map
    (fun (cf : Ownership.conflict) ->
      Violation.v ~suite ~rule:cf.Ownership.rule "%s (domains=%d): %a" label domains
        Ownership.pp_conflict cf)
    (Ownership.violations own)

(* The generic clean check: per domain count, the instrumented kernel
   must (1) record no ownership conflict and (2) digest-match the
   production kernel — the proof that the mirror instruments the code
   we actually ship. *)
let check_kernel ~label ~csr_digest ~instr domains_counts =
  let oracle = csr_digest () in
  List.concat_map
    (fun domains ->
      let own, digest = instr ~domains in
      let vs = conflict_violations ~label ~domains own in
      if String.compare digest oracle <> 0 then
        vs
        @ [
            Violation.v ~suite ~rule:"instr-vs-csr"
              "%s: instrumented digest %s (domains=%d) <> csr digest %s" label digest domains
              oracle;
          ]
      else vs)
    domains_counts

let pagerank ?(iterations = 10) ?(domains_counts = default_domains) pg =
  let c = Csr.build pg in
  check_kernel ~label:"pagerank"
    ~csr_digest:(fun () ->
      Fault_check.float_attrs_digest (Cutfit_algo.Pagerank.run_csr ~iterations c))
    ~instr:(fun ~domains ->
      let own, ranks = pagerank_instr ~iterations ~domains ~corruption:Clean c in
      (own, Fault_check.float_attrs_digest ranks))
    domains_counts

let connected_components ?(iterations = 10) ?(domains_counts = default_domains) pg =
  let c = Csr.build pg in
  check_kernel ~label:"connected-components"
    ~csr_digest:(fun () ->
      Fault_check.int_attrs_digest (Cutfit_algo.Connected_components.run_csr ~iterations c))
    ~instr:(fun ~domains ->
      let own, labels = cc_instr ~iterations ~domains c in
      (own, Fault_check.int_attrs_digest labels))
    domains_counts

let shortest_paths ?(max_supersteps = 2000) ?(domains_counts = default_domains) ~landmarks pg =
  let c = Csr.build pg in
  let digest distances = Fault_check.int_attrs_digest (Array.concat (Array.to_list distances)) in
  check_kernel ~label:"shortest-paths"
    ~csr_digest:(fun () -> digest (Cutfit_algo.Sssp.run_csr ~max_supersteps ~landmarks c))
    ~instr:(fun ~domains ->
      let own, distances = sssp_instr ~max_supersteps ~domains ~landmarks c in
      (own, digest distances))
    domains_counts

let triangle_count ?(domains_counts = default_domains) pg =
  let c = Csr.build pg in
  check_kernel ~label:"triangle-count"
    ~csr_digest:(fun () ->
      let per_vertex, total = Cutfit_algo.Triangle_count.run_csr c in
      Fault_check.int_attrs_digest (Array.append per_vertex [| total |]))
    ~instr:(fun ~domains ->
      let own, per_vertex, total = triangle_instr ~domains c in
      (own, Fault_check.int_attrs_digest (Array.append per_vertex [| total |])))
    domains_counts

(* --- seeded corruptions -------------------------------------------- *)

let seeded ~corruption ?(domains = 2) pg =
  let c = Csr.build pg in
  let own, _ = pagerank_instr ~iterations:2 ~domains ~corruption c in
  conflict_violations ~label:"seeded-pagerank" ~domains own

let seeded_foreign_write ?domains pg = seeded ~corruption:Foreign_write ?domains pg
let seeded_premature_read ?domains pg = seeded ~corruption:Premature_read ?domains pg

let has_rule rule vs =
  List.exists (fun (v : Violation.t) -> String.equal v.Violation.rule rule) vs

let self_check ?(domains = 2) pg =
  let vs = ref [] in
  if not (has_rule "slot-conflict" (seeded_foreign_write ~domains pg)) then
    vs :=
      Violation.v ~suite ~rule:"corruption-undetected"
        "seeded two-writer corruption produced no slot-conflict at domains=%d" domains
      :: !vs;
  if not (has_rule "premature-read" (seeded_premature_read ~domains pg)) then
    vs :=
      Violation.v ~suite ~rule:"corruption-undetected"
        "seeded premature-reduction read went undetected at domains=%d" domains
      :: !vs;
  List.rev !vs
