module Csr = Cutfit_bsp.Csr

let suite = "engines"
let default_domains = [ 1; 2; 4 ]

(* The generic checker: one boxed oracle digest, then per domain count
   two compact runs. [boxed] and [csr] both return the canonical digest
   of the final vertex values, so an algorithm only has to say how it
   runs and how its values digest. *)
let check ~label ~boxed ~csr domains_counts =
  let oracle = boxed () in
  List.concat_map
    (fun domains ->
      let first = csr ~domains in
      let second = csr ~domains in
      let vs = ref [] in
      if String.compare first oracle <> 0 then
        vs :=
          Violation.v ~suite ~rule:"boxed-vs-csr"
            "%s: csr digest %s (domains=%d) <> boxed digest %s" label first domains oracle
          :: !vs;
      if String.compare second first <> 0 then
        vs :=
          Violation.v ~suite ~rule:"run-twice"
            "%s: csr run-twice digests differ at domains=%d: %s then %s" label domains first
            second
          :: !vs;
      List.rev !vs)
    domains_counts

let pagerank ?(iterations = 10) ?(domains_counts = default_domains) ~cluster pg =
  let c = Csr.build pg in
  check ~label:"pagerank"
    ~boxed:(fun () ->
      let r = Cutfit_algo.Pagerank.run ~iterations ~cluster pg in
      Fault_check.float_attrs_digest r.Cutfit_algo.Pagerank.ranks)
    ~csr:(fun ~domains ->
      Fault_check.float_attrs_digest (Cutfit_algo.Pagerank.run_csr ~iterations ~domains c))
    domains_counts

let connected_components ?(iterations = 10) ?(domains_counts = default_domains) ~cluster pg =
  let c = Csr.build pg in
  check ~label:"connected-components"
    ~boxed:(fun () ->
      let r = Cutfit_algo.Connected_components.run ~iterations ~cluster pg in
      Fault_check.int_attrs_digest r.Cutfit_algo.Connected_components.labels)
    ~csr:(fun ~domains ->
      Fault_check.int_attrs_digest
        (Cutfit_algo.Connected_components.run_csr ~iterations ~domains c))
    domains_counts

let triangle_count ?(domains_counts = default_domains) ~cluster pg =
  let c = Csr.build pg in
  check ~label:"triangle-count"
    ~boxed:(fun () ->
      let r = Cutfit_algo.Triangle_count.run ~cluster pg in
      Fault_check.int_attrs_digest
        (Array.append r.Cutfit_algo.Triangle_count.per_vertex
           [| r.Cutfit_algo.Triangle_count.total |]))
    ~csr:(fun ~domains ->
      let per_vertex, total = Cutfit_algo.Triangle_count.run_csr ~domains c in
      Fault_check.int_attrs_digest (Array.append per_vertex [| total |]))
    domains_counts

let shortest_paths ?(max_supersteps = 2000) ?(domains_counts = default_domains) ~landmarks
    ~cluster pg =
  let c = Csr.build pg in
  let digest distances = Fault_check.int_attrs_digest (Array.concat (Array.to_list distances)) in
  check ~label:"shortest-paths"
    ~boxed:(fun () ->
      let r = Cutfit_algo.Sssp.run ~max_supersteps ~cluster ~landmarks pg in
      digest r.Cutfit_algo.Sssp.distances)
    ~csr:(fun ~domains ->
      digest (Cutfit_algo.Sssp.run_csr ~max_supersteps ~domains ~landmarks c))
    domains_counts
