module Trace = Cutfit_bsp.Trace
module Event = Cutfit_obs.Event

let suite = "trace"

type payload = { msg_wire_bytes : float; attr_wire_bytes : float; scale : float }

let feq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

(* Byte totals are accumulated per executor and scaled, so the payload
   cross-check recomputes them in a different association order; exact
   equality is not available there, only everywhere a value is
   propagated unchanged. *)
let close a b =
  let tol = 1e-9 *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b)) in
  Float.abs (a -. b) <= tol

let validate ?payload (t : Trace.t) =
  let acc = ref [] in
  let bad rule fmt = Format.kasprintf (fun d -> acc := Violation.v ~suite ~rule "%s" d :: !acc) fmt in
  (* Stage ordering: an optional build stage (-1) followed by strictly
     increasing compute supersteps. *)
  (match t.Trace.supersteps with
  | [] -> ()
  | first :: _ ->
      if first.Trace.step > 0 then bad "step-order" "first stage is step %d" first.Trace.step;
      ignore
        (List.fold_left
           (fun prev (s : Trace.superstep) ->
             (match prev with
             | Some p when s.Trace.step <> p + 1 ->
                 bad "step-order" "step %d follows step %d" s.Trace.step p
             | _ -> ());
             Some s.Trace.step)
           None t.Trace.supersteps));
  List.iter
    (fun (s : Trace.superstep) ->
      let step = s.Trace.step in
      List.iter
        (fun (name, v) ->
          if v < 0 then bad "negative-count" "step %d: %s = %d, expected >= 0" step name v)
        [
          ("active_edges", s.Trace.active_edges);
          ("messages", s.Trace.messages);
          ("shuffle_groups", s.Trace.shuffle_groups);
          ("remote_shuffles", s.Trace.remote_shuffles);
          ("updated_vertices", s.Trace.updated_vertices);
          ("broadcast_replicas", s.Trace.broadcast_replicas);
          ("remote_broadcasts", s.Trace.remote_broadcasts);
        ];
      (* Conservation: every emitted message is merged into exactly one
         (vertex, partition) aggregate, so aggregates cannot outnumber
         messages; remote subsets cannot outgrow their totals. *)
      if s.Trace.shuffle_groups > s.Trace.messages then
        bad "message-conservation" "step %d: %d shuffle groups from only %d messages" step
          s.Trace.shuffle_groups s.Trace.messages;
      if s.Trace.remote_shuffles > s.Trace.shuffle_groups then
        bad "shuffle-conservation" "step %d: remote_shuffles %d > shuffle_groups %d" step
          s.Trace.remote_shuffles s.Trace.shuffle_groups;
      if s.Trace.remote_broadcasts > s.Trace.broadcast_replicas then
        bad "broadcast-conservation" "step %d: remote_broadcasts %d > broadcast_replicas %d" step
          s.Trace.remote_broadcasts s.Trace.broadcast_replicas;
      if s.Trace.wire_bytes < 0.0 then
        bad "wire-bytes" "step %d: wire_bytes = %g < 0" step s.Trace.wire_bytes;
      (* Compute supersteps move bytes only for remote traffic (the
         build stage shuffles raw edges and is exempt). *)
      if
        step >= 0
        && s.Trace.remote_shuffles + s.Trace.remote_broadcasts = 0
        && s.Trace.wire_bytes <> 0.0
      then
        bad "wire-without-remote" "step %d: %g wire bytes with no remote messages" step
          s.Trace.wire_bytes;
      (match payload with
      | Some { msg_wire_bytes; attr_wire_bytes; scale } when step >= 0 ->
          let expect =
            scale
            *. ((float_of_int s.Trace.remote_shuffles *. msg_wire_bytes)
               +. (float_of_int s.Trace.remote_broadcasts *. attr_wire_bytes))
          in
          if not (close s.Trace.wire_bytes expect) then
            bad "wire-payload"
              "step %d: wire_bytes = %.17g but %d remote shuffles x %g + %d remote broadcasts x \
               %g at scale %g = %.17g"
              step s.Trace.wire_bytes s.Trace.remote_shuffles msg_wire_bytes
              s.Trace.remote_broadcasts attr_wire_bytes scale expect
      | _ -> ());
      if not (feq s.Trace.time_s (Float.max s.Trace.compute_s s.Trace.network_s +. s.Trace.overhead_s))
      then
        bad "time-decomposition"
          "step %d: time_s = %.17g but max(compute %.17g, network %.17g) + overhead %.17g = %.17g"
          step s.Trace.time_s s.Trace.compute_s s.Trace.network_s s.Trace.overhead_s
          (Float.max s.Trace.compute_s s.Trace.network_s +. s.Trace.overhead_s))
    t.Trace.supersteps;
  (* Total time is rebuilt with the same left fold the engines use, so
     the comparison is exact. *)
  let total =
    List.fold_left
      (fun a (s : Trace.superstep) -> a +. s.Trace.time_s)
      (t.Trace.load_s +. t.Trace.checkpoint_s +. t.Trace.recovery_s +. t.Trace.reshuffle_s)
      t.Trace.supersteps
  in
  if not (feq total t.Trace.total_s) then
    bad "total-time"
      "total_s = %.17g but load + checkpoints + recovery + reshuffles + supersteps = %.17g"
      t.Trace.total_s total;
  if t.Trace.checkpoints = 0 && t.Trace.checkpoint_s <> 0.0 then
    bad "checkpoint-time" "%g checkpoint seconds recorded with zero checkpoints"
      t.Trace.checkpoint_s;
  (* Recovery accounting: every recovery is itemized, its cost folds up
     to the trace total exactly, and no recovery exists without a fault
     having been injected. *)
  let recovery_total =
    List.fold_left (fun a (r : Trace.recovery) -> a +. r.Trace.recovery_s) 0.0 t.Trace.recoveries
  in
  if not (feq recovery_total t.Trace.recovery_s) then
    bad "recovery-time" "recovery_s = %.17g but itemized recoveries sum to %.17g"
      t.Trace.recovery_s recovery_total;
  if t.Trace.faults_injected < 0 then
    bad "fault-count" "faults_injected = %d < 0" t.Trace.faults_injected;
  if List.length t.Trace.recoveries > t.Trace.faults_injected then
    bad "recovery-without-fault" "%d recoveries recorded for %d injected faults"
      (List.length t.Trace.recoveries) t.Trace.faults_injected;
  List.iter
    (fun (r : Trace.recovery) ->
      (match r.Trace.kind with
      | "rollback" | "lineage" | "shuffle-retry" | "preempt" -> ()
      | k -> bad "recovery-kind" "step %d: unknown recovery kind %S" r.Trace.at_step k);
      if r.Trace.recovery_s < 0.0 then
        bad "recovery-cost" "step %d: recovery_s = %g < 0" r.Trace.at_step r.Trace.recovery_s;
      if r.Trace.recovery_wire_bytes < 0.0 then
        bad "recovery-cost" "step %d: recovery_wire_bytes = %g < 0" r.Trace.at_step
          r.Trace.recovery_wire_bytes;
      if r.Trace.replayed_steps < 0 || r.Trace.lost_edges < 0 || r.Trace.lost_replicas < 0 then
        bad "recovery-cost" "step %d: negative recovery counters" r.Trace.at_step;
      if
        (not (String.equal r.Trace.kind "rollback"))
        && r.Trace.replayed_steps <> 0
      then
        bad "recovery-shape" "step %d: %s recovery replayed %d steps" r.Trace.at_step r.Trace.kind
          r.Trace.replayed_steps;
      (* Lineage rebuilds and spot preemptions both lose resident
         partitions; rollbacks and shuffle retries never do. *)
      if
        (not (String.equal r.Trace.kind "lineage" || String.equal r.Trace.kind "preempt"))
        && (r.Trace.lost_edges <> 0 || r.Trace.lost_replicas <> 0)
      then
        bad "recovery-shape" "step %d: %s recovery claims lost partitions" r.Trace.at_step
          r.Trace.kind)
    t.Trace.recoveries;
  (* Speculation accounting: every clone is itemized, its extra compute
     folds up to the trace total exactly, and each record is internally
     consistent — the clone ran elsewhere, the win flag matches the
     busy-time comparison, and the superstep the clone raced in pays at
     least the winner's busy time. speculation_s is deliberately NOT
     part of total_s (the clone burns a different executor's cycles in
     parallel), which the total-time law above already enforces. *)
  let speculation_total =
    List.fold_left
      (fun a (s : Trace.speculation) -> a +. s.Trace.speculative_compute_s)
      0.0 t.Trace.speculations
  in
  if not (feq speculation_total t.Trace.speculation_s) then
    bad "speculation-time" "speculation_s = %.17g but itemized clones sum to %.17g"
      t.Trace.speculation_s speculation_total;
  List.iter
    (fun (s : Trace.speculation) ->
      let step = s.Trace.at_step in
      if step < 1 then bad "speculation-step" "speculation at step %d: clones race only at compute supersteps" step;
      if s.Trace.host = s.Trace.executor then
        bad "speculation-shape" "step %d: clone hosted on the straggler itself (executor %d)" step
          s.Trace.executor;
      if s.Trace.executor < 0 || s.Trace.host < 0 then
        bad "speculation-shape" "step %d: negative executor ids (%d -> %d)" step s.Trace.executor
          s.Trace.host;
      if s.Trace.cloned_partitions <= 0 then
        bad "speculation-shape" "step %d: clone of %d partitions" step s.Trace.cloned_partitions;
      if
        s.Trace.original_busy_s <= 0.0 || s.Trace.clone_busy_s < 0.0
        || s.Trace.speculative_compute_s < 0.0
        || s.Trace.speculative_wire_bytes < 0.0
      then bad "speculation-cost" "step %d: negative speculation cost component" step;
      if s.Trace.won <> (s.Trace.clone_busy_s < s.Trace.original_busy_s) then
        bad "speculation-winner" "step %d: won = %b yet clone busy %.17g vs original %.17g" step
          s.Trace.won s.Trace.clone_busy_s s.Trace.original_busy_s;
      let saved = if s.Trace.won then s.Trace.original_busy_s -. s.Trace.clone_busy_s else 0.0 in
      if not (feq s.Trace.saved_s saved) then
        bad "speculation-saved" "step %d: saved_s = %.17g, expected %.17g" step s.Trace.saved_s
          saved;
      match
        List.find_opt (fun (ss : Trace.superstep) -> ss.Trace.step = step) t.Trace.supersteps
      with
      | None -> bad "speculation-step" "speculation at step %d which the trace never ran" step
      | Some ss ->
          let winner = if s.Trace.won then s.Trace.clone_busy_s else s.Trace.original_busy_s in
          if ss.Trace.compute_s < winner then
            bad "speculation-compute" "step %d: compute_s %.17g < winning busy time %.17g" step
              ss.Trace.compute_s winner)
    t.Trace.speculations;
  (* Reshuffle accounting: every membership change is itemized, its cost
     folds up to the trace total exactly, and each record conserves the
     quantities a re-homing can touch — membership actually changed,
     nothing was created or destroyed, and zero moved partitions means
     zero moved (and re-broadcast) bytes. *)
  let reshuffle_total =
    List.fold_left (fun a (r : Trace.reshuffle) -> a +. r.Trace.reshuffle_s) 0.0 t.Trace.reshuffles
  in
  if not (feq reshuffle_total t.Trace.reshuffle_s) then
    bad "reshuffle-time" "reshuffle_s = %.17g but itemized reshuffles sum to %.17g"
      t.Trace.reshuffle_s reshuffle_total;
  List.iter
    (fun (r : Trace.reshuffle) ->
      let step = r.Trace.resh_step in
      if r.Trace.executors_before <= 0 || r.Trace.executors_after <= 0 then
        bad "reshuffle-shape" "step %d: non-positive membership (%d -> %d)" step
          r.Trace.executors_before r.Trace.executors_after;
      if r.Trace.executors_before = r.Trace.executors_after then
        bad "reshuffle-shape" "step %d: reshuffle without a membership change (%d executors)" step
          r.Trace.executors_before;
      if r.Trace.moved_partitions < 0 || r.Trace.rebroadcast_replicas < 0 then
        bad "reshuffle-cost" "step %d: negative reshuffle counters" step;
      if r.Trace.moved_bytes < 0.0 || r.Trace.rebroadcast_bytes < 0.0 || r.Trace.reshuffle_s < 0.0
      then bad "reshuffle-cost" "step %d: negative reshuffle cost component" step;
      if
        r.Trace.moved_partitions = 0
        && (r.Trace.moved_bytes <> 0.0
           || r.Trace.rebroadcast_replicas <> 0
           || r.Trace.rebroadcast_bytes <> 0.0)
      then
        bad "reshuffle-conservation" "step %d: bytes re-shipped without any moved partition" step)
    t.Trace.reshuffles;
  List.rev !acc

let tsuite = "telemetry"

let reconcile (t : Trace.t) events =
  let acc = ref [] in
  let bad rule fmt =
    Format.kasprintf (fun d -> acc := Violation.v ~suite:tsuite ~rule "%s" d :: !acc) fmt
  in
  let steps = List.filter_map (function Event.Superstep s -> Some s | _ -> None) events in
  let run_ends = List.filter_map (function Event.Run_end r -> Some r | _ -> None) events in
  if List.length steps <> List.length t.Trace.supersteps then
    bad "event-count" "%d superstep events for %d trace stages" (List.length steps)
      (List.length t.Trace.supersteps)
  else
    List.iter2
      (fun (s : Trace.superstep) (e : Event.superstep) ->
        let step = s.Trace.step in
        let check_int name got want =
          if got <> want then bad name "step %d: event %s = %d, trace has %d" step name got want
        in
        let check_float name got want =
          if not (feq got want) then
            bad name "step %d: event %s = %.17g, trace has %.17g" step name got want
        in
        check_int "step" e.Event.step step;
        check_int "active-vertices" e.Event.active_vertices s.Trace.updated_vertices;
        check_int "active-edges" e.Event.active_edges s.Trace.active_edges;
        (* Sent = received: the event stream's emitted-message count must
           equal the count the trace merged at the receiving vertices,
           and local + remote shuffle aggregates must rebuild the
           trace's group count. *)
        check_int "messages" e.Event.messages s.Trace.messages;
        check_int "shuffle-groups"
          (e.Event.local_shuffles + e.Event.remote_shuffles)
          s.Trace.shuffle_groups;
        check_int "remote-shuffles" e.Event.remote_shuffles s.Trace.remote_shuffles;
        check_int "broadcast-replicas" e.Event.broadcast_replicas s.Trace.broadcast_replicas;
        check_int "remote-broadcasts" e.Event.remote_broadcasts s.Trace.remote_broadcasts;
        check_float "wire-bytes" e.Event.wire_bytes s.Trace.wire_bytes;
        check_float "compute" e.Event.compute_s s.Trace.compute_s;
        check_float "network" e.Event.network_s s.Trace.network_s;
        check_float "overhead" e.Event.overhead_s s.Trace.overhead_s;
        check_float "time" e.Event.time_s s.Trace.time_s;
        (* Executor decomposition: compute is the slowest executor, and
           barrier wait is exactly the slack against it. *)
        let busy_max = Array.fold_left Float.max 0.0 e.Event.executor_busy_s in
        check_float "busy-makespan" busy_max s.Trace.compute_s;
        if Array.length e.Event.barrier_wait_s <> Array.length e.Event.executor_busy_s then
          bad "barrier-shape" "step %d: %d barrier entries for %d executors" step
            (Array.length e.Event.barrier_wait_s)
            (Array.length e.Event.executor_busy_s)
        else
          Array.iteri
            (fun i w ->
              let expect = s.Trace.compute_s -. e.Event.executor_busy_s.(i) in
              if not (feq w expect) then
                bad "barrier-wait" "step %d: executor %d barrier wait %.17g, expected %.17g" step
                  i w expect;
              if w < 0.0 then
                bad "barrier-wait" "step %d: executor %d waits %g < 0" step i w)
            e.Event.barrier_wait_s)
      t.Trace.supersteps steps;
  (match run_ends with
  | [] -> ()
  | _ :: _ :: _ -> bad "run-end" "%d run_end events for one run" (List.length run_ends)
  | [ r ] ->
      let check_int name got want =
        if got <> want then bad name "run_end %s = %d, trace has %d" name got want
      in
      let check_float name got want =
        if not (feq got want) then bad name "run_end %s = %.17g, trace has %.17g" name got want
      in
      check_int "total-messages" r.Event.total_messages (Trace.total_messages t);
      check_int "total-remote" r.Event.total_remote (Trace.total_remote_messages t);
      check_float "total-wire-bytes" r.Event.total_wire_bytes (Trace.total_wire_bytes t);
      check_float "total-time" r.Event.total_s t.Trace.total_s;
      check_float "load-time" r.Event.load_s t.Trace.load_s;
      check_float "checkpoint-time" r.Event.checkpoint_s t.Trace.checkpoint_s;
      check_float "recovery-time" r.Event.recovery_s t.Trace.recovery_s;
      if not (String.equal r.Event.outcome (Trace.outcome_name t.Trace.outcome)) then
        bad "outcome" "run_end outcome %S, trace says %S" r.Event.outcome
          (Trace.outcome_name t.Trace.outcome);
      check_int "supersteps" r.Event.supersteps
        (List.fold_left
           (fun n (s : Trace.superstep) -> if s.Trace.step >= 0 then n + 1 else n)
           0 t.Trace.supersteps));
  (* Fault-layer events mirror the trace's recovery bookkeeping 1:1. *)
  let ckpts = List.filter_map (function Event.Checkpoint c -> Some c | _ -> None) events in
  if List.length ckpts <> t.Trace.checkpoints then
    bad "checkpoint-events" "%d checkpoint events for %d trace checkpoints" (List.length ckpts)
      t.Trace.checkpoints
  else begin
    let written = List.fold_left (fun a (c : Event.checkpoint) -> a +. c.Event.write_s) 0.0 ckpts in
    if not (feq written t.Trace.checkpoint_s) then
      bad "checkpoint-events" "checkpoint events sum to %.17g write seconds, trace has %.17g"
        written t.Trace.checkpoint_s
  end;
  let faults = List.filter_map (function Event.Fault_injected f -> Some f | _ -> None) events in
  if List.length faults <> t.Trace.faults_injected then
    bad "fault-events" "%d fault_injected events for %d injected faults" (List.length faults)
      t.Trace.faults_injected;
  let recovs = List.filter_map (function Event.Recovery r -> Some r | _ -> None) events in
  if List.length recovs <> List.length t.Trace.recoveries then
    bad "recovery-events" "%d recovery events for %d trace recoveries" (List.length recovs)
      (List.length t.Trace.recoveries)
  else
    List.iter2
      (fun (r : Trace.recovery) (e : Event.recovery) ->
        if
          e.Event.step <> r.Trace.at_step
          || (not (String.equal e.Event.kind r.Trace.kind))
          || e.Event.executor <> r.Trace.executor
          || e.Event.replayed_steps <> r.Trace.replayed_steps
          || e.Event.lost_edges <> r.Trace.lost_edges
          || e.Event.lost_replicas <> r.Trace.lost_replicas
          || (not (feq e.Event.wire_bytes r.Trace.recovery_wire_bytes))
          || not (feq e.Event.recovery_s r.Trace.recovery_s)
        then
          bad "recovery-events" "recovery event at step %d disagrees with the trace record"
            e.Event.step)
      t.Trace.recoveries recovs;
  (* Speculation events mirror the trace's clone bookkeeping 1:1: one
     launch per record, one win per record that took the clone. *)
  let launches =
    List.filter_map (function Event.Speculative_launch s -> Some s | _ -> None) events
  in
  if List.length launches <> List.length t.Trace.speculations then
    bad "speculation-events" "%d speculative_launch events for %d trace speculations"
      (List.length launches)
      (List.length t.Trace.speculations)
  else
    List.iter2
      (fun (s : Trace.speculation) (e : Event.speculative_launch) ->
        if
          e.Event.step <> s.Trace.at_step
          || e.Event.executor <> s.Trace.executor
          || e.Event.host <> s.Trace.host
          || e.Event.cloned_partitions <> s.Trace.cloned_partitions
          || (not (feq e.Event.original_busy_s s.Trace.original_busy_s))
          || (not (feq e.Event.clone_busy_s s.Trace.clone_busy_s))
          || (not (feq e.Event.wire_bytes s.Trace.speculative_wire_bytes))
          || not (feq e.Event.compute_s s.Trace.speculative_compute_s)
        then
          bad "speculation-events" "speculative_launch at step %d disagrees with the trace record"
            e.Event.step)
      t.Trace.speculations launches;
  let wins = List.filter_map (function Event.Speculative_win w -> Some w | _ -> None) events in
  let won = List.filter (fun (s : Trace.speculation) -> s.Trace.won) t.Trace.speculations in
  if List.length wins <> List.length won then
    bad "speculation-events" "%d speculative_win events for %d winning clones" (List.length wins)
      (List.length won)
  else
    List.iter2
      (fun (s : Trace.speculation) (e : Event.speculative_win) ->
        if
          e.Event.step <> s.Trace.at_step
          || e.Event.executor <> s.Trace.executor
          || e.Event.host <> s.Trace.host
          || not (feq e.Event.saved_s s.Trace.saved_s)
        then
          bad "speculation-events" "speculative_win at step %d disagrees with the trace record"
            e.Event.step)
      won wins;
  (* Elasticity events mirror the trace's reshuffle bookkeeping 1:1:
     one reshuffle event per itemized record, and every membership
     change (join or leave) produced exactly one reshuffle. *)
  let reshuffles = List.filter_map (function Event.Reshuffle r -> Some r | _ -> None) events in
  if List.length reshuffles <> List.length t.Trace.reshuffles then
    bad "reshuffle-events" "%d reshuffle events for %d trace reshuffles" (List.length reshuffles)
      (List.length t.Trace.reshuffles)
  else
    List.iter2
      (fun (r : Trace.reshuffle) (e : Event.reshuffle) ->
        if
          e.Event.step <> r.Trace.resh_step
          || e.Event.executors_before <> r.Trace.executors_before
          || e.Event.executors_after <> r.Trace.executors_after
          || e.Event.moved_partitions <> r.Trace.moved_partitions
          || e.Event.rebroadcast_replicas <> r.Trace.rebroadcast_replicas
          || (not (feq e.Event.moved_bytes r.Trace.moved_bytes))
          || (not (feq e.Event.rebroadcast_bytes r.Trace.rebroadcast_bytes))
          || not (feq e.Event.reshuffle_s r.Trace.reshuffle_s)
        then
          bad "reshuffle-events" "reshuffle event at step %d disagrees with the trace record"
            e.Event.step)
      t.Trace.reshuffles reshuffles;
  let joins = List.filter_map (function Event.Executor_join j -> Some j | _ -> None) events in
  let leaves = List.filter_map (function Event.Executor_leave l -> Some l | _ -> None) events in
  if List.length joins + List.length leaves <> List.length t.Trace.reshuffles then
    bad "scale-events" "%d membership events for %d trace reshuffles"
      (List.length joins + List.length leaves)
      (List.length t.Trace.reshuffles);
  List.rev !acc
