module Trace = Cutfit_bsp.Trace

let suite = "elastic"

let equivalence ?(label = "run") ?executors ?num_partitions ~baseline ~elastic ~baseline_attrs
    ~elastic_attrs () =
  let acc = ref [] in
  let bad rule fmt =
    Format.kasprintf (fun d -> acc := Violation.v ~suite ~rule "%s" d :: !acc) fmt
  in
  (* The baseline must be genuinely static — a fixed, homogeneous
     membership with no reshuffles — or the comparison proves nothing. *)
  if baseline.Trace.reshuffles <> [] || baseline.Trace.reshuffle_s <> 0.0 then
    bad "baseline-elastic" "%s: baseline run carries %d reshuffles (%.3gs)" label
      (List.length baseline.Trace.reshuffles)
      baseline.Trace.reshuffle_s;
  let elastic_valid = Trace.completed elastic in
  (* The core invariant: scale events and host heterogeneity perturb
     only time and locality. An elastic run that completed must have
     converged to bit-identical vertex values. *)
  if elastic_valid && not (String.equal baseline_attrs elastic_attrs) then
    bad "value-divergence" "%s: elastic run's vertex values diverge (baseline %s, elastic %s)"
      label baseline_attrs elastic_attrs;
  (* The logical message structure is membership-invariant: the same
     supersteps fire with the same partition-level counters. The
     executor-level columns (remote counts, wire bytes, every time
     column) legitimately move with placement, so — unlike
     {!Fault_check.equivalence} — they are NOT compared here. *)
  let rec zip_prefix bs es =
    match (bs, es) with
    | _, [] -> ()
    | [], _ :: _ ->
        bad "superstep-mismatch" "%s: elastic run has more supersteps than the baseline" label
    | (b : Trace.superstep) :: bs, (e : Trace.superstep) :: es ->
        let step = e.Trace.step in
        if b.Trace.step <> step then
          bad "superstep-mismatch" "%s: baseline step %d vs elastic step %d" label b.Trace.step
            step
        else if
          b.Trace.active_edges <> e.Trace.active_edges
          || b.Trace.messages <> e.Trace.messages
          || b.Trace.shuffle_groups <> e.Trace.shuffle_groups
          || b.Trace.updated_vertices <> e.Trace.updated_vertices
          || b.Trace.broadcast_replicas <> e.Trace.broadcast_replicas
        then
          bad "counter-divergence" "%s: step %d logical counters diverge under scale events" label
            step;
        zip_prefix bs es
  in
  zip_prefix baseline.Trace.supersteps elastic.Trace.supersteps;
  if
    elastic_valid
    && List.length elastic.Trace.supersteps <> List.length baseline.Trace.supersteps
  then
    bad "superstep-mismatch" "%s: elastic run recorded %d stages, baseline %d" label
      (List.length elastic.Trace.supersteps)
      (List.length baseline.Trace.supersteps);
  (* Scale-event conservation: membership evolves as an unbroken chain
     from the initial cluster, and no reshuffle moves more partitions
     than exist. The per-record shape laws (non-zero delta, byte
     non-negativity, itemized time) are {!Trace_check.validate}'s job. *)
  ignore
    (List.fold_left
       (fun prev (r : Trace.reshuffle) ->
         (match prev with
         | Some after when r.Trace.executors_before <> after ->
             bad "membership-chain" "%s: step %d reshuffle starts from %d executors, not %d" label
               r.Trace.resh_step r.Trace.executors_before after
         | None -> (
             match executors with
             | Some e when r.Trace.executors_before <> e ->
                 bad "membership-chain" "%s: first reshuffle starts from %d executors, not %d"
                   label r.Trace.executors_before e
             | _ -> ())
         | _ -> ());
         (match num_partitions with
         | Some n when r.Trace.moved_partitions > n ->
             bad "partition-conservation" "%s: step %d reshuffle moved %d of %d partitions" label
               r.Trace.resh_step r.Trace.moved_partitions n
         | _ -> ());
         Some r.Trace.executors_after)
       None elastic.Trace.reshuffles);
  List.rev !acc

let validate_elastic ?payload (t : Trace.t) = Trace_check.validate ?payload t
