(** The scale-event equivalence sanitizer.

    The elasticity layer's core contract is that membership changes and
    host heterogeneity perturb only {e time and locality} — stretched or
    shrunk supersteps, itemized reshuffle records, re-homed partitions —
    and never the computed vertex values or the logical message
    structure. [equivalence] proves it by comparing a static homogeneous
    baseline against an elastic run of the same (algorithm, graph,
    partitioner, seed):

    - bit-identical final vertex values (via
      {!Fault_check.float_attrs_digest} / [int_attrs_digest]) whenever
      the elastic run completed;
    - per-superstep equality of the placement-independent counters
      (active edges, messages, shuffle groups, updated vertices,
      broadcast replicas) over the executed prefix — the remote counts,
      wire bytes and time columns legitimately move with placement, so
      unlike {!Fault_check.equivalence} they are {e not} compared;
    - scale-event conservation: the reshuffle records' membership forms
      an unbroken chain from the initial cluster size, and no reshuffle
      moves more partitions than exist.

    Reshuffle-cost conservation on the elastic trace itself is
    {!Trace_check.validate}'s job; {!validate_elastic} is a convenience
    alias so callers can run both from one module. *)

(* lint: unused-export -- suite identity mirrors the other checkers *)
val suite : string

val equivalence :
  ?label:string ->
  ?executors:int ->
  ?num_partitions:int ->
  baseline:Cutfit_bsp.Trace.t ->
  elastic:Cutfit_bsp.Trace.t ->
  baseline_attrs:string ->
  elastic_attrs:string ->
  unit ->
  Violation.t list
(** [equivalence ~baseline ~elastic ~baseline_attrs ~elastic_attrs ()]
    with attribute digests produced by {!Fault_check.float_attrs_digest}
    or any canonical encoding both runs share. [executors] anchors the
    membership chain's starting size; [num_partitions] bounds the moved
    partitions per reshuffle. *)

val validate_elastic :
  ?payload:Trace_check.payload -> Cutfit_bsp.Trace.t -> Violation.t list
(** Alias for {!Trace_check.validate}: the conservation suite already
    covers reshuffle itemization on elastic traces. *)
