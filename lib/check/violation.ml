type t = { suite : string; rule : string; detail : string }

exception Violations of t list

let v ~suite ~rule fmt = Format.kasprintf (fun detail -> { suite; rule; detail }) fmt

let pp ppf t = Format.fprintf ppf "[%s] %s: %s" t.suite t.rule t.detail

let pp_list ppf = function
  | [] -> Format.fprintf ppf "all invariants hold"
  | vs ->
      Format.fprintf ppf "%d violation%s:" (List.length vs)
        (if List.length vs = 1 then "" else "s");
      List.iter (fun t -> Format.fprintf ppf "@\n  %a" pp t) vs

let raise_if_any = function [] -> () | vs -> raise (Violations vs)

let () =
  Printexc.register_printer (function
    | Violations vs -> Some (Format.asprintf "Cutfit_check.Violation.Violations (%a)" pp_list vs)
    | _ -> None)
