(** Sanitizer for {!Cutfit_bsp.Trace} and its telemetry mirror.

    [validate] checks a trace's internal conservation laws: stage
    ordering, non-negative counters, aggregates never outnumbering the
    messages that formed them, remote subsets bounded by their totals,
    zero wire bytes whenever a compute superstep moved nothing between
    executors, the [time_s = max(compute, network) + overhead]
    decomposition, and the total-time roll-up (recomputed with the
    engines' own fold, so compared exactly — with checkpoint and
    recovery time included). Faulty traces additionally satisfy the
    recovery-accounting laws: itemized recoveries sum bit-exactly to
    [recovery_s], recoveries never outnumber injected faults, and each
    recovery record carries only the counters its kind can produce
    (replayed steps for rollback, lost partitions for lineage).

    With [?payload], compute supersteps must additionally satisfy
    [wire_bytes = scale * (remote_shuffles * msg_wire_bytes +
    remote_broadcasts * attr_wire_bytes)] — the "bytes on the wire are
    remote messages times payload" law of the Pregel/GAS engines
    (within 1e-9 relative tolerance, as the engines accumulate bytes
    per executor).

    [reconcile] replays the §telemetry contract from PR 1: every
    superstep event must carry exactly the counters its trace stage was
    built from (sent = received, local + remote = total, bit-equal
    floats), executor busy/barrier decompositions must rebuild
    [compute_s], and the [Run_end] record must match the trace's own
    aggregates. Fault-layer events reconcile too: checkpoint events
    match the trace's checkpoint count and write time, [Fault_injected]
    events count the trace's [faults_injected], and each [Recovery]
    event mirrors its trace record field-for-field. *)

type payload = {
  msg_wire_bytes : float;  (** bytes per remote shuffle aggregate, overhead included *)
  attr_wire_bytes : float;  (** bytes per remote replica refresh, overhead included *)
  scale : float;  (** the run's time/byte scale factor *)
}

val validate : ?payload:payload -> Cutfit_bsp.Trace.t -> Violation.t list

val reconcile : Cutfit_bsp.Trace.t -> Cutfit_obs.Event.t list -> Violation.t list
(** [reconcile trace events] with [events] the telemetry slice of that
    single run (extra [Run_start] records are ignored). *)
