(** Structured invariant-violation reports.

    Every sanitizer suite returns a list of these instead of tripping
    [assert]: a malformed input produces a clean, printable diagnosis
    that callers can collect, log, or turn into an exit code. *)

type t = {
  suite : string;  (** which sanitizer found it, e.g. ["pgraph"] *)
  rule : string;  (** the violated invariant, e.g. ["edge-coverage"] *)
  detail : string;  (** human-readable specifics with offending values *)
}

exception Violations of t list
(** Raised only by {!raise_if_any} (used by [Pipeline.prepare ?check]);
    the checking functions themselves never raise. *)

val v : suite:string -> rule:string -> ('a, Format.formatter, unit, t) format4 -> 'a
(** [v ~suite ~rule fmt ...] formats the detail field. *)

val pp : Format.formatter -> t -> unit
val pp_list : Format.formatter -> t list -> unit

val raise_if_any : t list -> unit
(** @raise Violations when the list is non-empty. *)
