(** The dynamic write-ownership race sanitizer.

    The compact kernels' determinism rests on a discipline no type
    checks: within a parallel phase, every accumulator slot is written
    by exactly one work item, and reduction reads of a slot happen only
    after the barrier of the epoch that wrote it. This suite runs
    {e instrumented} mirrors of the four [run_csr] kernels that record
    an [(epoch, slot, item)] shadow event for every accumulator /
    message-buffer write and every reduction consume (see
    {!Cutfit_bsp.Ownership}), checks the records at each
    {!Cutfit_bsp.Par_exec.iter_shadowed} barrier, and reports structured
    violations naming the slot, epoch and conflicting items.

    Rules: [slot-conflict], [premature-read], [consume-conflict] and
    [slot-out-of-range] from the recorder, plus [instr-vs-csr] — the
    instrumented mirror must digest-match the production kernel, which
    is what proves the mirror checks the code we actually ship — and
    [corruption-undetected] from {!self_check}.

    All functions return [[]] on success and never raise. *)

val suite : string
(** ["races"]. *)

val default_domains : int list
(** [[1; 2; 4]]. Conflicts are item-based and merged deterministically,
    so a discipline breach is reported identically at every domain
    count — including 1. *)

val pagerank :
  ?iterations:int -> ?domains_counts:int list -> Cutfit_bsp.Pgraph.t -> Violation.t list

val connected_components :
  ?iterations:int -> ?domains_counts:int list -> Cutfit_bsp.Pgraph.t -> Violation.t list

val shortest_paths :
  ?max_supersteps:int ->
  ?domains_counts:int list ->
  landmarks:int array ->
  Cutfit_bsp.Pgraph.t ->
  Violation.t list

val triangle_count : ?domains_counts:int list -> Cutfit_bsp.Pgraph.t -> Violation.t list
(** Triangle counting tracks the reduce phase's per-vertex writes (the
    scatter phase counts into worker-owned arrays, race-free by
    construction), so its recorder lives in vertex space. *)

val seeded_foreign_write : ?domains:int -> Cutfit_bsp.Pgraph.t -> Violation.t list
(** Run the instrumented PageRank kernel with a shadow-only corruption
    in which two items claim the same slot in one scatter epoch.
    Returns the resulting violations — expected non-empty, with rule
    [slot-conflict] naming both items. Needs [>= 2] partitions. *)

val seeded_premature_read : ?domains:int -> Cutfit_bsp.Pgraph.t -> Violation.t list
(** Same, with an item consuming its own slot before the scatter
    epoch's barrier — expected to surface rule [premature-read]. *)

val self_check : ?domains:int -> Cutfit_bsp.Pgraph.t -> Violation.t list
(** Detector self-test: runs both seeded corruptions and reports a
    [corruption-undetected] violation for any that fails to surface its
    expected rule. Empty iff the detector still detects. *)
