module Trace = Cutfit_bsp.Trace

let suite = "faults"

let feq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

(* Canonical attribute digests: floats by their IEEE-754 bits, so the
   equivalence comparison is bit-exact, never approximate. *)
let float_attrs_digest attrs =
  let b = Buffer.create (Array.length attrs * 17) in
  Array.iter (fun f -> Buffer.add_string b (Printf.sprintf "%Lx;" (Int64.bits_of_float f))) attrs;
  Digest.to_hex (Digest.string (Buffer.contents b))

let int_attrs_digest attrs =
  let b = Buffer.create (Array.length attrs * 8) in
  Array.iter (fun i -> Buffer.add_string b (string_of_int i ^ ";")) attrs;
  Digest.to_hex (Digest.string (Buffer.contents b))

let equivalence ?(label = "run") ~baseline ~faulty ~baseline_attrs ~faulty_attrs () =
  let acc = ref [] in
  let bad rule fmt =
    Format.kasprintf (fun d -> acc := Violation.v ~suite ~rule "%s" d :: !acc) fmt
  in
  (* The baseline must actually be fault-free, or the comparison proves
     nothing. *)
  if
    baseline.Trace.faults_injected <> 0
    || baseline.Trace.recoveries <> []
    || baseline.Trace.recovery_s <> 0.0
    || baseline.Trace.speculations <> []
  then
    bad "baseline-faulted" "%s: baseline run carries %d faults / %d recoveries / %d speculations"
      label baseline.Trace.faults_injected
      (List.length baseline.Trace.recoveries)
      (List.length baseline.Trace.speculations);
  let faulty_valid = Trace.completed faulty in
  (* The core invariant: faults perturb time accounting only. A faulty
     run that still completed must have converged to bit-identical
     vertex values. Aborted or OOM runs carry no result to compare. *)
  if faulty_valid && not (String.equal baseline_attrs faulty_attrs) then
    bad "value-divergence" "%s: faulty run's vertex values diverge (baseline %s, faulty %s)" label
      baseline_attrs faulty_attrs;
  (* The communication structure is fault-invariant too: a faulty run
     executes the very same supersteps with the same counters and wire
     payloads — only the time columns and the recovery records may
     differ. On an aborted run the executed prefix must still match. *)
  let rec zip_prefix bs fs =
    match (bs, fs) with
    | _, [] -> ()
    | [], _ :: _ ->
        bad "superstep-mismatch" "%s: faulty run has more supersteps than the baseline" label
    | (b : Trace.superstep) :: bs, (f : Trace.superstep) :: fs ->
        let step = f.Trace.step in
        if b.Trace.step <> step then
          bad "superstep-mismatch" "%s: baseline step %d vs faulty step %d" label b.Trace.step step
        else begin
          if
            b.Trace.active_edges <> f.Trace.active_edges
            || b.Trace.messages <> f.Trace.messages
            || b.Trace.shuffle_groups <> f.Trace.shuffle_groups
            || b.Trace.remote_shuffles <> f.Trace.remote_shuffles
            || b.Trace.updated_vertices <> f.Trace.updated_vertices
            || b.Trace.broadcast_replicas <> f.Trace.broadcast_replicas
            || b.Trace.remote_broadcasts <> f.Trace.remote_broadcasts
          then bad "counter-divergence" "%s: step %d counters diverge under faults" label step;
          if not (feq b.Trace.wire_bytes f.Trace.wire_bytes) then
            bad "wire-divergence" "%s: step %d wire bytes %.17g vs %.17g under faults" label step
              b.Trace.wire_bytes f.Trace.wire_bytes
        end;
        zip_prefix bs fs
  in
  zip_prefix baseline.Trace.supersteps faulty.Trace.supersteps;
  if faulty_valid && List.length faulty.Trace.supersteps <> List.length baseline.Trace.supersteps
  then
    bad "superstep-mismatch" "%s: faulty run recorded %d stages, baseline %d" label
      (List.length faulty.Trace.supersteps)
      (List.length baseline.Trace.supersteps);
  (* A faulty run is never cheaper: it pays the baseline's supersteps
     (each possibly stretched) plus checkpoints and recovery. *)
  let sum_steps t =
    List.fold_left (fun a (s : Trace.superstep) -> a +. s.Trace.time_s) 0.0 t.Trace.supersteps
  in
  if faulty_valid && sum_steps faulty +. 1e-12 < sum_steps baseline then
    bad "time-regression" "%s: faulty supersteps sum to %.17g < baseline %.17g" label
      (sum_steps faulty) (sum_steps baseline);
  (* Recovery-cost accounting on the faulty trace itself (the full
     conservation suite runs separately via Trace_check.validate). *)
  List.rev !acc

let validate_faulty ?payload (t : Trace.t) = Trace_check.validate ?payload t
