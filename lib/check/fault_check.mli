(** The recovery-equivalence sanitizer.

    The fault layer's core contract is that injected faults perturb only
    the {e time} accounting of a run — stretched supersteps, checkpoint
    writes, itemized recovery records — and never the computed vertex
    values or the communication structure. [equivalence] proves it by
    comparing a fault-free baseline against a faulty run of the same
    (algorithm, graph, partitioner, seed):

    - bit-identical final vertex values (via canonical attribute
      digests) whenever the faulty run completed;
    - per-superstep counter and wire-byte equality (the executed prefix,
      so aborted runs are checked up to the abort);
    - the faulty run's compute supersteps never sum cheaper than the
      baseline's;
    - a genuinely fault-free baseline (no faults, no recoveries).

    Recovery-cost conservation on the faulty trace itself is
    {!Trace_check.validate}'s job; {!validate_faulty} is a convenience
    alias so callers can run both from one module. *)

(* lint: unused-export -- suite identity mirrors the other checkers *)
val suite : string

val float_attrs_digest : float array -> string
(** MD5 over the IEEE-754 bits of every attribute — every ULP matters. *)

val int_attrs_digest : int array -> string

val equivalence :
  ?label:string ->
  baseline:Cutfit_bsp.Trace.t ->
  faulty:Cutfit_bsp.Trace.t ->
  baseline_attrs:string ->
  faulty_attrs:string ->
  unit ->
  Violation.t list
(** [equivalence ~baseline ~faulty ~baseline_attrs ~faulty_attrs ()]
    with the attribute digests produced by the digest helpers above (or
    any canonical encoding, as long as both runs use the same one). *)

val validate_faulty :
  ?payload:Trace_check.payload -> Cutfit_bsp.Trace.t -> Violation.t list
(** Alias for {!Trace_check.validate}: the conservation suite already
    covers recovery itemization on faulty traces. *)
