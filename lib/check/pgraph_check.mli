(** Sanitizer for {!Cutfit_bsp.Pgraph}: validates the frozen distributed
    representation against the assignment it was built from.

    Invariants checked:
    - the assignment has one in-range partition id per edge;
    - every edge appears in exactly one partition's edge list — the list
      of the partition its assignment names;
    - per-vertex replica lists are strictly ascending (sorted, deduped)
      and agree exactly with the presence relation recomputed from the
      edge lists; [total_replicas] is their sum;
    - [master v = v mod num_partitions] (the GraphX identity-hash
      alignment the paper's DC result depends on);
    - per-partition local vertex-table sizes match the presence
      relation.

    All checks report {!Violation.t} values (capped per rule) rather
    than raising. *)

val assignment :
  Cutfit_graph.Graph.t -> num_partitions:int -> int array -> Violation.t list
(** Validate a raw edge-to-partition assignment (length and range)
    before any structure is built from it. Unlike
    {!Cutfit_bsp.Pgraph.build}, malformed input yields a structured
    report, not an exception. *)

type view = {
  graph : Cutfit_graph.Graph.t;
  num_partitions : int;
  assignment : int array;
  edges_of_partition : int -> int array;
  replicas : int -> int array;
  master : int -> int;
  local_vertices : int -> int;
  total_replicas : int;
}
(** A partitioned graph as the checker sees it. Tests corrupt individual
    accessors of a real graph's view to prove each rule fires. *)

val view_of_pgraph : Cutfit_bsp.Pgraph.t -> view

val validate_view : view -> Violation.t list

val validate : Cutfit_bsp.Pgraph.t -> Violation.t list
(** [validate_view] of [view_of_pgraph]. Empty list = all invariants
    hold. *)
