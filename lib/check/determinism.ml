module Trace = Cutfit_bsp.Trace
module Event = Cutfit_obs.Event

let suite = "determinism"

(* Canonical byte serialization: ints in decimal, floats as the hex of
   their IEEE-754 bits so every ULP matters. *)
let buf_float b f = Buffer.add_string b (Printf.sprintf "%Lx;" (Int64.bits_of_float f))
let buf_int b i = Buffer.add_string b (string_of_int i ^ ";")

let trace_digest (t : Trace.t) =
  let b = Buffer.create 1024 in
  List.iter
    (fun (s : Trace.superstep) ->
      buf_int b s.Trace.step;
      buf_int b s.Trace.active_edges;
      buf_int b s.Trace.messages;
      buf_int b s.Trace.shuffle_groups;
      buf_int b s.Trace.remote_shuffles;
      buf_int b s.Trace.updated_vertices;
      buf_int b s.Trace.broadcast_replicas;
      buf_int b s.Trace.remote_broadcasts;
      buf_float b s.Trace.wire_bytes;
      buf_float b s.Trace.compute_s;
      buf_float b s.Trace.network_s;
      buf_float b s.Trace.overhead_s;
      buf_float b s.Trace.time_s)
    t.Trace.supersteps;
  buf_float b t.Trace.load_s;
  buf_float b t.Trace.checkpoint_s;
  buf_int b t.Trace.checkpoints;
  List.iter
    (fun (r : Trace.recovery) ->
      buf_int b r.Trace.at_step;
      Buffer.add_string b (r.Trace.kind ^ ";");
      buf_int b r.Trace.executor;
      buf_int b r.Trace.replayed_steps;
      buf_int b r.Trace.lost_edges;
      buf_int b r.Trace.lost_replicas;
      buf_float b r.Trace.recovery_wire_bytes;
      buf_float b r.Trace.recovery_s)
    t.Trace.recoveries;
  buf_float b t.Trace.recovery_s;
  buf_int b t.Trace.faults_injected;
  List.iter
    (fun (s : Trace.speculation) ->
      buf_int b s.Trace.at_step;
      buf_int b s.Trace.executor;
      buf_int b s.Trace.host;
      buf_int b s.Trace.cloned_partitions;
      buf_float b s.Trace.original_busy_s;
      buf_float b s.Trace.clone_busy_s;
      buf_float b s.Trace.speculative_compute_s;
      buf_float b s.Trace.speculative_wire_bytes;
      buf_int b (if s.Trace.won then 1 else 0);
      buf_float b s.Trace.saved_s)
    t.Trace.speculations;
  buf_float b t.Trace.speculation_s;
  buf_float b t.Trace.total_s;
  Buffer.add_string b (Trace.outcome_name t.Trace.outcome);
  buf_float b t.Trace.peak_executor_bytes;
  buf_float b t.Trace.driver_meta_bytes;
  Digest.to_hex (Digest.string (Buffer.contents b))

(* The JSONL codec round-trips floats bit-exactly (17 significant
   digits), so the rendered lines are just as canonical. *)
let events_digest events =
  Digest.to_hex (Digest.string (String.concat "\n" (List.map Event.to_line events)))

let lines_digest lines = Digest.to_hex (Digest.string (String.concat "\n" lines))

let run_twice ~label f =
  let first = f () in
  let second = f () in
  if String.equal first second then []
  else
    [
      Violation.v ~suite ~rule:"divergence" "%s: first run digest %s, second run digest %s" label
        first second;
    ]
