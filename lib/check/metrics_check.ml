module Graph = Cutfit_graph.Graph
module Metrics = Cutfit_partition.Metrics

let suite = "metrics"

(* Structural self-consistency of a metrics record, without recomputing
   from the graph. The last check is the paper's §3.1 identity. *)
let identity (t : Metrics.t) =
  let acc = ref [] in
  let bad rule fmt = Format.kasprintf (fun d -> acc := Violation.v ~suite ~rule "%s" d :: !acc) fmt in
  if t.Metrics.num_partitions <= 0 then
    bad "num-partitions" "num_partitions = %d, expected > 0" t.Metrics.num_partitions;
  if Array.length t.Metrics.edges_per_partition <> t.Metrics.num_partitions then
    bad "edges-per-partition" "edges_per_partition has %d entries for %d partitions"
      (Array.length t.Metrics.edges_per_partition)
      t.Metrics.num_partitions;
  if Array.length t.Metrics.vertices_per_partition <> t.Metrics.num_partitions then
    bad "vertices-per-partition" "vertices_per_partition has %d entries for %d partitions"
      (Array.length t.Metrics.vertices_per_partition)
      t.Metrics.num_partitions;
  List.iter
    (fun (name, v) -> if v < 0 then bad "negative-count" "%s = %d, expected >= 0" name v)
    [
      ("non_cut", t.Metrics.non_cut);
      ("cut", t.Metrics.cut);
      ("comm_cost", t.Metrics.comm_cost);
      ("vertices_to_same", t.Metrics.vertices_to_same);
      ("vertices_to_other", t.Metrics.vertices_to_other);
    ];
  (* Every cut vertex is present in >= 2 partitions. *)
  if t.Metrics.comm_cost < 2 * t.Metrics.cut then
    bad "comm-cost-floor" "comm_cost = %d < 2 * cut = %d" t.Metrics.comm_cost (2 * t.Metrics.cut);
  (* §3.1: every replica of a present vertex is synchronized either
     locally at its master (VtxToSame) or over the wire (VtxToOther),
     and the replicas number CommCost + NonCut in total. *)
  let lhs = t.Metrics.comm_cost + t.Metrics.non_cut in
  let rhs = t.Metrics.vertices_to_same + t.Metrics.vertices_to_other in
  if lhs <> rhs then
    bad "replica-identity" "comm_cost + non_cut = %d but vertices_to_same + vertices_to_other = %d"
      lhs rhs;
  List.rev !acc

let validate g ~num_partitions assignment (t : Metrics.t) =
  match Pgraph_check.assignment g ~num_partitions assignment with
  | _ :: _ as bad -> bad
  | [] ->
      let r = Metrics.compute g ~num_partitions assignment in
      let acc = ref [] in
      let bad rule fmt =
        Format.kasprintf (fun d -> acc := Violation.v ~suite ~rule "%s" d :: !acc) fmt
      in
      let check_int name got want =
        if got <> want then bad name "%s = %d, recomputed %d" name got want
      in
      (* Recomputation runs the same code on the same input, so floats
         must agree bit for bit. *)
      let check_float name got want =
        if not (Int64.equal (Int64.bits_of_float got) (Int64.bits_of_float want)) then
          bad name "%s = %.17g, recomputed %.17g" name got want
      in
      check_int "num-partitions" t.Metrics.num_partitions r.Metrics.num_partitions;
      if t.Metrics.edges_per_partition <> r.Metrics.edges_per_partition then
        bad "edges-per-partition" "edges_per_partition disagrees with recomputation";
      if t.Metrics.vertices_per_partition <> r.Metrics.vertices_per_partition then
        bad "vertices-per-partition" "vertices_per_partition disagrees with recomputation";
      check_int "non-cut" t.Metrics.non_cut r.Metrics.non_cut;
      check_int "cut" t.Metrics.cut r.Metrics.cut;
      check_int "comm-cost" t.Metrics.comm_cost r.Metrics.comm_cost;
      check_int "vertices-to-same" t.Metrics.vertices_to_same r.Metrics.vertices_to_same;
      check_int "vertices-to-other" t.Metrics.vertices_to_other r.Metrics.vertices_to_other;
      check_float "balance" t.Metrics.balance r.Metrics.balance;
      check_float "part-stdev" t.Metrics.part_stdev r.Metrics.part_stdev;
      check_float "replication-factor" t.Metrics.replication_factor r.Metrics.replication_factor;
      (* The replica_count cross-check: CommCost + NonCut must equal the
         number of replicas counted directly from the presence relation. *)
      let replicas = Metrics.replica_count g ~num_partitions assignment in
      let total = Array.fold_left ( + ) 0 replicas in
      if t.Metrics.comm_cost + t.Metrics.non_cut <> total then
        bad "replica-count" "comm_cost + non_cut = %d but replica_count sums to %d"
          (t.Metrics.comm_cost + t.Metrics.non_cut)
          total;
      List.rev !acc @ identity t
