(** The cross-engine equivalence sanitizer.

    The compact {!Cutfit_bsp.Csr} kernels promise more than numerical
    closeness: for every algorithm the flat-array result must equal the
    boxed simulator's vertex values {e bit for bit}, at {e any} domain
    count, twice in a row. The promise is structural — partition-local
    combining in edge order, cross-partition merging in ascending
    partition index, both fixed by the data layout rather than by
    scheduling (see docs/PERFORMANCE.md) — and this suite is what keeps
    it honest.

    Each checker runs the boxed engine once as the oracle, builds the
    {!Cutfit_bsp.Csr} image, then runs the compact kernel twice per
    domain count and compares canonical digests:

    - rule [boxed-vs-csr]: the compact result's digest differs from the
      boxed engine's;
    - rule [run-twice]: two identical compact runs disagree with each
      other (a scheduling leak — some write was not item-owned).

    All functions return [[]] on success and never raise. *)

(* lint: unused-export -- suite identity mirrors the other checkers *)
val suite : string
(** ["engines"]. *)

(* lint: unused-export -- default mirrors the other checkers *)
val default_domains : int list
(** [[1; 2; 4]] — inline, one worker domain, three worker domains. *)

val pagerank :
  ?iterations:int ->
  ?domains_counts:int list ->
  cluster:Cutfit_bsp.Cluster.t ->
  Cutfit_bsp.Pgraph.t ->
  Violation.t list
(** Float digests (MD5 over IEEE-754 bits) — the one algorithm where
    the fixed reduction order is load-bearing, since float addition
    does not associate. Default 10 iterations. *)

val connected_components :
  ?iterations:int ->
  ?domains_counts:int list ->
  cluster:Cutfit_bsp.Cluster.t ->
  Cutfit_bsp.Pgraph.t ->
  Violation.t list

val triangle_count :
  ?domains_counts:int list ->
  cluster:Cutfit_bsp.Cluster.t ->
  Cutfit_bsp.Pgraph.t ->
  Violation.t list

val shortest_paths :
  ?max_supersteps:int ->
  ?domains_counts:int list ->
  landmarks:int array ->
  cluster:Cutfit_bsp.Cluster.t ->
  Cutfit_bsp.Pgraph.t ->
  Violation.t list
