(** Run-twice determinism harness.

    The paper's correlations are only as good as the simulator's
    reproducibility: the same graph, partitioner and cluster must yield
    the same trace to the last ULP. These digests canonicalize a trace
    (floats by their IEEE-754 bits) or an event stream (via the
    bit-exact JSONL codec) into an MD5 hex string; {!run_twice} executes
    a run thunk twice and reports a violation when the digests differ. *)

val trace_digest : Cutfit_bsp.Trace.t -> string

val events_digest : Cutfit_obs.Event.t list -> string

val lines_digest : string list -> string
(** Digest of pre-rendered canonical lines (e.g. the workload engine's
    report, serialized through the bit-exact JSONL codec) — the same
    MD5-hex form as the other digests so {!run_twice} composes. *)

val run_twice : label:string -> (unit -> string) -> Violation.t list
(** [run_twice ~label f] runs [f] twice; [f] should perform a complete
    run and return its digest. *)
