module Graph = Cutfit_graph.Graph
module Pgraph = Cutfit_bsp.Pgraph

let suite = "pgraph"

(* Cap per-rule reports so a corrupted structure yields a readable
   diagnosis, not one violation per vertex. *)
let max_reports = 5

type reporter = { mutable out : Violation.t list; mutable dropped : int; rule : string }

let reporter rule = { out = []; dropped = 0; rule }

let report r fmt =
  Format.kasprintf
    (fun detail ->
      if List.length r.out < max_reports then
        r.out <- Violation.v ~suite ~rule:r.rule "%s" detail :: r.out
      else r.dropped <- r.dropped + 1)
    fmt

let flush r =
  let out = List.rev r.out in
  if r.dropped = 0 then out
  else out @ [ Violation.v ~suite ~rule:r.rule "... and %d more like this" r.dropped ]

let assignment g ~num_partitions a =
  let m = Graph.num_edges g in
  if num_partitions <= 0 then
    [ Violation.v ~suite ~rule:"num-partitions" "num_partitions = %d, expected > 0" num_partitions ]
  else if Array.length a <> m then
    [
      Violation.v ~suite ~rule:"assignment-length" "assignment has %d entries for %d edges"
        (Array.length a) m;
    ]
  else begin
    let r = reporter "assignment-range" in
    Array.iteri
      (fun e p ->
        if p < 0 || p >= num_partitions then
          report r "edge %d assigned to partition %d outside [0, %d)" e p num_partitions)
      a;
    flush r
  end

type view = {
  graph : Graph.t;
  num_partitions : int;
  assignment : int array;
  edges_of_partition : int -> int array;
  replicas : int -> int array;
  master : int -> int;
  local_vertices : int -> int;
  total_replicas : int;
}

let view_of_pgraph pg =
  {
    graph = Pgraph.graph pg;
    num_partitions = Pgraph.num_partitions pg;
    assignment = Pgraph.assignment pg;
    edges_of_partition = Pgraph.edges_of_partition pg;
    replicas = Pgraph.replicas pg;
    master = Pgraph.master pg;
    local_vertices = Pgraph.local_vertices pg;
    total_replicas = Pgraph.total_replicas pg;
  }

let validate_view t =
  let g = t.graph in
  let n = Graph.num_vertices g and m = Graph.num_edges g in
  let p_count = t.num_partitions in
  match assignment g ~num_partitions:p_count t.assignment with
  | _ :: _ as bad -> bad (* dependent checks would index out of bounds *)
  | [] ->
      let acc = ref [] in
      let add r = acc := !acc @ flush r in
      (* Every edge appears in exactly one partition's edge list, and in
         the partition its assignment names. *)
      let seen = Array.make m 0 in
      let cover = reporter "edge-coverage" in
      for p = 0 to p_count - 1 do
        Array.iter
          (fun e ->
            if e < 0 || e >= m then
              report cover "partition %d lists edge %d outside [0, %d)" p e m
            else begin
              seen.(e) <- seen.(e) + 1;
              if seen.(e) = 2 then report cover "edge %d appears in more than one edge list" e;
              if t.assignment.(e) <> p then
                report cover "edge %d is in partition %d's list but assigned to %d" e p
                  t.assignment.(e)
            end)
          (t.edges_of_partition p)
      done;
      Array.iteri
        (fun e c -> if c = 0 then report cover "edge %d is in no partition's edge list" e)
        seen;
      add cover;
      (* Recompute vertex presence from the per-partition edge lists and
         compare against the routing table. *)
      let words = (p_count + 62) / 63 in
      let bits = Array.make (n * words) 0 in
      let present v p = bits.((v * words) + (p / 63)) land (1 lsl (p mod 63)) <> 0 in
      let mark v p =
        let w = (v * words) + (p / 63) in
        bits.(w) <- bits.(w) lor (1 lsl (p mod 63))
      in
      Array.iteri
        (fun e p ->
          mark (Graph.edge_src g e) p;
          mark (Graph.edge_dst g e) p)
        t.assignment;
      let routes = reporter "replicas" in
      let total = ref 0 in
      for v = 0 to n - 1 do
        let reps = t.replicas v in
        total := !total + Array.length reps;
        let sorted = ref true in
        Array.iteri (fun i p -> if i > 0 && reps.(i - 1) >= p then sorted := false) reps;
        if not !sorted then
          report routes "vertex %d: replica list [%s] is not strictly ascending" v
            (String.concat "; " (Array.to_list (Array.map string_of_int reps)));
        Array.iter
          (fun p ->
            if p < 0 || p >= p_count then
              report routes "vertex %d: replica partition %d outside [0, %d)" v p p_count
            else if not (present v p) then
              report routes "vertex %d: routed to partition %d which holds none of its edges" v p)
          reps;
        let expect = ref 0 in
        for p = 0 to p_count - 1 do
          if present v p then incr expect
        done;
        if !sorted && Array.length reps <> !expect then
          report routes "vertex %d: %d replicas routed, %d partitions hold its edges" v
            (Array.length reps) !expect
      done;
      add routes;
      if !total <> t.total_replicas then
        acc :=
          !acc
          @ [
              Violation.v ~suite ~rule:"total-replicas"
                "total_replicas = %d but per-vertex replica lists sum to %d" t.total_replicas
                !total;
            ];
      (* GraphX's identity-hash VertexRDD: master v = v mod P. *)
      let masters = reporter "master-identity" in
      for v = 0 to n - 1 do
        if t.master v <> v mod p_count then
          report masters "master of vertex %d is %d, expected %d mod %d = %d" v (t.master v) v
            p_count (v mod p_count)
      done;
      add masters;
      (* Local vertex-table sizes match the presence relation. *)
      let locals = reporter "local-vertices" in
      for p = 0 to p_count - 1 do
        let expect = ref 0 in
        for v = 0 to n - 1 do
          if present v p then incr expect
        done;
        if t.local_vertices p <> !expect then
          report locals "partition %d: local vertex table has %d entries, expected %d" p
            (t.local_vertices p) !expect
      done;
      add locals;
      !acc

let validate pg = validate_view (view_of_pgraph pg)
