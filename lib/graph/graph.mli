(** Immutable directed graph in compressed sparse row form.

    The shared substrate for partitioners, the BSP engine and the
    analytics algorithms. Vertices are dense ids in [\[0, n)]; edges are
    stored both as flat [(src, dst)] arrays (what the vertex-cut
    partitioners consume) and as forward/reverse CSR adjacency (what the
    graph algorithms consume). Adjacency lists are sorted, enabling
    O(log d) membership tests. *)

type t

val create : n:int -> src:int array -> dst:int array -> t
(** [create ~n ~src ~dst] freezes the given edge arrays into a graph
    with [n] vertices. The arrays must have equal length and every
    endpoint must lie in [\[0, n)].
    @raise Invalid_argument otherwise. *)

val of_edge_list : n:int -> Edge_list.t -> t
(** Freeze a builder buffer. *)

val num_vertices : t -> int
val num_edges : t -> int

val edge_src : t -> int -> int
(** Source of the [i]-th edge (build order). *)

val edge_dst : t -> int -> int
(** Destination of the [i]-th edge. *)

val src_array : t -> int array
(** The underlying source array; do not mutate. *)

(* lint: unused-export -- raw-array escape hatch for bulk consumers *)
val dst_array : t -> int array
(** The underlying destination array; do not mutate. *)

val out_degree : t -> int -> int
val in_degree : t -> int -> int

val iter_out : t -> int -> (int -> unit) -> unit
(** [iter_out g v f] applies [f] to every out-neighbour of [v]
    (ascending order, duplicates preserved). *)

val iter_in : t -> int -> (int -> unit) -> unit
(** Same for in-neighbours. *)

(* lint: unused-export -- fold twin of iter_out, kept for symmetry *)
val fold_out : t -> int -> ('a -> int -> 'a) -> 'a -> 'a
(* lint: unused-export -- fold twin of iter_in, kept for symmetry *)
val fold_in : t -> int -> ('a -> int -> 'a) -> 'a -> 'a

val out_neighbors : t -> int -> int array
(** Fresh sorted array of out-neighbours of [v]. *)

val in_neighbors : t -> int -> int array

val has_edge : t -> src:int -> dst:int -> bool
(** O(log out_degree src) membership test. *)

val iter_edges : t -> (src:int -> dst:int -> unit) -> unit
(** Iterate over all edges in build order. *)

val symmetrize : t -> t
(** [symmetrize g] is the undirected view of [g]: every edge present in
    both directions, deduplicated, self-loops removed. *)

val is_symmetric : t -> bool
(** Whether every edge is reciprocated. *)
