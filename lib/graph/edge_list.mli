(** Growable edge buffer.

    The mutable builder for directed graphs: generators append edges
    here, then the list is cleaned (dedup, self-loop removal,
    symmetrization) and frozen into a {!Graph.t}. Edges are pairs of
    dense vertex ids in [\[0, n)]. *)

type t

val create : ?capacity:int -> unit -> t
(** Fresh empty buffer. [capacity] is the initial allocation. *)

val length : t -> int
(** Number of edges currently stored. *)

val add : t -> src:int -> dst:int -> unit
(** Append one directed edge. Amortized O(1). *)

val src : t -> int -> int
(** [src t i] is the source of the [i]-th edge. *)

val dst : t -> int -> int
(** [dst t i] is the destination of the [i]-th edge. *)

val iter : t -> (src:int -> dst:int -> unit) -> unit
(** Iterate over edges in insertion order. *)

val of_list : (int * int) list -> t
(** Buffer holding the given [(src, dst)] pairs. *)

val to_arrays : t -> int array * int array
(** Trimmed copies of the source and destination arrays. *)

(* lint: unused-export -- building block kept for external loaders *)
val sort : t -> unit
(** Sort edges in place by [(src, dst)] lexicographically. *)

val dedup : ?drop_self_loops:bool -> t -> t
(** [dedup t] is a new buffer with duplicate edges removed (and
    self-loops dropped when [drop_self_loops], default [true]).
    Sorts the input as a side effect. *)

val symmetrize : t -> t
(** [symmetrize t] is a new buffer containing each edge of [t] in both
    directions, deduplicated, without self-loops. *)
