(** SplitMix64 pseudo-random number generator.

    A small, fast, splittable generator (Steele, Lea & Flood, OOPSLA 2014)
    used both directly and to seed {!Xoshiro}.  Its finalizer is also the
    64-bit mixing function used throughout the partitioners
    (see {!Cutfit_partition.Hashing}).

    All generators in this project are explicitly seeded so that every
    dataset, partitioning and simulation is reproducible bit-for-bit. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] returns a fresh generator. Distinct seeds yield
    independent-looking streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val mix64 : int64 -> int64
(** [mix64 x] is the stateless SplitMix64 finalizer: a bijective avalanche
    mix of [x].  Suitable as a hash function for 64-bit keys. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val next_int : t -> int -> int
(** [next_int t bound] is a uniform integer in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

(* lint: unused-export -- standard PRNG surface, kept complete *)
val next_float : t -> float
(** Uniform float in [\[0, 1)]. *)

(* lint: unused-export -- standard PRNG surface, kept complete *)
val next_bool : t -> float -> bool
(** [next_bool t p] is [true] with probability [p]. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    independent of the remainder of [t]'s stream. *)
