type t = { emit : Event.t -> unit; close : unit -> unit }

let ring ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Sink.ring: capacity <= 0";
  let buf = Array.make capacity None in
  let next = ref 0 in
  let stored = ref 0 in
  let emit e =
    buf.(!next) <- Some e;
    next := (!next + 1) mod capacity;
    if !stored < capacity then incr stored
  in
  let contents () =
    let start = if !stored < capacity then 0 else !next in
    List.init !stored (fun i ->
        match buf.((start + i) mod capacity) with
        | Some e -> e
        | None -> assert false)
  in
  ({ emit; close = (fun () -> ()) }, contents)

let jsonl_channel oc =
  let emit e =
    output_string oc (Event.to_line e);
    output_char oc '\n'
  in
  { emit; close = (fun () -> flush oc) }

let jsonl path =
  let oc = open_out path in
  let inner = jsonl_channel oc in
  {
    inner with
    close =
      (fun () ->
        inner.close ();
        close_out oc);
  }

let console ?(verbose = false) ppf =
  let emit e =
    match e with
    | Event.Superstep _ when not verbose -> ()
    | e -> Format.fprintf ppf "%a@." Event.pp e
  in
  { emit; close = (fun () -> Format.pp_print_flush ppf ()) }
