(** The telemetry handle the engines write to.

    A handle bundles a {!Metric} registry (run-level aggregates) with a
    list of {!Sink}s (the per-event stream). Engines take an optional
    handle — [?telemetry] — and emit nothing when it is absent, so the
    default path allocates no telemetry records at all; attaching even
    one sink turns on the full per-superstep stream.

    Typical use:

    {[
      let sink = Cutfit_obs.Sink.jsonl "trace.jsonl" in
      let t = Cutfit_obs.Telemetry.create ~sinks:[ sink ] () in
      let p = Pipeline.prepare ~telemetry:t ~algorithm:Advisor.Pagerank g in
      let _ranks, _trace = Pipeline.pagerank p in
      Cutfit_obs.Telemetry.close t
    ]} *)

type t

val create : ?sinks:Sink.t list -> unit -> t
(** A handle with the given sinks (default none) and a fresh registry.
    A handle without sinks still accumulates registry metrics. *)

(* lint: unused-export -- dynamic sink attachment for embedders *)
val attach : t -> Sink.t -> unit
(** Add a sink; subsequent events reach it. *)

val metrics : t -> Metric.registry
(** The handle's metric registry. *)

val emit : t -> Event.t -> unit
(** Deliver one event to every attached sink, in attachment order. *)

val events_emitted : t -> int
(** Events delivered through {!emit} so far (counts once per event, not
    per sink). *)

val close : t -> unit
(** Close every sink. Idempotent; later {!emit}s are dropped. *)
