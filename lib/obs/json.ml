type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- printing --- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  if not (Float.is_finite f) then "null"
  else
    (* %.17g round-trips every double; strip to the shortest form that
       still re-parses exactly for readability. *)
    let exact = Printf.sprintf "%.17g" f in
    let shorter = Printf.sprintf "%.12g" f in
    let s = if float_of_string shorter = f then shorter else exact in
    (* Keep a mark of floatness so Int/Float round-trips distinguish. *)
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E' || c = 'n') s then s else s ^ ".0"

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_to_string f)
  | String s -> escape buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  write buf j;
  Buffer.contents buf

(* --- parsing: plain recursive descent over the string --- *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> begin
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              let code =
                match int_of_string_opt ("0x" ^ hex) with
                | Some c -> c
                | None -> fail "bad \\u escape"
              in
              (* The telemetry records are ASCII; map the BMP code point
                 through its low byte, which is enough to invert the
                 printer's control-character escapes. *)
              Buffer.add_char buf (Char.chr (code land 0xff))
          | _ -> fail "bad escape");
          loop ()
        end
      | c -> Buffer.add_char buf c; loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    let floaty = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok in
    if floaty then
      match float_of_string_opt tok with Some f -> Float f | None -> fail "bad number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt tok with Some f -> Float f | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing input";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) -> Error (Printf.sprintf "byte %d: %s" at msg)

(* --- accessors --- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_bool = function Bool b -> Some b | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | Null -> Some Float.nan
  | _ -> None

let to_list = function List xs -> Some xs | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
