type counter = { mutable count : int }
type gauge = { mutable last : float }
type timer = { mutable sum : float; mutable n : int }

type cell = Counter of counter | Gauge of gauge | Timer of timer

type registry = (string, cell) Hashtbl.t

let create_registry () : registry = Hashtbl.create 16

let counter reg name =
  match Hashtbl.find_opt reg name with
  | Some (Counter c) -> c
  | Some _ -> invalid_arg (Printf.sprintf "Metric.counter: %S is registered as another kind" name)
  | None ->
      let c = { count = 0 } in
      Hashtbl.replace reg name (Counter c);
      c

let gauge reg name =
  match Hashtbl.find_opt reg name with
  | Some (Gauge g) -> g
  | Some _ -> invalid_arg (Printf.sprintf "Metric.gauge: %S is registered as another kind" name)
  | None ->
      let g = { last = 0.0 } in
      Hashtbl.replace reg name (Gauge g);
      g

let timer reg name =
  match Hashtbl.find_opt reg name with
  | Some (Timer t) -> t
  | Some _ -> invalid_arg (Printf.sprintf "Metric.timer: %S is registered as another kind" name)
  | None ->
      let t = { sum = 0.0; n = 0 } in
      Hashtbl.replace reg name (Timer t);
      t

let incr c = c.count <- c.count + 1
let add c k = c.count <- c.count + k
let value c = c.count

let set g v = g.last <- v
let read g = g.last

let record t s =
  t.sum <- t.sum +. s;
  t.n <- t.n + 1

let time ?(clock = Clock.wall) t f =
  let start = clock () in
  Fun.protect ~finally:(fun () -> record t (clock () -. start)) f

let total t = t.sum
let observations t = t.n

let snapshot reg =
  (* lint: order-independent — the accumulated list is sorted below. *)
  Hashtbl.fold
    (fun name cell acc ->
      let v =
        match cell with
        | Counter c -> float_of_int c.count
        | Gauge g -> g.last
        | Timer t -> t.sum
      in
      (name, v) :: acc)
    reg []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
