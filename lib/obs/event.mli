(** Structured telemetry events emitted by the BSP engines.

    A {!superstep} record is the observability counterpart of
    [Trace.superstep]: it is built from the {e same} counters, at the
    same point in the engine, so summing the event stream reproduces the
    run's trace aggregates exactly — the invariant the test suite
    checks. On top of the trace quantities it carries the signals the
    trace discards: total bytes on the wire, per-executor busy time and
    barrier wait, and the jittered task-skew extrema that explain
    straggler behaviour.

    Events are plain data; the sinks decide what to do with them. The
    JSON encoding is stable and versioned by field names only — one
    object per event, suitable for JSONL streams. *)

type superstep = {
  step : int;  (** -1 is the one-time graph build/partitioning stage *)
  active_vertices : int;  (** vertices that ran the vertex program *)
  active_edges : int;  (** triplets whose send/gather function ran *)
  messages : int;  (** messages emitted before local aggregation *)
  local_shuffles : int;  (** shuffle aggregates staying on their executor *)
  remote_shuffles : int;  (** shuffle aggregates crossing executors *)
  broadcast_replicas : int;  (** replica copies refreshed from masters *)
  remote_broadcasts : int;  (** replica refreshes crossing executors *)
  wire_bytes : float;  (** total scaled egress bytes across all executors *)
  executor_busy_s : float array;  (** per-executor jittered compute makespan *)
  barrier_wait_s : float array;
      (** per-executor idle time at the superstep barrier: the slowest
          executor's compute minus this executor's own *)
  max_task_s : float;  (** largest single jittered task in the superstep *)
  min_task_s : float;  (** smallest (often 0 when a partition is idle) *)
  compute_s : float;  (** modeled executor compute (max over executors) *)
  network_s : float;  (** modeled wire time (max over executors) *)
  overhead_s : float;  (** task dispatch + superstep barrier *)
  time_s : float;  (** max(compute, network) + overhead *)
}

type run_end = {
  label : string;  (** engine or algorithm identifier, e.g. ["pregel"] *)
  outcome : string;
      (** ["completed"], ["max-supersteps"], ["out-of-memory"] or
          ["aborted"] *)
  supersteps : int;  (** compute supersteps recorded (build stage excluded) *)
  total_s : float;  (** simulated job time including load, checkpoints, recovery *)
  load_s : float;
  checkpoint_s : float;
  recovery_s : float;  (** total time spent recovering from injected faults *)
  total_messages : int;
  total_remote : int;  (** remote shuffles + remote broadcasts, all steps *)
  total_wire_bytes : float;
}

(** {2 Fault-injection records}

    Emitted by the engines when a [Faults] schedule is attached: one
    {!fault_injected} per fault firing, one {!checkpoint} per superstep
    checkpoint written, one {!recovery} per recovery the engine paid
    for. The records mirror the trace's own recovery bookkeeping
    field-for-field, so event aggregates reconcile exactly. *)

type fault_injected = {
  step : int;
  kind : string;  (** "crash" | "straggler" | "net" | "loss" *)
  executor : int;  (** -1 when the fault is cluster-wide (net) *)
  detail : string;
}

type checkpoint = { step : int; bytes : float; write_s : float }

type recovery = {
  step : int;
  kind : string;  (** "rollback" | "lineage" | "shuffle-retry" *)
  executor : int;
  replayed_steps : int;
  lost_edges : int;
  lost_replicas : int;
  wire_bytes : float;  (** bytes moved only because of the fault *)
  recovery_s : float;
}

(** {2 Speculation records}

    Emitted by the engines when a [Speculation] config is attached: one
    {!speculative_launch} per clone launched at a superstep barrier,
    followed by a {!speculative_win} when the clone finished first and
    its results were taken. The fields mirror [Trace.speculation]
    exactly, so event counts and sums reconcile with the trace. *)

type speculative_launch = {
  step : int;
  executor : int;  (** the straggler whose tasks were cloned *)
  host : int;  (** the least-loaded executor hosting the clone *)
  cloned_partitions : int;
  original_busy_s : float;
  clone_busy_s : float;
  wire_bytes : float;  (** re-shuffled ingress, outside the wire-payload law *)
  compute_s : float;  (** extra compute burned by the clone *)
}

type speculative_win = { step : int; executor : int; host : int; saved_s : float }

(** {2 Workload-engine records}

    The [lib/workload] engine narrates a multi-job simulation through
    the same event stream: one {!job_submit} per generated job, a
    {!job_start}/{!job_end} pair per execution, and one {!cache_op} per
    partitioning-cache transition. All timestamps are simulated cluster
    seconds on the workload clock (not per-run trace time). The records
    reconcile with the engine's own per-job accounting — the invariant
    {!Cutfit_workload} checks. *)

type job_submit = {
  job_id : int;
  algorithm : string;  (** "PR", "CC", "TR" or "SSSP" *)
  dataset : string;  (** dataset analogue name *)
  num_partitions : int;
  arrival_s : float;  (** submission instant on the simulated clock *)
}

type job_start = {
  job_id : int;
  strategy : string;  (** the partitioning strategy chosen for the job *)
  cache_hit : bool;  (** the partitioning was served from the cache *)
  start_s : float;  (** instant an executor slot admitted the job *)
  queue_s : float;  (** [start_s -. arrival_s] *)
}

type job_end = {
  job_id : int;
  outcome : string;  (** as {!run_end.outcome} *)
  partition_s : float;  (** load + partition build; 0 on a cache hit *)
  exec_s : float;  (** compute supersteps + checkpoints *)
  finish_s : float;  (** instant the slot freed *)
}

type job_retry = {
  job_id : int;
  attempt : int;  (** the attempt number that just failed (1-based) *)
  delay_s : float;  (** requeue backoff added before the next attempt *)
  resubmit_s : float;  (** simulated instant the job re-enters the queue *)
}

type job_shed = {
  job_id : int;
  at_s : float;  (** simulated instant the shed decision fired *)
  queue_depth : int;  (** admission queue depth at that instant *)
  policy : string;  (** "reject" | "drop-oldest" *)
}

type deadline_exceeded = {
  job_id : int;
  deadline_s : float;  (** the job's absolute SLO deadline *)
  overshoot_s : float;  (** how far past the deadline the cancel landed *)
  started : bool;  (** false: culled from the queue; true: cancelled mid-run *)
}

type breaker_open = {
  dataset : string;
  strategy : string;
  at_s : float;
  failures : int;  (** consecutive failures that tripped the breaker *)
}

type breaker_close = { dataset : string; strategy : string; at_s : float }

type cache_op = {
  op : string;
      (** ["hit"], ["miss"], ["insert"], ["evict"], ["invalidate"] (entry
          lost to a cluster restart) or ["reject"] *)
  graph : string;
  strategy : string;
  num_partitions : int;
  bytes : float;  (** modeled resident bytes of the touched partitioning *)
  occupancy_bytes : float;  (** cache occupancy after the operation *)
  entries : int;  (** live entries after the operation *)
  at_s : float;  (** simulated instant of the operation *)
}

(** {2 Dynamic-graph records}

    The dynamic-graph subsystem ([lib/dynamic] and the workload
    engine's mutation interleaving) narrates each mutation batch and
    the priced refresh-vs-rebuild decision taken on it. *)

type mutation_batch = {
  batch : int;  (** 1-based batch number *)
  graph : string;  (** dataset name; "-" outside the workload engine *)
  inserts : int;
  deletes : int;
  edges_before : int;
  edges_after : int;
  at_s : float;  (** simulated instant; 0 for the standalone driver *)
}

type repartition = {
  batch : int;
  graph : string;
  choice : string;  (** "refresh" | "rebuild" *)
  refresh_s : float;  (** priced incremental-refresh cost *)
  rebuild_s : float;  (** priced full-rebuild cost *)
  placed_edges : int;  (** inserted edges placed online *)
  repaired_vertices : int;  (** vertices repaired after deletes *)
  moved_replicas : int;  (** replica-set entries to re-broadcast *)
  at_s : float;
}

type executor_join = {
  step : int;
      (** engines: the superstep before which the join landed; workload:
          the scale spec's integer time *)
  count : int;
  executors : int;  (** live membership after the join *)
}

type executor_leave = { step : int; count : int; executors : int }

type reshuffle = {
  step : int;
  executors_before : int;
  executors_after : int;
  moved_partitions : int;  (** partitions whose home executor changed *)
  moved_bytes : float;
      (** resident bytes re-shipped; outside the superstep wire-payload
          law, like recovery traffic *)
  rebroadcast_replicas : int;
  rebroadcast_bytes : float;
  reshuffle_s : float;
}

type tenant_throttle = {
  tenant : string;
  job_id : int;
  at_s : float;
  pending : int;  (** the tenant's pending jobs when the quota fired *)
}

type t =
  | Run_start of { label : string }
      (** segments multi-run streams (e.g. [compare] traces) *)
  | Superstep of superstep
  | Run_end of run_end
  | Fault_injected of fault_injected
  | Checkpoint of checkpoint
  | Recovery of recovery
  | Speculative_launch of speculative_launch
  | Speculative_win of speculative_win
  | Job_submit of job_submit
  | Job_start of job_start
  | Job_end of job_end
  | Job_retry of job_retry
  | Job_shed of job_shed
  | Deadline_exceeded of deadline_exceeded
  | Breaker_open of breaker_open
  | Breaker_close of breaker_close
  | Cache_op of cache_op
  | Mutation_batch of mutation_batch
  | Repartition of repartition
  | Executor_join of executor_join
  | Executor_leave of executor_leave
  | Reshuffle of reshuffle
  | Tenant_throttle of tenant_throttle

val skew : superstep -> float
(** [max_task_s /. min_task_s], or [infinity] when the smallest task is
    idle — the straggler spread of one superstep. *)

(* lint: unused-export -- codec half; of_string composes it internally *)
val to_json : t -> Json.t
(* lint: unused-export -- codec half; of_string composes it internally *)
val of_json : Json.t -> (t, string) result
(** Inverse of {!to_json}; the error names the missing or ill-typed
    field. *)

val to_line : t -> string
(** One-line JSON rendering, the JSONL wire format. *)

val of_line : string -> (t, string) result
(** Parse one JSONL line as produced by {!to_line}. *)

val pp : Format.formatter -> t -> unit
(** Human-oriented one-line rendering used by the console sink. *)
