(** Typed metric cells: counters, gauges and timers in a named registry.

    Engines record run-level aggregates here (message totals, simulated
    seconds, supersteps) while the per-superstep {!Event} stream carries
    the fine-grained records. A registry is cheap — plain mutable cells
    behind a name table — and metrics with the same name resolve to the
    same cell, so independent code paths accumulate into one counter. *)

type registry
(** A flat namespace of metric cells. *)

type counter
(** Monotone integer count (messages, supersteps, sink writes). *)

type gauge
(** Last-value float (bytes on wire, peak memory). *)

type timer
(** Accumulating float duration with an observation count, so both the
    total and the mean of recorded spans are recoverable. *)

val create_registry : unit -> registry

val counter : registry -> string -> counter
(** Find or create the counter [name]. *)

val gauge : registry -> string -> gauge
(** Find or create the gauge [name]. *)

val timer : registry -> string -> timer
(** Find or create the timer [name]. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val set : gauge -> float -> unit
val read : gauge -> float

val record : timer -> float -> unit
(** Add one observed span of the given seconds. *)

val time : ?clock:Clock.t -> timer -> (unit -> 'a) -> 'a
(** Run the thunk, recording its duration as read from [clock]
    (default {!Clock.wall}); pass {!Clock.counter} for a deterministic
    measurement in tests. *)

val total : timer -> float
val observations : timer -> int

val snapshot : registry -> (string * float) list
(** Every cell's current value, sorted by name. Counters export their
    count, gauges their value, timers their accumulated seconds. *)
