type superstep = {
  step : int;
  active_vertices : int;
  active_edges : int;
  messages : int;
  local_shuffles : int;
  remote_shuffles : int;
  broadcast_replicas : int;
  remote_broadcasts : int;
  wire_bytes : float;
  executor_busy_s : float array;
  barrier_wait_s : float array;
  max_task_s : float;
  min_task_s : float;
  compute_s : float;
  network_s : float;
  overhead_s : float;
  time_s : float;
}

type run_end = {
  label : string;
  outcome : string;
  supersteps : int;
  total_s : float;
  load_s : float;
  checkpoint_s : float;
  total_messages : int;
  total_remote : int;
  total_wire_bytes : float;
}

type t =
  | Run_start of { label : string }
  | Superstep of superstep
  | Run_end of run_end

let skew s =
  if s.min_task_s > 0.0 then s.max_task_s /. s.min_task_s
  else if s.max_task_s > 0.0 then Float.infinity
  else 1.0

(* --- JSON --- *)

let floats arr = Json.List (Array.to_list (Array.map (fun f -> Json.Float f) arr))

let to_json = function
  | Run_start { label } ->
      Json.Obj [ ("type", Json.String "run_start"); ("label", Json.String label) ]
  | Superstep s ->
      Json.Obj
        [
          ("type", Json.String "superstep");
          ("step", Json.Int s.step);
          ("active_vertices", Json.Int s.active_vertices);
          ("active_edges", Json.Int s.active_edges);
          ("messages", Json.Int s.messages);
          ("local_shuffles", Json.Int s.local_shuffles);
          ("remote_shuffles", Json.Int s.remote_shuffles);
          ("broadcast_replicas", Json.Int s.broadcast_replicas);
          ("remote_broadcasts", Json.Int s.remote_broadcasts);
          ("wire_bytes", Json.Float s.wire_bytes);
          ("executor_busy_s", floats s.executor_busy_s);
          ("barrier_wait_s", floats s.barrier_wait_s);
          ("max_task_s", Json.Float s.max_task_s);
          ("min_task_s", Json.Float s.min_task_s);
          ("compute_s", Json.Float s.compute_s);
          ("network_s", Json.Float s.network_s);
          ("overhead_s", Json.Float s.overhead_s);
          ("time_s", Json.Float s.time_s);
        ]
  | Run_end r ->
      Json.Obj
        [
          ("type", Json.String "run_end");
          ("label", Json.String r.label);
          ("outcome", Json.String r.outcome);
          ("supersteps", Json.Int r.supersteps);
          ("total_s", Json.Float r.total_s);
          ("load_s", Json.Float r.load_s);
          ("checkpoint_s", Json.Float r.checkpoint_s);
          ("total_messages", Json.Int r.total_messages);
          ("total_remote", Json.Int r.total_remote);
          ("total_wire_bytes", Json.Float r.total_wire_bytes);
        ]

let field kind name conv j =
  match Json.member name j with
  | None -> Error (Printf.sprintf "%s: missing field %S" kind name)
  | Some v -> (
      match conv v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "%s: field %S has the wrong type" kind name))

let ( let* ) r f = Result.bind r f

let float_array j =
  match Json.to_list j with
  | None -> None
  | Some xs ->
      let rec go acc = function
        | [] -> Some (Array.of_list (List.rev acc))
        | x :: rest -> (
            match Json.to_float x with Some f -> go (f :: acc) rest | None -> None)
      in
      go [] xs

let superstep_of_json j =
  let int name = field "superstep" name Json.to_int j in
  let flt name = field "superstep" name Json.to_float j in
  let arr name = field "superstep" name float_array j in
  let* step = int "step" in
  let* active_vertices = int "active_vertices" in
  let* active_edges = int "active_edges" in
  let* messages = int "messages" in
  let* local_shuffles = int "local_shuffles" in
  let* remote_shuffles = int "remote_shuffles" in
  let* broadcast_replicas = int "broadcast_replicas" in
  let* remote_broadcasts = int "remote_broadcasts" in
  let* wire_bytes = flt "wire_bytes" in
  let* executor_busy_s = arr "executor_busy_s" in
  let* barrier_wait_s = arr "barrier_wait_s" in
  let* max_task_s = flt "max_task_s" in
  let* min_task_s = flt "min_task_s" in
  let* compute_s = flt "compute_s" in
  let* network_s = flt "network_s" in
  let* overhead_s = flt "overhead_s" in
  let* time_s = flt "time_s" in
  Ok
    (Superstep
       {
         step;
         active_vertices;
         active_edges;
         messages;
         local_shuffles;
         remote_shuffles;
         broadcast_replicas;
         remote_broadcasts;
         wire_bytes;
         executor_busy_s;
         barrier_wait_s;
         max_task_s;
         min_task_s;
         compute_s;
         network_s;
         overhead_s;
         time_s;
       })

let run_end_of_json j =
  let int name = field "run_end" name Json.to_int j in
  let flt name = field "run_end" name Json.to_float j in
  let str name = field "run_end" name Json.to_string_opt j in
  let* label = str "label" in
  let* outcome = str "outcome" in
  let* supersteps = int "supersteps" in
  let* total_s = flt "total_s" in
  let* load_s = flt "load_s" in
  let* checkpoint_s = flt "checkpoint_s" in
  let* total_messages = int "total_messages" in
  let* total_remote = int "total_remote" in
  let* total_wire_bytes = flt "total_wire_bytes" in
  Ok
    (Run_end
       {
         label;
         outcome;
         supersteps;
         total_s;
         load_s;
         checkpoint_s;
         total_messages;
         total_remote;
         total_wire_bytes;
       })

let of_json j =
  let* kind = field "event" "type" Json.to_string_opt j in
  match kind with
  | "run_start" ->
      let* label = field "run_start" "label" Json.to_string_opt j in
      Ok (Run_start { label })
  | "superstep" -> superstep_of_json j
  | "run_end" -> run_end_of_json j
  | other -> Error (Printf.sprintf "event: unknown type %S" other)

let to_line t = Json.to_string (to_json t)

let of_line line =
  let* j = Json.of_string line in
  of_json j

let pp ppf = function
  | Run_start { label } -> Format.fprintf ppf "run %s" label
  | Superstep s ->
      if s.step = -1 then
        Format.fprintf ppf
          "build  : wire=%.0fB compute=%.3fs network=%.3fs skew=%.2f t=%.3fs" s.wire_bytes
          s.compute_s s.network_s (skew s) s.time_s
      else
        Format.fprintf ppf
          "step %2d: act=%d edges=%d msgs=%d shfl=%d(+%d rem) bcast=%d(+%d rem) wire=%.0fB \
           skew=%.2f t=%.3fs (c=%.3f n=%.3f o=%.3f)"
          s.step s.active_vertices s.active_edges s.messages s.local_shuffles s.remote_shuffles
          s.broadcast_replicas s.remote_broadcasts s.wire_bytes (skew s) s.time_s s.compute_s
          s.network_s s.overhead_s
  | Run_end r ->
      Format.fprintf ppf
        "end %s: %s, %d supersteps, %.2fs total, %d msgs (%d remote), %.0f wire bytes" r.label
        r.outcome r.supersteps r.total_s r.total_messages r.total_remote r.total_wire_bytes
