type superstep = {
  step : int;
  active_vertices : int;
  active_edges : int;
  messages : int;
  local_shuffles : int;
  remote_shuffles : int;
  broadcast_replicas : int;
  remote_broadcasts : int;
  wire_bytes : float;
  executor_busy_s : float array;
  barrier_wait_s : float array;
  max_task_s : float;
  min_task_s : float;
  compute_s : float;
  network_s : float;
  overhead_s : float;
  time_s : float;
}

type run_end = {
  label : string;
  outcome : string;
  supersteps : int;
  total_s : float;
  load_s : float;
  checkpoint_s : float;
  recovery_s : float;
  total_messages : int;
  total_remote : int;
  total_wire_bytes : float;
}

type fault_injected = {
  step : int;
  kind : string;  (** "crash" | "straggler" | "net" | "loss" *)
  executor : int;  (** -1 when cluster-wide *)
  detail : string;
}

type checkpoint = { step : int; bytes : float; write_s : float }

type recovery = {
  step : int;
  kind : string;  (** "rollback" | "lineage" | "shuffle-retry" *)
  executor : int;
  replayed_steps : int;
  lost_edges : int;
  lost_replicas : int;
  wire_bytes : float;
  recovery_s : float;
}

type speculative_launch = {
  step : int;
  executor : int;  (** the straggler whose tasks were cloned *)
  host : int;  (** the least-loaded executor hosting the clone *)
  cloned_partitions : int;
  original_busy_s : float;
  clone_busy_s : float;
  wire_bytes : float;  (** re-shuffled ingress, outside the wire-payload law *)
  compute_s : float;  (** extra compute burned by the clone *)
}

type speculative_win = { step : int; executor : int; host : int; saved_s : float }

type job_retry = { job_id : int; attempt : int; delay_s : float; resubmit_s : float }

type job_shed = {
  job_id : int;
  at_s : float;
  queue_depth : int;  (** admission queue depth when the shed decision fired *)
  policy : string;  (** "reject" | "drop-oldest" *)
}

type deadline_exceeded = {
  job_id : int;
  deadline_s : float;  (** the job's absolute SLO deadline *)
  overshoot_s : float;  (** how far past the deadline the job was cancelled *)
  started : bool;  (** false: culled from the queue; true: cancelled mid-run *)
}

type breaker_open = { dataset : string; strategy : string; at_s : float; failures : int }
type breaker_close = { dataset : string; strategy : string; at_s : float }

type job_submit = {
  job_id : int;
  algorithm : string;
  dataset : string;
  num_partitions : int;
  arrival_s : float;
}

type job_start = {
  job_id : int;
  strategy : string;
  cache_hit : bool;
  start_s : float;
  queue_s : float;
}

type job_end = {
  job_id : int;
  outcome : string;
  partition_s : float;
  exec_s : float;
  finish_s : float;
}

type cache_op = {
  op : string;
  graph : string;
  strategy : string;
  num_partitions : int;
  bytes : float;
  occupancy_bytes : float;
  entries : int;
  at_s : float;
}

type mutation_batch = {
  batch : int;
  graph : string;  (** dataset name; "-" outside the workload engine *)
  inserts : int;
  deletes : int;
  edges_before : int;
  edges_after : int;
  at_s : float;
}

type repartition = {
  batch : int;
  graph : string;
  choice : string;  (** "refresh" | "rebuild" *)
  refresh_s : float;
  rebuild_s : float;
  placed_edges : int;
  repaired_vertices : int;
  moved_replicas : int;
  at_s : float;
}

type executor_join = {
  step : int;  (** engines: superstep; workload: the spec's integer time *)
  count : int;
  executors : int;  (** live membership after the join *)
}

type executor_leave = { step : int; count : int; executors : int }

type reshuffle = {
  step : int;
  executors_before : int;
  executors_after : int;
  moved_partitions : int;
  moved_bytes : float;  (** outside the wire-payload law, like recovery traffic *)
  rebroadcast_replicas : int;
  rebroadcast_bytes : float;
  reshuffle_s : float;
}

type tenant_throttle = {
  tenant : string;
  job_id : int;
  at_s : float;
  pending : int;  (** the tenant's pending jobs when the quota fired *)
}

type t =
  | Run_start of { label : string }
  | Superstep of superstep
  | Run_end of run_end
  | Fault_injected of fault_injected
  | Checkpoint of checkpoint
  | Recovery of recovery
  | Speculative_launch of speculative_launch
  | Speculative_win of speculative_win
  | Job_submit of job_submit
  | Job_start of job_start
  | Job_end of job_end
  | Job_retry of job_retry
  | Job_shed of job_shed
  | Deadline_exceeded of deadline_exceeded
  | Breaker_open of breaker_open
  | Breaker_close of breaker_close
  | Cache_op of cache_op
  | Mutation_batch of mutation_batch
  | Repartition of repartition
  | Executor_join of executor_join
  | Executor_leave of executor_leave
  | Reshuffle of reshuffle
  | Tenant_throttle of tenant_throttle

let skew s =
  if s.min_task_s > 0.0 then s.max_task_s /. s.min_task_s
  else if s.max_task_s > 0.0 then Float.infinity
  else 1.0

(* --- JSON --- *)

let floats arr = Json.List (Array.to_list (Array.map (fun f -> Json.Float f) arr))

let to_json = function
  | Run_start { label } ->
      Json.Obj [ ("type", Json.String "run_start"); ("label", Json.String label) ]
  | Superstep s ->
      Json.Obj
        [
          ("type", Json.String "superstep");
          ("step", Json.Int s.step);
          ("active_vertices", Json.Int s.active_vertices);
          ("active_edges", Json.Int s.active_edges);
          ("messages", Json.Int s.messages);
          ("local_shuffles", Json.Int s.local_shuffles);
          ("remote_shuffles", Json.Int s.remote_shuffles);
          ("broadcast_replicas", Json.Int s.broadcast_replicas);
          ("remote_broadcasts", Json.Int s.remote_broadcasts);
          ("wire_bytes", Json.Float s.wire_bytes);
          ("executor_busy_s", floats s.executor_busy_s);
          ("barrier_wait_s", floats s.barrier_wait_s);
          ("max_task_s", Json.Float s.max_task_s);
          ("min_task_s", Json.Float s.min_task_s);
          ("compute_s", Json.Float s.compute_s);
          ("network_s", Json.Float s.network_s);
          ("overhead_s", Json.Float s.overhead_s);
          ("time_s", Json.Float s.time_s);
        ]
  | Run_end r ->
      Json.Obj
        [
          ("type", Json.String "run_end");
          ("label", Json.String r.label);
          ("outcome", Json.String r.outcome);
          ("supersteps", Json.Int r.supersteps);
          ("total_s", Json.Float r.total_s);
          ("load_s", Json.Float r.load_s);
          ("checkpoint_s", Json.Float r.checkpoint_s);
          ("recovery_s", Json.Float r.recovery_s);
          ("total_messages", Json.Int r.total_messages);
          ("total_remote", Json.Int r.total_remote);
          ("total_wire_bytes", Json.Float r.total_wire_bytes);
        ]
  | Fault_injected f ->
      Json.Obj
        [
          ("type", Json.String "fault_injected");
          ("step", Json.Int f.step);
          ("kind", Json.String f.kind);
          ("executor", Json.Int f.executor);
          ("detail", Json.String f.detail);
        ]
  | Checkpoint c ->
      Json.Obj
        [
          ("type", Json.String "checkpoint");
          ("step", Json.Int c.step);
          ("bytes", Json.Float c.bytes);
          ("write_s", Json.Float c.write_s);
        ]
  | Recovery r ->
      Json.Obj
        [
          ("type", Json.String "recovery");
          ("step", Json.Int r.step);
          ("kind", Json.String r.kind);
          ("executor", Json.Int r.executor);
          ("replayed_steps", Json.Int r.replayed_steps);
          ("lost_edges", Json.Int r.lost_edges);
          ("lost_replicas", Json.Int r.lost_replicas);
          ("wire_bytes", Json.Float r.wire_bytes);
          ("recovery_s", Json.Float r.recovery_s);
        ]
  | Speculative_launch s ->
      Json.Obj
        [
          ("type", Json.String "speculative_launch");
          ("step", Json.Int s.step);
          ("executor", Json.Int s.executor);
          ("host", Json.Int s.host);
          ("cloned_partitions", Json.Int s.cloned_partitions);
          ("original_busy_s", Json.Float s.original_busy_s);
          ("clone_busy_s", Json.Float s.clone_busy_s);
          ("wire_bytes", Json.Float s.wire_bytes);
          ("compute_s", Json.Float s.compute_s);
        ]
  | Speculative_win s ->
      Json.Obj
        [
          ("type", Json.String "speculative_win");
          ("step", Json.Int s.step);
          ("executor", Json.Int s.executor);
          ("host", Json.Int s.host);
          ("saved_s", Json.Float s.saved_s);
        ]
  | Job_shed j ->
      Json.Obj
        [
          ("type", Json.String "job_shed");
          ("job_id", Json.Int j.job_id);
          ("at_s", Json.Float j.at_s);
          ("queue_depth", Json.Int j.queue_depth);
          ("policy", Json.String j.policy);
        ]
  | Deadline_exceeded d ->
      Json.Obj
        [
          ("type", Json.String "deadline_exceeded");
          ("job_id", Json.Int d.job_id);
          ("deadline_s", Json.Float d.deadline_s);
          ("overshoot_s", Json.Float d.overshoot_s);
          ("started", Json.Bool d.started);
        ]
  | Breaker_open b ->
      Json.Obj
        [
          ("type", Json.String "breaker_open");
          ("dataset", Json.String b.dataset);
          ("strategy", Json.String b.strategy);
          ("at_s", Json.Float b.at_s);
          ("failures", Json.Int b.failures);
        ]
  | Breaker_close b ->
      Json.Obj
        [
          ("type", Json.String "breaker_close");
          ("dataset", Json.String b.dataset);
          ("strategy", Json.String b.strategy);
          ("at_s", Json.Float b.at_s);
        ]
  | Job_submit j ->
      Json.Obj
        [
          ("type", Json.String "job_submit");
          ("job_id", Json.Int j.job_id);
          ("algorithm", Json.String j.algorithm);
          ("dataset", Json.String j.dataset);
          ("num_partitions", Json.Int j.num_partitions);
          ("arrival_s", Json.Float j.arrival_s);
        ]
  | Job_start j ->
      Json.Obj
        [
          ("type", Json.String "job_start");
          ("job_id", Json.Int j.job_id);
          ("strategy", Json.String j.strategy);
          ("cache_hit", Json.Bool j.cache_hit);
          ("start_s", Json.Float j.start_s);
          ("queue_s", Json.Float j.queue_s);
        ]
  | Job_end j ->
      Json.Obj
        [
          ("type", Json.String "job_end");
          ("job_id", Json.Int j.job_id);
          ("outcome", Json.String j.outcome);
          ("partition_s", Json.Float j.partition_s);
          ("exec_s", Json.Float j.exec_s);
          ("finish_s", Json.Float j.finish_s);
        ]
  | Job_retry j ->
      Json.Obj
        [
          ("type", Json.String "job_retry");
          ("job_id", Json.Int j.job_id);
          ("attempt", Json.Int j.attempt);
          ("delay_s", Json.Float j.delay_s);
          ("resubmit_s", Json.Float j.resubmit_s);
        ]
  | Cache_op c ->
      Json.Obj
        [
          ("type", Json.String "cache_op");
          ("op", Json.String c.op);
          ("graph", Json.String c.graph);
          ("strategy", Json.String c.strategy);
          ("num_partitions", Json.Int c.num_partitions);
          ("bytes", Json.Float c.bytes);
          ("occupancy_bytes", Json.Float c.occupancy_bytes);
          ("entries", Json.Int c.entries);
          ("at_s", Json.Float c.at_s);
        ]
  | Mutation_batch m ->
      Json.Obj
        [
          ("type", Json.String "mutation_batch");
          ("batch", Json.Int m.batch);
          ("graph", Json.String m.graph);
          ("inserts", Json.Int m.inserts);
          ("deletes", Json.Int m.deletes);
          ("edges_before", Json.Int m.edges_before);
          ("edges_after", Json.Int m.edges_after);
          ("at_s", Json.Float m.at_s);
        ]
  | Repartition r ->
      Json.Obj
        [
          ("type", Json.String "repartition");
          ("batch", Json.Int r.batch);
          ("graph", Json.String r.graph);
          ("choice", Json.String r.choice);
          ("refresh_s", Json.Float r.refresh_s);
          ("rebuild_s", Json.Float r.rebuild_s);
          ("placed_edges", Json.Int r.placed_edges);
          ("repaired_vertices", Json.Int r.repaired_vertices);
          ("moved_replicas", Json.Int r.moved_replicas);
          ("at_s", Json.Float r.at_s);
        ]
  | Executor_join e ->
      Json.Obj
        [
          ("type", Json.String "executor_join");
          ("step", Json.Int e.step);
          ("count", Json.Int e.count);
          ("executors", Json.Int e.executors);
        ]
  | Executor_leave e ->
      Json.Obj
        [
          ("type", Json.String "executor_leave");
          ("step", Json.Int e.step);
          ("count", Json.Int e.count);
          ("executors", Json.Int e.executors);
        ]
  | Reshuffle r ->
      Json.Obj
        [
          ("type", Json.String "reshuffle");
          ("step", Json.Int r.step);
          ("executors_before", Json.Int r.executors_before);
          ("executors_after", Json.Int r.executors_after);
          ("moved_partitions", Json.Int r.moved_partitions);
          ("moved_bytes", Json.Float r.moved_bytes);
          ("rebroadcast_replicas", Json.Int r.rebroadcast_replicas);
          ("rebroadcast_bytes", Json.Float r.rebroadcast_bytes);
          ("reshuffle_s", Json.Float r.reshuffle_s);
        ]
  | Tenant_throttle t ->
      Json.Obj
        [
          ("type", Json.String "tenant_throttle");
          ("tenant", Json.String t.tenant);
          ("job_id", Json.Int t.job_id);
          ("at_s", Json.Float t.at_s);
          ("pending", Json.Int t.pending);
        ]

let field kind name conv j =
  match Json.member name j with
  | None -> Error (Printf.sprintf "%s: missing field %S" kind name)
  | Some v -> (
      match conv v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "%s: field %S has the wrong type" kind name))

let ( let* ) r f = Result.bind r f

let float_array j =
  match Json.to_list j with
  | None -> None
  | Some xs ->
      let rec go acc = function
        | [] -> Some (Array.of_list (List.rev acc))
        | x :: rest -> (
            match Json.to_float x with Some f -> go (f :: acc) rest | None -> None)
      in
      go [] xs

let superstep_of_json j =
  let int name = field "superstep" name Json.to_int j in
  let flt name = field "superstep" name Json.to_float j in
  let arr name = field "superstep" name float_array j in
  let* step = int "step" in
  let* active_vertices = int "active_vertices" in
  let* active_edges = int "active_edges" in
  let* messages = int "messages" in
  let* local_shuffles = int "local_shuffles" in
  let* remote_shuffles = int "remote_shuffles" in
  let* broadcast_replicas = int "broadcast_replicas" in
  let* remote_broadcasts = int "remote_broadcasts" in
  let* wire_bytes = flt "wire_bytes" in
  let* executor_busy_s = arr "executor_busy_s" in
  let* barrier_wait_s = arr "barrier_wait_s" in
  let* max_task_s = flt "max_task_s" in
  let* min_task_s = flt "min_task_s" in
  let* compute_s = flt "compute_s" in
  let* network_s = flt "network_s" in
  let* overhead_s = flt "overhead_s" in
  let* time_s = flt "time_s" in
  Ok
    (Superstep
       {
         step;
         active_vertices;
         active_edges;
         messages;
         local_shuffles;
         remote_shuffles;
         broadcast_replicas;
         remote_broadcasts;
         wire_bytes;
         executor_busy_s;
         barrier_wait_s;
         max_task_s;
         min_task_s;
         compute_s;
         network_s;
         overhead_s;
         time_s;
       })

let run_end_of_json j =
  let int name = field "run_end" name Json.to_int j in
  let flt name = field "run_end" name Json.to_float j in
  let str name = field "run_end" name Json.to_string_opt j in
  let* label = str "label" in
  let* outcome = str "outcome" in
  let* supersteps = int "supersteps" in
  let* total_s = flt "total_s" in
  let* load_s = flt "load_s" in
  let* checkpoint_s = flt "checkpoint_s" in
  let* recovery_s = flt "recovery_s" in
  let* total_messages = int "total_messages" in
  let* total_remote = int "total_remote" in
  let* total_wire_bytes = flt "total_wire_bytes" in
  Ok
    (Run_end
       {
         label;
         outcome;
         supersteps;
         total_s;
         load_s;
         checkpoint_s;
         recovery_s;
         total_messages;
         total_remote;
         total_wire_bytes;
       })

let fault_injected_of_json j =
  let int name = field "fault_injected" name Json.to_int j in
  let str name = field "fault_injected" name Json.to_string_opt j in
  let* step = int "step" in
  let* kind = str "kind" in
  let* executor = int "executor" in
  let* detail = str "detail" in
  Ok (Fault_injected { step; kind; executor; detail })

let checkpoint_of_json j =
  let* step = field "checkpoint" "step" Json.to_int j in
  let* bytes = field "checkpoint" "bytes" Json.to_float j in
  let* write_s = field "checkpoint" "write_s" Json.to_float j in
  Ok (Checkpoint { step; bytes; write_s })

let recovery_of_json j =
  let int name = field "recovery" name Json.to_int j in
  let flt name = field "recovery" name Json.to_float j in
  let str name = field "recovery" name Json.to_string_opt j in
  let* step = int "step" in
  let* kind = str "kind" in
  let* executor = int "executor" in
  let* replayed_steps = int "replayed_steps" in
  let* lost_edges = int "lost_edges" in
  let* lost_replicas = int "lost_replicas" in
  let* wire_bytes = flt "wire_bytes" in
  let* recovery_s = flt "recovery_s" in
  Ok
    (Recovery
       { step; kind; executor; replayed_steps; lost_edges; lost_replicas; wire_bytes; recovery_s })

let speculative_launch_of_json j =
  let int name = field "speculative_launch" name Json.to_int j in
  let flt name = field "speculative_launch" name Json.to_float j in
  let* step = int "step" in
  let* executor = int "executor" in
  let* host = int "host" in
  let* cloned_partitions = int "cloned_partitions" in
  let* original_busy_s = flt "original_busy_s" in
  let* clone_busy_s = flt "clone_busy_s" in
  let* wire_bytes = flt "wire_bytes" in
  let* compute_s = flt "compute_s" in
  Ok
    (Speculative_launch
       {
         step;
         executor;
         host;
         cloned_partitions;
         original_busy_s;
         clone_busy_s;
         wire_bytes;
         compute_s;
       })

let speculative_win_of_json j =
  let int name = field "speculative_win" name Json.to_int j in
  let* step = int "step" in
  let* executor = int "executor" in
  let* host = int "host" in
  let* saved_s = field "speculative_win" "saved_s" Json.to_float j in
  Ok (Speculative_win { step; executor; host; saved_s })

let job_shed_of_json j =
  let* job_id = field "job_shed" "job_id" Json.to_int j in
  let* at_s = field "job_shed" "at_s" Json.to_float j in
  let* queue_depth = field "job_shed" "queue_depth" Json.to_int j in
  let* policy = field "job_shed" "policy" Json.to_string_opt j in
  Ok (Job_shed { job_id; at_s; queue_depth; policy })

let deadline_exceeded_of_json j =
  let* job_id = field "deadline_exceeded" "job_id" Json.to_int j in
  let* deadline_s = field "deadline_exceeded" "deadline_s" Json.to_float j in
  let* overshoot_s = field "deadline_exceeded" "overshoot_s" Json.to_float j in
  let* started = field "deadline_exceeded" "started" Json.to_bool j in
  Ok (Deadline_exceeded { job_id; deadline_s; overshoot_s; started })

let breaker_open_of_json j =
  let* dataset = field "breaker_open" "dataset" Json.to_string_opt j in
  let* strategy = field "breaker_open" "strategy" Json.to_string_opt j in
  let* at_s = field "breaker_open" "at_s" Json.to_float j in
  let* failures = field "breaker_open" "failures" Json.to_int j in
  Ok (Breaker_open { dataset; strategy; at_s; failures })

let breaker_close_of_json j =
  let* dataset = field "breaker_close" "dataset" Json.to_string_opt j in
  let* strategy = field "breaker_close" "strategy" Json.to_string_opt j in
  let* at_s = field "breaker_close" "at_s" Json.to_float j in
  Ok (Breaker_close { dataset; strategy; at_s })

let job_submit_of_json j =
  let int name = field "job_submit" name Json.to_int j in
  let flt name = field "job_submit" name Json.to_float j in
  let str name = field "job_submit" name Json.to_string_opt j in
  let* job_id = int "job_id" in
  let* algorithm = str "algorithm" in
  let* dataset = str "dataset" in
  let* num_partitions = int "num_partitions" in
  let* arrival_s = flt "arrival_s" in
  Ok (Job_submit { job_id; algorithm; dataset; num_partitions; arrival_s })

let job_start_of_json j =
  let int name = field "job_start" name Json.to_int j in
  let flt name = field "job_start" name Json.to_float j in
  let str name = field "job_start" name Json.to_string_opt j in
  let* job_id = int "job_id" in
  let* strategy = str "strategy" in
  let* cache_hit = field "job_start" "cache_hit" Json.to_bool j in
  let* start_s = flt "start_s" in
  let* queue_s = flt "queue_s" in
  Ok (Job_start { job_id; strategy; cache_hit; start_s; queue_s })

let job_end_of_json j =
  let int name = field "job_end" name Json.to_int j in
  let flt name = field "job_end" name Json.to_float j in
  let str name = field "job_end" name Json.to_string_opt j in
  let* job_id = int "job_id" in
  let* outcome = str "outcome" in
  let* partition_s = flt "partition_s" in
  let* exec_s = flt "exec_s" in
  let* finish_s = flt "finish_s" in
  Ok (Job_end { job_id; outcome; partition_s; exec_s; finish_s })

let job_retry_of_json j =
  let int name = field "job_retry" name Json.to_int j in
  let flt name = field "job_retry" name Json.to_float j in
  let* job_id = int "job_id" in
  let* attempt = int "attempt" in
  let* delay_s = flt "delay_s" in
  let* resubmit_s = flt "resubmit_s" in
  Ok (Job_retry { job_id; attempt; delay_s; resubmit_s })

let cache_op_of_json j =
  let int name = field "cache_op" name Json.to_int j in
  let flt name = field "cache_op" name Json.to_float j in
  let str name = field "cache_op" name Json.to_string_opt j in
  let* op = str "op" in
  let* graph = str "graph" in
  let* strategy = str "strategy" in
  let* num_partitions = int "num_partitions" in
  let* bytes = flt "bytes" in
  let* occupancy_bytes = flt "occupancy_bytes" in
  let* entries = int "entries" in
  let* at_s = flt "at_s" in
  Ok (Cache_op { op; graph; strategy; num_partitions; bytes; occupancy_bytes; entries; at_s })

let mutation_batch_of_json j =
  let int name = field "mutation_batch" name Json.to_int j in
  let* batch = int "batch" in
  let* graph = field "mutation_batch" "graph" Json.to_string_opt j in
  let* inserts = int "inserts" in
  let* deletes = int "deletes" in
  let* edges_before = int "edges_before" in
  let* edges_after = int "edges_after" in
  let* at_s = field "mutation_batch" "at_s" Json.to_float j in
  Ok (Mutation_batch { batch; graph; inserts; deletes; edges_before; edges_after; at_s })

let repartition_of_json j =
  let int name = field "repartition" name Json.to_int j in
  let flt name = field "repartition" name Json.to_float j in
  let str name = field "repartition" name Json.to_string_opt j in
  let* batch = int "batch" in
  let* graph = str "graph" in
  let* choice = str "choice" in
  let* refresh_s = flt "refresh_s" in
  let* rebuild_s = flt "rebuild_s" in
  let* placed_edges = int "placed_edges" in
  let* repaired_vertices = int "repaired_vertices" in
  let* moved_replicas = int "moved_replicas" in
  let* at_s = flt "at_s" in
  Ok
    (Repartition
       {
         batch;
         graph;
         choice;
         refresh_s;
         rebuild_s;
         placed_edges;
         repaired_vertices;
         moved_replicas;
         at_s;
       })

let executor_join_of_json j =
  let int name = field "executor_join" name Json.to_int j in
  let* step = int "step" in
  let* count = int "count" in
  let* executors = int "executors" in
  Ok (Executor_join { step; count; executors })

let executor_leave_of_json j =
  let int name = field "executor_leave" name Json.to_int j in
  let* step = int "step" in
  let* count = int "count" in
  let* executors = int "executors" in
  Ok (Executor_leave { step; count; executors })

let reshuffle_of_json j =
  let int name = field "reshuffle" name Json.to_int j in
  let flt name = field "reshuffle" name Json.to_float j in
  let* step = int "step" in
  let* executors_before = int "executors_before" in
  let* executors_after = int "executors_after" in
  let* moved_partitions = int "moved_partitions" in
  let* moved_bytes = flt "moved_bytes" in
  let* rebroadcast_replicas = int "rebroadcast_replicas" in
  let* rebroadcast_bytes = flt "rebroadcast_bytes" in
  let* reshuffle_s = flt "reshuffle_s" in
  Ok
    (Reshuffle
       {
         step;
         executors_before;
         executors_after;
         moved_partitions;
         moved_bytes;
         rebroadcast_replicas;
         rebroadcast_bytes;
         reshuffle_s;
       })

let tenant_throttle_of_json j =
  let int name = field "tenant_throttle" name Json.to_int j in
  let flt name = field "tenant_throttle" name Json.to_float j in
  let str name = field "tenant_throttle" name Json.to_string_opt j in
  let* tenant = str "tenant" in
  let* job_id = int "job_id" in
  let* at_s = flt "at_s" in
  let* pending = int "pending" in
  Ok (Tenant_throttle { tenant; job_id; at_s; pending })

let of_json j =
  let* kind = field "event" "type" Json.to_string_opt j in
  match kind with
  | "run_start" ->
      let* label = field "run_start" "label" Json.to_string_opt j in
      Ok (Run_start { label })
  | "superstep" -> superstep_of_json j
  | "run_end" -> run_end_of_json j
  | "fault_injected" -> fault_injected_of_json j
  | "checkpoint" -> checkpoint_of_json j
  | "recovery" -> recovery_of_json j
  | "speculative_launch" -> speculative_launch_of_json j
  | "speculative_win" -> speculative_win_of_json j
  | "job_submit" -> job_submit_of_json j
  | "job_start" -> job_start_of_json j
  | "job_end" -> job_end_of_json j
  | "job_retry" -> job_retry_of_json j
  | "job_shed" -> job_shed_of_json j
  | "deadline_exceeded" -> deadline_exceeded_of_json j
  | "breaker_open" -> breaker_open_of_json j
  | "breaker_close" -> breaker_close_of_json j
  | "cache_op" -> cache_op_of_json j
  | "mutation_batch" -> mutation_batch_of_json j
  | "repartition" -> repartition_of_json j
  | "executor_join" -> executor_join_of_json j
  | "executor_leave" -> executor_leave_of_json j
  | "reshuffle" -> reshuffle_of_json j
  | "tenant_throttle" -> tenant_throttle_of_json j
  | other -> Error (Printf.sprintf "event: unknown type %S" other)

let to_line t = Json.to_string (to_json t)

let of_line line =
  let* j = Json.of_string line in
  of_json j

let pp ppf = function
  | Run_start { label } -> Format.fprintf ppf "run %s" label
  | Superstep s ->
      if s.step = -1 then
        Format.fprintf ppf
          "build  : wire=%.0fB compute=%.3fs network=%.3fs skew=%.2f t=%.3fs" s.wire_bytes
          s.compute_s s.network_s (skew s) s.time_s
      else
        Format.fprintf ppf
          "step %2d: act=%d edges=%d msgs=%d shfl=%d(+%d rem) bcast=%d(+%d rem) wire=%.0fB \
           skew=%.2f t=%.3fs (c=%.3f n=%.3f o=%.3f)"
          s.step s.active_vertices s.active_edges s.messages s.local_shuffles s.remote_shuffles
          s.broadcast_replicas s.remote_broadcasts s.wire_bytes (skew s) s.time_s s.compute_s
          s.network_s s.overhead_s
  | Run_end r ->
      Format.fprintf ppf
        "end %s: %s, %d supersteps, %.2fs total, %d msgs (%d remote), %.0f wire bytes" r.label
        r.outcome r.supersteps r.total_s r.total_messages r.total_remote r.total_wire_bytes
  | Fault_injected f ->
      Format.fprintf ppf "fault step %2d: %s%s — %s" f.step f.kind
        (if f.executor >= 0 then Printf.sprintf " on executor %d" f.executor else "")
        f.detail
  | Checkpoint c ->
      Format.fprintf ppf "ckpt  step %2d: %.0fB written in %.3fs" c.step c.bytes c.write_s
  | Recovery r ->
      Format.fprintf ppf "recov step %2d: %s of executor %d (%d replayed, %d edges, %d views) %.3fs"
        r.step r.kind r.executor r.replayed_steps r.lost_edges r.lost_replicas r.recovery_s
  | Speculative_launch s ->
      Format.fprintf ppf
        "spec  step %2d: executor %d cloned onto %d (%d tasks, %.0fB reshuffled, +%.3fs compute)"
        s.step s.executor s.host s.cloned_partitions s.wire_bytes s.compute_s
  | Speculative_win s ->
      Format.fprintf ppf "spec  step %2d: clone on %d beat executor %d, saved %.3fs" s.step
        s.host s.executor s.saved_s
  | Job_submit j ->
      Format.fprintf ppf "job %3d submit : %s on %s/%d at %.2fs" j.job_id j.algorithm j.dataset
        j.num_partitions j.arrival_s
  | Job_start j ->
      Format.fprintf ppf "job %3d start  : %s%s at %.2fs (queued %.2fs)" j.job_id j.strategy
        (if j.cache_hit then " [cached]" else "")
        j.start_s j.queue_s
  | Job_end j ->
      Format.fprintf ppf "job %3d end    : %s, partition %.2fs + exec %.2fs, done at %.2fs"
        j.job_id j.outcome j.partition_s j.exec_s j.finish_s
  | Job_retry j ->
      Format.fprintf ppf "job %3d retry  : attempt %d failed, requeued at %.2fs (+%.2fs backoff)"
        j.job_id j.attempt j.resubmit_s j.delay_s
  | Job_shed j ->
      Format.fprintf ppf "job %3d shed   : queue depth %d, policy %s, at %.2fs" j.job_id
        j.queue_depth j.policy j.at_s
  | Deadline_exceeded d ->
      Format.fprintf ppf "job %3d deadline: missed %.2fs SLO by %.2fs (%s)" d.job_id d.deadline_s
        d.overshoot_s
        (if d.started then "cancelled mid-run" else "culled from queue")
  | Breaker_open b ->
      Format.fprintf ppf "breaker open  : %s/%s after %d consecutive failures at %.2fs" b.dataset
        b.strategy b.failures b.at_s
  | Breaker_close b ->
      Format.fprintf ppf "breaker close : %s/%s probe succeeded at %.2fs" b.dataset b.strategy
        b.at_s
  | Cache_op c ->
      Format.fprintf ppf "cache %-6s: %s/%s/%d %.0fB (now %d entries, %.0fB) at %.2fs" c.op
        c.graph c.strategy c.num_partitions c.bytes c.entries c.occupancy_bytes c.at_s
  | Mutation_batch m ->
      Format.fprintf ppf "mutate batch %d: %s +%d/-%d edges (%d -> %d) at %.2fs" m.batch m.graph
        m.inserts m.deletes m.edges_before m.edges_after m.at_s
  | Repartition r ->
      Format.fprintf ppf
        "repart batch %d: %s chose %s (refresh %.4fs vs rebuild %.4fs; %d placed, %d repaired, \
         %d moved) at %.2fs"
        r.batch r.graph r.choice r.refresh_s r.rebuild_s r.placed_edges r.repaired_vertices
        r.moved_replicas r.at_s
  | Executor_join e ->
      Format.fprintf ppf "scale step %2d: +%d executor(s), now %d" e.step e.count e.executors
  | Executor_leave e ->
      Format.fprintf ppf "scale step %2d: -%d executor(s), now %d" e.step e.count e.executors
  | Reshuffle r ->
      Format.fprintf ppf
        "reshfl step %2d: %d -> %d executors; %d partition(s) %.0fB moved, %d replica(s) %.0fB \
         rebroadcast in %.3fs"
        r.step r.executors_before r.executors_after r.moved_partitions r.moved_bytes
        r.rebroadcast_replicas r.rebroadcast_bytes r.reshuffle_s
  | Tenant_throttle t ->
      Format.fprintf ppf "throttle %-8s: job %d held at quota (%d pending) at %.2fs" t.tenant
        t.job_id t.pending t.at_s
