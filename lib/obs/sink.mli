(** Pluggable consumers of the telemetry event stream.

    A sink is two callbacks: one per event, one at close. The engines
    never see sinks — they emit through {!Telemetry} — so adding a new
    backend (a socket, a columnar buffer) means implementing this record
    and attaching it to the handle. *)

type t = {
  emit : Event.t -> unit;  (** called once per event, in emission order *)
  close : unit -> unit;  (** flush and release resources; called once *)
}

val ring : ?capacity:int -> unit -> t * (unit -> Event.t list)
(** In-memory ring buffer keeping the last [capacity] events (default
    4096). The second component reads the retained events in emission
    order; reading does not consume them. *)

val jsonl : string -> t
(** Append one JSON object per event to the given file path (truncating
    any existing file). The channel is buffered; [close] flushes. *)

(* lint: unused-export -- sink constructor for long-running services *)
val jsonl_channel : out_channel -> t
(** Like {!jsonl} on an already-open channel. [close] flushes but does
    not close the channel, which the caller owns. *)

val console : ?verbose:bool -> Format.formatter -> t
(** Pretty printer. With [verbose] (default false) every superstep is
    printed as it is emitted; otherwise only run boundaries and a
    per-run summary line are shown. *)
