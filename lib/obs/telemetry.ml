type t = {
  mutable sinks : Sink.t list;
  registry : Metric.registry;
  mutable emitted : int;
  mutable closed : bool;
}

let create ?(sinks = []) () =
  { sinks; registry = Metric.create_registry (); emitted = 0; closed = false }

let attach t sink = t.sinks <- t.sinks @ [ sink ]

let metrics t = t.registry

let emit t event =
  if not t.closed then begin
    t.emitted <- t.emitted + 1;
    List.iter (fun (s : Sink.t) -> s.Sink.emit event) t.sinks
  end

let events_emitted t = t.emitted

let close t =
  if not t.closed then begin
    t.closed <- true;
    List.iter (fun (s : Sink.t) -> s.Sink.close ()) t.sinks
  end
