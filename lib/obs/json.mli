(** Minimal JSON values, printing and parsing.

    The telemetry sinks need to write and re-read JSONL trace files
    without adding a dependency the container may not have, so this is a
    small self-contained codec: it supports exactly the JSON subset the
    {!Event} records use (objects, arrays, strings, bools, null, ints
    and doubles). Floats are printed with 17 significant digits so a
    parse of the printed form recovers the original double bit-for-bit —
    the round-trip guarantee the reconciliation tests rely on. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering (no insignificant whitespace), so one
    value per line is valid JSONL. Non-finite floats have no JSON
    representation and are rendered as [null]. *)

val of_string : string -> (t, string) result
(** Parse one JSON value; the error string carries a byte offset.
    Numbers without [.], [e] or [E] parse as {!Int}, all others as
    {!Float}. Trailing non-whitespace input is an error. *)

val member : string -> t -> t option
(** [member key json] looks up [key] when [json] is an {!Obj}. *)

val to_int : t -> int option
(** {!Int} as [int]; {!Float} values are not silently truncated. *)

val to_bool : t -> bool option
(** {!Bool} contents. *)

val to_float : t -> float option
(** {!Float} or {!Int} as [float]; [Null] reads back as [nan] (the
    printer's encoding of non-finite values). *)

val to_list : t -> t list option
(** {!List} contents. *)

val to_string_opt : t -> string option
(** {!String} contents. *)
