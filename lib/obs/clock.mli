(** Injectable time source.

    Everything in the library that needs "now" takes a [Clock.t] instead
    of calling [Unix.gettimeofday] directly, so tests and the run-twice
    determinism harness can substitute a reproducible clock. This module
    is the only file allowed to touch the wall clock — the determinism
    linter ([dune build @lint]) enforces that with an allowlist. *)

type t = unit -> float
(** Seconds. Only differences are meaningful. *)

val wall : t
(** The real wall clock ([Unix.gettimeofday]). *)

val fixed : float -> t
(** Always returns the given instant — spans measure as zero. *)

val counter : ?start:float -> ?step:float -> unit -> t
(** Deterministic fake: the first call returns [start] (default 0.0) and
    every further call advances by [step] (default 1.0), so a span
    bracketed by two reads measures exactly [step]. *)
