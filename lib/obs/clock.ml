type t = unit -> float

(* The single place in the library allowed to read the wall clock; the
   determinism linter (tools/lint) allowlists exactly this file. *)
let wall : t = Unix.gettimeofday

let fixed v : t = fun () -> v

let counter ?(start = 0.0) ?(step = 1.0) () : t =
  let now = ref (start -. step) in
  fun () ->
    now := !now +. step;
    !now
