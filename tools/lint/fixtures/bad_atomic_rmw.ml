(* expect: atomic-rmw *)
(* A get-then-set on the same atomic is not atomic: two domains can
   both read the old value and one increment is lost.  Use
   Atomic.fetch_and_add or a compare_and_set loop. *)

let bump (c : int Atomic.t) = Atomic.set c (Atomic.get c + 1)
