(* expect: none *)
(* The multicore superstep idiom: domains claim work items with an
   atomic counter, but every write lands in the claiming item's own
   slot range and the cross-partition reduction folds slots in
   ascending partition index — a total order fixed by the data layout.
   Scheduling decides only who computes, never what is computed, so no
   wall clock, no prints, and no polymorphic comparison are needed to
   keep the result bit-identical at any domain count. *)

let parallel_fill ~domains ~n f out =
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (* item-owned write: index [i] belongs to this claim alone *)
        out.(i) <- f i;
        loop ()
      end
    in
    loop ()
  in
  let spawned = List.init (domains - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join spawned

(* Reduction in ascending partition order: the fold visits each
   vertex's per-partition slots lowest partition first, so float
   accumulation associates the same way every run. *)
let reduce ~red_off ~red_slot ~acc v =
  let total = ref 0.0 in
  for i = red_off.(v) to red_off.(v + 1) - 1 do
    total := !total +. acc.(red_slot.(i))
  done;
  !total
