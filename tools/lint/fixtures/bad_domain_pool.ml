(* expect: domain-outside-runtime *)
(* Hand-rolled domain pool: Domain.spawn/join outside the sanctioned
   Par_exec runtime.  The writes themselves are item-owned and fine,
   but ad hoc pools bypass the pool-reuse, shutdown and ownership
   instrumentation that Par_exec provides, so the linter insists all
   parallelism flows through lib/bsp/par_exec.ml. *)

let parallel_fill ~domains ~n f out =
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (* item-owned write: index [i] belongs to this claim alone *)
        out.(i) <- f i;
        loop ()
      end
    in
    loop ()
  in
  let spawned = List.init (domains - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join spawned

(* Reduction in ascending partition order: the fold visits each
   vertex's per-partition slots lowest partition first, so float
   accumulation associates the same way every run. *)
let reduce ~red_off ~red_slot ~acc v =
  let total = ref 0.0 in
  for i = red_off.(v) to red_off.(v + 1) - 1 do
    total := !total +. acc.(red_slot.(i))
  done;
  !total
