(* expect: none *)
(* The speculation idiom: clone placement must replay bit-identically,
   so host tie-breaks are a stateless splitmix64 hash keyed
   (seed, step) through lib/prng — no [Random], no self-init, no wall
   clock — and the straggler scan uses explicit float comparisons, not
   polymorphic compare, on the per-executor busy times. *)
let tie_break ~seed ~step n =
  let h =
    Cutfit_prng.Splitmix64.mix64
      (Int64.logxor
         (Int64.mul (Int64.of_int seed) 0x9E3779B97F4A7C15L)
         (Int64.add
            (Int64.mul 0xBF58476D1CE4E5B9L (Int64.of_int (step + 1)))
            0x94D049BB133111EBL))
  in
  Int64.to_int (Int64.rem (Int64.shift_right_logical h 1) (Int64.of_int n))

let slowest (busy : float array) =
  let s = ref 0 in
  Array.iteri (fun e b -> if b > busy.(!s) then s := e) busy;
  !s

let pick_host ~seed ~step ~straggler (busy : float array) =
  let best = ref infinity in
  Array.iteri (fun e b -> if e <> straggler && b < !best then best := b) busy;
  let ties = ref [] in
  for e = Array.length busy - 1 downto 0 do
    if e <> straggler && Float.equal busy.(e) !best then ties := e :: !ties
  done;
  match !ties with
  | [ e ] -> e
  | ties -> List.nth ties (tie_break ~seed ~step (List.length ties))
