(* expect: none *)
(* An unreferenced export carrying a reasoned waiver on the preceding
   line is accepted. *)

(* lint: unused-export — kept as a stable entry point for embedders *)
val entry : int -> int
