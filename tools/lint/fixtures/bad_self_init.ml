(* expect: wall-clock *)
(* Seeding from ambient entropy is the other wall-clock shape: the run
   can never be replayed. All randomness flows from Cutfit_prng seeds. *)
let init () = Random.self_init ()
