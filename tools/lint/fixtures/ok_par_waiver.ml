(* expect: none *)
(* A write the analysis cannot prove item-owned, waived with a
   disjointness argument: [row] is a permutation, so distinct items
   map to distinct rows and the writes never collide. *)

let permute pool ~n ~(row : int array) (src : float array) (dst : float array) =
  Par_exec.iter pool ~n (fun _w i ->
      let r = row.(i) in
      (* lint: item-owned — row is a bijection over 0..n-1, so slots are disjoint *)
      dst.(r) <- src.(i))
