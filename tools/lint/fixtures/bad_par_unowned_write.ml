(* expect: item-owned *)
(* An element write whose index is a captured variable, not derived
   from the work item: every item hammers the same slot [k], so the
   final value depends on which domain writes last. *)

let scatter pool ~n ~k (acc : int array) =
  Par_exec.iter pool ~n (fun _w _i -> acc.(k) <- acc.(k) + 1)
