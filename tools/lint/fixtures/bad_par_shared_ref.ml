(* expect: par-shared-mutation *)
(* A captured ref mutated from inside a parallel closure: every domain
   races on [total], and float addition makes the result depend on the
   interleaving even if the increments were atomic.  Reductions must go
   through per-worker slots merged after the barrier. *)

let sum pool ~n (xs : float array) =
  let total = ref 0.0 in
  Par_exec.iter pool ~n (fun _w i -> total := !total +. xs.(i));
  !total
