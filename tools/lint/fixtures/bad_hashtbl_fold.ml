(* expect: hashtbl-order *)
(* Consing inside a fold makes the result order-dependent — the list's
   order is whatever the hash function produced. *)
let pairs tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
