(* expect: no-print *)
(* Library code owns no console: results travel through returned values,
   formatter arguments, or Cutfit_obs sinks. *)
let report n = Printf.printf "processed %d vertices\n" n
