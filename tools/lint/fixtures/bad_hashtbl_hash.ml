(* expect: poly-compare *)
(* Hashtbl.hash on a structure depends on representation details and
   truncation limits; keys must be hashed through a canonical scalar. *)
let key_of parts = Hashtbl.hash parts
