(* expect: none *)
(* The explicit waiver: this fold builds a list but the caller sorts it
   immediately, so the site documents its order-independence. *)
let snapshot tbl =
  (* lint: order-independent — sorted on the next line. *)
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
