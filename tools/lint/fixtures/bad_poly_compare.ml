(* expect: poly-compare *)
(* Polymorphic compare on a structured value walks the runtime
   representation: it distinguishes physically different but logically
   equal values and raises on functional fields. *)
let newest entries = List.sort (fun a b -> compare (b, 0) (a, 0)) entries
