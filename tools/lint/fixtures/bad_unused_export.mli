(* expect: unused-export *)
(* An exported value no module references: dead API surface that must
   either be deleted or carry a reasoned waiver. *)

val orphan : int -> int
