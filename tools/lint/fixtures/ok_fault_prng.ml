(* expect: none *)
(* The fault-schedule idiom: every random draw is a stateless hash of
   (seed, salt, step) through lib/prng — no [Random], no self-init, no
   wall clock — so a realized schedule replays bit-identically no
   matter how the engine interleaves its plan calls. *)
let draw ~seed ~salt ~step =
  Cutfit_prng.Splitmix64.mix64
    (Int64.logxor
       (Int64.mul (Int64.of_int seed) 0x9E3779B97F4A7C15L)
       (Int64.add (Int64.mul (Int64.of_int salt) 0xBF58476D1CE4E5B9L) (Int64.of_int step)))

let fires ~seed ~salt ~step ~rate =
  let h = draw ~seed ~salt ~step in
  Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.0 < rate

let victim ~seed ~salt ~step ~executors =
  let h = draw ~seed ~salt ~step in
  Int64.to_int (Int64.rem (Int64.shift_right_logical h 1) (Int64.of_int executors))
