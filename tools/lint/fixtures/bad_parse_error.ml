(* expect: parse-error *)
(* Deliberately unparseable: the linter must surface a structured
   parse-error finding instead of crashing or silently skipping. *)

let broken = (1 + 2
