(* expect: none *)
(* A provably order-insensitive fold (commutative-associative combiner
   on the accumulator), a typed comparator, and formatter-passed output:
   everything the rules permit. *)
let total tbl = Hashtbl.fold (fun _ v acc -> v + acc) tbl 0

let largest tbl = Hashtbl.fold (fun _ v acc -> max v acc) tbl 0

let sort_ids ids = List.sort Int.compare ids

let pp ppf n = Format.fprintf ppf "count=%d" n
