(* expect: none *)
(* The canonical safe kernel shape: each work item writes only slots
   whose indices derive from the item parameter, so domains never
   touch the same element and the result is independent of
   scheduling. *)

let double pool ~n (xs : float array) (out : float array) =
  Par_exec.iter pool ~n (fun _w i -> out.(i) <- xs.(i) *. 2.0)

let offset_copy pool ~n ~(off : int array) (src : float array) (dst : float array) =
  Par_exec.iter pool ~n (fun _w i ->
      for j = off.(i) to off.(i + 1) - 1 do
        dst.(j) <- src.(j)
      done)
