(* expect: none *)
(* The elastic-membership idiom: the victim of a preemption and the
   seat of a join are stateless hashes of (seed, salt, step) through
   lib/prng — no [Random], no self-init, no wall clock — so a scale
   schedule realizes to the same joins, leaves and victims whether the
   engine asks step by step or replays the whole run from a digest. *)
let draw ~seed ~salt ~step =
  Cutfit_prng.Splitmix64.mix64
    (Int64.logxor
       (Int64.mul (Int64.of_int seed) 0x9E3779B97F4A7C15L)
       (Int64.add (Int64.mul (Int64.of_int salt) 0xBF58476D1CE4E5B9L) (Int64.of_int step)))

let draw_mod h n = Int64.to_int (Int64.rem (Int64.shift_right_logical h 1) (Int64.of_int n))

(* Preemption victim at [step]: an index into the live set, drawn under
   salt 0. The caller maps it onto its alive array, so the same draw
   stays valid as the membership changes around it. *)
let victim ~seed ~step ~alive = draw_mod (draw ~seed ~salt:0 ~step) alive

(* Host-speed multiplier for executor [e]: drawn under salt 1 into
   [0.6, 1.4], so heterogeneity perturbs busy time without touching
   any computed value. *)
let speed ~seed ~e =
  let h = draw ~seed ~salt:1 ~step:e in
  0.6 +. (0.8 *. (Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.0))
