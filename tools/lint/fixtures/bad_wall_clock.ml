(* expect: wall-clock *)
(* Reading the wall clock outside lib/obs/clock.ml breaks run-twice
   determinism: two identical simulations would trace differently. *)
let elapsed f =
  let start = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. start
