(* expect: none *)
(* The mutation-batch idiom: every inserted edge and every delete pick
   is a stateless hash of (seed, batch-salt, draw index) through
   lib/prng — no [Random], no self-init, no wall clock — so batch [k]
   regenerates bit-identically without replaying batches [1..k-1],
   whichever order the engine lands them in. *)
let draw ~seed ~salt ~k =
  Cutfit_prng.Splitmix64.mix64
    (Int64.logxor
       (Int64.mul (Int64.of_int seed) 0x9E3779B97F4A7C15L)
       (Int64.add (Int64.mul (Int64.of_int salt) 0xBF58476D1CE4E5B9L) (Int64.of_int k)))

let draw_mod h n = Int64.to_int (Int64.rem (Int64.shift_right_logical h 1) (Int64.of_int n))

(* Inserts for batch [b]: endpoint pairs drawn under salt [2b]. *)
let insert ~seed ~batch ~i ~vertices =
  let src = draw_mod (draw ~seed ~salt:(2 * batch) ~k:(2 * i)) vertices in
  let dst = draw_mod (draw ~seed ~salt:(2 * batch) ~k:((2 * i) + 1)) vertices in
  if src = dst then (src, (dst + 1) mod vertices) else (src, dst)

(* Deletes for batch [b]: edge ids drawn under the odd salt [2b + 1],
   so the two streams never share a hash input. *)
let delete ~seed ~batch ~i ~edges = draw_mod (draw ~seed ~salt:((2 * batch) + 1) ~k:i) edges
