(* expect: hashtbl-order *)
(* Iteration order over a hash table is unspecified; printing (or
   appending, or any non-commutative effect) in it is nondeterministic. *)
let names tbl =
  let out = ref [] in
  Hashtbl.iter (fun k _ -> out := k :: !out) tbl;
  !out
