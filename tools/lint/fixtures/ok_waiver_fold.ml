(* expect: none *)
(* The workload cache's snapshot pattern: fold every live entry into a
   list in whatever order the table yields, then impose the canonical
   order from a sequence number carried by the entry itself. The waiver
   sits on the line above the fold, which the linter also accepts. *)
type entry = { seq : int; bytes : float }

let live_entries tbl =
  (* lint: order-independent *)
  Hashtbl.fold (fun _ e acc -> e :: acc) tbl []
  |> List.sort (fun a b -> compare a.seq b.seq)

let bytes_in tbl = List.fold_left (fun acc e -> acc +. e.bytes) 0.0 (live_entries tbl)
