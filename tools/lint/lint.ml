(* Determinism and hygiene linter for the cutfit tree.

   Parses every .ml under the given directories with compiler-libs and
   enforces the project rules that keep the simulator's measurements
   trustworthy:

   - wall-clock      no [Unix.gettimeofday]/[Sys.time]/[Random.self_init]
                     and friends outside the allowlisted clock module
                     (lib/obs/clock.ml);
   - hashtbl-order   no order-dependent [Hashtbl.iter]/[Hashtbl.fold]:
                     a fold whose combining operator is commutative and
                     associative (max, min, +, ...) on the accumulator is
                     accepted, anything else needs an explicit
                     [(* lint: order-independent *)] waiver on the line
                     of the call or the line above;
   - poly-compare    (lib/ only) no [Hashtbl.hash], and no polymorphic
                     [compare]/[=]/[<>]/[<]/... applied to a syntactically
                     structured argument (tuple, list, record, constructor
                     application) — use a typed comparator;
   - no-print        (lib/ only) no direct stdout/stderr printing
                     ([Printf.printf], [print_endline], [Format.printf],
                     [Fmt.pr], ...); output goes through Cutfit_obs sinks
                     or formatters received as arguments.

   It also prints a report of .mli exports never referenced outside
   their defining module (informational, never fails the build).

   Exit status: 0 when no unwaived finding in an enforced rule, 1
   otherwise. [--self-test DIR] runs the rule engine over fixture
   snippets that each declare the finding they must produce. *)

type rule = Wall_clock | Hashtbl_order | Poly_compare | No_print

let rule_name = function
  | Wall_clock -> "wall-clock"
  | Hashtbl_order -> "hashtbl-order"
  | Poly_compare -> "poly-compare"
  | No_print -> "no-print"

let rule_of_name = function
  | "wall-clock" -> Some Wall_clock
  | "hashtbl-order" | "order-independent" -> Some Hashtbl_order
  | "poly-compare" -> Some Poly_compare
  | "no-print" -> Some No_print
  | _ -> None

type finding = { file : string; line : int; rule : rule; msg : string }

(* --- rule tables --- *)

let wall_clock_idents =
  [
    "Unix.gettimeofday";
    "Unix.time";
    "Unix.gmtime";
    "Unix.localtime";
    "Unix.times";
    "Sys.time";
    "Random.self_init";
    "Random.State.make_self_init";
  ]

let print_idents =
  [
    "Printf.printf";
    "Printf.eprintf";
    "Format.printf";
    "Format.eprintf";
    "Format.print_string";
    "Format.print_newline";
    "Fmt.pr";
    "Fmt.epr";
    "print_string";
    "print_endline";
    "print_int";
    "print_float";
    "print_char";
    "print_bytes";
    "print_newline";
    "prerr_string";
    "prerr_endline";
    "prerr_newline";
    "Stdlib.print_string";
    "Stdlib.print_endline";
    "Stdlib.print_newline";
  ]

let poly_compare_fns = [ "compare"; "Stdlib.compare"; "=" ; "<>"; "<"; ">"; "<="; ">=" ]

(* Operators that make a fold accumulator provably order-insensitive:
   commutative and associative, so any iteration order yields the same
   result. *)
let order_insensitive_ops = [ "max"; "min"; "+"; "+."; "*"; "*."; "land"; "lor"; "lxor" ]

(* --- helpers --- *)

let path_components file = String.split_on_char '/' file

let in_lib file = List.mem "lib" (path_components file)

let clock_allowlisted file =
  match List.rev (path_components file) with
  | "clock.ml" :: "obs" :: _ -> true
  | _ -> false

let lident_path lid = String.concat "." (Longident.flatten lid)

let line_of_loc (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum

(* Waivers: a comment [(* lint: <rule> ... *)] (or the documented alias
   [order-independent]) suppresses findings of that rule on its own line
   and on the following line. *)
let waiver_re = Str.regexp {|(\*[ \t]*lint:[ \t]*\([a-z-]+\)|}

let waivers_of_source source =
  let table = Hashtbl.create 8 in
  List.iteri
    (fun i line ->
      match
        try
          ignore (Str.search_forward waiver_re line 0);
          rule_of_name (Str.matched_group 1 line)
        with Not_found -> None
      with
      | Some rule ->
          Hashtbl.replace table (i + 1, rule) ();
          Hashtbl.replace table (i + 2, rule) ()
      | None -> ())
    (String.split_on_char '\n' source);
  fun line rule -> Hashtbl.mem table (line, rule)

(* --- the order-insensitivity prover for Hashtbl.fold --- *)

open Parsetree

(* Peel the parameters of a [fun k v acc -> body]; returns params in
   order plus the body. *)
let rec peel_params e =
  match e.pexp_desc with
  | Pexp_fun (_, _, pat, body) ->
      let rest, core = peel_params body in
      (pat :: rest, core)
  | _ -> ([], e)

let pat_var p = match p.ppat_desc with Ppat_var { txt; _ } -> Some txt | _ -> None

let is_ident name e =
  match e.pexp_desc with Pexp_ident { txt = Longident.Lident n; _ } -> n = name | _ -> false

(* [fun _ v acc -> op x acc] (either argument order) with a commutative
   associative [op] is order-insensitive: the fold computes a bag
   reduction. Anything else — consing, subtraction, side effects — is
   conservatively rejected. *)
let fold_fn_order_insensitive fn =
  let params, body = peel_params fn in
  match params with
  | [ _; _; acc_pat ] -> (
      match pat_var acc_pat with
      | None -> false
      | Some acc -> (
          match body.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Longident.Lident op; _ }; _ }, args)
            when List.mem op order_insensitive_ops ->
              let args = List.map snd args in
              List.length args = 2 && List.exists (is_ident acc) args
          | _ -> false))
  | _ -> false

(* A constructor carrying only a constant payload (e.g. [Some ']'],
   [Ok 0]) compares like a scalar; only genuinely structured payloads
   make polymorphic comparison suspicious. *)
let rec structured_literal e =
  match e.pexp_desc with
  | Pexp_tuple _ | Pexp_record _ | Pexp_array _ -> true
  | Pexp_variant (_, Some payload) | Pexp_construct (_, Some payload) ->
      structured_literal payload || not (is_constant payload)
  | _ -> false

and is_constant e =
  match e.pexp_desc with Pexp_constant _ -> true | _ -> false

(* --- per-file lint pass --- *)

let lint_structure ~file ~lib_scope ~waived structure =
  let findings = ref [] in
  let add loc rule msg =
    let line = line_of_loc loc in
    if not (waived line rule) then findings := { file; line; rule; msg } :: !findings
  in
  (* Function idents already judged as part of an enclosing application,
     so the bare-ident pass must not re-report them. *)
  let handled : (int * int) list ref = ref [] in
  let mark (loc : Location.t) =
    handled := (loc.loc_start.pos_cnum, loc.loc_end.pos_cnum) :: !handled
  in
  let was_handled (loc : Location.t) =
    List.mem (loc.loc_start.pos_cnum, loc.loc_end.pos_cnum) !handled
  in
  let check_ident loc path =
    if List.mem path wall_clock_idents && not (clock_allowlisted file) then
      add loc Wall_clock
        (Printf.sprintf "%s reads ambient state; inject a Cutfit_obs.Clock.t instead" path);
    if lib_scope && List.mem path print_idents then
      add loc No_print
        (Printf.sprintf
           "%s writes directly to the console from library code; emit through Cutfit_obs sinks \
            or a formatter argument"
           path);
    if lib_scope && (path = "Hashtbl.hash" || path = "Stdlib.Hashtbl.hash") then
      add loc Poly_compare
        "Hashtbl.hash is polymorphic and layout-dependent; hash a canonical scalar key instead"
  in
  let iter_expr default it e =
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } ->
        if not (was_handled loc) then check_ident loc (lident_path txt)
    | Pexp_apply (({ pexp_desc = Pexp_ident { txt; loc = fn_loc }; _ } as _fn), args) -> (
        let path = lident_path txt in
        match path with
        | "Hashtbl.iter" | "Stdlib.Hashtbl.iter" ->
            mark fn_loc;
            add e.pexp_loc Hashtbl_order
              "Hashtbl.iter visits bindings in hash order; iterate a sorted key list or add an \
               (* lint: order-independent *) waiver"
        | "Hashtbl.fold" | "Stdlib.Hashtbl.fold" ->
            mark fn_loc;
            let proven =
              match args with
              | (_, fn_arg) :: _ -> fold_fn_order_insensitive fn_arg
              | [] -> false
            in
            if not proven then
              add e.pexp_loc Hashtbl_order
                "Hashtbl.fold result may depend on hash order; use a commutative-associative \
                 combiner, sort the keys first, or add an (* lint: order-independent *) waiver"
        | _ when lib_scope && List.mem path poly_compare_fns ->
            if List.exists (fun (_, a) -> structured_literal a) args then
              add e.pexp_loc Poly_compare
                (Printf.sprintf
                   "polymorphic %s on a structured value; define a typed comparison" path)
        | _ -> ())
    | _ -> ());
    default.Ast_iterator.expr it e
  in
  let default = Ast_iterator.default_iterator in
  let it = { default with Ast_iterator.expr = iter_expr default } in
  it.Ast_iterator.structure it structure;
  List.rev !findings

(* --- file walking and parsing --- *)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let rec walk dir =
  let entries = try Sys.readdir dir with Sys_error _ -> [||] in
  Array.sort compare entries;
  Array.fold_left
    (fun acc entry ->
      let path = Filename.concat dir entry in
      if Sys.is_directory path then acc @ walk path else acc @ [ path ])
    [] entries

let parse_impl ~file source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf file;
  Parse.implementation lexbuf

let parse_intf ~file source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf file;
  Parse.interface lexbuf

let lint_file file =
  let source = read_file file in
  match parse_impl ~file source with
  | structure ->
      let waived = waivers_of_source source in
      lint_structure ~file ~lib_scope:(in_lib file) ~waived structure
  | exception _ ->
      [ { file; line = 1; rule = Wall_clock; msg = "parse error (file skipped by the linter)" } ]

(* --- unused-export report --- *)

let module_name_of_file file =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename file))

let exports_of_intf file =
  match parse_intf ~file (read_file file) with
  | exception _ -> []
  | items ->
      List.filter_map
        (fun item ->
          match item.psig_desc with
          | Psig_value vd ->
              Some (module_name_of_file file, vd.pval_name.Asttypes.txt, line_of_loc vd.pval_loc)
          | _ -> None)
        items

let uses_of_impl structure =
  let uses = Hashtbl.create 256 in
  let record lid =
    match List.rev (Longident.flatten lid) with
    | value :: m :: _ -> Hashtbl.replace uses (m, value) ()
    | _ -> ()
  in
  let default = Ast_iterator.default_iterator in
  let it =
    {
      default with
      Ast_iterator.expr =
        (fun it e ->
          (match e.pexp_desc with Pexp_ident { txt; _ } -> record txt | _ -> ());
          default.Ast_iterator.expr it e);
    }
  in
  it.Ast_iterator.structure it structure;
  uses

let unused_export_report ~lint_dirs ~use_dirs =
  let mls dirs =
    List.concat_map walk dirs |> List.filter (fun f -> Filename.check_suffix f ".ml")
  in
  let mlis =
    List.concat_map walk lint_dirs |> List.filter (fun f -> Filename.check_suffix f ".mli")
  in
  let uses = Hashtbl.create 1024 in
  List.iter
    (fun f ->
      match parse_impl ~file:f (read_file f) with
      | exception _ -> ()
      | s -> Hashtbl.iter (fun k () -> Hashtbl.replace uses k ()) (uses_of_impl s))
    (mls (lint_dirs @ use_dirs));
  let unused =
    List.concat_map
      (fun mli ->
        List.filter_map
          (fun (m, v, line) -> if Hashtbl.mem uses (m, v) then None else Some (mli, line, m, v))
          (exports_of_intf mli))
      mlis
  in
  if unused <> [] then begin
    Printf.printf "unused-export report (%d exports never referenced by module name):\n"
      (List.length unused);
    List.iter
      (fun (mli, line, m, v) -> Printf.printf "  %s:%d: %s.%s\n" mli line m v)
      unused
  end

(* --- self-test over fixtures --- *)

let expected_of_fixture source =
  let re = Str.regexp {|(\*[ \t]*expect:[ \t]*\([a-z-]+\)|} in
  try
    ignore (Str.search_forward re source 0);
    Some (Str.matched_group 1 source)
  with Not_found -> None

let self_test dir =
  let fixtures = walk dir |> List.filter (fun f -> Filename.check_suffix f ".ml") in
  if fixtures = [] then begin
    Printf.printf "lint self-test: no fixtures under %s\n" dir;
    exit 1
  end;
  let failures = ref 0 in
  List.iter
    (fun file ->
      let source = read_file file in
      let findings =
        (* Fixtures exercise the lib/-scope rules regardless of where
           the fixture tree lives. *)
        match parse_impl ~file source with
        | s -> lint_structure ~file ~lib_scope:true ~waived:(waivers_of_source source) s
        | exception _ ->
            Printf.printf "FAIL %s: fixture does not parse\n" file;
            incr failures;
            []
      in
      match expected_of_fixture source with
      | None ->
          Printf.printf "FAIL %s: missing (* expect: <rule> *) header\n" file;
          incr failures
      | Some "none" ->
          if findings <> [] then begin
            Printf.printf "FAIL %s: expected no findings, got %d (first: [%s] %s)\n" file
              (List.length findings)
              (rule_name (List.hd findings).rule)
              (List.hd findings).msg;
            incr failures
          end
          else Printf.printf "ok   %s (clean, as expected)\n" file
      | Some name -> (
          match rule_of_name name with
          | None ->
              Printf.printf "FAIL %s: unknown expected rule %S\n" file name;
              incr failures
          | Some rule ->
              if List.exists (fun f -> f.rule = rule) findings then
                Printf.printf "ok   %s (caught %s)\n" file name
              else begin
                Printf.printf "FAIL %s: rule %s did not fire\n" file name;
                incr failures
              end))
    fixtures;
  if !failures > 0 then begin
    Printf.printf "lint self-test: %d failure(s)\n" !failures;
    exit 1
  end;
  Printf.printf "lint self-test: %d fixture(s) ok\n" (List.length fixtures)

(* --- entry point --- *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [ "--self-test"; dir ] -> self_test dir
  | _ ->
      let use_dirs, lint_dirs =
        let rec split acc = function
          | "--use-only" :: d :: rest ->
              let u, l = split acc rest in
              (d :: u, l)
          | d :: rest -> split acc rest |> fun (u, l) -> (u, d :: l)
          | [] -> ([], acc)
        in
        split [] args
      in
      let lint_dirs = if lint_dirs = [] then [ "lib"; "bin" ] else lint_dirs in
      let files =
        List.concat_map walk lint_dirs |> List.filter (fun f -> Filename.check_suffix f ".ml")
      in
      let findings = List.concat_map lint_file files in
      List.iter
        (fun f -> Printf.printf "%s:%d: [%s] %s\n" f.file f.line (rule_name f.rule) f.msg)
        findings;
      unused_export_report ~lint_dirs ~use_dirs;
      if findings = [] then
        Printf.printf "lint: %d files clean (%s)\n" (List.length files)
          (String.concat ", " lint_dirs)
      else begin
        Printf.printf "lint: %d finding(s) in %d files\n" (List.length findings)
          (List.length files);
        exit 1
      end
