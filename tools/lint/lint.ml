(* Determinism and domain-safety linter for the cutfit tree.

   Parses every .ml/.mli under the given directories with compiler-libs
   and enforces the project rules that keep the simulator's measurements
   trustworthy and the multicore kernels deterministic:

   - wall-clock      no [Unix.gettimeofday]/[Sys.time]/[Random.self_init]
                     and friends outside the allowlisted clock module
                     (lib/obs/clock.ml);
   - hashtbl-order   no order-dependent [Hashtbl.iter]/[Hashtbl.fold]: a
                     fold whose combiner is commutative-associative on
                     the accumulator is accepted, anything else needs an
                     explicit [(* lint: order-independent *)] waiver;
   - poly-compare    (lib/ only) no [Hashtbl.hash], and no polymorphic
                     [compare]/[=]/[<]/... applied to a syntactically
                     structured argument — use a typed comparator;
   - no-print        (lib/ only) no direct stdout/stderr printing;
                     output goes through Cutfit_obs sinks or formatter
                     arguments.

   Domain-safety rules, driven by a small interprocedural effect
   analysis (every function is classified pure / local-mutation /
   shared-mutation by propagating effects through the call graph; see
   docs/ANALYSIS.md):

   - par-shared-mutation   a closure passed to [Par_exec.run]/[iter]/
                           [iter_shadowed] (or code reachable from one)
                           writes a captured ref, a mutable field, a
                           Hashtbl or other shared container, or calls
                           a function classified shared-mutating;
   - item-owned            an [Array]/[Bigarray]/[Bytes] element write
                           inside such a closure whose index is not
                           derived from the item parameter and whose
                           target is not selected by the worker or item
                           parameter; waiverable with
                           [(* lint: item-owned *)] for proven-disjoint
                           cases;
   - domain-outside-runtime  [Domain.spawn]/[Domain.join]/[Mutex]/
                           [Condition] anywhere outside
                           lib/bsp/par_exec.ml;
   - atomic-rmw            [Atomic.set x (... Atomic.get x ...)] — a
                           non-atomic read-modify-write; use
                           [fetch_and_add]/[compare_and_set];
   - parse-error           a file the linter cannot parse;
   - unused-export         a .mli [val] never referenced by module name
                           anywhere in the tree; delete the export or
                           waive it with [(* lint: unused-export *)].

   Exit status: 0 when clean, 1 otherwise. [--json FILE] also writes
   the findings as a JSON artifact. [--effects] dumps the effect
   classification. [--self-test DIR] runs the rule engine over fixture
   snippets that each declare the finding they must produce. *)

type rule =
  | Wall_clock
  | Hashtbl_order
  | Poly_compare
  | No_print
  | Par_shared
  | Item_owned
  | Domain_outside
  | Atomic_rmw
  | Parse_error
  | Unused_export

let rule_name = function
  | Wall_clock -> "wall-clock"
  | Hashtbl_order -> "hashtbl-order"
  | Poly_compare -> "poly-compare"
  | No_print -> "no-print"
  | Par_shared -> "par-shared-mutation"
  | Item_owned -> "item-owned"
  | Domain_outside -> "domain-outside-runtime"
  | Atomic_rmw -> "atomic-rmw"
  | Parse_error -> "parse-error"
  | Unused_export -> "unused-export"

let rule_of_name = function
  | "wall-clock" -> Some Wall_clock
  | "hashtbl-order" | "order-independent" -> Some Hashtbl_order
  | "poly-compare" -> Some Poly_compare
  | "no-print" -> Some No_print
  | "par-shared-mutation" -> Some Par_shared
  | "item-owned" -> Some Item_owned
  | "domain-outside-runtime" -> Some Domain_outside
  | "atomic-rmw" -> Some Atomic_rmw
  | "parse-error" -> Some Parse_error
  | "unused-export" -> Some Unused_export
  | _ -> None

type finding = { file : string; line : int; rule : rule; msg : string }

(* --- rule tables --- *)

let wall_clock_idents =
  [
    "Unix.gettimeofday";
    "Unix.time";
    "Unix.gmtime";
    "Unix.localtime";
    "Unix.times";
    "Sys.time";
    "Random.self_init";
    "Random.State.make_self_init";
  ]

let print_idents =
  [
    "Printf.printf";
    "Printf.eprintf";
    "Format.printf";
    "Format.eprintf";
    "Format.print_string";
    "Format.print_newline";
    "Fmt.pr";
    "Fmt.epr";
    "print_string";
    "print_endline";
    "print_int";
    "print_float";
    "print_char";
    "print_bytes";
    "print_newline";
    "prerr_string";
    "prerr_endline";
    "prerr_newline";
    "Stdlib.print_string";
    "Stdlib.print_endline";
    "Stdlib.print_newline";
  ]

let poly_compare_fns = [ "compare"; "Stdlib.compare"; "="; "<>"; "<"; ">"; "<="; ">=" ]

(* Combiners that make a fold accumulator provably order-insensitive:
   commutative and associative, so any visit order yields the same
   result. *)
let order_insensitive_ops = [ "max"; "min"; "+"; "+."; "*"; "*."; "land"; "lor"; "lxor" ]

(* Element-writing containers: an application of [<Mod>.set] or
   [<Mod>.unsafe_set] with >= 3 arguments (target, indices..., value).
   [a.(i) <- v] and [b.{i} <- v] desugar to exactly these paths. *)
let elem_write_heads = [ "Array"; "Bytes"; "String"; "Array1"; "Array2"; "Array3" ]

(* In-place container mutators: writing through one of these to a
   non-local target is shared mutation. *)
let container_mutators =
  [
    ("Hashtbl", "add");
    ("Hashtbl", "replace");
    ("Hashtbl", "remove");
    ("Hashtbl", "reset");
    ("Hashtbl", "clear");
    ("Hashtbl", "filter_map_inplace");
    ("Queue", "add");
    ("Queue", "push");
    ("Queue", "pop");
    ("Queue", "take");
    ("Queue", "clear");
    ("Queue", "transfer");
    ("Stack", "push");
    ("Stack", "pop");
    ("Stack", "clear");
    ("Buffer", "add_string");
    ("Buffer", "add_char");
    ("Buffer", "add_bytes");
    ("Buffer", "add_substring");
    ("Buffer", "clear");
    ("Buffer", "reset");
    ("Buffer", "truncate");
  ]

(* Bulk mutators: whole-range writes to the first argument. *)
let bulk_mutators =
  [
    ("Array", "fill");
    ("Array", "blit");
    ("Array", "sort");
    ("Array", "fast_sort");
    ("Array", "stable_sort");
    ("Bytes", "fill");
    ("Bytes", "blit");
    ("Bytes", "blit_string");
    ("Array1", "fill");
    ("Array1", "blit");
    ("Array2", "fill");
    ("Array3", "fill");
  ]

(* Shadow-recorder entry points sanctioned inside parallel closures:
   Ownership's records go to worker-owned logs by design — that is the
   whole point of the recorder — so instrumented kernels may call them
   without tripping par-shared-mutation. *)
let sanctioned_in_par = [ ("Ownership", "write"); ("Ownership", "read") ]

(* --- small helpers --- *)

let path_components file = String.split_on_char '/' file
let in_lib file = List.mem "lib" (path_components file)

let clock_allowlisted file =
  match List.rev (path_components file) with "clock.ml" :: "obs" :: _ -> true | _ -> false

(* lib/bsp/par_exec.ml is the one sanctioned home of raw domain
   plumbing — and, being the runtime itself, its internal closures ARE
   the scheduler, so the par-closure rules skip it too. *)
let par_runtime_file file =
  match List.rev (path_components file) with "par_exec.ml" :: "bsp" :: _ -> true | _ -> false

let line_of_loc (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum

(* Waivers: a comment [(* lint: <rule> ... *)] suppresses findings of
   that rule on its own line and on the following line. *)
let waiver_re = Str.regexp {|(\*[ \t]*lint:[ \t]*\([a-z-]+\)|}

let waivers_of_source source =
  let table = Hashtbl.create 8 in
  List.iteri
    (fun i line ->
      match
        try
          ignore (Str.search_forward waiver_re line 0);
          rule_of_name (Str.matched_group 1 line)
        with Not_found -> None
      with
      | Some rule ->
          Hashtbl.replace table (i + 1, rule) ();
          Hashtbl.replace table (i + 2, rule) ()
      | None -> ())
    (String.split_on_char '\n' source);
  fun line rule -> Hashtbl.mem table (line, rule)

open Parsetree

let rec peel_params e =
  match e.pexp_desc with
  | Pexp_fun (label, _, pat, body) ->
      let rest, core = peel_params body in
      ((label, pat) :: rest, core)
  | _ -> ([], e)

let pat_var p = match p.ppat_desc with Ppat_var { txt; _ } -> Some txt | _ -> None

(* All variable names bound by a pattern (tuples, aliases, ...). *)
let pat_bound_vars pat =
  let acc = ref [] in
  let rec go p =
    match p.ppat_desc with
    | Ppat_var { txt; _ } -> acc := txt :: !acc
    | Ppat_alias (p, { txt; _ }) ->
        acc := txt :: !acc;
        go p
    | Ppat_tuple ps -> List.iter go ps
    | Ppat_construct (_, Some (_, p)) | Ppat_variant (_, Some p) -> go p
    | Ppat_record (fields, _) -> List.iter (fun (_, p) -> go p) fields
    | Ppat_array ps -> List.iter go ps
    | Ppat_or (a, b) ->
        go a;
        go b
    | Ppat_constraint (p, _) | Ppat_open (_, p) | Ppat_lazy p | Ppat_exception p -> go p
    | _ -> ()
  in
  go pat;
  !acc

let is_ident name e =
  match e.pexp_desc with Pexp_ident { txt = Longident.Lident n; _ } -> n = name | _ -> false

(* Every single-component identifier mentioned anywhere in [e] — the
   "does this expression mention x" primitive of the derivation
   analysis. *)
let idents_of_expr e =
  let acc = ref [] in
  let default = Ast_iterator.default_iterator in
  let it =
    {
      default with
      Ast_iterator.expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt = Longident.Lident n; _ } -> acc := n :: !acc
          | _ -> ());
          default.Ast_iterator.expr it e);
    }
  in
  it.Ast_iterator.expr it e;
  !acc

module StrSet = Set.Make (String)

let mentions set e = List.exists (fun n -> StrSet.mem n set) (idents_of_expr e)
let add_names set names = List.fold_left (fun s n -> StrSet.add n s) set names

(* The syntactic head of a write target: [counts] in [counts.(v) <- x],
   [t] in [t.field <- x], also through an element read ([rows] in
   [rows.(w).(v) <- x]). *)
let rec head_ident e =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident n; _ } -> Some n
  | Pexp_field (e0, _) -> head_ident e0
  | Pexp_constraint (e0, _) -> head_ident e0
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, (_, a0) :: _) -> (
      match List.rev (Longident.flatten txt) with
      | ("get" | "unsafe_get") :: _ -> head_ident a0
      | _ -> None)
  | _ -> None

(* [fun _ v acc -> op x acc] (either argument order) with a commutative
   associative [op] is order-insensitive: the fold computes a bag
   reduction. Anything else — consing, subtraction, side effects — is
   conservatively rejected. *)
let fold_fn_order_insensitive fn =
  let params, body = peel_params fn in
  match params with
  | [ _; _; (_, acc_pat) ] -> (
      match pat_var acc_pat with
      | None -> false
      | Some acc -> (
          match body.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Longident.Lident op; _ }; _ }, args)
            when List.mem op order_insensitive_ops ->
              let args = List.map snd args in
              List.length args = 2 && List.exists (is_ident acc) args
          | _ -> false))
  | _ -> false

(* A constructor carrying only a constant payload (e.g. [Some 0])
   compares like a scalar; only genuinely structured payloads make
   polymorphic comparison suspicious. *)
let rec structured_literal e =
  match e.pexp_desc with
  | Pexp_tuple _ | Pexp_record _ | Pexp_array _ -> true
  | Pexp_variant (_, Some payload) | Pexp_construct (_, Some payload) ->
      structured_literal payload || not (is_constant payload)
  | _ -> false

and is_constant e = match e.pexp_desc with Pexp_constant _ -> true | _ -> false

(* --- analysis context ------------------------------------------------

   One parse of the whole tree, shared by every rule: per-file module
   aliases, every function definition (top-level ones addressable as
   (Module, name) across files, let-bound ones by name and position
   within their file), per-file waiver tables, and the effect
   classification computed over the call graph. *)

type fndef = {
  def_file : string;
  def_line : int;
  params : (Asttypes.arg_label * pattern) list;
  body : expression;
}

type ctx = {
  aliases : (string, (string, string list) Hashtbl.t) Hashtbl.t;
  file_defs : (string, (string, fndef list) Hashtbl.t) Hashtbl.t;
  global_defs : (string * string, fndef) Hashtbl.t;
  effects : (string * string, int) Hashtbl.t;
      (* 0 = pure, 1 = local-mutation, 2 = shared-mutation *)
  waived : (string, int -> rule -> bool) Hashtbl.t;
}

let fresh_ctx () =
  {
    aliases = Hashtbl.create 64;
    file_defs = Hashtbl.create 64;
    global_defs = Hashtbl.create 256;
    effects = Hashtbl.create 256;
    waived = Hashtbl.create 64;
  }

let module_name_of_file file =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename file))

(* Expand a leading local module alias: with [module B1 = Bigarray.Array1]
   in scope, [B1.unsafe_set] becomes [Bigarray.Array1.unsafe_set]. *)
let expand_path ctx file lid =
  let parts = Longident.flatten lid in
  match parts with
  | head :: tl -> (
      match Hashtbl.find_opt ctx.aliases file with
      | Some table -> (
          match Hashtbl.find_opt table head with Some target -> target @ tl | None -> parts)
      | None -> parts)
  | [] -> parts

(* (Module, value) key of a call path: the last two components, or the
   caller's own module for an unqualified name. *)
let callee_key ~self_module parts =
  match List.rev parts with
  | [ f ] -> Some (self_module, f)
  | f :: m :: _ -> Some (m, f)
  | [] -> None

let last_two parts = match List.rev parts with f :: m :: _ -> Some (m, f) | _ -> None

let is_elem_write parts nargs =
  nargs >= 3
  &&
  match last_two parts with
  | Some (m, ("set" | "unsafe_set")) -> List.mem m elem_write_heads
  | _ -> false

let is_container_mutator parts =
  match last_two parts with Some key -> List.mem key container_mutators | None -> false

let is_bulk_mutator parts =
  match last_two parts with Some key -> List.mem key bulk_mutators | None -> false

let is_sanctioned_in_par parts =
  match last_two parts with Some key -> List.mem key sanctioned_in_par | None -> false

let is_atomic parts = match List.rev parts with _ :: "Atomic" :: _ -> true | _ -> false

(* Unqualified (or Stdlib-qualified) ref writes only: [Metric.incr] and
   friends are ordinary calls, not Stdlib's ref primitives. *)
let is_ref_write parts =
  match parts with
  | [ (":=" | "incr" | "decr") ] | [ "Stdlib"; (":=" | "incr" | "decr") ] -> true
  | _ -> false

let all_but_last xs = match List.rev xs with _ :: tl -> List.rev tl | [] -> []

(* --- context construction --- *)

let collect_aliases structure =
  let table = Hashtbl.create 8 in
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_module { pmb_name = { txt = Some name; _ }; pmb_expr; _ } -> (
          match pmb_expr.pmod_desc with
          | Pmod_ident { txt; _ } -> Hashtbl.replace table name (Longident.flatten txt)
          | _ -> ())
      | _ -> ())
    structure;
  table

let collect_defs ~file structure =
  let file_table : (string, fndef list) Hashtbl.t = Hashtbl.create 32 in
  let top_table : (string, fndef) Hashtbl.t = Hashtbl.create 16 in
  let def_of_binding vb =
    match (pat_var vb.pvb_pat, vb.pvb_expr.pexp_desc) with
    | Some name, Pexp_fun _ ->
        let params, body = peel_params vb.pvb_expr in
        Some (name, { def_file = file; def_line = line_of_loc vb.pvb_loc; params; body })
    | _ -> None
  in
  let add_file name def =
    let prev = Option.value ~default:[] (Hashtbl.find_opt file_table name) in
    Hashtbl.replace file_table name (def :: prev)
  in
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              match def_of_binding vb with
              | Some (name, def) ->
                  Hashtbl.replace top_table name def;
                  add_file name def
              | None -> ())
            vbs
      | _ -> ())
    structure;
  (* Nested let-bound functions are addressable by name and position
     within the file: closure idents like [scatter] passed straight to
     Par_exec.iter resolve through this. *)
  let default = Ast_iterator.default_iterator in
  let it =
    {
      default with
      Ast_iterator.expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_let (_, vbs, _) ->
              List.iter
                (fun vb ->
                  match def_of_binding vb with
                  | Some (name, def) -> add_file name def
                  | None -> ())
                vbs
          | _ -> ());
          default.Ast_iterator.expr it e);
    }
  in
  it.Ast_iterator.structure it structure;
  (file_table, top_table)

(* --- effect classification ------------------------------------------

   Direct effect: 0 (pure) unless the body writes let-bound state (1)
   or state received, captured or global (2). Calls are edges; the
   fixpoint joins a callee's shared-mutation into its callers — local
   mutation is masked at the call boundary, since a function that only
   mutates its own allocations is observationally pure. *)

let direct_effect ctx ~file body =
  let eff = ref 0 and callees = ref [] in
  let join v = if v > !eff then eff := v in
  let self_module = module_name_of_file file in
  let rec walk locals e =
    let locality target =
      match head_ident target with Some n when StrSet.mem n locals -> 1 | _ -> 2
    in
    match e.pexp_desc with
    | Pexp_let (rf, vbs, rest) ->
        let names = List.concat_map (fun vb -> pat_bound_vars vb.pvb_pat) vbs in
        let rhs_locals =
          match rf with
          | Asttypes.Recursive -> add_names locals names
          | Asttypes.Nonrecursive -> locals
        in
        List.iter (fun vb -> walk rhs_locals vb.pvb_expr) vbs;
        walk (add_names locals names) rest
    | Pexp_for (pat, lo, hi, _, fbody) ->
        walk locals lo;
        walk locals hi;
        let locals = match pat_var pat with Some n -> StrSet.add n locals | None -> locals in
        walk locals fbody
    | Pexp_fun (_, dflt, _, fbody) ->
        (* Lambda params are NOT locals: mutating state received as an
           argument is shared mutation from the caller's view. *)
        Option.iter (walk locals) dflt;
        walk locals fbody
    | Pexp_setfield (target, _, value) ->
        join (locality target);
        walk locals target;
        walk locals value
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) ->
        let parts = expand_path ctx file txt in
        let nargs = List.length args in
        (match args with
        | (_, target) :: _ when is_ref_write parts -> join (locality target)
        | (_, target) :: _ when is_elem_write parts nargs -> join (locality target)
        | (_, target) :: _ when is_container_mutator parts || is_bulk_mutator parts ->
            join (locality target)
        | _ when is_atomic parts ->
            (* Atomics are the sanctioned cross-domain primitive; their
               misuse is atomic-rmw's business, not the lattice's. *)
            ()
        | _ -> (
            match callee_key ~self_module parts with
            | Some key -> callees := key :: !callees
            | None -> ()));
        List.iter (fun (_, a) -> walk locals a) args
    | _ ->
        let default = Ast_iterator.default_iterator in
        let it = { default with Ast_iterator.expr = (fun _ child -> walk locals child) } in
        default.Ast_iterator.expr it e
  in
  walk StrSet.empty body;
  (!eff, !callees)

let compute_effects ctx =
  let edges = Hashtbl.create 256 in
  Hashtbl.iter
    (fun key (def : fndef) ->
      let eff, callees = direct_effect ctx ~file:def.def_file def.body in
      Hashtbl.replace ctx.effects key eff;
      Hashtbl.replace edges key callees)
    ctx.global_defs;
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun key callees ->
        let cur = Option.value ~default:0 (Hashtbl.find_opt ctx.effects key) in
        if
          cur < 2
          && List.exists (fun k -> Hashtbl.find_opt ctx.effects k = Some 2) callees
        then begin
          Hashtbl.replace ctx.effects key 2;
          changed := true
        end)
      edges
  done

let effect_name = function 0 -> "pure" | 1 -> "local-mutation" | _ -> "shared-mutation"

(* --- definition resolution ---

   Local idents resolve to the nearest preceding definition of that
   name in the same file (a file may hold several nested [scatter]s —
   one per kernel); qualified idents resolve to the top-level table
   keyed by the last two path components. *)

let resolve_def ctx ~file ~line parts =
  let pick ds =
    List.fold_left
      (fun best d ->
        match best with None -> Some d | Some b -> Some (if d.def_line > b.def_line then d else b))
      None ds
  in
  let local name =
    match Hashtbl.find_opt ctx.file_defs file with
    | None -> None
    | Some t -> (
        match Hashtbl.find_opt t name with
        | None | Some [] -> None
        | Some defs -> (
            match pick (List.filter (fun d -> d.def_line <= line) defs) with
            | Some d -> Some d
            | None -> pick defs))
  in
  match parts with
  | [ name ] -> (
      match local name with
      | Some d -> Some d
      | None -> Hashtbl.find_opt ctx.global_defs (module_name_of_file file, name))
  | _ -> (
      match callee_key ~self_module:(module_name_of_file file) parts with
      | Some key -> Hashtbl.find_opt ctx.global_defs key
      | None -> None)

(* Label-aware argument/parameter matching for call-site propagation. *)
let match_args params args =
  let labelled = List.filter (fun (l, _) -> l <> Asttypes.Nolabel) args in
  let unlabelled =
    ref (List.filter_map (fun (l, a) -> if l = Asttypes.Nolabel then Some a else None) args)
  in
  List.map
    (fun (plabel, pat) ->
      match plabel with
      | Asttypes.Nolabel -> (
          match !unlabelled with
          | a :: rest ->
              unlabelled := rest;
              (pat, Some a)
          | [] -> (pat, None))
      | Asttypes.Labelled name | Asttypes.Optional name ->
          let arg =
            List.find_map
              (fun (l, a) ->
                match l with
                | (Asttypes.Labelled n | Asttypes.Optional n) when n = name -> Some a
                | _ -> None)
              labelled
          in
          (pat, arg))
    params

(* --- the par-closure analysis ----------------------------------------

   For every application of Par_exec.run/iter/iter_shadowed, resolve the
   work closure (inline [fun] or a named function from the definition
   tables), mark its worker/item parameters, and walk the reachable code
   tracking which names are derived from them: let-bound names whose
   right-hand side mentions a derived name are derived (so
   [let slot = dst_slot.{e}] propagates), a for-loop index is derived
   when either bound is, a match binds derived names when the scrutinee
   is derived, and calls into resolvable functions propagate derivations
   into the callee's parameters and recurse (depth-capped, cycle-safe).

   A ref / mutable-field / container write to anything not let-bound in
   the walked code is par-shared-mutation; an element write passes the
   item-owned rule iff an index mentions an item-derived name or the
   target is selected by a worker- or item-derived name. *)

type penv = { locals : StrSet.t; item : StrSet.t; worker : StrSet.t }

let max_call_depth = 8

let rec par_walk ctx ~emit ~file ~depth ~visited env e =
  let recurse env e = par_walk ctx ~emit ~file ~depth ~visited env e in
  let target_local target =
    match head_ident target with Some n -> StrSet.mem n env.locals | None -> true
  in
  let target_name target = Option.value ~default:"<expr>" (head_ident target) in
  match e.pexp_desc with
  | Pexp_let (rf, vbs, rest) ->
      let all_names = List.concat_map (fun vb -> pat_bound_vars vb.pvb_pat) vbs in
      let rhs_env =
        match rf with
        | Asttypes.Recursive -> { env with locals = add_names env.locals all_names }
        | Asttypes.Nonrecursive -> env
      in
      List.iter
        (fun vb ->
          (* Local function definitions are analyzed at their call
             sites, where argument derivations are known. *)
          match vb.pvb_expr.pexp_desc with
          | Pexp_fun _ -> ()
          | _ -> recurse rhs_env vb.pvb_expr)
        vbs;
      let env =
        List.fold_left
          (fun env vb ->
            let names = pat_bound_vars vb.pvb_pat in
            let env = { env with locals = add_names env.locals names } in
            let env =
              if mentions env.item vb.pvb_expr then { env with item = add_names env.item names }
              else env
            in
            if mentions env.worker vb.pvb_expr then
              { env with worker = add_names env.worker names }
            else env)
          env vbs
      in
      recurse env rest
  | Pexp_fun (_, dflt, pat, body) ->
      Option.iter (recurse env) dflt;
      recurse { env with locals = add_names env.locals (pat_bound_vars pat) } body
  | Pexp_for (pat, lo, hi, _, body) ->
      recurse env lo;
      recurse env hi;
      let names = match pat_var pat with Some n -> [ n ] | None -> [] in
      let env = { env with locals = add_names env.locals names } in
      let env =
        if mentions env.item lo || mentions env.item hi then
          { env with item = add_names env.item names }
        else env
      in
      let env =
        if mentions env.worker lo || mentions env.worker hi then
          { env with worker = add_names env.worker names }
        else env
      in
      recurse env body
  | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
      recurse env scrut;
      List.iter
        (fun c ->
          let names = pat_bound_vars c.pc_lhs in
          let cenv = { env with locals = add_names env.locals names } in
          let cenv =
            if mentions env.item scrut then { cenv with item = add_names cenv.item names }
            else cenv
          in
          let cenv =
            if mentions env.worker scrut then { cenv with worker = add_names cenv.worker names }
            else cenv
          in
          Option.iter (recurse cenv) c.pc_guard;
          recurse cenv c.pc_rhs)
        cases
  | Pexp_function cases ->
      List.iter
        (fun c ->
          let cenv = { env with locals = add_names env.locals (pat_bound_vars c.pc_lhs) } in
          Option.iter (recurse cenv) c.pc_guard;
          recurse cenv c.pc_rhs)
        cases
  | Pexp_setfield (target, _, value) ->
      if not (target_local target) then
        emit ~file ~line:(line_of_loc e.pexp_loc) Par_shared
          (Printf.sprintf
             "mutable-field write to captured `%s' inside a Par_exec closure; confine writes \
              to item-owned state or merge after the barrier"
             (target_name target));
      recurse env target;
      recurse env value
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) ->
      let parts = expand_path ctx file txt in
      let nargs = List.length args in
      let line = line_of_loc e.pexp_loc in
      (if is_sanctioned_in_par parts || is_atomic parts then ()
       else
         match args with
         | (_, target) :: _ when is_ref_write parts ->
             if not (target_local target) then
               emit ~file ~line Par_shared
                 (Printf.sprintf
                    "write through captured ref `%s' inside a Par_exec closure; accumulate in \
                     item-owned slots and reduce after the barrier"
                    (target_name target))
         | (_, target) :: rest when is_elem_write parts nargs ->
             if not (target_local target) then begin
               let index_args = all_but_last (List.map snd rest) in
               let index_owned = List.exists (mentions env.item) index_args in
               let target_owned = mentions env.item target || mentions env.worker target in
               if not (index_owned || target_owned) then
                 emit ~file ~line Item_owned
                   (Printf.sprintf
                      "element write to `%s' with an index not derived from the item parameter \
                       breaks the item-owned-writes discipline; derive the index from the item \
                       or waive with (* lint: item-owned *) and a disjointness argument"
                      (target_name target))
             end
         | (_, target) :: _ when is_container_mutator parts ->
             if not (target_local target) then
               emit ~file ~line Par_shared
                 (Printf.sprintf
                    "in-place container mutation of captured `%s' inside a Par_exec closure"
                    (target_name target))
         | (_, target) :: _ when is_bulk_mutator parts ->
             if not (target_local target) then
               emit ~file ~line Par_shared
                 (Printf.sprintf
                    "bulk mutation of captured `%s' inside a Par_exec closure"
                    (target_name target))
         | _ ->
             if depth < max_call_depth then (
               match resolve_def ctx ~file ~line parts with
               | Some def when not (List.mem (def.def_file, def.def_line) visited) ->
                   let env' =
                     List.fold_left
                       (fun acc (pat, arg) ->
                         let names = pat_bound_vars pat in
                         let local =
                           match arg with
                           | None -> true
                           | Some a -> (
                               match head_ident a with
                               | Some n -> StrSet.mem n env.locals
                               | None -> true)
                         in
                         let acc =
                           if local then { acc with locals = add_names acc.locals names }
                           else acc
                         in
                         let acc =
                           match arg with
                           | Some a when mentions env.item a ->
                               { acc with item = add_names acc.item names }
                           | _ -> acc
                         in
                         match arg with
                         | Some a when mentions env.worker a ->
                             { acc with worker = add_names acc.worker names }
                         | _ -> acc)
                       { locals = StrSet.empty; item = StrSet.empty; worker = StrSet.empty }
                       (match_args def.params args)
                   in
                   par_walk ctx ~emit ~file:def.def_file ~depth:(depth + 1)
                     ~visited:((def.def_file, def.def_line) :: visited)
                     env' def.body
               | Some _ -> ()
               | None -> (
                   match callee_key ~self_module:(module_name_of_file file) parts with
                   | Some (m, f) when Hashtbl.find_opt ctx.effects (m, f) = Some 2 ->
                       emit ~file ~line Par_shared
                         (Printf.sprintf
                            "call to shared-mutating %s.%s inside a Par_exec closure" m f)
                   | _ -> ())));
      List.iter (fun (_, a) -> recurse env a) args
  | Pexp_ident _ | Pexp_constant _ -> ()
  | _ ->
      let default = Ast_iterator.default_iterator in
      let it = { default with Ast_iterator.expr = (fun _ child -> recurse env child) } in
      default.Ast_iterator.expr it e

(* Entry: an application of Par_exec.{run,iter,iter_shadowed}. The work
   closure is the last unlabelled argument (after the pool); iter-style
   closures receive (worker, item), run-style just (worker). *)
let analyze_par_call ctx ~emit ~file ~line ~has_item args =
  let nolabel =
    List.filter_map (fun (l, a) -> if l = Asttypes.Nolabel then Some a else None) args
  in
  match List.rev nolabel with
  | closure :: _ :: _ -> (
      let start ~file ?(visited = []) params body =
        let pos =
          List.filter_map (fun (l, p) -> if l = Asttypes.Nolabel then Some p else None) params
        in
        let worker_names = match pos with p0 :: _ -> pat_bound_vars p0 | [] -> [] in
        let item_names =
          if has_item then match pos with _ :: p1 :: _ -> pat_bound_vars p1 | _ -> []
          else []
        in
        let env =
          {
            locals = add_names StrSet.empty (List.concat_map (fun (_, p) -> pat_bound_vars p) params);
            item = add_names StrSet.empty item_names;
            worker = add_names StrSet.empty worker_names;
          }
        in
        par_walk ctx ~emit ~file ~depth:0 ~visited env body
      in
      match closure.pexp_desc with
      | Pexp_fun _ ->
          let params, body = peel_params closure in
          start ~file params body
      | Pexp_ident { txt; _ } -> (
          let parts = expand_path ctx file txt in
          match resolve_def ctx ~file ~line parts with
          | Some d -> start ~file:d.def_file ~visited:[ (d.def_file, d.def_line) ] d.params d.body
          | None -> ())
      | _ -> ())
  | _ -> ()

(* --- atomic-rmw --- *)

let contains_atomic_get_of ctx ~file name e =
  let found = ref false in
  let default = Ast_iterator.default_iterator in
  let it =
    {
      default with
      Ast_iterator.expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, (_, arg) :: _) -> (
              match List.rev (expand_path ctx file txt) with
              | "get" :: "Atomic" :: _ when head_ident arg = Some name -> found := true
              | _ -> ())
          | _ -> ());
          default.Ast_iterator.expr it e);
    }
  in
  it.Ast_iterator.expr it e;
  !found

(* --- the per-file rule pass --- *)

let lint_structure ctx ~emit ~file ~lib_scope structure =
  let default = Ast_iterator.default_iterator in
  let expr it e =
    (match e.pexp_desc with
    | Pexp_ident { txt; _ } ->
        let parts = expand_path ctx file txt in
        let path = String.concat "." parts in
        let line = line_of_loc e.pexp_loc in
        if List.mem path wall_clock_idents && not (clock_allowlisted file) then
          emit ~file ~line Wall_clock
            (Printf.sprintf
               "%s reads ambient time/entropy; all clocks flow through lib/obs/clock.ml and all \
                randomness through lib/prng"
               path);
        if lib_scope && List.mem path print_idents then
          emit ~file ~line No_print
            (Printf.sprintf
               "%s writes to the console from library code; return values, take a formatter, or \
                emit through Cutfit_obs"
               path);
        if lib_scope && path = "Hashtbl.hash" then
          emit ~file ~line Poly_compare
            "Hashtbl.hash depends on representation details and truncation limits; hash a \
             canonical scalar key instead";
        if not (par_runtime_file file) then (
          match last_two parts with
          | Some ("Domain", (("spawn" | "join") as fn)) ->
              emit ~file ~line Domain_outside
                (Printf.sprintf
                   "Domain.%s outside lib/bsp/par_exec.ml; all domain plumbing lives in the \
                    Par_exec runtime"
                   fn)
          | _ ->
              if List.exists (fun c -> c = "Mutex" || c = "Condition") parts then
                emit ~file ~line Domain_outside
                  (Printf.sprintf
                     "%s outside lib/bsp/par_exec.ml; the kernels are lock-free by discipline \
                      and all blocking primitives live in the Par_exec runtime"
                     path))
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
        let parts = expand_path ctx file txt in
        let path = String.concat "." parts in
        let line = line_of_loc e.pexp_loc in
        (match last_two parts with
        | Some ("Hashtbl", "iter") ->
            emit ~file ~line Hashtbl_order
              "Hashtbl.iter visits bindings in unspecified hash order; restructure, or waive \
               with (* lint: order-independent *) and a reason"
        | Some ("Hashtbl", "fold") ->
            let insensitive =
              match args with (_, f) :: _ -> fold_fn_order_insensitive f | [] -> false
            in
            if not insensitive then
              emit ~file ~line Hashtbl_order
                "Hashtbl.fold with a combiner not provably order-insensitive; use a \
                 commutative-associative combiner, or waive with (* lint: order-independent *)"
        | _ -> ());
        if
          lib_scope
          && List.mem path poly_compare_fns
          && List.exists (fun (_, a) -> structured_literal a) args
        then
          emit ~file ~line Poly_compare
            (Printf.sprintf
               "polymorphic %s on a structured value walks the runtime representation; use a \
                typed comparator"
               path);
        (match (List.rev parts, List.map snd args) with
        | "set" :: "Atomic" :: _, target :: value :: _ -> (
            match head_ident target with
            | Some n when contains_atomic_get_of ctx ~file n value ->
                emit ~file ~line Atomic_rmw
                  (Printf.sprintf
                     "Atomic.set %s (... Atomic.get %s ...) is a non-atomic read-modify-write; \
                      use Atomic.fetch_and_add or a compare_and_set loop"
                     n n)
            | _ -> ())
        | _ -> ());
        match last_two parts with
        | Some ("Par_exec", (("run" | "iter" | "iter_shadowed") as which))
          when not (par_runtime_file file) ->
            analyze_par_call ctx ~emit ~file ~line ~has_item:(which <> "run") args
        | _ -> ())
    | _ -> ());
    default.Ast_iterator.expr it e
  in
  let it = { default with Ast_iterator.expr = expr } in
  it.Ast_iterator.structure it structure

(* --- file handling --- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let rec walk_dir dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list |> List.sort String.compare
    |> List.concat_map (fun entry ->
           let path = Filename.concat dir entry in
           if Sys.is_directory path then walk_dir path else [ path ])

let parse_impl ~file source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf file;
  Parse.implementation lexbuf

let parse_intf ~file source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf file;
  Parse.interface lexbuf

let parse_error_line = function
  | Syntaxerr.Error err -> line_of_loc (Syntaxerr.location_of_error err)
  | Lexer.Error (_, loc) -> line_of_loc loc
  | _ -> 1

let parse_error_msg = function
  | Syntaxerr.Error _ -> "cannot parse: syntax error"
  | Lexer.Error _ -> "cannot parse: lexer error"
  | exn -> "cannot parse: " ^ Printexc.to_string exn

(* --- unused exports --- *)

let exports_of_intf ~file signature =
  List.filter_map
    (fun item ->
      match item.psig_desc with
      | Psig_value vd ->
          Some (module_name_of_file file, vd.pval_name.Asttypes.txt, line_of_loc vd.pval_loc)
      | _ -> None)
    signature

(* Record the last two components of every (alias-expanded) value path:
   [Check.Race_check.pagerank] marks (Race_check, pagerank) used. *)
let record_uses ~aliases uses structure =
  let expand parts =
    match (parts, aliases) with
    | head :: tl, Some table -> (
        match Hashtbl.find_opt table head with Some target -> target @ tl | None -> parts)
    | _ -> parts
  in
  let default = Ast_iterator.default_iterator in
  let it =
    {
      default with
      Ast_iterator.expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } -> (
              match List.rev (expand (Longident.flatten txt)) with
              | v :: m :: _ -> Hashtbl.replace uses (m, v) ()
              | _ -> ())
          | _ -> ());
          default.Ast_iterator.expr it e);
    }
  in
  it.Ast_iterator.structure it structure

(* --- JSON artifact --- *)

module Json = Cutfit_obs.Json

let write_json path ~files ~findings =
  let report =
    Json.Obj
      [
        ("files", Json.Int files);
        ("clean", Json.Bool (findings = []));
        ( "findings",
          Json.List
            (List.map
               (fun f ->
                 Json.Obj
                   [
                     ("file", Json.String f.file);
                     ("line", Json.Int f.line);
                     ("rule", Json.String (rule_name f.rule));
                     ("msg", Json.String f.msg);
                   ])
               findings) );
      ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string report);
  output_char oc '\n';
  close_out oc

(* --- whole-tree run --- *)

let sort_findings fs =
  List.sort
    (fun a b ->
      match String.compare a.file b.file with
      | 0 -> (
          match Int.compare a.line b.line with
          | 0 -> String.compare (rule_name a.rule) (rule_name b.rule)
          | c -> c)
      | c -> c)
    fs

let run ~lint_dirs ~use_dirs ~json ~dump_effects =
  let files = List.concat_map walk_dir lint_dirs in
  let ml = List.filter (fun f -> Filename.check_suffix f ".ml") files in
  let mli = List.filter (fun f -> Filename.check_suffix f ".mli") files in
  let ctx = fresh_ctx () in
  let findings = ref [] in
  let seen = Hashtbl.create 64 in
  let emit ~file ~line rule msg =
    let waived =
      match Hashtbl.find_opt ctx.waived file with Some w -> w line rule | None -> false
    in
    if (not waived) && not (Hashtbl.mem seen (file, line, rule)) then begin
      Hashtbl.replace seen (file, line, rule) ();
      findings := { file; line; rule; msg } :: !findings
    end
  in
  let parsed =
    List.map
      (fun file ->
        let source = read_file file in
        Hashtbl.replace ctx.waived file (waivers_of_source source);
        match parse_impl ~file source with
        | structure ->
            Hashtbl.replace ctx.aliases file (collect_aliases structure);
            let ft, tt = collect_defs ~file structure in
            Hashtbl.replace ctx.file_defs file ft;
            let m = module_name_of_file file in
            Hashtbl.iter (fun name def -> Hashtbl.replace ctx.global_defs (m, name) def) tt;
            (file, Some structure)
        | exception exn ->
            emit ~file ~line:(parse_error_line exn) Parse_error (parse_error_msg exn);
            (file, None))
      ml
  in
  compute_effects ctx;
  List.iter
    (fun (file, structure) ->
      match structure with
      | Some s -> lint_structure ctx ~emit ~file ~lib_scope:(in_lib file) s
      | None -> ())
    parsed;
  (* Interfaces: every exported val must be referenced somewhere in the
     linted tree or the extra usage dirs. *)
  let intfs =
    List.map
      (fun file ->
        let source = read_file file in
        Hashtbl.replace ctx.waived file (waivers_of_source source);
        match parse_intf ~file source with
        | sg -> (file, Some sg)
        | exception exn ->
            emit ~file ~line:(parse_error_line exn) Parse_error (parse_error_msg exn);
            (file, None))
      mli
  in
  let uses = Hashtbl.create 1024 in
  List.iter
    (fun (file, structure) ->
      match structure with
      | Some s -> record_uses ~aliases:(Hashtbl.find_opt ctx.aliases file) uses s
      | None -> ())
    parsed;
  List.iter
    (fun dir ->
      List.iter
        (fun file ->
          if Filename.check_suffix file ".ml" then
            match parse_impl ~file (read_file file) with
            | s -> record_uses ~aliases:(Some (collect_aliases s)) uses s
            | exception _ -> ())
        (walk_dir dir))
    use_dirs;
  List.iter
    (fun (file, sg) ->
      match sg with
      | Some sg ->
          List.iter
            (fun (m, v, line) ->
              if not (Hashtbl.mem uses (m, v)) then
                emit ~file ~line Unused_export
                  (Printf.sprintf
                     "%s.%s is exported but never referenced; delete the export or waive with \
                      (* lint: unused-export *) and a reason"
                     m v))
            (exports_of_intf ~file sg)
      | None -> ())
    intfs;
  let findings = sort_findings !findings in
  let nfiles = List.length ml + List.length mli in
  List.iter
    (fun f -> Printf.printf "%s:%d: [%s] %s\n" f.file f.line (rule_name f.rule) f.msg)
    findings;
  (match json with Some path -> write_json path ~files:nfiles ~findings | None -> ());
  if dump_effects then begin
    let rows =
      Hashtbl.fold (fun (m, f) eff acc -> (m ^ "." ^ f, eff) :: acc) ctx.effects []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    in
    List.iter (fun (name, eff) -> Printf.printf "%-16s %s\n" (effect_name eff) name) rows
  end;
  Printf.printf "lint: %d file(s) checked, %s\n" nfiles
    (match List.length findings with 0 -> "clean" | n -> Printf.sprintf "%d finding(s)" n);
  if findings <> [] then exit 1

(* --- self-test over fixtures --- *)

let expect_re = Str.regexp {|(\*[ \t]*expect:[ \t]*\([a-z-]+\)|}

let expected_of_fixture source =
  try
    ignore (Str.search_forward expect_re source 0);
    Some (Str.matched_group 1 source)
  with Not_found -> None

let fixture_findings file =
  let source = read_file file in
  let ctx = fresh_ctx () in
  let findings = ref [] in
  let seen = Hashtbl.create 8 in
  let emit ~file ~line rule msg =
    let waived =
      match Hashtbl.find_opt ctx.waived file with Some w -> w line rule | None -> false
    in
    if (not waived) && not (Hashtbl.mem seen (file, line, rule)) then begin
      Hashtbl.replace seen (file, line, rule) ();
      findings := { file; line; rule; msg } :: !findings
    end
  in
  Hashtbl.replace ctx.waived file (waivers_of_source source);
  (if Filename.check_suffix file ".mli" then
     match parse_intf ~file source with
     | sg ->
         (* No usage sites: every unwaived export is unused. *)
         List.iter
           (fun (m, v, line) ->
             emit ~file ~line Unused_export (Printf.sprintf "%s.%s is exported but never referenced" m v))
           (exports_of_intf ~file sg)
     | exception exn -> emit ~file ~line:(parse_error_line exn) Parse_error (parse_error_msg exn)
   else
     match parse_impl ~file source with
     | structure ->
         Hashtbl.replace ctx.aliases file (collect_aliases structure);
         let ft, tt = collect_defs ~file structure in
         Hashtbl.replace ctx.file_defs file ft;
         let m = module_name_of_file file in
         Hashtbl.iter (fun name def -> Hashtbl.replace ctx.global_defs (m, name) def) tt;
         compute_effects ctx;
         (* Fixtures exercise every rule class, so lint them at lib
            strictness regardless of their path. *)
         lint_structure ctx ~emit ~file ~lib_scope:true structure
     | exception exn -> emit ~file ~line:(parse_error_line exn) Parse_error (parse_error_msg exn));
  sort_findings !findings

let self_test dir =
  let fixtures =
    List.filter
      (fun f -> Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli")
      (walk_dir dir)
  in
  let failures = ref 0 in
  List.iter
    (fun file ->
      let base = Filename.basename file in
      let findings = fixture_findings file in
      let got =
        match findings with
        | [] -> "none"
        | fs -> String.concat "," (List.sort_uniq String.compare (List.map (fun f -> rule_name f.rule) fs))
      in
      let verdict =
        match expected_of_fixture (read_file file) with
        | None -> Error "missing (* expect: <rule>|none *) header"
        | Some "none" -> if findings = [] then Ok () else Error (Printf.sprintf "expected none, got %s" got)
        | Some rname -> (
            match rule_of_name rname with
            | None -> Error (Printf.sprintf "unknown expected rule %s" rname)
            | Some r ->
                if findings <> [] && List.for_all (fun f -> f.rule = r) findings then Ok ()
                else Error (Printf.sprintf "expected %s, got %s" (rule_name r) got))
      in
      match verdict with
      | Ok () -> Printf.printf "self-test: PASS %s\n" base
      | Error why ->
          incr failures;
          Printf.printf "self-test: FAIL %s (%s)\n" base why;
          List.iter
            (fun f -> Printf.printf "  %s:%d: [%s] %s\n" f.file f.line (rule_name f.rule) f.msg)
            findings)
    fixtures;
  if fixtures = [] then begin
    Printf.eprintf "self-test: no fixtures found under %s\n" dir;
    exit 1
  end;
  Printf.printf "self-test: %d fixture(s), %s\n" (List.length fixtures)
    (match !failures with 0 -> "all passing" | n -> Printf.sprintf "%d failing" n);
  if !failures > 0 then exit 1

(* --- entry point --- *)

let () =
  let argv = List.tl (Array.to_list Sys.argv) in
  let rec go ~lint_dirs ~use_dirs ~json ~effects = function
    | [] ->
        let lint_dirs =
          match List.rev lint_dirs with [] -> [ "lib"; "bin" ] | ds -> ds
        in
        run ~lint_dirs ~use_dirs:(List.rev use_dirs) ~json ~dump_effects:effects
    | "--self-test" :: dir :: _ -> self_test dir
    | "--use-only" :: d :: rest -> go ~lint_dirs ~use_dirs:(d :: use_dirs) ~json ~effects rest
    | "--json" :: f :: rest -> go ~lint_dirs ~use_dirs ~json:(Some f) ~effects rest
    | "--effects" :: rest -> go ~lint_dirs ~use_dirs ~json ~effects:true rest
    | d :: rest -> go ~lint_dirs:(d :: lint_dirs) ~use_dirs ~json ~effects rest
  in
  go ~lint_dirs:[] ~use_dirs:[] ~json:None ~effects:false argv
