#!/bin/sh
# Tier-1 verification: build + tests, plus documentation and formatting
# checks when the tools exist in the switch. odoc and ocamlformat are
# not part of the minimal container image, so those steps gate on
# availability instead of failing the whole run.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build"
dune build

echo "== dune runtest"
dune runtest

echo "== dune build @lint"
dune build @lint

echo "== paranoid sanitizer pass"
dune exec bin/cutfit_cli.exe -- check PR roadnet_pa
dune exec bin/cutfit_cli.exe -- run CC roadnet_pa --paranoid >/dev/null

echo "== workload smoke (20 jobs, checked + digested)"
dune exec bin/cutfit_cli.exe -- workload --jobs 20 --check >/dev/null

if command -v odoc >/dev/null 2>&1; then
  echo "== dune build @doc"
  dune build @doc
else
  echo "== dune build @doc: skipped (odoc not installed)"
fi

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune fmt (check only)"
  dune build @fmt
else
  echo "== format check: skipped (ocamlformat not installed)"
fi

echo "== ok"
