#!/bin/sh
# Tier-1 verification: build + tests, plus documentation and formatting
# checks when the tools exist in the switch. odoc and ocamlformat are
# not part of the minimal container image, so those steps gate on
# availability instead of failing the whole run.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build"
dune build

echo "== dune runtest"
dune runtest

echo "== dune build @lint (race linter + fixture self-test + JSON artifact)"
dune build @lint
test -s _build/default/lint.json || {
  echo "lint did not produce _build/default/lint.json" >&2
  exit 1
}
grep -q '"clean":true' _build/default/lint.json || {
  echo "lint.json reports findings:" >&2
  cat _build/default/lint.json >&2
  exit 1
}

echo "== paranoid sanitizer pass"
dune exec bin/cutfit_cli.exe -- check PR roadnet_pa
dune exec bin/cutfit_cli.exe -- run CC roadnet_pa --paranoid >/dev/null

echo "== race sanitizer smoke (shadow ownership recorder, 4 domains)"
# the races suite: instrumented kernel mirrors under the write-ownership
# recorder at domain counts 1, 2, 4, plus the seeded-corruption self-check
dune exec bin/cutfit_cli.exe -- check PR roadnet_pa --races --domains 4
dune exec bin/cutfit_cli.exe -- check TR roadnet_pa --races >/dev/null

echo "== multicore smoke (csr engine, 4 domains)"
# the compact kernels on OCaml domains; check adds the engines suite,
# which proves boxed-vs-csr bit-identity at domain counts 1, 2 and 4
dune exec bin/cutfit_cli.exe -- run PR roadnet_pa --engine csr --domains 4 >/dev/null
dune exec bin/cutfit_cli.exe -- check CC roadnet_pa --engine csr --domains 4 >/dev/null

echo "== workload smoke (20 jobs, checked + digested)"
dune exec bin/cutfit_cli.exe -- workload --jobs 20 --check >/dev/null

echo "== seeded fault smoke (recovery equivalence + faulty workload)"
# the sixth sanitizer suite: faulty run must be bit-identical to the
# fault-free baseline
dune exec bin/cutfit_cli.exe -- check PR roadnet_pa \
  --faults 'crash@3,straggler@1-2:x3' --checkpoint-every 3 >/dev/null
# a survivable faulty workload must pass its own sanitizer and digest
dune exec bin/cutfit_cli.exe -- workload --jobs 12 --check \
  --faults 'straggler@1-2:x3,loss@2' --checkpoint-every 3 >/dev/null

echo "== overload smoke (speculation + admission control)"
# straggler-heavy stream with speculative re-execution: value
# equivalence, shed/deadline/breaker conservation and the run-twice
# digest all ride on --check
dune exec bin/cutfit_cli.exe -- workload --jobs 16 --policy sjf \
  --faults 'straggler@2:x8' --speculate --check >/dev/null
# a tiny queue bound must shed jobs (permanent failures -> exit 1)
# while the sanitizer stays green on the same run
set +e
out=$(dune exec bin/cutfit_cli.exe -- workload --jobs 16 --queue-bound 2 \
  --deadline-factor 6 --breaker-k 2 --backpressure 3 --check 2>/dev/null)
got=$?
set -e
if [ "$got" != 1 ]; then
  echo "expected exit 1 from the shedding workload, got $got" >&2
  exit 1
fi
echo "$out" | grep -q "workload check: ok" || {
  echo "shedding workload failed its sanitizer:" >&2
  echo "$out" >&2
  exit 1
}
echo "$out" | grep -q "admission: queue bound 2 (reject): 12 job(s) shed" || {
  echo "shedding workload did not shed the expected 12 jobs:" >&2
  echo "$out" >&2
  exit 1
}

echo "== dynamic-graph smoke (mutation batches + priced repartitioning)"
# the standalone mutation driver, with the three dynamic-graph laws
dune exec bin/cutfit_cli.exe -- mutate youtube -n 16 \
  --mutations 'ins@1-4:r64,del@1-4:r16' --check >/dev/null
# a mutating workload must pass the full sanitizer (cache conservation
# now includes partial invalidations) and keep its run-twice digest
dune exec bin/cutfit_cli.exe -- workload --jobs 16 \
  --mutations 'ins@1-8:r64,del@1-8:r16' --mutate-every 4 --check >/dev/null
# the seventh sanitizer suite: delta-identity, refreshed-cut laws and
# refresh-rebuild value equivalence
dune exec bin/cutfit_cli.exe -- check PR youtube --dynamic >/dev/null

echo "== elastic smoke (scale events + two tenants, checked)"
# membership churn plus a preemption over a weighted two-tenant stream;
# --check rides the fairness, quota and preempt-conservation laws and
# the elastic sanitizer suite proves values stay bit-identical
dune exec bin/cutfit_cli.exe -- workload --jobs 20 --slots 2 \
  --tenants 'acme:3,beta:1' --tenant-weights 'acme:3,beta:1' --fairness \
  --scale-events 'leave@5-1,join@9+2,preempt@12:r1' --check >/dev/null
# the eighth sanitizer suite: elastic run vs static baseline
dune exec bin/cutfit_cli.exe -- check PR roadnet_pa \
  --elastic 'leave@2-1,join@4+2' --hetero draw >/dev/null

echo "== run-twice digest on a faulty trace"
d1=$(dune exec bin/cutfit_cli.exe -- run PR roadnet_pa \
  --faults 'crash@2,rand@0.1' --checkpoint-every 2)
d2=$(dune exec bin/cutfit_cli.exe -- run PR roadnet_pa \
  --faults 'crash@2,rand@0.1' --checkpoint-every 2)
if [ "$d1" != "$d2" ]; then
  echo "faulty trace digests diverge:" >&2
  echo "  $d1" >&2
  echo "  $d2" >&2
  exit 1
fi

echo "== exit-code contract (0 success / 1 failure / 2 usage)"
expect_exit() {
  want="$1"; shift
  set +e
  "$@" >/dev/null 2>&1
  got=$?
  set -e
  if [ "$got" != "$want" ]; then
    echo "expected exit $want, got $got: $*" >&2
    exit 1
  fi
}
expect_exit 0 dune exec bin/cutfit_cli.exe -- run PR roadnet_pa
expect_exit 1 dune exec bin/cutfit_cli.exe -- run PR roadnet_pa \
  --faults 'crash@1,crash@2' --max-failures 0
expect_exit 2 dune exec bin/cutfit_cli.exe -- run PR roadnet_pa --faults 'crash@0'
expect_exit 2 dune exec bin/cutfit_cli.exe -- run PR no_such_dataset
expect_exit 2 dune exec bin/cutfit_cli.exe -- workload --max-retries -1
expect_exit 2 dune exec bin/cutfit_cli.exe -- workload --queue-bound 0
expect_exit 2 dune exec bin/cutfit_cli.exe -- workload --deadline-s -1
expect_exit 2 dune exec bin/cutfit_cli.exe -- workload --deadline-s 5 --deadline-factor 2
expect_exit 2 dune exec bin/cutfit_cli.exe -- run PR roadnet_pa --speculate --speculate-threshold 0.5
expect_exit 2 dune exec bin/cutfit_cli.exe -- check PR roadnet_pa --races --domains 0
expect_exit 2 dune exec bin/cutfit_cli.exe -- check PR roadnet_pa --dynamic 'grow@1'
expect_exit 2 dune exec bin/cutfit_cli.exe -- workload --mutations 'ins@1' --mutate-every 0
expect_exit 2 dune exec bin/cutfit_cli.exe -- mutate youtube --mutations 'ins@0'
expect_exit 2 dune exec bin/cutfit_cli.exe -- run PR roadnet_pa --scale-events 'grow@1'
expect_exit 2 dune exec bin/cutfit_cli.exe -- run PR roadnet_pa --scale-events 'join@3-1'
expect_exit 2 dune exec bin/cutfit_cli.exe -- run PR roadnet_pa --capability
expect_exit 2 dune exec bin/cutfit_cli.exe -- workload --tenants 'a/b:1'
expect_exit 2 dune exec bin/cutfit_cli.exe -- workload --tenant-weights 'acme:0'
expect_exit 2 dune exec bin/cutfit_cli.exe -- workload --tenant-deadline acme
expect_exit 2 dune exec bin/cutfit_cli.exe -- workload --tenant-quota 0
expect_exit 0 dune exec bin/cutfit_cli.exe -- check CC roadnet_tx --elastic --hetero '1.5,0.8/2.0'
expect_exit 0 dune exec bin/cutfit_cli.exe -- check CC roadnet_tx --dynamic
expect_exit 1 _build/default/tools/lint/lint.exe --self-test no_such_fixture_dir

if command -v odoc >/dev/null 2>&1; then
  echo "== dune build @doc"
  dune build @doc
else
  echo "== dune build @doc: skipped (odoc not installed)"
fi

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune fmt (check only)"
  dune build @fmt
else
  echo "== format check: skipped (ocamlformat not installed)"
fi

echo "== ok"
